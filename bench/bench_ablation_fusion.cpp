//===----------------------------------------------------------------------===//
// Ablation for §3's fusion discussion: the generator normally recomputes
// the coordinate remapping inside both the analysis and assembly phases
// (Figure 6a duplicates `k = j - i`); the alternative materializes the
// remapped coordinates once in a pre-pass. For cheap remappings like DIA's
// offsets, fusion avoids a full extra array and pass; materialization is
// the strategy the paper reserves for complex orderings (Morton).
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace convgen;
using namespace convgen::bench;

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "no system C compiler\n");
    return 1;
  }
  std::printf("Ablation: fused remapping vs materialized remapped "
              "coordinates\n(scale %.2f, %d reps; entries are milliseconds; "
              "ratio >1 means materialization is slower)\n\n",
              benchScale(), benchReps());
  codegen::Options Mat;
  Mat.MaterializeRemap = true;

  std::printf("%-12s %-18s %10s %14s %8s\n", "Conversion", "Matrix", "fused",
              "materialized", "ratio");
  BenchReport Report("BENCH_ablation_fusion.json");
  for (const char *Pair : {"csr_dia", "coo_dia", "csr_ell"}) {
    std::string Src(Pair, 3);
    std::string Dst(Pair + 4);
    for (const char *Name : {"jnlbrng1", "denormal", "majorbasis", "cant"}) {
      const MatrixInputs &In = corpusInputs(Name);
      if (!diaViable(In) && Dst == "dia")
        continue;
      const tensor::SparseTensor &Input = Src == "coo" ? In.Coo : In.Csr;
      double Fused = timeJit(jitConversion(Src, Dst), Input);
      double Materialized = timeJit(jitConversion(Src, Dst, Mat), Input);
      std::printf("%-12s %-18s %10.3f %14.3f %8.2f\n", Pair, Name,
                  Fused * 1e3, Materialized * 1e3, Materialized / Fused);
      Report.add(strfmt(
          "{\"pair\": \"%s\", \"matrix\": \"%s\", "
          "\"fused_seconds\": %.6g, \"materialized_seconds\": %.6g}",
          Pair, Name, Fused, Materialized));
    }
  }
  return Report.write() ? 0 : 1;
}
