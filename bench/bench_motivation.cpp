//===----------------------------------------------------------------------===//
// Reproduces the paper's §1 motivation: SpMV performance depends on the
// storage format — CSR runs ~2x faster than COO (compressed row pointers
// reduce memory traffic), and DIA/ELL improve further on diagonal/banded
// matrices — which is why efficient conversion routines matter at all.
// Also reports the break-even point: how many SpMV iterations amortize the
// generated conversion's cost.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "kernels/SpMV.h"

#include <cstdio>

using namespace convgen;
using namespace convgen::bench;

namespace {

TimeStats timeSpmvStats(const tensor::SparseTensor &A,
                        const std::vector<double> &X) {
  std::vector<double> Y;
  return timeStats([&] { Y = kernels::spmv(A, X); });
}

double timeSpmv(const tensor::SparseTensor &A, const std::vector<double> &X) {
  return timeSpmvStats(A, X).MedianSeconds;
}

} // namespace

int main() {
  std::printf("Motivation (paper section 1): SpMV time by format, "
              "normalized to COO\n(scale %.2f, %d reps, median)\n\n",
              benchScale(), benchReps());
  std::printf("%-18s %10s | %8s %8s %8s %8s\n", "Matrix", "COO (ms)", "CSR",
              "DIA", "ELL", "BCSR");
  BenchReport Report("BENCH_motivation.json");

  for (const char *Name : {"jnlbrng1", "denormal", "Lin", "ecology1",
                           "majorbasis", "cant", "scircuit"}) {
    const MatrixInputs &In = corpusInputs(Name);
    std::vector<double> X(static_cast<size_t>(In.T.NumCols));
    for (size_t I = 0; I < X.size(); ++I)
      X[I] = 1.0 + static_cast<double>(I % 5);

    TimeStats CooS = timeSpmvStats(In.Coo, X);
    double Coo = CooS.MedianSeconds;
    double Csr = timeSpmv(In.Csr, X);
    std::string Entry = strfmt(
        "{\"kind\": \"spmv\", \"matrix\": \"%s\", \"coo_seconds\": %.6g, "
        "\"coo_min_seconds\": %.6g, \"csr_speedup\": %.3f",
        Name, Coo, CooS.MinSeconds, Coo / Csr);
    std::printf("%-18s %10.3f | %8.2f", Name, Coo * 1e3, Coo / Csr);
    if (diaViable(In)) {
      tensor::SparseTensor Dia =
          tensor::buildFromTriplets(formats::makeDIA(), In.T);
      double Rel = Coo / timeSpmv(Dia, X);
      Entry += strfmt(", \"dia_speedup\": %.3f", Rel);
      std::printf(" %8.2f", Rel);
    } else {
      std::printf(" %8s", "-");
    }
    if (ellViable(In)) {
      tensor::SparseTensor Ell =
          tensor::buildFromTriplets(formats::makeELL(), In.T);
      double Rel = Coo / timeSpmv(Ell, X);
      Entry += strfmt(", \"ell_speedup\": %.3f", Rel);
      std::printf(" %8.2f", Rel);
    } else {
      std::printf(" %8s", "-");
    }
    tensor::SparseTensor Bcsr =
        tensor::buildFromTriplets(formats::makeBCSR(4, 4), In.T);
    double BcsrStored = static_cast<double>(Bcsr.Vals.size());
    if (static_cast<double>(In.T.nnz()) >= 0.25 * BcsrStored) {
      double Rel = Coo / timeSpmv(Bcsr, X);
      Entry += strfmt(", \"bcsr_speedup\": %.3f", Rel);
      std::printf(" %8.2f", Rel);
    } else {
      std::printf(" %8s", "-");
    }
    Report.add(Entry + "}");
    std::printf("\n");
  }

  // Break-even: conversion cost in units of the SpMV speedup it buys.
  if (jit::jitAvailable()) {
    std::printf("\nBreak-even: COO->CSR conversion cost vs per-iteration "
                "SpMV saving\n");
    std::printf("%-18s %14s %14s %12s\n", "Matrix", "convert (ms)",
                "saving (ms)", "iterations");
    for (const char *Name : {"jnlbrng1", "cant", "ecology1"}) {
      const MatrixInputs &In = corpusInputs(Name);
      std::vector<double> X(static_cast<size_t>(In.T.NumCols), 1.0);
      double Coo = timeSpmv(In.Coo, X);
      double Csr = timeSpmv(In.Csr, X);
      double Conv = timeJit(jitConversion("coo", "csr"), In.Coo);
      double Saving = Coo - Csr;
      std::printf("%-18s %14.3f %14.3f %12.1f\n", Name, Conv * 1e3,
                  Saving * 1e3, Saving > 0 ? Conv / Saving : -1.0);
      Report.add(strfmt(
          "{\"kind\": \"break_even\", \"matrix\": \"%s\", "
          "\"convert_coo_csr_seconds\": %.6g, "
          "\"spmv_saving_seconds\": %.6g}",
          Name, Conv, Saving));
    }
  }
  return Report.write() ? 0 : 1;
}
