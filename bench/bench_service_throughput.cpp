//===----------------------------------------------------------------------===//
// Throughput of the concurrent conversion service: client threads at 1, 2,
// 4, and the hardware thread count issue a fixed mix of conversion
// requests through ConversionService, every result bit-compared against a
// serially precomputed golden. Handles are warmed before timing, so the
// measured regime is the steady state a server actually runs in: shared
// read-mostly cache hits plus the conversion itself.
//
// A second section deliberately overloads a MaxInflight=1 service (tiny
// queue, tiny deadlines) and reports the shed / deadline / coalesce
// accounting — the observability surface the serving layer exports.
//
// A third section compares submitBatch against an equivalent convert()
// loop over the same request stream (the grouping's saved cache traversal,
// with the BatchStats breakout), and a fourth measures cold-boot vs
// warm-boot time-to-first-conversion: a fresh cache directory and a cold
// compile on one side, manifest export + eager preload standing in for a
// process restart on the other.
//
// Usage: bench_service_throughput
//   CONVGEN_BENCH_SCALE (default 0.2) scales the corpus matrices;
//   CONVGEN_BENCH_REPS (default 5) repetitions per thread count.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "jit/Jit.h"
#include "service/ConversionService.h"
#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "tensor/Generators.h"

#include <atomic>
#include <cstdlib>
#include <thread>

using namespace convgen;
using namespace convgen::bench;
using convert::ConversionRequest;
using convert::ConversionService;
using convert::PlanCacheStats;
using convert::ServiceLimits;
using convert::ServiceStats;

namespace {

struct PoolItem {
  formats::Format Src;
  formats::Format Dst;
  const tensor::SparseTensor *In = nullptr;
  tensor::SparseTensor Want;
  std::string Label;
};

bool identical(const tensor::SparseTensor &A, const tensor::SparseTensor &B) {
  if (A.Levels.size() != B.Levels.size() || !(A.Vals == B.Vals))
    return false;
  for (size_t K = 0; K < A.Levels.size(); ++K)
    if (!(A.Levels[K].Pos == B.Levels[K].Pos) ||
        !(A.Levels[K].Crd == B.Levels[K].Crd) ||
        !(A.Levels[K].Perm == B.Levels[K].Perm) ||
        A.Levels[K].SizeParam != B.Levels[K].SizeParam)
      return false;
  return true;
}

/// Requests completed per second with \p Clients threads hammering \p
/// Service round-robin over \p Pool; every result is bit-checked.
double throughput(ConversionService &Service, const std::vector<PoolItem> &Pool,
                  int Clients, int PerClient, std::atomic<uint64_t> &BadBits) {
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  auto Begin = std::chrono::steady_clock::now();
  for (int C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int I = 0; I < PerClient; ++I) {
        const PoolItem &P = Pool[(C + I) % Pool.size()];
        ConversionRequest R;
        R.Source = P.Src;
        R.Target = P.Dst;
        R.Input = P.In;
        StatusOr<tensor::SparseTensor> Out = Service.convert(R);
        if (!Out.ok() || !identical(P.Want, *Out))
          BadBits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  Go.store(true, std::memory_order_release);
  Begin = std::chrono::steady_clock::now();
  for (std::thread &T : Threads)
    T.join();
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  return Secs > 0 ? double(Clients) * PerClient / Secs : 0;
}

} // namespace

int main() {
  std::printf("convgen service throughput (scale %.2f, %d reps)\n\n",
              benchScale(), benchReps());
  BenchReport Report("BENCH_service_throughput.json");

  // Request pool: two corpus matrices through the bread-and-butter 2-D
  // pairs, plus a small order-3 tensor — distinct cache keys so the shard
  // map sees spread, repeated requests so the hit path dominates.
  const MatrixInputs &Scir = corpusInputs("scircuit");
  const MatrixInputs &Jnl = corpusInputs("jnlbrng1");
  tensor::Triplets T3 = tensor::genHyperSparse3(400, 300, 200, 5000, 40);
  tensor::SparseTensor Coo3 =
      tensor::buildFromTriplets(formats::standardFormatOrDie("coo3"), T3);

  std::vector<PoolItem> Pool;
  auto addItem = [&](const char *Src, const char *Dst,
                     const tensor::SparseTensor &In, const std::string &Tag) {
    PoolItem P;
    P.Src = formats::standardFormatOrDie(Src);
    P.Dst = formats::standardFormatOrDie(Dst);
    P.In = &In;
    P.Label = Tag + ":" + Src + "->" + Dst;
    convert::Converter Oracle(P.Src, P.Dst);
    P.Want = Oracle.run(In);
    Pool.push_back(std::move(P));
  };
  addItem("coo", "csr", Scir.Coo, Scir.Name);
  addItem("csr", "csc", Scir.Csr, Scir.Name);
  addItem("coo", "csr", Jnl.Coo, Jnl.Name);
  addItem("csr", "coo", Jnl.Csr, Jnl.Name);
  addItem("coo3", "csf", Coo3, "hyper3");

  // Warm every handle serially: throughput numbers measure the serving
  // steady state, not first-request compilation.
  {
    ConversionService Warm;
    for (const PoolItem &P : Pool) {
      ConversionRequest R;
      R.Source = P.Src;
      R.Target = P.Dst;
      R.Input = P.In;
      StatusOr<tensor::SparseTensor> Out = Warm.convert(R);
      if (!Out.ok()) {
        std::fprintf(stderr, "warmup failed for %s: %s\n", P.Label.c_str(),
                     Out.status().toString().c_str());
        return 1;
      }
    }
  }

  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> ClientCounts = {1, 2, 4};
  if (Hw > 4)
    ClientCounts.push_back(static_cast<int>(Hw));
  const int PerClient = std::max(20, static_cast<int>(40 * benchScale()));

  std::printf("%-10s %12s %14s\n", "clients", "req/s", "vs 1 client");
  std::atomic<uint64_t> BadBits{0};
  double Base = 0;
  for (int Clients : ClientCounts) {
    ServiceLimits Limits;
    Limits.MaxInflight = std::max(Clients, 1);
    Limits.QueueDepth = 2 * Clients;
    ConversionService Service(Limits);
    std::vector<double> Rates;
    for (int Rep = 0; Rep < benchReps(); ++Rep)
      Rates.push_back(throughput(Service, Pool, Clients, PerClient, BadBits));
    std::sort(Rates.begin(), Rates.end());
    double Median = Rates[Rates.size() / 2];
    if (Clients == 1)
      Base = Median;
    std::printf("%-10d %12.1f %13.2fx\n", Clients, Median,
                Base > 0 ? Median / Base : 0);
    ServiceStats S = Service.stats();
    Report.add(strfmt("{\"section\": \"throughput\", \"clients\": %d, "
                      "\"requests_per_second\": %.2f, \"speedup\": %.3f, "
                      "\"completed\": %llu, \"shed\": %llu}",
                      Clients, Median, Base > 0 ? Median / Base : 0,
                      static_cast<unsigned long long>(S.Completed),
                      static_cast<unsigned long long>(S.Shed)));
  }
  if (BadBits.load() != 0) {
    std::fprintf(stderr,
                 "%llu concurrent results diverged from the serial oracle\n",
                 static_cast<unsigned long long>(BadBits.load()));
    return 1;
  }
  std::printf("\nall concurrent results bit-identical to the serial oracle\n");

  // Overload section: a single-slot service with a depth-2 queue and 5ms
  // deadlines, hammered by 8 clients. The point is the accounting: every
  // rejected request is a deliberate shed or deadline expiry, visible in
  // the service stats and the DegradationLog, and the service stays
  // correct throughout.
  {
    support::DegradationLog::instance().reset();
    ServiceLimits Limits;
    Limits.MaxInflight = 1;
    Limits.QueueDepth = 2;
    Limits.DefaultDeadlineMs = 5;
    ConversionService Service(Limits);
    std::atomic<uint64_t> OverloadBad{0};
    throughput(Service, Pool, 8, PerClient, OverloadBad);
    ServiceStats S = Service.stats();
    PlanCacheStats C = convert::PlanCache::instance().stats();
    std::printf("\noverload (1 slot, queue 2, 5ms deadline, 8 clients): "
                "%llu submitted, %llu completed, %llu shed, %llu expired\n",
                static_cast<unsigned long long>(S.Submitted),
                static_cast<unsigned long long>(S.Completed),
                static_cast<unsigned long long>(S.Shed),
                static_cast<unsigned long long>(S.DeadlineExpired));
    Report.add(strfmt(
        "{\"section\": \"overload\", \"clients\": 8, \"submitted\": %llu, "
        "\"completed\": %llu, \"shed\": %llu, \"deadline_expired\": %llu, "
        "\"jit_hits\": %llu, \"jit_coalesced\": %llu}",
        static_cast<unsigned long long>(S.Submitted),
        static_cast<unsigned long long>(S.Completed),
        static_cast<unsigned long long>(S.Shed),
        static_cast<unsigned long long>(S.DeadlineExpired),
        static_cast<unsigned long long>(C.JitHits),
        static_cast<unsigned long long>(C.JitCoalesced)));
    // Conservation: every submitted request either completed or was
    // rejected for an accounted reason.
    if (S.Submitted != S.Completed + S.Shed + S.DeadlineExpired +
                           S.RequestErrors) {
      std::fprintf(stderr, "service stats do not balance\n");
      return 1;
    }
    // Only completed requests may carry bad bits; rejected ones return
    // Status errors, which the checker counts — expected under overload.
    (void)OverloadBad;
  }

  // Batched vs individual submission over one identical request stream.
  // Handles are warm (the throughput section just hammered them), so the
  // delta is pure serving overhead: per-request cache traversal and
  // admission bookkeeping vs one handle acquisition per plan-key group.
  {
    ServiceLimits Limits;
    Limits.MaxInflight = 2;
    Limits.QueueDepth = 64;
    ConversionService Service(Limits);
    const int StreamLen = 8 * PerClient;
    std::vector<const PoolItem *> Stream;
    for (int I = 0; I < StreamLen; ++I)
      Stream.push_back(&Pool[I % Pool.size()]);

    std::atomic<uint64_t> BatchBad{0};
    double IndividualRps = 0, BatchedRps = 0;
    convert::BatchStats BS;
    {
      // Hold every result until the run ends, like submitBatch must:
      // freeing each result before the next conversion lets the allocator
      // recycle hot buffers, which mismeasures the loop as faster than
      // any caller who actually keeps the batch's outputs.
      TimeStats T = timeStats([&] {
        std::vector<StatusOr<tensor::SparseTensor>> Held;
        Held.reserve(Stream.size());
        for (const PoolItem *P : Stream) {
          ConversionRequest R;
          R.Source = P->Src;
          R.Target = P->Dst;
          R.Input = P->In;
          Held.push_back(Service.convert(R));
          StatusOr<tensor::SparseTensor> &Out = Held.back();
          if (!Out.ok() || !identical(P->Want, *Out))
            BatchBad.fetch_add(1, std::memory_order_relaxed);
        }
      });
      IndividualRps = T.MedianSeconds > 0 ? StreamLen / T.MedianSeconds : 0;
    }
    {
      std::vector<ConversionRequest> Requests;
      for (const PoolItem *P : Stream) {
        ConversionRequest R;
        R.Source = P->Src;
        R.Target = P->Dst;
        R.Input = P->In;
        Requests.push_back(R);
      }
      TimeStats T = timeStats([&] {
        BS = convert::BatchStats();
        std::vector<StatusOr<tensor::SparseTensor>> Results =
            Service.submitBatch(Requests, &BS);
        for (size_t I = 0; I < Results.size(); ++I)
          if (!Results[I].ok() || !identical(Stream[I]->Want, *Results[I]))
            BatchBad.fetch_add(1, std::memory_order_relaxed);
      });
      BatchedRps = T.MedianSeconds > 0 ? StreamLen / T.MedianSeconds : 0;
    }
    if (BatchBad.load() != 0) {
      std::fprintf(stderr, "%llu batch-section results diverged\n",
                   static_cast<unsigned long long>(BatchBad.load()));
      return 1;
    }
    double Ratio = IndividualRps > 0 ? BatchedRps / IndividualRps : 0;
    std::printf("\nbatch (%d requests, %llu plan-key groups): individual "
                "%.1f req/s, batched %.1f req/s (%.2fx), %llu handle "
                "acquisition(s) for %llu requests\n",
                StreamLen, static_cast<unsigned long long>(BS.Groups),
                IndividualRps, BatchedRps, Ratio,
                static_cast<unsigned long long>(BS.HandleAcquisitions),
                static_cast<unsigned long long>(BS.Requests));
    Report.add(strfmt("{\"section\": \"batch\", \"label\": \"individual\", "
                      "\"clients\": 1, \"requests_per_second\": %.2f}",
                      IndividualRps));
    Report.add(strfmt(
        "{\"section\": \"batch\", \"label\": \"batched\", \"clients\": 1, "
        "\"requests_per_second\": %.2f, \"batched_vs_individual\": %.3f, "
        "\"groups\": %llu, \"handle_acquisitions\": %llu, "
        "\"requests\": %llu}",
        BatchedRps, Ratio, static_cast<unsigned long long>(BS.Groups),
        static_cast<unsigned long long>(BS.HandleAcquisitions),
        static_cast<unsigned long long>(BS.Requests)));
  }

  // Cold boot vs warm boot: time-to-first-conversion with an empty cache
  // directory (plan + external compile + dlopen) against a restart that
  // preloads the exported manifest first (revalidate + dlopen, no
  // compiler). Each rep gets a fresh cache directory; clearMemory() stands
  // in for the process restart. Skipped when no compiler is available —
  // a degraded cold boot would not measure a compile.
  if (jit::jitAvailable() && !support::faultsConfigured()) {
    convert::PlanCache &Cache = convert::PlanCache::instance();
    std::vector<double> ColdSecs, WarmSecs, PreloadSecs;
    for (int Rep = 0; Rep < benchReps(); ++Rep) {
      char Template[] = "/tmp/convgen-boot-XXXXXX";
      char *Dir = mkdtemp(Template);
      if (!Dir)
        break;
      setenv("CONVGEN_CACHE_DIR", Dir, 1);
      setenv("CONVGEN_DISABLE_DISK_CACHE", "0", 1);
      Cache.clearMemory();

      const PoolItem &First = Pool.front();
      auto timeFirstConversion = [&]() -> double {
        ConversionService Boot;
        ConversionRequest R;
        R.Source = First.Src;
        R.Target = First.Dst;
        R.Input = First.In;
        auto Begin = std::chrono::steady_clock::now();
        StatusOr<tensor::SparseTensor> Out = Boot.convert(R);
        double Secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - Begin)
                          .count();
        return Out.ok() && identical(First.Want, *Out) ? Secs : -1;
      };

      double Cold = timeFirstConversion();
      // Warm the full pool so the manifest describes a realistic server's
      // working set, then "restart" and preload.
      {
        ConversionService Warm;
        for (const PoolItem &P : Pool) {
          ConversionRequest R;
          R.Source = P.Src;
          R.Target = P.Dst;
          R.Input = P.In;
          (void)Warm.convert(R);
        }
      }
      (void)Cache.exportManifest();
      Cache.clearMemory();
      auto PreBegin = std::chrono::steady_clock::now();
      convert::PreloadStats PS =
          Cache.preload("", convert::PreloadMode::Eager);
      double Pre = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - PreBegin)
                       .count();
      double Warm = timeFirstConversion();
      if (Cold > 0 && Warm > 0 && PS.Loaded > 0 && PS.Evicted == 0) {
        ColdSecs.push_back(Cold);
        WarmSecs.push_back(Warm + Pre);
        PreloadSecs.push_back(Pre);
      }
      std::string Cleanup = std::string("rm -rf ") + Dir;
      (void)std::system(Cleanup.c_str());
    }
    if (!ColdSecs.empty()) {
      std::sort(ColdSecs.begin(), ColdSecs.end());
      std::sort(WarmSecs.begin(), WarmSecs.end());
      std::sort(PreloadSecs.begin(), PreloadSecs.end());
      double Cold = ColdSecs[ColdSecs.size() / 2];
      double Warm = WarmSecs[WarmSecs.size() / 2];
      double Pre = PreloadSecs[PreloadSecs.size() / 2];
      std::printf("\nboot: cold first conversion %.3fs, warm (preload + "
                  "first conversion) %.4fs (%.0fx faster; preload alone "
                  "%.4fs)\n",
                  Cold, Warm, Warm > 0 ? Cold / Warm : 0, Pre);
      Report.add(strfmt("{\"section\": \"boot\", \"label\": \"cold_boot\", "
                        "\"median_seconds\": %.6g}",
                        Cold));
      Report.add(strfmt("{\"section\": \"boot\", \"label\": \"warm_boot\", "
                        "\"median_seconds\": %.6g, "
                        "\"preload_seconds\": %.6g, "
                        "\"cold_vs_warm\": %.3f}",
                        Warm, Pre, Warm > 0 ? Cold / Warm : 0));
    } else {
      std::printf("\nboot: skipped (cold/warm reps did not all succeed)\n");
    }
  } else {
    std::printf("\nboot: skipped (no JIT compiler available)\n");
  }

  Report.write();
  return 0;
}
