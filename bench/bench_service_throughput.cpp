//===----------------------------------------------------------------------===//
// Throughput of the concurrent conversion service: client threads at 1, 2,
// 4, and the hardware thread count issue a fixed mix of conversion
// requests through ConversionService, every result bit-compared against a
// serially precomputed golden. Handles are warmed before timing, so the
// measured regime is the steady state a server actually runs in: shared
// read-mostly cache hits plus the conversion itself.
//
// A second section deliberately overloads a MaxInflight=1 service (tiny
// queue, tiny deadlines) and reports the shed / deadline / coalesce
// accounting — the observability surface the serving layer exports.
//
// Usage: bench_service_throughput
//   CONVGEN_BENCH_SCALE (default 0.2) scales the corpus matrices;
//   CONVGEN_BENCH_REPS (default 5) repetitions per thread count.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "convert/Converter.h"
#include "service/ConversionService.h"
#include "support/DegradationLog.h"
#include "tensor/Generators.h"

#include <atomic>
#include <thread>

using namespace convgen;
using namespace convgen::bench;
using convert::ConversionRequest;
using convert::ConversionService;
using convert::PlanCacheStats;
using convert::ServiceLimits;
using convert::ServiceStats;

namespace {

struct PoolItem {
  formats::Format Src;
  formats::Format Dst;
  const tensor::SparseTensor *In = nullptr;
  tensor::SparseTensor Want;
  std::string Label;
};

bool identical(const tensor::SparseTensor &A, const tensor::SparseTensor &B) {
  if (A.Levels.size() != B.Levels.size() || !(A.Vals == B.Vals))
    return false;
  for (size_t K = 0; K < A.Levels.size(); ++K)
    if (!(A.Levels[K].Pos == B.Levels[K].Pos) ||
        !(A.Levels[K].Crd == B.Levels[K].Crd) ||
        !(A.Levels[K].Perm == B.Levels[K].Perm) ||
        A.Levels[K].SizeParam != B.Levels[K].SizeParam)
      return false;
  return true;
}

/// Requests completed per second with \p Clients threads hammering \p
/// Service round-robin over \p Pool; every result is bit-checked.
double throughput(ConversionService &Service, const std::vector<PoolItem> &Pool,
                  int Clients, int PerClient, std::atomic<uint64_t> &BadBits) {
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  auto Begin = std::chrono::steady_clock::now();
  for (int C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int I = 0; I < PerClient; ++I) {
        const PoolItem &P = Pool[(C + I) % Pool.size()];
        ConversionRequest R;
        R.Source = P.Src;
        R.Target = P.Dst;
        R.Input = P.In;
        StatusOr<tensor::SparseTensor> Out = Service.convert(R);
        if (!Out.ok() || !identical(P.Want, *Out))
          BadBits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  Go.store(true, std::memory_order_release);
  Begin = std::chrono::steady_clock::now();
  for (std::thread &T : Threads)
    T.join();
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  return Secs > 0 ? double(Clients) * PerClient / Secs : 0;
}

} // namespace

int main() {
  std::printf("convgen service throughput (scale %.2f, %d reps)\n\n",
              benchScale(), benchReps());
  BenchReport Report("BENCH_service_throughput.json");

  // Request pool: two corpus matrices through the bread-and-butter 2-D
  // pairs, plus a small order-3 tensor — distinct cache keys so the shard
  // map sees spread, repeated requests so the hit path dominates.
  const MatrixInputs &Scir = corpusInputs("scircuit");
  const MatrixInputs &Jnl = corpusInputs("jnlbrng1");
  tensor::Triplets T3 = tensor::genHyperSparse3(400, 300, 200, 5000, 40);
  tensor::SparseTensor Coo3 =
      tensor::buildFromTriplets(formats::standardFormatOrDie("coo3"), T3);

  std::vector<PoolItem> Pool;
  auto addItem = [&](const char *Src, const char *Dst,
                     const tensor::SparseTensor &In, const std::string &Tag) {
    PoolItem P;
    P.Src = formats::standardFormatOrDie(Src);
    P.Dst = formats::standardFormatOrDie(Dst);
    P.In = &In;
    P.Label = Tag + ":" + Src + "->" + Dst;
    convert::Converter Oracle(P.Src, P.Dst);
    P.Want = Oracle.run(In);
    Pool.push_back(std::move(P));
  };
  addItem("coo", "csr", Scir.Coo, Scir.Name);
  addItem("csr", "csc", Scir.Csr, Scir.Name);
  addItem("coo", "csr", Jnl.Coo, Jnl.Name);
  addItem("csr", "coo", Jnl.Csr, Jnl.Name);
  addItem("coo3", "csf", Coo3, "hyper3");

  // Warm every handle serially: throughput numbers measure the serving
  // steady state, not first-request compilation.
  {
    ConversionService Warm;
    for (const PoolItem &P : Pool) {
      ConversionRequest R;
      R.Source = P.Src;
      R.Target = P.Dst;
      R.Input = P.In;
      StatusOr<tensor::SparseTensor> Out = Warm.convert(R);
      if (!Out.ok()) {
        std::fprintf(stderr, "warmup failed for %s: %s\n", P.Label.c_str(),
                     Out.status().toString().c_str());
        return 1;
      }
    }
  }

  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> ClientCounts = {1, 2, 4};
  if (Hw > 4)
    ClientCounts.push_back(static_cast<int>(Hw));
  const int PerClient = std::max(20, static_cast<int>(40 * benchScale()));

  std::printf("%-10s %12s %14s\n", "clients", "req/s", "vs 1 client");
  std::atomic<uint64_t> BadBits{0};
  double Base = 0;
  for (int Clients : ClientCounts) {
    ServiceLimits Limits;
    Limits.MaxInflight = std::max(Clients, 1);
    Limits.QueueDepth = 2 * Clients;
    ConversionService Service(Limits);
    std::vector<double> Rates;
    for (int Rep = 0; Rep < benchReps(); ++Rep)
      Rates.push_back(throughput(Service, Pool, Clients, PerClient, BadBits));
    std::sort(Rates.begin(), Rates.end());
    double Median = Rates[Rates.size() / 2];
    if (Clients == 1)
      Base = Median;
    std::printf("%-10d %12.1f %13.2fx\n", Clients, Median,
                Base > 0 ? Median / Base : 0);
    ServiceStats S = Service.stats();
    Report.add(strfmt("{\"section\": \"throughput\", \"clients\": %d, "
                      "\"requests_per_second\": %.2f, \"speedup\": %.3f, "
                      "\"completed\": %llu, \"shed\": %llu}",
                      Clients, Median, Base > 0 ? Median / Base : 0,
                      static_cast<unsigned long long>(S.Completed),
                      static_cast<unsigned long long>(S.Shed)));
  }
  if (BadBits.load() != 0) {
    std::fprintf(stderr,
                 "%llu concurrent results diverged from the serial oracle\n",
                 static_cast<unsigned long long>(BadBits.load()));
    return 1;
  }
  std::printf("\nall concurrent results bit-identical to the serial oracle\n");

  // Overload section: a single-slot service with a depth-2 queue and 5ms
  // deadlines, hammered by 8 clients. The point is the accounting: every
  // rejected request is a deliberate shed or deadline expiry, visible in
  // the service stats and the DegradationLog, and the service stays
  // correct throughout.
  {
    support::DegradationLog::instance().reset();
    ServiceLimits Limits;
    Limits.MaxInflight = 1;
    Limits.QueueDepth = 2;
    Limits.DefaultDeadlineMs = 5;
    ConversionService Service(Limits);
    std::atomic<uint64_t> OverloadBad{0};
    throughput(Service, Pool, 8, PerClient, OverloadBad);
    ServiceStats S = Service.stats();
    PlanCacheStats C = convert::PlanCache::instance().stats();
    std::printf("\noverload (1 slot, queue 2, 5ms deadline, 8 clients): "
                "%llu submitted, %llu completed, %llu shed, %llu expired\n",
                static_cast<unsigned long long>(S.Submitted),
                static_cast<unsigned long long>(S.Completed),
                static_cast<unsigned long long>(S.Shed),
                static_cast<unsigned long long>(S.DeadlineExpired));
    Report.add(strfmt(
        "{\"section\": \"overload\", \"clients\": 8, \"submitted\": %llu, "
        "\"completed\": %llu, \"shed\": %llu, \"deadline_expired\": %llu, "
        "\"jit_hits\": %llu, \"jit_coalesced\": %llu}",
        static_cast<unsigned long long>(S.Submitted),
        static_cast<unsigned long long>(S.Completed),
        static_cast<unsigned long long>(S.Shed),
        static_cast<unsigned long long>(S.DeadlineExpired),
        static_cast<unsigned long long>(C.JitHits),
        static_cast<unsigned long long>(C.JitCoalesced)));
    // Conservation: every submitted request either completed or was
    // rejected for an accounted reason.
    if (S.Submitted != S.Completed + S.Shed + S.DeadlineExpired +
                           S.RequestErrors) {
      std::fprintf(stderr, "service stats do not balance\n");
      return 1;
    }
    // Only completed requests may carry bad bits; rejected ones return
    // Status errors, which the checker counts — expected under overload.
    (void)OverloadBad;
  }

  Report.write();
  return 0;
}
