//===----------------------------------------------------------------------===//
// Ablation for §4.2's counter-reuse optimization: when the counter's index
// variables are iterated in order by the source's outer loops (CSR rows),
// the generated code reuses one scalar instead of an N-element counter
// array. CSC sources iterate columns, so csc_ell always pays for the
// array — the structural reason Table 3's csc_ell trails csr_ell.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace convgen;
using namespace convgen::bench;

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "no system C compiler\n");
    return 1;
  }
  std::printf("Ablation: scalar counter reuse vs counter arrays (csr_ell)\n"
              "(scale %.2f, %d reps; milliseconds; ratio >1 means the "
              "array is slower)\n\n",
              benchScale(), benchReps());
  codegen::Options NoReuse;
  NoReuse.CounterReuse = false;

  std::printf("%-18s %10s %12s %8s | %12s\n", "Matrix", "scalar", "array",
              "ratio", "csc_ell(array)");
  BenchReport Report("BENCH_ablation_counter.json");
  for (const char *Name :
       {"jnlbrng1", "denormal", "majorbasis", "mac_econ_fwd500"}) {
    const MatrixInputs &In = corpusInputs(Name);
    if (!ellViable(In))
      continue;
    double Scalar = timeJit(jitConversion("csr", "ell"), In.Csr);
    double Array = timeJit(jitConversion("csr", "ell", NoReuse), In.Csr);
    double Csc = timeJit(jitConversion("csc", "ell"), In.Csc);
    std::printf("%-18s %10.3f %12.3f %8.2f | %12.3f\n", Name, Scalar * 1e3,
                Array * 1e3, Array / Scalar, Csc * 1e3);
    Report.add(strfmt(
        "{\"matrix\": \"%s\", \"scalar_seconds\": %.6g, "
        "\"array_seconds\": %.6g, \"csc_ell_seconds\": %.6g}",
        Name, Scalar, Array, Csc));
  }
  return Report.write() ? 0 : 1;
}
