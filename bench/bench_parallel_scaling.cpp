//===----------------------------------------------------------------------===//
// Thread scaling of the parallel-annotated generated routines: conversion
// throughput at 1/2/4/N OpenMP threads on large corpus matrices, for pairs
// whose analysis sweep (all pairs) and coordinate-insertion pass (pure-level
// targets) parallelize. Emits a human-readable table and machine-readable
// BENCH_parallel.json so successive PRs can track the perf trajectory.
//
// Environment: CONVGEN_BENCH_SCALE / CONVGEN_BENCH_REPS as usual, plus
// CONVGEN_BENCH_MATRIX to override the input matrix (default ecology1, a
// 1M-row stencil at full scale).
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace convgen;
using namespace convgen::bench;

namespace {

int hardwareThreads() {
#ifdef _OPENMP
  return omp_get_num_procs();
#else
  return 1;
#endif
}

void setThreads(int N) {
#ifdef _OPENMP
  omp_set_num_threads(N);
#else
  (void)N;
#endif
}

struct ThreadPoint {
  int Threads;
  double Seconds;
};

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "no system C compiler\n");
    return 1;
  }
  const char *MatrixEnv = std::getenv("CONVGEN_BENCH_MATRIX");
  std::string Matrix = MatrixEnv && *MatrixEnv ? MatrixEnv : "ecology1";
  const MatrixInputs &In = corpusInputs(Matrix);

  std::vector<int> Threads = {1, 2, 4};
  int Hw = hardwareThreads();
  if (Hw > 4)
    Threads.push_back(Hw);
  bool OpenMP = jit::jitOpenMPAvailable();

  std::printf("Conversion throughput vs OpenMP thread count\n"
              "matrix %s at scale %.2f (%lld rows, %lld nnz); "
              "%d hardware threads; OpenMP %s\n\n",
              Matrix.c_str(), benchScale(),
              static_cast<long long>(In.T.NumRows),
              static_cast<long long>(In.T.nnz()), Hw,
              OpenMP ? "on" : "off (serial)");
  std::printf("%-12s", "Pair");
  for (int N : Threads)
    std::printf(" %9dT (ms)  speedup", N);
  std::printf("\n");

  struct PairSpec {
    const char *Src, *Dst;
  };
  std::string Json = "{\n";
  Json += strfmt("  \"matrix\": \"%s\",\n  \"scale\": %.3f,\n"
                 "  \"reps\": %d,\n  \"rows\": %lld,\n  \"nnz\": %lld,\n"
                 "  \"hardware_threads\": %d,\n  \"openmp\": %s,\n"
                 "  \"results\": [\n",
                 Matrix.c_str(), benchScale(), benchReps(),
                 static_cast<long long>(In.T.NumRows),
                 static_cast<long long>(In.T.nnz()), Hw,
                 OpenMP ? "true" : "false");

  std::vector<PairSpec> Pairs = {{"coo", "csr"}, {"coo", "dia"},
                                 {"csr", "ell"}, {"csr", "dia"},
                                 {"csr", "csc"}};
  std::vector<std::string> Entries;
  for (size_t P = 0; P < Pairs.size(); ++P) {
    const PairSpec &Pair = Pairs[P];
    if ((std::string(Pair.Dst) == "dia" && !diaViable(In)) ||
        (std::string(Pair.Dst) == "ell" && !ellViable(In)))
      continue;
    const jit::JitConversion &Conv = jitConversion(Pair.Src, Pair.Dst);
    const tensor::SparseTensor &Input =
        std::string(Pair.Src) == "coo" ? In.Coo
        : std::string(Pair.Src) == "csr" ? In.Csr
                                         : In.Csc;
    std::vector<ThreadPoint> Points;
    for (int N : Threads) {
      setThreads(N);
      Points.push_back({N, timeJit(Conv, Input)});
    }
    setThreads(Hw);

    std::printf("%s_%-8s", Pair.Src, Pair.Dst);
    for (const ThreadPoint &Pt : Points)
      std::printf(" %13.3f %8.2fx", Pt.Seconds * 1e3,
                  Points[0].Seconds / Pt.Seconds);
    std::printf("\n");

    std::string Entry =
        strfmt("    {\"pair\": \"%s->%s\", \"threads\": [", Pair.Src,
               Pair.Dst);
    for (size_t I = 0; I < Points.size(); ++I)
      Entry += strfmt("%s{\"n\": %d, \"seconds\": %.6f, \"speedup\": %.3f}",
                      I ? ", " : "", Points[I].Threads, Points[I].Seconds,
                      Points[0].Seconds / Points[I].Seconds);
    Entries.push_back(Entry + "]}");
  }
  for (size_t I = 0; I < Entries.size(); ++I)
    Json += Entries[I] + (I + 1 < Entries.size() ? ",\n" : "\n");
  Json += "  ]\n}\n";

  if (std::FILE *Out = std::fopen("BENCH_parallel.json", "w")) {
    std::fwrite(Json.data(), 1, Json.size(), Out);
    std::fclose(Out);
    std::printf("\nwrote BENCH_parallel.json\n");
  } else {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  return 0;
}
