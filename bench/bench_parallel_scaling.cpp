//===----------------------------------------------------------------------===//
// Thread scaling of the parallel-annotated generated routines: conversion
// throughput at 1/2/4/N OpenMP threads on large corpus matrices. Since PR 2
// every pair's assembly parallelizes too — Monotone/Blocked cursor
// insertion covers coo->csr and csr->csc — so the sweep now includes the
// cursor-based pairs, and each cell reports the routine's own per-phase
// breakdown (analysis / edge insertion / insertion / finalize) so scan and
// cursor wins are attributable to the phase that earned them.
//
// Emits a human-readable table and machine-readable BENCH_parallel.json so
// successive PRs can track the perf trajectory.
//
// Environment: CONVGEN_BENCH_SCALE / CONVGEN_BENCH_REPS as usual, plus
// CONVGEN_BENCH_MATRIX to override the input matrix (default ecology1, a
// 1M-row stencil at full scale).
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace convgen;
using namespace convgen::bench;

namespace {

int hardwareThreads() {
#ifdef _OPENMP
  return omp_get_num_procs();
#else
  return 1;
#endif
}

void setThreads(int N) {
#ifdef _OPENMP
  omp_set_num_threads(N);
#else
  (void)N;
#endif
}

struct ThreadPoint {
  int Threads = 0;
  TimeStats Stats;
  double Phases[jit::kNumPhases] = {};
};

const char *const kPhaseNames[jit::kNumPhases] = {
    "analysis", "edge_insert", "insertion", "finalize",
    "collect",  "sort",        "pos",       "crd"};

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "no system C compiler\n");
    return 1;
  }
  const char *MatrixEnv = std::getenv("CONVGEN_BENCH_MATRIX");
  std::string Matrix = MatrixEnv && *MatrixEnv ? MatrixEnv : "ecology1";
  const MatrixInputs &In = corpusInputs(Matrix);

  std::vector<int> Threads = {1, 2, 4};
  int Hw = hardwareThreads();
  if (Hw > 4)
    Threads.push_back(Hw);
  bool OpenMP = jit::jitOpenMPAvailable();

  std::printf("Conversion throughput vs OpenMP thread count\n"
              "matrix %s at scale %.2f (%lld rows, %lld nnz); "
              "%d hardware threads; OpenMP %s\n\n",
              Matrix.c_str(), benchScale(),
              static_cast<long long>(In.T.NumRows),
              static_cast<long long>(In.T.nnz()), Hw,
              OpenMP ? "on" : "off (serial)");
  std::printf("%-12s", "Pair");
  for (int N : Threads)
    std::printf(" %9dT (ms)  speedup", N);
  std::printf("\n");

  BenchReport Report("BENCH_parallel.json");
  Report.metaStr("matrix", Matrix);
  Report.meta("rows", strfmt("%lld", static_cast<long long>(In.T.NumRows)));
  Report.meta("nnz", strfmt("%lld", static_cast<long long>(In.T.nnz())));
  Report.meta("hardware_threads", strfmt("%d", Hw));
  Report.meta("openmp", OpenMP ? "true" : "false");

  struct PairSpec {
    const char *Src, *Dst;
  };
  // coo->csr and csr->csc are the newly parallel cursor-based pairs
  // (Blocked strategy); csr->coo exercises the Monotone strategy.
  std::vector<PairSpec> Pairs = {{"coo", "csr"}, {"csr", "csc"},
                                 {"csr", "coo"}, {"coo", "dia"},
                                 {"csr", "ell"}, {"csr", "dia"}};
  for (const PairSpec &Pair : Pairs) {
    if ((std::string(Pair.Dst) == "dia" && !diaViable(In)) ||
        (std::string(Pair.Dst) == "ell" && !ellViable(In)))
      continue;
    const jit::JitConversion &Conv = jitConversion(Pair.Src, Pair.Dst);
    const tensor::SparseTensor &Input =
        std::string(Pair.Src) == "coo"   ? In.Coo
        : std::string(Pair.Src) == "csr" ? In.Csr
                                         : In.Csc;
    std::vector<ThreadPoint> Points;
    for (int N : Threads) {
      setThreads(N);
      ThreadPoint Pt;
      Pt.Threads = N;
      Pt.Stats = timeJitWithPhases(Conv, Input, Pt.Phases);
      Points.push_back(Pt);
    }
    setThreads(Hw);

    std::printf("%s_%-8s", Pair.Src, Pair.Dst);
    for (const ThreadPoint &Pt : Points)
      std::printf(" %13.3f %8.2fx", Pt.Stats.MedianSeconds * 1e3,
                  Points[0].Stats.MedianSeconds / Pt.Stats.MedianSeconds);
    std::printf("\n");
    // Per-phase breakdown at the extreme thread counts.
    for (size_t Which : {size_t(0), Points.size() - 1}) {
      const ThreadPoint &Pt = Points[Which];
      std::printf("  %dT phases:", Pt.Threads);
      for (int P = 0; P < jit::kNumPhases; ++P)
        std::printf(" %s %.3fms", kPhaseNames[P], Pt.Phases[P] * 1e3);
      std::printf("\n");
      if (Points.size() < 2)
        break;
    }

    std::string Entry =
        strfmt("{\"pair\": \"%s->%s\", \"threads\": [", Pair.Src, Pair.Dst);
    for (size_t I = 0; I < Points.size(); ++I) {
      const ThreadPoint &Pt = Points[I];
      Entry += strfmt("%s{\"n\": %d, \"seconds\": %.6f, "
                      "\"min_seconds\": %.6f, \"speedup\": %.3f, "
                      "\"phases\": {",
                      I ? ", " : "", Pt.Threads, Pt.Stats.MedianSeconds,
                      Pt.Stats.MinSeconds,
                      Points[0].Stats.MedianSeconds / Pt.Stats.MedianSeconds);
      for (int P = 0; P < jit::kNumPhases; ++P)
        Entry += strfmt("%s\"%s\": %.6f", P ? ", " : "", kPhaseNames[P],
                        Pt.Phases[P]);
      Entry += "}}";
    }
    Report.add(Entry + "]}");
  }
  return Report.write() ? 0 : 1;
}
