//===----------------------------------------------------------------------===//
// One-time cost of the technique itself: generating a conversion routine
// (remapping + query compilation + assembly emission) and compiling it
// with the system C compiler, versus the per-run conversion time it then
// delivers. §1 argues conversion must be cheap because tensors may be
// converted only a few times; the same holds for generating the converter,
// which is amortized across all tensors of a format pair.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <chrono>
#include <cstdio>

using namespace convgen;
using namespace convgen::bench;

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "no system C compiler\n");
    return 1;
  }
  std::printf("Generation + JIT compilation overhead per format pair\n"
              "(run time measured on jnlbrng1 at scale %.2f)\n\n",
              benchScale());
  std::printf("%-12s %14s %14s %14s %10s\n", "Pair", "generate (ms)",
              "compile (ms)", "run (ms)", "LoC");

  const MatrixInputs &In = corpusInputs("jnlbrng1");
  struct PairSpec {
    const char *Src, *Dst;
  };
  for (PairSpec P :
       {PairSpec{"coo", "csr"}, PairSpec{"coo", "dia"}, PairSpec{"csr", "csc"},
        PairSpec{"csr", "dia"}, PairSpec{"csr", "ell"}, PairSpec{"csc", "dia"},
        PairSpec{"csc", "ell"}}) {
    auto Begin = std::chrono::steady_clock::now();
    codegen::Conversion Conv = codegen::generateConversion(
        formats::standardFormat(P.Src), formats::standardFormat(P.Dst));
    double GenMs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count() *
                   1e3;
    jit::JitConversion Native(Conv);
    const tensor::SparseTensor &Input =
        std::string(P.Src) == "coo" ? In.Coo
        : std::string(P.Src) == "csr" ? In.Csr
                                      : In.Csc;
    double RunMs = timeJit(Native, Input) * 1e3;
    std::string C = Conv.cSource();
    long Lines = static_cast<long>(std::count(C.begin(), C.end(), '\n'));
    std::printf("%s_%-8s %14.2f %14.2f %14.3f %10ld\n", P.Src, P.Dst, GenMs,
                Native.compileSeconds() * 1e3, RunMs, Lines);
  }
  return 0;
}
