//===----------------------------------------------------------------------===//
// One-time cost of the technique itself: generating a conversion routine
// (remapping + query compilation + assembly emission) and compiling it
// with the system C compiler, versus the per-run conversion time it then
// delivers. §1 argues conversion must be cheap because tensors may be
// converted only a few times; the same holds for generating the converter,
// which is amortized across all tensors of a format pair.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace convgen;
using namespace convgen::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

/// How the plan/JIT cache changes the cost of *obtaining* a converter: the
/// first request pays codegen + the external compiler; later requests in
/// the same process are a map lookup; a new process with a warm disk cache
/// skips the compiler and only pays codegen + dlopen.
void reportCacheAmortization() {
  convert::PlanCache &Cache = convert::PlanCache::instance();
  formats::Format Src = formats::standardFormatOrDie("coo");
  formats::Format Dst = formats::standardFormatOrDie("csr");

  // Fresh on-disk cache directory so "cold" really runs the compiler;
  // the caller's CONVGEN_CACHE_DIR is restored afterwards.
  const char *SavedDir = std::getenv("CONVGEN_CACHE_DIR");
  std::string Saved = SavedDir ? SavedDir : "";
  char Template[] = "/tmp/convgen-benchcache-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (Dir)
    setenv("CONVGEN_CACHE_DIR", Dir, 1);

  Cache.clearMemory();
  auto Begin = std::chrono::steady_clock::now();
  auto Cold = Cache.jit(Src, Dst);
  double ColdSecs = secondsSince(Begin);

  Begin = std::chrono::steady_clock::now();
  auto Hit = Cache.jit(Src, Dst);
  double HitSecs = secondsSince(Begin);

  // "New process": in-memory cache dropped, shared object still on disk.
  Cache.clearMemory();
  Begin = std::chrono::steady_clock::now();
  auto DiskHit = Cache.jit(Src, Dst);
  double DiskSecs = secondsSince(Begin);

  std::printf("\nConverter acquisition cost, coo->csr (PlanCache)\n");
  std::printf("  %-34s %10.3f ms\n", "cold (codegen + external cc):",
              ColdSecs * 1e3);
  std::printf("  %-34s %10.3f ms  (%.0fx faster)\n",
              "cache hit (same process):", HitSecs * 1e3,
              ColdSecs / HitSecs);
  std::printf("  %-34s %10.3f ms  (%.0fx faster, compiler skipped: %s)\n",
              "disk hit (new process):", DiskSecs * 1e3,
              ColdSecs / DiskSecs,
              DiskHit->loadedFromCache() ? "yes" : "no");
  (void)Cold;
  (void)Hit;

  if (Dir) {
    // Flat directory of .so/.c/.sum/.lock entries; no shell involved.
    if (DIR *D = opendir(Dir)) {
      while (struct dirent *E = readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          std::remove((std::string(Dir) + "/" + Name).c_str());
      }
      closedir(D);
    }
    rmdir(Dir);
    if (SavedDir)
      setenv("CONVGEN_CACHE_DIR", Saved.c_str(), 1);
    else
      unsetenv("CONVGEN_CACHE_DIR");
  }
}

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "no system C compiler\n");
    return 1;
  }
  std::printf("Generation + JIT compilation overhead per format pair\n"
              "(run time measured on jnlbrng1 at scale %.2f)\n\n",
              benchScale());
  std::printf("%-12s %14s %14s %14s %14s %10s\n", "Pair", "generate (ms)",
              "compile (ms)", "run (ms)", "run+adopt (ms)", "LoC");
  BenchReport Report("BENCH_jit_overhead.json");

  const MatrixInputs &In = corpusInputs("jnlbrng1");
  struct PairSpec {
    const char *Src, *Dst;
  };
  for (PairSpec P :
       {PairSpec{"coo", "csr"}, PairSpec{"coo", "dia"}, PairSpec{"csr", "csc"},
        PairSpec{"csr", "dia"}, PairSpec{"csr", "ell"}, PairSpec{"csc", "dia"},
        PairSpec{"csc", "ell"}}) {
    auto Begin = std::chrono::steady_clock::now();
    codegen::Conversion Conv = codegen::generateConversion(
        formats::standardFormatOrDie(P.Src), formats::standardFormatOrDie(P.Dst));
    double GenMs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count() *
                   1e3;
    jit::JitConversion Native(Conv);
    const tensor::SparseTensor &Input =
        std::string(P.Src) == "coo" ? In.Coo
        : std::string(P.Src) == "csr" ? In.Csr
                                      : In.Csc;
    double RunMs = timeJit(Native, Input) * 1e3;
    // run() adds the marshalling boundary: inputs bound by pointer and
    // outputs adopted (moved) into SparseTensor storage. Since the
    // adoption rework this must track runRaw to within noise — there is
    // no per-element output copy left at the JIT boundary.
    double RunAdoptMs = medianSeconds([&] {
                          tensor::SparseTensor Out = Native.run(Input);
                        }) *
                        1e3;
    std::string C = Conv.cSource();
    long Lines = static_cast<long>(std::count(C.begin(), C.end(), '\n'));
    std::printf("%s_%-8s %14.2f %14.2f %14.3f %14.3f %10ld\n", P.Src, P.Dst,
                GenMs, Native.compileSeconds() * 1e3, RunMs, RunAdoptMs,
                Lines);
    Report.add(strfmt(
        "{\"pair\": \"%s_%s\", \"generate_seconds\": %.6g, "
        "\"compile_seconds\": %.6g, \"run_seconds\": %.6g, "
        "\"run_adopt_seconds\": %.6g, \"lines\": %ld}",
        P.Src, P.Dst, GenMs * 1e-3, Native.compileSeconds(), RunMs * 1e-3,
        RunAdoptMs * 1e-3, Lines));
  }

  reportCacheAmortization();
  return Report.write() ? 0 : 1;
}
