//===----------------------------------------------------------------------===//
// Reproduces paper Table 3: conversion times for seven (source, target)
// format pairs across the Table 2 corpus, comparing
//
//   taco w/ ext   — this library's generated routine (JIT-compiled)
//   skit          — the SPARSKIT ports (two-step through CSR where the
//                   library has no direct routine)
//   mkl           — the MKL-like variants (same canonical-CSR policy)
//   taco w/o ext  — sort-then-assemble (coo_csr only)
//
// Entries are normalized to the generated routine (1.00 = same speed;
// >1 = the comparator is slower), with the generated routine's absolute
// median milliseconds in parentheses — the paper's presentation. Rules
// follow §7.2: csr_csc only for non-symmetric matrices; symmetric csc_*
// reuses the csr_* path (CSC == CSR); DIA/ELL targets are skipped when
// padding would exceed 75%.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "baselines/Baselines.h"

#include <cstdio>
#include <optional>

using namespace convgen;
using namespace convgen::bench;
using namespace convgen::baselines;

namespace {

struct Cell {
  double TacoMs = 0;
  std::optional<double> SkitRel, MklRel, NoExtRel;
};

std::vector<std::string> benchMatrices() {
  std::vector<std::string> Names;
  const char *Env = std::getenv("CONVGEN_BENCH_MATRICES");
  if (Env && *Env) {
    std::string S = Env;
    size_t Pos = 0;
    while (Pos != std::string::npos) {
      size_t Comma = S.find(',', Pos);
      Names.push_back(S.substr(Pos, Comma == std::string::npos
                                        ? std::string::npos
                                        : Comma - Pos));
      Pos = Comma == std::string::npos ? Comma : Comma + 1;
    }
    return Names;
  }
  for (const tensor::CorpusEntry &E : tensor::table2Corpus())
    Names.push_back(E.Name);
  return Names;
}

double relTo(double TacoSecs, double OtherSecs) {
  return OtherSecs / TacoSecs;
}

/// Prints one conversion block (and records it in the JSON report).
void printBlock(const char *Title, const char *Pair,
                const std::vector<std::pair<std::string, Cell>> &Rows,
                bool HasMkl, bool HasNoExt, BenchReport &Report) {
  std::printf("\n%s\n", Title);
  std::printf("%-18s %12s %8s%s%s\n", "Matrix", "taco w/ ext", "skit",
              HasMkl ? "      mkl" : "", HasNoExt ? "  taco w/o ext" : "");
  std::vector<double> SkitRels, MklRels, NoExtRels;
  for (const auto &[Name, C] : Rows) {
    std::printf("%-18s %9.2f ms", Name.c_str(), C.TacoMs);
    if (C.SkitRel) {
      std::printf(" %8.2f", *C.SkitRel);
      SkitRels.push_back(*C.SkitRel);
    } else {
      std::printf(" %8s", "-");
    }
    if (HasMkl) {
      if (C.MklRel) {
        std::printf(" %8.2f", *C.MklRel);
        MklRels.push_back(*C.MklRel);
      } else {
        std::printf(" %8s", "-");
      }
    }
    if (HasNoExt) {
      if (C.NoExtRel) {
        std::printf(" %13.2f", *C.NoExtRel);
        NoExtRels.push_back(*C.NoExtRel);
      } else {
        std::printf(" %13s", "-");
      }
    }
    std::printf("\n");
  }
  for (const auto &[Name, C] : Rows) {
    std::string Entry = strfmt(
        "{\"pair\": \"%s\", \"matrix\": \"%s\", "
        "\"taco_seconds\": %.6g",
        Pair, Name.c_str(), C.TacoMs * 1e-3);
    if (C.SkitRel)
      Entry += strfmt(", \"skit_rel\": %.3f", *C.SkitRel);
    if (C.MklRel)
      Entry += strfmt(", \"mkl_rel\": %.3f", *C.MklRel);
    if (C.NoExtRel)
      Entry += strfmt(", \"taco_noext_rel\": %.3f", *C.NoExtRel);
    Report.add(Entry + "}");
  }
  std::printf("%-18s %12s %8.2f", "Geomean", "", geomean(SkitRels));
  if (HasMkl)
    std::printf(" %8.2f", geomean(MklRels));
  if (HasNoExt)
    std::printf(" %13.2f", geomean(NoExtRels));
  std::printf("\n");
}

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "bench_table3: no system C compiler; cannot run "
                         "generated conversions natively\n");
    return 1;
  }
  std::printf("Table 3: conversion times normalized to generated routines "
              "(scale %.2f, %d reps, median)\n",
              benchScale(), benchReps());

  BenchReport Report("BENCH_table3.json");
  std::vector<std::string> Names = benchMatrices();
  std::vector<std::pair<std::string, Cell>> CooCsr, CooDia, CsrCsc, CsrDia,
      CsrEll, CscDia, CscEll;

  for (const std::string &Name : Names) {
    const MatrixInputs &In = corpusInputs(Name);
    RawCoo Coo = viewCoo(In.Coo);
    RawCsr Csr = viewCsr(In.Csr);
    RawCsr CscT = viewCscAsTransposedCsr(In.Csc);

    // --- coo_csr ------------------------------------------------------
    {
      Cell C;
      double Taco = timeJit(jitConversion("coo", "csr"), In.Coo);
      C.TacoMs = Taco * 1e3;
      C.SkitRel = relTo(Taco, medianSeconds([&] {
                          RawCsr B = skitCooCsr(Coo);
                          B.release();
                        }));
      C.MklRel = relTo(Taco, medianSeconds([&] {
                         RawCsr B = mklCooCsr(Coo);
                         B.release();
                       }));
      C.NoExtRel = relTo(Taco, medianSeconds([&] {
                           RawCsr B = tacoNoExtCooCsr(Coo);
                           B.release();
                         }));
      CooCsr.push_back({Name, C});
    }

    // --- coo_dia ------------------------------------------------------
    if (diaViable(In)) {
      Cell C;
      double Taco = timeJit(jitConversion("coo", "dia"), In.Coo);
      C.TacoMs = Taco * 1e3;
      C.SkitRel = relTo(Taco, medianSeconds([&] {
                          RawCsr Mid = skitCooCsr(Coo);
                          RawDia B = skitCsrDia(Mid);
                          Mid.release();
                          B.release();
                        }));
      C.MklRel = relTo(Taco, medianSeconds([&] {
                         RawCsr Mid = mklCooCsr(Coo);
                         RawDia B = mklCsrDia(Mid);
                         Mid.release();
                         B.release();
                       }));
      CooDia.push_back({Name, C});
    }

    // --- csr_csc (non-symmetric only) ----------------------------------
    if (!In.Symmetric) {
      Cell C;
      double Taco = timeJit(jitConversion("csr", "csc"), In.Csr);
      C.TacoMs = Taco * 1e3;
      C.SkitRel = relTo(Taco, medianSeconds([&] {
                          RawCsr B = skitCsrCsc(Csr);
                          B.release();
                        }));
      C.MklRel = relTo(Taco, medianSeconds([&] {
                         RawCsr B = mklCsrCsc(Csr);
                         B.release();
                       }));
      CsrCsc.push_back({Name, C});
    }

    // --- csr_dia ------------------------------------------------------
    if (diaViable(In)) {
      Cell C;
      double Taco = timeJit(jitConversion("csr", "dia"), In.Csr);
      C.TacoMs = Taco * 1e3;
      C.SkitRel = relTo(Taco, medianSeconds([&] {
                          RawDia B = skitCsrDia(Csr);
                          B.release();
                        }));
      C.MklRel = relTo(Taco, medianSeconds([&] {
                         RawDia B = mklCsrDia(Csr);
                         B.release();
                       }));
      CsrDia.push_back({Name, C});
    }

    // --- csr_ell (SPARSKIT only; MKL has no ELL routine) ---------------
    if (ellViable(In)) {
      Cell C;
      double Taco = timeJit(jitConversion("csr", "ell"), In.Csr);
      C.TacoMs = Taco * 1e3;
      C.SkitRel = relTo(Taco, medianSeconds([&] {
                          RawEll B = skitCsrEll(Csr);
                          B.release();
                        }));
      CsrEll.push_back({Name, C});
    }

    // --- csc_dia ------------------------------------------------------
    if (diaViable(In)) {
      // For symmetric matrices CSC and CSR coincide, so the paper casts
      // csc_* to csr_* for every system and reports the same results.
      Cell C;
      double Taco = In.Symmetric
                        ? timeJit(jitConversion("csr", "dia"), In.Csr)
                        : timeJit(jitConversion("csc", "dia"), In.Csc);
      C.TacoMs = Taco * 1e3;
      if (In.Symmetric) {
        C.SkitRel = relTo(Taco, medianSeconds([&] {
                            RawDia B = skitCsrDia(Csr);
                            B.release();
                          }));
        C.MklRel = relTo(Taco, medianSeconds([&] {
                           RawDia B = mklCsrDia(Csr);
                           B.release();
                         }));
      } else {
        C.SkitRel = relTo(Taco, medianSeconds([&] {
                            RawCsr Mid = skitCsrCsc(CscT);
                            RawDia B = skitCsrDia(Mid);
                            Mid.release();
                            B.release();
                          }));
        C.MklRel = relTo(Taco, medianSeconds([&] {
                           RawCsr Mid = mklCsrCsc(CscT);
                           RawDia B = mklCsrDia(Mid);
                           Mid.release();
                           B.release();
                         }));
      }
      CscDia.push_back({Name, C});
    }

    // --- csc_ell ------------------------------------------------------
    if (ellViable(In)) {
      Cell C;
      double Taco = In.Symmetric
                        ? timeJit(jitConversion("csr", "ell"), In.Csr)
                        : timeJit(jitConversion("csc", "ell"), In.Csc);
      C.TacoMs = Taco * 1e3;
      if (In.Symmetric) {
        C.SkitRel = relTo(Taco, medianSeconds([&] {
                            RawEll B = skitCsrEll(Csr);
                            B.release();
                          }));
      } else {
        C.SkitRel = relTo(Taco, medianSeconds([&] {
                            RawCsr Mid = skitCsrCsc(CscT);
                            RawEll B = skitCsrEll(Mid);
                            Mid.release();
                            B.release();
                          }));
      }
      CscEll.push_back({Name, C});
    }
  }

  printBlock("coo_csr (COO to CSR)", "coo_csr", CooCsr, /*HasMkl=*/true,
             /*HasNoExt=*/true, Report);
  printBlock("coo_dia (COO to DIA, libraries go through a CSR temporary)",
             "coo_dia", CooDia, true, false, Report);
  printBlock("csr_csc (CSR to CSC, non-symmetric matrices)", "csr_csc",
             CsrCsc, true, false, Report);
  printBlock("csr_dia (CSR to DIA)", "csr_dia", CsrDia, true, false, Report);
  printBlock("csr_ell (CSR to ELL; MKL has no direct routine)", "csr_ell",
             CsrEll, false, false, Report);
  printBlock("csc_dia (CSC to DIA; libraries transpose first unless "
             "symmetric)",
             "csc_dia", CscDia, true, false, Report);
  printBlock("csc_ell (CSC to ELL; libraries transpose first unless "
             "symmetric)",
             "csc_ell", CscEll, false, false, Report);
  return Report.write() ? 0 : 1;
}
