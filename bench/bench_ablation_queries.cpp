//===----------------------------------------------------------------------===//
// Ablation for §5.2's attribute-query optimizations (Table 1): with the
// transformations disabled, csr_ell computes K through a full histogram
// over the nonzeros instead of reading pos-array widths, and count queries
// materialize their dedup temporaries. Measures the end-to-end conversion
// cost both ways.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace convgen;
using namespace convgen::bench;

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "no system C compiler\n");
    return 1;
  }
  std::printf("Ablation: Table 1 query optimizations on vs off\n"
              "(scale %.2f, %d reps; milliseconds; ratio >1 means the "
              "unoptimized queries are slower)\n\n",
              benchScale(), benchReps());
  codegen::Options NoOpt;
  NoOpt.OptimizeQueries = false;

  // Canonical count queries materialize an M x N dedup temporary (the very
  // cost the transformations eliminate), so this ablation caps the matrix
  // scale to keep the unoptimized variant inside memory.
  double Scale = std::min(benchScale(), 0.1);
  std::printf("(matrix scale capped at %.2f: canonical count queries "
              "allocate M x N temporaries)\n\n",
              Scale);

  std::printf("%-10s %-18s %12s %12s %8s\n", "Conversion", "Matrix",
              "optimized", "canonical", "ratio");
  BenchReport Report("BENCH_ablation_queries.json");
  struct PairSpec {
    const char *Src, *Dst;
  };
  for (PairSpec P : {PairSpec{"csr", "ell"}, PairSpec{"csr", "csc"},
                     PairSpec{"csr", "coo"}}) {
    for (const char *Name : {"jnlbrng1", "majorbasis", "scircuit"}) {
      tensor::Triplets T = tensor::corpusEntry(Name).Generate(Scale);
      tensor::SparseTensor Csr =
          tensor::buildFromTriplets(formats::makeCSR(), T);
      if (std::string(P.Dst) == "ell" &&
          static_cast<double>(T.nnz()) <
              0.25 * static_cast<double>(T.maxRowCount() * T.NumRows))
        continue;
      double Opt = timeJit(jitConversion(P.Src, P.Dst), Csr);
      double Canon = timeJit(jitConversion(P.Src, P.Dst, NoOpt), Csr);
      std::printf("%s_%-6s %-18s %12.3f %12.3f %8.2f\n", P.Src, P.Dst, Name,
                  Opt * 1e3, Canon * 1e3, Canon / Opt);
      Report.add(strfmt(
          "{\"pair\": \"%s_%s\", \"matrix\": \"%s\", "
          "\"optimized_seconds\": %.6g, \"canonical_seconds\": %.6g}",
          P.Src, P.Dst, Name, Opt, Canon));
    }
  }
  return Report.write() ? 0 : 1;
}
