//===----------------------------------------------------------------------===//
// Reproduces paper Table 2: statistics of the benchmark matrices. Since the
// SuiteSparse originals cannot ship with the repository, this prints the
// achieved statistics of the synthetic stand-ins next to the published
// targets (scaled by CONVGEN_BENCH_SCALE) so drift is visible.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace convgen;
using namespace convgen::bench;

int main() {
  double Scale = benchScale();
  std::printf("Table 2: benchmark matrices (synthetic stand-ins at scale "
              "%.2f)\n\n",
              Scale);
  std::printf("%-18s %12s %12s | %10s %10s | %8s %8s | %7s %7s | %4s\n",
              "Matrix", "Dimensions", "(target)", "NNZ", "(target)",
              "Diags", "(target)", "MaxRow", "(tgt)", "Sym");
  BenchReport Report("BENCH_table2.json");
  for (const tensor::CorpusEntry &E : tensor::table2Corpus()) {
    const MatrixInputs &In = corpusInputs(E.Name);
    auto ScaleI = [&](int64_t V) {
      return static_cast<long long>(
          std::llround(static_cast<double>(V) * Scale));
    };
    std::printf("%-18s %6lldx%-6lld %5lldx%-6lld | %10lld %10lld | %8lld "
                "%8lld | %7lld %7lld | %4s\n",
                E.Name.c_str(), static_cast<long long>(In.T.NumRows),
                static_cast<long long>(In.T.NumCols), ScaleI(E.Rows),
                ScaleI(E.Cols), static_cast<long long>(In.T.nnz()),
                ScaleI(E.Nnz), static_cast<long long>(In.Diagonals),
                static_cast<long long>(E.Diagonals),
                static_cast<long long>(In.MaxRow),
                static_cast<long long>(E.MaxNnzPerRow),
                E.Symmetric ? "yes" : "no");
    Report.add(strfmt(
        "{\"matrix\": \"%s\", \"rows\": %lld, \"cols\": %lld, "
        "\"nnz\": %lld, \"diagonals\": %lld, \"max_row\": %lld, "
        "\"symmetric\": %s}",
        E.Name.c_str(), static_cast<long long>(In.T.NumRows),
        static_cast<long long>(In.T.NumCols),
        static_cast<long long>(In.T.nnz()),
        static_cast<long long>(In.Diagonals),
        static_cast<long long>(In.MaxRow), E.Symmetric ? "true" : "false"));
  }
  std::printf("\nDiagonal/MaxRow targets are the full-scale values from the "
              "paper; at reduced\nscale the structural families (stencil / "
              "banded / scattered / power-law)\npreserve the shape rather "
              "than the absolute counts.\n");
  return Report.write() ? 0 : 1;
}
