//===----------------------------------------------------------------------===//
// Higher-order conversion benchmark: the third-order pairs the order-N
// pipeline opened up — coo3 -> csf (ranked assembly below compressed
// ancestors + blocked leaf cursors), csf -> csf_102 (a nontrivial 3-D mode
// permutation), and csf -> coo3 (Monotone flattening) — on synthetic
// random / slice-skewed / hyper-sparse tensors.
//
// Emits a human-readable table and machine-readable BENCH_tensor3.json so
// successive PRs can track the perf trajectory.
//
// Environment: CONVGEN_BENCH_SCALE / CONVGEN_BENCH_REPS as usual. At scale
// 1.0 the tensors have ~2M nonzeros; the default 0.2 stays laptop-sized.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "support/StringUtils.h"
#include "tensor/Generators.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace convgen;
using namespace convgen::bench;

namespace {

int64_t scaled(int64_t V) {
  return std::max<int64_t>(
      2, static_cast<int64_t>(static_cast<double>(V) * benchScale()));
}

/// Dimensions scale with the cube root of the scale so nnz (linear in the
/// scale) keeps a constant density in the I x J x K box.
int64_t scaledDim(int64_t V) {
  return std::max<int64_t>(
      4, static_cast<int64_t>(static_cast<double>(V) *
                              std::cbrt(benchScale())));
}

struct TensorCase {
  std::string Name;
  tensor::Triplets T;
};

std::vector<TensorCase> benchTensors() {
  // Full-scale targets: 512^3 boxes with 2M / 1.5M nonzeros, plus a
  // hyper-sparse case in a 8*512-slice box with nnz = half the slice
  // count (genHyperSparse3's cap, requested explicitly here so the
  // recorded workload matches the generator's contract: most slices and
  // fibers stay empty).
  std::vector<TensorCase> Out;
  int64_t D = scaledDim(512);
  int64_t Nnz = scaled(2000000);
  Out.push_back({"random3",
                 tensor::genRandomTensor3(D, D, D, Nnz, 1001)});
  Out.push_back({"skewed3",
                 tensor::genSliceSkewed3(D, D, D, scaled(1500000), 1002)});
  Out.push_back(
      {"hyper3", tensor::genHyperSparse3(D * 8, D, D, D * 4, 1003)});
  return Out;
}

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "bench_tensor3: no system C compiler\n");
    return 1;
  }
  BenchReport Report("BENCH_tensor3.json");
  Report.metaStr("bench", "tensor3");
  Report.meta("openmp", jit::jitOpenMPAvailable() ? "true" : "false");

  const std::pair<const char *, const char *> Pairs[] = {
      {"coo3", "csf"}, {"csf", "csf_102"}, {"csf", "coo3"}};

  std::printf("%-10s %-14s %12s %12s %10s\n", "tensor", "pair", "median_ms",
              "min_ms", "nnz");
  for (const TensorCase &C : benchTensors()) {
    for (auto [S, D] : Pairs) {
      tensor::SparseTensor In = tensor::buildFromTriplets(
          formats::standardFormatOrDie(S), C.T);
      const jit::JitConversion &Conv = jitConversion(S, D);
      TimeStats Stats = timeJitStats(Conv, In);
      std::string Label =
          C.Name + "." + std::string(S) + "_to_" + std::string(D);
      std::printf("%-10s %-14s %12.3f %12.3f %10lld\n", C.Name.c_str(),
                  (std::string(S) + "->" + D).c_str(),
                  Stats.MedianSeconds * 1e3, Stats.MinSeconds * 1e3,
                  static_cast<long long>(C.T.nnz()));
      Report.add(strfmt("{\"label\": \"%s\", \"nnz\": %lld, "
                        "\"median_seconds\": %.6g, \"min_seconds\": %.6g}",
                        Label.c_str(), static_cast<long long>(C.T.nnz()),
                        Stats.MedianSeconds, Stats.MinSeconds));
    }
  }
  return Report.write() ? 0 : 1;
}
