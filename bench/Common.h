//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benchmark binaries: lazy corpus construction at
/// a configurable scale, simple wall-clock timing (median of repeated
/// runs, as in §7.1), and cached JIT-compiled conversions.
///
/// Environment knobs:
///   CONVGEN_BENCH_SCALE  fraction of the paper's matrix sizes (default 0.2;
///                        1.0 reproduces Table 2 sizes exactly)
///   CONVGEN_BENCH_REPS   timing repetitions per cell (default 5; the paper
///                        uses 50)
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_BENCH_COMMON_H
#define CONVGEN_BENCH_COMMON_H

#include "codegen/Generator.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "support/DegradationLog.h"
#include "support/StringUtils.h"
#include "tensor/Corpus.h"
#include "tensor/Oracle.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace convgen {
namespace bench {

inline double benchScale() {
  static double Scale = [] {
    const char *Env = std::getenv("CONVGEN_BENCH_SCALE");
    double S = Env ? std::atof(Env) : 0.2;
    return S > 0 && S <= 1.0 ? S : 0.2;
  }();
  return Scale;
}

inline int benchReps() {
  static int Reps = [] {
    const char *Env = std::getenv("CONVGEN_BENCH_REPS");
    int R = Env ? std::atoi(Env) : 5;
    return R > 0 ? R : 5;
  }();
  return Reps;
}

/// Wall-clock statistics over benchReps() runs. The median is robust to
/// scheduler noise (the paper's §7.1 methodology); the min approximates
/// the noise-free cost and is what cache-effect comparisons want.
struct TimeStats {
  double MinSeconds = 0;
  double MedianSeconds = 0;
};

/// Times \p Fn over benchReps() runs.
inline TimeStats timeStats(const std::function<void()> &Fn) {
  std::vector<double> Times;
  for (int Rep = 0; Rep < benchReps(); ++Rep) {
    auto Begin = std::chrono::steady_clock::now();
    Fn();
    Times.push_back(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Begin)
                        .count());
  }
  std::sort(Times.begin(), Times.end());
  return {Times.front(), Times[Times.size() / 2]};
}

/// Median seconds over benchReps() runs (see timeStats for min + median).
inline double medianSeconds(const std::function<void()> &Fn) {
  return timeStats(Fn).MedianSeconds;
}

/// Machine-readable output: every bench binary writes a BENCH_<name>.json
/// beside its human-readable table (the same shape bench_parallel_scaling
/// introduced), so successive PRs can track the perf trajectory without
/// parsing tables. Scalar metadata first, then a "results" array whose
/// entries the benchmark formats itself (strfmt keeps this dependency-free).
class BenchReport {
public:
  /// \p File is the output name, e.g. "BENCH_table3.json".
  explicit BenchReport(std::string File) : File(std::move(File)) {
    meta("scale", strfmt("%.3f", benchScale()));
    meta("reps", strfmt("%d", benchReps()));
    // Provenance: parallel-speedup numbers are only meaningful relative to
    // the recording host's core count (the repo's historical JSONs were
    // recorded on a 1-CPU dev container; the CI bench-multicore leg
    // uploads multi-core artifacts with this field set accordingly).
    meta("host_threads",
         strfmt("%u", std::max(1u, std::thread::hardware_concurrency())));
  }

  /// Adds one metadata key with a raw JSON value ("3", "0.2", "true").
  void meta(const std::string &Key, const std::string &RawValue) {
    Meta.push_back("\"" + Key + "\": " + RawValue);
  }
  /// Adds one metadata key with a string value (quoted for you).
  void metaStr(const std::string &Key, const std::string &Value) {
    meta(Key, "\"" + Value + "\"");
  }

  /// Adds one pre-formatted JSON object to the results array.
  void add(const std::string &EntryObject) { Entries.push_back(EntryObject); }

  /// The standard timing entry most benches emit.
  static std::string timingEntry(const std::string &Label,
                                 const TimeStats &S) {
    return strfmt("{\"label\": \"%s\", \"median_seconds\": %.6g, "
                  "\"min_seconds\": %.6g}",
                  Label.c_str(), S.MedianSeconds, S.MinSeconds);
  }

  /// Writes the report; returns false (with a note on stderr) on failure.
  /// The process's degradation summary is embedded (and echoed to stderr
  /// when nonempty): a run whose JIT silently fell back to the interpreter
  /// must not pass its timings off as native numbers.
  bool write() const {
    std::string Degraded = support::DegradationLog::instance().summary();
    if (support::DegradationLog::instance().snapshot().degradedTotal() > 0)
      std::fprintf(stderr,
                   "convgen: runtime degraded during this benchmark (%s); "
                   "affected timings are interpreter timings, not native\n",
                   Degraded.c_str());
    std::string Json = "{\n";
    Json += "  \"degradations\": \"" + Degraded + "\",\n";
    for (const std::string &M : Meta)
      Json += "  " + M + ",\n";
    Json += "  \"results\": [\n";
    for (size_t I = 0; I < Entries.size(); ++I)
      Json += "    " + Entries[I] + (I + 1 < Entries.size() ? ",\n" : "\n");
    Json += "  ]\n}\n";
    std::FILE *Out = std::fopen(File.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", File.c_str());
      return false;
    }
    std::fwrite(Json.data(), 1, Json.size(), Out);
    std::fclose(Out);
    std::printf("\nwrote %s\n", File.c_str());
    return true;
  }

private:
  std::string File;
  std::vector<std::string> Meta;
  std::vector<std::string> Entries;
};

/// One corpus matrix, prepared in the formats the experiments read.
struct MatrixInputs {
  std::string Name;
  tensor::Triplets T;
  tensor::SparseTensor Coo, Csr, Csc;
  int64_t Diagonals = 0;
  int64_t MaxRow = 0;
  bool Symmetric = true;
};

/// Builds (and caches) a corpus matrix at the bench scale.
inline const MatrixInputs &corpusInputs(const std::string &Name) {
  static std::map<std::string, std::unique_ptr<MatrixInputs>> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return *It->second;
  const tensor::CorpusEntry &E = tensor::corpusEntry(Name);
  auto In = std::make_unique<MatrixInputs>();
  In->Name = Name;
  In->T = E.Generate(benchScale());
  In->Coo = tensor::buildFromTriplets(formats::makeCOO(), In->T);
  In->Csr = tensor::buildFromTriplets(formats::makeCSR(), In->T);
  In->Csc = tensor::buildFromTriplets(formats::makeCSC(), In->T);
  In->Diagonals = In->T.countDiagonals();
  In->MaxRow = In->T.maxRowCount();
  In->Symmetric = E.Symmetric;
  return *(Cache[Name] = std::move(In));
}

/// The paper omits DIA/ELL conversions when the padded layout would be
/// more than 75% explicit zeros.
inline bool diaViable(const MatrixInputs &In) {
  double Stored = static_cast<double>(In.Diagonals) *
                  static_cast<double>(In.T.NumRows);
  return Stored > 0 &&
         static_cast<double>(In.T.nnz()) >= 0.25 * Stored;
}

inline bool ellViable(const MatrixInputs &In) {
  double Stored = static_cast<double>(In.MaxRow) *
                  static_cast<double>(In.T.NumRows);
  return Stored > 0 &&
         static_cast<double>(In.T.nnz()) >= 0.25 * Stored;
}

/// Lazily generated + JIT-compiled conversion for a format pair, shared
/// through the process-wide PlanCache. The returned reference is pinned
/// for the life of the process (not just of the cache entry), so it stays
/// valid even across PlanCache::clearMemory().
inline const jit::JitConversion &
jitConversion(const std::string &Src, const std::string &Dst,
              codegen::Options Opts = codegen::Options()) {
  static std::map<std::string, std::shared_ptr<jit::JitConversion>> Pinned;
  formats::Format Source = formats::standardFormatOrDie(Src);
  formats::Format Target = formats::standardFormatOrDie(Dst);
  std::shared_ptr<jit::JitConversion> Handle =
      convert::PlanCache::instance().jit(Source, Target, Opts);
  return *(Pinned[convert::planKey(Source, Target, Opts)] = Handle);
}

/// Times a JIT conversion on a marshalled input (frees outputs).
inline TimeStats timeJitStats(const jit::JitConversion &Conv,
                              const tensor::SparseTensor &In) {
  jit::CTensor A;
  jit::marshalInput(In, &A);
  return timeStats([&] {
    jit::CTensor B;
    Conv.runRaw(&A, &B);
    jit::freeOutput(&B);
  });
}

/// Median seconds of one JIT conversion run (see timeJitStats).
inline double timeJit(const jit::JitConversion &Conv,
                      const tensor::SparseTensor &In) {
  return timeJitStats(Conv, In).MedianSeconds;
}

/// Like timeJitStats, but also reports the routine's own per-phase
/// breakdown (jit::kNumPhases slots, mean seconds per run) from its
/// exported phase clock. Zeros if the object predates phase timing.
inline TimeStats timeJitWithPhases(const jit::JitConversion &Conv,
                                   const tensor::SparseTensor &In,
                                   double Phases[jit::kNumPhases]) {
  std::vector<double> Before(static_cast<size_t>(jit::kNumPhases), 0);
  if (const double *P = Conv.phaseSeconds())
    Before.assign(P, P + jit::kNumPhases);
  TimeStats S = timeJitStats(Conv, In);
  for (int I = 0; I < jit::kNumPhases; ++I)
    Phases[I] = 0;
  if (const double *P = Conv.phaseSeconds())
    for (int I = 0; I < jit::kNumPhases; ++I)
      Phases[I] = (P[I] - Before[static_cast<size_t>(I)]) /
                  static_cast<double>(benchReps());
  return S;
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

} // namespace bench
} // namespace convgen

#endif // CONVGEN_BENCH_COMMON_H
