//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benchmark binaries: lazy corpus construction at
/// a configurable scale, simple wall-clock timing (median of repeated
/// runs, as in §7.1), and cached JIT-compiled conversions.
///
/// Environment knobs:
///   CONVGEN_BENCH_SCALE  fraction of the paper's matrix sizes (default 0.2;
///                        1.0 reproduces Table 2 sizes exactly)
///   CONVGEN_BENCH_REPS   timing repetitions per cell (default 5; the paper
///                        uses 50)
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_BENCH_COMMON_H
#define CONVGEN_BENCH_COMMON_H

#include "codegen/Generator.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "tensor/Corpus.h"
#include "tensor/Oracle.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace convgen {
namespace bench {

inline double benchScale() {
  static double Scale = [] {
    const char *Env = std::getenv("CONVGEN_BENCH_SCALE");
    double S = Env ? std::atof(Env) : 0.2;
    return S > 0 && S <= 1.0 ? S : 0.2;
  }();
  return Scale;
}

inline int benchReps() {
  static int Reps = [] {
    const char *Env = std::getenv("CONVGEN_BENCH_REPS");
    int R = Env ? std::atoi(Env) : 5;
    return R > 0 ? R : 5;
  }();
  return Reps;
}

/// Times \p Fn over benchReps() runs and returns the median seconds.
inline double medianSeconds(const std::function<void()> &Fn) {
  std::vector<double> Times;
  for (int Rep = 0; Rep < benchReps(); ++Rep) {
    auto Begin = std::chrono::steady_clock::now();
    Fn();
    Times.push_back(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Begin)
                        .count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// One corpus matrix, prepared in the formats the experiments read.
struct MatrixInputs {
  std::string Name;
  tensor::Triplets T;
  tensor::SparseTensor Coo, Csr, Csc;
  int64_t Diagonals = 0;
  int64_t MaxRow = 0;
  bool Symmetric = true;
};

/// Builds (and caches) a corpus matrix at the bench scale.
inline const MatrixInputs &corpusInputs(const std::string &Name) {
  static std::map<std::string, std::unique_ptr<MatrixInputs>> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return *It->second;
  const tensor::CorpusEntry &E = tensor::corpusEntry(Name);
  auto In = std::make_unique<MatrixInputs>();
  In->Name = Name;
  In->T = E.Generate(benchScale());
  In->Coo = tensor::buildFromTriplets(formats::makeCOO(), In->T);
  In->Csr = tensor::buildFromTriplets(formats::makeCSR(), In->T);
  In->Csc = tensor::buildFromTriplets(formats::makeCSC(), In->T);
  In->Diagonals = In->T.countDiagonals();
  In->MaxRow = In->T.maxRowCount();
  In->Symmetric = E.Symmetric;
  return *(Cache[Name] = std::move(In));
}

/// The paper omits DIA/ELL conversions when the padded layout would be
/// more than 75% explicit zeros.
inline bool diaViable(const MatrixInputs &In) {
  double Stored = static_cast<double>(In.Diagonals) *
                  static_cast<double>(In.T.NumRows);
  return Stored > 0 &&
         static_cast<double>(In.T.nnz()) >= 0.25 * Stored;
}

inline bool ellViable(const MatrixInputs &In) {
  double Stored = static_cast<double>(In.MaxRow) *
                  static_cast<double>(In.T.NumRows);
  return Stored > 0 &&
         static_cast<double>(In.T.nnz()) >= 0.25 * Stored;
}

/// Lazily generated + JIT-compiled conversion for a format pair, shared
/// through the process-wide PlanCache. The returned reference is pinned
/// for the life of the process (not just of the cache entry), so it stays
/// valid even across PlanCache::clearMemory().
inline const jit::JitConversion &
jitConversion(const std::string &Src, const std::string &Dst,
              codegen::Options Opts = codegen::Options()) {
  static std::map<std::string, std::shared_ptr<jit::JitConversion>> Pinned;
  formats::Format Source = formats::standardFormat(Src);
  formats::Format Target = formats::standardFormat(Dst);
  std::shared_ptr<jit::JitConversion> Handle =
      convert::PlanCache::instance().jit(Source, Target, Opts);
  return *(Pinned[convert::planKey(Source, Target, Opts)] = Handle);
}

/// Times one run of a JIT conversion on a marshalled input (frees outputs).
inline double timeJit(const jit::JitConversion &Conv,
                      const tensor::SparseTensor &In) {
  jit::CTensor A;
  jit::marshalInput(In, &A);
  return medianSeconds([&] {
    jit::CTensor B;
    Conv.runRaw(&A, &B);
    jit::freeOutput(&B);
  });
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

} // namespace bench
} // namespace convgen

#endif // CONVGEN_BENCH_COMMON_H
