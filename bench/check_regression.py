#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_*.json files against the
checked-in baselines and fail on regressions beyond a tolerance.

Usage:
    python3 bench/check_regression.py --baseline-dir . --fresh-dir build \
        [--tolerance 0.25]

For every BENCH_*.json present in BOTH directories (matched by filename):

  * Provenance gate. If the two files disagree on "host_threads",
    "scale", or "reps", the file is SKIPPED with a notice — numbers
    recorded on a different host shape or workload size are not
    comparable (the checked-in baselines come from a 1-CPU container;
    CI smoke runs use a smaller scale and real cores).

  * Entry matching. Result entries pair up by their "label" field when
    present, else by the ("section", "clients") pair. Entries present on
    only one side are reported as notices, never failures (new sections
    appear as benches grow).

  * Malformed or incomparable baselines never crash the gate. A baseline
    whose entries lack a metric the fresh run has (or carry a null or
    non-numeric value), or whose JSON has an unexpected shape, is treated
    as "no baseline": the file or entry is skipped with a notice and the
    gate still exits 0. Only genuine measured regressions fail CI.

  * Regression test, tolerance t (default 0.25):
      - "median_seconds"       regressed when fresh > baseline * (1 + t)
      - "requests_per_second"  regressed when fresh < baseline * (1 - t)
    Improvements never fail; tiny baselines (< 1 ms / < 1 req/s) are
    ignored as noise-dominated.

Exit status: 1 if any regression was found, 0 otherwise (including
"nothing comparable").
"""

import argparse
import glob
import json
import os
import sys

PROVENANCE_KEYS = ("host_threads", "scale", "reps")
# Below these, timer noise and scheduler jitter dominate the measurement.
MIN_SECONDS = 1e-3
MIN_RPS = 1.0


def entry_key(entry):
    if "label" in entry:
        return ("label", str(entry.get("section", "")), str(entry["label"]))
    return ("pair", str(entry.get("section", "")),
            str(entry.get("clients", "")))


def numeric(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def entries_by_key(doc):
    """Results indexed by entry_key, or None when the shape is wrong."""
    results = doc.get("results", []) if isinstance(doc, dict) else None
    if not isinstance(results, list):
        return None
    out = {}
    for e in results:
        if isinstance(e, dict):
            out[entry_key(e)] = e
    return out


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_file(name, base, fresh, tolerance, notices, regressions):
    if not isinstance(base, dict) or not isinstance(fresh, dict):
        notices.append(f"{name}: skipped (not a JSON object; no baseline)")
        return
    for key in PROVENANCE_KEYS:
        if base.get(key) != fresh.get(key):
            notices.append(
                f"{name}: skipped ({key} differs: baseline "
                f"{base.get(key)!r} vs fresh {fresh.get(key)!r})"
            )
            return

    base_entries = entries_by_key(base)
    fresh_entries = entries_by_key(fresh)
    if base_entries is None or fresh_entries is None:
        notices.append(
            f"{name}: skipped (\"results\" is not a list; no baseline)")
        return

    for key, b in base_entries.items():
        f = fresh_entries.get(key)
        tag = f"{name}:{'/'.join(str(k) for k in key[1:])}"
        if f is None:
            notices.append(f"{tag}: entry missing from fresh run")
            continue
        if "median_seconds" in b and "median_seconds" in f:
            bv, fv = b["median_seconds"], f["median_seconds"]
            if not numeric(bv) or not numeric(fv):
                notices.append(
                    f"{tag}: non-numeric median_seconds; treated as no "
                    f"baseline")
            elif bv >= MIN_SECONDS and fv > bv * (1 + tolerance):
                regressions.append(
                    f"{tag}: median_seconds {bv:.6g} -> {fv:.6g} "
                    f"(+{(fv / bv - 1) * 100:.0f}%, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
        if "requests_per_second" in b and "requests_per_second" in f:
            bv, fv = b["requests_per_second"], f["requests_per_second"]
            if not numeric(bv) or not numeric(fv):
                notices.append(
                    f"{tag}: non-numeric requests_per_second; treated as "
                    f"no baseline")
            elif bv >= MIN_RPS and fv < bv * (1 - tolerance):
                regressions.append(
                    f"{tag}: requests_per_second {bv:.6g} -> {fv:.6g} "
                    f"({(fv / bv - 1) * 100:.0f}%, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
    for key in fresh_entries:
        if key not in base_entries:
            tag = f"{name}:{'/'.join(str(k) for k in key[1:])}"
            notices.append(f"{tag}: new entry with no baseline")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", required=True,
                    help="directory with the checked-in BENCH_*.json")
    ap.add_argument("--fresh-dir", required=True,
                    help="directory with the just-recorded BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative slowdown (default 0.25)")
    args = ap.parse_args()

    baselines = sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baselines:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}")
        return 0

    notices, regressions, compared = [], [], 0
    for base_path in baselines:
        name = os.path.basename(base_path)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(fresh_path):
            notices.append(f"{name}: no fresh recording; skipped")
            continue
        try:
            base, fresh = load(base_path), load(fresh_path)
        except (json.JSONDecodeError, OSError) as e:
            notices.append(f"{name}: unreadable ({e}); treated as no "
                           f"baseline")
            continue
        compared += 1
        try:
            compare_file(name, base, fresh, args.tolerance, notices,
                         regressions)
        except (TypeError, KeyError, AttributeError, ValueError) as e:
            # A malformed baseline must never crash the gate: treat the
            # whole file as having no baseline.
            notices.append(f"{name}: not comparable ({e}); skipped")

    for n in notices:
        print(f"note: {n}")
    if regressions:
        print(f"\n{len(regressions)} bench regression(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance:")
        for r in regressions:
            print(f"  REGRESSION {r}")
        return 1
    print(f"\nbench regression gate: {compared} file(s) compared, "
          f"no regressions beyond {args.tolerance * 100:.0f}% tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
