//===----------------------------------------------------------------------===//
// Huge-dimension hyper-sparse benchmark: the workload class the
// sorted-ranking strategy opens. A coo3 tensor with a 2^31-extent mode and
// ~10^5 nonzeros cannot go through dense rank-array assembly at all (the
// rank array alone would be 5 * 2^31 bytes — the planner reports the
// size-grounds verdict, printed below), while the sorted path converts it
// with O(nnz) workspaces; the nnz sweep demonstrates the cost tracking nnz
// rather than any dimension extent.
//
// Emits a human-readable table and machine-readable BENCH_hypersparse.json.
// Environment: CONVGEN_BENCH_SCALE / CONVGEN_BENCH_REPS as usual; the
// default scale 0.2 runs ~20k-nonzero points, scale 1.0 the full 10^5.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "support/StringUtils.h"
#include "tensor/Generators.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace convgen;
using namespace convgen::bench;

namespace {

int64_t scaled(int64_t V) {
  return std::max<int64_t>(
      64, static_cast<int64_t>(static_cast<double>(V) * benchScale()));
}

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "bench_hypersparse: no system C compiler\n");
    return 1;
  }
  BenchReport Report("BENCH_hypersparse.json");
  Report.metaStr("bench", "hypersparse");
  Report.meta("openmp", jit::jitOpenMPAvailable() ? "true" : "false");
  Report.meta("rank_dense_max_bytes",
              strfmt("%lld", static_cast<long long>(
                                 codegen::rankDenseMaxBytes())));

  const std::vector<int64_t> Dims = {int64_t(1) << 31, int64_t(1) << 20,
                                     int64_t(1) << 20};
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");

  // The dense path is genuinely rejected at these dimensions: without the
  // sorted fallback the planner's only honest answer is a size-grounds
  // diagnostic (exercised here through a pair that has no fallback), and
  // with it the plan switches every CSF level to sorted ranking.
  {
    std::string Why;
    bool Rejected = !codegen::conversionSupported(
        formats::standardFormatOrDie("csr"), formats::standardFormatOrDie("sky"),
        {Dims[0], Dims[0]}, &Why);
    std::printf("dense-path rejection (csr->sky at 2^31 rows):\n  %s\n\n",
                Rejected ? Why.c_str() : "UNEXPECTEDLY ACCEPTED");
    Report.meta("dense_path_rejected", Rejected ? "true" : "false");
    codegen::AssemblyPlan Plan = codegen::planAssembly(Coo3, Csf, Dims);
    std::string Sorted;
    for (bool S : Plan.Sorted)
      Sorted += S ? '1' : '0';
    std::printf("coo3->csf strategy at (2^31, 2^20, 2^20): sorted levels %s\n\n",
                Sorted.c_str());
    Report.metaStr("sorted_levels", Sorted);
  }

  codegen::Options Opts = codegen::optionsForDims(Coo3, Csf, {}, Dims);
  std::printf("%-22s %12s %12s %14s\n", "case", "median_ms", "min_ms",
              "ns_per_nnz");
  const int64_t FullNnz = scaled(100000);
  for (int64_t Nnz : {FullNnz / 4, FullNnz / 2, FullNnz}) {
    tensor::Triplets T =
        tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], Nnz, 401);
    tensor::SparseTensor In = tensor::buildFromTriplets(Coo3, T);
    const jit::JitConversion &Fwd = jitConversion("coo3", "csf", Opts);
    TimeStats S = timeJitStats(Fwd, In);
    std::string Label = strfmt("coo3_to_csf.%lldk",
                               static_cast<long long>(T.nnz() / 1000));
    double NsPerNnz = T.nnz() ? S.MedianSeconds * 1e9 /
                                    static_cast<double>(T.nnz())
                              : 0;
    std::printf("%-22s %12.3f %12.3f %14.1f\n", Label.c_str(),
                S.MedianSeconds * 1e3, S.MinSeconds * 1e3, NsPerNnz);
    Report.add(strfmt("{\"label\": \"%s\", \"nnz\": %lld, "
                      "\"median_seconds\": %.6g, \"min_seconds\": %.6g, "
                      "\"ns_per_nnz\": %.1f}",
                      Label.c_str(), static_cast<long long>(T.nnz()),
                      S.MedianSeconds, S.MinSeconds, NsPerNnz));
  }

  // Round-trip leg: csf back to coo3 at the full point (needs no sorted
  // levels — the coo3 target has no dense ranking structures — so it also
  // documents that huge dims alone do not force the strategy).
  {
    tensor::Triplets T =
        tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], FullNnz, 401);
    tensor::SparseTensor InCsf = tensor::buildFromTriplets(Csf, T);
    codegen::Options Back = codegen::optionsForDims(Csf, Coo3, {}, Dims);
    const jit::JitConversion &Rev = jitConversion("csf", "coo3", Back);
    TimeStats S = timeJitStats(Rev, InCsf);
    std::printf("%-22s %12.3f %12.3f %14.1f\n", "csf_to_coo3",
                S.MedianSeconds * 1e3, S.MinSeconds * 1e3,
                T.nnz() ? S.MedianSeconds * 1e9 /
                              static_cast<double>(T.nnz())
                        : 0);
    Report.add(strfmt("{\"label\": \"csf_to_coo3\", \"nnz\": %lld, "
                      "\"median_seconds\": %.6g, \"min_seconds\": %.6g}",
                      static_cast<long long>(T.nnz()), S.MedianSeconds,
                      S.MinSeconds));
  }
  return Report.write() ? 0 : 1;
}
