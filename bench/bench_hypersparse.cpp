//===----------------------------------------------------------------------===//
// Huge-dimension hyper-sparse benchmark: the workload class the
// sorted-ranking strategy opens. A coo3 tensor with a 2^31-extent mode
// cannot go through dense rank-array assembly at all (the rank array alone
// would be 5 * 2^31 bytes — the planner reports the size-grounds verdict,
// printed below), while the sorted path converts it with O(nnz)
// workspaces; the nnz sweep demonstrates the cost tracking nnz rather than
// any dimension extent.
//
// Each nnz point is measured under three list-construction variants so the
// strategy knobs' effect is a recorded number, not a claim:
//
//   shared     one full-arity sort, ancestor lists by prefix compaction
//              (the default for nested sorted levels)
//   per-level  CONVGEN_NO_SHARED_SORT=1 CONVGEN_RANK_STRATEGY=sorted —
//              the pre-shared-sort behavior: every level re-collects and
//              re-sorts the same nonzeros
//   hashed     CONVGEN_RANK_STRATEGY=hashed — open-addressing dedup before
//              the (shared) sort
//
// Emits a human-readable table and machine-readable BENCH_hypersparse.json
// (speedup columns included). Environment: CONVGEN_BENCH_SCALE /
// CONVGEN_BENCH_REPS as usual; scale 1.0 runs the full 10^6-nonzero point
// the shared-vs-per-level acceptance number is defined at, the default 0.2
// a 200k smoke point.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "support/StringUtils.h"
#include "tensor/Generators.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace convgen;
using namespace convgen::bench;

namespace {

int64_t scaled(int64_t V) {
  return std::max<int64_t>(
      64, static_cast<int64_t>(static_cast<double>(V) * benchScale()));
}

/// One list-construction variant: a label plus the env overrides that
/// select it. Overrides are applied for plan acquisition AND the timed
/// runs (the plan key re-derives its strategy bits from the environment,
/// so each variant lands on its own cached plan and JIT object).
struct Variant {
  const char *Label;
  std::vector<std::pair<const char *, const char *>> Env;
};

class ScopedVariant {
public:
  explicit ScopedVariant(const Variant &V) {
    for (const auto &[Name, Value] : V.Env) {
      const char *Old = std::getenv(Name);
      Saved.emplace_back(Name, Old ? std::make_optional<std::string>(Old)
                                   : std::nullopt);
      setenv(Name, Value, 1);
    }
  }
  ~ScopedVariant() {
    // Restore, don't unset: an ambient knob (e.g. the README-documented
    // CONVGEN_RANK_STRATEGY) must survive across variants, or later
    // "shared" rows would silently measure a different configuration.
    for (const auto &[Name, Old] : Saved) {
      if (Old)
        setenv(Name, Old->c_str(), 1);
      else
        unsetenv(Name);
    }
  }

private:
  std::vector<std::pair<const char *, std::optional<std::string>>> Saved;
};

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "bench_hypersparse: no system C compiler\n");
    return 1;
  }
  BenchReport Report("BENCH_hypersparse.json");
  Report.metaStr("bench", "hypersparse");
  Report.meta("openmp", jit::jitOpenMPAvailable() ? "true" : "false");
  Report.meta("rank_dense_max_bytes",
              strfmt("%lld", static_cast<long long>(
                                 codegen::rankDenseMaxBytes())));

  const std::vector<int64_t> Dims = {int64_t(1) << 31, int64_t(1) << 20,
                                     int64_t(1) << 20};
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");

  // The dense path is genuinely rejected at these dimensions: without the
  // sorted fallback the planner's only honest answer is a size-grounds
  // diagnostic (exercised here through a pair that has no fallback), and
  // with it the plan switches every CSF level to sorted ranking sharing
  // one full-arity sort.
  {
    std::string Why;
    bool Rejected = !codegen::conversionSupported(
        formats::standardFormatOrDie("csr"), formats::standardFormatOrDie("sky"),
        {Dims[0], Dims[0]}, &Why);
    std::printf("dense-path rejection (csr->sky at 2^31 rows):\n  %s\n\n",
                Rejected ? Why.c_str() : "UNEXPECTEDLY ACCEPTED");
    Report.meta("dense_path_rejected", Rejected ? "true" : "false");
    codegen::AssemblyPlan Plan = codegen::planAssembly(Coo3, Csf, Dims);
    std::string Sorted;
    for (bool S : Plan.Sorted)
      Sorted += S ? '1' : '0';
    std::printf("coo3->csf strategy at (2^31, 2^20, 2^20): sorted levels %s, "
                "shared-sort anchor level %d\n\n",
                Sorted.c_str(), Plan.SharedSortAnchor);
    Report.metaStr("sorted_levels", Sorted);
    Report.meta("shared_sort_anchor",
                strfmt("%d", Plan.SharedSortAnchor));
  }

  // Every knob is pinned in every variant, so an ambient
  // CONVGEN_RANK_STRATEGY / CONVGEN_NO_SHARED_SORT in the caller's
  // environment cannot relabel a row.
  const Variant Variants[] = {
      {"shared",
       {{"CONVGEN_NO_SHARED_SORT", "0"}, {"CONVGEN_RANK_STRATEGY", "sorted"}}},
      {"perlevel",
       {{"CONVGEN_NO_SHARED_SORT", "1"}, {"CONVGEN_RANK_STRATEGY", "sorted"}}},
      {"hashed",
       {{"CONVGEN_NO_SHARED_SORT", "0"}, {"CONVGEN_RANK_STRATEGY", "hashed"}}},
  };

  std::printf("%-26s %12s %12s %14s\n", "case", "median_ms", "min_ms",
              "ns_per_nnz");
  const int64_t FullNnz = scaled(1000000);
  double SharedVsPerLevel = 0;
  for (int64_t Nnz : {FullNnz / 4, FullNnz / 2, FullNnz}) {
    tensor::Triplets T =
        tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], Nnz, 401);
    tensor::SparseTensor In = tensor::buildFromTriplets(Coo3, T);
    double MedianByVariant[3] = {0, 0, 0};
    for (size_t V = 0; V < 3; ++V) {
      ScopedVariant Env(Variants[V]);
      codegen::Options Opts = codegen::optionsForDims(Coo3, Csf, {}, Dims);
      const jit::JitConversion &Fwd = jitConversion("coo3", "csf", Opts);
      TimeStats S = timeJitStats(Fwd, In);
      MedianByVariant[V] = S.MedianSeconds;
      std::string Label =
          strfmt("coo3_to_csf.%lldk.%s",
                 static_cast<long long>(T.nnz() / 1000), Variants[V].Label);
      double NsPerNnz = T.nnz() ? S.MedianSeconds * 1e9 /
                                      static_cast<double>(T.nnz())
                                : 0;
      std::printf("%-26s %12.3f %12.3f %14.1f\n", Label.c_str(),
                  S.MedianSeconds * 1e3, S.MinSeconds * 1e3, NsPerNnz);
      Report.add(strfmt("{\"label\": \"%s\", \"variant\": \"%s\", "
                        "\"nnz\": %lld, \"median_seconds\": %.6g, "
                        "\"min_seconds\": %.6g, \"ns_per_nnz\": %.1f}",
                        Label.c_str(), Variants[V].Label,
                        static_cast<long long>(T.nnz()), S.MedianSeconds,
                        S.MinSeconds, NsPerNnz));
    }
    double Speedup = MedianByVariant[0] > 0
                         ? MedianByVariant[1] / MedianByVariant[0]
                         : 0;
    double HashedRatio = MedianByVariant[0] > 0
                             ? MedianByVariant[2] / MedianByVariant[0]
                             : 0;
    std::printf("  %-24s %.2fx vs per-level, hashed/shared %.2fx\n",
                "shared-sort speedup:", Speedup, HashedRatio);
    Report.add(strfmt("{\"label\": \"coo3_to_csf.%lldk.speedups\", "
                      "\"nnz\": %lld, "
                      "\"shared_vs_perlevel_speedup\": %.3f, "
                      "\"hashed_over_shared_ratio\": %.3f}",
                      static_cast<long long>(T.nnz() / 1000),
                      static_cast<long long>(T.nnz()), Speedup,
                      HashedRatio));
    if (Nnz == FullNnz)
      SharedVsPerLevel = Speedup;
  }
  Report.meta("shared_vs_perlevel_speedup_full",
              strfmt("%.3f", SharedVsPerLevel));

  // Round-trip leg: csf back to coo3 at the full point (needs no sorted
  // levels — the coo3 target has no dense ranking structures — so it also
  // documents that huge dims alone do not force the strategy).
  {
    tensor::Triplets T =
        tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], FullNnz, 401);
    tensor::SparseTensor InCsf = tensor::buildFromTriplets(Csf, T);
    codegen::Options Back = codegen::optionsForDims(Csf, Coo3, {}, Dims);
    const jit::JitConversion &Rev = jitConversion("csf", "coo3", Back);
    TimeStats S = timeJitStats(Rev, InCsf);
    std::printf("%-26s %12.3f %12.3f %14.1f\n", "csf_to_coo3",
                S.MedianSeconds * 1e3, S.MinSeconds * 1e3,
                T.nnz() ? S.MedianSeconds * 1e9 /
                              static_cast<double>(T.nnz())
                        : 0);
    Report.add(strfmt("{\"label\": \"csf_to_coo3\", \"nnz\": %lld, "
                      "\"median_seconds\": %.6g, \"min_seconds\": %.6g}",
                      static_cast<long long>(T.nnz()), S.MedianSeconds,
                      S.MinSeconds));
  }
  return Report.write() ? 0 : 1;
}
