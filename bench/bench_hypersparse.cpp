//===----------------------------------------------------------------------===//
// Huge-dimension hyper-sparse benchmark: the workload class the
// sorted-ranking strategy opens. A coo3 tensor with a 2^31-extent mode
// cannot go through dense rank-array assembly at all (the rank array alone
// would be 5 * 2^31 bytes — the planner reports the size-grounds verdict,
// printed below), while the sorted path converts it with O(nnz)
// workspaces; the nnz sweep demonstrates the cost tracking nnz rather than
// any dimension extent.
//
// Each nnz point is measured under three list-construction variants so the
// strategy knobs' effect is a recorded number, not a claim:
//
//   shared     one full-arity sort, ancestor lists by prefix compaction
//              (the default for nested sorted levels)
//   per-level  CONVGEN_NO_SHARED_SORT=1 CONVGEN_RANK_STRATEGY=sorted —
//              the pre-shared-sort behavior: every level re-collects and
//              re-sorts the same nonzeros
//   hashed     CONVGEN_RANK_STRATEGY=hashed — open-addressing dedup before
//              the (shared) sort
//
// A second leg pits the two sort lowerings against each other at
// dimensions whose coordinate tuple packs into 64 bits (2^24 x 2^20 x
// 2^20 = exactly 64 key bits — still far past the dense-rank budget, so
// every level stays sorted): "merge" forces the fully unpacked strategy
// (comparison merge sort + a tuple-compare binary search per inserted
// nonzero), "radix" the packed-key strategy (fused LSD radix sort +
// dedup whose source-slot payload precomputes every insertion rank — no
// searches at all) that is the auto default whenever the dims hint
// proves the fit. The two variants run in interleaved pairs and the
// speedup is the median of per-rep ratios (see runPairedRows: sequential
// timing see-saws with container load drift). Every row
// carries the routine's own
// per-phase seconds (analysis / edge_insert / insertion / finalize plus
// the sorted-ranking sub-phases collect / sort / pos / crd), so a sort-
// strategy win is attributable to the sort phase, not smeared over the
// whole conversion.
//
// Emits a human-readable table and machine-readable BENCH_hypersparse.json
// (speedup columns included). Environment: CONVGEN_BENCH_SCALE /
// CONVGEN_BENCH_REPS as usual; scale 1.0 runs the full 10^6-nonzero point
// the shared-vs-per-level and radix-vs-merge acceptance numbers are
// defined at, the default 0.2 a 200k smoke point.
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "codegen/Knobs.h"
#include "support/StringUtils.h"
#include "tensor/Generators.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace convgen;
using namespace convgen::bench;

namespace {

int64_t scaled(int64_t V) {
  return std::max<int64_t>(
      64, static_cast<int64_t>(static_cast<double>(V) * benchScale()));
}

const char *const kPhaseNames[jit::kNumPhases] = {
    "analysis", "edge_insert", "insertion", "finalize",
    "collect",  "sort",        "pos",       "crd"};

std::string phasesJson(const double Phases[jit::kNumPhases]) {
  std::string S = "{";
  for (int P = 0; P < jit::kNumPhases; ++P)
    S += strfmt("%s\"%s\": %.6f", P ? ", " : "", kPhaseNames[P], Phases[P]);
  return S + "}";
}

/// One list-construction variant: a label plus the env overrides that
/// select it. Overrides are applied for plan acquisition AND the timed
/// runs (the plan key re-derives its strategy bits from the environment,
/// so each variant lands on its own cached plan and JIT object). Every
/// variant pins ALL three strategy knobs — including CONVGEN_SORT_STRATEGY
/// — so an ambient setting in the caller's environment cannot relabel a
/// row.
struct Variant {
  const char *Label;
  std::vector<std::pair<const char *, const char *>> Env;
};

class ScopedVariant {
public:
  explicit ScopedVariant(const Variant &V) {
    for (const auto &[Name, Value] : V.Env) {
      const char *Old = std::getenv(Name);
      Saved.emplace_back(Name, Old ? std::make_optional<std::string>(Old)
                                   : std::nullopt);
      setenv(Name, Value, 1);
    }
    // The strategy knobs are a one-time snapshot; flipping the
    // environment only takes effect through an explicit reload.
    codegen::reloadKnobsFromEnv();
  }
  ~ScopedVariant() {
    // Restore, don't unset: an ambient knob (e.g. the README-documented
    // CONVGEN_RANK_STRATEGY) must survive across variants, or later
    // "shared" rows would silently measure a different configuration.
    for (const auto &[Name, Old] : Saved) {
      if (Old)
        setenv(Name, Old->c_str(), 1);
      else
        unsetenv(Name);
    }
    codegen::reloadKnobsFromEnv();
  }

private:
  std::vector<std::pair<const char *, std::optional<std::string>>> Saved;
};

/// Prints + records one timed row from precomputed stats and phases.
void emitRow(const char *Leg, const char *VariantLabel, int64_t Nnz,
             const TimeStats &S, const double Phases[jit::kNumPhases],
             BenchReport &Report) {
  std::string Label = strfmt("%s.%lldk.%s", Leg,
                             static_cast<long long>(Nnz / 1000), VariantLabel);
  double NsPerNnz =
      Nnz ? S.MedianSeconds * 1e9 / static_cast<double>(Nnz) : 0;
  std::printf("%-26s %12.3f %12.3f %14.1f\n", Label.c_str(),
              S.MedianSeconds * 1e3, S.MinSeconds * 1e3, NsPerNnz);
  std::printf("  phases:");
  for (int P = 0; P < jit::kNumPhases; ++P)
    std::printf(" %s %.3fms", kPhaseNames[P], Phases[P] * 1e3);
  std::printf("\n");
  Report.add(strfmt("{\"label\": \"%s\", \"variant\": \"%s\", "
                    "\"nnz\": %lld, \"median_seconds\": %.6g, "
                    "\"min_seconds\": %.6g, \"ns_per_nnz\": %.1f, "
                    "\"phases\": %s}",
                    Label.c_str(), VariantLabel, static_cast<long long>(Nnz),
                    S.MedianSeconds, S.MinSeconds, NsPerNnz,
                    phasesJson(Phases).c_str()));
}

/// Times coo3->csf under \p V at \p Dims, prints the table row, records
/// the JSON row (with the per-phase breakdown), and returns the median.
double runVariantRow(const Variant &V, const std::vector<int64_t> &Dims,
                     const tensor::SparseTensor &In, int64_t Nnz,
                     const char *Leg, BenchReport &Report) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  ScopedVariant Env(V);
  codegen::Options Opts = codegen::optionsForDims(Coo3, Csf, {}, Dims);
  const jit::JitConversion &Fwd = jitConversion("coo3", "csf", Opts);
  double Phases[jit::kNumPhases] = {};
  TimeStats S = timeJitWithPhases(Fwd, In, Phases);
  emitRow(Leg, V.Label, Nnz, S, Phases, Report);
  return S.MedianSeconds;
}

/// Times two variants of the same conversion in interleaved pairs: every
/// rep runs variant A then variant B back-to-back on the same input, and
/// the returned speedup is the MEDIAN OF THE PER-REP RATIOS time(A)/
/// time(B). On a shared dev container, load drift between two separately
/// timed variants easily exceeds the effect under measurement; pairing
/// puts both sides of every ratio under near-identical machine state, so
/// the ratio median converges where sequential medians see-saw. Emits the
/// same per-variant rows (median/min/phases over the paired reps).
double runPairedRows(const Variant &VA, const Variant &VB,
                     const std::vector<int64_t> &Dims,
                     const tensor::SparseTensor &In, int64_t Nnz,
                     const char *Leg, BenchReport &Report) {
  const jit::JitConversion *Convs[2];
  for (int V = 0; V < 2; ++V) {
    ScopedVariant Env(V == 0 ? VA : VB);
    formats::Format Coo3 = formats::standardFormatOrDie("coo3");
    formats::Format Csf = formats::standardFormatOrDie("csf");
    codegen::Options Opts = codegen::optionsForDims(Coo3, Csf, {}, Dims);
    Convs[V] = &jitConversion("coo3", "csf", Opts);
  }
  jit::CTensor A;
  jit::marshalInput(In, &A);
  int Reps = benchReps();
  std::vector<double> Times[2];
  std::vector<double> Before[2];
  for (int V = 0; V < 2; ++V) {
    Before[V].assign(static_cast<size_t>(jit::kNumPhases), 0);
    if (const double *P = Convs[V]->phaseSeconds())
      Before[V].assign(P, P + jit::kNumPhases);
  }
  for (int Rep = 0; Rep < Reps; ++Rep)
    for (int V = 0; V < 2; ++V) {
      auto Begin = std::chrono::steady_clock::now();
      jit::CTensor B;
      Convs[V]->runRaw(&A, &B);
      jit::freeOutput(&B);
      Times[V].push_back(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - Begin)
                             .count());
    }
  std::vector<double> Ratios;
  for (int Rep = 0; Rep < Reps; ++Rep)
    if (Times[1][static_cast<size_t>(Rep)] > 0)
      Ratios.push_back(Times[0][static_cast<size_t>(Rep)] /
                       Times[1][static_cast<size_t>(Rep)]);
  std::sort(Ratios.begin(), Ratios.end());
  double Speedup = Ratios.empty() ? 0 : Ratios[Ratios.size() / 2];
  for (int V = 0; V < 2; ++V) {
    std::vector<double> Sorted = Times[V];
    std::sort(Sorted.begin(), Sorted.end());
    TimeStats S{Sorted.front(), Sorted[Sorted.size() / 2]};
    double Phases[jit::kNumPhases] = {};
    if (const double *P = Convs[V]->phaseSeconds())
      for (int I = 0; I < jit::kNumPhases; ++I)
        Phases[I] = (P[I] - Before[V][static_cast<size_t>(I)]) /
                    static_cast<double>(Reps);
    emitRow(Leg, (V == 0 ? VA : VB).Label, Nnz, S, Phases, Report);
  }
  return Speedup;
}

} // namespace

int main() {
  if (!jit::jitAvailable()) {
    std::fprintf(stderr, "bench_hypersparse: no system C compiler\n");
    return 1;
  }
  BenchReport Report("BENCH_hypersparse.json");
  Report.metaStr("bench", "hypersparse");
  Report.meta("openmp", jit::jitOpenMPAvailable() ? "true" : "false");
  Report.meta("rank_dense_max_bytes",
              strfmt("%lld", static_cast<long long>(
                                 codegen::rankDenseMaxBytes())));

  const std::vector<int64_t> Dims = {int64_t(1) << 31, int64_t(1) << 20,
                                     int64_t(1) << 20};
  // 24 + 20 + 20 = 64 key bits: the largest extents whose coordinate
  // tuple still packs into one uint64_t, and still 5 * 2^24 bytes past the
  // dense-rank budget, so the plan keeps every CSF level sorted.
  const std::vector<int64_t> PackedDims = {int64_t(1) << 24,
                                           int64_t(1) << 20,
                                           int64_t(1) << 20};
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");

  // The dense path is genuinely rejected at these dimensions: without the
  // sorted fallback the planner's only honest answer is a size-grounds
  // diagnostic (exercised here through a pair that has no fallback), and
  // with it the plan switches every CSF level to sorted ranking sharing
  // one full-arity sort.
  {
    std::string Why;
    bool Rejected = !codegen::conversionSupported(
        formats::standardFormatOrDie("csr"), formats::standardFormatOrDie("sky"),
        std::vector<int64_t>{Dims[0], Dims[0]}, &Why);
    std::printf("dense-path rejection (csr->sky at 2^31 rows):\n  %s\n\n",
                Rejected ? Why.c_str() : "UNEXPECTEDLY ACCEPTED");
    Report.meta("dense_path_rejected", Rejected ? "true" : "false");
    codegen::AssemblyPlan Plan = codegen::planAssembly(Coo3, Csf, Dims);
    std::string Sorted;
    for (bool S : Plan.Sorted)
      Sorted += S ? '1' : '0';
    std::printf("coo3->csf strategy at (2^31, 2^20, 2^20): sorted levels %s, "
                "shared-sort anchor level %d\n\n",
                Sorted.c_str(), Plan.SharedSortAnchor);
    Report.metaStr("sorted_levels", Sorted);
    Report.meta("shared_sort_anchor",
                strfmt("%d", Plan.SharedSortAnchor));
  }

  // Every knob is pinned in every variant, so an ambient
  // CONVGEN_RANK_STRATEGY / CONVGEN_NO_SHARED_SORT / CONVGEN_SORT_STRATEGY
  // in the caller's environment cannot relabel a row. The huge-dims leg
  // pins auto sort: a 2^31 extent cannot pack into 64 bits, so auto is the
  // merge sort there by construction.
  const Variant Variants[] = {
      {"shared",
       {{"CONVGEN_NO_SHARED_SORT", "0"},
        {"CONVGEN_RANK_STRATEGY", "sorted"},
        {"CONVGEN_SORT_STRATEGY", "auto"}}},
      {"perlevel",
       {{"CONVGEN_NO_SHARED_SORT", "1"},
        {"CONVGEN_RANK_STRATEGY", "sorted"},
        {"CONVGEN_SORT_STRATEGY", "auto"}}},
      {"hashed",
       {{"CONVGEN_NO_SHARED_SORT", "0"},
        {"CONVGEN_RANK_STRATEGY", "hashed"},
        {"CONVGEN_SORT_STRATEGY", "auto"}}},
  };

  std::printf("%-26s %12s %12s %14s\n", "case", "median_ms", "min_ms",
              "ns_per_nnz");
  const int64_t FullNnz = scaled(1000000);
  double SharedVsPerLevel = 0;
  for (int64_t Nnz : {FullNnz / 4, FullNnz / 2, FullNnz}) {
    tensor::Triplets T =
        tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], Nnz, 401);
    tensor::SparseTensor In = tensor::buildFromTriplets(Coo3, T);
    double MedianByVariant[3] = {0, 0, 0};
    for (size_t V = 0; V < 3; ++V)
      MedianByVariant[V] = runVariantRow(Variants[V], Dims, In, T.nnz(),
                                         "coo3_to_csf", Report);
    double Speedup = MedianByVariant[0] > 0
                         ? MedianByVariant[1] / MedianByVariant[0]
                         : 0;
    double HashedRatio = MedianByVariant[0] > 0
                             ? MedianByVariant[2] / MedianByVariant[0]
                             : 0;
    std::printf("  %-24s %.2fx vs per-level, hashed/shared %.2fx\n",
                "shared-sort speedup:", Speedup, HashedRatio);
    Report.add(strfmt("{\"label\": \"coo3_to_csf.%lldk.speedups\", "
                      "\"nnz\": %lld, "
                      "\"shared_vs_perlevel_speedup\": %.3f, "
                      "\"hashed_over_shared_ratio\": %.3f}",
                      static_cast<long long>(T.nnz() / 1000),
                      static_cast<long long>(T.nnz()), Speedup,
                      HashedRatio));
    if (Nnz == FullNnz)
      SharedVsPerLevel = Speedup;
  }
  Report.meta("shared_vs_perlevel_speedup_full",
              strfmt("%.3f", SharedVsPerLevel));

  // Radix-vs-merge leg at the packable dims: identical plan except for the
  // SortTuples lowering, so the phase breakdown localizes the difference
  // to the sort slot.
  const Variant SortVariants[] = {
      {"merge",
       {{"CONVGEN_NO_SHARED_SORT", "0"},
        {"CONVGEN_RANK_STRATEGY", "sorted"},
        {"CONVGEN_SORT_STRATEGY", "merge"}}},
      {"radix",
       {{"CONVGEN_NO_SHARED_SORT", "0"},
        {"CONVGEN_RANK_STRATEGY", "sorted"},
        {"CONVGEN_SORT_STRATEGY", "radix"}}},
  };
  std::printf("\npacked-key sort strategy at (2^24, 2^20, 2^20):\n");
  double RadixVsMerge = 0;
  for (int64_t Nnz : {FullNnz / 4, FullNnz / 2, FullNnz}) {
    tensor::Triplets T = tensor::genHyperSparse3(
        PackedDims[0], PackedDims[1], PackedDims[2], Nnz, 401);
    tensor::SparseTensor In = tensor::buildFromTriplets(Coo3, T);
    double Speedup =
        runPairedRows(SortVariants[0], SortVariants[1], PackedDims, In,
                      T.nnz(), "coo3_to_csf_packed", Report);
    std::printf("  %-24s %.2fx (median of paired per-rep ratios)\n",
                "radix-vs-merge speedup:", Speedup);
    Report.add(strfmt("{\"label\": \"coo3_to_csf_packed.%lldk.speedups\", "
                      "\"nnz\": %lld, "
                      "\"radix_vs_merge_speedup\": %.3f, "
                      "\"method\": \"median_of_paired_rep_ratios\"}",
                      static_cast<long long>(T.nnz() / 1000),
                      static_cast<long long>(T.nnz()), Speedup));
    if (Nnz == FullNnz)
      RadixVsMerge = Speedup;
  }
  Report.meta("radix_vs_merge_speedup_full", strfmt("%.3f", RadixVsMerge));

  // Round-trip leg: csf back to coo3 at the full point (needs no sorted
  // levels — the coo3 target has no dense ranking structures — so it also
  // documents that huge dims alone do not force the strategy).
  {
    tensor::Triplets T =
        tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], FullNnz, 401);
    tensor::SparseTensor InCsf = tensor::buildFromTriplets(Csf, T);
    codegen::Options Back = codegen::optionsForDims(Csf, Coo3, {}, Dims);
    const jit::JitConversion &Rev = jitConversion("csf", "coo3", Back);
    TimeStats S = timeJitStats(Rev, InCsf);
    std::printf("\n%-26s %12.3f %12.3f %14.1f\n", "csf_to_coo3",
                S.MedianSeconds * 1e3, S.MinSeconds * 1e3,
                T.nnz() ? S.MedianSeconds * 1e9 /
                              static_cast<double>(T.nnz())
                        : 0);
    Report.add(strfmt("{\"label\": \"csf_to_coo3\", \"nnz\": %lld, "
                      "\"median_seconds\": %.6g, \"min_seconds\": %.6g}",
                      static_cast<long long>(T.nnz()), S.MedianSeconds,
                      S.MinSeconds));
  }
  return Report.write() ? 0 : 1;
}
