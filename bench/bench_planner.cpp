//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Planner ablation: for each format pair, time every candidate the path
/// planner enumerates (direct default, forced-strategy variants, two-hop
/// chains), feed the measurements into the outcome store, and compare the
/// planner's warmed-up choice against the forced-direct default. This is
/// the measured-outcome auto-tuning loop run end to end: the "planner-
/// chosen" row is whatever decide() picks after it has seen real timings.
///
/// All rows use the interpreter-backed Converter so candidate timings are
/// methodologically identical (the JIT path shares the same plans; its
/// relative ordering is the same). Outcomes are kept memory-only so the
/// benchmark neither reads nor pollutes the user's auto-tuning history.
///
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "codegen/Knobs.h"
#include "convert/Converter.h"
#include "planner/Planner.h"
#include "tensor/Triplets.h"

#include <cinttypes>
#include <random>
#include <set>

using namespace convgen;
using namespace convgen::bench;

namespace {

/// Pins CONVGEN_PLANNER off for a scope (candidate timings must execute
/// exactly the candidate's forced options, not re-decide).
class ScopedPlannerOff {
public:
  ScopedPlannerOff() {
    if (const char *Old = std::getenv("CONVGEN_PLANNER")) {
      Had = true;
      Saved = Old;
    }
    setenv("CONVGEN_PLANNER", "off", 1);
    codegen::reloadKnobsFromEnv();
  }
  ~ScopedPlannerOff() {
    if (Had)
      setenv("CONVGEN_PLANNER", Saved.c_str(), 1);
    else
      unsetenv("CONVGEN_PLANNER");
    codegen::reloadKnobsFromEnv();
  }

private:
  std::string Saved;
  bool Had = false;
};

/// A fixed-seed random tensor: \p Nnz distinct coordinates in \p Dims.
tensor::SparseTensor randomTensor(const formats::Format &Src,
                                  const std::vector<int64_t> &Dims,
                                  int64_t Nnz, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  tensor::Triplets T;
  T.setDims(Dims);
  std::set<std::vector<int64_t>> Seen;
  while (static_cast<int64_t>(T.Entries.size()) < Nnz) {
    std::vector<int64_t> Coord;
    for (int64_t D : Dims)
      Coord.push_back(static_cast<int64_t>(Rng() % static_cast<uint64_t>(D)));
    if (!Seen.insert(Coord).second)
      continue;
    T.Entries.push_back(
        tensor::Entry(Coord, static_cast<double>(1 + Rng() % 97)));
  }
  return tensor::buildFromTriplets(Src, T);
}

/// Runs one candidate path hop by hop with the planner pinned off.
bool runCandidate(const planner::Candidate &C,
                  const tensor::SparseTensor &In) {
  tensor::SparseTensor Staged;
  const tensor::SparseTensor *Cur = &In;
  for (const planner::Hop &H : C.Hops) {
    StatusOr<convert::Converter> Conv =
        convert::Converter::tryCreate(H.Src, H.Dst, H.Opts);
    if (!Conv.ok())
      return false;
    StatusOr<tensor::SparseTensor> Out = Conv->tryRun(*Cur);
    if (!Out.ok())
      return false;
    Staged = Out.take();
    Cur = &Staged;
  }
  return true;
}

struct PairSpec {
  const char *Name;
  const char *Src;
  const char *Dst;
  std::vector<int64_t> Dims;
  int64_t Nnz; ///< At scale 1.0; multiplied by benchScale().
};

void benchPair(const PairSpec &Spec, BenchReport &Report) {
  formats::Format Src = formats::standardFormatOrDie(Spec.Src);
  formats::Format Dst = formats::standardFormatOrDie(Spec.Dst);
  int64_t Nnz = std::max<int64_t>(
      codegen::knobs().PlannerMinNnz,
      static_cast<int64_t>(static_cast<double>(Spec.Nnz) * benchScale()));
  tensor::SparseTensor In = randomTensor(Src, Spec.Dims, Nnz, 0xb0b0cafe);

  planner::Decision Cold =
      planner::decide(Src, Dst, codegen::Options(),
                      planner::InputStats::fromTensor(In));
  if (!Cold.Engaged) {
    std::printf("%-14s planner disengaged (%s); skipping\n", Spec.Name,
                Cold.Why.c_str());
    return;
  }

  // Time every candidate with identical methodology, recording each rep
  // into the outcome store so the planner can learn from it.
  std::printf("%-14s nnz %" PRId64 ", %zu candidates\n", Spec.Name, Nnz,
              Cold.Considered.size());
  convert::PlanCache &Cache = convert::PlanCache::instance();
  std::map<std::string, TimeStats> Timed;
  {
    ScopedPlannerOff Off;
    for (const planner::Candidate &C : Cold.Considered) {
      std::vector<double> Times;
      bool Ok = true;
      for (int Rep = 0; Rep < benchReps() && Ok; ++Rep) {
        auto Begin = std::chrono::steady_clock::now();
        Ok = runCandidate(C, In);
        double Seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - Begin)
                             .count();
        if (Ok) {
          Times.push_back(Seconds);
          Cache.recordOutcome(C.OutcomeKey, Seconds);
        }
      }
      if (!Ok || Times.empty()) {
        std::printf("    %-24s failed to execute\n", C.Label.c_str());
        continue;
      }
      std::sort(Times.begin(), Times.end());
      TimeStats S{Times.front(), Times[Times.size() / 2]};
      Timed[C.Label] = S;
      std::printf("    %-24s median %8.2f ms  (analytic cost %.3g)\n",
                  C.Label.c_str(), S.MedianSeconds * 1e3, C.AnalyticCost);
      Report.add(strfmt("{\"label\": \"%s/candidate/%s\", "
                        "\"median_seconds\": %.6g, \"min_seconds\": %.6g, "
                        "\"analytic_cost\": %.6g}",
                        Spec.Name, C.Label.c_str(), S.MedianSeconds,
                        S.MinSeconds, C.AnalyticCost));
    }
  }

  // The warmed-up decision: measurements now outvote the analytic model.
  planner::Decision Hot =
      planner::decide(Src, Dst, codegen::Options(),
                      planner::InputStats::fromTensor(In));
  const std::string &Chosen = Hot.Chosen.Label;
  if (!Timed.count("direct") || !Timed.count(Chosen)) {
    std::printf("    (no timing for chosen plan '%s')\n", Chosen.c_str());
    return;
  }
  TimeStats DirectS = Timed["direct"];
  TimeStats ChosenS = Timed[Chosen];
  double Speedup = DirectS.MedianSeconds / ChosenS.MedianSeconds;
  std::printf("    -> planner chose %-17s %s  speedup over direct %.2fx\n",
              Chosen.c_str(), Hot.MeasuredWin ? "(measured)" : "(analytic)",
              Speedup);
  Report.add(strfmt("{\"label\": \"%s/direct-default\", "
                    "\"median_seconds\": %.6g, \"min_seconds\": %.6g}",
                    Spec.Name, DirectS.MedianSeconds, DirectS.MinSeconds));
  Report.add(strfmt("{\"label\": \"%s/planner-chosen\", "
                    "\"median_seconds\": %.6g, \"min_seconds\": %.6g, "
                    "\"plan\": \"%s\", \"measured_win\": %s, "
                    "\"speedup_over_direct\": %.3f}",
                    Spec.Name, ChosenS.MedianSeconds, ChosenS.MinSeconds,
                    Chosen.c_str(), Hot.MeasuredWin ? "true" : "false",
                    Speedup));
}

} // namespace

int main() {
  // Memory-only outcomes: do not read or pollute the persisted history.
  setenv("CONVGEN_OUTCOMES", "", 1);
  codegen::reloadKnobsFromEnv();
  convert::PlanCache::instance().resetOutcomes();

  std::printf("planner ablation (scale %.2f, %d reps)\n\n", benchScale(),
              benchReps());
  BenchReport Report("BENCH_planner.json");
  Report.metaStr("engine", "interpreter");

  // Hypersparse 3-tensor: the dense-ranked default touches a multi-MB rank
  // array; the packed radix sort only touches nnz. The planner should
  // learn the forced-sorted variant here.
  benchPair({"coo3_to_csf", "coo3", "csf", {2048, 2048, 64}, 200000}, Report);
  // Transpose-flavoured 2-D pairs: the dense rank array is small, so the
  // direct default should survive its measurement.
  benchPair({"csr_to_csc", "csr", "csc", {4096, 4096}, 400000}, Report);
  benchPair({"csc_to_csr", "csc", "csr", {4096, 4096}, 400000}, Report);
  // Higher-order permutation with a legal via-coo chain enumerated.
  benchPair({"csf102_to_csf", "csf_102", "csf", {512, 512, 64}, 200000},
            Report);

  return Report.write() ? 0 : 1;
}
