//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "query/Compile.h"

#include "query/Transforms.h"
#include "remap/Lower.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::query;

namespace {

ir::ReduceOp toReduceOp(AssignOp Op) {
  switch (Op) {
  case AssignOp::Assign:
    return ir::ReduceOp::None;
  case AssignOp::Or:
    return ir::ReduceOp::Or;
  case AssignOp::Add:
    return ir::ReduceOp::Add;
  case AssignOp::Max:
    return ir::ReduceOp::Max;
  }
  convgen_unreachable("unknown assign op");
}

/// Compilation context shared by all statements of one query batch.
struct Compiler {
  const TargetShape &Target;
  const levels::SourceIterator &Src;

  /// Buffer layouts: name -> (dims, lo exprs, extent exprs, elem).
  struct Layout {
    std::vector<int> Dims;
    std::vector<ir::Expr> Lo, Extent;
    ir::ScalarKind Elem;
  };
  std::map<std::string, Layout> Layouts;

  void registerBuffer(const BufferInfo &B) {
    Layout L;
    L.Dims = B.Dims;
    L.Elem = B.Elem;
    for (int D : B.Dims) {
      const remap::DimBounds &Bd =
          Target.Bounds[static_cast<size_t>(D)];
      if (!Bd.Known)
        fatalError("query buffer over a dimension without static bounds");
      L.Lo.push_back(Bd.Lo);
      L.Extent.push_back(Bd.extent());
    }
    Layouts[B.Name] = L;
  }

  ir::Expr bufferSize(const std::string &Name) const {
    const Layout &L = Layouts.at(Name);
    ir::Expr Size = ir::intImm(1);
    for (const ir::Expr &E : L.Extent)
      Size = ir::mul(Size, E);
    return Size;
  }

  /// Linearizes absolute coordinates into the buffer's row-major layout.
  ir::Expr linearize(const std::string &Name,
                     const std::vector<ir::Expr> &Coords) const {
    const Layout &L = Layouts.at(Name);
    CONVGEN_ASSERT(Coords.size() == L.Dims.size(),
                   "buffer index arity mismatch");
    ir::Expr Index = ir::intImm(0);
    for (size_t D = 0; D < Coords.size(); ++D)
      Index = ir::add(ir::mul(Index, L.Extent[D]),
                      ir::sub(Coords[D], L.Lo[D]));
    return Index;
  }

  /// Emits one statement of a query.
  ir::Stmt emitForall(const Forall &F) const;

  /// Annotates an analysis sweep as parallel when every fused statement is
  /// an exact integer reduction: each thread then accumulates into private
  /// copies of the result buffers (per-thread histograms) that the OpenMP
  /// runtime merges, which commutes bit-exactly with serial execution.
  /// Assign statements are order-dependent, so any of them keeps the sweep
  /// serial; ditto float-typed results (float addition does not commute).
  ir::Stmt parallelizeSweep(ir::Stmt Loop,
                            const std::vector<const Forall *> &Stmts) const;
};

/// True when a buffer-size expression is a product of two data-dependent
/// extents — an O(rows * cols)-style workspace. OpenMP array-section
/// reductions give every thread a private copy of the section, which
/// libgomp places on the thread stack; privatizing a quadratic workspace
/// (canonical count queries' dedup temporaries) overflows it and crashes,
/// so such sweeps must stay serial. One-dimensional histograms stay cheap
/// to privatize and keep the reduction.
static bool sizeIsMultiExtent(const ir::Expr &Size) {
  return Size && Size->Kind == ir::ExprKind::Binary &&
         Size->BOp == ir::BinOp::Mul && !ir::isIntConst(Size->A) &&
         !ir::isIntConst(Size->B);
}

ir::Stmt
Compiler::parallelizeSweep(ir::Stmt Loop,
                           const std::vector<const Forall *> &Stmts) const {
  if (!Loop || Loop->Kind != ir::StmtKind::For)
    return Loop;
  std::map<std::string, ir::ReduceOp> Ops;
  for (const Forall *F : Stmts) {
    ir::ReduceOp Op = toReduceOp(F->Op);
    if (Op == ir::ReduceOp::None)
      return Loop;
    if (Layouts.at(F->Lhs.Tensor).Elem == ir::ScalarKind::Float)
      return Loop;
    if (sizeIsMultiExtent(bufferSize(F->Lhs.Tensor)))
      return Loop;
    auto It = Ops.find(F->Lhs.Tensor);
    if (It != Ops.end() && It->second != Op)
      return Loop;
    Ops[F->Lhs.Tensor] = Op;
  }
  std::vector<ir::ParReduction> Reductions;
  for (const auto &[Name, Op] : Ops)
    Reductions.push_back({Name, Op, bufferSize(Name), Layouts.at(Name).Elem});
  return ir::markLoopParallel(Loop, {}, std::move(Reductions));
}

ir::Stmt Compiler::emitForall(const Forall &F) const {
  switch (F.Space) {
  case Forall::IterSpace::SourceAll:
  case Forall::IterSpace::SourcePrefix: {
    auto Body = [&](const levels::IterEnv &Env) -> ir::Stmt {
      remap::LowerEnv LEnv;
      LEnv.IVars = Env.Canonical;
      std::vector<ir::Expr> Coords;
      for (const remap::Expr &E : F.Lhs.Idx)
        Coords.push_back(remap::lowerExpr(E, LEnv));
      ir::Expr Value;
      if (F.Rhs.Kind == RhsExpr::RhsKind::MapSource) {
        ir::Expr Base =
            F.Rhs.Value ? remap::lowerExpr(F.Rhs.Value, LEnv) : nullptr;
        if (Base && F.Rhs.ValueSign < 0)
          Base = ir::neg(Base);
        Value = Base ? (F.Rhs.ValueShift ? ir::add(Base, F.Rhs.ValueShift)
                                         : Base)
                     : (F.Rhs.ValueShift ? F.Rhs.ValueShift : ir::intImm(0));
        if (F.Rhs.Scale != 1)
          Value = ir::mul(Value, ir::intImm(F.Rhs.Scale));
      } else if (F.Rhs.Kind == RhsExpr::RhsKind::RowNnz) {
        Value = Src.rowNnz(F.Rhs.RowNnzLevel, Env);
        if (F.Rhs.Scale != 1)
          Value = ir::mul(Value, ir::intImm(F.Rhs.Scale));
      } else {
        fatalError("unsupported rhs in a source-space forall");
      }
      return ir::store(F.Lhs.Tensor, linearize(F.Lhs.Tensor, Coords), Value,
                       toReduceOp(F.Op));
    };
    if (F.Space == Forall::IterSpace::SourceAll)
      return parallelizeSweep(Src.build(Body), {&F});
    return parallelizeSweep(Src.buildPrefix(F.PrefixLevels, Body), {&F});
  }
  case Forall::IterSpace::TempDense: {
    // Nested loops over the temp's (relative) coordinates t0..tn-1; the
    // lhs takes the leading loop variables.
    const Layout &L = Layouts.at(F.TempIterated);
    CONVGEN_ASSERT(F.Rhs.Kind == RhsExpr::RhsKind::ReadTemp,
                   "dense foralls read their temp");
    std::vector<ir::Expr> TempIdx, LhsIdx;
    for (size_t D = 0; D < L.Dims.size(); ++D) {
      ir::Expr T = ir::var("t" + std::to_string(D));
      // linearize() subtracts lo, so feed absolute coords back in.
      TempIdx.push_back(ir::add(T, L.Lo[D]));
      if (D < F.Lhs.Idx.size())
        LhsIdx.push_back(ir::add(T, Layouts.at(F.Lhs.Tensor).Lo[D]));
    }
    ir::Expr Value = ir::load(F.TempIterated,
                              linearize(F.TempIterated, TempIdx),
                              L.Elem);
    if (F.Rhs.Scale != 1)
      Value = ir::mul(Value, ir::intImm(F.Rhs.Scale));
    ir::Stmt Body = ir::store(F.Lhs.Tensor,
                              linearize(F.Lhs.Tensor, LhsIdx), Value,
                              toReduceOp(F.Op));
    for (size_t D = L.Dims.size(); D-- > 0;)
      Body = ir::forRange("t" + std::to_string(D), ir::intImm(0),
                          L.Extent[D], Body);
    return parallelizeSweep(Body, {&F});
  }
  }
  convgen_unreachable("unknown forall space");
}

} // namespace

CompiledQueries
query::compileQueries(const std::vector<std::pair<int, Query>> &LevelQueries,
                      const TargetShape &Target,
                      const levels::SourceIterator &Src, bool Optimize) {
  CompiledQueries Out;
  Compiler C{Target, Src, {}};

  // Lower and optimize every aggregation.
  for (const auto &[Level, Q] : LevelQueries) {
    for (const Agg &A : Q.Aggs) {
      std::string Name = strfmt("q%d_%s", Level, A.Label.c_str());
      CinStmt Stmt = lowerToCanonical(Q, A, Target, Name);
      if (Optimize) {
        optimize(Stmt, Src, Target);
      } else {
        // counter-to-histogram is a lowering necessity, not merely an
        // optimization: canonical counter payloads cannot be evaluated
        // inside an analysis sweep (Table 1 gives it no preconditions).
        while (counterToHistogram(Stmt, Src, Target)) {
        }
      }
      Out.Stmts.push_back({Name, Stmt});
    }
  }

  ir::BlockBuilder Code;
  Code.add(ir::comment("analysis: compute attribute queries"));

  // Allocate result and temp buffers (always zero-initialized: raw zero
  // encodes "empty" across all aggregations).
  for (auto &[Name, Stmt] : Out.Stmts) {
    C.registerBuffer(Stmt.Result);
    Code.add(ir::alloc(Stmt.Result.Name, Stmt.Result.Elem,
                       C.bufferSize(Stmt.Result.Name), true));
    for (const BufferInfo &W : Stmt.Temps) {
      C.registerBuffer(W);
      Code.add(ir::alloc(W.Name, W.Elem, C.bufferSize(W.Name), true));
    }
  }

  // Fuse all SourceAll sweeps into one pass over the source's nonzeros.
  std::vector<const Forall *> Fused;
  for (auto &[Name, Stmt] : Out.Stmts)
    for (const Forall &F : Stmt.Stmts)
      if (F.Space == Forall::IterSpace::SourceAll)
        Fused.push_back(&F);
  if (!Fused.empty()) {
    // Re-emit through one iterator walk: bodies concatenate.
    ir::Stmt Sweep = Src.build([&](const levels::IterEnv &Env) -> ir::Stmt {
      ir::BlockBuilder Body;
      for (const Forall *F : Fused) {
        // Reuse the single-statement path with a fixed environment.
        Forall Single = *F;
        remap::LowerEnv LEnv;
        LEnv.IVars = Env.Canonical;
        std::vector<ir::Expr> Coords;
        for (const remap::Expr &E : Single.Lhs.Idx)
          Coords.push_back(remap::lowerExpr(E, LEnv));
        ir::Expr Base = Single.Rhs.Value
                            ? remap::lowerExpr(Single.Rhs.Value, LEnv)
                            : nullptr;
        if (Base && Single.Rhs.ValueSign < 0)
          Base = ir::neg(Base);
        ir::Expr Value =
            Base ? (Single.Rhs.ValueShift
                        ? ir::add(Base, Single.Rhs.ValueShift)
                        : Base)
                 : (Single.Rhs.ValueShift ? Single.Rhs.ValueShift
                                          : ir::intImm(0));
        if (Single.Rhs.Scale != 1)
          Value = ir::mul(Value, ir::intImm(Single.Rhs.Scale));
        Body.add(ir::store(Single.Lhs.Tensor,
                           C.linearize(Single.Lhs.Tensor, Coords), Value,
                           toReduceOp(Single.Op)));
      }
      return Body.build();
    });
    Code.add(C.parallelizeSweep(std::move(Sweep), Fused));
  }

  // Emit the remaining statements (prefix sweeps, temp reductions) in
  // order; producers precede consumers within each query by construction.
  for (auto &[Name, Stmt] : Out.Stmts)
    for (const Forall &F : Stmt.Stmts)
      if (F.Space != Forall::IterSpace::SourceAll)
        Code.add(C.emitForall(F));

  // Free temporaries and publish the result references.
  for (auto &[Name, Stmt] : Out.Stmts)
    for (const BufferInfo &W : Stmt.Temps)
      Code.add(ir::freeBuffer(W.Name));

  for (auto &[Name, Stmt] : Out.Stmts) {
    levels::QueryResultRef Ref;
    Ref.Buffer = Name;
    Ref.Elem = Stmt.Result.Elem;
    Ref.GroupDims = Stmt.Result.Dims;
    for (int D : Stmt.Result.Dims) {
      const remap::DimBounds &B = Target.Bounds[static_cast<size_t>(D)];
      Ref.GroupLo.push_back(B.Lo);
      Ref.GroupExtent.push_back(B.extent());
    }
    Ref.Sign = Stmt.Sign;
    Ref.Shift = Stmt.Shift;
    Out.Refs[Name] = Ref;
  }

  Out.Code = Code.build();
  return Out;
}
