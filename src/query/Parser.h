//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual attribute query language (paper §5.1):
///
///   select [i1,...,im] -> <aggr1> as label1, ..., <aggrn> as labeln
///
/// with aggregations count(i...), max(i), min(i), and id(). Dimension
/// variables are resolved against a caller-supplied name list (custom
/// level formats name the remapped dimensions d0..dn-1 by default).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_QUERY_PARSER_H
#define CONVGEN_QUERY_PARSER_H

#include "query/Query.h"

#include <string>
#include <vector>

namespace convgen {
namespace query {

struct QueryParseResult {
  bool Ok = false;
  Query Parsed;
  std::string Error;
};

/// Parses \p Text; \p DimNames maps variable names to dimension indices
/// (position in the vector).
QueryParseResult parseQuery(const std::string &Text,
                            const std::vector<std::string> &DimNames);

/// Parsing with the default dimension names d0..d{NumDims-1}; aborts with
/// a diagnostic on malformed input.
Query parseQueryOrDie(const std::string &Text, int NumDims);

} // namespace query
} // namespace convgen

#endif // CONVGEN_QUERY_PARSER_H
