//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attribute query language (paper §5). Queries aggregate over the
/// coordinates of a tensor's nonzeros, *after* the target format's
/// coordinate remapping:
///
///   select [i1,...,im] -> <aggr1> as label1, ...
///
/// with aggregations count(...), max(i), min(i), and id(). Every level
/// format declares the queries its assembly functions need (Figures 7 and
/// 11); the compiler lowers them to concrete index notation, optimizes them
/// with the Table 1 transformations, and emits IR specialized to the source
/// format (see Cin.h / Compile.h).
///
/// This header is dependency-free (used by the level formats) — the
/// lowering and compilation pipeline lives in the convgen_query library.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_QUERY_QUERY_H
#define CONVGEN_QUERY_QUERY_H

#include <string>
#include <vector>

namespace convgen {
namespace query {

enum class AggKind : uint8_t { Count, Max, Min, Id };

inline const char *aggKindName(AggKind Kind) {
  switch (Kind) {
  case AggKind::Count:
    return "count";
  case AggKind::Max:
    return "max";
  case AggKind::Min:
    return "min";
  case AggKind::Id:
    return "id";
  }
  return "?";
}

/// One aggregation call with its result label.
struct Agg {
  AggKind Kind = AggKind::Id;
  /// Destination dimensions aggregated over (empty for id; one dim for
  /// max/min; one or more for count).
  std::vector<int> Dims;
  std::string Label;
};

/// A full attribute query over the remapped (destination) dimensions of the
/// tensor being assembled.
struct Query {
  /// Group-by dimensions: the result is a map keyed by these coordinates.
  std::vector<int> GroupDims;
  std::vector<Agg> Aggs;
};

/// Renders a query using destination dimension names d0..dn-1, e.g.
/// "select [d0] -> count(d1) as nir".
inline std::string printQuery(const Query &Q) {
  std::string Out = "select [";
  for (size_t I = 0; I < Q.GroupDims.size(); ++I) {
    if (I)
      Out += ",";
    Out += "d" + std::to_string(Q.GroupDims[I]);
  }
  Out += "] -> ";
  for (size_t A = 0; A < Q.Aggs.size(); ++A) {
    if (A)
      Out += ", ";
    const Agg &G = Q.Aggs[A];
    Out += std::string(aggKindName(G.Kind)) + "(";
    for (size_t I = 0; I < G.Dims.size(); ++I) {
      if (I)
        Out += ",";
      Out += "d" + std::to_string(G.Dims[I]);
    }
    Out += ") as " + G.Label;
  }
  return Out;
}

} // namespace query
} // namespace convgen

#endif // CONVGEN_QUERY_QUERY_H
