//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles optimized attribute queries to IR specialized to the source
/// format (paper §5.2): SourceAll sweeps from every query fuse into a
/// single pass over the source's nonzeros; prefix sweeps (the pos-array
/// fast paths) and dense temp reductions are emitted separately in
/// dependency order.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_QUERY_COMPILE_H
#define CONVGEN_QUERY_COMPILE_H

#include "levels/Levels.h"
#include "levels/SourceIterator.h"
#include "query/Lower.h"

#include <map>

namespace convgen {
namespace query {

struct CompiledQueries {
  /// Optimized CIN per (level, label) in emission order — for inspection
  /// and golden tests.
  std::vector<std::pair<std::string, CinStmt>> Stmts;
  /// Where each query's result lives: key is "q<level>_<label>".
  std::map<std::string, levels::QueryResultRef> Refs;
  /// Allocations + analysis sweeps, ready to prepend to a conversion.
  ir::Stmt Code;
};

/// Lowers, optimizes (unless \p Optimize is false), and compiles the
/// attribute queries declared by the target's levels. \p LevelQueries
/// pairs each query with its owning 1-based level.
CompiledQueries
compileQueries(const std::vector<std::pair<int, Query>> &LevelQueries,
               const TargetShape &Target, const levels::SourceIterator &Src,
               bool Optimize);

} // namespace query
} // namespace convgen

#endif // CONVGEN_QUERY_COMPILE_H
