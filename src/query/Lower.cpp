//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "query/Lower.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::query;

namespace {

/// The inlined destination-dimension expression for dim \p D.
remap::Expr dimExpr(const TargetShape &Target, int D) {
  return remap::inlineLets(
      Target.Remap.DstDims[static_cast<size_t>(D)]);
}

std::vector<remap::Expr> dimExprs(const TargetShape &Target,
                                  const std::vector<int> &Dims) {
  std::vector<remap::Expr> Out;
  Out.reserve(Dims.size());
  for (int D : Dims)
    Out.push_back(dimExpr(Target, D));
  return Out;
}

} // namespace

CinStmt query::lowerToCanonical(const Query &Q, const Agg &A,
                                const TargetShape &Target,
                                const std::string &ResultName) {
  CinStmt Out;
  Out.Result.Name = ResultName;
  Out.Result.Dims = Q.GroupDims;

  switch (A.Kind) {
  case AggKind::Id: {
    // forall(src) Q[g...] |= map(B, 1)
    Out.Result.Elem = ir::ScalarKind::Bool;
    Forall F;
    F.Space = Forall::IterSpace::SourceAll;
    F.Lhs = Access{ResultName, dimExprs(Target, Q.GroupDims)};
    F.Op = AssignOp::Or;
    F.Rhs.Kind = RhsExpr::RhsKind::MapSource;
    F.Rhs.ValueShift = ir::intImm(1);
    Out.Stmts = {F};
    return Out;
  }
  case AggKind::Count: {
    // (forall(src) W[g...,c...] |= map(B, 1))
    // (forall(W)   Q[g...]      += W[g...,c...])
    Out.Result.Elem = ir::ScalarKind::Int;
    BufferInfo W;
    W.Name = ResultName + "_w";
    W.Dims = Q.GroupDims;
    for (int D : A.Dims)
      W.Dims.push_back(D);
    W.Elem = ir::ScalarKind::Bool;
    Out.Temps = {W};

    Forall Produce;
    Produce.Space = Forall::IterSpace::SourceAll;
    Produce.Lhs = Access{W.Name, dimExprs(Target, W.Dims)};
    Produce.Op = AssignOp::Or;
    Produce.Rhs.Kind = RhsExpr::RhsKind::MapSource;
    Produce.Rhs.ValueShift = ir::intImm(1);

    Forall Consume;
    Consume.Space = Forall::IterSpace::TempDense;
    Consume.TempIterated = W.Name;
    // TempDense statements index with the loop variables implicitly: the
    // Lhs takes the first |GroupDims| of the temp's loop coordinates.
    Consume.Lhs.Tensor = ResultName;
    Consume.Lhs.Idx.resize(Q.GroupDims.size());
    Consume.Op = AssignOp::Add;
    Consume.Rhs.Kind = RhsExpr::RhsKind::ReadTemp;
    Consume.Rhs.Temp = Access{W.Name, {}};
    Out.Stmts = {Produce, Consume};
    return Out;
  }
  case AggKind::Max:
  case AggKind::Min: {
    CONVGEN_ASSERT(A.Dims.size() == 1, "max/min aggregate one dimension");
    Out.Result.Elem = ir::ScalarKind::Int;
    int D = A.Dims[0];
    const remap::DimBounds &B =
        Target.Bounds[static_cast<size_t>(D)];
    Forall F;
    F.Space = Forall::IterSpace::SourceAll;
    F.Lhs = Access{ResultName, dimExprs(Target, Q.GroupDims)};
    F.Op = AssignOp::Max;
    F.Rhs.Kind = RhsExpr::RhsKind::MapSource;
    F.Rhs.Value = dimExpr(Target, D);
    if (A.Kind == AggKind::Max) {
      // Q' max= map(B, i - s + 1); Q = Q' + s - 1. Counter dimensions have
      // s = 0 (counters start at zero).
      ir::Expr Lo = B.IsCounter ? ir::intImm(0) : B.Lo;
      if (!Lo)
        fatalError("max query over a dimension without static bounds");
      F.Rhs.ValueSign = 1;
      F.Rhs.ValueShift = ir::sub(ir::intImm(1), Lo);
      Out.Sign = 1;
      Out.Shift = ir::sub(Lo, ir::intImm(1));
    } else {
      // Q' max= map(B, -i + t + 1); Q = -Q' + t + 1.
      if (B.IsCounter || !B.Hi)
        fatalError("min query over a dimension without static bounds");
      F.Rhs.ValueSign = -1;
      F.Rhs.ValueShift = ir::add(B.Hi, ir::intImm(1));
      Out.Sign = -1;
      Out.Shift = ir::add(B.Hi, ir::intImm(1));
    }
    Out.Stmts = {F};
    return Out;
  }
  }
  convgen_unreachable("unknown aggregation kind");
}
