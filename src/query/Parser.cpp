//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "query/Parser.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <cctype>

using namespace convgen;
using namespace convgen::query;

namespace {

/// Minimal cursor-based scanner; the query grammar is regular enough that
/// a token class would be overkill.
class Scanner {
public:
  explicit Scanner(const std::string &Text) : Text(Text) {}

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(const std::string &Word) {
    skipSpace();
    if (Text.compare(Pos, Word.size(), Word) == 0) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  bool ident(std::string *Out) {
    skipSpace();
    size_t Begin = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    if (Pos == Begin)
      return false;
    *Out = Text.substr(Begin, Pos - Begin);
    return true;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  std::string rest() { return Text.substr(Pos); }

private:
  const std::string &Text;
  size_t Pos = 0;
};

int dimIndex(const std::vector<std::string> &DimNames,
             const std::string &Name) {
  for (size_t I = 0; I < DimNames.size(); ++I)
    if (DimNames[I] == Name)
      return static_cast<int>(I);
  return -1;
}

} // namespace

QueryParseResult query::parseQuery(const std::string &Text,
                                   const std::vector<std::string> &DimNames) {
  QueryParseResult Result;
  Scanner S(Text);
  auto failParse = [&](const std::string &Msg) {
    Result.Error = Msg;
    return Result;
  };

  if (!S.consume("select"))
    return failParse("expected 'select'");
  if (!S.consume("["))
    return failParse("expected '[' after select");
  if (!S.consume("]")) {
    while (true) {
      std::string Name;
      if (!S.ident(&Name))
        return failParse("expected a dimension variable in the group list");
      int D = dimIndex(DimNames, Name);
      if (D < 0)
        return failParse("unknown dimension variable '" + Name + "'");
      Result.Parsed.GroupDims.push_back(D);
      if (S.consume(","))
        continue;
      if (S.consume("]"))
        break;
      return failParse("expected ',' or ']' in the group list");
    }
  }
  if (!S.consume("->"))
    return failParse("expected '->' after the group list");

  while (true) {
    std::string Fn;
    if (!S.ident(&Fn))
      return failParse("expected an aggregation function");
    Agg A;
    if (Fn == "count")
      A.Kind = AggKind::Count;
    else if (Fn == "max")
      A.Kind = AggKind::Max;
    else if (Fn == "min")
      A.Kind = AggKind::Min;
    else if (Fn == "id")
      A.Kind = AggKind::Id;
    else
      return failParse("unknown aggregation '" + Fn + "'");
    if (!S.consume("("))
      return failParse("expected '(' after " + Fn);
    if (!S.consume(")")) {
      while (true) {
        std::string Name;
        if (!S.ident(&Name))
          return failParse("expected a dimension variable in " + Fn);
        int D = dimIndex(DimNames, Name);
        if (D < 0)
          return failParse("unknown dimension variable '" + Name + "'");
        A.Dims.push_back(D);
        if (S.consume(","))
          continue;
        if (S.consume(")"))
          break;
        return failParse("expected ',' or ')' in " + Fn);
      }
    }
    if (A.Kind == AggKind::Id && !A.Dims.empty())
      return failParse("id() takes no arguments");
    if ((A.Kind == AggKind::Max || A.Kind == AggKind::Min) &&
        A.Dims.size() != 1)
      return failParse(Fn + " aggregates exactly one dimension");
    if (A.Kind == AggKind::Count && A.Dims.empty())
      return failParse("count requires at least one dimension");
    if (!S.consume("as"))
      return failParse("expected 'as <label>' after " + Fn);
    if (!S.ident(&A.Label))
      return failParse("expected a label after 'as'");
    Result.Parsed.Aggs.push_back(A);
    if (S.consume(","))
      continue;
    break;
  }
  if (!S.atEnd())
    return failParse("unexpected trailing input '" + S.rest() + "'");
  Result.Ok = true;
  return Result;
}

Query query::parseQueryOrDie(const std::string &Text, int NumDims) {
  std::vector<std::string> Names;
  for (int D = 0; D < NumDims; ++D)
    Names.push_back("d" + std::to_string(D));
  QueryParseResult R = parseQuery(Text, Names);
  if (!R.Ok)
    fatalError(("invalid attribute query '" + Text + "': " + R.Error)
                   .c_str());
  return R.Parsed;
}
