//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete index notation (CIN) for attribute queries (paper §5.2).
/// A lowered query is a chain of forall statements — temporaries (`where`)
/// first, the final statement last — each of the shape
///
///   forall <space>  Lhs[idx...] op= rhs
///
/// where the iteration space is either the source tensor's nonzeros
/// (SourceAll), a prefix of its levels (SourcePrefix, produced by
/// simplify-width-count), or the dense domain of a temporary (TempDense).
/// Index expressions are remap expressions over the source's canonical
/// index variables (and counters), i.e. the target format's remapped
/// dimension expressions.
///
/// The Table 1 transformations (Transforms.h) rewrite these statements; the
/// compiler (Compile.h) then emits IR specialized to the source format.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_QUERY_CIN_H
#define CONVGEN_QUERY_CIN_H

#include "ir/IR.h"
#include "query/Query.h"
#include "remap/Remap.h"

#include <string>
#include <vector>

namespace convgen {
namespace query {

/// An access into a query result or temporary: the tensor name plus one
/// index expression per dimension (over source canonical ivars/counters).
struct Access {
  std::string Tensor;
  std::vector<remap::Expr> Idx;
};

enum class AssignOp : uint8_t { Assign, Or, Add, Max };

/// Right-hand sides take one of four shapes.
struct RhsExpr {
  enum class RhsKind : uint8_t {
    MapSource, ///< map(B[...], Value): Value for each source nonzero.
    ReadTemp,  ///< Temp[...] * Scale, read over the temp's dense domain.
    RowNnz,    ///< Dynamically computed slice width of source level
               ///< RowNnzLevel, times Scale (simplify-width-count).
    Const,     ///< A constant (after folding).
  };
  RhsKind Kind = RhsKind::MapSource;
  /// MapSource payload = ValueSign * Value + ValueShift; Value may be null
  /// (pure constant payloads like map(B, 1)). The shift implements the
  /// §5.2 encoding that reserves raw 0 for "empty".
  remap::Expr Value;
  int ValueSign = 1;
  ir::Expr ValueShift;
  Access Temp;         ///< ReadTemp operand.
  int64_t Scale = 1;   ///< ReadTemp / RowNnz multiplier.
  int RowNnzLevel = 0; ///< 1-based source level for RowNnz.
};

/// One forall statement.
struct Forall {
  enum class IterSpace : uint8_t { SourceAll, SourcePrefix, TempDense };
  IterSpace Space = IterSpace::SourceAll;
  /// SourcePrefix: number of source levels iterated.
  int PrefixLevels = 0;
  /// TempDense: the temp iterated (loops over all its dims in order); the
  /// Lhs is indexed by the first Lhs.Idx.size() loop variables.
  std::string TempIterated;

  Access Lhs;
  AssignOp Op = AssignOp::Or;
  RhsExpr Rhs;
};

/// Dimension domain of a temporary or result buffer: one destination
/// dimension of the target remap per axis.
struct BufferInfo {
  std::string Name;
  std::vector<int> Dims; ///< Destination dimension indices.
  ir::ScalarKind Elem = ir::ScalarKind::Int;
};

/// A query statement in CIN: temporaries (producers) in dependency order,
/// then the final statement computing the query result.
struct CinStmt {
  std::vector<BufferInfo> Temps;
  BufferInfo Result;
  std::vector<Forall> Stmts; ///< Last statement writes Result.
  /// Decoding of raw max/min results: actual = Sign * raw + Shift
  /// (both null/1 for count and id).
  int Sign = 1;
  ir::Expr Shift;
};

/// Renders a CIN statement chain for golden tests, e.g.
/// "forall(src) q2_nir[i] += map(B, 1)".
std::string printCin(const CinStmt &Stmt);

} // namespace query
} // namespace convgen

#endif // CONVGEN_QUERY_CIN_H
