//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attribute-query optimizations of paper Table 1, implemented as
/// rewrites over CIN statements. `optimize` applies them eagerly to a
/// fixpoint (§5.2); the individual transformations are exposed so tests
/// can check each precondition and rewrite in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_QUERY_TRANSFORMS_H
#define CONVGEN_QUERY_TRANSFORMS_H

#include "levels/SourceIterator.h"
#include "query/Cin.h"
#include "query/Lower.h"

namespace convgen {
namespace query {

/// counter-to-histogram: a max over a counter expression becomes a
/// histogram temporary plus a max over the histogram (Table 1, row 4).
bool counterToHistogram(CinStmt &Stmt, const levels::SourceIterator &Src,
                        const TargetShape &Target);

/// reduction-to-assign: a reduction whose left-hand side is indexed by
/// every iteration variable writes each cell at most once, so the
/// reduction operator degrades to plain assignment (Table 1, row 1).
/// Requires the source to store distinct coordinates (checked by caller).
bool reductionToAssign(CinStmt &Stmt, const levels::SourceIterator &Src);

/// simplify-width-count: a count over the trailing dimension(s) of a
/// source that stores only nonzeros is answered by the source's own
/// metadata (pos-array differences) without touching nonzeros
/// (Table 1, row 3).
bool simplifyWidthCount(CinStmt &Stmt, const levels::SourceIterator &Src);

/// inline-temporary: a temporary defined by plain assignment is
/// substituted into its consumer, eliminating the temporary
/// (Table 1, row 2).
bool inlineTemporary(CinStmt &Stmt, const levels::SourceIterator &Src);

/// Applies all transformations eagerly until none fires.
void optimize(CinStmt &Stmt, const levels::SourceIterator &Src,
              const TargetShape &Target);

} // namespace query
} // namespace convgen

#endif // CONVGEN_QUERY_TRANSFORMS_H
