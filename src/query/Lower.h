//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers attribute queries to their canonical concrete-index-notation
/// forms (paper §5.2): id becomes a boolean-or sweep, count a dedup
/// temporary plus a sum, and max/min shifted max-reductions whose raw zero
/// means "empty subtensor".
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_QUERY_LOWER_H
#define CONVGEN_QUERY_LOWER_H

#include "query/Cin.h"
#include "remap/Bounds.h"

namespace convgen {
namespace query {

/// The target format's remapping and per-dimension bounds, which define the
/// coordinate space queries aggregate over.
struct TargetShape {
  remap::RemapStmt Remap;
  std::vector<remap::DimBounds> Bounds;
};

/// Lowers one aggregation of \p Q to canonical CIN. \p ResultName is the
/// result buffer name (convention: "q<level>_<label>").
CinStmt lowerToCanonical(const Query &Q, const Agg &A,
                         const TargetShape &Target,
                         const std::string &ResultName);

} // namespace query
} // namespace convgen

#endif // CONVGEN_QUERY_LOWER_H
