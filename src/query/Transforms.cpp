//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "query/Transforms.h"

#include "support/Assert.h"

#include <algorithm>
#include <set>

using namespace convgen;
using namespace convgen::query;

namespace {

bool containsCounter(const remap::Expr &E) {
  if (!E)
    return false;
  if (E->Kind == remap::ExprKind::Counter)
    return true;
  return containsCounter(E->A) || containsCounter(E->B);
}

/// Variables an index expression mentions (ivars only).
void collectIVars(const remap::Expr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->Kind == remap::ExprKind::IVar)
    Out.insert(E->Name);
  collectIVars(E->A, Out);
  collectIVars(E->B, Out);
}

/// True if every variable in \p Vars appears as a whole, plain index
/// expression in \p Idx.
bool allPlainlyIndexed(const std::vector<std::string> &Vars,
                       const std::vector<remap::Expr> &Idx) {
  for (const std::string &V : Vars) {
    bool Found = false;
    for (const remap::Expr &E : Idx)
      if (E && E->Kind == remap::ExprKind::IVar && E->Name == V)
        Found = true;
    if (!Found)
      return false;
  }
  return true;
}

} // namespace

bool query::counterToHistogram(CinStmt &Stmt,
                               const levels::SourceIterator &Src,
                               const TargetShape &Target) {
  (void)Src;
  for (size_t S = 0; S < Stmt.Stmts.size(); ++S) {
    Forall &F = Stmt.Stmts[S];
    if (F.Space != Forall::IterSpace::SourceAll || F.Op != AssignOp::Max ||
        F.Rhs.Kind != RhsExpr::RhsKind::MapSource || !containsCounter(F.Rhs.Value))
      continue;
    CONVGEN_ASSERT(F.Rhs.Value->Kind == remap::ExprKind::Counter,
                   "only plain counter payloads are supported");
    const std::vector<std::string> &CounterIVars =
        F.Rhs.Value->CounterIndices;

    // W is indexed by the group dims plus the counter's index variables,
    // each of which must be stored plainly by some destination dimension
    // of the target remapping (ELL's row dimension stores #i's index i).
    BufferInfo W;
    W.Name = Stmt.Result.Name + "_w";
    W.Elem = ir::ScalarKind::Int;
    W.Dims = Stmt.Result.Dims;
    std::vector<remap::Expr> WIdx = F.Lhs.Idx;
    for (const std::string &IV : CounterIVars) {
      int Dim = -1;
      for (size_t D = 0; D < Target.Remap.DstDims.size(); ++D) {
        std::string Name;
        if (remap::dimIsPlainVar(Target.Remap, D, &Name) && Name == IV)
          Dim = static_cast<int>(D);
      }
      if (Dim < 0)
        fatalError("counter histogram requires the counter's index "
                   "variables to be stored dimensions");
      WIdx.push_back(remap::ivar(IV));
      W.Dims.push_back(Dim);
    }
    Stmt.Temps.push_back(W);

    Forall Produce;
    Produce.Space = Forall::IterSpace::SourceAll;
    Produce.Lhs = Access{W.Name, WIdx};
    Produce.Op = AssignOp::Add;
    Produce.Rhs.Kind = RhsExpr::RhsKind::MapSource;
    Produce.Rhs.ValueShift = ir::intImm(1);

    Forall Consume;
    Consume.Space = Forall::IterSpace::TempDense;
    Consume.TempIterated = W.Name;
    Consume.Lhs.Tensor = F.Lhs.Tensor;
    Consume.Lhs.Idx.resize(F.Lhs.Idx.size());
    Consume.Op = AssignOp::Max;
    Consume.Rhs.Kind = RhsExpr::RhsKind::ReadTemp;
    Consume.Rhs.Temp = Access{W.Name, {}};

    // The histogram counts per distinct counter coordinates; its max is
    // max(counter)+1, which is exactly the shifted payload (shift = 1).
    Stmt.Stmts.erase(Stmt.Stmts.begin() + static_cast<long>(S));
    Stmt.Stmts.insert(Stmt.Stmts.begin() + static_cast<long>(S), Consume);
    Stmt.Stmts.insert(Stmt.Stmts.begin() + static_cast<long>(S), Produce);
    return true;
  }
  return false;
}

bool query::reductionToAssign(CinStmt &Stmt,
                              const levels::SourceIterator &Src) {
  bool Changed = false;
  for (Forall &F : Stmt.Stmts) {
    if (F.Op == AssignOp::Assign)
      continue;
    if (F.Space == Forall::IterSpace::SourceAll) {
      const std::vector<std::string> &IVars = Src.format().Remap.SrcVars;
      if (allPlainlyIndexed(IVars, F.Lhs.Idx)) {
        F.Op = AssignOp::Assign;
        Changed = true;
      }
    } else if (F.Space == Forall::IterSpace::SourcePrefix) {
      std::vector<std::string> Avail =
          Src.ivarsAvailableAtPrefix(F.PrefixLevels);
      if (static_cast<int>(Avail.size()) == F.PrefixLevels &&
          allPlainlyIndexed(Avail, F.Lhs.Idx)) {
        F.Op = AssignOp::Assign;
        Changed = true;
      }
    }
  }
  return Changed;
}

bool query::simplifyWidthCount(CinStmt &Stmt,
                               const levels::SourceIterator &Src) {
  if (Src.format().PaddedVals)
    return false; // B must store only nonzeros (Table 1 precondition).
  int Order = static_cast<int>(Src.format().Levels.size());
  for (Forall &F : Stmt.Stmts) {
    if (F.Space != Forall::IterSpace::SourceAll ||
        (F.Op != AssignOp::Add && F.Op != AssignOp::Or) ||
        F.Rhs.Kind != RhsExpr::RhsKind::MapSource || F.Rhs.Value)
      continue;
    int64_t Payload = 0;
    if (!F.Rhs.ValueShift || !ir::isIntConst(F.Rhs.ValueShift, &Payload))
      continue;
    if (F.Op == AssignOp::Or)
      continue; // |= sweeps mark bits; widths do not apply.

    // Find a prefix whose recovered ivars cover the lhs and whose stripped
    // suffix is one compressed level followed only by one-to-one levels —
    // then the compressed level's stored width is the aggregate count.
    std::set<std::string> Used;
    for (const remap::Expr &E : F.Lhs.Idx)
      collectIVars(E, Used);
    int Prefix = -1;
    for (int L = 0; L < Order; ++L) {
      std::vector<std::string> Avail = Src.ivarsAvailableAtPrefix(L);
      std::set<std::string> AvailSet(Avail.begin(), Avail.end());
      if (!std::includes(AvailSet.begin(), AvailSet.end(), Used.begin(),
                         Used.end()))
        continue;
      if (Src.format().Levels[static_cast<size_t>(L)].Kind !=
          formats::LevelKind::Compressed)
        continue;
      if (!Src.suffixIsOneToOne(L + 2))
        continue;
      Prefix = L;
      break;
    }
    if (Prefix < 0)
      continue;

    F.Space = Forall::IterSpace::SourcePrefix;
    F.PrefixLevels = Prefix;
    F.Rhs.Kind = RhsExpr::RhsKind::RowNnz;
    F.Rhs.RowNnzLevel = Prefix + 1;
    F.Rhs.Scale = Payload;
    F.Rhs.ValueShift = nullptr;
    return true;
  }
  return false;
}

bool query::inlineTemporary(CinStmt &Stmt, const levels::SourceIterator &) {
  for (size_t C = 0; C < Stmt.Stmts.size(); ++C) {
    Forall &Consumer = Stmt.Stmts[C];
    if (Consumer.Space != Forall::IterSpace::TempDense ||
        Consumer.Rhs.Kind != RhsExpr::RhsKind::ReadTemp)
      continue;
    // Find the producer of the temp; it must be a plain assignment so the
    // substitution cannot change how many times each cell contributes.
    for (size_t P = 0; P < Stmt.Stmts.size(); ++P) {
      Forall &Producer = Stmt.Stmts[P];
      if (Producer.Lhs.Tensor != Consumer.TempIterated ||
          Producer.Op != AssignOp::Assign)
        continue;
      Forall Fused;
      Fused.Space = Producer.Space;
      Fused.PrefixLevels = Producer.PrefixLevels;
      Fused.Lhs.Tensor = Consumer.Lhs.Tensor;
      Fused.Lhs.Idx.assign(Producer.Lhs.Idx.begin(),
                           Producer.Lhs.Idx.begin() +
                               static_cast<long>(Consumer.Lhs.Idx.size()));
      Fused.Op = Consumer.Op;
      Fused.Rhs = Producer.Rhs;
      Fused.Rhs.Scale *= Consumer.Rhs.Scale;

      // Remove producer and temp; replace consumer with the fused forall.
      std::string TempName = Consumer.TempIterated;
      Stmt.Stmts[C] = Fused;
      Stmt.Stmts.erase(Stmt.Stmts.begin() + static_cast<long>(P));
      Stmt.Temps.erase(
          std::remove_if(Stmt.Temps.begin(), Stmt.Temps.end(),
                         [&](const BufferInfo &B) {
                           return B.Name == TempName;
                         }),
          Stmt.Temps.end());
      return true;
    }
  }
  return false;
}

void query::optimize(CinStmt &Stmt, const levels::SourceIterator &Src,
                     const TargetShape &Target) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= counterToHistogram(Stmt, Src, Target);
    Changed |= reductionToAssign(Stmt, Src);
    Changed |= simplifyWidthCount(Stmt, Src);
    Changed |= inlineTemporary(Stmt, Src);
  }
}
