//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "query/Cin.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::query;

namespace {

std::string printAccess(const Access &A) {
  std::string Out = A.Tensor + "[";
  for (size_t I = 0; I < A.Idx.size(); ++I) {
    if (I)
      Out += ",";
    Out += A.Idx[I] ? remap::printExpr(A.Idx[I]) : "*";
  }
  return Out + "]";
}

const char *opSpelling(AssignOp Op) {
  switch (Op) {
  case AssignOp::Assign:
    return "=";
  case AssignOp::Or:
    return "|=";
  case AssignOp::Add:
    return "+=";
  case AssignOp::Max:
    return "max=";
  }
  convgen_unreachable("unknown assign op");
}

std::string printRhs(const RhsExpr &R) {
  switch (R.Kind) {
  case RhsExpr::RhsKind::MapSource: {
    std::string Payload;
    if (R.Value) {
      Payload = remap::printExpr(R.Value);
      if (R.ValueSign < 0)
        Payload = "-(" + Payload + ")";
      if (R.ValueShift)
        Payload += " + " + ir::printExpr(R.ValueShift);
    } else {
      Payload = R.ValueShift ? ir::printExpr(R.ValueShift) : "0";
    }
    std::string Out = "map(B, " + Payload + ")";
    if (R.Scale != 1)
      Out += " * " + std::to_string(R.Scale);
    return Out;
  }
  case RhsExpr::RhsKind::ReadTemp: {
    std::string Out = R.Temp.Tensor + "[*]";
    if (R.Scale != 1)
      Out += " * " + std::to_string(R.Scale);
    return Out;
  }
  case RhsExpr::RhsKind::RowNnz: {
    std::string Out = strfmt("nnz(B, level %d)", R.RowNnzLevel);
    if (R.Scale != 1)
      Out += " * " + std::to_string(R.Scale);
    return Out;
  }
  case RhsExpr::RhsKind::Const:
    return std::to_string(R.Scale);
  }
  convgen_unreachable("unknown rhs kind");
}

} // namespace

std::string query::printCin(const CinStmt &Stmt) {
  std::string Out;
  for (const Forall &F : Stmt.Stmts) {
    switch (F.Space) {
    case Forall::IterSpace::SourceAll:
      Out += "forall(src) ";
      break;
    case Forall::IterSpace::SourcePrefix:
      Out += strfmt("forall(src:%d) ", F.PrefixLevels);
      break;
    case Forall::IterSpace::TempDense:
      Out += "forall(" + F.TempIterated + ") ";
      break;
    }
    Out += printAccess(F.Lhs) + " " + opSpelling(F.Op) + " " +
           printRhs(F.Rhs) + "\n";
  }
  return Out;
}
