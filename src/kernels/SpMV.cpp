//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "kernels/SpMV.h"

#include "support/Assert.h"
#include "tensor/Oracle.h"

#include <algorithm>

using namespace convgen;
using namespace convgen::kernels;

namespace {

std::vector<double> spmvCoo(const tensor::SparseTensor &A,
                            const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(A.numRows()), 0.0);
  const int32_t *Rows = A.Levels[0].Crd.data();
  const int32_t *Cols = A.Levels[1].Crd.data();
  const double *Vals = A.Vals.data();
  size_t Nnz = A.Vals.size();
  for (size_t P = 0; P < Nnz; ++P)
    Y[static_cast<size_t>(Rows[P])] +=
        Vals[P] * X[static_cast<size_t>(Cols[P])];
  return Y;
}

std::vector<double> spmvCsr(const tensor::SparseTensor &A,
                            const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(A.numRows()));
  const int32_t *Pos = A.Levels[1].Pos.data();
  const int32_t *Crd = A.Levels[1].Crd.data();
  const double *Vals = A.Vals.data();
  int64_t M = A.numRows();
  for (int64_t I = 0; I < M; ++I) {
    double Acc = 0;
    for (int32_t P = Pos[I]; P < Pos[I + 1]; ++P)
      Acc += Vals[P] * X[static_cast<size_t>(Crd[P])];
    Y[static_cast<size_t>(I)] = Acc;
  }
  return Y;
}

std::vector<double> spmvCsc(const tensor::SparseTensor &A,
                            const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(A.numRows()), 0.0);
  const int32_t *Pos = A.Levels[1].Pos.data();
  const int32_t *Crd = A.Levels[1].Crd.data();
  const double *Vals = A.Vals.data();
  int64_t N = A.numCols();
  for (int64_t J = 0; J < N; ++J) {
    double Xj = X[static_cast<size_t>(J)];
    for (int32_t P = Pos[J]; P < Pos[J + 1]; ++P)
      Y[static_cast<size_t>(Crd[P])] += Vals[P] * Xj;
  }
  return Y;
}

std::vector<double> spmvDia(const tensor::SparseTensor &A,
                            const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(A.numRows()), 0.0);
  int64_t M = A.numRows();
  int64_t N = A.numCols();
  int64_t K = A.Levels[0].SizeParam;
  const int32_t *Perm = A.Levels[0].Perm.data();
  const double *Vals = A.Vals.data();
  for (int64_t S = 0; S < K; ++S) {
    int64_t Offset = Perm[S];
    int64_t Lo = std::max<int64_t>(0, -Offset);
    int64_t Hi = std::min<int64_t>(M, N - Offset);
    const double *Slice = Vals + S * M;
    for (int64_t I = Lo; I < Hi; ++I)
      Y[static_cast<size_t>(I)] +=
          Slice[I] * X[static_cast<size_t>(I + Offset)];
  }
  return Y;
}

std::vector<double> spmvEll(const tensor::SparseTensor &A,
                            const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(A.numRows()), 0.0);
  int64_t M = A.numRows();
  int64_t K = A.Levels[0].SizeParam;
  const int32_t *Crd = A.Levels[2].Crd.data();
  const double *Vals = A.Vals.data();
  for (int64_t S = 0; S < K; ++S) {
    const int32_t *CrdSlice = Crd + S * M;
    const double *ValSlice = Vals + S * M;
    for (int64_t I = 0; I < M; ++I)
      Y[static_cast<size_t>(I)] +=
          ValSlice[I] * X[static_cast<size_t>(CrdSlice[I])];
  }
  return Y;
}

std::vector<double> spmvBcsr(const tensor::SparseTensor &A,
                             const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(A.numRows()), 0.0);
  int64_t R = A.Format.StaticParams.at(0);
  int64_t C = A.Format.StaticParams.at(1);
  int64_t BlockRows = (A.numRows() + R - 1) / R;
  const int32_t *Pos = A.Levels[1].Pos.data();
  const int32_t *Crd = A.Levels[1].Crd.data();
  const double *Vals = A.Vals.data();
  int64_t M = A.numRows();
  int64_t N = A.numCols();
  for (int64_t IB = 0; IB < BlockRows; ++IB)
    for (int32_t P = Pos[IB]; P < Pos[IB + 1]; ++P) {
      int64_t JB = Crd[P];
      const double *Block = Vals + static_cast<int64_t>(P) * R * C;
      for (int64_t IL = 0; IL < R; ++IL) {
        int64_t Row = IB * R + IL;
        if (Row >= M)
          break;
        double Acc = 0;
        for (int64_t JL = 0; JL < C; ++JL) {
          int64_t Col = JB * C + JL;
          if (Col >= N)
            break;
          Acc += Block[IL * C + JL] * X[static_cast<size_t>(Col)];
        }
        Y[static_cast<size_t>(Row)] += Acc;
      }
    }
  return Y;
}

std::vector<double> spmvSky(const tensor::SparseTensor &A,
                            const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(A.numRows()), 0.0);
  const int32_t *Pos = A.Levels[1].Pos.data();
  const double *Vals = A.Vals.data();
  int64_t M = A.numRows();
  for (int64_t I = 0; I < M; ++I) {
    double Acc = 0;
    int32_t Begin = Pos[I];
    int32_t End = Pos[I + 1];
    // Columns run w..i, i.e. j = p - End + i + 1.
    for (int32_t P = Begin; P < End; ++P)
      Acc += Vals[P] * X[static_cast<size_t>(P - End + I + 1)];
    Y[static_cast<size_t>(I)] = Acc;
  }
  return Y;
}

} // namespace

std::vector<double> kernels::spmv(const tensor::SparseTensor &A,
                                  const std::vector<double> &X) {
  if (static_cast<int64_t>(X.size()) != A.numCols())
    fatalError("spmv: x must have one entry per column of A");
  const std::string &Name = A.Format.Name;
  if (Name == "coo")
    return spmvCoo(A, X);
  if (Name == "csr")
    return spmvCsr(A, X);
  if (Name == "csc")
    return spmvCsc(A, X);
  if (Name == "dia")
    return spmvDia(A, X);
  if (Name == "ell")
    return spmvEll(A, X);
  if (Name.rfind("bcsr", 0) == 0)
    return spmvBcsr(A, X);
  if (Name == "sky")
    return spmvSky(A, X);
  fatalError(("no SpMV kernel for format '" + Name + "'").c_str());
}

std::vector<double> kernels::spmvReference(const tensor::SparseTensor &A,
                                           const std::vector<double> &X) {
  tensor::Triplets T = tensor::toTriplets(A);
  std::vector<double> Y(static_cast<size_t>(T.NumRows), 0.0);
  for (const tensor::Entry &E : T.Entries)
    Y[static_cast<size_t>(E.Row)] += E.Val * X[static_cast<size_t>(E.Col)];
  return Y;
}
