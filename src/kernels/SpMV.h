//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse matrix-vector multiplication kernels for every shipped format.
/// These are the computations that motivate format conversion in the first
/// place (paper §1: CSR SpMV is ~2x COO SpMV; DIA improves further on
/// banded matrices), and they power the solver example and the motivation
/// benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_KERNELS_SPMV_H
#define CONVGEN_KERNELS_SPMV_H

#include "tensor/SparseTensor.h"

#include <vector>

namespace convgen {
namespace kernels {

/// y = A * x. Dispatches on A's format (COO/CSR/CSC/DIA/ELL/BCSR/SKY);
/// aborts with a diagnostic for formats without a kernel. \p X must have
/// numCols entries; the result has numRows entries.
std::vector<double> spmv(const tensor::SparseTensor &A,
                         const std::vector<double> &X);

/// Dense reference (for tests): builds the dense matrix and multiplies.
std::vector<double> spmvReference(const tensor::SparseTensor &A,
                                  const std::vector<double> &X);

} // namespace kernels
} // namespace convgen

#endif // CONVGEN_KERNELS_SPMV_H
