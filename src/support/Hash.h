//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a hashing, shared by the plan cache's content checksums and shard
/// router. One definition keeps the constants (and thus on-disk manifest
/// compatibility) in a single place.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_HASH_H
#define CONVGEN_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace convgen {
namespace support {

/// 64-bit FNV-1a over \p Data. Stable across platforms and processes; used
/// both for disk-cache manifests (rendered via fnv1aHex) and for in-memory
/// shard selection, so do not change the constants without migrating every
/// persisted manifest.
inline uint64_t fnv1a(std::string_view Data) {
  uint64_t Hash = 1469598103934665603ull; // FNV offset basis.
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 1099511628211ull; // FNV prime.
  }
  return Hash;
}

} // namespace support
} // namespace convgen

#endif // CONVGEN_SUPPORT_HASH_H
