//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace convgen;

std::string convgen::join(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::vector<std::string> convgen::split(const std::string &Text, char Sep) {
  std::vector<std::string> Fields;
  std::string Current;
  for (char C : Text) {
    if (C == Sep) {
      Fields.push_back(Current);
      Current.clear();
    } else {
      Current += C;
    }
  }
  Fields.push_back(Current);
  return Fields;
}

std::string convgen::trim(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool convgen::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string convgen::strfmt(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result(Len > 0 ? static_cast<size_t>(Len) : 0, '\0');
  if (Len > 0)
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
