//===----------------------------------------------------------------------===//
//
// Part of convgen, a reimplementation of "Automatic Generation of Efficient
// Sparse Tensor Format Conversion Routines" (Chou, Kjolstad, Amarasinghe,
// PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion and unreachable-marker macros used across the library.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_ASSERT_H
#define CONVGEN_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Asserts \p Cond with an explanatory message; compiled out in NDEBUG builds.
#define CONVGEN_ASSERT(Cond, Msg) assert((Cond) && (Msg))

/// Marks a point in code that must never be reached. Unlike assert, this also
/// aborts in release builds, since continuing past it would mis-generate code.
#define convgen_unreachable(Msg)                                               \
  do {                                                                         \
    std::fprintf(stderr, "convgen fatal: unreachable reached at %s:%d: %s\n",  \
                 __FILE__, __LINE__, (Msg));                                   \
    std::abort();                                                              \
  } while (false)

namespace convgen {

/// Reports an unrecoverable user-facing error (malformed specification,
/// unsupported conversion) and aborts. The library avoids exceptions per the
/// project coding standard, so hard errors terminate with a clear message.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "convgen fatal error: %s\n", Msg);
  std::abort();
}

} // namespace convgen

#endif // CONVGEN_SUPPORT_ASSERT_H
