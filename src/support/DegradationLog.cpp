//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DegradationLog.h"

#include "support/StringUtils.h"

#include <atomic>
#include <mutex>

using namespace convgen;
using namespace convgen::support;

const char *support::degradationName(Degradation Kind) {
  switch (Kind) {
  case Degradation::JitCompileFailure:
    return "jit-compile-failure";
  case Degradation::JitLoadFailure:
    return "jit-load-failure";
  case Degradation::JitRetry:
    return "jit-retry";
  case Degradation::InterpreterFallback:
    return "interpreter-fallback";
  case Degradation::CacheChecksumEviction:
    return "cache-checksum-eviction";
  case Degradation::CacheReadFailure:
    return "cache-read-failure";
  case Degradation::CacheWriteFailure:
    return "cache-write-failure";
  case Degradation::AllocProbeFailure:
    return "alloc-probe-failure";
  case Degradation::CompileTimeout:
    return "compile-timeout";
  case Degradation::DeadlineExceeded:
    return "deadline-exceeded";
  case Degradation::LoadShed:
    return "load-shed";
  case Degradation::SingleFlightCoalesce:
    return "single-flight-coalesce";
  case Degradation::PreloadEviction:
    return "preload-evict";
  case Degradation::PreloadHit:
    return "preload-hit";
  case Degradation::PlannerFallback:
    return "planner-fallback";
  }
  return "unknown";
}

struct DegradationLog::Impl {
  std::atomic<uint64_t> Counts[kNumDegradations] = {};
  mutable std::mutex Mu;
  std::string Details[kNumDegradations];
};

DegradationLog::Impl &DegradationLog::impl() const {
  static Impl I;
  return I;
}

DegradationLog &DegradationLog::instance() {
  static DegradationLog Log;
  return Log;
}

void DegradationLog::record(Degradation Kind, const std::string &Detail) {
  Impl &I = impl();
  I.Counts[static_cast<int>(Kind)].fetch_add(1, std::memory_order_relaxed);
  if (!Detail.empty()) {
    std::lock_guard<std::mutex> Lock(I.Mu);
    I.Details[static_cast<int>(Kind)] = Detail;
  }
}

DegradationCounters DegradationLog::snapshot() const {
  Impl &I = impl();
  DegradationCounters Out;
  for (int K = 0; K < kNumDegradations; ++K)
    Out.Counts[K] = I.Counts[K].load(std::memory_order_relaxed);
  return Out;
}

std::string DegradationLog::lastDetail(Degradation Kind) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Details[static_cast<int>(Kind)];
}

std::string DegradationLog::summary() const {
  DegradationCounters C = snapshot();
  std::string Out;
  for (int K = 0; K < kNumDegradations; ++K) {
    if (C.Counts[K] == 0)
      continue;
    if (!Out.empty())
      Out += " ";
    Out += strfmt("%s=%llu", degradationName(static_cast<Degradation>(K)),
                  static_cast<unsigned long long>(C.Counts[K]));
  }
  return Out.empty() ? "none" : Out;
}

void DegradationLog::reset() {
  Impl &I = impl();
  for (auto &C : I.Counts)
    C.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(I.Mu);
  for (auto &D : I.Details)
    D.clear();
}
