//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the conversion runtime, driven by the
/// CONVGEN_FAULT environment variable:
///
///   CONVGEN_FAULT=<site>[:<rate>[:<seed>]][,<site>[:<rate>[:<seed>]]...]
///
/// Sites: compile (the external JIT compile step), dlopen, dlsym (loading
/// a compiled object), cache-read (disk-cache lookup), cache-write
/// (disk-cache install), alloc-probe (the allocation probe at the native
/// run boundary), compile-hang (the compiler child hangs until the
/// watchdog kills it). Rate is a probability in [0,1], default 1 (always
/// fails); seed makes the per-site Bernoulli stream reproducible.
///
/// The variable is re-read on every query (the same convention as the
/// other CONVGEN_* knobs), so tests can scope injection with ScopedEnv.
/// Each successful injection is counted; the fault-injection test suite
/// reconciles these counts against the DegradationLog so every injected
/// fault is provably observed and survived by the runtime.
///
/// Malformed clauses are diagnosed once on stderr and ignored — a fault
/// harness must not introduce a new way to die.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_FAULT_H
#define CONVGEN_SUPPORT_FAULT_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace convgen {
namespace support {

enum class FaultSite {
  Compile = 0,
  Dlopen,
  Dlsym,
  CacheRead,
  CacheWrite,
  AllocProbe,
  /// The external compiler child hangs instead of compiling; only drawn
  /// when a compile-wait bound is in force (CONVGEN_COMPILE_TIMEOUT_MS or
  /// a request deadline), so the watchdog's SIGKILL path — not an
  /// unbounded stall — is what the injection exercises.
  CompileHang,
};
constexpr int kNumFaultSites = 7;

/// The spelling used in CONVGEN_FAULT ("compile", "cache-read", ...).
const char *faultSiteName(FaultSite Site);

/// True when CONVGEN_FAULT is set and nonempty (used by tests that assert
/// strict native-execution behavior to skip under injection).
bool faultsConfigured();

/// Draws at \p Site: true when an injected failure should occur now.
/// Always false when CONVGEN_FAULT does not name the site.
bool faultInjected(FaultSite Site);

/// Number of injections delivered at \p Site since process start (or the
/// last resetFaultCounters).
uint64_t faultInjectionCount(FaultSite Site);

/// Sum of faultInjectionCount over all sites.
uint64_t faultInjectionTotal();

/// Zeroes the injection counters (tests).
void resetFaultCounters();

/// Strict parser for the CONVGEN_FAULT grammar, exposed for tests; the
/// runtime itself warns and skips malformed clauses instead of failing.
Status parseFaultSpec(const std::string &Spec);

} // namespace support
} // namespace convgen

#endif // CONVGEN_SUPPORT_FAULT_H
