//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable error propagation for the user-facing runtime boundary. The
/// library avoids exceptions per the project coding standard, so fallible
/// operations reachable from untrusted input or a hostile environment
/// (malformed tensors, unsupported pairs, a missing compiler, a corrupt
/// cached object) return a Status / StatusOr<T> instead of calling
/// fatalError. Internal codegen invariants keep convgen_unreachable — a
/// violated invariant means the generator would mis-emit code, and no
/// caller can meaningfully continue.
///
/// The error codes double as a degradation policy: isEnvironmentError()
/// separates failures a caller should retry or degrade around (Unavailable,
/// DataLoss, ResourceExhausted — the compiler vanished, a cached object is
/// torn, an allocation probe failed) from failures that are properties of
/// the request itself (InvalidArgument, Unsupported) where the interpreter
/// fallback would fail identically.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_STATUS_H
#define CONVGEN_SUPPORT_STATUS_H

#include "support/Assert.h"

#include <optional>
#include <string>
#include <utility>

namespace convgen {

enum class ErrorCode {
  Ok = 0,
  /// The request itself is malformed (wrong source format, unsorted input
  /// where the plan requires order). Not retryable; do not degrade.
  InvalidArgument,
  /// The pair (or the pair at these dimensions) has no generated routine.
  /// Not retryable; do not degrade.
  Unsupported,
  /// The environment failed the request: no compiler, a failed compile or
  /// dlopen, a scratch directory that cannot be created. Retryable, and the
  /// interpreter path can serve the same request bit-identically.
  Unavailable,
  /// Stored bytes failed verification (torn or corrupt cached object).
  /// Evict and regenerate.
  DataLoss,
  /// An allocation probe or resource limit failed. Degrade or retry later.
  /// The serving layer also sheds admissions with this code when in-flight
  /// work exceeds CONVGEN_MAX_INFLIGHT and the queue is full.
  ResourceExhausted,
  /// The request's deadline (or the CONVGEN_COMPILE_TIMEOUT_MS bound on an
  /// external compile) expired before the work finished. Deliberately NOT
  /// an environment error: retrying immediately would pay the same bound
  /// again, so callers degrade or re-submit with a larger deadline instead.
  DeadlineExceeded,
  /// A should-not-happen condition reported instead of aborting because a
  /// serving layer sits above; treat like Unavailable.
  Internal,
};

/// Stable lowercase name for an error code ("invalid-argument", ...).
inline const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::Unsupported:
    return "unsupported";
  case ErrorCode::Unavailable:
    return "unavailable";
  case ErrorCode::DataLoss:
    return "data-loss";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::Internal:
    return "internal";
  }
  return "unknown";
}

class Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status error(ErrorCode Code, std::string Message) {
    CONVGEN_ASSERT(Code != ErrorCode::Ok, "error() requires a non-Ok code");
    Status S;
    S.Code_ = Code;
    S.Message_ = std::move(Message);
    return S;
  }

  bool ok() const { return Code_ == ErrorCode::Ok; }
  ErrorCode code() const { return Code_; }
  const std::string &message() const { return Message_; }

  /// True for failures of the environment rather than the request: the
  /// caller may retry with backoff or degrade to the interpreter path.
  bool isEnvironmentError() const {
    return Code_ == ErrorCode::Unavailable || Code_ == ErrorCode::DataLoss ||
           Code_ == ErrorCode::ResourceExhausted ||
           Code_ == ErrorCode::Internal;
  }

  /// "ok" or "<code>: <message>" for diagnostics and logs.
  std::string toString() const {
    if (ok())
      return "ok";
    return std::string(errorCodeName(Code_)) + ": " + Message_;
  }

private:
  ErrorCode Code_ = ErrorCode::Ok;
  std::string Message_;
};

/// A value or the Status explaining its absence. Constructing from an OK
/// Status is a caller bug and is reported as an Internal error rather than
/// silently fabricating a value.
template <typename T> class StatusOr {
public:
  StatusOr(Status S) : St(std::move(S)) {
    if (St.ok())
      St = Status::error(ErrorCode::Internal,
                         "StatusOr constructed from an OK status");
  }
  StatusOr(T Value) : Val(std::move(Value)) {}

  bool ok() const { return Val.has_value(); }

  /// The error (or a default OK status when a value is present).
  const Status &status() const { return St; }

  /// The value; calling on an error is a programming bug and aborts with
  /// the underlying diagnostic (use ok() first on fallible paths).
  T &value() {
    if (!ok())
      fatalError(St.toString().c_str());
    return *Val;
  }
  const T &value() const {
    if (!ok())
      fatalError(St.toString().c_str());
    return *Val;
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// Moves the value out (the usual way to consume a checked result).
  T take() { return std::move(value()); }

private:
  Status St;
  std::optional<T> Val;
};

} // namespace convgen

#endif // CONVGEN_SUPPORT_STATUS_H
