//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic-clock request deadline, threaded from the serving layer down
/// through Converter::tryRun / PlanCache::tryJit / JIT construction. A
/// deadline bounds *waiting* — admission queues, coalesced-flight waits,
/// and the watchdog wait on an external compiler child — and is checked at
/// phase boundaries; it does not preempt compute that is already running.
/// Default-constructed deadlines are infinite, so every API taking one
/// keeps its old unbounded behavior when the caller passes nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_DEADLINE_H
#define CONVGEN_SUPPORT_DEADLINE_H

#include <chrono>
#include <cstdint>

namespace convgen {
namespace support {

class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires.
  Deadline() = default;

  static Deadline never() { return Deadline(); }

  /// Expires \p Ms milliseconds from now (clamped at zero: an already
  /// expired deadline, useful for fail-fast tests).
  static Deadline afterMillis(int64_t Ms) {
    Deadline D;
    D.Finite = true;
    D.At = Clock::now() + std::chrono::milliseconds(Ms < 0 ? 0 : Ms);
    return D;
  }

  /// Expires at \p At on the monotonic clock.
  static Deadline at(Clock::time_point At) {
    Deadline D;
    D.Finite = true;
    D.At = At;
    return D;
  }

  bool infinite() const { return !Finite; }
  bool expired() const { return Finite && Clock::now() >= At; }

  /// Milliseconds until expiry: 0 when already expired, INT64_MAX when
  /// infinite (safe to min() against other bounds).
  int64_t remainingMillis() const {
    if (!Finite)
      return INT64_MAX;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        At - Clock::now());
    return Left.count() < 0 ? 0 : Left.count();
  }

  /// The expiry instant; only meaningful when !infinite() (callers gate on
  /// that before handing it to wait_until / wait_for conversions).
  Clock::time_point timePoint() const { return At; }

private:
  bool Finite = false;
  Clock::time_point At{};
};

} // namespace support
} // namespace convgen

#endif // CONVGEN_SUPPORT_DEADLINE_H
