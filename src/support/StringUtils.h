//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the parsers, printers, and emitters.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_STRINGUTILS_H
#define CONVGEN_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace convgen {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Splits \p Text on the single character \p Sep; empty fields are kept.
std::vector<std::string> split(const std::string &Text, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// printf-style formatting into a std::string.
std::string strfmt(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace convgen

#endif // CONVGEN_SUPPORT_STRINGUTILS_H
