//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-process record of every time the conversion runtime degraded
/// instead of dying: failed JIT compiles, failed dlopen/dlsym loads,
/// bounded-backoff retries, interpreter fallbacks, checksum evictions and
/// failed reads/writes in the shared disk cache, and allocation-probe
/// failures. The counter set is the export surface a future serving layer
/// hangs its metrics off; today the fault-injection suite reconciles it
/// against the injected-fault counts (every injected fault must be
/// accounted for), and benches print it when nonzero so a silently
/// degraded measurement cannot masquerade as a native one.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_DEGRADATIONLOG_H
#define CONVGEN_SUPPORT_DEGRADATIONLOG_H

#include <cstdint>
#include <string>

namespace convgen {
namespace support {

enum class Degradation {
  /// An external JIT compile attempt failed (including injected faults).
  JitCompileFailure = 0,
  /// dlopen or dlsym failed on a freshly compiled or cached object.
  JitLoadFailure,
  /// A transient failure was retried after bounded backoff.
  JitRetry,
  /// A conversion ran through the interpreter because the native path was
  /// unavailable (degraded JIT handle, missing compiler, alloc probe).
  InterpreterFallback,
  /// A disk-cache entry failed checksum verification and was evicted.
  CacheChecksumEviction,
  /// A disk-cache lookup failed (injected or I/O).
  CacheReadFailure,
  /// A disk-cache install failed (injected or I/O); the conversion still
  /// served from the locally compiled object.
  CacheWriteFailure,
  /// The allocation probe at the native run boundary reported exhaustion.
  AllocProbeFailure,
  /// The watchdog SIGKILLed an external compiler child that exceeded
  /// CONVGEN_COMPILE_TIMEOUT_MS; the handle degraded to the interpreter.
  CompileTimeout,
  /// A request deadline expired (while queued, while waiting on a
  /// coalesced in-flight compile, or bounding a compile it led).
  DeadlineExceeded,
  /// The serving layer rejected an admission at capacity
  /// (CONVGEN_MAX_INFLIGHT in flight and the queue full).
  LoadShed,
  /// Informational: a cache miss piggybacked on another thread's in-flight
  /// build instead of compiling redundantly. Normal under concurrent load.
  SingleFlightCoalesce,
  /// A warm-start manifest entry failed revalidation at preload — corrupt
  /// line, compiler/ISA/flags skew, plan-key drift, or a checksum mismatch
  /// on the referenced object — and was evicted, never served.
  PreloadEviction,
  /// Informational: a warm-start preload installed a revalidated cached
  /// object into the in-memory cache, so the entry's first request hits
  /// warm with no compiler invocation.
  PreloadHit,
  /// A planner-chosen variant path failed at execution and the conversion
  /// fell back to the default direct plan (which then served the request;
  /// the input never fails because of a planner choice).
  PlannerFallback,
};
constexpr int kNumDegradations = 15;

/// Stable lowercase name ("jit-compile-failure", ...).
const char *degradationName(Degradation Kind);

/// A consistent snapshot of the counters.
struct DegradationCounters {
  uint64_t Counts[kNumDegradations] = {};

  uint64_t operator[](Degradation Kind) const {
    return Counts[static_cast<int>(Kind)];
  }
  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }

  /// Sum of the counters that mean an execution actually degraded.
  /// Excludes the service-flow kinds — coalesced waits, load sheds,
  /// request-deadline expiries, and warm-start preload hits — which are
  /// normal under concurrent load and never turn a native timing into an
  /// interpreter timing.
  uint64_t degradedTotal() const {
    return total() - (*this)[Degradation::SingleFlightCoalesce] -
           (*this)[Degradation::LoadShed] -
           (*this)[Degradation::DeadlineExceeded] -
           (*this)[Degradation::PreloadHit] -
           (*this)[Degradation::PlannerFallback];
  }
};

class DegradationLog {
public:
  /// The process-wide instance. All methods are thread-safe.
  static DegradationLog &instance();

  /// Counts one degradation; \p Detail (optional) is kept as the most
  /// recent diagnostic for the kind.
  void record(Degradation Kind, const std::string &Detail = "");

  DegradationCounters snapshot() const;

  /// The most recent detail string recorded for \p Kind (empty if none).
  std::string lastDetail(Degradation Kind) const;

  /// "kind=count kind=count ..." over the nonzero counters ("none" when
  /// the process never degraded). The form benches and services print.
  std::string summary() const;

  /// Zeroes counters and details (tests).
  void reset();

private:
  DegradationLog() = default;
  struct Impl;
  Impl &impl() const;
};

} // namespace support
} // namespace convgen

#endif // CONVGEN_SUPPORT_DEGRADATIONLOG_H
