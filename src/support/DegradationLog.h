//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-process record of every time the conversion runtime degraded
/// instead of dying: failed JIT compiles, failed dlopen/dlsym loads,
/// bounded-backoff retries, interpreter fallbacks, checksum evictions and
/// failed reads/writes in the shared disk cache, and allocation-probe
/// failures. The counter set is the export surface a future serving layer
/// hangs its metrics off; today the fault-injection suite reconciles it
/// against the injected-fault counts (every injected fault must be
/// accounted for), and benches print it when nonzero so a silently
/// degraded measurement cannot masquerade as a native one.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SUPPORT_DEGRADATIONLOG_H
#define CONVGEN_SUPPORT_DEGRADATIONLOG_H

#include <cstdint>
#include <string>

namespace convgen {
namespace support {

enum class Degradation {
  /// An external JIT compile attempt failed (including injected faults).
  JitCompileFailure = 0,
  /// dlopen or dlsym failed on a freshly compiled or cached object.
  JitLoadFailure,
  /// A transient failure was retried after bounded backoff.
  JitRetry,
  /// A conversion ran through the interpreter because the native path was
  /// unavailable (degraded JIT handle, missing compiler, alloc probe).
  InterpreterFallback,
  /// A disk-cache entry failed checksum verification and was evicted.
  CacheChecksumEviction,
  /// A disk-cache lookup failed (injected or I/O).
  CacheReadFailure,
  /// A disk-cache install failed (injected or I/O); the conversion still
  /// served from the locally compiled object.
  CacheWriteFailure,
  /// The allocation probe at the native run boundary reported exhaustion.
  AllocProbeFailure,
};
constexpr int kNumDegradations = 8;

/// Stable lowercase name ("jit-compile-failure", ...).
const char *degradationName(Degradation Kind);

/// A consistent snapshot of the counters.
struct DegradationCounters {
  uint64_t Counts[kNumDegradations] = {};

  uint64_t operator[](Degradation Kind) const {
    return Counts[static_cast<int>(Kind)];
  }
  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }
};

class DegradationLog {
public:
  /// The process-wide instance. All methods are thread-safe.
  static DegradationLog &instance();

  /// Counts one degradation; \p Detail (optional) is kept as the most
  /// recent diagnostic for the kind.
  void record(Degradation Kind, const std::string &Detail = "");

  DegradationCounters snapshot() const;

  /// The most recent detail string recorded for \p Kind (empty if none).
  std::string lastDetail(Degradation Kind) const;

  /// "kind=count kind=count ..." over the nonzero counters ("none" when
  /// the process never degraded). The form benches and services print.
  std::string summary() const;

  /// Zeroes counters and details (tests).
  void reset();

private:
  DegradationLog() = default;
  struct Impl;
  Impl &impl() const;
};

} // namespace support
} // namespace convgen

#endif // CONVGEN_SUPPORT_DEGRADATIONLOG_H
