//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include "support/StringUtils.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <set>

using namespace convgen;
using namespace convgen::support;

const char *support::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::Compile:
    return "compile";
  case FaultSite::Dlopen:
    return "dlopen";
  case FaultSite::Dlsym:
    return "dlsym";
  case FaultSite::CacheRead:
    return "cache-read";
  case FaultSite::CacheWrite:
    return "cache-write";
  case FaultSite::AllocProbe:
    return "alloc-probe";
  case FaultSite::CompileHang:
    return "compile-hang";
  }
  return "unknown";
}

namespace {

bool faultSiteFromName(const std::string &Name, FaultSite *Out) {
  for (int S = 0; S < kNumFaultSites; ++S) {
    FaultSite Site = static_cast<FaultSite>(S);
    if (Name == faultSiteName(Site)) {
      *Out = Site;
      return true;
    }
  }
  return false;
}

struct SiteConfig {
  bool Active = false;
  double Rate = 1.0;
  std::mt19937_64 Rng;
};

/// One clause of the spec, parsed. Returns a non-OK status (never aborts)
/// on grammar violations.
Status parseClause(const std::string &Clause, FaultSite *Site, double *Rate,
                   uint64_t *Seed, bool *HaveSeed) {
  std::vector<std::string> Parts = split(Clause, ':');
  if (Parts.empty() || trim(Parts[0]).empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "empty fault clause in '" + Clause + "'");
  if (Parts.size() > 3)
    return Status::error(ErrorCode::InvalidArgument,
                         "fault clause has more than site:rate:seed fields: " +
                             Clause);
  if (!faultSiteFromName(trim(Parts[0]), Site))
    return Status::error(ErrorCode::InvalidArgument,
                         "unknown fault site '" + trim(Parts[0]) +
                             "' (sites: compile, dlopen, dlsym, cache-read, "
                             "cache-write, alloc-probe, compile-hang)");
  *Rate = 1.0;
  *HaveSeed = false;
  if (Parts.size() >= 2) {
    const std::string RateTok = trim(Parts[1]);
    char *End = nullptr;
    errno = 0;
    double R = std::strtod(RateTok.c_str(), &End);
    if (RateTok.empty() || *End != '\0' || errno == ERANGE || R < 0.0 ||
        R > 1.0)
      return Status::error(ErrorCode::InvalidArgument,
                           "fault rate must be in [0,1]: " + Clause);
    *Rate = R;
  }
  if (Parts.size() == 3) {
    const std::string SeedTok = trim(Parts[2]);
    char *End = nullptr;
    errno = 0;
    uint64_t S = std::strtoull(SeedTok.c_str(), &End, 0);
    if (SeedTok.empty() || *End != '\0' || errno == ERANGE)
      return Status::error(ErrorCode::InvalidArgument,
                           "fault seed must be an integer: " + Clause);
    *Seed = S;
    *HaveSeed = true;
  }
  return Status();
}

/// Process-wide injector. The env string is re-read per query; a changed
/// string reparses the configuration and reseeds the per-site streams
/// (counters persist across reconfiguration so tests can total them).
class Injector {
public:
  static Injector &instance() {
    static Injector I;
    return I;
  }

  bool injected(FaultSite Site) {
    const char *Env = std::getenv("CONVGEN_FAULT");
    if (!Env || !*Env)
      return false;
    std::lock_guard<std::mutex> Lock(Mu);
    refreshLocked(Env);
    SiteConfig &C = Sites[static_cast<int>(Site)];
    if (!C.Active)
      return false;
    // 53-bit uniform draw in [0,1); rate 1 always fires, rate 0 never.
    double U = static_cast<double>(C.Rng() >> 11) *
               (1.0 / 9007199254740992.0);
    if (U >= C.Rate)
      return false;
    Counts[static_cast<int>(Site)].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  uint64_t count(FaultSite Site) const {
    return Counts[static_cast<int>(Site)].load(std::memory_order_relaxed);
  }

  void resetCounts() {
    for (auto &C : Counts)
      C.store(0, std::memory_order_relaxed);
  }

private:
  void refreshLocked(const char *Env) {
    if (Env == Cached)
      return;
    Cached = Env;
    for (SiteConfig &C : Sites)
      C = SiteConfig();
    for (const std::string &Clause : split(Cached, ',')) {
      if (trim(Clause).empty())
        continue;
      FaultSite Site;
      double Rate;
      uint64_t Seed = 0;
      bool HaveSeed;
      Status S = parseClause(trim(Clause), &Site, &Rate, &Seed, &HaveSeed);
      if (!S.ok()) {
        // Warn once per distinct bad clause; a fault harness must not be
        // a new way to die.
        if (Warned.insert(trim(Clause)).second)
          std::fprintf(stderr, "convgen: ignoring CONVGEN_FAULT clause: %s\n",
                       S.message().c_str());
        continue;
      }
      SiteConfig &C = Sites[static_cast<int>(Site)];
      C.Active = true;
      C.Rate = Rate;
      C.Rng.seed(HaveSeed ? Seed
                          : 0x5eedfa0175ull + static_cast<uint64_t>(Site));
    }
  }

  std::mutex Mu;
  std::string Cached;
  SiteConfig Sites[kNumFaultSites];
  std::atomic<uint64_t> Counts[kNumFaultSites] = {};
  std::set<std::string> Warned;
};

} // namespace

bool support::faultsConfigured() {
  const char *Env = std::getenv("CONVGEN_FAULT");
  return Env && *Env;
}

bool support::faultInjected(FaultSite Site) {
  return Injector::instance().injected(Site);
}

uint64_t support::faultInjectionCount(FaultSite Site) {
  return Injector::instance().count(Site);
}

uint64_t support::faultInjectionTotal() {
  uint64_t Total = 0;
  for (int S = 0; S < kNumFaultSites; ++S)
    Total += faultInjectionCount(static_cast<FaultSite>(S));
  return Total;
}

void support::resetFaultCounters() { Injector::instance().resetCounts(); }

Status support::parseFaultSpec(const std::string &Spec) {
  if (trim(Spec).empty())
    return Status::error(ErrorCode::InvalidArgument, "empty fault spec");
  for (const std::string &Clause : split(Spec, ',')) {
    FaultSite Site;
    double Rate;
    uint64_t Seed;
    bool HaveSeed;
    Status S = parseClause(trim(Clause), &Site, &Rate, &Seed, &HaveSeed);
    if (!S.ok())
      return S;
  }
  return Status();
}
