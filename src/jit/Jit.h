//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native execution of generated conversion routines: the emitted C99 is
/// compiled with the system compiler into a shared object and loaded with
/// dlopen — the same execution model taco uses for its generated kernels
/// (paper §7.1). The benchmarks run conversions through this backend; the
/// test suite checks it agrees bit-for-bit with the reference interpreter.
///
/// Fault tolerance: environment failures (a missing or broken compiler, a
/// failed dlopen/dlsym, an unwritable scratch directory) never abort.
/// Construction retries transient failures with bounded backoff and then
/// degrades the handle — run()/tryRun()/runRaw() keep working by executing
/// the same generated routine through the reference interpreter, bit-exact
/// with the native path. Every degradation is counted in the process-wide
/// support::DegradationLog; degraded() exposes the state per handle.
/// Request errors (wrong source format, unsorted input, unsupported dims)
/// are returned from tryRun as a Status and never fall back — the
/// interpreter would fail identically.
///
/// The external compiler is invoked with fork/exec (never a shell), so
/// paths and flags with shell metacharacters are safe; scratch directories
/// honor TMPDIR and are removed on every exit path. A watchdog bounds the
/// wait on the compiler child: a child exceeding
/// min(CONVGEN_COMPILE_TIMEOUT_MS, request-deadline remaining) is
/// SIGKILLed and reaped, and the handle degrades immediately — a hung
/// compiler can stall one request thread for at most the bound, never
/// forever.
///
/// Ownership contract at the JIT boundary (no marshalling copies):
///
///  * Inputs are bound by pointer. marshalInput points the cvg_tensor_t's
///    arrays directly at the SparseTensor's storage; the generated routine
///    treats them as const (the emitter binds them `const ... *restrict`)
///    and the tensor must outlive the call. Nothing is copied in.
///  * Outputs are adopted, not copied. The generated routine mallocs every
///    yielded pos/crd/perm/vals array and publishes the pointers + lengths
///    in the output struct; collectOutput moves those malloc'd buffers
///    into the result SparseTensor's OwnedArray storage, which frees them
///    with std::free when the tensor dies. After collectOutput (or
///    freeOutput) the CTensor's pointers are null; calling both, or either
///    twice, is safe but yields nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_JIT_JIT_H
#define CONVGEN_JIT_JIT_H

#include "codegen/Generator.h"
#include "ir/CEmitter.h"
#include "support/Deadline.h"
#include "support/Status.h"
#include "tensor/SparseTensor.h"

#include <cstdint>
#include <memory>
#include <string>

namespace convgen {
namespace jit {

/// Bit-compatible with the cvg_tensor_t struct the C emitter declares.
struct CTensor {
  int64_t dims[ir::kMaxLevels + 1] = {};
  int64_t params[ir::kMaxLevels + 1] = {};
  int32_t *pos[ir::kMaxLevels + 1] = {};
  int64_t pos_len[ir::kMaxLevels + 1] = {};
  int32_t *crd[ir::kMaxLevels + 1] = {};
  int64_t crd_len[ir::kMaxLevels + 1] = {};
  int32_t *perm[ir::kMaxLevels + 1] = {};
  int64_t perm_len[ir::kMaxLevels + 1] = {};
  double *vals = nullptr;
  int64_t vals_len = 0;
};

/// Phase slots of the `<fn>_phase_seconds` array generated routines
/// export: analysis (attribute queries + remap materialization), edge
/// insertion / initialization, coordinate insertion (including blocked
/// cursor counting), and finalize/yield. Slots 4-7 are the sorted-ranking
/// sub-phases carved out of edge insertion — tuple collect, sort + unique
/// list construction, pos build, crd/perm write — and stay zero in
/// routines without sorted levels (whose slot 1 then covers the whole
/// phase, as before).
constexpr int kNumPhases = 8;

/// True if a working C compiler is available. Probed once per distinct
/// CONVGEN_CC value (so tests can point CONVGEN_CC at a nonexistent binary
/// and observe the no-compiler degradation in-process).
bool jitAvailable();

/// True if the external C compiler accepts -fopenmp (probed once per
/// distinct CONVGEN_CC / CONVGEN_NO_OPENMP setting), so the
/// parallel-annotated loops of generated routines actually run
/// multi-threaded. Set CONVGEN_NO_OPENMP=1 to force serial compilation;
/// the emitted pragmas are then ignored and the code stays valid C.
bool jitOpenMPAvailable();

/// The complete flag string JitConversion hands the compiler for the given
/// extra flags (exposed so the plan cache can key shared objects on it).
std::string jitEffectiveFlags(const std::string &ExtraFlags);

/// Options-aware variant: additionally bakes any planner-forced strategy
/// fields of \p Opts in as benign -D defines, so a planner-forced object
/// can never alias the default-strategy object on disk or in memory even
/// when the environment knobs agree. Identical to the env-only overload
/// when nothing is forced.
std::string jitEffectiveFlags(const std::string &ExtraFlags,
                              const codegen::Options &Opts);

/// The hung-compiler watchdog bound in milliseconds
/// (CONVGEN_COMPILE_TIMEOUT_MS, default 120000; 0 or negative disables the
/// watchdog). A compiler child exceeding it is SIGKILLed and reaped, the
/// attempt fails with DeadlineExceeded (no retry — a hung compiler will
/// hang again), and the handle degrades to the interpreter.
int64_t compileTimeoutMillis();

/// A conversion routine compiled to native code.
class JitConversion {
public:
  /// Emits C for \p Conv, compiles it (default flags -O3, plus -fopenmp
  /// when available), and loads it. Never aborts on environment failures:
  /// a failed compile or load is retried with bounded backoff
  /// (CONVGEN_JIT_ATTEMPTS, default 3) and the handle then degrades to
  /// interpreter-backed execution (degraded() == true, every run still
  /// bit-exact). When \p CachedSoPath is nonempty, a checksum-verified
  /// object there is loaded directly (skipping the external compiler
  /// entirely, compileSeconds() == 0); otherwise the freshly compiled
  /// object is installed there atomically for future processes.
  ///
  /// \p RequestDeadline (optional) bounds each external compile wait by
  /// min(CONVGEN_COMPILE_TIMEOUT_MS, time remaining) and skips further
  /// retry attempts once expired. A handle degraded because the *request*
  /// deadline was the binding bound reports degradedByRequestDeadline();
  /// PlanCache declines to cache such handles, since a more patient caller
  /// could still compile successfully.
  explicit JitConversion(const codegen::Conversion &Conv,
                         const std::string &ExtraFlags = "",
                         const std::string &CachedSoPath = "",
                         support::Deadline RequestDeadline = {});
  ~JitConversion();

  /// Cache-only acquisition for warm-start preload: loads the
  /// checksum-verified object at \p CachedSoPath and returns a live native
  /// handle, or nullptr when no verified object can be loaded there. Never
  /// invokes the external compiler and never returns a degraded handle —
  /// preload must be free to fail per entry without burning a compile or
  /// poisoning the in-memory cache with interpreter-backed handles. An
  /// object that verifies but refuses to dlopen is evicted from the disk
  /// cache exactly as on the regular path.
  static std::shared_ptr<JitConversion>
  loadCachedOnly(const codegen::Conversion &Conv,
                 const std::string &CachedSoPath);

  /// True when the shared object came from the on-disk cache.
  bool loadedFromCache() const { return FromCache; }

  /// True when the native object could not be built or loaded and runs
  /// execute through the reference interpreter instead.
  bool degraded() const { return Degraded; }

  /// True when the handle degraded only because the caller's request
  /// deadline expired (as opposed to the environment-wide
  /// CONVGEN_COMPILE_TIMEOUT_MS watchdog or a failed compile/load, which
  /// would fail for every caller).
  bool degradedByRequestDeadline() const { return DeadlineBound; }

  /// The diagnostic of the failure that degraded this handle (empty when
  /// native).
  const std::string &degradationReason() const { return DegradedWhy; }

  JitConversion(const JitConversion &) = delete;
  JitConversion &operator=(const JitConversion &) = delete;

  /// Converts via the native routine (marshals in/out of SparseTensor).
  /// Aborts on request errors; tryRun is the checked form.
  tensor::SparseTensor run(const tensor::SparseTensor &In) const;

  /// Checked conversion: request errors (a tensor in the wrong format, an
  /// unsorted source where the plan requires order, dimensions this object
  /// was not compiled for) come back as a Status instead of aborting.
  /// Environment trouble never surfaces here — a degraded handle serves
  /// through the interpreter, bit-exact.
  StatusOr<tensor::SparseTensor> tryRun(const tensor::SparseTensor &In) const;

  /// Raw invocation for benchmarking: \p A must be marshalled with
  /// marshalInput; \p B receives malloc'd arrays that the caller releases
  /// with freeOutput (or adopts via collectOutput). On a degraded handle
  /// the interpreter serves the call and \p B receives malloc'd copies of
  /// its yields — the same ownership contract either way.
  void runRaw(const CTensor *A, CTensor *B) const;

  /// Wall-clock seconds spent in the external compiler (cumulative across
  /// retry attempts).
  double compileSeconds() const { return CompileSecs; }

  /// Cumulative per-phase wall-clock seconds the routine recorded across
  /// all runs (kNumPhases slots), or nullptr if the loaded object predates
  /// phase timing. Benchmarks snapshot before/after a timing loop and
  /// divide the delta by the rep count. The clock is thread-local inside
  /// the routine, and this pointer was resolved on the loading thread —
  /// read it from the same thread that runs the conversions.
  const double *phaseSeconds() const { return PhaseSecs; }

  const codegen::Conversion &conversion() const { return Conv; }

private:
  /// Bare handle for loadCachedOnly: no initialize(), no degradation — the
  /// factory fills in Handle/Fn itself or discards the object.
  JitConversion(const codegen::Conversion &Conversion, std::nullptr_t)
      : Conv(Conversion) {}

  /// Cached-load then compile-with-retry; a non-OK result degrades the
  /// handle instead of propagating.
  Status initialize(const std::string &ExtraFlags,
                    const std::string &CachedSoPath,
                    const support::Deadline &RequestDeadline);
  /// One compile + install + load attempt in a fresh scratch directory
  /// (removed on every failure path). The compiler wait is bounded by
  /// min(CONVGEN_COMPILE_TIMEOUT_MS, deadline remaining) when either is
  /// finite; a child exceeding the bound is SIGKILLed and reaped.
  Status compileAndLoadOnce(const std::string &ExtraFlags,
                            const std::string &CachedSoPath,
                            const support::Deadline &RequestDeadline);
  /// The interpreter path a degraded handle serves runs through.
  tensor::SparseTensor interpretRun(const tensor::SparseTensor &In) const;

  codegen::Conversion Conv;
  void *Handle = nullptr;
  void (*Fn)(const CTensor *, CTensor *) = nullptr;
  double *PhaseSecs = nullptr;
  std::string WorkDir;
  double CompileSecs = 0;
  bool FromCache = false;
  bool Degraded = false;
  bool DeadlineBound = false;
  std::string DegradedWhy;
};

/// Points \p Out's arrays at \p In's storage (no copies; \p In must outlive
/// every runRaw call made with \p Out).
void marshalInput(const tensor::SparseTensor &In, CTensor *Out);

/// Moves the malloc'd arrays of \p B into a SparseTensor without copying
/// (OwnedArray adoption) and nulls \p B's pointers.
tensor::SparseTensor collectOutput(const formats::Format &Target,
                                   const std::vector<int64_t> &Dims,
                                   CTensor *B);

/// Releases the malloc'd arrays of \p B (benchmark loops).
void freeOutput(CTensor *B);

} // namespace jit
} // namespace convgen

#endif // CONVGEN_JIT_JIT_H
