//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "ir/Interpreter.h"
#include "support/Assert.h"
#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dlfcn.h>
#include <fcntl.h>
#include <map>
#include <mutex>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#include <vector>

namespace {

/// The scratch root for compile working directories: TMPDIR when set (the
/// historical hardcoded /tmp broke sandboxes and shared hosts), /tmp
/// otherwise.
std::string scratchRoot() {
  const char *Env = std::getenv("TMPDIR");
  if (Env && *Env) {
    std::string Root = Env;
    while (Root.size() > 1 && Root.back() == '/')
      Root.pop_back();
    return Root;
  }
  return "/tmp";
}

/// mkdtemp under scratchRoot(); empty string on failure (never aborts —
/// the caller degrades).
std::string makeScratchDir(const char *Tag) {
  std::string Template = scratchRoot() + "/convgen-" + Tag + "-XXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  if (!mkdtemp(Buf.data()))
    return "";
  return std::string(Buf.data());
}

/// Removes every file a compile attempt can leave in \p Dir, then the
/// directory itself. Used on all exit paths — success, failure, and the
/// destructor — so no scratch tree outlives its JitConversion.
void removeScratchTree(const std::string &Dir) {
  if (Dir.empty())
    return;
  static const char *const Files[] = {"conv.c", "conv.so", "cc.log",
                                      "probe.c", "probe.so"};
  for (const char *F : Files)
    std::remove((Dir + "/" + F).c_str());
  rmdir(Dir.c_str());
}

/// Whitespace-splits a command or flag string into argv tokens (the
/// compiler spec "ccache cc" is two tokens; quoting inside flags is not
/// supported and has never been needed).
std::vector<std::string> splitTokens(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ' ' || C == '\t' || C == '\n') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

/// Watchdog wait: reaps \p Pid, SIGKILLing it first if it is still running
/// after \p TimeoutMs (<= 0 waits unboundedly — the historical behavior).
/// The bounded path polls waitpid(WNOHANG) with an escalating nanosleep
/// (1ms doubling to a 20ms cap) so a fast compile pays ~1ms of latency and
/// a hung one is detected within ~20ms of the bound. Always reaps — no
/// zombie survives, even on the kill path. Sets \p TimedOut (when
/// non-null) and returns -1 if the child had to be killed.
int waitBounded(pid_t Pid, int64_t TimeoutMs, bool *TimedOut) {
  if (TimedOut)
    *TimedOut = false;
  int Wait = 0;
  if (TimeoutMs <= 0) {
    while (waitpid(Pid, &Wait, 0) < 0)
      if (errno != EINTR)
        return -1;
    return WIFEXITED(Wait) ? WEXITSTATUS(Wait) : -1;
  }
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  long SleepNs = 1000000; // 1ms
  for (;;) {
    pid_t Got = waitpid(Pid, &Wait, WNOHANG);
    if (Got == Pid)
      return WIFEXITED(Wait) ? WEXITSTATUS(Wait) : -1;
    if (Got < 0 && errno != EINTR)
      return -1;
    if (std::chrono::steady_clock::now() >= Deadline)
      break;
    struct timespec Ts = {0, SleepNs};
    nanosleep(&Ts, nullptr);
    if (SleepNs < 20000000) // escalate to a 20ms cap
      SleepNs *= 2;
  }
  // Timed out: kill and reap. SIGKILL cannot be caught, so the blocking
  // reap below terminates promptly.
  kill(Pid, SIGKILL);
  while (waitpid(Pid, &Wait, 0) < 0)
    if (errno != EINTR)
      break;
  if (TimedOut)
    *TimedOut = true;
  return -1;
}

/// fork/exec of \p Args with stdout+stderr redirected to \p LogPath
/// ("/dev/null" when empty). No shell is involved, so cache directories,
/// TMPDIR values, and flag strings with metacharacters cannot be
/// reinterpreted as shell syntax. Returns the child's exit code, or -1
/// when the child could not be spawned (including exec failure, reported
/// as 127 by convention) or exceeded \p TimeoutMs and was killed (see
/// waitBounded).
int runCommand(const std::vector<std::string> &Args,
               const std::string &LogPath, int64_t TimeoutMs = 0,
               bool *TimedOut = nullptr) {
  if (TimedOut)
    *TimedOut = false;
  if (Args.empty())
    return -1;
  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  pid_t Pid = fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    const char *Log = LogPath.empty() ? "/dev/null" : LogPath.c_str();
    int Fd = open(Log, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      dup2(Fd, STDOUT_FILENO);
      dup2(Fd, STDERR_FILENO);
      if (Fd > STDERR_FILENO)
        close(Fd);
    }
    execvp(Argv[0], Argv.data());
    _exit(127);
  }
  return waitBounded(Pid, TimeoutMs, TimedOut);
}

/// The compile-hang injection: forks a child that blocks forever (the
/// moral equivalent of a wedged compiler), then runs the *real* watchdog
/// against it. Only the fork differs from a genuine hang — detection,
/// SIGKILL, and reaping all exercise the production path.
int runHangingChild(int64_t TimeoutMs, bool *TimedOut) {
  pid_t Pid = fork();
  if (Pid < 0) {
    if (TimedOut)
      *TimedOut = false;
    return -1;
  }
  if (Pid == 0) {
    // Child of a possibly multithreaded parent: async-signal-safe calls
    // only. pause() in a loop sleeps until SIGKILL arrives.
    for (;;)
      pause();
  }
  return waitBounded(Pid, TimeoutMs, TimedOut);
}

/// First ~4K of a file, for surfacing compiler diagnostics in a Status.
std::string readDiagnostics(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "r");
  if (!File)
    return "";
  char Buf[4096];
  size_t Got = std::fread(Buf, 1, sizeof(Buf) - 1, File);
  Buf[Got] = '\0';
  std::fclose(File);
  return Buf;
}

} // namespace

using namespace convgen;
using namespace convgen::jit;
using formats::LevelKind;
using support::Degradation;
using support::DegradationLog;
using support::FaultSite;

/// The compiler spec, re-read per use so tests can rebind CONVGEN_CC
/// in-process (availability probes below are memoized per value).
static std::string compilerSpec() {
  const char *Env = std::getenv("CONVGEN_CC");
  if (Env && *Env)
    return Env;
  return "cc";
}

int64_t jit::compileTimeoutMillis() {
  if (const char *Env = std::getenv("CONVGEN_COMPILE_TIMEOUT_MS")) {
    char *End = nullptr;
    long long Ms = std::strtoll(Env, &End, 10);
    if (End != Env && *End == '\0')
      return Ms <= 0 ? 0 : Ms; // 0 disables the watchdog
  }
  return 120000; // 2 minutes: far beyond any honest compile of emitted C
}

bool jit::jitAvailable() {
  static std::mutex Mu;
  static std::map<std::string, bool> Cache;
  std::string Cc = compilerSpec();
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Cache.find(Cc);
  if (It != Cache.end())
    return It->second;
  std::vector<std::string> Args = splitTokens(Cc);
  Args.push_back("--version");
  bool Ok = runCommand(Args, "", compileTimeoutMillis()) == 0;
  Cache[Cc] = Ok;
  return Ok;
}

bool jit::jitOpenMPAvailable() {
#ifndef CONVGEN_HAVE_OPENMP
  // The library was configured with CONVGEN_ENABLE_OPENMP=OFF (or OpenMP
  // was not found at build time): keep generated routines serial too.
  return false;
#else
  const char *Disable = std::getenv("CONVGEN_NO_OPENMP");
  if (Disable && *Disable && std::string(Disable) != "0")
    return false;
  static std::mutex Mu;
  static std::map<std::string, bool> Cache;
  std::string Cc = compilerSpec();
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Cache.find(Cc);
  if (It != Cache.end())
    return It->second;
  // Probe with the most demanding construct generated code uses: an
  // array-section reduction (OpenMP 4.5). A compiler that accepts plain
  // -fopenmp but not this (e.g. old gcc) must be treated as
  // OpenMP-unavailable or every parallel conversion would fail to build.
  bool Ok = false;
  std::string Dir = makeScratchDir("omp");
  if (!Dir.empty()) {
    std::string Probe = Dir + "/probe.c";
    std::string Out = Dir + "/probe.so";
    if (std::FILE *File = std::fopen(Probe.c_str(), "w")) {
      std::fputs("void convgen_probe(int *hist, long n, long m) {\n"
                 "#pragma omp parallel for reduction(+:hist[0:n])\n"
                 "  for (long i = 0; i < m; i++) hist[i % n] += 1;\n"
                 "}\n",
                 File);
      std::fclose(File);
      std::vector<std::string> Args = splitTokens(Cc);
      for (const char *F : {"-fopenmp", "-shared", "-fPIC", "-o"})
        Args.push_back(F);
      Args.push_back(Out);
      Args.push_back(Probe);
      Ok = runCommand(Args, "", compileTimeoutMillis()) == 0;
    }
    removeScratchTree(Dir);
  }
  Cache[Cc] = Ok;
  return Ok;
#endif
}

std::string jit::jitEffectiveFlags(const std::string &ExtraFlags) {
  std::string Flags = "-O3 -march=native -std=c11 -shared -fPIC";
  if (jitOpenMPAvailable())
    Flags += " -fopenmp";
  // CONVGEN_JIT_FLAGS appends to every JIT compile: the sanitizer CI leg
  // uses it to build generated code with ASan/UBSan so the whole
  // host-binary + dlopen'd-routine boundary runs instrumented. The env
  // value flows through this function into the disk-cache key, so
  // differently-flagged objects never alias.
  if (const char *Env = std::getenv("CONVGEN_JIT_FLAGS")) {
    if (*Env) {
      Flags += " ";
      Flags += Env;
    }
  }
  // The ranking-strategy knobs change the generated C (hashed presence,
  // shared-sort structure). The plan key already re-derives their strategy
  // bits per lookup, but the effective flag string is the other half of
  // every cache key (in-memory JIT map and on-disk object names), so bake
  // the knobs in as benign -D defines: a knob flip can never dlopen a
  // stale shared object, even for exotic callers that bypass planKey.
  // Values are normalized through rankStrategyKnob() — an explicit "auto"
  // (or a typo, which reads as auto) must land on the same flag string as
  // unset, or identical code would recompile into a second cached object.
  switch (codegen::rankStrategyKnob()) {
  case codegen::RankStrategy::Auto:
    break;
  case codegen::RankStrategy::Sorted:
    Flags += " -DCONVGEN_RANK_STRATEGY_SORTED=1";
    break;
  case codegen::RankStrategy::Hashed:
    Flags += " -DCONVGEN_RANK_STRATEGY_HASHED=1";
    break;
  }
  if (codegen::knobs().NoSharedSort)
    Flags += " -DCONVGEN_NO_SHARED_SORT=1";
  switch (codegen::sortStrategyKnob()) {
  case codegen::SortStrategy::Auto:
    break;
  case codegen::SortStrategy::Merge:
    Flags += " -DCONVGEN_SORT_STRATEGY_MERGE=1";
    break;
  case codegen::SortStrategy::Radix:
    Flags += " -DCONVGEN_SORT_STRATEGY_RADIX=1";
    break;
  }
  if (!ExtraFlags.empty())
    Flags += " " + ExtraFlags;
  return Flags;
}

std::string jit::jitEffectiveFlags(const std::string &ExtraFlags,
                                   const codegen::Options &Opts) {
  std::string Flags = jitEffectiveFlags(ExtraFlags);
  // Planner-forced strategies change the generated C exactly like their
  // env-knob counterparts; baking them in as defines keeps the flag string
  // the other half of every cache key honest (see the knob defines above).
  switch (Opts.ForceRank) {
  case codegen::RankStrategy::Auto:
    break;
  case codegen::RankStrategy::Sorted:
    Flags += " -DCONVGEN_PLANNER_FORCE_RANK_SORTED=1";
    break;
  case codegen::RankStrategy::Hashed:
    Flags += " -DCONVGEN_PLANNER_FORCE_RANK_HASHED=1";
    break;
  }
  switch (Opts.ForceSort) {
  case codegen::SortStrategy::Auto:
    break;
  case codegen::SortStrategy::Merge:
    Flags += " -DCONVGEN_PLANNER_FORCE_SORT_MERGE=1";
    break;
  case codegen::SortStrategy::Radix:
    Flags += " -DCONVGEN_PLANNER_FORCE_SORT_RADIX=1";
    break;
  }
  if (Opts.ForceNoSharedSort)
    Flags += " -DCONVGEN_PLANNER_NO_SHARED_SORT=1";
  if (Opts.ForceSortedRanking)
    Flags += " -DCONVGEN_PLANNER_FORCE_SORTED_RANKING=1";
  return Flags;
}

/// Loads the conversion entry point out of an already compiled object.
/// Returns false (with \p Error set) instead of aborting, so callers can
/// treat a stale or corrupt cached object as a miss. Honors the dlopen and
/// dlsym fault-injection sites.
static bool loadConversion(const std::string &SoPath,
                           const std::string &FnName, void **Handle,
                           void (**Fn)(const CTensor *, CTensor *),
                           std::string *Error) {
  if (support::faultInjected(FaultSite::Dlopen)) {
    *Error = "jit: dlopen failed (injected fault): " + SoPath;
    return false;
  }
  *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!*Handle) {
    *Error = "jit: dlopen failed: " + std::string(dlerror());
    return false;
  }
  if (support::faultInjected(FaultSite::Dlsym))
    *Fn = nullptr;
  else
    *Fn = reinterpret_cast<void (*)(const CTensor *, CTensor *)>(
        dlsym(*Handle, FnName.c_str()));
  if (!*Fn) {
    *Error = "jit: dlsym cannot find " + FnName;
    dlclose(*Handle);
    *Handle = nullptr;
    return false;
  }
  return true;
}

/// Resolves the per-phase timing array a freshly emitted routine exports;
/// returns null for objects that predate phase timing (stale disk cache).
static double *loadPhaseSeconds(void *Handle, const std::string &FnName) {
  using Accessor = double *(*)(void);
  Accessor Get = reinterpret_cast<Accessor>(
      dlsym(Handle, (FnName + "_phase_seconds").c_str()));
  return Get ? Get() : nullptr;
}

/// Transient-failure retry budget (CONVGEN_JIT_ATTEMPTS, default 3,
/// clamped to [1, 10]).
static int jitCompileAttempts() {
  if (const char *Env = std::getenv("CONVGEN_JIT_ATTEMPTS")) {
    char *End = nullptr;
    long N = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0')
      return N < 1 ? 1 : (N > 10 ? 10 : static_cast<int>(N));
  }
  return 3;
}

/// Bounded exponential backoff before retry attempt \p Attempt (1-based):
/// 2ms, 4ms, 8ms, ... capped at 100ms.
static void backoffSleep(int Attempt) {
  long Ms = 2L << (Attempt - 1);
  if (Ms > 100)
    Ms = 100;
  struct timespec Ts = {0, Ms * 1000000L};
  nanosleep(&Ts, nullptr);
}

JitConversion::JitConversion(const codegen::Conversion &Conversion,
                             const std::string &ExtraFlags,
                             const std::string &CachedSoPath,
                             support::Deadline RequestDeadline)
    : Conv(Conversion) {
  Status S = initialize(ExtraFlags, CachedSoPath, RequestDeadline);
  if (S.ok())
    return;
  // Environment failure after retries: degrade to interpreter-backed
  // execution instead of dying. Every subsequent run is still bit-exact
  // with the native path; the DegradationLog records the event for the
  // serving layer's metrics.
  Degraded = true;
  DegradedWhy = S.message();
  DegradationLog::instance().record(
      Degradation::InterpreterFallback,
      strfmt("%s -> %s: %s", Conv.Source.Name.c_str(),
             Conv.Target.Name.c_str(), S.message().c_str()));
}

std::shared_ptr<JitConversion>
JitConversion::loadCachedOnly(const codegen::Conversion &Conversion,
                              const std::string &CachedSoPath) {
  if (CachedSoPath.empty() ||
      !convert::readVerifiedCachedObject(CachedSoPath))
    return nullptr;
  // Same load-or-evict policy as the constructor's cached branch, minus
  // the compile fallback: a verified object that refuses to dlopen/dlsym
  // is evicted so the entry's first real request recompiles cleanly.
  std::shared_ptr<JitConversion> J(new JitConversion(Conversion, nullptr));
  std::string Error;
  if (!loadConversion(CachedSoPath, J->Conv.Func.Name, &J->Handle, &J->Fn,
                      &Error)) {
    DegradationLog::instance().record(Degradation::JitLoadFailure, Error);
    convert::evictCachedObject(CachedSoPath, Error);
    return nullptr;
  }
  J->FromCache = true;
  J->PhaseSecs = loadPhaseSeconds(J->Handle, J->Conv.Func.Name);
  return J;
}

Status JitConversion::initialize(const std::string &ExtraFlags,
                                 const std::string &CachedSoPath,
                                 const support::Deadline &RequestDeadline) {
  // Cache hit: load the previously compiled, checksum-verified object —
  // no external compiler. A verified object that still refuses to load
  // (foreign-ISA leftover, injected dlopen fault) is evicted so future
  // processes recompile instead of inheriting the poison.
  if (!CachedSoPath.empty() &&
      convert::readVerifiedCachedObject(CachedSoPath)) {
    std::string Error;
    if (loadConversion(CachedSoPath, Conv.Func.Name, &Handle, &Fn, &Error)) {
      FromCache = true;
      PhaseSecs = loadPhaseSeconds(Handle, Conv.Func.Name);
      return Status();
    }
    DegradationLog::instance().record(Degradation::JitLoadFailure, Error);
    convert::evictCachedObject(CachedSoPath, Error);
  }
  if (!jitAvailable())
    return Status::error(ErrorCode::Unavailable,
                         "jit: no working C compiler ('" + compilerSpec() +
                             "'); set CONVGEN_CC");
  int Attempts = jitCompileAttempts();
  Status Last;
  for (int A = 1; A <= Attempts; ++A) {
    if (A > 1) {
      DegradationLog::instance().record(Degradation::JitRetry,
                                        Last.message());
      backoffSleep(A - 1);
    }
    if (RequestDeadline.expired()) {
      // Out of time before this attempt even starts: degrade now. Flagged
      // as deadline-bound so the cache does not pin the degraded handle on
      // callers with more patience.
      DeadlineBound = true;
      DegradationLog::instance().record(
          Degradation::DeadlineExceeded,
          strfmt("%s -> %s: request deadline expired before compile "
                 "attempt %d",
                 Conv.Source.Name.c_str(), Conv.Target.Name.c_str(), A));
      return Status::error(ErrorCode::DeadlineExceeded,
                           "jit: request deadline expired before the "
                           "compile could " +
                               std::string(A > 1 ? "be retried" : "start"));
    }
    Last = compileAndLoadOnce(ExtraFlags, CachedSoPath, RequestDeadline);
    // DeadlineExceeded is deliberately not an environment error: a timed
    // out compile is not retried (each retry would pay the full bound
    // again), so the loop exits here and the handle degrades immediately.
    if (Last.ok() || !Last.isEnvironmentError())
      return Last;
  }
  return Last;
}

Status JitConversion::compileAndLoadOnce(
    const std::string &ExtraFlags, const std::string &CachedSoPath,
    const support::Deadline &RequestDeadline) {
  std::string Dir = makeScratchDir("jit");
  if (Dir.empty())
    return Status::error(ErrorCode::Unavailable,
                         "jit: cannot create a scratch directory under " +
                             scratchRoot() + " (set TMPDIR to a writable "
                                             "location)");
  std::string CPath = Dir + "/conv.c";
  std::string SoPath = Dir + "/conv.so";
  std::string LogPath = Dir + "/cc.log";

  {
    std::FILE *File = std::fopen(CPath.c_str(), "w");
    if (!File) {
      removeScratchTree(Dir);
      return Status::error(ErrorCode::Unavailable,
                           "jit: cannot write the generated source in " +
                               Dir);
    }
    std::string Source = Conv.cSource();
    bool Ok = std::fwrite(Source.data(), 1, Source.size(), File) ==
              Source.size();
    if (std::fclose(File) != 0)
      Ok = false;
    if (!Ok) {
      removeScratchTree(Dir);
      return Status::error(ErrorCode::Unavailable,
                           "jit: cannot write the generated source (disk "
                           "full?) in " +
                               Dir);
    }
  }

  std::vector<std::string> Args = splitTokens(compilerSpec());
  for (const std::string &F :
       splitTokens(jitEffectiveFlags(ExtraFlags, Conv.Opts)))
    Args.push_back(F);
  Args.push_back("-o");
  Args.push_back(SoPath);
  Args.push_back(CPath);

  // The watchdog bound on this attempt: the lesser of the environment-wide
  // CONVGEN_COMPILE_TIMEOUT_MS knob and the caller's remaining deadline
  // budget. Which one binds decides the post-timeout policy — a
  // knob-bound kill means a wedged compiler every caller would hit (the
  // degraded handle is cacheable), a deadline-bound kill is one impatient
  // caller's problem (the handle must not poison the shared cache).
  int64_t KnobMs = compileTimeoutMillis();
  int64_t LeftMs = RequestDeadline.remainingMillis();
  bool DeadlineBinds =
      !RequestDeadline.infinite() && (KnobMs <= 0 || LeftMs < KnobMs);
  int64_t BoundMs = DeadlineBinds ? (LeftMs > 0 ? LeftMs : 1) : KnobMs;

  int Rc;
  bool TimedOut = false;
  if (support::faultInjected(FaultSite::Compile)) {
    // Injected fault fires before the spawn so 100%-rate harness runs do
    // not pay one real compile per attempt.
    Rc = 1;
  } else if (BoundMs > 0 &&
             support::faultInjected(FaultSite::CompileHang)) {
    // Injected hang: a child that blocks forever stands in for the wedged
    // compiler, and the genuine watchdog kills and reaps it. Drawn only
    // under a finite bound — with the watchdog disabled the injection
    // would hang the harness itself.
    auto Begin = std::chrono::steady_clock::now();
    Rc = runHangingChild(BoundMs, &TimedOut);
    CompileSecs += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count();
  } else {
    auto Begin = std::chrono::steady_clock::now();
    Rc = runCommand(Args, LogPath, BoundMs, &TimedOut);
    CompileSecs += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count();
  }
  if (TimedOut) {
    removeScratchTree(Dir);
    std::string What = strfmt(
        "%s -> %s: compiler child exceeded %lldms and was killed",
        Conv.Source.Name.c_str(), Conv.Target.Name.c_str(),
        static_cast<long long>(BoundMs));
    if (DeadlineBinds) {
      DeadlineBound = true;
      DegradationLog::instance().record(Degradation::DeadlineExceeded, What);
    } else {
      DegradationLog::instance().record(Degradation::CompileTimeout, What);
    }
    return Status::error(ErrorCode::DeadlineExceeded, "jit: " + What);
  }
  if (Rc != 0) {
    std::string Log = readDiagnostics(LogPath);
    removeScratchTree(Dir);
    if (Log.empty())
      Log = "(no compiler diagnostics)";
    Status S = Status::error(ErrorCode::Unavailable,
                             "jit: compilation failed:\n" + Log);
    DegradationLog::instance().record(Degradation::JitCompileFailure,
                                      S.message());
    return S;
  }

  // Install into the shared on-disk cache (atomic rename + checksum
  // manifest under the entry's flock; see PlanCache.h). Best-effort: a
  // failed install is recorded and this process keeps serving from its
  // locally compiled object.
  if (!CachedSoPath.empty())
    convert::installCachedObject(CachedSoPath, SoPath, CPath);

  std::string Error;
  if (!loadConversion(SoPath, Conv.Func.Name, &Handle, &Fn, &Error)) {
    removeScratchTree(Dir);
    DegradationLog::instance().record(Degradation::JitLoadFailure, Error);
    return Status::error(ErrorCode::Unavailable, Error);
  }
  WorkDir = Dir;
  PhaseSecs = loadPhaseSeconds(Handle, Conv.Func.Name);
  return Status();
}

JitConversion::~JitConversion() {
  // Never dlclose an object whose OpenMP parallel regions may have run:
  // libgomp's pooled worker threads keep references into the region code
  // of the DSO that spawned them, so unloading it while the pool is alive
  // crashes on the next parallel region (reproducible with
  // OMP_NUM_THREADS > 1 and repeated load/run/unload cycles). Keeping the
  // handle resident is the standard JIT-plugin practice; a process holds
  // at most one object per (pair, options, flags) through the PlanCache.
  if (Handle && !jitOpenMPAvailable())
    dlclose(Handle);
  removeScratchTree(WorkDir);
}

void jit::marshalInput(const tensor::SparseTensor &In, CTensor *Out) {
  *Out = CTensor();
  for (size_t D = 0; D < In.Dims.size(); ++D)
    Out->dims[D] = In.Dims[D];
  for (size_t K = 0; K < In.Levels.size(); ++K) {
    const tensor::LevelStorage &L = In.Levels[K];
    size_t Slot = K + 1;
    Out->pos[Slot] = const_cast<int32_t *>(L.Pos.data());
    Out->pos_len[Slot] = static_cast<int64_t>(L.Pos.size());
    Out->crd[Slot] = const_cast<int32_t *>(L.Crd.data());
    Out->crd_len[Slot] = static_cast<int64_t>(L.Crd.size());
    Out->perm[Slot] = const_cast<int32_t *>(L.Perm.data());
    Out->perm_len[Slot] = static_cast<int64_t>(L.Perm.size());
    Out->params[Slot] = L.SizeParam;
  }
  Out->vals = const_cast<double *>(In.Vals.data());
  Out->vals_len = static_cast<int64_t>(In.Vals.size());
}

tensor::SparseTensor jit::collectOutput(const formats::Format &Target,
                                        const std::vector<int64_t> &Dims,
                                        CTensor *B) {
  // Adoption, not copying: the generated routine malloc'd these arrays and
  // yielded them through the ABI struct; ownership moves into the
  // SparseTensor's OwnedArray storage, which frees them with std::free.
  // Slots the target format does not populate are released below.
  tensor::SparseTensor Out;
  Out.Format = Target;
  Out.Dims = Dims;
  Out.Levels.resize(Target.Levels.size());
  for (size_t K = 0; K < Target.Levels.size(); ++K) {
    size_t Slot = K + 1;
    tensor::LevelStorage &L = Out.Levels[K];
    L.Pos.adoptMalloc(B->pos[Slot], static_cast<size_t>(B->pos_len[Slot]));
    L.Crd.adoptMalloc(B->crd[Slot], static_cast<size_t>(B->crd_len[Slot]));
    L.Perm.adoptMalloc(B->perm[Slot], static_cast<size_t>(B->perm_len[Slot]));
    B->pos[Slot] = B->crd[Slot] = B->perm[Slot] = nullptr;
    if (Target.levelHasSizeParam(static_cast<int>(K)))
      L.SizeParam = B->params[Slot];
  }
  Out.Vals.adoptMalloc(B->vals, static_cast<size_t>(B->vals_len));
  B->vals = nullptr;
  freeOutput(B);
  return Out;
}

void jit::freeOutput(CTensor *B) {
  for (size_t Slot = 0; Slot <= ir::kMaxLevels; ++Slot) {
    std::free(B->pos[Slot]);
    std::free(B->crd[Slot]);
    std::free(B->perm[Slot]);
    B->pos[Slot] = B->crd[Slot] = B->perm[Slot] = nullptr;
  }
  std::free(B->vals);
  B->vals = nullptr;
}

/// Rebuilds a SparseTensor view of a marshalled input (the degraded runRaw
/// path has only the ABI struct to work from). Array contents are copied
/// into owned storage; \p A is not modified.
static tensor::SparseTensor unmarshalInput(const formats::Format &Source,
                                           const CTensor &A) {
  tensor::SparseTensor In;
  In.Format = Source;
  In.Dims.assign(A.dims, A.dims + Source.SrcOrder);
  In.Levels.resize(Source.Levels.size());
  for (size_t K = 0; K < Source.Levels.size(); ++K) {
    size_t Slot = K + 1;
    tensor::LevelStorage &L = In.Levels[K];
    L.Pos.assign(A.pos[Slot], A.pos[Slot] + A.pos_len[Slot]);
    L.Crd.assign(A.crd[Slot], A.crd[Slot] + A.crd_len[Slot]);
    L.Perm.assign(A.perm[Slot], A.perm[Slot] + A.perm_len[Slot]);
    L.SizeParam = A.params[Slot];
  }
  In.Vals.assign(A.vals, A.vals + A.vals_len);
  return In;
}

template <typename T>
static T *mallocCopy(const tensor::OwnedArray<T> &V) {
  T *P = static_cast<T *>(
      std::malloc((V.size() ? V.size() : 1) * sizeof(T)));
  if (P && !V.empty())
    std::memcpy(P, V.data(), V.size() * sizeof(T));
  return P;
}

/// Publishes \p Out through the CTensor ABI as malloc'd copies, matching
/// what a native routine produces (the caller frees with freeOutput or
/// adopts via collectOutput).
static void marshalOutputCopy(const tensor::SparseTensor &Out, CTensor *B) {
  *B = CTensor();
  for (size_t D = 0; D < Out.Dims.size(); ++D)
    B->dims[D] = Out.Dims[D];
  for (size_t K = 0; K < Out.Levels.size(); ++K) {
    const tensor::LevelStorage &L = Out.Levels[K];
    size_t Slot = K + 1;
    B->pos[Slot] = mallocCopy(L.Pos);
    B->pos_len[Slot] = static_cast<int64_t>(L.Pos.size());
    B->crd[Slot] = mallocCopy(L.Crd);
    B->crd_len[Slot] = static_cast<int64_t>(L.Crd.size());
    B->perm[Slot] = mallocCopy(L.Perm);
    B->perm_len[Slot] = static_cast<int64_t>(L.Perm.size());
    B->params[Slot] = L.SizeParam;
  }
  B->vals = mallocCopy(Out.Vals);
  B->vals_len = static_cast<int64_t>(Out.Vals.size());
}

tensor::SparseTensor
JitConversion::interpretRun(const tensor::SparseTensor &In) const {
  ir::Interpreter Interp;
  convert::bindSourceTensor(Interp, In);
  ir::RunResult Result = Interp.run(Conv.Func);
  return convert::collectTargetTensor(Conv.Target, In.Dims, Result);
}

void JitConversion::runRaw(const CTensor *A, CTensor *B) const {
  if (Fn) {
    Fn(A, B);
    return;
  }
  CONVGEN_ASSERT(Degraded, "jit function not loaded");
  // Degraded: the interpreter serves the call. The ownership contract is
  // preserved — B receives malloc'd copies of the interpreter's yields,
  // released by freeOutput or adopted by collectOutput like any native
  // output.
  tensor::SparseTensor In = unmarshalInput(Conv.Source, *A);
  marshalOutputCopy(interpretRun(In), B);
}

StatusOr<tensor::SparseTensor>
JitConversion::tryRun(const tensor::SparseTensor &In) const {
  if (In.Format.Name != Conv.Source.Name)
    return Status::error(
        ErrorCode::InvalidArgument,
        strfmt("jit conversion compiled for source '%s' got a '%s' tensor",
               Conv.Source.Name.c_str(), In.Format.Name.c_str()));
  // Size guard: a natively compiled routine cannot switch strategies per
  // tensor, so reject inputs whose dimensions demand sorted-ranking levels
  // this object was not compiled with — running the dense-ranking code
  // would allocate by the product of the grouping extents (gigabytes for a
  // 2^31-extent mode) instead of O(nnz). Callers route such tensors
  // through a dims-specialized plan (codegen::optionsForDims +
  // PlanCache::jit); the interpreter-backed Converter does so
  // automatically. This is a request error, not an environment error — the
  // interpreter running *this* plan would misbehave identically, so no
  // fallback.
  // Re-plan with this object's own options (planner-forced strategies
  // included) at the tensor's dims — comparing a default-strategy need
  // against a forced-strategy compile would misfire both ways.
  codegen::Options NeedOpts = Conv.Opts;
  NeedOpts.DimsHint = In.Dims;
  codegen::AssemblyPlan Need =
      codegen::planAssembly(Conv.Source, Conv.Target, NeedOpts);
  if (!Need.Unsupported.empty())
    return Status::error(ErrorCode::Unsupported, Need.Unsupported);
  // Compare against the plan recorded at generation time (Conv.Asm), not
  // a re-derivation: re-planning here would read the *current*
  // CONVGEN_RANK_DENSE_MAX_BYTES and silently disagree with the compiled
  // code whenever the budget changed since generation.
  for (size_t K = 0; K < Need.Sorted.size(); ++K)
    if (Need.Sorted[K] &&
        (K >= Conv.Asm.Sorted.size() || !Conv.Asm.Sorted[K]))
      return Status::error(
          ErrorCode::InvalidArgument,
          strfmt("jit: conversion %s -> %s was compiled without the "
                 "sorted-ranking strategy level %zu needs at these "
                 "dimensions (dense ranking structures would exceed the "
                 "CONVGEN_RANK_DENSE_MAX_BYTES budget of %lld); rebuild "
                 "the plan with codegen::optionsForDims(source, target, "
                 "opts, tensor.Dims)",
                 Conv.Source.Name.c_str(), Conv.Target.Name.c_str(), K + 1,
                 static_cast<long long>(codegen::rankDenseMaxBytes())));
  Status Order = convert::checkSourceOrder(Conv, In);
  if (!Order.ok())
    return Order;
  if (Degraded)
    return interpretRun(In);
  if (support::faultInjected(FaultSite::AllocProbe)) {
    // The native path's allocation probe reported exhaustion (injected):
    // serve this run through the interpreter rather than letting the
    // routine's mallocs fail mid-assembly.
    DegradationLog::instance().record(
        Degradation::AllocProbeFailure,
        strfmt("%s -> %s", Conv.Source.Name.c_str(),
               Conv.Target.Name.c_str()));
    return interpretRun(In);
  }
  CTensor A, B;
  marshalInput(In, &A);
  Fn(&A, &B);
  return collectOutput(Conv.Target, In.Dims, &B);
}

tensor::SparseTensor JitConversion::run(const tensor::SparseTensor &In) const {
  StatusOr<tensor::SparseTensor> R = tryRun(In);
  if (!R.ok())
    fatalError(R.status().message().c_str());
  return R.take();
}
