//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dlfcn.h>
#include <unistd.h>

using namespace convgen;
using namespace convgen::jit;
using formats::LevelKind;

static const char *compilerCommand() {
  static const char *Cc = [] {
    const char *Env = std::getenv("CONVGEN_CC");
    if (Env && *Env)
      return Env;
    return "cc";
  }();
  return Cc;
}

bool jit::jitAvailable() {
  static bool Available = [] {
    std::string Cmd =
        std::string(compilerCommand()) + " --version > /dev/null 2>&1";
    return std::system(Cmd.c_str()) == 0;
  }();
  return Available;
}

JitConversion::JitConversion(const codegen::Conversion &Conversion,
                             const std::string &ExtraFlags)
    : Conv(Conversion) {
  char Template[] = "/tmp/convgen-jit-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir)
    fatalError("jit: cannot create a temporary directory");
  WorkDir = Dir;

  std::string CPath = WorkDir + "/conv.c";
  std::string SoPath = WorkDir + "/conv.so";
  std::FILE *File = std::fopen(CPath.c_str(), "w");
  if (!File)
    fatalError("jit: cannot write the generated source");
  std::string Source = Conv.cSource();
  std::fwrite(Source.data(), 1, Source.size(), File);
  std::fclose(File);

  std::string Cmd = strfmt("%s -O3 -march=native -std=c11 -shared -fPIC %s "
                           "-o %s %s 2> %s/cc.log",
                           compilerCommand(), ExtraFlags.c_str(),
                           SoPath.c_str(), CPath.c_str(), WorkDir.c_str());
  auto Begin = std::chrono::steady_clock::now();
  int Rc = std::system(Cmd.c_str());
  CompileSecs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  if (Rc != 0) {
    std::string Log;
    if (std::FILE *LogFile = std::fopen((WorkDir + "/cc.log").c_str(), "r")) {
      char Buf[4096];
      size_t Got = std::fread(Buf, 1, sizeof(Buf) - 1, LogFile);
      Buf[Got] = '\0';
      Log = Buf;
      std::fclose(LogFile);
    }
    fatalError(("jit: compilation failed:\n" + Log).c_str());
  }

  Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle)
    fatalError(("jit: dlopen failed: " + std::string(dlerror())).c_str());
  Fn = reinterpret_cast<void (*)(const CTensor *, CTensor *)>(
      dlsym(Handle, Conv.Func.Name.c_str()));
  if (!Fn)
    fatalError(("jit: dlsym cannot find " + Conv.Func.Name).c_str());
}

JitConversion::~JitConversion() {
  if (Handle)
    dlclose(Handle);
  if (!WorkDir.empty()) {
    std::remove((WorkDir + "/conv.c").c_str());
    std::remove((WorkDir + "/conv.so").c_str());
    std::remove((WorkDir + "/cc.log").c_str());
    rmdir(WorkDir.c_str());
  }
}

void JitConversion::runRaw(const CTensor *A, CTensor *B) const {
  CONVGEN_ASSERT(Fn != nullptr, "jit function not loaded");
  Fn(A, B);
}

void jit::marshalInput(const tensor::SparseTensor &In, CTensor *Out) {
  *Out = CTensor();
  for (size_t D = 0; D < In.Dims.size(); ++D)
    Out->dims[D] = In.Dims[D];
  for (size_t K = 0; K < In.Levels.size(); ++K) {
    const tensor::LevelStorage &L = In.Levels[K];
    size_t Slot = K + 1;
    Out->pos[Slot] = const_cast<int32_t *>(L.Pos.data());
    Out->pos_len[Slot] = static_cast<int64_t>(L.Pos.size());
    Out->crd[Slot] = const_cast<int32_t *>(L.Crd.data());
    Out->crd_len[Slot] = static_cast<int64_t>(L.Crd.size());
    Out->perm[Slot] = const_cast<int32_t *>(L.Perm.data());
    Out->perm_len[Slot] = static_cast<int64_t>(L.Perm.size());
    Out->params[Slot] = L.SizeParam;
  }
  Out->vals = const_cast<double *>(In.Vals.data());
  Out->vals_len = static_cast<int64_t>(In.Vals.size());
}

tensor::SparseTensor jit::collectOutput(const formats::Format &Target,
                                        const std::vector<int64_t> &Dims,
                                        CTensor *B) {
  tensor::SparseTensor Out;
  Out.Format = Target;
  Out.Dims = Dims;
  Out.Levels.resize(Target.Levels.size());
  for (size_t K = 0; K < Target.Levels.size(); ++K) {
    size_t Slot = K + 1;
    tensor::LevelStorage &L = Out.Levels[K];
    if (B->pos[Slot])
      L.Pos.assign(B->pos[Slot], B->pos[Slot] + B->pos_len[Slot]);
    if (B->crd[Slot])
      L.Crd.assign(B->crd[Slot], B->crd[Slot] + B->crd_len[Slot]);
    if (B->perm[Slot])
      L.Perm.assign(B->perm[Slot], B->perm[Slot] + B->perm_len[Slot]);
    if (Target.levelHasSizeParam(static_cast<int>(K)))
      L.SizeParam = B->params[Slot];
  }
  if (B->vals)
    Out.Vals.assign(B->vals, B->vals + B->vals_len);
  freeOutput(B);
  return Out;
}

void jit::freeOutput(CTensor *B) {
  for (size_t Slot = 0; Slot <= ir::kMaxLevels; ++Slot) {
    std::free(B->pos[Slot]);
    std::free(B->crd[Slot]);
    std::free(B->perm[Slot]);
    B->pos[Slot] = B->crd[Slot] = B->perm[Slot] = nullptr;
  }
  std::free(B->vals);
  B->vals = nullptr;
}

tensor::SparseTensor JitConversion::run(const tensor::SparseTensor &In) const {
  CTensor A, B;
  marshalInput(In, &A);
  runRaw(&A, &B);
  return collectOutput(Conv.Target, In.Dims, &B);
}
