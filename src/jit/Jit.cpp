//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "convert/Converter.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dlfcn.h>
#include <unistd.h>

namespace {

/// Byte-for-byte file copy without going through a shell.
bool copyFile(const std::string &From, const std::string &To) {
  std::FILE *In = std::fopen(From.c_str(), "rb");
  if (!In)
    return false;
  std::FILE *Out = std::fopen(To.c_str(), "wb");
  if (!Out) {
    std::fclose(In);
    return false;
  }
  char Buf[1 << 16];
  bool Ok = true;
  for (size_t Got; (Got = std::fread(Buf, 1, sizeof(Buf), In)) > 0;)
    if (std::fwrite(Buf, 1, Got, Out) != Got) {
      Ok = false;
      break;
    }
  Ok = Ok && !std::ferror(In);
  std::fclose(In);
  if (std::fclose(Out) != 0)
    Ok = false;
  return Ok;
}

} // namespace

using namespace convgen;
using namespace convgen::jit;
using formats::LevelKind;

static const char *compilerCommand() {
  static const char *Cc = [] {
    const char *Env = std::getenv("CONVGEN_CC");
    if (Env && *Env)
      return Env;
    return "cc";
  }();
  return Cc;
}

bool jit::jitAvailable() {
  static bool Available = [] {
    std::string Cmd =
        std::string(compilerCommand()) + " --version > /dev/null 2>&1";
    return std::system(Cmd.c_str()) == 0;
  }();
  return Available;
}

bool jit::jitOpenMPAvailable() {
#ifndef CONVGEN_HAVE_OPENMP
  // The library was configured with CONVGEN_ENABLE_OPENMP=OFF (or OpenMP
  // was not found at build time): keep generated routines serial too.
  return false;
#else
  static bool Available = [] {
    const char *Disable = std::getenv("CONVGEN_NO_OPENMP");
    if (Disable && *Disable && std::string(Disable) != "0")
      return false;
    // Probe once with the most demanding construct generated code uses:
    // an array-section reduction (OpenMP 4.5). A compiler that accepts
    // plain -fopenmp but not this (e.g. old gcc) must be treated as
    // OpenMP-unavailable or every parallel conversion would fail to build.
    char Template[] = "/tmp/convgen-omp-XXXXXX";
    char *Dir = mkdtemp(Template);
    if (!Dir)
      return false;
    std::string Probe = std::string(Dir) + "/probe.c";
    std::string Out = std::string(Dir) + "/probe.so";
    if (std::FILE *File = std::fopen(Probe.c_str(), "w")) {
      std::fputs("void convgen_probe(int *hist, long n, long m) {\n"
                 "#pragma omp parallel for reduction(+:hist[0:n])\n"
                 "  for (long i = 0; i < m; i++) hist[i % n] += 1;\n"
                 "}\n",
                 File);
      std::fclose(File);
    } else {
      rmdir(Dir);
      return false;
    }
    std::string Cmd =
        strfmt("%s -fopenmp -shared -fPIC -o %s %s > /dev/null 2>&1",
               compilerCommand(), Out.c_str(), Probe.c_str());
    bool Ok = std::system(Cmd.c_str()) == 0;
    std::remove(Probe.c_str());
    std::remove(Out.c_str());
    rmdir(Dir);
    return Ok;
  }();
  return Available;
#endif
}

std::string jit::jitEffectiveFlags(const std::string &ExtraFlags) {
  std::string Flags = "-O3 -march=native -std=c11 -shared -fPIC";
  if (jitOpenMPAvailable())
    Flags += " -fopenmp";
  // CONVGEN_JIT_FLAGS appends to every JIT compile: the sanitizer CI leg
  // uses it to build generated code with ASan/UBSan so the whole
  // host-binary + dlopen'd-routine boundary runs instrumented. The env
  // value flows through this function into the disk-cache key, so
  // differently-flagged objects never alias.
  if (const char *Env = std::getenv("CONVGEN_JIT_FLAGS")) {
    if (*Env) {
      Flags += " ";
      Flags += Env;
    }
  }
  // The ranking-strategy knobs change the generated C (hashed presence,
  // shared-sort structure). The plan key already re-derives their strategy
  // bits per lookup, but the effective flag string is the other half of
  // every cache key (in-memory JIT map and on-disk object names), so bake
  // the knobs in as benign -D defines: a knob flip can never dlopen a
  // stale shared object, even for exotic callers that bypass planKey.
  // Values are normalized through rankStrategyKnob() — an explicit "auto"
  // (or a typo, which reads as auto) must land on the same flag string as
  // unset, or identical code would recompile into a second cached object.
  switch (codegen::rankStrategyKnob()) {
  case codegen::RankStrategy::Auto:
    break;
  case codegen::RankStrategy::Sorted:
    Flags += " -DCONVGEN_RANK_STRATEGY_SORTED=1";
    break;
  case codegen::RankStrategy::Hashed:
    Flags += " -DCONVGEN_RANK_STRATEGY_HASHED=1";
    break;
  }
  if (const char *Env = std::getenv("CONVGEN_NO_SHARED_SORT")) {
    if (*Env && std::string(Env) != "0")
      Flags += " -DCONVGEN_NO_SHARED_SORT=1";
  }
  if (!ExtraFlags.empty())
    Flags += " " + ExtraFlags;
  return Flags;
}

/// Loads the conversion entry point out of an already compiled object.
/// Returns false (with \p Error set) instead of aborting, so callers can
/// treat a stale or corrupt cached object as a miss.
static bool loadConversion(const std::string &SoPath,
                           const std::string &FnName, void **Handle,
                           void (**Fn)(const CTensor *, CTensor *),
                           std::string *Error) {
  *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!*Handle) {
    *Error = "jit: dlopen failed: " + std::string(dlerror());
    return false;
  }
  *Fn = reinterpret_cast<void (*)(const CTensor *, CTensor *)>(
      dlsym(*Handle, FnName.c_str()));
  if (!*Fn) {
    *Error = "jit: dlsym cannot find " + FnName;
    dlclose(*Handle);
    *Handle = nullptr;
    return false;
  }
  return true;
}

/// Resolves the per-phase timing array a freshly emitted routine exports;
/// returns null for objects that predate phase timing (stale disk cache).
static double *loadPhaseSeconds(void *Handle, const std::string &FnName) {
  using Accessor = double *(*)(void);
  Accessor Get = reinterpret_cast<Accessor>(
      dlsym(Handle, (FnName + "_phase_seconds").c_str()));
  return Get ? Get() : nullptr;
}

JitConversion::JitConversion(const codegen::Conversion &Conversion,
                             const std::string &ExtraFlags,
                             const std::string &CachedSoPath)
    : Conv(Conversion) {
  std::string Error;
  // Cache hit: load the previously compiled object, no external compiler.
  // A corrupt or stale object is evicted and recompiled below rather than
  // poisoning every future process.
  if (!CachedSoPath.empty()) {
    if (std::FILE *Probe = std::fopen(CachedSoPath.c_str(), "rb")) {
      std::fclose(Probe);
      if (loadConversion(CachedSoPath, Conv.Func.Name, &Handle, &Fn,
                         &Error)) {
        FromCache = true;
        PhaseSecs = loadPhaseSeconds(Handle, Conv.Func.Name);
        return;
      }
      std::fprintf(stderr, "convgen: evicting bad cached object %s (%s)\n",
                   CachedSoPath.c_str(), Error.c_str());
      std::remove(CachedSoPath.c_str());
    }
  }

  char Template[] = "/tmp/convgen-jit-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir)
    fatalError("jit: cannot create a temporary directory");
  WorkDir = Dir;

  std::string CPath = WorkDir + "/conv.c";
  std::string SoPath = WorkDir + "/conv.so";
  std::FILE *File = std::fopen(CPath.c_str(), "w");
  if (!File)
    fatalError("jit: cannot write the generated source");
  std::string Source = Conv.cSource();
  std::fwrite(Source.data(), 1, Source.size(), File);
  std::fclose(File);

  std::string Cmd = strfmt("%s %s -o %s %s 2> %s/cc.log", compilerCommand(),
                           jitEffectiveFlags(ExtraFlags).c_str(),
                           SoPath.c_str(), CPath.c_str(), WorkDir.c_str());
  auto Begin = std::chrono::steady_clock::now();
  int Rc = std::system(Cmd.c_str());
  CompileSecs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  if (Rc != 0) {
    std::string Log;
    if (std::FILE *LogFile = std::fopen((WorkDir + "/cc.log").c_str(), "r")) {
      char Buf[4096];
      size_t Got = std::fread(Buf, 1, sizeof(Buf) - 1, LogFile);
      Buf[Got] = '\0';
      Log = Buf;
      std::fclose(LogFile);
    }
    fatalError(("jit: compilation failed:\n" + Log).c_str());
  }

  // Install into the on-disk cache: rename() within the cache directory is
  // atomic, so concurrent processes either see the complete object or none.
  // Copying in-process (no shell) keeps arbitrary cache paths safe, and
  // the per-thread staging suffix keeps concurrent compiles of the same
  // key from tearing each other's staged file.
  if (!CachedSoPath.empty()) {
    static std::atomic<uint64_t> StageCounter{0};
    std::string Staged = CachedSoPath + ".tmp." + std::to_string(getpid()) +
                         "." + std::to_string(++StageCounter);
    if (copyFile(SoPath, Staged) &&
        std::rename(Staged.c_str(), CachedSoPath.c_str()) == 0) {
      // Keep the generated C beside the object for debugging.
      std::string CCache = CachedSoPath;
      std::string::size_type Dot = CCache.rfind(".so");
      if (Dot != std::string::npos) {
        CCache.replace(Dot, 3, ".c");
        copyFile(CPath, CCache);
      }
    } else {
      std::remove(Staged.c_str());
    }
  }

  if (!loadConversion(SoPath, Conv.Func.Name, &Handle, &Fn, &Error))
    fatalError(Error.c_str());
  PhaseSecs = loadPhaseSeconds(Handle, Conv.Func.Name);
}

JitConversion::~JitConversion() {
  // Never dlclose an object whose OpenMP parallel regions may have run:
  // libgomp's pooled worker threads keep references into the region code
  // of the DSO that spawned them, so unloading it while the pool is alive
  // crashes on the next parallel region (reproducible with
  // OMP_NUM_THREADS > 1 and repeated load/run/unload cycles). Keeping the
  // handle resident is the standard JIT-plugin practice; a process holds
  // at most one object per (pair, options, flags) through the PlanCache.
  if (Handle && !jitOpenMPAvailable())
    dlclose(Handle);
  if (!WorkDir.empty()) {
    std::remove((WorkDir + "/conv.c").c_str());
    std::remove((WorkDir + "/conv.so").c_str());
    std::remove((WorkDir + "/cc.log").c_str());
    rmdir(WorkDir.c_str());
  }
}

void JitConversion::runRaw(const CTensor *A, CTensor *B) const {
  CONVGEN_ASSERT(Fn != nullptr, "jit function not loaded");
  Fn(A, B);
}

void jit::marshalInput(const tensor::SparseTensor &In, CTensor *Out) {
  *Out = CTensor();
  for (size_t D = 0; D < In.Dims.size(); ++D)
    Out->dims[D] = In.Dims[D];
  for (size_t K = 0; K < In.Levels.size(); ++K) {
    const tensor::LevelStorage &L = In.Levels[K];
    size_t Slot = K + 1;
    Out->pos[Slot] = const_cast<int32_t *>(L.Pos.data());
    Out->pos_len[Slot] = static_cast<int64_t>(L.Pos.size());
    Out->crd[Slot] = const_cast<int32_t *>(L.Crd.data());
    Out->crd_len[Slot] = static_cast<int64_t>(L.Crd.size());
    Out->perm[Slot] = const_cast<int32_t *>(L.Perm.data());
    Out->perm_len[Slot] = static_cast<int64_t>(L.Perm.size());
    Out->params[Slot] = L.SizeParam;
  }
  Out->vals = const_cast<double *>(In.Vals.data());
  Out->vals_len = static_cast<int64_t>(In.Vals.size());
}

tensor::SparseTensor jit::collectOutput(const formats::Format &Target,
                                        const std::vector<int64_t> &Dims,
                                        CTensor *B) {
  // Adoption, not copying: the generated routine malloc'd these arrays and
  // yielded them through the ABI struct; ownership moves into the
  // SparseTensor's OwnedArray storage, which frees them with std::free.
  // Slots the target format does not populate are released below.
  tensor::SparseTensor Out;
  Out.Format = Target;
  Out.Dims = Dims;
  Out.Levels.resize(Target.Levels.size());
  for (size_t K = 0; K < Target.Levels.size(); ++K) {
    size_t Slot = K + 1;
    tensor::LevelStorage &L = Out.Levels[K];
    L.Pos.adoptMalloc(B->pos[Slot], static_cast<size_t>(B->pos_len[Slot]));
    L.Crd.adoptMalloc(B->crd[Slot], static_cast<size_t>(B->crd_len[Slot]));
    L.Perm.adoptMalloc(B->perm[Slot], static_cast<size_t>(B->perm_len[Slot]));
    B->pos[Slot] = B->crd[Slot] = B->perm[Slot] = nullptr;
    if (Target.levelHasSizeParam(static_cast<int>(K)))
      L.SizeParam = B->params[Slot];
  }
  Out.Vals.adoptMalloc(B->vals, static_cast<size_t>(B->vals_len));
  B->vals = nullptr;
  freeOutput(B);
  return Out;
}

void jit::freeOutput(CTensor *B) {
  for (size_t Slot = 0; Slot <= ir::kMaxLevels; ++Slot) {
    std::free(B->pos[Slot]);
    std::free(B->crd[Slot]);
    std::free(B->perm[Slot]);
    B->pos[Slot] = B->crd[Slot] = B->perm[Slot] = nullptr;
  }
  std::free(B->vals);
  B->vals = nullptr;
}

tensor::SparseTensor JitConversion::run(const tensor::SparseTensor &In) const {
  // Size guard: a natively compiled routine cannot switch strategies per
  // tensor, so reject inputs whose dimensions demand sorted-ranking levels
  // this object was not compiled with — running the dense-ranking code
  // would allocate by the product of the grouping extents (gigabytes for a
  // 2^31-extent mode) instead of O(nnz). Callers route such tensors
  // through a dims-specialized plan (codegen::optionsForDims +
  // PlanCache::jit); the interpreter-backed Converter does so
  // automatically.
  codegen::AssemblyPlan Need =
      codegen::planAssembly(Conv.Source, Conv.Target, In.Dims);
  if (!Need.Unsupported.empty())
    fatalError(Need.Unsupported.c_str());
  // Compare against the plan recorded at generation time (Conv.Asm), not
  // a re-derivation: re-planning here would read the *current*
  // CONVGEN_RANK_DENSE_MAX_BYTES and silently disagree with the compiled
  // code whenever the budget changed since generation.
  for (size_t K = 0; K < Need.Sorted.size(); ++K)
    if (Need.Sorted[K] &&
        (K >= Conv.Asm.Sorted.size() || !Conv.Asm.Sorted[K]))
      fatalError(
          strfmt("jit: conversion %s -> %s was compiled without the "
                 "sorted-ranking strategy level %zu needs at these "
                 "dimensions (dense ranking structures would exceed the "
                 "CONVGEN_RANK_DENSE_MAX_BYTES budget of %lld); rebuild "
                 "the plan with codegen::optionsForDims(source, target, "
                 "opts, tensor.Dims)",
                 Conv.Source.Name.c_str(), Conv.Target.Name.c_str(), K + 1,
                 static_cast<long long>(codegen::rankDenseMaxBytes()))
              .c_str());
  convert::checkSourceOrder(Conv, In);
  CTensor A, B;
  marshalInput(In, &A);
  runRaw(&A, &B);
  return collectOutput(Conv.Target, In.Dims, &B);
}
