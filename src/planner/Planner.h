//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conversion path planner: one decision layer for every strategy knob.
///
/// Given a (source, target) pair and the input tensor's statistics (nnz,
/// dimension sizes), the planner enumerates candidate execution paths —
/// the direct conversion under each meaningfully distinct strategy
/// assignment (sorted vs hashed ranking, merge vs packed-radix sort,
/// shared sort on/off, sorted-ranking forced below the dense budget) plus
/// legal two-hop chains through COO — estimates the cost of each from a
/// simple analytic model, and picks the plan the conversion runners
/// execute. The scattered per-knob heuristics (the rank-strategy width
/// rule, the sort-strategy packability rule, the 64 MiB dense-budget flip)
/// stay where they are as the *defaults*; the planner reasons about
/// deviations from them through codegen::Options' planner-forced fields.
///
/// Environment knobs always win: a pinned CONVGEN_RANK_STRATEGY /
/// CONVGEN_SORT_STRATEGY / CONVGEN_NO_SHARED_SORT suppresses the
/// corresponding candidates (codegen would ignore the forced field
/// anyway), so explicit pinning behaves exactly as before the planner
/// existed.
///
/// Auto-tuning: every planner-executed conversion records its measured
/// wall-clock into the PlanCache's outcome store, keyed by (pair,
/// log2-bucketed nnz and dims, strategy label). Once a candidate has
/// CONVGEN_PLANNER_TRUST_AFTER observations, decide() trusts measurements
/// over the analytic model: if both the analytic favourite and some other
/// candidate are measured and the other's mean beats the favourite's by
/// more than CONVGEN_PLANNER_MARGIN, the measurement wins. Cold candidates
/// keep competing on analytic cost, so the first few conversions of a new
/// shape explore and later ones exploit.
///
/// Correctness contract: every candidate computes the identical output
/// tensor bit-for-bit (strategies are pure implementation choices, and
/// chainLegal() rejects intermediates that would drop information the
/// target preserves — see the duplicate-tuple and order-requirement
/// predicates). The planner also preserves the direct path's acceptance
/// behaviour: a source tensor the default plan would reject (unsorted
/// where its dedup assembly requires order) is rejected no matter which
/// path the planner chose.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_PLANNER_PLANNER_H
#define CONVGEN_PLANNER_PLANNER_H

#include "codegen/Generator.h"
#include "formats/Format.h"
#include "tensor/SparseTensor.h"

#include <cstdint>
#include <string>
#include <vector>

namespace convgen {
namespace planner {

/// The input statistics the cost model consumes. Cheap to compute: nnz is
/// the stored size (an upper bound for padded formats, which is fine — the
/// model only ranks candidates) and the dims are copied.
struct InputStats {
  int64_t Nnz = 0;
  std::vector<int64_t> Dims;

  static InputStats fromTensor(const tensor::SparseTensor &In);
};

/// One conversion step of a candidate path, with the exact options the
/// runner must plan/compile it under (dims hint and planner-forced
/// strategy fields included).
struct Hop {
  formats::Format Src;
  formats::Format Dst;
  codegen::Options Opts;
};

/// A candidate execution path for the pair.
struct Candidate {
  enum class Path { Direct, TwoHop };
  Path Kind = Path::Direct;
  /// Stable strategy label, also the last component of OutcomeKey:
  /// "direct", "direct+sorted", "rank=sorted", "rank=hashed",
  /// "sort=merge", "nosharedsort", "via-coo".
  std::string Label;
  /// One hop for Direct, two for TwoHop (source -> mid, mid -> target).
  std::vector<Hop> Hops;
  /// Abstract element-operation estimate from the analytic model (not
  /// seconds; comparable only across candidates of one decide() call).
  double AnalyticCost = 0;
  /// True when the outcome store had >= trust-threshold observations.
  bool Measured = false;
  /// Mean measured seconds (valid when Measured).
  double MeasuredMean = 0;
  /// The outcome-store key this candidate records under.
  std::string OutcomeKey;
};

/// decide()'s verdict.
struct Decision {
  /// False: the planner stands aside (disabled, input below the nnz
  /// engagement floor, caller already forced strategies, or the direct
  /// pair is unsupported) and the runner takes its classic path. Why says
  /// which.
  bool Engaged = false;
  std::string Why;
  /// True when measured outcomes overrode the analytic favourite.
  bool MeasuredWin = false;
  Candidate Chosen;                ///< Valid when Engaged.
  std::vector<Candidate> Considered; ///< All enumerated candidates.
};

/// True when routing Src -> Mid -> Dst is semantically equivalent to the
/// direct conversion for every input tensor:
///  * all three formats store the same canonical order;
///  * Mid differs from both endpoints;
///  * Mid does not drop duplicate coordinate tuples both endpoints can
///    represent (csc -> coo -> bcsr-shaped chains deduplicate in the
///    middle — illegal when source duplicates would survive a direct
///    conversion);
///  * neither Src nor Mid carries padded values (explicit-zero filtering
///    in the middle would alter what the target stores);
///  * both hops are supported at these dims; and
///  * the second hop's plan needs no source-order validation
///    (LexCheckLevels == 0), since the first hop's output order is
///    data-dependent (csc -> coo legally yields column-major coo).
/// On failure \p Why (optional) names the violated predicate.
bool chainLegal(const formats::Format &Src, const formats::Format &Mid,
                const formats::Format &Dst, const std::vector<int64_t> &Dims,
                std::string *Why = nullptr);

/// The outcome-store key for (pair, stats, strategy label). Nnz and dims
/// are log2-bucketed so measurements generalize across inputs of similar
/// shape: "coo3->csf|n20|d11x11x6|direct".
std::string outcomeKey(const formats::Format &Src, const formats::Format &Dst,
                       const InputStats &Stats, const std::string &Label);

/// The analytic cost model: abstract element operations to execute \p Plan
/// on an input with \p Stats. Monotone non-decreasing in nnz for a fixed
/// plan shape (the property the unit tests pin). Infinity for unsupported
/// plans.
double analyticPlanCost(const codegen::AssemblyPlan &Plan,
                        const InputStats &Stats);

/// The decision layer: enumerate, cost, consult measured outcomes, pick.
/// \p BaseOpts are the caller's options (ablation toggles are inherited by
/// every candidate); a caller that already forced strategies disengages
/// the planner.
Decision decide(const formats::Format &Src, const formats::Format &Dst,
                const codegen::Options &BaseOpts, const InputStats &Stats);

} // namespace planner
} // namespace convgen

#endif // CONVGEN_PLANNER_PLANNER_H
