//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "planner/Planner.h"

#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

using namespace convgen;
using namespace convgen::planner;
using formats::LevelKind;

InputStats InputStats::fromTensor(const tensor::SparseTensor &In) {
  InputStats S;
  S.Nnz = In.storedSize();
  S.Dims = In.Dims;
  return S;
}

namespace {

/// Floor of log2, clamped at 0 — the bucketing that makes outcome keys
/// generalize across inputs of similar magnitude.
int log2Bucket(int64_t V) {
  int B = 0;
  while (V > 1) {
    V >>= 1;
    ++B;
  }
  return B;
}

/// True if \p F can represent the same coordinate tuple stored more than
/// once (COO's non-unique root level). A format that cannot necessarily
/// deduplicates on assembly.
bool holdsDuplicateTuples(const formats::Format &F) {
  for (const formats::LevelSpec &L : F.Levels)
    if ((L.Kind == LevelKind::Compressed || L.Kind == LevelKind::Singleton) &&
        !L.Unique)
      return true;
  return false;
}

/// The strategy-relevant bits of a plan, for deduplicating candidates
/// whose forced options collapse to the same generated code. Two options
/// structs with equal signatures produce bit-identical routines modulo the
/// plan key, so enumerating both would waste a compile and an outcome
/// slot.
std::string planSignature(const codegen::AssemblyPlan &P) {
  std::string S;
  for (bool B : P.Sorted)
    S += B ? 's' : '.';
  S += '/';
  for (bool B : P.Hashed)
    S += B ? 'h' : '.';
  S += '/';
  for (bool B : P.Ranked)
    S += B ? 'r' : '.';
  S += strfmt("/g%d/%c", P.SharedSortAnchor, P.PackedSort ? 'p' : 'm');
  return S;
}

} // namespace

std::string planner::outcomeKey(const formats::Format &Src,
                                const formats::Format &Dst,
                                const InputStats &Stats,
                                const std::string &Label) {
  std::string Key =
      Src.Name + "->" + Dst.Name + "|n" + std::to_string(log2Bucket(Stats.Nnz));
  Key += "|d";
  for (size_t I = 0; I < Stats.Dims.size(); ++I) {
    if (I)
      Key += 'x';
    Key += std::to_string(log2Bucket(Stats.Dims[I]));
  }
  return Key + "|" + Label;
}

double planner::analyticPlanCost(const codegen::AssemblyPlan &Plan,
                                 const InputStats &Stats) {
  if (!Plan.Unsupported.empty())
    return std::numeric_limits<double>::infinity();
  double N = static_cast<double>(std::max<int64_t>(Stats.Nnz, 1));
  double LogN = std::log2(N + 1);
  // The dense coordinate space, saturated well below overflow; the proxy
  // for dense ranking structures a level may have to initialize and scan.
  double DenseExt = 1;
  for (int64_t D : Stats.Dims)
    DenseExt = std::min(DenseExt * static_cast<double>(std::max<int64_t>(D, 1)),
                        1e15);
  size_t Order = Plan.Dedup.size();
  // Streaming baseline: read every nonzero, write it into each level.
  double Cost = (2.0 + static_cast<double>(Order)) * N;
  bool SharedCharged = false;
  for (size_t K = 0; K < Order; ++K) {
    if (K < Plan.Sorted.size() && Plan.Sorted[K]) {
      double SortN = N;
      if (K < Plan.Hashed.size() && Plan.Hashed[K]) {
        Cost += 1.5 * N; // open-addressing pre-dedup pass
        SortN = 0.5 * N; // the sort then touches only distinct tuples
      }
      // Under a shared full-arity sort only the anchor level pays for the
      // sort; the others compact prefixes off the shared sorted list.
      bool ChargeSort = Plan.SharedSortAnchor == 0 || !SharedCharged;
      if (ChargeSort) {
        if (Plan.PackedSort) {
          double Bits = 0;
          for (int64_t W : Plan.PackWidths)
            Bits += static_cast<double>(W);
          Cost += std::max(1.0, std::ceil(Bits / 11.0)) * SortN;
        } else {
          Cost += 1.5 * SortN * LogN; // comparison merge sort
        }
        SharedCharged = Plan.SharedSortAnchor != 0;
      } else {
        Cost += N; // prefix compaction from the shared sorted list
      }
      Cost += 0.5 * N * LogN; // binary-search rank lookups at insertion
    } else if (K < Plan.Ranked.size() && Plan.Ranked[K]) {
      // Dense rank arrays: one streaming pass plus initialize-and-scan of
      // a structure proportional to the dense space. The full-dims product
      // overstates a level's grouping space, but errs against dense
      // ranking exactly where it hurts (huge extents) and the measured
      // outcomes correct the rest.
      Cost += N + 0.125 * DenseExt;
    } else if (K < Plan.Dedup.size() && Plan.Dedup[K]) {
      Cost += N; // sequenced dedup sweep over an ordered source
    }
  }
  // Runtime source-order validation the runner must perform per input.
  Cost += 0.2 * static_cast<double>(Plan.LexCheckLevels) * N;
  return Cost;
}

bool planner::chainLegal(const formats::Format &Src, const formats::Format &Mid,
                         const formats::Format &Dst,
                         const std::vector<int64_t> &Dims, std::string *Why) {
  auto fail = [&](std::string M) {
    if (Why)
      *Why = std::move(M);
    return false;
  };
  if (Src.SrcOrder != Mid.SrcOrder || Mid.SrcOrder != Dst.SrcOrder)
    return fail("canonical orders differ across the chain");
  if (Mid.Name == Src.Name || Mid.Name == Dst.Name)
    return fail("intermediate equals an endpoint");
  // The information-preservation predicate: when both endpoints can store
  // the same coordinate tuple more than once, a direct conversion carries
  // the duplicates through — an intermediate that deduplicates would merge
  // them and the chain diverges from the direct result.
  if (holdsDuplicateTuples(Src) && holdsDuplicateTuples(Dst) &&
      !holdsDuplicateTuples(Mid))
    return fail("intermediate deduplicates coordinate tuples both endpoints "
                "preserve");
  if (Src.PaddedVals)
    return fail("padded-values source: the first hop filters explicit zeros "
                "the direct conversion would carry into the target's padding");
  if (Mid.PaddedVals)
    return fail("padded-values intermediate inserts explicit zeros");
  std::string HopWhy;
  if (!codegen::conversionSupported(Src, Mid, Dims, &HopWhy))
    return fail("first hop unsupported: " + HopWhy);
  if (!codegen::conversionSupported(Mid, Dst, Dims, &HopWhy))
    return fail("second hop unsupported: " + HopWhy);
  // The first hop's output ordering is data-dependent (csc -> coo legally
  // yields column-major coo), so the second hop must not require a
  // lexicographically sorted source. This is what keeps csc -> coo -> bcsr
  // out: bcsr's sequenced dedup trusts a sorted coo source.
  codegen::AssemblyPlan Second = codegen::planAssembly(Mid, Dst, Dims);
  if (Second.LexCheckLevels != 0)
    return fail(strfmt("second hop %s -> %s requires a lexicographically "
                       "sorted source, which the first hop does not guarantee",
                       Mid.Name.c_str(), Dst.Name.c_str()));
  return true;
}

Decision planner::decide(const formats::Format &Src, const formats::Format &Dst,
                         const codegen::Options &BaseOpts,
                         const InputStats &Stats) {
  Decision D;
  const codegen::StrategyKnobs &K = codegen::knobs();
  if (!K.PlannerOn) {
    D.Why = "planner disabled (CONVGEN_PLANNER=off)";
    return D;
  }
  if (Stats.Nnz < K.PlannerMinNnz) {
    D.Why = strfmt("input below the engagement floor (nnz %lld < "
                   "CONVGEN_PLANNER_MIN_NNZ %lld)",
                   static_cast<long long>(Stats.Nnz),
                   static_cast<long long>(K.PlannerMinNnz));
    return D;
  }
  if (BaseOpts.anyForced()) {
    D.Why = "caller already forced strategy assignments";
    return D;
  }
  codegen::Options DirectOpts =
      codegen::optionsForDims(Src, Dst, BaseOpts, Stats.Dims);
  codegen::AssemblyPlan Default = codegen::planAssembly(Src, Dst, DirectOpts);
  if (!Default.Unsupported.empty()) {
    D.Why = "direct conversion unsupported: " + Default.Unsupported;
    return D;
  }
  D.Engaged = true;

  std::set<std::string> Signatures;
  Signatures.insert(planSignature(Default));

  Candidate Def;
  Def.Kind = Candidate::Path::Direct;
  Def.Label = "direct";
  Def.Hops.push_back(Hop{Src, Dst, DirectOpts});
  Def.AnalyticCost = analyticPlanCost(Default, Stats);
  D.Considered.push_back(std::move(Def));

  // Direct strategy variants. Each starts from the caller's options
  // (ablation toggles inherited), forces one decision, and survives only
  // when the forced plan is supported AND differs from every plan already
  // enumerated — a pinned environment knob or an inapplicable strategy
  // collapses the variant into the default, and enumerating it twice would
  // waste a compile and split its outcome history.
  auto tryDirectVariant = [&](const std::string &Label,
                              codegen::Options Forced) {
    Forced = codegen::optionsForDims(Src, Dst, Forced, Stats.Dims);
    std::string Why;
    if (!codegen::conversionSupported(Src, Dst, Forced, &Why))
      return;
    codegen::AssemblyPlan P = codegen::planAssembly(Src, Dst, Forced);
    if (!Signatures.insert(planSignature(P)).second)
      return;
    Candidate C;
    C.Kind = Candidate::Path::Direct;
    C.Label = Label;
    C.Hops.push_back(Hop{Src, Dst, Forced});
    C.AnalyticCost = analyticPlanCost(P, Stats);
    D.Considered.push_back(std::move(C));
  };
  {
    codegen::Options O = BaseOpts;
    O.ForceSortedRanking = true;
    tryDirectVariant("direct+sorted", O);
  }
  if (codegen::rankStrategyKnob() == codegen::RankStrategy::Auto) {
    codegen::Options O = BaseOpts;
    O.ForceRank = codegen::RankStrategy::Sorted;
    tryDirectVariant("rank=sorted", O);
    O.ForceRank = codegen::RankStrategy::Hashed;
    tryDirectVariant("rank=hashed", O);
  }
  if (codegen::sortStrategyKnob() == codegen::SortStrategy::Auto &&
      Default.PackedSort) {
    codegen::Options O = BaseOpts;
    O.ForceSort = codegen::SortStrategy::Merge;
    tryDirectVariant("sort=merge", O);
  }
  if (Default.SharedSortAnchor > 0 && !K.NoSharedSort) {
    codegen::Options O = BaseOpts;
    O.ForceNoSharedSort = true;
    tryDirectVariant("nosharedsort", O);
  }

  // The two-hop path through COO: worth considering when the direct
  // routine's assembly is expensive (dense ranking over huge extents)
  // while both hops are cheap streaming passes. Only when provably
  // equivalent to the direct conversion for every input.
  if (Src.SrcOrder >= 2) {
    formats::Format Mid = formats::makeCOO(Src.SrcOrder);
    std::string Why;
    if (chainLegal(Src, Mid, Dst, Stats.Dims, &Why)) {
      codegen::Options H1Base = BaseOpts;
      H1Base.DimsHint.clear();
      codegen::Options H1 =
          codegen::optionsForDims(Src, Mid, H1Base, Stats.Dims);
      codegen::Options H2 =
          codegen::optionsForDims(Mid, Dst, H1Base, Stats.Dims);
      codegen::AssemblyPlan P1 = codegen::planAssembly(Src, Mid, H1);
      codegen::AssemblyPlan P2 = codegen::planAssembly(Mid, Dst, H2);
      Candidate C;
      C.Kind = Candidate::Path::TwoHop;
      C.Label = "via-coo";
      C.Hops.push_back(Hop{Src, Mid, H1});
      C.Hops.push_back(Hop{Mid, Dst, H2});
      // Materializing the intermediate costs one coordinate tuple + value
      // write and read per nonzero.
      C.AnalyticCost = analyticPlanCost(P1, Stats) +
                       analyticPlanCost(P2, Stats) +
                       static_cast<double>(Src.SrcOrder + 1) *
                           static_cast<double>(std::max<int64_t>(Stats.Nnz, 1));
      D.Considered.push_back(std::move(C));
    }
  }

  // Attach measured outcomes: a candidate with enough observations
  // competes on its measured mean.
  for (Candidate &C : D.Considered) {
    C.OutcomeKey = outcomeKey(Src, Dst, Stats, C.Label);
    convert::OutcomeRecord Rec;
    if (convert::PlanCache::instance().outcomeFor(C.OutcomeKey, &Rec) &&
        Rec.Count >= static_cast<uint64_t>(K.PlannerTrustAfter)) {
      C.Measured = true;
      C.MeasuredMean = Rec.meanSeconds();
    }
  }

  // Choose: analytic favourite first; measured outcomes override it only
  // when the comparison is apples-to-apples (the favourite itself is
  // measured) and the winner clears the margin — analytic element-ops and
  // measured seconds live in different units and are never compared
  // directly.
  size_t Best = 0;
  for (size_t I = 1; I < D.Considered.size(); ++I)
    if (D.Considered[I].AnalyticCost < D.Considered[Best].AnalyticCost)
      Best = I;
  D.Why = "analytic model";
  if (D.Considered[Best].Measured) {
    size_t BestMeasured = Best;
    for (size_t I = 0; I < D.Considered.size(); ++I)
      if (D.Considered[I].Measured &&
          D.Considered[I].MeasuredMean <
              D.Considered[BestMeasured].MeasuredMean)
        BestMeasured = I;
    if (BestMeasured != Best &&
        D.Considered[BestMeasured].MeasuredMean <
            D.Considered[Best].MeasuredMean * (1.0 - K.PlannerMargin)) {
      Best = BestMeasured;
      D.Why = "measured outcomes override the analytic model";
      D.MeasuredWin = true;
    }
  }
  D.Chosen = D.Considered[Best];
  return D;
}
