//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"

#include "convert/PlanCache.h"
#include "ir/Interpreter.h"
#include "support/Assert.h"
#include "support/DegradationLog.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::convert;
using formats::LevelKind;

Converter::Converter(formats::Format Source, formats::Format Target,
                     codegen::Options Opts)
    : Conv(PlanCache::instance().plan(Source, Target, Opts)) {}

StatusOr<Converter> Converter::tryCreate(formats::Format Source,
                                         formats::Format Target,
                                         codegen::Options Opts) {
  StatusOr<std::shared_ptr<const codegen::Conversion>> Plan =
      PlanCache::instance().tryPlan(Source, Target, Opts);
  if (!Plan.ok())
    return Plan.status();
  return Converter(Plan.take());
}

void convert::bindSourceTensor(ir::Interpreter &Interp,
                               const tensor::SparseTensor &In) {
  for (size_t D = 0; D < In.Dims.size(); ++D)
    Interp.bindScalar("dim" + std::to_string(D), In.Dims[D]);
  for (size_t K = 0; K < In.Format.Levels.size(); ++K) {
    const tensor::LevelStorage &L = In.Levels[K];
    std::string Base = "A" + std::to_string(K + 1);
    switch (In.Format.Levels[K].Kind) {
    case LevelKind::Compressed:
      Interp.bindIntBuffer(Base + "_pos", L.Pos);
      Interp.bindIntBuffer(Base + "_crd", L.Crd);
      break;
    case LevelKind::Singleton:
      Interp.bindIntBuffer(Base + "_crd", L.Crd);
      break;
    case LevelKind::Squeezed:
      Interp.bindIntBuffer(Base + "_perm", L.Perm);
      Interp.bindScalar(Base + "_param", L.SizeParam);
      break;
    case LevelKind::Sliced:
      Interp.bindScalar(Base + "_param", L.SizeParam);
      break;
    case LevelKind::Skyline:
      Interp.bindIntBuffer(Base + "_pos", L.Pos);
      break;
    case LevelKind::Dense:
    case LevelKind::Offset:
      break;
    }
  }
  Interp.bindFloatBuffer("A_vals", In.Vals);
}

tensor::SparseTensor
convert::collectTargetTensor(const formats::Format &Target,
                             const std::vector<int64_t> &Dims,
                             ir::RunResult &Result) {
  tensor::SparseTensor Out;
  Out.Format = Target;
  Out.Dims = Dims;
  Out.Levels.resize(Target.Levels.size());
  for (size_t K = 0; K < Target.Levels.size(); ++K) {
    std::string Base = "B" + std::to_string(K + 1);
    tensor::LevelStorage &L = Out.Levels[K];
    auto takeInts = [&](const std::string &Slot,
                        tensor::OwnedArray<int32_t> &Dest) {
      auto It = Result.Buffers.find(Slot);
      if (It == Result.Buffers.end())
        fatalError(("conversion did not yield " + Slot).c_str());
      Dest = It->second.Ints;
    };
    switch (Target.Levels[K].Kind) {
    case LevelKind::Compressed:
      takeInts(Base + "_pos", L.Pos);
      takeInts(Base + "_crd", L.Crd);
      break;
    case LevelKind::Singleton:
      takeInts(Base + "_crd", L.Crd);
      break;
    case LevelKind::Squeezed:
      takeInts(Base + "_perm", L.Perm);
      L.SizeParam = Result.Scalars.at(Base + "_param");
      break;
    case LevelKind::Sliced:
      L.SizeParam = Result.Scalars.at(Base + "_param");
      break;
    case LevelKind::Skyline:
      takeInts(Base + "_pos", L.Pos);
      break;
    case LevelKind::Dense:
    case LevelKind::Offset:
      break;
    }
  }
  auto It = Result.Buffers.find("B_vals");
  if (It == Result.Buffers.end())
    fatalError("conversion did not yield B_vals");
  Out.Vals = It->second.Floats;
  return Out;
}

Status convert::checkSourceOrder(const codegen::Conversion &Conv,
                                 const tensor::SparseTensor &In) {
  if (Conv.LexCheckLevels <= 0)
    return Status();
  std::string Why;
  if (!In.lexOrderedUpTo(Conv.LexCheckLevels, &Why))
    return Status::error(
        ErrorCode::InvalidArgument,
        strfmt("conversion %s -> %s requires a lexicographically sorted "
               "source (its dedup assembly visits grouping coordinates as "
               "an ordered prefix), but the input is unsorted: %s",
               Conv.Source.Name.c_str(), Conv.Target.Name.c_str(),
               Why.c_str()));
  return Status();
}

StatusOr<tensor::SparseTensor>
Converter::tryRun(const tensor::SparseTensor &In,
                  const support::Deadline &Deadline) const {
  auto deadlineError = [&](const char *Where) {
    support::DegradationLog::instance().record(
        support::Degradation::DeadlineExceeded,
        strfmt("%s -> %s: %s", Conv->Source.Name.c_str(),
               Conv->Target.Name.c_str(), Where));
    return Status::error(ErrorCode::DeadlineExceeded,
                         strfmt("converter: request deadline expired %s",
                                Where));
  };
  if (Deadline.expired())
    return deadlineError("on entry");
  if (In.Format.Name != Conv->Source.Name)
    return Status::error(
        ErrorCode::InvalidArgument,
        strfmt("converter compiled for source '%s' got a '%s' tensor",
               Conv->Source.Name.c_str(), In.Format.Name.c_str()));
  // Size-driven strategy routing: when this tensor's dimensions push a
  // level's dense ranking structures over the CONVGEN_RANK_DENSE_MAX_BYTES
  // budget, fetch the dims-specialized plan (sorted-ranking levels, O(nnz)
  // workspaces) from the cache instead of letting the default plan
  // allocate by extent products — or return the planner's size-grounds
  // diagnostic when no fallback applies.
  const codegen::Conversion *Plan = Conv.get();
  std::shared_ptr<const codegen::Conversion> DimPlan;
  codegen::Options Effective = codegen::optionsForDims(
      Conv->Source, Conv->Target, Conv->Opts, In.Dims);
  if (Effective.DimsHint != Conv->Opts.DimsHint) {
    StatusOr<std::shared_ptr<const codegen::Conversion>> Specialized =
        PlanCache::instance().tryPlan(Conv->Source, Conv->Target, Effective);
    if (!Specialized.ok())
      return Specialized.status();
    DimPlan = Specialized.take();
    Plan = DimPlan.get();
    if (Deadline.expired())
      return deadlineError("after dims-specialized plan acquisition");
  }
  Status Order = checkSourceOrder(*Plan, In);
  if (!Order.ok())
    return Order;
  ir::Interpreter Interp;
  bindSourceTensor(Interp, In);
  ir::RunResult Result = Interp.run(Plan->Func);
  return collectTargetTensor(Plan->Target, In.Dims, Result);
}

tensor::SparseTensor Converter::run(const tensor::SparseTensor &In) const {
  StatusOr<tensor::SparseTensor> R = tryRun(In);
  if (!R.ok())
    fatalError(R.status().message().c_str());
  return R.take();
}
