//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"

#include "convert/PlanCache.h"
#include "ir/Interpreter.h"
#include "planner/Planner.h"
#include "support/Assert.h"
#include "support/DegradationLog.h"
#include "support/StringUtils.h"

#include <chrono>

using namespace convgen;
using namespace convgen::convert;
using formats::LevelKind;

Converter::Converter(formats::Format Source, formats::Format Target,
                     codegen::Options Opts)
    : Conv(PlanCache::instance().plan(Source, Target, Opts)) {}

StatusOr<Converter> Converter::tryCreate(formats::Format Source,
                                         formats::Format Target,
                                         codegen::Options Opts) {
  StatusOr<std::shared_ptr<const codegen::Conversion>> Plan =
      PlanCache::instance().tryPlan(Source, Target, Opts);
  if (!Plan.ok())
    return Plan.status();
  return Converter(Plan.take());
}

void convert::bindSourceTensor(ir::Interpreter &Interp,
                               const tensor::SparseTensor &In) {
  for (size_t D = 0; D < In.Dims.size(); ++D)
    Interp.bindScalar("dim" + std::to_string(D), In.Dims[D]);
  for (size_t K = 0; K < In.Format.Levels.size(); ++K) {
    const tensor::LevelStorage &L = In.Levels[K];
    std::string Base = "A" + std::to_string(K + 1);
    switch (In.Format.Levels[K].Kind) {
    case LevelKind::Compressed:
      Interp.bindIntBuffer(Base + "_pos", L.Pos);
      Interp.bindIntBuffer(Base + "_crd", L.Crd);
      break;
    case LevelKind::Singleton:
      Interp.bindIntBuffer(Base + "_crd", L.Crd);
      break;
    case LevelKind::Squeezed:
      Interp.bindIntBuffer(Base + "_perm", L.Perm);
      Interp.bindScalar(Base + "_param", L.SizeParam);
      break;
    case LevelKind::Sliced:
      Interp.bindScalar(Base + "_param", L.SizeParam);
      break;
    case LevelKind::Skyline:
      Interp.bindIntBuffer(Base + "_pos", L.Pos);
      break;
    case LevelKind::Dense:
    case LevelKind::Offset:
      break;
    }
  }
  Interp.bindFloatBuffer("A_vals", In.Vals);
}

tensor::SparseTensor
convert::collectTargetTensor(const formats::Format &Target,
                             const std::vector<int64_t> &Dims,
                             ir::RunResult &Result) {
  tensor::SparseTensor Out;
  Out.Format = Target;
  Out.Dims = Dims;
  Out.Levels.resize(Target.Levels.size());
  for (size_t K = 0; K < Target.Levels.size(); ++K) {
    std::string Base = "B" + std::to_string(K + 1);
    tensor::LevelStorage &L = Out.Levels[K];
    auto takeInts = [&](const std::string &Slot,
                        tensor::OwnedArray<int32_t> &Dest) {
      auto It = Result.Buffers.find(Slot);
      if (It == Result.Buffers.end())
        fatalError(("conversion did not yield " + Slot).c_str());
      Dest = It->second.Ints;
    };
    switch (Target.Levels[K].Kind) {
    case LevelKind::Compressed:
      takeInts(Base + "_pos", L.Pos);
      takeInts(Base + "_crd", L.Crd);
      break;
    case LevelKind::Singleton:
      takeInts(Base + "_crd", L.Crd);
      break;
    case LevelKind::Squeezed:
      takeInts(Base + "_perm", L.Perm);
      L.SizeParam = Result.Scalars.at(Base + "_param");
      break;
    case LevelKind::Sliced:
      L.SizeParam = Result.Scalars.at(Base + "_param");
      break;
    case LevelKind::Skyline:
      takeInts(Base + "_pos", L.Pos);
      break;
    case LevelKind::Dense:
    case LevelKind::Offset:
      break;
    }
  }
  auto It = Result.Buffers.find("B_vals");
  if (It == Result.Buffers.end())
    fatalError("conversion did not yield B_vals");
  Out.Vals = It->second.Floats;
  return Out;
}

Status convert::checkSourceOrder(const codegen::Conversion &Conv,
                                 const tensor::SparseTensor &In) {
  if (Conv.LexCheckLevels <= 0)
    return Status();
  std::string Why;
  if (!In.lexOrderedUpTo(Conv.LexCheckLevels, &Why))
    return Status::error(
        ErrorCode::InvalidArgument,
        strfmt("conversion %s -> %s requires a lexicographically sorted "
               "source (its dedup assembly visits grouping coordinates as "
               "an ordered prefix), but the input is unsorted: %s",
               Conv.Source.Name.c_str(), Conv.Target.Name.c_str(),
               Why.c_str()));
  return Status();
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Executes a planner-chosen candidate path through the interpreter: plan
/// acquisition for every hop up front (codegen is a once-per-process cost,
/// not a per-conversion one), then the timed hop chain, then the measured
/// outcome recorded under the candidate's key so later decisions can trust
/// it.
StatusOr<tensor::SparseTensor> runChosenPath(const planner::Candidate &Chosen,
                                             const tensor::SparseTensor &In,
                                             const support::Deadline &Deadline) {
  std::vector<std::shared_ptr<const codegen::Conversion>> Plans;
  for (const planner::Hop &H : Chosen.Hops) {
    StatusOr<std::shared_ptr<const codegen::Conversion>> P =
        PlanCache::instance().tryPlan(H.Src, H.Dst, H.Opts);
    if (!P.ok())
      return P.status();
    Plans.push_back(P.take());
  }
  auto Start = std::chrono::steady_clock::now();
  tensor::SparseTensor Staged;
  const tensor::SparseTensor *Cur = &In;
  for (size_t I = 0; I < Plans.size(); ++I) {
    if (Deadline.expired())
      return Status::error(
          ErrorCode::DeadlineExceeded,
          strfmt("converter: request deadline expired before hop %zu of the "
                 "planned path",
                 I + 1));
    Status Order = checkSourceOrder(*Plans[I], *Cur);
    if (!Order.ok())
      return Order;
    ir::Interpreter Interp;
    bindSourceTensor(Interp, *Cur);
    ir::RunResult Result = Interp.run(Plans[I]->Func);
    Staged = collectTargetTensor(Plans[I]->Target, Cur->Dims, Result);
    Cur = &Staged;
  }
  PlanCache::instance().recordOutcome(Chosen.OutcomeKey, secondsSince(Start));
  return std::move(Staged);
}

} // namespace

StatusOr<tensor::SparseTensor>
Converter::tryRun(const tensor::SparseTensor &In,
                  const support::Deadline &Deadline) const {
  auto deadlineError = [&](const char *Where) {
    support::DegradationLog::instance().record(
        support::Degradation::DeadlineExceeded,
        strfmt("%s -> %s: %s", Conv->Source.Name.c_str(),
               Conv->Target.Name.c_str(), Where));
    return Status::error(ErrorCode::DeadlineExceeded,
                         strfmt("converter: request deadline expired %s",
                                Where));
  };
  if (Deadline.expired())
    return deadlineError("on entry");
  if (In.Format.Name != Conv->Source.Name)
    return Status::error(
        ErrorCode::InvalidArgument,
        strfmt("converter compiled for source '%s' got a '%s' tensor",
               Conv->Source.Name.c_str(), In.Format.Name.c_str()));
  // Size-driven strategy routing: when this tensor's dimensions push a
  // level's dense ranking structures over the CONVGEN_RANK_DENSE_MAX_BYTES
  // budget, fetch the dims-specialized plan (sorted-ranking levels, O(nnz)
  // workspaces) from the cache instead of letting the default plan
  // allocate by extent products — or return the planner's size-grounds
  // diagnostic when no fallback applies.
  const codegen::Conversion *Plan = Conv.get();
  std::shared_ptr<const codegen::Conversion> DimPlan;
  codegen::Options Effective = codegen::optionsForDims(
      Conv->Source, Conv->Target, Conv->Opts, In.Dims);
  if (Effective.DimsHint != Conv->Opts.DimsHint) {
    StatusOr<std::shared_ptr<const codegen::Conversion>> Specialized =
        PlanCache::instance().tryPlan(Conv->Source, Conv->Target, Effective);
    if (!Specialized.ok())
      return Specialized.status();
    DimPlan = Specialized.take();
    Plan = DimPlan.get();
    if (Deadline.expired())
      return deadlineError("after dims-specialized plan acquisition");
  }
  // Acceptance contract first, chosen path second: a source the default
  // plan rejects (unsorted where its dedup assembly requires order) is
  // rejected no matter which path the planner would pick, so planner-on
  // and planner-off accept exactly the same inputs.
  Status Order = checkSourceOrder(*Plan, In);
  if (!Order.ok())
    return Order;
  // The path planner: pick the cheapest equivalent strategy assignment or
  // two-hop chain for this input, execute it, and record the measured
  // wall-clock so repeated conversions of similar shapes auto-tune.
  planner::Decision Route = planner::decide(
      Conv->Source, Conv->Target, Conv->Opts, planner::InputStats::fromTensor(In));
  if (Route.Engaged && Route.Chosen.Label != "direct") {
    StatusOr<tensor::SparseTensor> Planned =
        runChosenPath(Route.Chosen, In, Deadline);
    if (Planned.ok() || Planned.status().code() == ErrorCode::DeadlineExceeded)
      return Planned;
    // Any other failure of a variant path falls back to the default
    // direct conversion below — the planner must never make a convertible
    // input fail.
    support::DegradationLog::instance().record(
        support::Degradation::PlannerFallback,
        strfmt("%s -> %s: planned path '%s' failed (%s); using the direct "
               "conversion",
               Conv->Source.Name.c_str(), Conv->Target.Name.c_str(),
               Route.Chosen.Label.c_str(),
               Planned.status().message().c_str()));
  }
  auto Start = std::chrono::steady_clock::now();
  ir::Interpreter Interp;
  bindSourceTensor(Interp, In);
  ir::RunResult Result = Interp.run(Plan->Func);
  tensor::SparseTensor Out = collectTargetTensor(Plan->Target, In.Dims, Result);
  if (Route.Engaged)
    for (const planner::Candidate &C : Route.Considered)
      if (C.Label == "direct") {
        PlanCache::instance().recordOutcome(C.OutcomeKey, secondsSince(Start));
        break;
      }
  return std::move(Out);
}

tensor::SparseTensor Converter::run(const tensor::SparseTensor &In) const {
  StatusOr<tensor::SparseTensor> R = tryRun(In);
  if (!R.ok())
    fatalError(R.status().message().c_str());
  return R.take();
}
