//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "convert/PlanCache.h"

#include "codegen/Knobs.h"
#include "formats/Standard.h"
#include "support/Assert.h"
#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "support/Hash.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/utsname.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

/// Identifies the host CPU for the disk-cache key: cached objects are
/// compiled with -march=native, so an object built on one microarchitecture
/// can SIGILL on another even though source and flags hash identically
/// (shared $HOME, baked container images). /proc/cpuinfo's model name and
/// feature flags capture the ISA; uname's machine field is the fallback.
std::string hostIsaFingerprint() {
  std::string Out;
  if (std::FILE *Info = std::fopen("/proc/cpuinfo", "r")) {
    char Line[4096];
    bool HaveModel = false, HaveFlags = false;
    while (std::fgets(Line, sizeof(Line), Info) &&
           !(HaveModel && HaveFlags)) {
      if (!HaveModel && std::strncmp(Line, "model name", 10) == 0) {
        Out += Line;
        HaveModel = true;
      } else if (!HaveFlags && (std::strncmp(Line, "flags", 5) == 0 ||
                                std::strncmp(Line, "Features", 8) == 0)) {
        Out += Line;
        HaveFlags = true;
      }
    }
    std::fclose(Info);
  }
  if (Out.empty()) {
    struct utsname Uts;
    if (uname(&Uts) == 0)
      Out = Uts.machine;
  }
  return Out;
}

/// Reads a whole file into \p Out; false when it cannot be opened or read.
bool readWholeFile(const std::string &Path, std::string *Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Out->clear();
  char Buf[1 << 16];
  for (size_t Got; (Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0;)
    Out->append(Buf, Got);
  bool Ok = !std::ferror(File);
  std::fclose(File);
  return Ok;
}

/// Writes \p Data to a staging name beside \p Path and renames it into
/// place (atomic within the directory); false on any failure, with the
/// staged file removed.
bool writeFileAtomic(const std::string &Path, const std::string &Data) {
  static std::atomic<uint64_t> StageCounter{0};
  std::string Staged = Path + ".tmp." + std::to_string(getpid()) + "." +
                       std::to_string(++StageCounter);
  std::FILE *Out = std::fopen(Staged.c_str(), "wb");
  if (!Out)
    return false;
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), Out) == Data.size();
  if (std::fclose(Out) != 0)
    Ok = false;
  if (Ok && std::rename(Staged.c_str(), Path.c_str()) != 0)
    Ok = false;
  if (!Ok)
    std::remove(Staged.c_str());
  return Ok;
}

/// Exclusive advisory lock on <SoPath>.lock, held for the object's scope.
/// Serializes installers and evictors of one cache entry across processes;
/// readers stay lock-free (the checksum manifest protects them) and only
/// take the lock to re-verify before evicting.
class EntryLock {
public:
  explicit EntryLock(const std::string &SoPath) {
    Fd = open((SoPath + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
              0644);
    if (Fd >= 0 && flock(Fd, LOCK_EX) != 0) {
      close(Fd);
      Fd = -1;
    }
  }
  ~EntryLock() {
    if (Fd >= 0) {
      flock(Fd, LOCK_UN);
      close(Fd);
    }
  }
  bool held() const { return Fd >= 0; }
  EntryLock(const EntryLock &) = delete;
  EntryLock &operator=(const EntryLock &) = delete;

private:
  int Fd = -1;
};

std::string manifestPath(const std::string &SoPath) {
  return SoPath + ".sum";
}

/// True when the bytes at SoPath match the manifest beside it.
bool checksumMatches(const std::string &SoPath) {
  std::string Bytes, Want;
  if (!readWholeFile(SoPath, &Bytes))
    return false;
  if (!readWholeFile(manifestPath(SoPath), &Want))
    return false;
  return convgen::trim(Want) == convgen::convert::contentHash(Bytes);
}

/// Warm-start manifest format version. Bumped whenever the line layout
/// changes; a preloader seeing another version drops the whole file.
const char kManifestHeader[] = "convgen-manifest-v1";

/// Everything outside the plan that determines whether a cached object is
/// loadable here: the full effective flag string (strategy knobs and
/// CONVGEN_JIT_FLAGS baked in), the compiler identity, and the host ISA.
/// A preloader whose hash differs from the manifest writer's is
/// version-skewed and must evict, not serve.
std::string environmentHash(const std::string &ExtraFlags) {
  const char *Cc = std::getenv("CONVGEN_CC");
  return convgen::convert::contentHash(
      convgen::jit::jitEffectiveFlags(ExtraFlags) + "\n" +
      (Cc ? Cc : "cc") + "\n" + hostIsaFingerprint());
}

std::vector<std::string> splitTabs(const std::string &Line) {
  std::vector<std::string> Out;
  std::string::size_type Start = 0;
  for (std::string::size_type Tab = Line.find('\t');
       Tab != std::string::npos; Tab = Line.find('\t', Start)) {
    Out.push_back(Line.substr(Start, Tab - Start));
    Start = Tab + 1;
  }
  Out.push_back(Line.substr(Start));
  return Out;
}

std::string serializeDims(const std::vector<int64_t> &Dims) {
  if (Dims.empty())
    return "-";
  std::string Out;
  for (int64_t D : Dims) {
    if (!Out.empty())
      Out += ",";
    Out += std::to_string(D);
  }
  return Out;
}

bool parseDims(const std::string &Field, std::vector<int64_t> *Dims) {
  Dims->clear();
  if (Field == "-")
    return true;
  std::string Cur;
  for (size_t I = 0; I <= Field.size(); ++I) {
    if (I == Field.size() || Field[I] == ',') {
      if (Cur.empty())
        return false;
      char *End = nullptr;
      long long V = std::strtoll(Cur.c_str(), &End, 10);
      if (!End || *End != '\0')
        return false;
      Dims->push_back(V);
      Cur.clear();
    } else {
      Cur += Field[I];
    }
  }
  return !Dims->empty();
}

/// "q1c1u0m0" <-> option bits.
std::string serializeOptBits(const convgen::codegen::Options &Opts) {
  return convgen::strfmt("q%dc%du%dm%d", Opts.OptimizeQueries ? 1 : 0,
                         Opts.CounterReuse ? 1 : 0,
                         Opts.ForceUnseqEdges ? 1 : 0,
                         Opts.MaterializeRemap ? 1 : 0);
}

bool parseOptBits(const std::string &Field,
                  convgen::codegen::Options *Opts) {
  if (Field.size() != 8 || Field[0] != 'q' || Field[2] != 'c' ||
      Field[4] != 'u' || Field[6] != 'm')
    return false;
  auto Bit = [](char C, bool *Out) {
    if (C != '0' && C != '1')
      return false;
    *Out = C == '1';
    return true;
  };
  return Bit(Field[1], &Opts->OptimizeQueries) &&
         Bit(Field[3], &Opts->CounterReuse) &&
         Bit(Field[5], &Opts->ForceUnseqEdges) &&
         Bit(Field[7], &Opts->MaterializeRemap);
}

} // namespace

using namespace convgen;
using namespace convgen::convert;
using support::Degradation;
using support::DegradationLog;
using support::FaultSite;

bool convert::readVerifiedCachedObject(const std::string &SoPath) {
  if (support::faultInjected(FaultSite::CacheRead)) {
    DegradationLog::instance().record(
        Degradation::CacheReadFailure,
        "injected cache-read fault for " + SoPath);
    return false;
  }
  // Fast path: no lock. rename() publishes whole files, so a reader sees
  // complete bytes; the manifest check catches every other corruption.
  if (std::FILE *Probe = std::fopen(SoPath.c_str(), "rb"))
    std::fclose(Probe);
  else
    return false; // Plain miss.
  if (checksumMatches(SoPath))
    return true;
  // Mismatch: an installer may have renamed the object but not yet its
  // manifest. Re-verify under the writer lock before evicting, so a good
  // fresh object is never deleted out from under its installer.
  EntryLock Lock(SoPath);
  if (checksumMatches(SoPath))
    return true;
  std::remove(SoPath.c_str());
  std::remove(manifestPath(SoPath).c_str());
  DegradationLog::instance().record(
      Degradation::CacheChecksumEviction,
      "evicted " + SoPath + " (checksum mismatch or missing manifest)");
  return false;
}

bool convert::installCachedObject(const std::string &SoPath,
                                  const std::string &LocalSo,
                                  const std::string &LocalC) {
  auto fail = [&](const std::string &Why) {
    DegradationLog::instance().record(Degradation::CacheWriteFailure, Why);
    return false;
  };
  if (support::faultInjected(FaultSite::CacheWrite))
    return fail("injected cache-write fault for " + SoPath);
  std::string Bytes;
  if (!readWholeFile(LocalSo, &Bytes))
    return fail("cannot read freshly compiled object " + LocalSo);
  EntryLock Lock(SoPath);
  if (!Lock.held())
    return fail("cannot lock cache entry " + SoPath);
  // Object first, manifest second: a crash between the renames leaves an
  // object whose manifest mismatches, which readers evict and recompile —
  // never serve.
  if (!writeFileAtomic(SoPath, Bytes))
    return fail("cannot install " + SoPath);
  if (!writeFileAtomic(manifestPath(SoPath), contentHash(Bytes) + "\n"))
    return fail("cannot install manifest for " + SoPath);
  // Keep the generated C beside the object for debugging (best effort).
  std::string CPath = SoPath;
  std::string::size_type Dot = CPath.rfind(".so");
  if (!LocalC.empty() && Dot != std::string::npos) {
    CPath.replace(Dot, 3, ".c");
    std::string CSource;
    if (readWholeFile(LocalC, &CSource))
      writeFileAtomic(CPath, CSource);
  }
  return true;
}

void convert::evictCachedObject(const std::string &SoPath,
                                const std::string &Why) {
  EntryLock Lock(SoPath);
  std::remove(SoPath.c_str());
  std::remove(manifestPath(SoPath).c_str());
  DegradationLog::instance().record(Degradation::CacheChecksumEviction,
                                    "evicted " + SoPath + " (" + Why + ")");
}

std::string convert::contentHash(const std::string &Data) {
  return strfmt("%016llx",
                static_cast<unsigned long long>(support::fnv1a(Data)));
}

std::string convert::formatFingerprint(const formats::Format &F) {
  std::string Out = F.Name + "|" + std::to_string(F.SrcOrder) + "|" +
                    remap::printRemap(F.Remap) + "|" +
                    remap::printRemap(F.Inverse) + "|";
  for (const formats::LevelSpec &L : F.Levels)
    Out += strfmt("%s:%d:%d:%d:%d,%d;", formats::levelKindName(L.Kind),
                  L.Dim, L.Unique ? 1 : 0, L.Padded ? 1 : 0, L.AddendDims[0],
                  L.AddendDims[1]);
  Out += F.PaddedVals ? "|padded" : "|dense-vals";
  for (int64_t P : F.StaticParams)
    Out += "|" + std::to_string(P);
  return Out;
}

std::string convert::planKey(const formats::Format &Source,
                             const formats::Format &Target,
                             const codegen::Options &Opts) {
  std::string Key =
      formatFingerprint(Source) + " => " + formatFingerprint(Target) +
      strfmt(" [q%dc%du%dm%d]", Opts.OptimizeQueries ? 1 : 0,
             Opts.CounterReuse ? 1 : 0, Opts.ForceUnseqEdges ? 1 : 0,
             Opts.MaterializeRemap ? 1 : 0);
  // A dims hint changes the generated code only through the assembly
  // strategy it selects (which levels go sorted/hashed/ranked/dedup and
  // whether they share one full-arity sort), so the key carries those bits
  // rather than the raw dims: every huge-dims tensor that lands on the
  // same strategy shares one plan and one JIT object. The bits are
  // re-derived from the *current* environment on every lookup, so flipping
  // CONVGEN_RANK_STRATEGY / CONVGEN_SORT_STRATEGY / CONVGEN_NO_SHARED_SORT
  // / CONVGEN_RANK_DENSE_MAX_BYTES can never hit a stale cached plan.
  // optionsForDims() keeps the hint empty whenever the dims do not affect
  // the plan, so ordinary tensors share the default entry per pair.
  // Planner-forced options always carry their strategy bits (and a forced
  // marker below): a planner decision can never alias the default plan's
  // cached object even at hint-free dims.
  if (!Opts.DimsHint.empty() || Opts.anyForced()) {
    codegen::AssemblyPlan Plan = codegen::planAssembly(Source, Target, Opts);
    Key += " [s";
    for (size_t K = 0; K < Plan.Sorted.size(); ++K)
      Key += Plan.Sorted[K] ? (Plan.Hashed[K] ? 'h' : '1')
                            : (Plan.Ranked[K] ? 'r' : '0');
    if (Plan.SharedSortAnchor > 0)
      Key += ":g" + std::to_string(Plan.SharedSortAnchor);
    // The packed-sort bit alone is not enough: the per-dim bit widths are
    // baked into the emitted pack/unpack code, so dims with different
    // widths must not share an entry.
    if (Plan.PackedSort) {
      Key += ":p";
      for (int64_t W : Plan.PackWidths)
        Key += "." + std::to_string(W);
    }
    if (!Plan.Unsupported.empty()) {
      // Unsupported-at-these-dims plans abort in codegen; keep their keys
      // distinct per dims so the diagnostic mentions the right sizes.
      for (int64_t D : Opts.DimsHint)
        Key += ":" + std::to_string(D);
    }
    Key += "]";
    if (Opts.anyForced())
      Key += strfmt(" [f:r%ds%dg%dS%d]", static_cast<int>(Opts.ForceRank),
                    static_cast<int>(Opts.ForceSort),
                    Opts.ForceNoSharedSort ? 1 : 0,
                    Opts.ForceSortedRanking ? 1 : 0);
  }
  return Key;
}

PlanCache &PlanCache::instance() {
  // Deliberately leaked: request threads (and futures they hold) may
  // still touch the cache during static destruction in exotic shutdown
  // orders; a never-destroyed instance makes instance() safe from any
  // thread at any time.
  static PlanCache *Cache = new PlanCache();
  return *Cache;
}

PlanCache::Shard &PlanCache::shardFor(const std::string &Key) const {
  return Shards[support::fnv1a(Key) % kNumShards];
}

std::string PlanCache::diskCacheDir() {
  const char *Disable = std::getenv("CONVGEN_DISABLE_DISK_CACHE");
  if (Disable && *Disable && std::string(Disable) != "0")
    return "";
  std::string Dir;
  if (const char *Env = std::getenv("CONVGEN_CACHE_DIR")) {
    if (!*Env)
      return "";
    Dir = Env;
  } else if (const char *Xdg = std::getenv("XDG_CACHE_HOME")) {
    Dir = std::string(Xdg) + "/convgen";
  } else if (const char *Home = std::getenv("HOME")) {
    Dir = std::string(Home) + "/.cache/convgen";
  } else {
    Dir = "/tmp/convgen-cache";
  }
  // mkdir -p: create each component, ignoring existing directories.
  for (size_t Slash = Dir.find('/', 1); true;
       Slash = Dir.find('/', Slash + 1)) {
    std::string Prefix =
        Slash == std::string::npos ? Dir : Dir.substr(0, Slash);
    if (!Prefix.empty() && mkdir(Prefix.c_str(), 0755) != 0 &&
        errno != EEXIST)
      return "";
    if (Slash == std::string::npos)
      break;
  }
  return Dir;
}

std::shared_ptr<const codegen::Conversion>
PlanCache::plan(const formats::Format &Source, const formats::Format &Target,
                const codegen::Options &Opts) {
  std::string Key = planKey(Source, Target, Opts);
  Shard &S = shardFor(Key);
  {
    std::shared_lock<std::shared_mutex> Read(S.Mu);
    auto It = S.Plans.find(Key);
    if (It != S.Plans.end()) {
      Stats.PlanHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  // Miss: join or start the key's single flight. Codegen is pure,
  // millisecond-scale compute, so waiters block unboundedly on the future
  // (deadlines bound compiles and queues, not in-process codegen).
  std::shared_ptr<Flight<PlanPtr>> F;
  {
    std::unique_lock<std::shared_mutex> Write(S.Mu);
    auto It = S.Plans.find(Key);
    if (It != S.Plans.end()) {
      Stats.PlanHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
    auto [FlightIt, Leader] =
        S.PlanFlights.emplace(Key, std::shared_ptr<Flight<PlanPtr>>());
    if (Leader)
      FlightIt->second = std::make_shared<Flight<PlanPtr>>();
    F = FlightIt->second;
    if (!Leader) {
      // Coalesced waiter: counted as a hit (the plan exists, in flight),
      // never a miss. Wait outside the lock.
      Stats.PlanHits.fetch_add(1, std::memory_order_relaxed);
      Stats.PlanCoalesced.fetch_add(1, std::memory_order_relaxed);
      Write.unlock();
      return F->Future.get();
    }
  }
  // Leader: generate outside the lock (other shard traffic proceeds), then
  // publish to the map and the waiters' future.
  auto Generated = std::make_shared<const codegen::Conversion>(
      codegen::generateConversion(Source, Target, Opts));
  {
    std::unique_lock<std::shared_mutex> Write(S.Mu);
    S.Plans[Key] = Generated;
    S.PlanFlights.erase(Key);
  }
  Stats.PlanMisses.fetch_add(1, std::memory_order_relaxed);
  F->Promise.set_value(Generated);
  return Generated;
}

StatusOr<std::shared_ptr<const codegen::Conversion>>
PlanCache::tryPlan(const formats::Format &Source,
                   const formats::Format &Target,
                   const codegen::Options &Opts,
                   const support::Deadline &Deadline) {
  if (Deadline.expired()) {
    DegradationLog::instance().record(
        Degradation::DeadlineExceeded,
        "plan request arrived with an expired deadline");
    return Status::error(ErrorCode::DeadlineExceeded,
                         "plan: request deadline expired");
  }
  std::string Why;
  bool Supported = codegen::conversionSupported(Source, Target, Opts, &Why);
  if (!Supported)
    return Status::error(ErrorCode::Unsupported, Why);
  return plan(Source, Target, Opts);
}

StatusOr<std::shared_ptr<jit::JitConversion>>
PlanCache::tryJit(const formats::Format &Source, const formats::Format &Target,
                  const codegen::Options &Opts, const std::string &ExtraFlags,
                  const support::Deadline &Deadline) {
  if (Deadline.expired()) {
    DegradationLog::instance().record(
        Degradation::DeadlineExceeded,
        "jit request arrived with an expired deadline");
    return Status::error(ErrorCode::DeadlineExceeded,
                         "jit: request deadline expired");
  }
  std::string Why;
  bool Supported = codegen::conversionSupported(Source, Target, Opts, &Why);
  if (!Supported)
    return Status::error(ErrorCode::Unsupported, Why);
  // Environment failures below this point degrade inside JitConversion
  // (which then interprets) rather than surfacing as a Status: the handle
  // the caller gets always converts. Only a finite deadline can turn this
  // into an error (DeadlineExceeded).
  return jitImpl(Source, Target, Opts, ExtraFlags, Deadline);
}

std::shared_ptr<jit::JitConversion>
PlanCache::jit(const formats::Format &Source, const formats::Format &Target,
               const codegen::Options &Opts, const std::string &ExtraFlags) {
  StatusOr<JitPtr> R =
      jitImpl(Source, Target, Opts, ExtraFlags, support::Deadline::never());
  // Infinite deadline: jitImpl cannot fail (unsupported pairs abort inside
  // codegen on this unchecked path, as they always have).
  return R.take();
}

StatusOr<PlanCache::JitPtr>
PlanCache::jitImpl(const formats::Format &Source,
                   const formats::Format &Target,
                   const codegen::Options &Opts,
                   const std::string &ExtraFlags,
                   const support::Deadline &Deadline) {
  std::string Key = planKey(Source, Target, Opts) + " !" + ExtraFlags;
  Shard &S = shardFor(Key);
  {
    std::shared_lock<std::shared_mutex> Read(S.Mu);
    auto It = S.Jits.find(Key);
    if (It != S.Jits.end()) {
      Stats.JitHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  // Miss: join or start the key's single flight.
  std::shared_ptr<Flight<JitPtr>> F;
  {
    std::unique_lock<std::shared_mutex> Write(S.Mu);
    auto It = S.Jits.find(Key);
    if (It != S.Jits.end()) {
      Stats.JitHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
    auto [FlightIt, Leader] =
        S.JitFlights.emplace(Key, std::shared_ptr<Flight<JitPtr>>());
    if (Leader)
      FlightIt->second = std::make_shared<Flight<JitPtr>>();
    F = FlightIt->second;
    if (!Leader) {
      Write.unlock();
      // Coalesced waiter: block on the leader's future, bounded by this
      // caller's own deadline (the compile itself keeps running for the
      // leader and everyone more patient). A successful wait counts as a
      // hit, never a miss.
      DegradationLog::instance().record(
          Degradation::SingleFlightCoalesce,
          Source.Name + " -> " + Target.Name);
      if (!Deadline.infinite() &&
          F->Future.wait_until(Deadline.timePoint()) ==
              std::future_status::timeout) {
        DegradationLog::instance().record(
            Degradation::DeadlineExceeded,
            Source.Name + " -> " + Target.Name +
                ": deadline expired waiting on the in-flight compile");
        return Status::error(ErrorCode::DeadlineExceeded,
                             "jit: deadline expired waiting on the "
                             "in-flight compile for " +
                                 Source.Name + " -> " + Target.Name);
      }
      Stats.JitHits.fetch_add(1, std::memory_order_relaxed);
      Stats.JitCoalesced.fetch_add(1, std::memory_order_relaxed);
      return F->Future.get();
    }
  }
  // Leader: build outside the lock. plan() is itself single-flight, so a
  // concurrent Converter construction for the same triple shares the
  // generation too.
  std::shared_ptr<const codegen::Conversion> Plan =
      plan(Source, Target, Opts);
  // The disk key covers everything that determines the binary: the emitted
  // C, the full flag string, the compiler identity (CONVGEN_CC), and the
  // host CPU (-march=native bakes the ISA into the object).
  std::string SoPath;
  std::string Dir = diskCacheDir();
  if (!Dir.empty()) {
    const char *Cc = std::getenv("CONVGEN_CC");
    std::string DiskKey = Plan->cSource() + "\n" +
                          jit::jitEffectiveFlags(ExtraFlags, Opts) + "\n" +
                          (Cc ? Cc : "cc") + "\n" + hostIsaFingerprint();
    SoPath = Dir + "/" + Plan->Func.Name + "-" + contentHash(DiskKey) + ".so";
  }
  auto Compiled = std::make_shared<jit::JitConversion>(*Plan, ExtraFlags,
                                                       SoPath, Deadline);
  {
    std::unique_lock<std::shared_mutex> Write(S.Mu);
    // A handle degraded by *this caller's* deadline is served to this
    // flight's waiters (they were no more patient) but never cached: the
    // environment did not fail, this caller just ran out of time, and the
    // next request should compile for real. Environment-degraded handles
    // are cached — every caller would fail the same way, and re-failing
    // per request would pay the full retry ladder every time.
    if (!Compiled->degradedByRequestDeadline())
      S.Jits[Key] = Compiled;
    S.JitFlights.erase(Key);
  }
  Stats.JitMisses.fetch_add(1, std::memory_order_relaxed);
  if (Compiled->loadedFromCache())
    Stats.DiskHits.fetch_add(1, std::memory_order_relaxed);
  // A healthy native handle with a disk-cache slot is warm-start material:
  // remember enough to describe it in an exported manifest. Degraded
  // handles have no object to preload; deadline-degraded ones were not
  // even cached.
  if (!SoPath.empty() && !Compiled->degraded() &&
      !Compiled->degradedByRequestDeadline())
    registerManifestRecord(Key, Source, Target, Opts, ExtraFlags, SoPath);
  F->Promise.set_value(Compiled);
  return Compiled;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats Out;
  Out.PlanHits = Stats.PlanHits.load(std::memory_order_relaxed);
  Out.PlanMisses = Stats.PlanMisses.load(std::memory_order_relaxed);
  Out.PlanCoalesced = Stats.PlanCoalesced.load(std::memory_order_relaxed);
  Out.JitHits = Stats.JitHits.load(std::memory_order_relaxed);
  Out.JitMisses = Stats.JitMisses.load(std::memory_order_relaxed);
  Out.JitCoalesced = Stats.JitCoalesced.load(std::memory_order_relaxed);
  Out.DiskHits = Stats.DiskHits.load(std::memory_order_relaxed);
  return Out;
}

void PlanCache::clearMemory() {
  for (Shard &S : Shards) {
    std::unique_lock<std::shared_mutex> Write(S.Mu);
    S.Plans.clear();
    S.Jits.clear();
    // Flights stay: their leaders will publish into the cleared maps when
    // they land, and interrupting them would strand their waiters.
  }
  // Manifest records go with the handles they describe, so a cleared cache
  // behaves like a fresh process (tests export before clearing).
  std::lock_guard<std::mutex> Lock(RecordsMu);
  Records.clear();
}

void PlanCache::registerManifestRecord(const std::string &JitKey,
                                       const formats::Format &Source,
                                       const formats::Format &Target,
                                       const codegen::Options &Opts,
                                       const std::string &ExtraFlags,
                                       const std::string &SoPath) {
  ManifestRecord Rec;
  Rec.SrcName = Source.Name;
  Rec.DstName = Target.Name;
  Rec.Opts = Opts;
  Rec.ExtraFlags = ExtraFlags;
  // JitKey is planKey + " !" + ExtraFlags; strip the suffix rather than
  // re-deriving the key (planKey runs the assembly planner per call).
  Rec.PlanKey = JitKey.substr(0, JitKey.size() - ExtraFlags.size() - 2);
  Rec.SoPath = SoPath;
  std::lock_guard<std::mutex> Lock(RecordsMu);
  Records[JitKey] = std::move(Rec);
}

std::string PlanCache::manifestFilePath() {
  if (const char *Env = std::getenv("CONVGEN_MANIFEST")) {
    if (*Env)
      return Env;
  }
  std::string Dir = diskCacheDir();
  return Dir.empty() ? "" : Dir + "/manifest.txt";
}

Status PlanCache::exportManifest(const std::string &Path) {
  std::string Resolved = Path.empty() ? manifestFilePath() : Path;
  if (Resolved.empty())
    return Status::error(ErrorCode::Unavailable,
                         "manifest: disk cache disabled and no "
                         "CONVGEN_MANIFEST path set");
  std::map<std::string, ManifestRecord> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(RecordsMu);
    Snapshot = Records;
  }
  std::string Out = std::string(kManifestHeader) + "\n";
  for (const auto &[JitKey, Rec] : Snapshot) {
    (void)JitKey;
    // Only entries a fresh process can rebuild from names make the file:
    // the formats must round-trip through the standard registry onto the
    // same plan key (custom formats and knob drift since recording fail
    // this and are skipped, not exported broken).
    // Planner-forced plans cannot round-trip through the manifest's
    // compact option encoding (q/c/u/m bits only); a fresh process
    // re-plans and recompiles them on demand instead.
    if (Rec.Opts.anyForced())
      continue;
    std::optional<formats::Format> Src =
        formats::standardFormat(Rec.SrcName);
    std::optional<formats::Format> Dst =
        formats::standardFormat(Rec.DstName);
    if (!Src || !Dst)
      continue;
    if (planKey(*Src, *Dst, Rec.Opts) != Rec.PlanKey)
      continue;
    if (Rec.ExtraFlags.find('\t') != std::string::npos ||
        Rec.ExtraFlags.find('\n') != std::string::npos)
      continue;
    // The object digest comes from the entry's own checksum manifest; an
    // entry whose object (or .sum) is already gone is not exportable.
    std::string Digest;
    if (!readWholeFile(manifestPath(Rec.SoPath), &Digest))
      continue;
    std::string Line = Rec.SrcName + "\t" + Rec.DstName + "\t" +
                       serializeOptBits(Rec.Opts) + "\t" +
                       serializeDims(Rec.Opts.DimsHint) + "\t" +
                       Rec.ExtraFlags + "\t" +
                       environmentHash(Rec.ExtraFlags) + "\t" +
                       contentHash(Rec.PlanKey) + "\t" + Rec.SoPath +
                       "\t" + trim(Digest);
    Out += Line + "\t" + contentHash(Line) + "\n";
  }
  EntryLock Lock(Resolved);
  if (!writeFileAtomic(Resolved, Out))
    return Status::error(ErrorCode::Unavailable,
                         "manifest: cannot write " + Resolved);
  return Status();
}

PreloadStats PlanCache::preloadEager(
    const std::string &ManifestPath) {
  PreloadStats S;
  std::string Contents;
  if (ManifestPath.empty() || !readWholeFile(ManifestPath, &Contents))
    return S; // No manifest: a cold boot, not an error.
  std::vector<std::string> Kept;
  bool Dropped = false;
  std::string::size_type Pos = 0;
  bool First = true;
  bool HeaderOk = false;
  while (Pos <= Contents.size()) {
    std::string::size_type Nl = Contents.find('\n', Pos);
    std::string Line = Contents.substr(
        Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
    Pos = Nl == std::string::npos ? Contents.size() + 1 : Nl + 1;
    if (First) {
      First = false;
      HeaderOk = Line == kManifestHeader;
      if (!HeaderOk) {
        // Unknown version or corrupt header: nothing in the file can be
        // trusted. Drop it wholesale.
        DegradationLog::instance().record(
            Degradation::PreloadEviction,
            "manifest " + ManifestPath + ": bad header, dropped");
        Dropped = true;
        break;
      }
      continue;
    }
    if (Line.empty())
      continue;
    S.Entries++;
    auto Evict = [&](const std::string &Why) {
      S.Evicted++;
      Dropped = true;
      DegradationLog::instance().record(Degradation::PreloadEviction,
                                        "manifest entry evicted: " + Why);
    };
    std::vector<std::string> F = splitTabs(Line);
    if (F.size() != 10) {
      Evict("malformed line (" + std::to_string(F.size()) + " fields)");
      continue;
    }
    std::string Prefix = Line.substr(0, Line.rfind('\t'));
    if (F[9] != contentHash(Prefix)) {
      Evict("line integrity hash mismatch");
      continue;
    }
    std::optional<formats::Format> Src = formats::standardFormat(F[0]);
    std::optional<formats::Format> Dst = formats::standardFormat(F[1]);
    if (!Src || !Dst) {
      Evict("unknown format '" + (Src ? F[1] : F[0]) + "'");
      continue;
    }
    codegen::Options Opts;
    if (!parseOptBits(F[2], &Opts) || !parseDims(F[3], &Opts.DimsHint)) {
      Evict("malformed options for " + F[0] + " -> " + F[1]);
      continue;
    }
    const std::string &ExtraFlags = F[4];
    if (F[5] != environmentHash(ExtraFlags)) {
      Evict(F[0] + " -> " + F[1] +
            ": environment skew (compiler/ISA/flags changed)");
      continue;
    }
    std::string Key = planKey(*Src, *Dst, Opts);
    if (F[6] != contentHash(Key)) {
      Evict(F[0] + " -> " + F[1] +
            ": plan key drift (strategy knobs or codegen changed)");
      continue;
    }
    std::string JitKey = Key + " !" + ExtraFlags;
    Shard &Sh = shardFor(JitKey);
    {
      std::shared_lock<std::shared_mutex> Read(Sh.Mu);
      if (Sh.Jits.count(JitKey)) {
        S.Skipped++;
        Kept.push_back(Line);
        continue;
      }
    }
    StatusOr<PlanPtr> Plan = tryPlan(*Src, *Dst, Opts);
    if (!Plan.ok()) {
      Evict(F[0] + " -> " + F[1] + ": " + Plan.status().message());
      continue;
    }
    std::string Dir = diskCacheDir();
    if (Dir.empty()) {
      Evict("disk cache disabled");
      continue;
    }
    const char *Cc = std::getenv("CONVGEN_CC");
    std::string DiskKey = (*Plan)->cSource() + "\n" +
                          jit::jitEffectiveFlags(ExtraFlags) + "\n" +
                          (Cc ? Cc : "cc") + "\n" + hostIsaFingerprint();
    std::string SoPath =
        Dir + "/" + (*Plan)->Func.Name + "-" + contentHash(DiskKey) + ".so";
    if (SoPath != F[7]) {
      Evict(F[0] + " -> " + F[1] +
            ": recorded object path does not match this environment");
      continue;
    }
    if (!readVerifiedCachedObject(SoPath)) {
      Evict(F[0] + " -> " + F[1] + ": cached object missing or corrupt");
      continue;
    }
    std::string Digest;
    if (!readWholeFile(manifestPath(SoPath), &Digest) ||
        trim(Digest) != F[8]) {
      Evict(F[0] + " -> " + F[1] + ": object digest mismatch");
      continue;
    }
    JitPtr Handle = jit::JitConversion::loadCachedOnly(**Plan, SoPath);
    if (!Handle) {
      Evict(F[0] + " -> " + F[1] + ": cached object failed to load");
      continue;
    }
    {
      std::unique_lock<std::shared_mutex> Write(Sh.Mu);
      if (Sh.Jits.count(JitKey)) {
        // A request raced the preload and built the entry first; its
        // handle wins, ours is discarded.
        S.Skipped++;
        Kept.push_back(Line);
        continue;
      }
      Sh.Jits[JitKey] = Handle;
    }
    registerManifestRecord(JitKey, *Src, *Dst, Opts, ExtraFlags, SoPath);
    DegradationLog::instance().record(Degradation::PreloadHit,
                                      F[0] + " -> " + F[1]);
    S.Loaded++;
    Kept.push_back(Line);
  }
  if (Dropped) {
    // Rewrite without the evicted lines (best-effort; the per-line
    // validation would drop them again next boot regardless).
    std::string Out = std::string(kManifestHeader) + "\n";
    for (const std::string &L : Kept)
      Out += L + "\n";
    EntryLock Lock(ManifestPath);
    writeFileAtomic(ManifestPath, Out);
  }
  return S;
}

PreloadStats PlanCache::preload(
    const std::string &ManifestPath, PreloadMode Mode) {
  if (Mode == PreloadMode::Off)
    return PreloadStats();
  std::string Resolved =
      ManifestPath.empty() ? manifestFilePath() : ManifestPath;
  {
    std::lock_guard<std::mutex> Lock(PreloadMu);
    PreloadStarted = true;
    PreloadDone = false;
  }
  if (Mode == PreloadMode::Eager) {
    PreloadStats S = preloadEager(Resolved);
    {
      std::lock_guard<std::mutex> Lock(PreloadMu);
      PreloadResult = S;
      PreloadDone = true;
    }
    PreloadCv.notify_all();
    return S;
  }
  // Background: a detached warmer thread runs the same pass. Detached
  // because PlanCache is deliberately leaked — there is no destructor to
  // join from; waitForPreload() synchronizes on the done flag instead.
  std::thread([this, Resolved] {
    PreloadStats S = preloadEager(Resolved);
    {
      std::lock_guard<std::mutex> Lock(PreloadMu);
      PreloadResult = S;
      PreloadDone = true;
    }
    PreloadCv.notify_all();
  }).detach();
  return PreloadStats();
}

PreloadStats PlanCache::waitForPreload() {
  std::unique_lock<std::mutex> Lock(PreloadMu);
  if (!PreloadStarted)
    return PreloadStats();
  PreloadCv.wait(Lock, [this] { return PreloadDone; });
  return PreloadResult;
}

void PlanCache::maybePreloadFromEnv() {
  std::call_once(PreloadOnce, [this] {
    const char *Env = std::getenv("CONVGEN_PRELOAD");
    if (!Env || !*Env)
      return;
    std::string Mode = Env;
    if (Mode == "eager")
      preload("", PreloadMode::Eager);
    else if (Mode == "background")
      preload("", PreloadMode::Background);
    // Anything else (including "off") boots cold.
  });
}

//===--------------------------------------------------------------------===//
// Measured per-strategy outcomes (the planner's auto-tuning memory).
//===--------------------------------------------------------------------===//

namespace {
/// Outcome store format version; an unknown header drops the whole file
/// (measurements are advisory — losing them costs re-measurement, never
/// correctness).
const char kOutcomesHeader[] = "convgen-outcomes-v1";
} // namespace

std::string PlanCache::outcomesFilePath() {
  if (const char *Env = std::getenv("CONVGEN_OUTCOMES"))
    return Env; // Empty value = memory-only, by request.
  std::string Dir = diskCacheDir();
  return Dir.empty() ? "" : Dir + "/outcomes.txt";
}

void PlanCache::loadOutcomesLocked() {
  if (OutcomesLoaded)
    return;
  OutcomesLoaded = true;
  std::string Path = outcomesFilePath();
  std::string Contents;
  if (Path.empty() || !readWholeFile(Path, &Contents))
    return; // Cold start: nothing learned yet.
  std::string::size_type Pos = 0;
  bool First = true;
  while (Pos <= Contents.size()) {
    std::string::size_type Nl = Contents.find('\n', Pos);
    std::string Line = Contents.substr(
        Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
    Pos = Nl == std::string::npos ? Contents.size() + 1 : Nl + 1;
    if (First) {
      First = false;
      if (Line != kOutcomesHeader)
        return; // Unknown version or corrupt header: start cold.
      continue;
    }
    if (Line.empty())
      continue;
    std::vector<std::string> F = splitTabs(Line);
    if (F.size() != 5)
      continue; // Torn or foreign line: skip it, keep the rest.
    if (F[4] != contentHash(Line.substr(0, Line.rfind('\t'))))
      continue;
    char *End = nullptr;
    OutcomeRecord Rec;
    unsigned long long Count = std::strtoull(F[1].c_str(), &End, 10);
    if (!End || *End != '\0' || Count == 0)
      continue;
    Rec.Count = Count;
    Rec.TotalSeconds = std::strtod(F[2].c_str(), &End);
    if (!End || *End != '\0' || !(Rec.TotalSeconds >= 0))
      continue;
    Rec.MinSeconds = std::strtod(F[3].c_str(), &End);
    if (!End || *End != '\0' || !(Rec.MinSeconds >= 0))
      continue;
    Outcomes[F[0]] = Rec;
  }
}

void PlanCache::persistOutcomesLocked() {
  std::string Path = outcomesFilePath();
  if (Path.empty())
    return;
  std::string Out = std::string(kOutcomesHeader) + "\n";
  for (const auto &[Key, Rec] : Outcomes) {
    if (Key.find('\t') != std::string::npos ||
        Key.find('\n') != std::string::npos)
      continue;
    std::string Line = Key + "\t" + std::to_string(Rec.Count) + "\t" +
                       strfmt("%.9g", Rec.TotalSeconds) + "\t" +
                       strfmt("%.9g", Rec.MinSeconds);
    Out += Line + "\t" + contentHash(Line) + "\n";
  }
  EntryLock Lock(Path);
  if (!writeFileAtomic(Path, Out))
    DegradationLog::instance().record(
        Degradation::CacheWriteFailure,
        "outcomes: cannot write " + Path);
}

void PlanCache::recordOutcome(const std::string &Key, double Seconds) {
  if (!(Seconds >= 0) || Seconds != Seconds)
    return; // Negative or NaN: a broken clock teaches nothing.
  std::lock_guard<std::mutex> Lock(OutcomesMu);
  loadOutcomesLocked();
  OutcomeRecord &Rec = Outcomes[Key];
  Rec.Count++;
  Rec.TotalSeconds += Seconds;
  Rec.MinSeconds =
      Rec.Count == 1 ? Seconds : std::min(Rec.MinSeconds, Seconds);
  // A key still below the trust threshold flushes immediately: a
  // short-lived process (a CLI run) records only a handful of outcomes,
  // and those early observations are exactly the ones cross-process
  // auto-tuning needs to reach trust. Established keys batch the writes.
  if (Rec.Count <= static_cast<uint64_t>(
                       std::max<int64_t>(1, codegen::knobs().PlannerTrustAfter)) ||
      ++OutcomesSinceFlush >= kOutcomePersistEvery) {
    OutcomesSinceFlush = 0;
    persistOutcomesLocked();
  }
}

bool PlanCache::outcomeFor(const std::string &Key, OutcomeRecord *Out) {
  std::lock_guard<std::mutex> Lock(OutcomesMu);
  loadOutcomesLocked();
  auto It = Outcomes.find(Key);
  if (It == Outcomes.end())
    return false;
  if (Out)
    *Out = It->second;
  return true;
}

void PlanCache::resetOutcomes() {
  std::lock_guard<std::mutex> Lock(OutcomesMu);
  Outcomes.clear();
  OutcomesLoaded = true; // The empty state is authoritative now.
  OutcomesSinceFlush = 0;
  std::string Path = outcomesFilePath();
  if (!Path.empty()) {
    EntryLock Lock2(Path);
    std::remove(Path.c_str());
  }
}
