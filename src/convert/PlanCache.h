//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cache of generated conversion plans and their JIT-compiled
/// shared objects, so obtaining a converter is (nearly) free after the first
/// request for a (source, target, options) triple:
///
///   * codegen::generateConversion results are memoized under a stable
///     fingerprint of the formats and options — repeated Converter
///     construction skips remapping, query compilation, and assembly;
///   * live jit::JitConversion handles are shared under the same key plus
///     the compile flags — repeated JIT requests skip the external C
///     compiler within the process;
///   * compiled shared objects are additionally installed in an on-disk
///     cache keyed by a hash of the emitted C source, the compile flags,
///     and the compiler, so *new* processes skip the external compiler too.
///
/// The on-disk cache is crash-safe under concurrent writers: objects are
/// staged in the cache directory and installed with an atomic rename while
/// holding a per-entry flock, and every entry carries a checksum manifest
/// (<object>.sum) that readers verify before dlopen — N processes sharing
/// one CONVGEN_CACHE_DIR can never serve a torn or stale object. A failed
/// verification evicts the entry (recorded in the DegradationLog) and the
/// object is recompiled.
///
/// Environment knobs:
///   CONVGEN_CACHE_DIR            on-disk cache location (default
///                                $XDG_CACHE_HOME/convgen, then
///                                $HOME/.cache/convgen, then
///                                /tmp/convgen-cache)
///   CONVGEN_DISABLE_DISK_CACHE   any non-"0" value keeps the cache
///                                in-memory only
///   CONVGEN_FAULT                fault injection at the cache-read /
///                                cache-write sites (support/Fault.h)
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CONVERT_PLANCACHE_H
#define CONVGEN_CONVERT_PLANCACHE_H

#include "codegen/Generator.h"
#include "jit/Jit.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace convgen {
namespace convert {

/// Counters exposed for tests and benchmarks.
struct PlanCacheStats {
  uint64_t PlanHits = 0;
  uint64_t PlanMisses = 0;
  uint64_t JitHits = 0;
  uint64_t JitMisses = 0;
  /// Of the JitMisses, how many loaded a shared object from disk instead
  /// of running the external compiler.
  uint64_t DiskHits = 0;
};

class PlanCache {
public:
  /// The process-wide instance. All methods are thread-safe.
  static PlanCache &instance();

  /// The generated conversion plan for the triple, memoized. Aborts on an
  /// unsupported pair (known-good callers); tryPlan is the checked form.
  std::shared_ptr<const codegen::Conversion>
  plan(const formats::Format &Source, const formats::Format &Target,
       const codegen::Options &Opts = codegen::Options());

  /// Checked plan acquisition: an unsupported pair (or pair-at-dims, when
  /// Opts.DimsHint is set) returns ErrorCode::Unsupported with the
  /// planner's diagnostic instead of aborting.
  StatusOr<std::shared_ptr<const codegen::Conversion>>
  tryPlan(const formats::Format &Source, const formats::Format &Target,
          const codegen::Options &Opts = codegen::Options());

  /// A live JIT-compiled conversion for the triple, memoized; compiles at
  /// most once per process and reuses on-disk shared objects across
  /// processes. Aborts on an unsupported pair; environment failures
  /// (failed compile, dlopen) never abort — the returned handle degrades
  /// to bit-exact interpreter execution (JitConversion::degraded()).
  std::shared_ptr<jit::JitConversion>
  jit(const formats::Format &Source, const formats::Format &Target,
      const codegen::Options &Opts = codegen::Options(),
      const std::string &ExtraFlags = "");

  /// Checked JIT acquisition: Unsupported pairs come back as a Status;
  /// environment failures come back as an OK but degraded handle (which
  /// still converts, through the interpreter). Never aborts.
  StatusOr<std::shared_ptr<jit::JitConversion>>
  tryJit(const formats::Format &Source, const formats::Format &Target,
         const codegen::Options &Opts = codegen::Options(),
         const std::string &ExtraFlags = "");

  PlanCacheStats stats() const;

  /// Drops all memoized plans and JIT handles (tests; outstanding
  /// shared_ptrs stay valid). The on-disk cache is untouched.
  void clearMemory();

  /// Resolved on-disk cache directory, created on first use; empty when
  /// the disk cache is disabled or cannot be created.
  static std::string diskCacheDir();

private:
  PlanCache() = default;

  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<const codegen::Conversion>> Plans;
  std::map<std::string, std::shared_ptr<jit::JitConversion>> Jits;
  PlanCacheStats Stats;
};

/// Stable semantic fingerprint of a format: name, canonical order, both
/// remap statements, level specs, padding, and static parameters. Two
/// formats with equal fingerprints generate identical conversion code.
std::string formatFingerprint(const formats::Format &F);

/// Stable key for a (source, target, options) triple.
std::string planKey(const formats::Format &Source,
                    const formats::Format &Target,
                    const codegen::Options &Opts);

/// 64-bit FNV-1a, rendered as 16 hex digits (disk cache file names and
/// the per-entry checksum manifests).
std::string contentHash(const std::string &Data);

//===------------------------------------------------------------------===//
// Crash-safe disk-cache entry management (shared with jit/Jit.cpp).
//===------------------------------------------------------------------===//

/// True when a checksum-verified object exists at \p SoPath: the bytes at
/// SoPath hash to the manifest at SoPath + ".sum". A missing object is a
/// plain miss; a mismatch (torn write, bit rot, a pre-manifest cache) is
/// re-verified under the entry's writer lock — an install may have
/// renamed the object but not yet its manifest — and then evicted, with a
/// CacheChecksumEviction recorded. Honors the cache-read fault site.
bool readVerifiedCachedObject(const std::string &SoPath);

/// Atomically installs \p LocalSo (and \p LocalC beside it, for
/// debugging) at \p SoPath with its checksum manifest, holding an flock
/// on SoPath + ".lock" across both renames so concurrent writers cannot
/// interleave. Best-effort: returns false (recording CacheWriteFailure)
/// on any I/O failure or an injected cache-write fault; the caller keeps
/// serving from its locally compiled object. Readers that race the two
/// renames see a checksum mismatch at worst and recompile — never a torn
/// object.
bool installCachedObject(const std::string &SoPath,
                         const std::string &LocalSo,
                         const std::string &LocalC);

/// Removes \p SoPath and its manifest under the entry lock (used when a
/// verified object still fails to dlopen, e.g. a foreign-ISA leftover).
void evictCachedObject(const std::string &SoPath, const std::string &Why);

} // namespace convert
} // namespace convgen

#endif // CONVGEN_CONVERT_PLANCACHE_H
