//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cache of generated conversion plans and their JIT-compiled
/// shared objects, so obtaining a converter is (nearly) free after the first
/// request for a (source, target, options) triple:
///
///   * codegen::generateConversion results are memoized under a stable
///     fingerprint of the formats and options — repeated Converter
///     construction skips remapping, query compilation, and assembly;
///   * live jit::JitConversion handles are shared under the same key plus
///     the compile flags — repeated JIT requests skip the external C
///     compiler within the process;
///   * compiled shared objects are additionally installed in an on-disk
///     cache keyed by a hash of the emitted C source, the compile flags,
///     and the compiler, so *new* processes skip the external compiler too.
///
/// Environment knobs:
///   CONVGEN_CACHE_DIR            on-disk cache location (default
///                                $XDG_CACHE_HOME/convgen, then
///                                $HOME/.cache/convgen, then
///                                /tmp/convgen-cache)
///   CONVGEN_DISABLE_DISK_CACHE   any non-"0" value keeps the cache
///                                in-memory only
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CONVERT_PLANCACHE_H
#define CONVGEN_CONVERT_PLANCACHE_H

#include "codegen/Generator.h"
#include "jit/Jit.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace convgen {
namespace convert {

/// Counters exposed for tests and benchmarks.
struct PlanCacheStats {
  uint64_t PlanHits = 0;
  uint64_t PlanMisses = 0;
  uint64_t JitHits = 0;
  uint64_t JitMisses = 0;
  /// Of the JitMisses, how many loaded a shared object from disk instead
  /// of running the external compiler.
  uint64_t DiskHits = 0;
};

class PlanCache {
public:
  /// The process-wide instance. All methods are thread-safe.
  static PlanCache &instance();

  /// The generated conversion plan for the triple, memoized.
  std::shared_ptr<const codegen::Conversion>
  plan(const formats::Format &Source, const formats::Format &Target,
       const codegen::Options &Opts = codegen::Options());

  /// A live JIT-compiled conversion for the triple, memoized; compiles at
  /// most once per process and reuses on-disk shared objects across
  /// processes. Requires jit::jitAvailable().
  std::shared_ptr<jit::JitConversion>
  jit(const formats::Format &Source, const formats::Format &Target,
      const codegen::Options &Opts = codegen::Options(),
      const std::string &ExtraFlags = "");

  PlanCacheStats stats() const;

  /// Drops all memoized plans and JIT handles (tests; outstanding
  /// shared_ptrs stay valid). The on-disk cache is untouched.
  void clearMemory();

  /// Resolved on-disk cache directory, created on first use; empty when
  /// the disk cache is disabled or cannot be created.
  static std::string diskCacheDir();

private:
  PlanCache() = default;

  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<const codegen::Conversion>> Plans;
  std::map<std::string, std::shared_ptr<jit::JitConversion>> Jits;
  PlanCacheStats Stats;
};

/// Stable semantic fingerprint of a format: name, canonical order, both
/// remap statements, level specs, padding, and static parameters. Two
/// formats with equal fingerprints generate identical conversion code.
std::string formatFingerprint(const formats::Format &F);

/// Stable key for a (source, target, options) triple.
std::string planKey(const formats::Format &Source,
                    const formats::Format &Target,
                    const codegen::Options &Opts);

/// 64-bit FNV-1a, rendered as 16 hex digits (disk cache file names).
std::string contentHash(const std::string &Data);

} // namespace convert
} // namespace convgen

#endif // CONVGEN_CONVERT_PLANCACHE_H
