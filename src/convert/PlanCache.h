//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cache of generated conversion plans and their JIT-compiled
/// shared objects, so obtaining a converter is (nearly) free after the first
/// request for a (source, target, options) triple:
///
///   * codegen::generateConversion results are memoized under a stable
///     fingerprint of the formats and options — repeated Converter
///     construction skips remapping, query compilation, and assembly;
///   * live jit::JitConversion handles are shared under the same key plus
///     the compile flags — repeated JIT requests skip the external C
///     compiler within the process;
///   * compiled shared objects are additionally installed in an on-disk
///     cache keyed by a hash of the emitted C source, the compile flags,
///     and the compiler, so *new* processes skip the external compiler too.
///
/// The on-disk cache is crash-safe under concurrent writers: objects are
/// staged in the cache directory and installed with an atomic rename while
/// holding a per-entry flock, and every entry carries a checksum manifest
/// (<object>.sum) that readers verify before dlopen — N processes sharing
/// one CONVGEN_CACHE_DIR can never serve a torn or stale object. A failed
/// verification evicts the entry (recorded in the DegradationLog) and the
/// object is recompiled.
///
/// Environment knobs:
///   CONVGEN_CACHE_DIR            on-disk cache location (default
///                                $XDG_CACHE_HOME/convgen, then
///                                $HOME/.cache/convgen, then
///                                /tmp/convgen-cache)
///   CONVGEN_DISABLE_DISK_CACHE   any non-"0" value keeps the cache
///                                in-memory only
///   CONVGEN_FAULT                fault injection at the cache-read /
///                                cache-write sites (support/Fault.h)
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CONVERT_PLANCACHE_H
#define CONVGEN_CONVERT_PLANCACHE_H

#include "codegen/Generator.h"
#include "jit/Jit.h"
#include "support/Deadline.h"
#include "support/Status.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace convgen {
namespace convert {

/// Counters exposed for tests and benchmarks. Maintained as relaxed
/// atomics, so stats() is safe (and each field exact) when read from
/// concurrent request threads; the fields are not sampled in one instant,
/// but each is monotone, so before/after deltas bracket the truth.
struct PlanCacheStats {
  uint64_t PlanHits = 0;
  uint64_t PlanMisses = 0;
  /// Of the PlanHits, how many piggybacked on another thread's in-flight
  /// generation instead of finding a completed entry.
  uint64_t PlanCoalesced = 0;
  uint64_t JitHits = 0;
  uint64_t JitMisses = 0;
  /// Of the JitHits, how many piggybacked on another thread's in-flight
  /// compile (single-flight waiters; counted as hits, never misses).
  uint64_t JitCoalesced = 0;
  /// Of the JitMisses, how many loaded a shared object from disk instead
  /// of running the external compiler.
  uint64_t DiskHits = 0;
};

/// How preload() acquires the manifest's entries.
enum class PreloadMode {
  Off,        ///< Do nothing (the CONVGEN_PRELOAD=off default).
  Eager,      ///< Validate and dlopen every entry before returning.
  Background, ///< Return immediately; a detached warmer thread validates
              ///< and dlopens. waitForPreload() joins the result.
};

/// Accumulated wall-clock measurements of one conversion-path candidate
/// (keyed by the planner's outcome key: pair + input-shape bucket +
/// candidate label). The planner trusts these over its analytic cost
/// model after CONVGEN_PLANNER_TRUST_AFTER observations.
struct OutcomeRecord {
  uint64_t Count = 0;
  double TotalSeconds = 0;
  double MinSeconds = 0;
  double meanSeconds() const { return Count ? TotalSeconds / Count : 0; }
};

/// Outcome counters of one preload() pass.
struct PreloadStats {
  uint64_t Entries = 0; ///< Manifest lines examined.
  uint64_t Loaded = 0;  ///< Entries revalidated, dlopen'd, and installed
                        ///< into the in-memory cache (preload-hit).
  uint64_t Evicted = 0; ///< Entries that failed revalidation — corrupt
                        ///< line, env/version skew, checksum mismatch,
                        ///< failed load — dropped, never served
                        ///< (preload-evict).
  uint64_t Skipped = 0; ///< Entries already warm in memory.
};

/// Thread-safety contract: every method may be called from any number of
/// request threads concurrently. The cache is sharded by key hash; the hit
/// path takes only a per-shard reader lock over an immutable shared_ptr
/// entry, so warm lookups from N threads proceed in parallel. Misses are
/// single-flight: concurrent requests for the same key coalesce onto one
/// in-flight codegen/compile — the first requester (the leader) does the
/// work synchronously while the rest block on a per-key shared future
/// (bounded by their deadline, when they have one) and are counted as
/// hits, never misses. Exactly one compile per unique key, under any
/// concurrent-miss storm.
class PlanCache {
public:
  /// The process-wide instance. All methods are thread-safe.
  static PlanCache &instance();

  /// The generated conversion plan for the triple, memoized. Aborts on an
  /// unsupported pair (known-good callers); tryPlan is the checked form.
  std::shared_ptr<const codegen::Conversion>
  plan(const formats::Format &Source, const formats::Format &Target,
       const codegen::Options &Opts = codegen::Options());

  /// Checked plan acquisition: an unsupported pair (or pair-at-dims, when
  /// Opts.DimsHint is set) returns ErrorCode::Unsupported with the
  /// planner's diagnostic instead of aborting. An already expired
  /// \p Deadline returns DeadlineExceeded without generating anything;
  /// in-process codegen itself is never interrupted (it is pure
  /// millisecond-scale compute — only *waiting* is deadline-bounded).
  StatusOr<std::shared_ptr<const codegen::Conversion>>
  tryPlan(const formats::Format &Source, const formats::Format &Target,
          const codegen::Options &Opts = codegen::Options(),
          const support::Deadline &Deadline = {});

  /// A live JIT-compiled conversion for the triple, memoized; compiles at
  /// most once per process and reuses on-disk shared objects across
  /// processes. Aborts on an unsupported pair; environment failures
  /// (failed compile, dlopen) never abort — the returned handle degrades
  /// to bit-exact interpreter execution (JitConversion::degraded()).
  std::shared_ptr<jit::JitConversion>
  jit(const formats::Format &Source, const formats::Format &Target,
      const codegen::Options &Opts = codegen::Options(),
      const std::string &ExtraFlags = "");

  /// Checked JIT acquisition: Unsupported pairs come back as a Status;
  /// environment failures come back as an OK but degraded handle (which
  /// still converts, through the interpreter). \p Deadline bounds the
  /// caller's waiting: an expired deadline fails fast, a coalesced waiter
  /// that times out on the in-flight compile gets DeadlineExceeded (the
  /// compile itself continues for the leader), and a leader's compile wait
  /// is bounded by min(CONVGEN_COMPILE_TIMEOUT_MS, deadline remaining). A
  /// handle degraded *by the caller's deadline* is returned but not
  /// cached — the next, more patient, caller recompiles; a handle degraded
  /// by the environment (every caller would fail identically) is cached.
  StatusOr<std::shared_ptr<jit::JitConversion>>
  tryJit(const formats::Format &Source, const formats::Format &Target,
         const codegen::Options &Opts = codegen::Options(),
         const std::string &ExtraFlags = "",
         const support::Deadline &Deadline = {});

  /// A consistent-enough snapshot for concurrent readers (see
  /// PlanCacheStats).
  PlanCacheStats stats() const;

  /// Drops all memoized plans and JIT handles (tests; outstanding
  /// shared_ptrs stay valid). In-flight builds are not interrupted; they
  /// repopulate their entry when they land. The on-disk cache is
  /// untouched.
  void clearMemory();

  /// Resolved on-disk cache directory, created on first use; empty when
  /// the disk cache is disabled or cannot be created.
  static std::string diskCacheDir();

  //===----------------------------------------------------------------===//
  // Warm-start: manifest export on the way down, preload on the way up.
  //===----------------------------------------------------------------===//

  /// Resolved warm-start manifest path: CONVGEN_MANIFEST when set,
  /// otherwise <diskCacheDir()>/manifest.txt; empty when the disk cache is
  /// disabled and no explicit path is set.
  static std::string manifestFilePath();

  /// Persists a warm-start manifest describing every standard-format JIT
  /// entry this process compiled or loaded: plan key + strategy bits,
  /// extra compile flags, an environment hash (effective flags, compiler
  /// identity, host ISA), the cached object's path and content digest, and
  /// a per-line integrity hash. Written atomically under the entry flock
  /// (crash-safe, like object installs). Entries whose formats are not in
  /// the standard registry, or whose plan key no longer matches the
  /// current strategy knobs, are skipped — preload could never revalidate
  /// them. \p Path defaults to manifestFilePath().
  Status exportManifest(const std::string &Path = "");

  /// Re-validates and dlopens every manifest entry so a restarted server's
  /// first requests hit warm. Per entry, in order: line integrity hash,
  /// environment hash (compiler/ISA/flags — version skew), plan-key
  /// recomputation from the current strategy knobs, object checksum, and
  /// recorded-vs-actual object digest must all pass before
  /// jit::JitConversion::loadCachedOnly installs the handle; any failure
  /// evicts the entry (DegradationLog preload-evict), never serves it, and
  /// the external compiler is never invoked. The manifest is rewritten
  /// without the evicted lines. Background mode returns immediately with
  /// Entries=0 and runs the same pass on a detached warmer thread;
  /// waitForPreload() joins it.
  PreloadStats preload(const std::string &ManifestPath = "",
                       PreloadMode Mode = PreloadMode::Eager);

  /// Blocks until a Background preload (if any was started) finishes and
  /// returns its stats; returns zeroes immediately when none was started.
  PreloadStats waitForPreload();

  /// One-shot boot hook honoring CONVGEN_PRELOAD=off|eager|background
  /// (default off): the first call may run preload(), every later call is
  /// a no-op. ConversionService construction invokes this.
  void maybePreloadFromEnv();

  //===----------------------------------------------------------------===//
  // Measured per-strategy outcomes (the planner's auto-tuning memory),
  // persisted alongside the warm-start manifest.
  //===----------------------------------------------------------------===//

  /// Folds one measured conversion (wall-clock \p Seconds) into \p Key's
  /// OutcomeRecord. Thread-safe; the store is loaded from
  /// outcomesFilePath() on first touch and rewritten (atomically, under
  /// the entry flock) every few records so restarts keep what was
  /// learned. Keys containing tabs or newlines are recorded in memory but
  /// never persisted. Non-finite or negative measurements are ignored.
  void recordOutcome(const std::string &Key, double Seconds);

  /// Reads \p Key's record into \p Out; false when nothing was recorded.
  bool outcomeFor(const std::string &Key, OutcomeRecord *Out);

  /// Drops every outcome record, in memory and on disk (tests, and the
  /// documented operator reset).
  void resetOutcomes();

  /// Where outcomes persist: CONVGEN_OUTCOMES when set (empty value =
  /// memory-only), else <diskCacheDir()>/outcomes.txt, else "" (memory-
  /// only) when the disk cache is disabled.
  static std::string outcomesFilePath();

private:
  PlanCache() = default;

  using PlanPtr = std::shared_ptr<const codegen::Conversion>;
  using JitPtr = std::shared_ptr<jit::JitConversion>;

  /// One in-flight build: the leader fulfills Promise exactly once;
  /// waiters block on Future (copied under the shard lock).
  template <typename V> struct Flight {
    std::promise<V> Promise;
    std::shared_future<V> Future;
    Flight() : Future(Promise.get_future().share()) {}
  };

  /// 16 shards keep unrelated keys off each other's locks; within a
  /// shard, shared_mutex keeps the (overwhelmingly common) hit path
  /// reader-parallel. Entries are immutable shared_ptrs — publication
  /// happens-before any reader sees the pointer via the shard lock.
  struct Shard {
    mutable std::shared_mutex Mu;
    std::map<std::string, PlanPtr> Plans;
    std::map<std::string, JitPtr> Jits;
    std::map<std::string, std::shared_ptr<Flight<PlanPtr>>> PlanFlights;
    std::map<std::string, std::shared_ptr<Flight<JitPtr>>> JitFlights;
  };
  static constexpr int kNumShards = 16;

  Shard &shardFor(const std::string &Key) const;

  /// The single-flight JIT path shared by jit() and tryJit(); the only
  /// error a finite \p Deadline can produce is DeadlineExceeded.
  StatusOr<JitPtr> jitImpl(const formats::Format &Source,
                           const formats::Format &Target,
                           const codegen::Options &Opts,
                           const std::string &ExtraFlags,
                           const support::Deadline &Deadline);

  mutable std::array<Shard, kNumShards> Shards;

  /// What exportManifest() needs to describe one JIT entry so preload()
  /// can rebuild and revalidate it in a fresh process. Registered on the
  /// leader path of jitImpl for non-degraded handles with a disk-cache
  /// slot; keyed by the in-memory JIT key.
  struct ManifestRecord {
    std::string SrcName;
    std::string DstName;
    codegen::Options Opts; // DimsHint included (strategy-bit recomputation)
    std::string ExtraFlags;
    std::string PlanKey; // as recorded — export skips on knob drift
    std::string SoPath;
  };
  mutable std::mutex RecordsMu;
  std::map<std::string, ManifestRecord> Records;

  /// Result slot of the background warmer thread (the thread is detached —
  /// PlanCache is deliberately leaked, so joinable members would terminate
  /// at exit).
  std::mutex PreloadMu;
  std::condition_variable PreloadCv;
  bool PreloadStarted = false;
  bool PreloadDone = false;
  PreloadStats PreloadResult;
  std::once_flag PreloadOnce;

  void registerManifestRecord(const std::string &JitKey,
                              const formats::Format &Source,
                              const formats::Format &Target,
                              const codegen::Options &Opts,
                              const std::string &ExtraFlags,
                              const std::string &SoPath);

  /// The eager validation pass preload() and the warmer thread share.
  PreloadStats preloadEager(const std::string &ManifestPath);

  /// Outcome store (see recordOutcome). Guarded by OutcomesMu; lazily
  /// loaded from disk on first touch, rewritten every
  /// kOutcomePersistEvery records.
  mutable std::mutex OutcomesMu;
  std::map<std::string, OutcomeRecord> Outcomes;
  bool OutcomesLoaded = false;
  uint64_t OutcomesSinceFlush = 0;
  static constexpr uint64_t kOutcomePersistEvery = 8;
  void loadOutcomesLocked();
  void persistOutcomesLocked();

  struct Counters {
    std::atomic<uint64_t> PlanHits{0};
    std::atomic<uint64_t> PlanMisses{0};
    std::atomic<uint64_t> PlanCoalesced{0};
    std::atomic<uint64_t> JitHits{0};
    std::atomic<uint64_t> JitMisses{0};
    std::atomic<uint64_t> JitCoalesced{0};
    std::atomic<uint64_t> DiskHits{0};
  };
  mutable Counters Stats;
};

/// Stable semantic fingerprint of a format: name, canonical order, both
/// remap statements, level specs, padding, and static parameters. Two
/// formats with equal fingerprints generate identical conversion code.
std::string formatFingerprint(const formats::Format &F);

/// Stable key for a (source, target, options) triple.
std::string planKey(const formats::Format &Source,
                    const formats::Format &Target,
                    const codegen::Options &Opts);

/// 64-bit FNV-1a, rendered as 16 hex digits (disk cache file names and
/// the per-entry checksum manifests).
std::string contentHash(const std::string &Data);

//===------------------------------------------------------------------===//
// Crash-safe disk-cache entry management (shared with jit/Jit.cpp).
//===------------------------------------------------------------------===//

/// True when a checksum-verified object exists at \p SoPath: the bytes at
/// SoPath hash to the manifest at SoPath + ".sum". A missing object is a
/// plain miss; a mismatch (torn write, bit rot, a pre-manifest cache) is
/// re-verified under the entry's writer lock — an install may have
/// renamed the object but not yet its manifest — and then evicted, with a
/// CacheChecksumEviction recorded. Honors the cache-read fault site.
bool readVerifiedCachedObject(const std::string &SoPath);

/// Atomically installs \p LocalSo (and \p LocalC beside it, for
/// debugging) at \p SoPath with its checksum manifest, holding an flock
/// on SoPath + ".lock" across both renames so concurrent writers cannot
/// interleave. Best-effort: returns false (recording CacheWriteFailure)
/// on any I/O failure or an injected cache-write fault; the caller keeps
/// serving from its locally compiled object. Readers that race the two
/// renames see a checksum mismatch at worst and recompile — never a torn
/// object.
bool installCachedObject(const std::string &SoPath,
                         const std::string &LocalSo,
                         const std::string &LocalC);

/// Removes \p SoPath and its manifest under the entry lock (used when a
/// verified object still fails to dlopen, e.g. a foreign-ISA leftover).
void evictCachedObject(const std::string &SoPath, const std::string &Why);

} // namespace convert
} // namespace convgen

#endif // CONVGEN_CONVERT_PLANCACHE_H
