//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing conversion API: compile once per (source, target)
/// format pair, then convert tensors. This header's Converter executes
/// through the reference interpreter; the JIT backend (jit/Jit.h) runs the
/// same generated routine as native code.
///
/// \code
///   Converter Conv(formats::makeCOO(), formats::makeCSR());
///   tensor::SparseTensor Csr = Conv.run(Coo);
///   std::fputs(Conv.conversion().pretty().c_str(), stdout);
/// \endcode
///
/// Ownership: run() never aliases its input — the interpreter binds copies
/// of the source arrays and the result owns fresh storage. The JIT backend
/// is the zero-copy path: it binds source arrays by pointer and the result
/// tensor adopts the routine's malloc'd output buffers (see jit/Jit.h for
/// the full contract).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CONVERT_CONVERTER_H
#define CONVGEN_CONVERT_CONVERTER_H

#include "codegen/Generator.h"
#include "ir/Interpreter.h"
#include "support/Deadline.h"
#include "support/Status.h"
#include "tensor/SparseTensor.h"

#include <memory>

namespace convgen {
namespace convert {

class Converter {
public:
  /// Obtains the generated routine through the process-wide PlanCache:
  /// the first Converter for a (source, target, options) triple runs
  /// codegen, later ones share its plan. Aborts on an unsupported pair;
  /// tryCreate is the checked form.
  Converter(formats::Format Source, formats::Format Target,
            codegen::Options Opts = codegen::Options());

  /// Checked construction: an unsupported pair comes back as
  /// ErrorCode::Unsupported with the planner's diagnostic instead of
  /// aborting.
  static StatusOr<Converter> tryCreate(formats::Format Source,
                                       formats::Format Target,
                                       codegen::Options Opts =
                                           codegen::Options());

  const codegen::Conversion &conversion() const { return *Conv; }

  /// Converts \p In (which must be in the source format) by interpreting
  /// the generated routine. The result is fully validated in debug use via
  /// SparseTensor::validate by the caller if desired. Aborts on request
  /// errors; tryRun is the checked form.
  tensor::SparseTensor run(const tensor::SparseTensor &In) const;

  /// Checked conversion: a tensor in the wrong format, an unsorted source
  /// where the plan requires order, or dimensions no plan supports come
  /// back as a Status instead of aborting. \p Deadline (optional) is
  /// checked at the phase boundaries — on entry and after dims-specialized
  /// plan acquisition — and returns DeadlineExceeded when expired; the
  /// interpreter run itself, once started, completes (in-process compute
  /// is never preempted, only waiting is bounded).
  StatusOr<tensor::SparseTensor>
  tryRun(const tensor::SparseTensor &In,
         const support::Deadline &Deadline = {}) const;

private:
  explicit Converter(std::shared_ptr<const codegen::Conversion> Plan)
      : Conv(std::move(Plan)) {}

  std::shared_ptr<const codegen::Conversion> Conv;
};

/// Binds \p In's arrays/dims/params as interpreter inputs under the "A"
/// naming convention (shared with the JIT runner's marshalling).
void bindSourceTensor(ir::Interpreter &Interp, const tensor::SparseTensor &In);

/// Enforces the plan's source-order requirement (Conversion's
/// LexCheckLevels): returns ErrorCode::InvalidArgument with a diagnostic
/// when \p In's leading levels are not lexicographically sorted but the
/// routine's dedup assembly assumes they are. Shared by the interpreter
/// and JIT runners.
Status checkSourceOrder(const codegen::Conversion &Conv,
                        const tensor::SparseTensor &In);

/// Assembles the output tensor from interpreter yields.
tensor::SparseTensor collectTargetTensor(const formats::Format &Target,
                                         const std::vector<int64_t> &Dims,
                                         ir::RunResult &Result);

} // namespace convert
} // namespace convgen

#endif // CONVGEN_CONVERT_CONVERTER_H
