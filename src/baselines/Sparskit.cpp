//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C++ ports of SPARSKIT's FORMATS module conversion routines (Saad,
/// "SPARSKIT: a basic tool kit for sparse matrix computations", v2).
/// Algorithmic structure follows the Fortran sources; array indexing is
/// rebased to 0.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "support/Assert.h"

#include <cstdlib>
#include <cstring>

using namespace convgen;
using namespace convgen::baselines;

namespace {

int32_t *allocI32(int64_t N) {
  return static_cast<int32_t *>(std::malloc(sizeof(int32_t) *
                                            static_cast<size_t>(N > 0 ? N : 1)));
}

double *allocF64(int64_t N) {
  return static_cast<double *>(
      std::malloc(sizeof(double) * static_cast<size_t>(N > 0 ? N : 1)));
}

} // namespace

void RawCsr::release() {
  std::free(Pos);
  std::free(Crd);
  std::free(Vals);
  Pos = Crd = nullptr;
  Vals = nullptr;
}

void RawDia::release() {
  std::free(Offsets);
  std::free(Diag);
  Offsets = nullptr;
  Diag = nullptr;
}

void RawEll::release() {
  std::free(JCoef);
  std::free(Coef);
  JCoef = nullptr;
  Coef = nullptr;
}

// SPARSKIT coocsr: histogram row counts into iao, prefix-sum, scatter with
// cursor stored in iao, then shift iao back.
RawCsr baselines::skitCooCsr(const RawCoo &A) {
  RawCsr B;
  B.Rows = A.Rows;
  B.Cols = A.Cols;
  B.Pos = allocI32(A.Rows + 1);
  B.Crd = allocI32(A.Nnz);
  B.Vals = allocF64(A.Nnz);
  int32_t *Pos = B.Pos;
  std::memset(Pos, 0, sizeof(int32_t) * static_cast<size_t>(A.Rows + 1));
  for (int64_t P = 0; P < A.Nnz; ++P)
    ++Pos[A.RowIdx[P]];
  int32_t Cum = 0;
  for (int64_t I = 0; I <= A.Rows; ++I) {
    int32_t Count = Pos[I];
    Pos[I] = Cum;
    Cum += Count;
  }
  for (int64_t P = 0; P < A.Nnz; ++P) {
    int32_t I = A.RowIdx[P];
    int32_t Slot = Pos[I];
    B.Crd[Slot] = A.ColIdx[P];
    B.Vals[Slot] = A.Vals[P];
    Pos[I] = Slot + 1;
  }
  for (int64_t I = A.Rows; I > 0; --I)
    Pos[I] = Pos[I - 1];
  Pos[0] = 0;
  return B;
}

// SPARSKIT csrcsc (Gustavson's permuted transposition).
RawCsr baselines::skitCsrCsc(const RawCsr &A) {
  RawCsr B;
  B.Rows = A.Cols; // transpose
  B.Cols = A.Rows;
  int64_t Nnz = A.nnz();
  B.Pos = allocI32(A.Cols + 1);
  B.Crd = allocI32(Nnz);
  B.Vals = allocF64(Nnz);
  std::memset(B.Pos, 0, sizeof(int32_t) * static_cast<size_t>(A.Cols + 1));
  for (int64_t P = 0; P < Nnz; ++P)
    ++B.Pos[A.Crd[P]];
  int32_t Cum = 0;
  for (int64_t J = 0; J <= A.Cols; ++J) {
    int32_t Count = B.Pos[J];
    B.Pos[J] = Cum;
    Cum += Count;
  }
  for (int64_t I = 0; I < A.Rows; ++I)
    for (int32_t P = A.Pos[I]; P < A.Pos[I + 1]; ++P) {
      int32_t J = A.Crd[P];
      int32_t Slot = B.Pos[J];
      B.Crd[Slot] = static_cast<int32_t>(I);
      B.Vals[Slot] = A.Vals[P];
      B.Pos[J] = Slot + 1;
    }
  for (int64_t J = A.Cols; J > 0; --J)
    B.Pos[J] = B.Pos[J - 1];
  B.Pos[0] = 0;
  return B;
}

// SPARSKIT csrdia with idiag = all nonzero diagonals. Follows the Fortran
// structure: infdia-style distance counts, then the repeated-max selection
// scan over all 2n-1 candidate diagonals per selected diagonal — the
// inefficiency §7.2 measures — then a row-wise fill of the padded output.
RawDia baselines::skitCsrDia(const RawCsr &A) {
  int64_t Span = A.Rows + A.Cols - 1;
  int32_t *Dist = allocI32(Span);
  std::memset(Dist, 0, sizeof(int32_t) * static_cast<size_t>(Span));
  int64_t NDiag = 0;
  for (int64_t I = 0; I < A.Rows; ++I)
    for (int32_t P = A.Pos[I]; P < A.Pos[I + 1]; ++P) {
      int64_t K = A.Crd[P] - I + (A.Rows - 1);
      if (Dist[K] == 0)
        ++NDiag;
      ++Dist[K];
    }

  RawDia B;
  B.Rows = A.Rows;
  B.Cols = A.Cols;
  B.NDiag = NDiag;
  B.Offsets = allocI32(NDiag);
  // Selection: repeatedly scan all 2n-1 counts for the current maximum
  // (SPARSKIT keeps the diagonals sorted by density, not by offset).
  int32_t *Rank = allocI32(Span); // offset+n-1 -> selected slot, or -1
  for (int64_t K = 0; K < Span; ++K)
    Rank[K] = -1;
  for (int64_t S = 0; S < NDiag; ++S) {
    int64_t Best = -1;
    int32_t BestCount = 0;
    for (int64_t K = 0; K < Span; ++K)
      if (Dist[K] > BestCount) {
        BestCount = Dist[K];
        Best = K;
      }
    CONVGEN_ASSERT(Best >= 0, "diagonal selection ran out of candidates");
    B.Offsets[S] = static_cast<int32_t>(Best - (A.Rows - 1));
    Rank[Best] = static_cast<int32_t>(S);
    Dist[Best] = 0;
  }

  B.Diag = allocF64(NDiag * A.Rows);
  // SPARSKIT zero-fills the dense diagonal array before scattering.
  std::memset(B.Diag, 0,
              sizeof(double) * static_cast<size_t>(NDiag * A.Rows));
  // The Fortran fill loop locates each element's diagonal by scanning the
  // selected-offset list (`do jj=1,idiag / if (l.eq.ioff(jj))`): a linear
  // membership test per nonzero, with no inverse-permutation array. This
  // is the second inefficiency behind Table 3's csr_dia column.
  for (int64_t I = 0; I < A.Rows; ++I)
    for (int32_t P = A.Pos[I]; P < A.Pos[I + 1]; ++P) {
      int32_t L = static_cast<int32_t>(A.Crd[P] - I);
      for (int64_t S = 0; S < NDiag; ++S)
        if (B.Offsets[S] == L) {
          B.Diag[S * A.Rows + I] = A.Vals[P];
          break;
        }
    }
  std::free(Dist);
  std::free(Rank);
  return B;
}

// SPARSKIT csrell (ITPACK ELLPACK): the caller allocates coef/jcoef, and
// the routine initializes them in a separate pass before filling — the
// extra traffic §7.2 attributes SPARSKIT's csr_ell slowdown to.
RawEll baselines::skitCsrEll(const RawCsr &A) {
  RawEll B;
  B.Rows = A.Rows;
  B.Cols = A.Cols;
  int64_t NCMax = 0;
  for (int64_t I = 0; I < A.Rows; ++I)
    NCMax = std::max<int64_t>(NCMax, A.Pos[I + 1] - A.Pos[I]);
  B.NCMax = NCMax;
  B.JCoef = allocI32(NCMax * A.Rows);
  B.Coef = allocF64(NCMax * A.Rows);
  // Separate initialization pass (csrell's "initialize coef, jcoef").
  for (int64_t P = 0; P < NCMax * A.Rows; ++P) {
    B.Coef[P] = 0.0;
    B.JCoef[P] = 0;
  }
  for (int64_t I = 0; I < A.Rows; ++I) {
    int64_t K = 0;
    for (int32_t P = A.Pos[I]; P < A.Pos[I + 1]; ++P, ++K) {
      B.JCoef[K * A.Rows + I] = A.Crd[P];
      B.Coef[K * A.Rows + I] = A.Vals[P];
    }
  }
  return B;
}
