//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MKL-like conversion variants. Intel MKL is closed source; these stand-ins
/// follow its documented interfaces (mkl_?csrcoo / mkl_?csrcsc / mkl_?csrdia
/// with job arrays) and typical auxiliary-array style: separate cursor
/// arrays rather than SPARSKIT's in-place pos-shift trick, which costs the
/// extra memory traffic that Table 3 shows for MKL on coo_csr/csr_csc.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace convgen;
using namespace convgen::baselines;

namespace {

int32_t *allocI32(int64_t N) {
  return static_cast<int32_t *>(std::malloc(sizeof(int32_t) *
                                            static_cast<size_t>(N > 0 ? N : 1)));
}

double *allocF64(int64_t N) {
  return static_cast<double *>(
      std::malloc(sizeof(double) * static_cast<size_t>(N > 0 ? N : 1)));
}

} // namespace

RawCsr baselines::mklCooCsr(const RawCoo &A) {
  RawCsr B;
  B.Rows = A.Rows;
  B.Cols = A.Cols;
  B.Pos = allocI32(A.Rows + 1);
  B.Crd = allocI32(A.Nnz);
  B.Vals = allocF64(A.Nnz);
  std::memset(B.Pos, 0, sizeof(int32_t) * static_cast<size_t>(A.Rows + 1));
  for (int64_t P = 0; P < A.Nnz; ++P)
    ++B.Pos[A.RowIdx[P] + 1];
  for (int64_t I = 0; I < A.Rows; ++I)
    B.Pos[I + 1] += B.Pos[I];
  // Separate cursor array (keeps pos untouched; one more N-sized stream).
  int32_t *Cursor = allocI32(A.Rows);
  std::memcpy(Cursor, B.Pos, sizeof(int32_t) * static_cast<size_t>(A.Rows));
  for (int64_t P = 0; P < A.Nnz; ++P) {
    int32_t I = A.RowIdx[P];
    int32_t Slot = Cursor[I]++;
    B.Crd[Slot] = A.ColIdx[P];
    B.Vals[Slot] = A.Vals[P];
  }
  std::free(Cursor);
  return B;
}

RawCsr baselines::mklCsrCsc(const RawCsr &A) {
  RawCsr B;
  B.Rows = A.Cols;
  B.Cols = A.Rows;
  int64_t Nnz = A.nnz();
  B.Pos = allocI32(A.Cols + 1);
  B.Crd = allocI32(Nnz);
  B.Vals = allocF64(Nnz);
  std::memset(B.Pos, 0, sizeof(int32_t) * static_cast<size_t>(A.Cols + 1));
  for (int64_t P = 0; P < Nnz; ++P)
    ++B.Pos[A.Crd[P] + 1];
  for (int64_t J = 0; J < A.Cols; ++J)
    B.Pos[J + 1] += B.Pos[J];
  int32_t *Cursor = allocI32(A.Cols);
  std::memcpy(Cursor, B.Pos, sizeof(int32_t) * static_cast<size_t>(A.Cols));
  for (int64_t I = 0; I < A.Rows; ++I)
    for (int32_t P = A.Pos[I]; P < A.Pos[I + 1]; ++P) {
      int32_t Slot = Cursor[A.Crd[P]]++;
      B.Crd[Slot] = static_cast<int32_t>(I);
      B.Vals[Slot] = A.Vals[P];
    }
  std::free(Cursor);
  return B;
}

RawDia baselines::mklCsrDia(const RawCsr &A) {
  // Distance histogram, offset-sorted selection through a full scan of the
  // 2n-1 candidates (job-style interface materializes all diagonals), and
  // a separately zeroed dense fill.
  int64_t Span = A.Rows + A.Cols - 1;
  int32_t *Dist = allocI32(Span);
  std::memset(Dist, 0, sizeof(int32_t) * static_cast<size_t>(Span));
  for (int64_t I = 0; I < A.Rows; ++I)
    for (int32_t P = A.Pos[I]; P < A.Pos[I + 1]; ++P)
      ++Dist[A.Crd[P] - I + (A.Rows - 1)];

  RawDia B;
  B.Rows = A.Rows;
  B.Cols = A.Cols;
  int32_t *Rank = allocI32(Span);
  int64_t NDiag = 0;
  // One scan per selected diagonal over the candidate array (distance-
  // ordered rather than density-ordered): still O(ndiag x 2n).
  for (int64_t K = 0; K < Span; ++K)
    Rank[K] = -1;
  for (;;) {
    int64_t Next = -1;
    for (int64_t K = 0; K < Span; ++K)
      if (Dist[K] > 0 && Rank[K] < 0) {
        Next = K;
        break;
      }
    if (Next < 0)
      break;
    Rank[Next] = static_cast<int32_t>(NDiag++);
  }
  B.NDiag = NDiag;
  B.Offsets = allocI32(NDiag);
  for (int64_t K = 0; K < Span; ++K)
    if (Rank[K] >= 0)
      B.Offsets[Rank[K]] = static_cast<int32_t>(K - (A.Rows - 1));
  B.Diag = allocF64(NDiag * A.Rows);
  std::memset(B.Diag, 0,
              sizeof(double) * static_cast<size_t>(NDiag * A.Rows));
  // Fill locates each element's diagonal by binary search over the sorted
  // offset list (distance-ordered selection keeps it sorted) — cheaper
  // than SPARSKIT's linear scan but still a per-element search.
  for (int64_t I = 0; I < A.Rows; ++I)
    for (int32_t P = A.Pos[I]; P < A.Pos[I + 1]; ++P) {
      int32_t L = static_cast<int32_t>(A.Crd[P] - I);
      const int32_t *Slot =
          std::lower_bound(B.Offsets, B.Offsets + NDiag, L);
      B.Diag[(Slot - B.Offsets) * A.Rows + I] = A.Vals[P];
    }
  std::free(Dist);
  std::free(Rank);
  return B;
}
