//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-optimized comparison implementations for the paper's evaluation
/// (§7.2):
///
///  * SPARSKIT ports — C++ transcriptions of the Fortran routines
///    `coocsr`, `csrcsc`, `csrdia`, and `csrell`, keeping their
///    algorithmic structure: `csrdia` selects diagonals with the
///    O(ndiag x 2n) repeated-max scan the paper identifies as the source
///    of its slowdown, and `csrell` fills caller-allocated arrays that it
///    first initializes in a separate pass.
///  * MKL-like variants — same canonical-CSR policy with separate cursor
///    arrays and extra copies, standing in for the closed-source library.
///  * "taco w/o extensions" — sort-then-assemble COO->CSR, the algorithm
///    the unextended compiler generates (Table 3's 20x column).
///
/// Conversions between pairs neither library supports directly are
/// composed through a CSR temporary, exactly as §7.2 describes.
///
/// All routines operate on raw malloc'd arrays (matching what the
/// libraries do and what the JIT-generated code does), so benchmark
/// comparisons are apples-to-apples; adapters to/from SparseTensor exist
/// for the correctness tests.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_BASELINES_BASELINES_H
#define CONVGEN_BASELINES_BASELINES_H

#include "tensor/SparseTensor.h"

#include <cstdint>

namespace convgen {
namespace baselines {

/// Non-owning or malloc-owned raw matrix views. release() frees arrays
/// that were produced by a baseline routine.
struct RawCoo {
  int64_t Rows = 0, Cols = 0, Nnz = 0;
  const int32_t *RowIdx = nullptr;
  const int32_t *ColIdx = nullptr;
  const double *Vals = nullptr;
};

struct RawCsr {
  int64_t Rows = 0, Cols = 0;
  int32_t *Pos = nullptr;
  int32_t *Crd = nullptr;
  double *Vals = nullptr;

  int64_t nnz() const { return Pos ? Pos[Rows] : 0; }
  void release();
};

struct RawDia {
  int64_t Rows = 0, Cols = 0, NDiag = 0;
  int32_t *Offsets = nullptr; ///< NDiag diagonal offsets (selection order).
  double *Diag = nullptr;     ///< NDiag x Rows, diagonal-major.
  void release();
};

struct RawEll {
  int64_t Rows = 0, Cols = 0, NCMax = 0;
  int32_t *JCoef = nullptr; ///< NCMax x Rows (slice-major, like Figure 2d).
  double *Coef = nullptr;
  void release();
};

//===----------------------------------------------------------------------===//
// SPARSKIT ports
//===----------------------------------------------------------------------===//

RawCsr skitCooCsr(const RawCoo &A);
/// Transposition (Gustavson's HALFPERM); the result is the CSC of A,
/// stored as the CSR of A^T.
RawCsr skitCsrCsc(const RawCsr &A);
RawDia skitCsrDia(const RawCsr &A);
RawEll skitCsrEll(const RawCsr &A);

//===----------------------------------------------------------------------===//
// MKL-like variants
//===----------------------------------------------------------------------===//

RawCsr mklCooCsr(const RawCoo &A);
RawCsr mklCsrCsc(const RawCsr &A);
RawDia mklCsrDia(const RawCsr &A);

//===----------------------------------------------------------------------===//
// taco without the paper's extensions
//===----------------------------------------------------------------------===//

/// Sorts the nonzeros lexicographically (the unextended compiler cannot
/// assemble out of order), then assembles CSR.
RawCsr tacoNoExtCooCsr(const RawCoo &A);

//===----------------------------------------------------------------------===//
// Adapters (tests and harness plumbing; not part of timed regions)
//===----------------------------------------------------------------------===//

RawCoo viewCoo(const tensor::SparseTensor &T);
RawCsr viewCsr(const tensor::SparseTensor &T);
/// Views a CSC tensor as the CSR of A^T (same arrays, swapped dims).
RawCsr viewCscAsTransposedCsr(const tensor::SparseTensor &T);

tensor::SparseTensor toCsrTensor(const RawCsr &A);
tensor::SparseTensor toCscTensor(const RawCsr &AT);
tensor::SparseTensor toDiaTensor(const RawDia &A);
tensor::SparseTensor toEllTensor(const RawEll &A);

} // namespace baselines
} // namespace convgen

#endif // CONVGEN_BASELINES_BASELINES_H
