//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "formats/Standard.h"
#include "support/Assert.h"

#include <algorithm>

using namespace convgen;
using namespace convgen::baselines;

RawCoo baselines::viewCoo(const tensor::SparseTensor &T) {
  CONVGEN_ASSERT(T.Format.Name == "coo", "viewCoo requires a COO tensor");
  RawCoo Out;
  Out.Rows = T.numRows();
  Out.Cols = T.numCols();
  Out.Nnz = static_cast<int64_t>(T.Vals.size());
  Out.RowIdx = T.Levels[0].Crd.data();
  Out.ColIdx = T.Levels[1].Crd.data();
  Out.Vals = T.Vals.data();
  return Out;
}

RawCsr baselines::viewCsr(const tensor::SparseTensor &T) {
  CONVGEN_ASSERT(T.Format.Name == "csr", "viewCsr requires a CSR tensor");
  RawCsr Out;
  Out.Rows = T.numRows();
  Out.Cols = T.numCols();
  Out.Pos = const_cast<int32_t *>(T.Levels[1].Pos.data());
  Out.Crd = const_cast<int32_t *>(T.Levels[1].Crd.data());
  Out.Vals = const_cast<double *>(T.Vals.data());
  return Out;
}

RawCsr baselines::viewCscAsTransposedCsr(const tensor::SparseTensor &T) {
  CONVGEN_ASSERT(T.Format.Name == "csc", "requires a CSC tensor");
  RawCsr Out;
  Out.Rows = T.numCols(); // rows of A^T
  Out.Cols = T.numRows();
  Out.Pos = const_cast<int32_t *>(T.Levels[1].Pos.data());
  Out.Crd = const_cast<int32_t *>(T.Levels[1].Crd.data());
  Out.Vals = const_cast<double *>(T.Vals.data());
  return Out;
}

tensor::SparseTensor baselines::toCsrTensor(const RawCsr &A) {
  tensor::SparseTensor Out;
  Out.Format = formats::makeCSR();
  Out.Dims = {A.Rows, A.Cols};
  Out.Levels.resize(2);
  Out.Levels[1].Pos.assign(A.Pos, A.Pos + A.Rows + 1);
  Out.Levels[1].Crd.assign(A.Crd, A.Crd + A.nnz());
  Out.Vals.assign(A.Vals, A.Vals + A.nnz());
  return Out;
}

tensor::SparseTensor baselines::toCscTensor(const RawCsr &AT) {
  // AT is the CSR of A^T, i.e. the CSC arrays of A.
  tensor::SparseTensor Out;
  Out.Format = formats::makeCSC();
  Out.Dims = {AT.Cols, AT.Rows};
  Out.Levels.resize(2);
  Out.Levels[1].Pos.assign(AT.Pos, AT.Pos + AT.Rows + 1);
  Out.Levels[1].Crd.assign(AT.Crd, AT.Crd + AT.nnz());
  Out.Vals.assign(AT.Vals, AT.Vals + AT.nnz());
  return Out;
}

tensor::SparseTensor baselines::toDiaTensor(const RawDia &A) {
  // The generated/oracle DIA keeps perm ascending; baselines may select
  // diagonals in density order, so sort and permute for comparison.
  std::vector<int64_t> Order(static_cast<size_t>(A.NDiag));
  for (int64_t S = 0; S < A.NDiag; ++S)
    Order[static_cast<size_t>(S)] = S;
  std::sort(Order.begin(), Order.end(), [&](int64_t X, int64_t Y) {
    return A.Offsets[X] < A.Offsets[Y];
  });
  tensor::SparseTensor Out;
  Out.Format = formats::makeDIA();
  Out.Dims = {A.Rows, A.Cols};
  Out.Levels.resize(3);
  Out.Levels[0].SizeParam = A.NDiag;
  Out.Vals.resize(static_cast<size_t>(A.NDiag * A.Rows));
  for (int64_t S = 0; S < A.NDiag; ++S) {
    int64_t From = Order[static_cast<size_t>(S)];
    Out.Levels[0].Perm.push_back(A.Offsets[From]);
    std::copy(A.Diag + From * A.Rows, A.Diag + (From + 1) * A.Rows,
              Out.Vals.begin() + S * A.Rows);
  }
  return Out;
}

tensor::SparseTensor baselines::toEllTensor(const RawEll &A) {
  tensor::SparseTensor Out;
  Out.Format = formats::makeELL();
  Out.Dims = {A.Rows, A.Cols};
  Out.Levels.resize(3);
  Out.Levels[0].SizeParam = A.NCMax;
  Out.Levels[2].Crd.assign(A.JCoef, A.JCoef + A.NCMax * A.Rows);
  Out.Vals.assign(A.Coef, A.Coef + A.NCMax * A.Rows);
  return Out;
}
