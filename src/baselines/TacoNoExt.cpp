//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "taco w/o extensions" (§7.2): without this paper's technique, the
/// compiler cannot insert nonzeros into CSR out of order, so it must sort
/// the input first and then append — the source of Table 3's 20x column.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace convgen;
using namespace convgen::baselines;

RawCsr baselines::tacoNoExtCooCsr(const RawCoo &A) {
  // Materialize (row, col, val) records and sort lexicographically.
  struct Rec {
    int32_t Row, Col;
    double Val;
  };
  std::vector<Rec> Recs(static_cast<size_t>(A.Nnz));
  for (int64_t P = 0; P < A.Nnz; ++P)
    Recs[static_cast<size_t>(P)] = {A.RowIdx[P], A.ColIdx[P], A.Vals[P]};
  std::sort(Recs.begin(), Recs.end(), [](const Rec &X, const Rec &Y) {
    return X.Row != Y.Row ? X.Row < Y.Row : X.Col < Y.Col;
  });

  RawCsr B;
  B.Rows = A.Rows;
  B.Cols = A.Cols;
  B.Pos = static_cast<int32_t *>(
      std::malloc(sizeof(int32_t) * static_cast<size_t>(A.Rows + 1)));
  B.Crd = static_cast<int32_t *>(
      std::malloc(sizeof(int32_t) * static_cast<size_t>(A.Nnz > 0 ? A.Nnz : 1)));
  B.Vals = static_cast<double *>(
      std::malloc(sizeof(double) * static_cast<size_t>(A.Nnz > 0 ? A.Nnz : 1)));
  std::memset(B.Pos, 0, sizeof(int32_t) * static_cast<size_t>(A.Rows + 1));
  // Append in sorted order (the unextended compiler's assembly model).
  for (int64_t P = 0; P < A.Nnz; ++P) {
    const Rec &R = Recs[static_cast<size_t>(P)];
    ++B.Pos[R.Row + 1];
    B.Crd[P] = R.Col;
    B.Vals[P] = R.Val;
  }
  for (int64_t I = 0; I < A.Rows; ++I)
    B.Pos[I + 1] += B.Pos[I];
  return B;
}
