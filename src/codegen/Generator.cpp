//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"

#include "ir/CEmitter.h"
#include "levels/Levels.h"
#include "levels/SourceIterator.h"
#include "query/Compile.h"
#include "remap/Bounds.h"
#include "remap/Lower.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>
#include <set>

using namespace convgen;
using namespace convgen::codegen;
using formats::LevelKind;

std::string Conversion::cSource() const { return ir::emitC(Func); }

std::string Conversion::pretty() const { return ir::printFunction(Func); }

namespace {

/// True if destination dims 0..UpTo (inclusive) plainly cover every
/// canonical index variable — in that case a compressed level at UpTo+1
/// sees each coordinate tuple at most once and needs no deduplication.
bool prefixCoversAllIVars(const remap::RemapStmt &Remap, int UpTo) {
  std::set<std::string> Covered;
  for (int D = 0; D <= UpTo && D < static_cast<int>(Remap.dstOrder()); ++D) {
    std::string Name;
    if (remap::dimIsPlainVar(Remap, static_cast<size_t>(D), &Name))
      Covered.insert(Name);
  }
  for (const std::string &V : Remap.SrcVars)
    if (!Covered.count(V))
      return false;
  return true;
}

/// Index variables a remap dimension expression depends on.
void collectDimIVars(const remap::Expr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->Kind == remap::ExprKind::IVar)
    Out.insert(E->Name);
  for (const std::string &V : E->CounterIndices)
    Out.insert(V);
  collectDimIVars(E->A, Out);
  collectDimIVars(E->B, Out);
}

/// One counter of the target remapping and how it is realized.
struct CounterPlan {
  std::vector<std::string> IVars;
  bool Scalar = false;      ///< Reuse one scalar (reset per outer row).
  int ResetLevel = 0;       ///< Source level whose body resets the scalar.
  std::string Var;          ///< Scalar name or array name.
};

struct Generator {
  const formats::Format &Src;
  const formats::Format &Dst;
  const Options &Opts;

  levels::SourceIterator SrcIt;
  std::vector<std::unique_ptr<levels::LevelFormat>> Levels;
  levels::AsmCtx Ctx;
  query::TargetShape Shape;
  std::vector<CounterPlan> Counters;
  std::vector<ir::Expr> LevelSizes; ///< sz0..szn as size variables.

  Generator(const formats::Format &Src, const formats::Format &Dst,
            const Options &Opts)
      : Src(Src), Dst(Dst), Opts(Opts), SrcIt(Src) {}

  Conversion run();

  ir::Stmt emitParentLoop(
      int K,
      const std::function<ir::Stmt(ir::Expr, const std::vector<ir::Expr> &)>
          &Body);
  void planCounters();

  /// Lowers all destination coordinate expressions for the current
  /// nonzero; appends let/counter statements to \p Out.
  std::vector<ir::Expr> dstCoords(const levels::IterEnv &Env,
                                  ir::BlockBuilder &Out,
                                  bool UseMaterialized) const;

  /// Declares counter state (scalars or calloc'd arrays) and registers the
  /// per-loop-level scalar resets of the counter-reuse optimization.
  void emitCounterSetup(
      ir::BlockBuilder &Out,
      std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>>
          &Resets) const;

  /// Reads each counter's current value into <name>_v and increments it.
  void emitCounterAdvance(const levels::IterEnv &Env,
                          ir::BlockBuilder &Out) const;

  void freeCounters(ir::BlockBuilder &Out) const;

  /// Linearized counter-array index from the counter's index variables.
  ir::Expr counterIndex(const CounterPlan &Plan,
                        const levels::IterEnv &Env) const;

  /// True when distinct iterations of the source's outermost loop touch
  /// disjoint cells of the counter array, so parallelizing that loop keeps
  /// every cell's increment sequence in serial order.
  bool outerCounterCellsDisjoint(const CounterPlan &Plan) const;

  /// Annotates a pass over the source (coordinate insertion or the
  /// materialize pre-pass) as parallel when legal; returns it unchanged
  /// otherwise. \p CheckLevels gates on every target level's insertion
  /// being order-independent under the chosen strategy (the pre-pass runs
  /// no level emitters); \p CountersAdvance requires counters to be
  /// privatizable (scalars) or iteration-owned (arrays over the outer
  /// ivar).
  ir::Stmt markInsertionParallel(ir::Stmt Loop, bool CheckLevels,
                                 bool CountersAdvance) const;

  /// Size of a counter array: product of the index variables' dimensions.
  ir::Expr counterArraySize(const CounterPlan &Plan) const;

  /// 1-based target levels that insert through a per-parent cursor
  /// (compressed without a dedup workspace).
  std::vector<int> cursorLevels() const;

  /// True when cursor level \p K (1-based) meets the Monotone strategy's
  /// preconditions: the level's parent coordinates are plain variables
  /// forming exactly a prefix of the source's lexicographically ordered
  /// iteration variables, and every stored source slot is inserted (no
  /// padded-source value guard). The serial cursor then assigns position p
  /// to the p-th visited nonzero, so emitting the source position directly
  /// is bit-identical and removes the cursor (and its serialization).
  bool cursorLevelIsMonotone(int K) const;

  /// Picks the insertion strategy for this conversion (see
  /// levels::InsertStrategy for the semantics of each).
  levels::InsertStrategy chooseInsertStrategy() const;

  /// Scalar (privatizable) counter variable names, for Parallel clauses.
  std::vector<std::string> scalarCounterVars() const;

  /// Rewrites the outermost loop of a source nest into a partition loop
  /// over BlockVar with contiguous sub-ranges, so two passes that must
  /// agree on the work partition (counting and insertion) split the
  /// iteration space identically.
  ir::Stmt blockifyOuterLoop(const ir::Stmt &Nest) const;

  /// Emits the Blocked-strategy insertion: per-partition cursor counting,
  /// the partition-offset conversion, and the blocked insertion pass.
  void emitBlockedInsertion(
      ir::BlockBuilder &Fn,
      const std::function<ir::Stmt(const levels::IterEnv &)> &InsertionBody,
      const std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>>
          &Resets);
};

ir::Expr Generator::counterArraySize(const CounterPlan &Plan) const {
  ir::Expr Size = ir::intImm(1);
  for (const std::string &IV : Plan.IVars) {
    auto It = std::find(Src.Remap.SrcVars.begin(), Src.Remap.SrcVars.end(),
                        IV);
    CONVGEN_ASSERT(It != Src.Remap.SrcVars.end(),
                   "counter over unknown index variable");
    int D = static_cast<int>(It - Src.Remap.SrcVars.begin());
    Size = ir::mul(Size, ir::var("dim" + std::to_string(D)));
  }
  return Size;
}

ir::Expr Generator::counterIndex(const CounterPlan &Plan,
                                 const levels::IterEnv &Env) const {
  ir::Expr Index = ir::intImm(0);
  for (const std::string &IV : Plan.IVars) {
    auto It = std::find(Src.Remap.SrcVars.begin(), Src.Remap.SrcVars.end(),
                        IV);
    int D = static_cast<int>(It - Src.Remap.SrcVars.begin());
    Index = ir::add(ir::mul(Index, ir::var("dim" + std::to_string(D))),
                    Env.Canonical.at(IV));
  }
  return Index;
}

void Generator::emitCounterSetup(
    ir::BlockBuilder &Out,
    std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>> &Resets)
    const {
  std::map<int, std::vector<std::string>> ScalarResets;
  for (const CounterPlan &Plan : Counters) {
    if (Plan.Scalar) {
      Out.add(ir::decl(Plan.Var, ir::intImm(0)));
      if (Plan.ResetLevel > 0)
        ScalarResets[Plan.ResetLevel].push_back(Plan.Var);
    } else {
      Out.add(ir::alloc(Plan.Var, ir::ScalarKind::Int,
                        counterArraySize(Plan), true));
    }
  }
  for (auto &[Level, Vars] : ScalarResets) {
    std::vector<std::string> Copy = Vars;
    Resets[Level] = [Copy](const levels::IterEnv &) -> ir::Stmt {
      ir::BlockBuilder B;
      for (const std::string &V : Copy)
        B.add(ir::assign(V, ir::intImm(0)));
      return B.build();
    };
  }
}

void Generator::emitCounterAdvance(const levels::IterEnv &Env,
                                   ir::BlockBuilder &Out) const {
  for (const CounterPlan &Plan : Counters) {
    std::string Val = Plan.Var + "_v";
    if (Plan.Scalar) {
      Out.add(ir::decl(Val, ir::var(Plan.Var)));
      Out.add(ir::assign(Plan.Var, ir::add(ir::var(Plan.Var),
                                           ir::intImm(1))));
    } else {
      ir::Expr Index = counterIndex(Plan, Env);
      std::string IdxVar = Plan.Var + "_i";
      Out.add(ir::decl(IdxVar, Index));
      Out.add(ir::decl(Val, ir::load(Plan.Var, ir::var(IdxVar))));
      Out.add(ir::store(Plan.Var, ir::var(IdxVar),
                        ir::add(ir::var(Val), ir::intImm(1))));
    }
  }
}

bool Generator::outerCounterCellsDisjoint(const CounterPlan &Plan) const {
  // The parallelized loop is the source's outermost stored dimension. Its
  // iterations own disjoint counter cells iff that dimension is a plain
  // canonical ivar with a distinct value per iteration, and the counter is
  // indexed by it. (A COO-style non-unique root shares the ivar across
  // iterations, so its cells would race; dims that are arithmetic
  // expressions over ivars give no per-iteration ownership either.)
  std::string V;
  if (!remap::dimIsPlainVar(Src.Remap, 0, &V))
    return false;
  const formats::LevelSpec &L1 = Src.Levels[0];
  bool DistinctPerIteration =
      L1.Kind == LevelKind::Dense || L1.Kind == LevelKind::Squeezed ||
      L1.Kind == LevelKind::Sliced ||
      (L1.Kind == LevelKind::Compressed && L1.Unique);
  if (!DistinctPerIteration)
    return false;
  return std::find(Plan.IVars.begin(), Plan.IVars.end(), V) !=
         Plan.IVars.end();
}

ir::Stmt Generator::markInsertionParallel(ir::Stmt Loop, bool CheckLevels,
                                          bool CountersAdvance) const {
  if (!Loop || Loop->Kind != ir::StmtKind::For)
    return Loop;
  if (CheckLevels)
    for (const auto &LF : Levels)
      if (!LF->insertIsParallelSafe(Ctx))
        return Loop;
  std::vector<std::string> Privates;
  if (CountersAdvance) {
    for (const CounterPlan &Plan : Counters) {
      if (Plan.Scalar) {
        // Reused scalars are reset (at their owning loop level) before any
        // use within each outer iteration, so a private copy per thread
        // reproduces serial values exactly.
        Privates.push_back(Plan.Var);
      } else if (!outerCounterCellsDisjoint(Plan)) {
        return Loop;
      }
    }
  }
  return ir::markLoopParallel(Loop, std::move(Privates));
}

std::vector<int> Generator::cursorLevels() const {
  std::vector<int> Out;
  for (const auto &LF : Levels)
    if (LF->insertUsesCursor())
      Out.push_back(LF->level());
  return Out;
}

bool Generator::cursorLevelIsMonotone(int K) const {
  // Every visited slot must insert: a padded source's vals != 0 guard
  // would skip slots and break position == source-position.
  if (Src.PaddedVals)
    return false;
  // Only ivars bound by the source's leading dense loops are usable: their
  // order is guaranteed by the loop structure itself. Compressed and
  // singleton levels iterate whatever the crd arrays hold, and a tensor
  // may legally carry them unsorted (csc -> coo yields column-major coo),
  // so they give no structural monotonicity guarantee — such sources take
  // the Blocked strategy instead, which assumes nothing about order.
  std::vector<std::string> Ordered = SrcIt.orderedLoopIVars();
  if (static_cast<size_t>(K - 1) > Ordered.size())
    return false;
  // The parent chain must be dense levels over plain variables matching
  // that loop prefix in order: the linearized parent position is then
  // non-decreasing along the whole source iteration.
  for (int P = 0; P < K - 1; ++P) {
    const formats::LevelSpec &Spec = Dst.Levels[static_cast<size_t>(P)];
    if (Spec.Kind != LevelKind::Dense)
      return false;
    std::string V;
    if (!remap::dimIsPlainVar(Dst.Remap, static_cast<size_t>(Spec.Dim), &V))
      return false;
    if (V != Ordered[static_cast<size_t>(P)])
      return false;
  }
  return true;
}

levels::InsertStrategy Generator::chooseInsertStrategy() const {
  std::vector<int> Cursors = cursorLevels();
  if (Cursors.empty())
    return levels::InsertStrategy::Serial; // No cursors to replace.
  bool AllMonotone = true;
  for (int K : Cursors)
    AllMonotone = AllMonotone && cursorLevelIsMonotone(K);
  if (AllMonotone)
    return levels::InsertStrategy::Monotone;
  // Blocked handles one cursor level whose parent position is computable
  // per nonzero (its ancestors are pure levels — guaranteed for edge
  // insertion); the other levels must be order-independent. The counting
  // pass replays counter advances, which is exact for reused scalars
  // (reset before use within each outer iteration) and moot when a
  // materialize pre-pass owns the counters, but would double-count
  // counter arrays — those keep the insertion serial.
  if (Cursors.size() != 1)
    return levels::InsertStrategy::Serial;
  for (const auto &LF : Levels) {
    if (LF->insertUsesCursor())
      continue;
    levels::AsmCtx Pure = Ctx; // Strategy-independent purity probe.
    Pure.Insert = levels::InsertStrategy::Serial;
    if (!LF->insertIsParallelSafe(Pure))
      return levels::InsertStrategy::Serial;
  }
  if (!Opts.MaterializeRemap)
    for (const CounterPlan &Plan : Counters)
      if (!Plan.Scalar)
        return levels::InsertStrategy::Serial;
  return levels::InsertStrategy::Blocked;
}

std::vector<std::string> Generator::scalarCounterVars() const {
  std::vector<std::string> Out;
  if (Opts.MaterializeRemap)
    return Out; // Counters advance only in the materialize pre-pass.
  for (const CounterPlan &Plan : Counters)
    if (Plan.Scalar)
      Out.push_back(Plan.Var);
  return Out;
}

ir::Stmt Generator::blockifyOuterLoop(const ir::Stmt &Nest) const {
  CONVGEN_ASSERT(Nest && Nest->Kind == ir::StmtKind::For,
                 "blocked insertion requires a loop-rooted source nest");
  ir::Expr Lo = Nest->A, Hi = Nest->B, P = Ctx.PartCount;
  ir::Expr Len = ir::sub(Hi, Lo);
  ir::Expr BVar = ir::var(Ctx.BlockVar);
  ir::Expr BLo = ir::add(Lo, ir::div(ir::mul(Len, BVar), P));
  ir::Expr BHi = ir::add(
      Lo, ir::div(ir::mul(Len, ir::add(BVar, ir::intImm(1))), P));
  ir::Stmt Inner = ir::forRange(Nest->Name, BLo, BHi, Nest->Body);
  return ir::forRange(Ctx.BlockVar, ir::intImm(0), P, Inner);
}

void Generator::emitBlockedInsertion(
    ir::BlockBuilder &Fn,
    const std::function<ir::Stmt(const levels::IterEnv &)> &InsertionBody,
    const std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>>
        &Resets) {
  int K = cursorLevels().front();
  ir::Expr PS = Ctx.ParentSize.at(K);
  std::string Cur = Ctx.cursorName(K);
  std::vector<std::string> Privates = scalarCounterVars();
  bool Materialize = Opts.MaterializeRemap;

  // The partition count is evaluated once so the counting and insertion
  // passes split the outer loop identically; the result is deterministic
  // for any count, so the interpreter's single partition and the JIT's
  // thread count agree bit-for-bit.
  Fn.add(ir::decl("cvg_P", ir::numParts()));
  Ctx.PartCount = ir::var("cvg_P");
  Ctx.BlockVar = "cb";

  // Pass 1: each partition tallies its nonzeros per parent position.
  Fn.add(ir::comment("per-partition cursor counts"));
  Fn.add(ir::alloc(Cur, ir::ScalarKind::Int, ir::mul(Ctx.PartCount, PS),
                   true));
  auto CountBody = [&](const levels::IterEnv &Env) -> ir::Stmt {
    ir::BlockBuilder Body;
    if (!Materialize)
      emitCounterAdvance(Env, Body);
    std::vector<ir::Expr> Coords = dstCoords(Env, Body, Materialize);
    levels::PosEnv PEnv{ir::intImm(0), Coords, Env.LastPos};
    for (int P = 0; P + 1 < K; ++P)
      PEnv.ParentPos =
          Levels[static_cast<size_t>(P)]->emitPos(Ctx, PEnv, Body);
    Body.add(ir::store(
        Cur,
        ir::add(ir::mul(ir::var(Ctx.BlockVar), PS), PEnv.ParentPos),
        ir::intImm(1), ir::ReduceOp::Add));
    return Body.build();
  };
  Fn.add(ir::markLoopParallel(
      blockifyOuterLoop(SrcIt.build(CountBody, Resets)), Privates));

  // Pass 2: exclusive scan over partitions per parent, seeded from the
  // (final, never consumed) pos array: cur[b][q] becomes the first
  // destination position partition b writes under parent q.
  Fn.add(ir::comment("partition counts -> starting cursors"));
  std::string Q = "cq", B = "cbo", T = "ct", Acc = "cacc";
  ir::Expr Cell = ir::add(ir::mul(ir::var(B), PS), ir::var(Q));
  ir::BlockBuilder Inner;
  Inner.add(ir::decl(T, ir::load(Cur, Cell)));
  Inner.add(ir::store(Cur, Cell, ir::var(Acc)));
  Inner.add(ir::assign(Acc, ir::add(ir::var(Acc), ir::var(T))));
  ir::BlockBuilder PerParent;
  PerParent.add(ir::decl(Acc, ir::load(Ctx.posName(K), ir::var(Q))));
  PerParent.add(
      ir::forRange(B, ir::intImm(0), Ctx.PartCount, Inner.build()));
  Fn.add(ir::markLoopParallel(
      ir::forRange(Q, ir::intImm(0), PS, PerParent.build()), {}));

  // Pass 3: blocked insertion; emitPos consumes this partition's cursors.
  Fn.add(ir::comment("blocked coordinate insertion"));
  Fn.add(ir::markLoopParallel(
      blockifyOuterLoop(SrcIt.build(InsertionBody, Resets)), Privates));
  Fn.add(ir::freeBuffer(Cur));
}

void Generator::freeCounters(ir::BlockBuilder &Out) const {
  for (const CounterPlan &Plan : Counters)
    if (!Plan.Scalar)
      Out.add(ir::freeBuffer(Plan.Var));
}

/// Saturating product with an "unknown" element: -1 operands (extents the
/// numeric bounds analysis could not determine) poison the result.
int64_t satMulUnknown(int64_t A, int64_t B) {
  if (A < 0 || B < 0)
    return -1;
  if (B != 0 && A > INT64_MAX / B)
    return INT64_MAX;
  return A * B;
}

AssemblyPlan planAssemblyImpl(const formats::Format &Src,
                              const formats::Format &Dst,
                              const levels::SourceIterator &SrcIt,
                              const Options &Opts) {
  const std::vector<int64_t> &Dims = Opts.DimsHint;
  AssemblyPlan Plan;
  size_t N = Dst.Levels.size();
  Plan.Dedup.assign(N, false);
  Plan.Ranked.assign(N, false);
  Plan.Sorted.assign(N, false);
  Plan.Hashed.assign(N, false);

  auto isEdge = [&](size_t K) {
    return Dst.Levels[K].Kind == LevelKind::Compressed ||
           Dst.Levels[K].Kind == LevelKind::Skyline;
  };

  // Sequenced (workspace) dedup requires every nonzero of one parent tuple
  // to be visited contiguously: the grouping dims must depend on the ivars
  // of exactly a prefix of the source's lexicographic iteration order.
  // LevelsUsed reports how many leading source levels that prefix spans.
  std::vector<std::string> Ordered = SrcIt.lexOrderedIVars();
  auto seqPrefixOk = [&](size_t K, int *LevelsUsed) -> bool {
    std::set<std::string> Needed;
    for (size_t D = 0; D < K; ++D)
      collectDimIVars(remap::inlineLets(Dst.Remap.DstDims[D]), Needed);
    *LevelsUsed = 0;
    if (Needed.empty())
      return true;
    std::set<std::string> PrefixSet;
    for (size_t I = 0; I < Ordered.size(); ++I) {
      PrefixSet.insert(Ordered[I]);
      if (PrefixSet == Needed) {
        *LevelsUsed = static_cast<int>(I) + 1;
        return true;
      }
    }
    return false;
  };

  std::vector<int> SeqLevelsUsed(N, 0);
  std::vector<bool> SeqStructural(N, true);
  for (size_t K = 0; K < N; ++K) {
    Plan.Dedup[K] = Dst.Levels[K].Kind == LevelKind::Compressed &&
                    Dst.Levels[K].Unique &&
                    !prefixCoversAllIVars(Dst.Remap, static_cast<int>(K));
    if (!Plan.Dedup[K])
      continue;
    // A compressed/skyline descendant enumerates this level's positions
    // during its own edge insertion, which only rank-based (coordinate-
    // order) positions support; and when the source cannot provide the
    // prefix iteration order the workspace needs, ranks are the fallback
    // that makes the pair convertible at all.
    bool EdgeBelow = false;
    for (size_t J = K + 1; J < N; ++J)
      EdgeBelow = EdgeBelow || isEdge(J);
    int LevelsUsed = 0;
    bool SeqOk = seqPrefixOk(K, &LevelsUsed);
    Plan.Ranked[K] = EdgeBelow || !SeqOk;
    SeqLevelsUsed[K] = LevelsUsed;
    for (int L = 0; L < LevelsUsed; ++L)
      SeqStructural[K] =
          SeqStructural[K] &&
          Src.Levels[static_cast<size_t>(L)].Kind == LevelKind::Dense;
  }

  // Size-driven strategy selection: estimate every level's dense auxiliary
  // footprint from the grouping dims' extents (when the caller supplied
  // concrete dimension sizes) and switch compressed levels over the
  // CONVGEN_RANK_DENSE_MAX_BYTES budget to the O(nnz)-memory
  // sorted-ranking strategy. Levels with no such fallback (skyline's
  // min-query buffer, squeezed's presence/perm structures) reject the pair
  // with a size-grounds diagnostic instead of silently allocating
  // gigabytes. Sorted-ness propagates down the level chain by
  // construction: a deeper compressed level's grouping dims are a
  // superset, so its footprint is at least as large.
  std::vector<int64_t> Ext; // Extent per destination dim; -1 unknown.
  if (Dims.size() == static_cast<size_t>(Dst.SrcOrder)) {
    std::vector<remap::NumericDimBounds> NB =
        remap::analyzeBoundsNumeric(Dst.Remap, Dims);
    for (const remap::NumericDimBounds &B : NB)
      Ext.push_back(B.Known ? B.extent() : -1);
  } else {
    Ext.assign(Dst.Remap.DstDims.size(), -1);
  }
  auto extAt = [&](int D) {
    return D >= 0 && static_cast<size_t>(D) < Ext.size()
               ? Ext[static_cast<size_t>(D)]
               : int64_t(-1);
  };
  auto prodExt = [&](int UpTo) -> int64_t {
    int64_t P = 1;
    for (int D = 0; D <= UpTo; ++D)
      P = satMulUnknown(P, extAt(D));
    return P;
  };
  int64_t Budget = rankDenseMaxBytes();
  auto overBudget = [&](int64_t Bytes) { return Bytes > Budget; };
  auto sizeDiagnostic = [&](size_t K, const char *What, int64_t Bytes,
                            const std::string &NoFallback) {
    return strfmt(
        "conversion %s -> %s rejected on size grounds: level %zu's dense "
        "%s would need %lld bytes at these dimensions, over the "
        "CONVGEN_RANK_DENSE_MAX_BYTES budget of %lld, and the "
        "sorted-ranking fallback does not apply: %s",
        Src.Name.c_str(), Dst.Name.c_str(), K + 1, What,
        static_cast<long long>(Bytes), static_cast<long long>(Budget),
        NoFallback.c_str());
  };
  for (size_t K = 0; K < N; ++K) {
    const formats::LevelSpec &L = Dst.Levels[K];
    if (L.Kind == LevelKind::Skyline) {
      int64_t F = satMulUnknown(4, prodExt(L.Dim - 1));
      if (F >= 0 && overBudget(F)) {
        Plan.Unsupported = sizeDiagnostic(
            K, "min-query buffer", F,
            "skyline assembly has no sorted-ranking variant");
        return Plan;
      }
      continue;
    }
    if (L.Kind == LevelKind::Squeezed) {
      int64_t F = satMulUnknown(5, extAt(L.Dim));
      if (F >= 0 && overBudget(F)) {
        Plan.Unsupported = sizeDiagnostic(
            K, "coordinate-presence and perm structures", F,
            "squeezed assembly has no sorted-ranking variant");
        return Plan;
      }
      continue;
    }
    if (L.Kind != LevelKind::Compressed)
      continue; // Dense/singleton/sliced/offset storage is the format's
                // own cost, not an auxiliary ranking structure.
    int64_t F;
    const char *What;
    if (Plan.Ranked[K]) {
      // int32 rank array + presence bit set over dims 0..Dim.
      F = satMulUnknown(5, prodExt(L.Dim));
      What = "rank array and presence bit set";
    } else if (Plan.Dedup[K]) {
      // Version-stamp workspace over the level's own dim, plus the
      // count-query buffer over the parent dims.
      F = std::max(satMulUnknown(8, extAt(L.Dim)),
                   satMulUnknown(4, prodExt(L.Dim - 1)));
      What = "dedup workspace and count-query buffer";
    } else {
      F = satMulUnknown(4, prodExt(L.Dim - 1));
      What = "count-query buffer";
    }
    bool AncestorSorted = false;
    for (size_t P = 0; P < K; ++P)
      AncestorSorted = AncestorSorted || Plan.Sorted[P];
    bool OverBudget = F >= 0 && overBudget(F);
    // The planner's sort-first direct variant forces every eligible
    // compressed level onto sorted ranking even under the dense budget.
    if (!OverBudget && !AncestorSorted && !Opts.ForceSortedRanking)
      continue;
    // The level wants sorted ranking; check the strategy's preconditions.
    std::string NoFallback;
    if (!L.Unique) {
      NoFallback = "the level stores duplicate coordinates";
    } else if (Src.PaddedVals) {
      NoFallback = strfmt("source format %s pads its values array, so "
                          "stored positions are not dense in nnz",
                          Src.Name.c_str());
    }
    for (int D = 0; NoFallback.empty() && D <= L.Dim; ++D)
      if (!remap::dimIsPlainVar(Dst.Remap, static_cast<size_t>(D)))
        NoFallback = strfmt("destination dimension %d is a computed "
                            "expression, not a plain coordinate",
                            D);
    for (size_t P = 0; NoFallback.empty() && P < K; ++P) {
      bool Pure = Dst.Levels[P].Kind == LevelKind::Dense ||
                  (Dst.Levels[P].Kind == LevelKind::Compressed &&
                   (Plan.Ranked[P] || Plan.Sorted[P]));
      if (!Pure)
        NoFallback = strfmt("ancestor level %zu cannot expose pure "
                            "positions during edge insertion",
                            P + 1);
    }
    if (!NoFallback.empty()) {
      // This path is also reachable through AncestorSorted (or a planner
      // force) with this level's own footprint small or unknown; claiming
      // "-1 bytes over the budget" would be nonsense, so name the real
      // cause instead.
      if (OverBudget)
        Plan.Unsupported = sizeDiagnostic(K, What, F, NoFallback);
      else if (AncestorSorted)
        Plan.Unsupported = strfmt(
            "conversion %s -> %s rejected on size grounds: an ancestor "
            "level's dense ranking structures exceed the "
            "CONVGEN_RANK_DENSE_MAX_BYTES budget of %lld, forcing level "
            "%zu onto the sorted-ranking strategy, which does not apply: "
            "%s",
            Src.Name.c_str(), Dst.Name.c_str(),
            static_cast<long long>(Budget), K + 1, NoFallback.c_str());
      else
        Plan.Unsupported = strfmt(
            "conversion %s -> %s: the planner forced the sorted-ranking "
            "strategy, which does not apply to level %zu: %s",
            Src.Name.c_str(), Dst.Name.c_str(), K + 1, NoFallback.c_str());
      return Plan;
    }
    Plan.Sorted[K] = true;
    Plan.Ranked[K] = false;
  }

  // List-construction variant per sorted level: the hashed-presence
  // pre-dedup when forced by CONVGEN_RANK_STRATEGY=hashed, or — in auto —
  // when the level's grouping tuple is narrower than the tensor order:
  // projection onto the narrower tuple is where duplicates arise at all
  // (certain once nnz exceeds the grouping space; on fully hyper-sparse
  // data the pre-dedup finds none and costs one O(nnz) hash pass, which
  // the saved comparison depth of the wider-tuple sort does not always
  // repay — width is a heuristic, not a proof, and the knob overrides it).
  // Precedence: an explicit environment knob always wins (pinning tests
  // and operators override everything), then the planner-forced field,
  // then the auto heuristic.
  RankStrategy Strategy = rankStrategyKnob();
  if (Strategy == RankStrategy::Auto)
    Strategy = Opts.ForceRank;
  for (size_t K = 0; K < N; ++K) {
    if (!Plan.Sorted[K])
      continue;
    int Width = Dst.Levels[K].Dim + 1;
    Plan.Hashed[K] =
        Strategy == RankStrategy::Hashed ||
        (Strategy == RankStrategy::Auto && Width < Dst.order());
  }

  // Shared full-arity sort: when several levels are sorted, their grouping
  // tuples (dims 0..Dim each) nest by construction whenever the arities
  // strictly increase with level depth — every shallower tuple is then a
  // prefix of the deepest level's. One collect+sort+unique at the deepest
  // arity serves them all: ancestor lists are prefix compactions of the
  // anchor's (Chou et al.'s attribute queries are projections of one
  // deepest-level sorted tuple list). Non-nested grouping keeps the
  // per-level sorts.
  {
    std::vector<size_t> SortedLevels;
    for (size_t K = 0; K < N; ++K)
      if (Plan.Sorted[K])
        SortedLevels.push_back(K);
    bool Nested = SortedLevels.size() >= 2;
    for (size_t I = 0; I + 1 < SortedLevels.size(); ++I)
      Nested = Nested && Dst.Levels[SortedLevels[I]].Dim <
                             Dst.Levels[SortedLevels[I + 1]].Dim;
    if (knobs().NoSharedSort || Opts.ForceNoSharedSort)
      Nested = false;
    if (Nested) {
      Plan.SharedSortAnchor = static_cast<int>(SortedLevels.back()) + 1;
      // Only the anchor constructs a list under sharing (everyone else
      // prefix-compacts the anchor's buffer), so only its hashed bit is
      // live — clear the rest to keep the reported plan truthful.
      for (size_t K : SortedLevels)
        if (static_cast<int>(K) + 1 != Plan.SharedSortAnchor)
          Plan.Hashed[K] = false;
    }
  }

  // Packed-key sort lowering: when every destination extent is known and
  // the full-order coordinate tuple packs into one 64-bit key (sum of
  // per-dim ceil(log2(extent)) widths <= 64), every grouping prefix fits
  // too, so all sorted levels can radix-sort packed keys instead of
  // merge-sorting tuples. Packability is a property of the extents; the
  // CONVGEN_SORT_STRATEGY knob only vetoes it (merge) or requests it
  // (radix/auto) — it cannot make unpackable keys fit. The sorted output
  // is the identical pure function of the input either way.
  SortStrategy SortKnob = sortStrategyKnob();
  if (SortKnob == SortStrategy::Auto)
    SortKnob = Opts.ForceSort;
  if (Plan.anySorted() && SortKnob != SortStrategy::Merge) {
    std::vector<int64_t> Widths;
    int64_t TotalBits = 0;
    bool Fits = !Ext.empty();
    for (int64_t E : Ext) {
      if (E < 1) {
        Fits = false;
        break;
      }
      int64_t W = 0;
      while (W < 33 && (int64_t(1) << W) < E)
        ++W;
      Fits = Fits && W <= 32;
      Widths.push_back(W);
      TotalBits += W;
    }
    if (Fits && TotalBits <= 64) {
      Plan.PackedSort = true;
      Plan.PackWidths = std::move(Widths);
    }
  }

  // The sequenced workspace survives only where neither ranked nor sorted
  // replaced it; note when its prefix spans non-dense source levels, whose
  // order is data-dependent (csc -> coo legally yields column-major coo)
  // and must be validated per input tensor.
  for (size_t K = 0; K < N; ++K)
    if (Plan.Dedup[K] && !Plan.Ranked[K] && !Plan.Sorted[K] &&
        !SeqStructural[K])
      Plan.LexCheckLevels = std::max(Plan.LexCheckLevels, SeqLevelsUsed[K]);

  // Edge insertion enumerates parent positions before any insertion ran:
  // ancestors must be dense (positions are coordinate arithmetic) or
  // compressed with ranked/sorted insertion (positions are coordinate
  // ranks). Sorted levels build their structures from the source directly
  // and skip the enumeration entirely. Skyline keeps the dense-only
  // restriction of single-group assembly.
  for (size_t K = 0; K < N; ++K) {
    if (!isEdge(K) || Plan.Sorted[K])
      continue;
    for (size_t P = 0; P < K; ++P) {
      if (Dst.Levels[P].Kind == LevelKind::Dense)
        continue;
      bool RankedAncestor = Dst.Levels[P].Kind == LevelKind::Compressed &&
                            (Plan.Ranked[P] || Plan.Sorted[P]);
      if (Dst.Levels[K].Kind == LevelKind::Skyline || !RankedAncestor) {
        Plan.Unsupported =
            strfmt("conversion to %s requires multi-pass assembly "
                   "(level %zu needs edge insertion below a non-enumerable "
                   "level %zu), which is not supported",
                   Dst.Name.c_str(), K, P);
        return Plan;
      }
    }
  }

  // Ranked levels size their rank array (and presence-query buffer) by the
  // static bounds of dims 0..K; sorted levels need no extents at all.
  std::vector<ir::Expr> SrcDims;
  for (int D = 0; D < Dst.SrcOrder; ++D)
    SrcDims.push_back(ir::var("dim" + std::to_string(D)));
  std::vector<remap::DimBounds> Bounds =
      remap::analyzeBounds(Dst.Remap, SrcDims);
  for (size_t K = 0; K < N; ++K) {
    if (!Plan.Ranked[K])
      continue;
    for (size_t D = 0; D <= K; ++D)
      if (!Bounds[D].Known) {
        Plan.Unsupported = strfmt(
            "conversion %s -> %s needs ranked dedup assembly over "
            "dimension %zu, which has no static bounds",
            Src.Name.c_str(), Dst.Name.c_str(), D);
        return Plan;
      }
  }
  return Plan;
}

ir::Stmt Generator::emitParentLoop(
    int K,
    const std::function<ir::Stmt(ir::Expr, const std::vector<ir::Expr> &)>
        &Body) {
  // Enumerate positions of levels 1..K-1 in lexicographic coordinate
  // order: dense ancestors as plain loops, ranked compressed ancestors as
  // loops guarded by their presence query with positions from their (pure)
  // emitPos. Coordinate insertion assigns the same positions — dense
  // arithmetic, or ranks that count present tuples in this very coordinate
  // order — so enumeration and insertion agree on parent numbering by
  // construction, with no assumption on the source's iteration order.
  std::function<ir::Stmt(int, ir::Expr, std::vector<ir::Expr>)> Emit =
      [&](int Level, ir::Expr Pos, std::vector<ir::Expr> Coords) -> ir::Stmt {
    if (Level >= K)
      return Body(Pos, Coords);
    const formats::LevelSpec &Spec =
        Dst.Levels[static_cast<size_t>(Level - 1)];
    std::string Var = "e" + std::to_string(Level);
    ir::Expr Extent = Ctx.dimExtent(Spec.Dim);
    ir::Expr Lo = Ctx.dimLo(Spec.Dim);
    std::vector<ir::Expr> NewCoords = Coords;
    NewCoords.push_back(ir::add(ir::var(Var), Lo));
    if (Spec.Kind == LevelKind::Dense) {
      ir::Expr NewPos = ir::add(ir::mul(Pos, Extent), ir::var(Var));
      return ir::forRange(Var, ir::intImm(0), Extent,
                          Emit(Level + 1, NewPos, NewCoords));
    }
    CONVGEN_ASSERT(Spec.Kind == LevelKind::Compressed,
                   "edge-insertion parents must be dense or ranked");
    levels::QueryResultRef Present = Ctx.Result(Level, "present");
    ir::BlockBuilder Guarded;
    levels::PosEnv PEnv{Pos, NewCoords, nullptr};
    ir::Expr NewPos =
        Levels[static_cast<size_t>(Level - 1)]->emitPos(Ctx, PEnv, Guarded);
    Guarded.add(Emit(Level + 1, NewPos, NewCoords));
    return ir::forRange(
        Var, ir::intImm(0), Extent,
        ir::ifThen(levels::readQueryRaw(Present, NewCoords),
                   Guarded.build()));
  };
  return Emit(1, ir::intImm(0), {});
}

void Generator::planCounters() {
  std::vector<std::string> LoopOrdered = SrcIt.orderedLoopIVars();
  int Index = 0;
  for (const std::vector<std::string> &IVars :
       remap::collectCounters(Dst.Remap)) {
    CounterPlan Plan;
    Plan.IVars = IVars;
    Plan.Var = "cnt" + std::to_string(Index++);
    // A counter reuses one scalar when its index variables are exactly a
    // prefix of the ordered outer loops (§4.2): the scalar resets whenever
    // the innermost of those loops advances.
    if (Opts.CounterReuse && !IVars.empty() &&
        IVars.size() <= LoopOrdered.size() &&
        std::equal(IVars.begin(), IVars.end(), LoopOrdered.begin())) {
      Plan.Scalar = true;
      Plan.ResetLevel = static_cast<int>(IVars.size());
    }
    Counters.push_back(Plan);
  }
}

std::vector<ir::Expr> Generator::dstCoords(const levels::IterEnv &Env,
                                           ir::BlockBuilder &Out,
                                           bool UseMaterialized) const {
  std::vector<ir::Expr> Coords;
  remap::LowerEnv LEnv;
  LEnv.IVars = Env.Canonical;
  for (const CounterPlan &Plan : Counters)
    LEnv.Counters[remap::counterKey(Plan.IVars)] =
        ir::var(Plan.Var + "_v");
  for (size_t D = 0; D < Dst.Remap.DstDims.size(); ++D) {
    std::string PlainVar;
    if (remap::dimIsPlainVar(Dst.Remap, D, &PlainVar)) {
      Coords.push_back(Env.Canonical.at(PlainVar));
      continue;
    }
    if (UseMaterialized) {
      Coords.push_back(
          ir::load("mc" + std::to_string(D), Env.LastPos));
      continue;
    }
    LEnv.NamePrefix = "d" + std::to_string(D) + "_";
    std::vector<ir::Stmt> LetDecls;
    ir::Expr E = remap::lowerDimExpr(Dst.Remap.DstDims[D], LEnv, &LetDecls);
    Out.addAll(LetDecls);
    // Name the coordinate so positions below read like Figure 6.
    std::string CVar = "cB" + std::to_string(D);
    if (E->Kind == ir::ExprKind::Var) {
      Coords.push_back(E);
    } else {
      Out.add(ir::decl(CVar, E));
      Coords.push_back(ir::var(CVar));
    }
  }
  return Coords;
}

Conversion Generator::run() {
  AssemblyPlan Plan = planAssemblyImpl(Src, Dst, SrcIt, Opts);
  if (!Plan.Unsupported.empty())
    fatalError(Plan.Unsupported.c_str());
  planCounters();

  // Target shape: bounds of the remapped dimensions over the source dims.
  std::vector<ir::Expr> SrcDims;
  for (int D = 0; D < Dst.SrcOrder; ++D)
    SrcDims.push_back(ir::var("dim" + std::to_string(D)));
  Shape.Remap = Dst.Remap;
  Shape.Bounds = remap::analyzeBounds(Dst.Remap, SrcDims);

  // Level formats with the plan's dedup/ranked/sorted/hashed decisions.
  for (size_t K = 0; K < Dst.Levels.size(); ++K)
    Levels.push_back(levels::LevelFormat::create(
        Dst.Levels[K], static_cast<int>(K) + 1, Plan.Dedup[K],
        Plan.Ranked[K], Plan.Sorted[K], Plan.Hashed[K], Dst.order()));

  // Compile the attribute queries the levels declare.
  std::vector<std::pair<int, query::Query>> LevelQueries;
  for (const auto &LF : Levels)
    for (const query::Query &Q : LF->queries())
      LevelQueries.push_back({LF->level(), Q});
  query::CompiledQueries Compiled = query::compileQueries(
      LevelQueries, Shape, SrcIt, Opts.OptimizeQueries);

  Ctx.Fmt = &Dst;
  Ctx.Bounds = Shape.Bounds;
  Ctx.ForceUnseqEdges = Opts.ForceUnseqEdges;
  Ctx.Result = [&](int Level, const std::string &Label) {
    auto It = Compiled.Refs.find(strfmt("q%d_%s", Level, Label.c_str()));
    CONVGEN_ASSERT(It != Compiled.Refs.end(), "missing query result");
    return It->second;
  };
  Ctx.ParentLoop = [this](int K, const auto &Body) {
    return emitParentLoop(K, Body);
  };
  // Sorted-ranking hooks: tuple collection sweeps over the source and pure
  // ancestor-position composition (see AsmCtx).
  Ctx.StoredSize = SrcIt.storedSizeExpr();
  Ctx.SourceSweep =
      [this](int UpToDim,
             const std::function<ir::Stmt(const std::vector<ir::Expr> &,
                                          ir::Expr)> &Body) -> ir::Stmt {
    ir::Stmt Nest = SrcIt.build([&](const levels::IterEnv &Env) -> ir::Stmt {
      std::vector<ir::Expr> Coords;
      for (int D = 0; D <= UpToDim; ++D) {
        std::string V;
        bool Plain =
            remap::dimIsPlainVar(Dst.Remap, static_cast<size_t>(D), &V);
        CONVGEN_ASSERT(Plain,
                       "sorted ranking requires plain-variable dimensions");
        Coords.push_back(Env.Canonical.at(V));
      }
      return Body(Coords, Env.LastPos);
    });
    // Bodies write one disjoint slot per stored nonzero and read nothing
    // mutable, so the sweep parallelizes whenever its root is a loop.
    if (Nest && Nest->Kind == ir::StmtKind::For)
      Nest = ir::markLoopParallel(Nest);
    return Nest;
  };
  Ctx.ParentPos = [this](int K,
                         const std::vector<ir::Expr> &Coords) -> ir::Expr {
    ir::Expr P = ir::intImm(0);
    for (int L = 0; L + 1 < K; ++L) {
      P = Levels[static_cast<size_t>(L)]->pureChildPos(Ctx, P, Coords);
      CONVGEN_ASSERT(P, "sorted ranking requires pure ancestor positions");
    }
    return P;
  };
  Ctx.PackWidths = Plan.PackWidths;
  // A sorted level whose parent is itself sorted and groups exactly one
  // dim fewer can derive parent positions by prefix ranking (flag + scan
  // over its own sorted list) instead of per-block-end binary searches.
  Ctx.PrefixRankParent.assign(Levels.size() + 1, false);
  for (size_t K = 2; K <= Levels.size(); ++K)
    Ctx.PrefixRankParent[K] =
        Plan.Sorted[K - 1] && Plan.Sorted[K - 2] &&
        Dst.Levels[K - 1].Dim == Dst.Levels[K - 2].Dim + 1;

  // Insertion strategy for cursor-based compressed levels: decided before
  // any emission because emitPos/emitFinalize specialize on it.
  Ctx.Insert = chooseInsertStrategy();

  ir::BlockBuilder Fn;
  Fn.add(ir::comment(strfmt("convert %s -> %s", Src.Name.c_str(),
                            Dst.Name.c_str())));
  Fn.add(ir::phaseMark(-1, "start"));

  // Optional pre-pass: materialize non-plain remapped coordinates per
  // stored position (§3's strategy for complex orderings).
  bool Materialize = Opts.MaterializeRemap;
  if (Materialize) {
    Fn.add(ir::comment("remap: materialize remapped coordinates"));
    ir::Expr Stored = SrcIt.storedSizeExpr();
    std::vector<int> MatDims;
    for (size_t D = 0; D < Dst.Remap.DstDims.size(); ++D)
      if (!remap::dimIsPlainVar(Dst.Remap, D))
        MatDims.push_back(static_cast<int>(D));
    for (int D : MatDims)
      Fn.add(ir::alloc("mc" + std::to_string(D), ir::ScalarKind::Int,
                       Stored, false));
    // Counters advance inside this pass; later passes read the arrays.
    ir::BlockBuilder CounterInit;
    std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>> Resets;
    emitCounterSetup(CounterInit, Resets);
    Fn.add(CounterInit.build());
    // The pre-pass writes each materialized coordinate at the nonzero's
    // (unique) stored position, so it parallelizes whenever its counters
    // do; no level emitters run here.
    Fn.add(markInsertionParallel(
        SrcIt.build(
            [&](const levels::IterEnv &Env) -> ir::Stmt {
              ir::BlockBuilder Body;
              emitCounterAdvance(Env, Body);
              std::vector<ir::Expr> Coords =
                  dstCoords(Env, Body, /*UseMaterialized=*/false);
              for (int D : MatDims)
                Body.add(ir::store("mc" + std::to_string(D), Env.LastPos,
                                   Coords[static_cast<size_t>(D)]));
              return Body.build();
            },
            Resets),
        /*CheckLevels=*/false, /*CountersAdvance=*/true));
    freeCounters(Fn);
  }

  // Phase 1: analysis.
  Fn.add(Compiled.Code);
  Fn.add(ir::phaseMark(0, "analysis"));

  // Phase 2: per-level initialization (edge insertion, perm/K, arrays).
  Fn.add(ir::comment("assembly: edge insertion and initialization"));
  // Shared full-arity sort: one collect+sort+unique at the anchor level's
  // arity, emitted before any level init so every sorted level's emitInit
  // (shallowest first) can derive its own list from the shared buffer.
  if (Plan.SharedSortAnchor > 0) {
    Ctx.SharedSortAnchor = Plan.SharedSortAnchor;
    Ctx.SharedSortArity =
        Dst.Levels[static_cast<size_t>(Plan.SharedSortAnchor - 1)].Dim + 1;
    Fn.add(ir::comment(strfmt(
        "shared sorted ranking: one full-arity sort feeds levels' prefix "
        "lists (anchor level %d)",
        Plan.SharedSortAnchor)));
    Levels[static_cast<size_t>(Plan.SharedSortAnchor - 1)]
        ->emitSharedListBuild(Ctx, Fn);
  }
  LevelSizes.push_back(ir::intImm(1));
  for (size_t K = 0; K < Levels.size(); ++K) {
    Ctx.ParentSize[static_cast<int>(K) + 1] = LevelSizes.back();
    Levels[K]->emitInit(Ctx, LevelSizes.back(), Fn);
    std::string SzVar = "szB" + std::to_string(K + 1);
    Fn.add(ir::decl(SzVar, Levels[K]->getSize(Ctx, LevelSizes.back())));
    LevelSizes.push_back(ir::var(SzVar));
  }
  Fn.add(ir::alloc("B_vals", ir::ScalarKind::Float, LevelSizes.back(),
                   Dst.PaddedVals));
  for (size_t K = 0; K < Levels.size(); ++K)
    Levels[K]->emitInitPos(Ctx, LevelSizes[K], Fn);
  Fn.add(ir::phaseMark(1, "edge insertion"));

  // Phase 3: coordinate insertion — a fused pass over the source
  // (partition-blocked under the Blocked cursor strategy).
  Fn.add(ir::comment("assembly: coordinate insertion"));
  std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>> Resets;
  if (!Materialize) {
    ir::BlockBuilder CounterInit;
    emitCounterSetup(CounterInit, Resets);
    Fn.add(CounterInit.build());
  }
  // Liveness of each level's position inside the insertion body: level K's
  // position feeds its own insert_coord store, level K+1's get_pos (as the
  // parent position), and — for the last level — the vals store. Sorted
  // levels consume neither (their get_pos is a global rank and their crd
  // was written during edge insertion), so in an all-sorted chain only the
  // deepest rank is computed: one binary search per nonzero instead of one
  // per level. Only side-effect-free positions may be skipped (cursor
  // advances and workspace stamps must run regardless).
  std::vector<bool> PosSkipped(Levels.size(), false);
  for (size_t K = 0; K < Levels.size(); ++K) {
    bool Consumed = K + 1 == Levels.size() ||
                    !Levels[K]->insertCoordIsNoOp() ||
                    !Levels[K + 1]->posIgnoresParent();
    PosSkipped[K] = !Consumed && Levels[K]->posIsPure();
  }
  auto InsertionBody = [&](const levels::IterEnv &Env) -> ir::Stmt {
    ir::BlockBuilder Body;
    if (!Materialize)
      emitCounterAdvance(Env, Body);
    std::vector<ir::Expr> Coords = dstCoords(Env, Body, Materialize);
    levels::PosEnv PEnv{ir::intImm(0), Coords, Env.LastPos};
    for (size_t K = 0; K < Levels.size(); ++K) {
      if (PosSkipped[K]) {
        // The next level ignores the parent position; keep a harmless
        // placeholder so PosEnv stays well-formed.
        PEnv.ParentPos = ir::intImm(0);
        continue;
      }
      ir::Expr Pk = Levels[K]->emitPos(Ctx, PEnv, Body);
      if (Pk->Kind != ir::ExprKind::Var &&
          Pk->Kind != ir::ExprKind::IntImm) {
        std::string PVar = "pB" + std::to_string(K + 1) + "c";
        Body.add(ir::decl(PVar, Pk));
        Pk = ir::var(PVar);
      }
      Levels[K]->emitInsertCoord(Ctx, PEnv, Pk, Body);
      PEnv.ParentPos = Pk;
    }
    Body.add(ir::store("B_vals", PEnv.ParentPos,
                       ir::load("A_vals", Env.LastPos,
                                ir::ScalarKind::Float)));
    return Body.build();
  };
  if (Ctx.Insert == levels::InsertStrategy::Blocked) {
    emitBlockedInsertion(Fn, InsertionBody, Resets);
  } else {
    Fn.add(markInsertionParallel(SrcIt.build(InsertionBody, Resets),
                                 /*CheckLevels=*/true,
                                 /*CountersAdvance=*/!Materialize));
  }
  if (!Materialize)
    freeCounters(Fn);
  Fn.add(ir::phaseMark(2, "insertion"));

  // Finalizers, temp frees, yields.
  Fn.add(ir::comment("finalize and publish outputs"));
  for (size_t K = 0; K < Levels.size(); ++K)
    Levels[K]->emitFinalize(Ctx, LevelSizes[K], Fn);
  for (const auto &[Name, Ref] : Compiled.Refs)
    Fn.add(ir::freeBuffer(Name));
  if (Materialize)
    for (size_t D = 0; D < Dst.Remap.DstDims.size(); ++D)
      if (!remap::dimIsPlainVar(Dst.Remap, D))
        Fn.add(ir::freeBuffer("mc" + std::to_string(D)));
  for (size_t K = 0; K < Levels.size(); ++K)
    Levels[K]->emitYield(Ctx, LevelSizes[K], Fn);
  Fn.add(ir::yieldBuffer("B_vals", "B_vals", LevelSizes.back()));
  Fn.add(ir::phaseMark(3, "finalize"));

  Conversion Out;
  Out.Source = Src;
  Out.Target = Dst;
  Out.Opts = Opts;
  Out.Asm = Plan;
  Out.LexCheckLevels = Plan.LexCheckLevels;
  Out.Func.Name = "convert_" + Src.Name + "_to_" + Dst.Name;
  Out.Func.Params = SrcIt.params();
  Out.Func.Body = Fn.build();
  Out.Queries = Compiled.Stmts;
  return Out;
}

} // namespace

int64_t codegen::rankDenseMaxBytes() {
  // Snapshot read (codegen/Knobs.h): tests adjust the budget through
  // ScopedEnv, which reloads the snapshot; concurrent planners never race
  // a setenv.
  return knobs().RankDenseMaxBytes;
}

RankStrategy codegen::rankStrategyKnob() { return knobs().Rank; }

SortStrategy codegen::sortStrategyKnob() { return knobs().Sort; }

AssemblyPlan codegen::planAssembly(const formats::Format &Source,
                                   const formats::Format &Target,
                                   const std::vector<int64_t> &Dims) {
  Options Opts;
  Opts.DimsHint = Dims;
  return planAssembly(Source, Target, Opts);
}

AssemblyPlan codegen::planAssembly(const formats::Format &Source,
                                   const formats::Format &Target,
                                   const Options &Opts) {
  levels::SourceIterator SrcIt(Source);
  return planAssemblyImpl(Source, Target, SrcIt, Opts);
}

Options codegen::optionsForDims(const formats::Format &Source,
                                const formats::Format &Target,
                                const Options &Opts,
                                const std::vector<int64_t> &Dims) {
  Options Out = Opts;
  Out.DimsHint = Dims;
  AssemblyPlan Plan = planAssembly(Source, Target, Out);
  if (!Plan.anySorted() && Plan.Unsupported.empty())
    Out.DimsHint.clear();
  return Out;
}

bool codegen::conversionSupported(const formats::Format &Source,
                                  const formats::Format &Target,
                                  std::string *Why) {
  return conversionSupported(Source, Target, std::vector<int64_t>(), Why);
}

bool codegen::conversionSupported(const formats::Format &Source,
                                  const formats::Format &Target,
                                  const std::vector<int64_t> &Dims,
                                  std::string *Why) {
  Options Opts;
  Opts.DimsHint = Dims;
  return conversionSupported(Source, Target, Opts, Why);
}

bool codegen::conversionSupported(const formats::Format &Source,
                                  const formats::Format &Target,
                                  const Options &Opts, std::string *Why) {
  // Order mismatch must answer "unsupported" here rather than abort in
  // generateConversion: the serving layer routes arbitrary request pairs
  // through this predicate.
  if (Source.SrcOrder != Target.SrcOrder) {
    if (Why)
      *Why = "source and target formats have different canonical orders (" +
             std::to_string(Source.SrcOrder) + " vs " +
             std::to_string(Target.SrcOrder) + ")";
    return false;
  }
  std::string Reason = planAssembly(Source, Target, Opts).Unsupported;
  if (Why)
    *Why = Reason;
  return Reason.empty();
}

Conversion codegen::generateConversion(const formats::Format &Source,
                                       const formats::Format &Target,
                                       const Options &Opts) {
  formats::validateFormat(Source);
  formats::validateFormat(Target);
  if (Source.SrcOrder != Target.SrcOrder)
    fatalError("source and target formats must have the same canonical "
               "order");
  Generator G(Source, Target, Opts);
  return G.run();
}
