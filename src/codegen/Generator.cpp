//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"

#include "ir/CEmitter.h"
#include "levels/Levels.h"
#include "levels/SourceIterator.h"
#include "query/Compile.h"
#include "remap/Bounds.h"
#include "remap/Lower.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace convgen;
using namespace convgen::codegen;
using formats::LevelKind;

std::string Conversion::cSource() const { return ir::emitC(Func); }

std::string Conversion::pretty() const { return ir::printFunction(Func); }

namespace {

/// True if destination dims 0..UpTo (inclusive) plainly cover every
/// canonical index variable — in that case a compressed level at UpTo+1
/// sees each coordinate tuple at most once and needs no deduplication.
bool prefixCoversAllIVars(const remap::RemapStmt &Remap, int UpTo) {
  std::set<std::string> Covered;
  for (int D = 0; D <= UpTo && D < static_cast<int>(Remap.dstOrder()); ++D) {
    std::string Name;
    if (remap::dimIsPlainVar(Remap, static_cast<size_t>(D), &Name))
      Covered.insert(Name);
  }
  for (const std::string &V : Remap.SrcVars)
    if (!Covered.count(V))
      return false;
  return true;
}

/// Index variables a remap dimension expression depends on.
void collectDimIVars(const remap::Expr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->Kind == remap::ExprKind::IVar)
    Out.insert(E->Name);
  for (const std::string &V : E->CounterIndices)
    Out.insert(V);
  collectDimIVars(E->A, Out);
  collectDimIVars(E->B, Out);
}

/// One counter of the target remapping and how it is realized.
struct CounterPlan {
  std::vector<std::string> IVars;
  bool Scalar = false;      ///< Reuse one scalar (reset per outer row).
  int ResetLevel = 0;       ///< Source level whose body resets the scalar.
  std::string Var;          ///< Scalar name or array name.
};

struct Generator {
  const formats::Format &Src;
  const formats::Format &Dst;
  const Options &Opts;

  levels::SourceIterator SrcIt;
  std::vector<std::unique_ptr<levels::LevelFormat>> Levels;
  levels::AsmCtx Ctx;
  query::TargetShape Shape;
  std::vector<CounterPlan> Counters;
  std::vector<ir::Expr> LevelSizes; ///< sz0..szn as size variables.

  Generator(const formats::Format &Src, const formats::Format &Dst,
            const Options &Opts)
      : Src(Src), Dst(Dst), Opts(Opts), SrcIt(Src) {}

  Conversion run();

  ir::Stmt emitParentLoop(
      int K,
      const std::function<ir::Stmt(ir::Expr, const std::vector<ir::Expr> &)>
          &Body);
  void planCounters();
  void checkSupported();

  /// Lowers all destination coordinate expressions for the current
  /// nonzero; appends let/counter statements to \p Out.
  std::vector<ir::Expr> dstCoords(const levels::IterEnv &Env,
                                  ir::BlockBuilder &Out,
                                  bool UseMaterialized) const;

  /// Declares counter state (scalars or calloc'd arrays) and registers the
  /// per-loop-level scalar resets of the counter-reuse optimization.
  void emitCounterSetup(
      ir::BlockBuilder &Out,
      std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>>
          &Resets) const;

  /// Reads each counter's current value into <name>_v and increments it.
  void emitCounterAdvance(const levels::IterEnv &Env,
                          ir::BlockBuilder &Out) const;

  void freeCounters(ir::BlockBuilder &Out) const;

  /// Linearized counter-array index from the counter's index variables.
  ir::Expr counterIndex(const CounterPlan &Plan,
                        const levels::IterEnv &Env) const;

  /// True when distinct iterations of the source's outermost loop touch
  /// disjoint cells of the counter array, so parallelizing that loop keeps
  /// every cell's increment sequence in serial order.
  bool outerCounterCellsDisjoint(const CounterPlan &Plan) const;

  /// Annotates a pass over the source (coordinate insertion or the
  /// materialize pre-pass) as parallel when legal; returns it unchanged
  /// otherwise. \p CheckLevels gates on every target level's insertion
  /// being order-independent (the pre-pass runs no level emitters);
  /// \p CountersAdvance requires counters to be privatizable (scalars) or
  /// iteration-owned (arrays over the outer ivar).
  ir::Stmt markInsertionParallel(ir::Stmt Loop, bool CheckLevels,
                                 bool CountersAdvance) const;

  /// Size of a counter array: product of the index variables' dimensions.
  ir::Expr counterArraySize(const CounterPlan &Plan) const;
};

ir::Expr Generator::counterArraySize(const CounterPlan &Plan) const {
  ir::Expr Size = ir::intImm(1);
  for (const std::string &IV : Plan.IVars) {
    auto It = std::find(Src.Remap.SrcVars.begin(), Src.Remap.SrcVars.end(),
                        IV);
    CONVGEN_ASSERT(It != Src.Remap.SrcVars.end(),
                   "counter over unknown index variable");
    int D = static_cast<int>(It - Src.Remap.SrcVars.begin());
    Size = ir::mul(Size, ir::var("dim" + std::to_string(D)));
  }
  return Size;
}

ir::Expr Generator::counterIndex(const CounterPlan &Plan,
                                 const levels::IterEnv &Env) const {
  ir::Expr Index = ir::intImm(0);
  for (const std::string &IV : Plan.IVars) {
    auto It = std::find(Src.Remap.SrcVars.begin(), Src.Remap.SrcVars.end(),
                        IV);
    int D = static_cast<int>(It - Src.Remap.SrcVars.begin());
    Index = ir::add(ir::mul(Index, ir::var("dim" + std::to_string(D))),
                    Env.Canonical.at(IV));
  }
  return Index;
}

void Generator::emitCounterSetup(
    ir::BlockBuilder &Out,
    std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>> &Resets)
    const {
  std::map<int, std::vector<std::string>> ScalarResets;
  for (const CounterPlan &Plan : Counters) {
    if (Plan.Scalar) {
      Out.add(ir::decl(Plan.Var, ir::intImm(0)));
      if (Plan.ResetLevel > 0)
        ScalarResets[Plan.ResetLevel].push_back(Plan.Var);
    } else {
      Out.add(ir::alloc(Plan.Var, ir::ScalarKind::Int,
                        counterArraySize(Plan), true));
    }
  }
  for (auto &[Level, Vars] : ScalarResets) {
    std::vector<std::string> Copy = Vars;
    Resets[Level] = [Copy](const levels::IterEnv &) -> ir::Stmt {
      ir::BlockBuilder B;
      for (const std::string &V : Copy)
        B.add(ir::assign(V, ir::intImm(0)));
      return B.build();
    };
  }
}

void Generator::emitCounterAdvance(const levels::IterEnv &Env,
                                   ir::BlockBuilder &Out) const {
  for (const CounterPlan &Plan : Counters) {
    std::string Val = Plan.Var + "_v";
    if (Plan.Scalar) {
      Out.add(ir::decl(Val, ir::var(Plan.Var)));
      Out.add(ir::assign(Plan.Var, ir::add(ir::var(Plan.Var),
                                           ir::intImm(1))));
    } else {
      ir::Expr Index = counterIndex(Plan, Env);
      std::string IdxVar = Plan.Var + "_i";
      Out.add(ir::decl(IdxVar, Index));
      Out.add(ir::decl(Val, ir::load(Plan.Var, ir::var(IdxVar))));
      Out.add(ir::store(Plan.Var, ir::var(IdxVar),
                        ir::add(ir::var(Val), ir::intImm(1))));
    }
  }
}

bool Generator::outerCounterCellsDisjoint(const CounterPlan &Plan) const {
  // The parallelized loop is the source's outermost stored dimension. Its
  // iterations own disjoint counter cells iff that dimension is a plain
  // canonical ivar with a distinct value per iteration, and the counter is
  // indexed by it. (A COO-style non-unique root shares the ivar across
  // iterations, so its cells would race; dims that are arithmetic
  // expressions over ivars give no per-iteration ownership either.)
  std::string V;
  if (!remap::dimIsPlainVar(Src.Remap, 0, &V))
    return false;
  const formats::LevelSpec &L1 = Src.Levels[0];
  bool DistinctPerIteration =
      L1.Kind == LevelKind::Dense || L1.Kind == LevelKind::Squeezed ||
      L1.Kind == LevelKind::Sliced ||
      (L1.Kind == LevelKind::Compressed && L1.Unique);
  if (!DistinctPerIteration)
    return false;
  return std::find(Plan.IVars.begin(), Plan.IVars.end(), V) !=
         Plan.IVars.end();
}

ir::Stmt Generator::markInsertionParallel(ir::Stmt Loop, bool CheckLevels,
                                          bool CountersAdvance) const {
  if (!Loop || Loop->Kind != ir::StmtKind::For)
    return Loop;
  if (CheckLevels)
    for (const auto &LF : Levels)
      if (!LF->insertIsParallelSafe())
        return Loop;
  std::vector<std::string> Privates;
  if (CountersAdvance) {
    for (const CounterPlan &Plan : Counters) {
      if (Plan.Scalar) {
        // Reused scalars are reset (at their owning loop level) before any
        // use within each outer iteration, so a private copy per thread
        // reproduces serial values exactly.
        Privates.push_back(Plan.Var);
      } else if (!outerCounterCellsDisjoint(Plan)) {
        return Loop;
      }
    }
  }
  return ir::markLoopParallel(Loop, std::move(Privates));
}

void Generator::freeCounters(ir::BlockBuilder &Out) const {
  for (const CounterPlan &Plan : Counters)
    if (!Plan.Scalar)
      Out.add(ir::freeBuffer(Plan.Var));
}

std::string unsupportedReason(const formats::Format &Src,
                              const formats::Format &Dst,
                              const levels::SourceIterator &SrcIt) {
  // Single-group assembly: a level with edge insertion must be able to
  // enumerate its parent positions before any coordinate insertion ran,
  // which requires all enclosing levels to be dense (or the root).
  for (size_t K = 0; K < Dst.Levels.size(); ++K) {
    bool Edges = Dst.Levels[K].Kind == LevelKind::Compressed ||
                 Dst.Levels[K].Kind == LevelKind::Skyline;
    if (!Edges)
      continue;
    for (size_t P = 0; P < K; ++P)
      if (Dst.Levels[P].Kind != LevelKind::Dense)
        return strfmt("conversion to %s requires multi-pass assembly "
                      "(level %zu needs edge insertion below a non-dense "
                      "level), which is not supported",
                      Dst.Name.c_str(), K);
  }
  // Dedup levels rely on a version-stamp workspace, which requires every
  // nonzero of one parent to be visited contiguously: the parent dims must
  // depend only on the ivars of some *prefix* of the source's lexicographic
  // iteration order (and the set must be exactly that prefix, so the
  // parent value cannot reset when an outer variable advances).
  for (size_t K = 0; K < Dst.Levels.size(); ++K) {
    if (Dst.Levels[K].Kind != LevelKind::Compressed || !Dst.Levels[K].Unique)
      continue;
    if (prefixCoversAllIVars(Dst.Remap, static_cast<int>(K)))
      continue;
    std::vector<std::string> Ordered = SrcIt.lexOrderedIVars();
    std::set<std::string> Needed;
    for (size_t D = 0; D < K; ++D)
      collectDimIVars(remap::inlineLets(Dst.Remap.DstDims[D]), Needed);
    std::set<std::string> PrefixSet;
    bool Supported = Needed.empty();
    for (const std::string &V : Ordered) {
      PrefixSet.insert(V);
      if (PrefixSet == Needed) {
        Supported = true;
        break;
      }
    }
    if (!Supported)
      return strfmt("conversion %s -> %s needs deduplicating assembly, "
                    "which requires the source to iterate the grouping "
                    "coordinates as an ordered prefix",
                    Src.Name.c_str(), Dst.Name.c_str());
  }
  return "";
}

void Generator::checkSupported() {
  std::string Reason = unsupportedReason(Src, Dst, SrcIt);
  if (!Reason.empty())
    fatalError(Reason.c_str());
}

ir::Stmt Generator::emitParentLoop(
    int K,
    const std::function<ir::Stmt(ir::Expr, const std::vector<ir::Expr> &)>
        &Body) {
  // Enumerate positions of levels 1..K-1 (all dense; checked above) with
  // nested loops; coordinates are absolute (lo + loop var).
  std::function<ir::Stmt(int, ir::Expr, std::vector<ir::Expr>)> Emit =
      [&](int Level, ir::Expr Pos, std::vector<ir::Expr> Coords) -> ir::Stmt {
    if (Level >= K)
      return Body(Pos, Coords);
    const formats::LevelSpec &Spec =
        Dst.Levels[static_cast<size_t>(Level - 1)];
    CONVGEN_ASSERT(Spec.Kind == LevelKind::Dense,
                   "edge-insertion parents must be dense");
    std::string Var = "e" + std::to_string(Level);
    ir::Expr Extent = Ctx.dimExtent(Spec.Dim);
    ir::Expr Lo = Ctx.dimLo(Spec.Dim);
    std::vector<ir::Expr> NewCoords = Coords;
    NewCoords.push_back(ir::add(ir::var(Var), Lo));
    ir::Expr NewPos = ir::add(ir::mul(Pos, Extent), ir::var(Var));
    return ir::forRange(Var, ir::intImm(0), Extent,
                        Emit(Level + 1, NewPos, NewCoords));
  };
  return Emit(1, ir::intImm(0), {});
}

void Generator::planCounters() {
  std::vector<std::string> LoopOrdered = SrcIt.orderedLoopIVars();
  int Index = 0;
  for (const std::vector<std::string> &IVars :
       remap::collectCounters(Dst.Remap)) {
    CounterPlan Plan;
    Plan.IVars = IVars;
    Plan.Var = "cnt" + std::to_string(Index++);
    // A counter reuses one scalar when its index variables are exactly a
    // prefix of the ordered outer loops (§4.2): the scalar resets whenever
    // the innermost of those loops advances.
    if (Opts.CounterReuse && !IVars.empty() &&
        IVars.size() <= LoopOrdered.size() &&
        std::equal(IVars.begin(), IVars.end(), LoopOrdered.begin())) {
      Plan.Scalar = true;
      Plan.ResetLevel = static_cast<int>(IVars.size());
    }
    Counters.push_back(Plan);
  }
}

std::vector<ir::Expr> Generator::dstCoords(const levels::IterEnv &Env,
                                           ir::BlockBuilder &Out,
                                           bool UseMaterialized) const {
  std::vector<ir::Expr> Coords;
  remap::LowerEnv LEnv;
  LEnv.IVars = Env.Canonical;
  for (const CounterPlan &Plan : Counters)
    LEnv.Counters[remap::counterKey(Plan.IVars)] =
        ir::var(Plan.Var + "_v");
  for (size_t D = 0; D < Dst.Remap.DstDims.size(); ++D) {
    std::string PlainVar;
    if (remap::dimIsPlainVar(Dst.Remap, D, &PlainVar)) {
      Coords.push_back(Env.Canonical.at(PlainVar));
      continue;
    }
    if (UseMaterialized) {
      Coords.push_back(
          ir::load("mc" + std::to_string(D), Env.LastPos));
      continue;
    }
    LEnv.NamePrefix = "d" + std::to_string(D) + "_";
    std::vector<ir::Stmt> LetDecls;
    ir::Expr E = remap::lowerDimExpr(Dst.Remap.DstDims[D], LEnv, &LetDecls);
    Out.addAll(LetDecls);
    // Name the coordinate so positions below read like Figure 6.
    std::string CVar = "cB" + std::to_string(D);
    if (E->Kind == ir::ExprKind::Var) {
      Coords.push_back(E);
    } else {
      Out.add(ir::decl(CVar, E));
      Coords.push_back(ir::var(CVar));
    }
  }
  return Coords;
}

Conversion Generator::run() {
  checkSupported();
  planCounters();

  // Target shape: bounds of the remapped dimensions over dim0/dim1.
  std::vector<ir::Expr> SrcDims;
  for (int D = 0; D < Dst.SrcOrder; ++D)
    SrcDims.push_back(ir::var("dim" + std::to_string(D)));
  Shape.Remap = Dst.Remap;
  Shape.Bounds = remap::analyzeBounds(Dst.Remap, SrcDims);

  // Level formats with dedup decisions.
  for (size_t K = 0; K < Dst.Levels.size(); ++K) {
    bool Dedup = Dst.Levels[K].Kind == LevelKind::Compressed &&
                 Dst.Levels[K].Unique &&
                 !prefixCoversAllIVars(Dst.Remap, static_cast<int>(K));
    Levels.push_back(levels::LevelFormat::create(
        Dst.Levels[K], static_cast<int>(K) + 1, Dedup, Dst.order()));
  }

  // Compile the attribute queries the levels declare.
  std::vector<std::pair<int, query::Query>> LevelQueries;
  for (const auto &LF : Levels)
    for (const query::Query &Q : LF->queries())
      LevelQueries.push_back({LF->level(), Q});
  query::CompiledQueries Compiled = query::compileQueries(
      LevelQueries, Shape, SrcIt, Opts.OptimizeQueries);

  Ctx.Fmt = &Dst;
  Ctx.Bounds = Shape.Bounds;
  Ctx.ForceUnseqEdges = Opts.ForceUnseqEdges;
  Ctx.Result = [&](int Level, const std::string &Label) {
    auto It = Compiled.Refs.find(strfmt("q%d_%s", Level, Label.c_str()));
    CONVGEN_ASSERT(It != Compiled.Refs.end(), "missing query result");
    return It->second;
  };
  Ctx.ParentLoop = [this](int K, const auto &Body) {
    return emitParentLoop(K, Body);
  };

  ir::BlockBuilder Fn;
  Fn.add(ir::comment(strfmt("convert %s -> %s", Src.Name.c_str(),
                            Dst.Name.c_str())));

  // Optional pre-pass: materialize non-plain remapped coordinates per
  // stored position (§3's strategy for complex orderings).
  bool Materialize = Opts.MaterializeRemap;
  if (Materialize) {
    Fn.add(ir::comment("remap: materialize remapped coordinates"));
    ir::Expr Stored = SrcIt.storedSizeExpr();
    std::vector<int> MatDims;
    for (size_t D = 0; D < Dst.Remap.DstDims.size(); ++D)
      if (!remap::dimIsPlainVar(Dst.Remap, D))
        MatDims.push_back(static_cast<int>(D));
    for (int D : MatDims)
      Fn.add(ir::alloc("mc" + std::to_string(D), ir::ScalarKind::Int,
                       Stored, false));
    // Counters advance inside this pass; later passes read the arrays.
    ir::BlockBuilder CounterInit;
    std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>> Resets;
    emitCounterSetup(CounterInit, Resets);
    Fn.add(CounterInit.build());
    // The pre-pass writes each materialized coordinate at the nonzero's
    // (unique) stored position, so it parallelizes whenever its counters
    // do; no level emitters run here.
    Fn.add(markInsertionParallel(
        SrcIt.build(
            [&](const levels::IterEnv &Env) -> ir::Stmt {
              ir::BlockBuilder Body;
              emitCounterAdvance(Env, Body);
              std::vector<ir::Expr> Coords =
                  dstCoords(Env, Body, /*UseMaterialized=*/false);
              for (int D : MatDims)
                Body.add(ir::store("mc" + std::to_string(D), Env.LastPos,
                                   Coords[static_cast<size_t>(D)]));
              return Body.build();
            },
            Resets),
        /*CheckLevels=*/false, /*CountersAdvance=*/true));
    freeCounters(Fn);
  }

  // Phase 1: analysis.
  Fn.add(Compiled.Code);

  // Phase 2: per-level initialization (edge insertion, perm/K, arrays).
  Fn.add(ir::comment("assembly: edge insertion and initialization"));
  LevelSizes.push_back(ir::intImm(1));
  for (size_t K = 0; K < Levels.size(); ++K) {
    Levels[K]->emitInit(Ctx, LevelSizes.back(), Fn);
    std::string SzVar = "szB" + std::to_string(K + 1);
    Fn.add(ir::decl(SzVar, Levels[K]->getSize(Ctx, LevelSizes.back())));
    LevelSizes.push_back(ir::var(SzVar));
  }
  Fn.add(ir::alloc("B_vals", ir::ScalarKind::Float, LevelSizes.back(),
                   Dst.PaddedVals));
  for (size_t K = 0; K < Levels.size(); ++K)
    Levels[K]->emitInitPos(Ctx, LevelSizes[K], Fn);

  // Phase 3: coordinate insertion — one fused pass over the source.
  Fn.add(ir::comment("assembly: coordinate insertion"));
  std::map<int, std::function<ir::Stmt(const levels::IterEnv &)>> Resets;
  if (!Materialize) {
    ir::BlockBuilder CounterInit;
    emitCounterSetup(CounterInit, Resets);
    Fn.add(CounterInit.build());
  }
  Fn.add(markInsertionParallel(
      SrcIt.build(
          [&](const levels::IterEnv &Env) -> ir::Stmt {
            ir::BlockBuilder Body;
            if (!Materialize)
              emitCounterAdvance(Env, Body);
            std::vector<ir::Expr> Coords = dstCoords(Env, Body, Materialize);
            levels::PosEnv PEnv{ir::intImm(0), Coords};
            for (size_t K = 0; K < Levels.size(); ++K) {
              ir::Expr Pk = Levels[K]->emitPos(Ctx, PEnv, Body);
              if (Pk->Kind != ir::ExprKind::Var &&
                  Pk->Kind != ir::ExprKind::IntImm) {
                std::string PVar = "pB" + std::to_string(K + 1) + "c";
                Body.add(ir::decl(PVar, Pk));
                Pk = ir::var(PVar);
              }
              Levels[K]->emitInsertCoord(Ctx, PEnv, Pk, Body);
              PEnv.ParentPos = Pk;
            }
            Body.add(ir::store("B_vals", PEnv.ParentPos,
                               ir::load("A_vals", Env.LastPos,
                                        ir::ScalarKind::Float)));
            return Body.build();
          },
          Resets),
      /*CheckLevels=*/true, /*CountersAdvance=*/!Materialize));
  if (!Materialize)
    freeCounters(Fn);

  // Finalizers, temp frees, yields.
  Fn.add(ir::comment("finalize and publish outputs"));
  for (size_t K = 0; K < Levels.size(); ++K)
    Levels[K]->emitFinalize(Ctx, LevelSizes[K], Fn);
  for (const auto &[Name, Ref] : Compiled.Refs)
    Fn.add(ir::freeBuffer(Name));
  if (Materialize)
    for (size_t D = 0; D < Dst.Remap.DstDims.size(); ++D)
      if (!remap::dimIsPlainVar(Dst.Remap, D))
        Fn.add(ir::freeBuffer("mc" + std::to_string(D)));
  for (size_t K = 0; K < Levels.size(); ++K)
    Levels[K]->emitYield(Ctx, LevelSizes[K], Fn);
  Fn.add(ir::yieldBuffer("B_vals", "B_vals", LevelSizes.back()));

  Conversion Out;
  Out.Source = Src;
  Out.Target = Dst;
  Out.Opts = Opts;
  Out.Func.Name = "convert_" + Src.Name + "_to_" + Dst.Name;
  Out.Func.Params = SrcIt.params();
  Out.Func.Body = Fn.build();
  Out.Queries = Compiled.Stmts;
  return Out;
}

} // namespace

bool codegen::conversionSupported(const formats::Format &Source,
                                  const formats::Format &Target,
                                  std::string *Why) {
  levels::SourceIterator SrcIt(Source);
  std::string Reason = unsupportedReason(Source, Target, SrcIt);
  if (Why)
    *Why = Reason;
  return Reason.empty();
}

Conversion codegen::generateConversion(const formats::Format &Source,
                                       const formats::Format &Target,
                                       const Options &Opts) {
  formats::validateFormat(Source);
  formats::validateFormat(Target);
  if (Source.SrcOrder != Target.SrcOrder)
    fatalError("source and target formats must have the same canonical "
               "order");
  Generator G(Source, Target, Opts);
  return G.run();
}
