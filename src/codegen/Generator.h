//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conversion code generator: combines a source format's iteration
/// level functions with a target format's coordinate remapping, attribute
/// queries, and assembly level functions to emit a complete conversion
/// routine (paper §3, §6.2). The emitted function has the three logical
/// phases of Figure 6 — analysis (fused attribute-query sweeps), per-level
/// initialization/edge insertion, and a single fused coordinate-insertion
/// pass over the source — plus finalizers and output yields.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CODEGEN_GENERATOR_H
#define CONVGEN_CODEGEN_GENERATOR_H

#include "formats/Format.h"
#include "ir/IR.h"
#include "query/Cin.h"

#include <string>
#include <vector>

namespace convgen {
namespace codegen {

/// Generation options; the defaults reproduce the paper's technique, the
/// toggles drive the ablation studies.
struct Options {
  /// Apply the Table 1 attribute-query optimizations (§5.2).
  bool OptimizeQueries = true;
  /// Reuse a scalar for counters whose index variables are bound by the
  /// source's ordered outer loops (§4.2); otherwise counter arrays.
  bool CounterReuse = true;
  /// Use unsequenced edge insertion (scatter + prefix sum) even where the
  /// sequenced variant applies (§6.1); exercised by tests/ablations.
  bool ForceUnseqEdges = false;
  /// Materialize remapped coordinates in a separate pre-pass instead of
  /// fusing remapping into assembly (§3's discussion of complex orderings).
  bool MaterializeRemap = false;
};

/// A generated conversion routine.
struct Conversion {
  formats::Format Source;
  formats::Format Target;
  Options Opts;
  ir::Function Func;
  /// Optimized attribute queries, for inspection and golden tests.
  std::vector<std::pair<std::string, query::CinStmt>> Queries;
  /// Leading source levels whose lexicographic order the routine's
  /// sequenced dedup assembly trusts but the format cannot guarantee
  /// structurally (a coo tensor's crd arrays may legally be unsorted, e.g.
  /// csc -> coo output is column-major). The conversion runners validate
  /// these levels per input tensor and reject unsorted sources instead of
  /// assembling garbage; 0 means no check is needed.
  int LexCheckLevels = 0;

  /// Complete C99 translation unit (JIT input).
  std::string cSource() const;
  /// C-like body text (the "Figure 6 view").
  std::string pretty() const;
};

/// Generates the conversion routine from \p Source to \p Target. Aborts
/// with a diagnostic for unsupported combinations (documented in
/// DESIGN.md): multi-pass targets whose edge insertion needs coordinates
/// assembled by an earlier compressed level, or dedup targets fed by
/// sources without the required iteration order.
Conversion generateConversion(const formats::Format &Source,
                              const formats::Format &Target,
                              const Options &Opts = Options());

/// True when generateConversion supports the pair; otherwise false with a
/// human-readable reason in \p Why. Lets callers (and the all-pairs test
/// suite) distinguish documented limitations from bugs.
bool conversionSupported(const formats::Format &Source,
                         const formats::Format &Target,
                         std::string *Why = nullptr);

} // namespace codegen
} // namespace convgen

#endif // CONVGEN_CODEGEN_GENERATOR_H
