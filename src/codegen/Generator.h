//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conversion code generator: combines a source format's iteration
/// level functions with a target format's coordinate remapping, attribute
/// queries, and assembly level functions to emit a complete conversion
/// routine (paper §3, §6.2). The emitted function has the three logical
/// phases of Figure 6 — analysis (fused attribute-query sweeps), per-level
/// initialization/edge insertion, and a single fused coordinate-insertion
/// pass over the source — plus finalizers and output yields.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CODEGEN_GENERATOR_H
#define CONVGEN_CODEGEN_GENERATOR_H

#include "formats/Format.h"
#include "ir/IR.h"
#include "query/Cin.h"

#include <cstdint>
#include <string>
#include <vector>

namespace convgen {
namespace codegen {

/// Generation options; the defaults reproduce the paper's technique, the
/// toggles drive the ablation studies.
struct Options {
  /// Apply the Table 1 attribute-query optimizations (§5.2).
  bool OptimizeQueries = true;
  /// Reuse a scalar for counters whose index variables are bound by the
  /// source's ordered outer loops (§4.2); otherwise counter arrays.
  bool CounterReuse = true;
  /// Use unsequenced edge insertion (scatter + prefix sum) even where the
  /// sequenced variant applies (§6.1); exercised by tests/ablations.
  bool ForceUnseqEdges = false;
  /// Materialize remapped coordinates in a separate pre-pass instead of
  /// fusing remapping into assembly (§3's discussion of complex orderings).
  bool MaterializeRemap = false;
  /// The input tensor's dimension sizes, when known at plan time. Drives
  /// the size-based assembly strategy selection: levels whose dense rank
  /// array / query buffers would exceed rankDenseMaxBytes() switch to the
  /// O(nnz)-memory sorted-ranking strategy (or the pair is rejected with a
  /// size-grounds diagnostic when that fallback does not apply). Leave
  /// empty for the extent-independent default plan; use optionsForDims()
  /// to populate it only when the dims actually change the plan, so small
  /// tensors keep sharing one cached plan per pair.
  std::vector<int64_t> DimsHint;
};

/// Per-level assembly strategy decisions plus the support verdict for a
/// conversion pair, exactly as the generator will apply them. Exposed so
/// tests can pin which strategy the planner picks at/below/above the size
/// threshold and so runtimes can detect when a tensor's dims require a
/// dims-specific plan.
struct AssemblyPlan {
  std::vector<bool> Dedup;  ///< Compressed level needs dedup insertion.
  std::vector<bool> Ranked; ///< Dedup is the ranked (dense rank-array)
                            ///< variant; see levels::LevelFormat::create.
  /// Level uses the sorted-ranking strategy: O(nnz) tuple sort + binary
  /// search positions instead of dense rank arrays / query buffers, chosen
  /// when the dense footprint would exceed rankDenseMaxBytes().
  std::vector<bool> Sorted;
  /// Sorted level builds its list through the hashed-presence variant
  /// (open-addressing dedup before the sort, so the sort touches only
  /// distinct tuples). Selected by CONVGEN_RANK_STRATEGY=hashed, or — as
  /// a width heuristic — automatically when the level's grouping tuple is
  /// narrower than the tensor order, where projection creates duplicates
  /// (certain once nnz exceeds the grouping space, though hyper-sparse
  /// data may still dedup nothing). Always a subset of Sorted; results
  /// are bit-identical to the plain sorted variant.
  std::vector<bool> Hashed;
  /// Nonzero: all sorted levels group by nested prefixes of one coordinate
  /// tuple, and this (1-based) level — the deepest, full-arity one —
  /// anchors a single shared collect+sort+unique that every other sorted
  /// level derives its list from by prefix compaction. 0 when levels sort
  /// independently (fewer than two sorted levels, non-nested grouping
  /// tuples, or CONVGEN_NO_SHARED_SORT=1).
  int SharedSortAnchor = 0;
  /// Sorted levels lower their tuple sorts through the packed-key radix
  /// sort: every destination extent is known, the full-order coordinate
  /// tuple packs into one uint64_t (sum of per-dim ceil(log2(extent))
  /// widths <= 64), and sortStrategyKnob() allows it (auto = radix
  /// whenever the keys fit). The sorted output is the identical pure
  /// function of the input either way, so results never depend on the bit.
  bool PackedSort = false;
  /// PackedSort only: the per-destination-dim bit widths (dimension
  /// order); empty otherwise.
  std::vector<int64_t> PackWidths;
  /// Leading source levels whose lexicographic order the sequenced dedup
  /// workspace trusts but the source format cannot guarantee structurally;
  /// the converter validates them at run time. 0 when no check is needed.
  int LexCheckLevels = 0;
  std::string Unsupported; ///< Nonempty: human-readable reason.

  bool anySorted() const {
    for (bool S : Sorted)
      if (S)
        return true;
    return false;
  }
  bool anyHashed() const {
    for (bool H : Hashed)
      if (H)
        return true;
    return false;
  }
};

/// Computes the assembly plan for a pair, optionally specialized to the
/// input tensor's dimension sizes (\p Dims empty or of the wrong arity
/// means "unknown extents": every dense-footprint check passes and the
/// extent-independent default plan results).
AssemblyPlan planAssembly(const formats::Format &Source,
                          const formats::Format &Target,
                          const std::vector<int64_t> &Dims = {});

/// Byte budget for dense per-level ranking structures (rank arrays,
/// presence bit sets, grouped query buffers): levels whose estimated
/// footprint exceeds it take the sorted-ranking fallback. Read from
/// CONVGEN_RANK_DENSE_MAX_BYTES on every call (so tests can vary it);
/// defaults to 64 MiB.
int64_t rankDenseMaxBytes();

/// How sorted-ranking levels build their unique tuple lists. Auto applies
/// the width heuristic (hash-dedup before sorting whenever the level's
/// grouping tuple is narrower than the tensor order, i.e. duplicates are
/// guaranteed); Sorted forces the plain sort+unique; Hashed forces the
/// hash-dedup pre-pass everywhere.
enum class RankStrategy : uint8_t { Auto, Sorted, Hashed };

/// The CONVGEN_RANK_STRATEGY environment knob ("auto" | "sorted" |
/// "hashed"; anything else, including unset, reads as auto). Re-read on
/// every call. The knob participates in plan keys and JIT compile flags so
/// flipping it can never hit a stale cached plan or shared object.
RankStrategy rankStrategyKnob();

/// How sorted-ranking levels lower their tuple sorts. Auto packs the
/// coordinates into one 64-bit key and radix-sorts whenever the dims hint
/// proves they fit (ceil(log2(extent)) bits per dim, total <= 64); Merge
/// forces the comparison merge sort everywhere; Radix asks for the packed
/// sort but still falls back to merge when the keys do not fit or no hint
/// exists — packability is a property of the extents, not a preference.
enum class SortStrategy : uint8_t { Auto, Merge, Radix };

/// The CONVGEN_SORT_STRATEGY environment knob ("auto" | "merge" | "radix";
/// anything else, including unset, reads as auto). Re-read on every call.
/// Participates in plan keys (via the re-derived PackedSort bit) and JIT
/// compile flags so flipping it can never hit a stale cached plan or
/// shared object.
SortStrategy sortStrategyKnob();

/// Returns \p Opts with DimsHint populated iff these dims change the
/// pair's assembly plan (a sorted level or a size-grounds rejection);
/// otherwise DimsHint is cleared so callers share the default cached plan.
/// The conversion runners use this to route huge-dimension tensors to a
/// dims-specialized plan automatically.
Options optionsForDims(const formats::Format &Source,
                       const formats::Format &Target, const Options &Opts,
                       const std::vector<int64_t> &Dims);

/// A generated conversion routine.
struct Conversion {
  formats::Format Source;
  formats::Format Target;
  Options Opts;
  /// The assembly plan this routine was generated from. Runtime guards
  /// compare against these recorded bits — not a re-derivation, which
  /// would drift from the compiled code whenever the environment's size
  /// budget changed between generation and execution.
  AssemblyPlan Asm;
  ir::Function Func;
  /// Optimized attribute queries, for inspection and golden tests.
  std::vector<std::pair<std::string, query::CinStmt>> Queries;
  /// Leading source levels whose lexicographic order the routine's
  /// sequenced dedup assembly trusts but the format cannot guarantee
  /// structurally (a coo tensor's crd arrays may legally be unsorted, e.g.
  /// csc -> coo output is column-major). The conversion runners validate
  /// these levels per input tensor and reject unsorted sources instead of
  /// assembling garbage; 0 means no check is needed.
  int LexCheckLevels = 0;

  /// Complete C99 translation unit (JIT input).
  std::string cSource() const;
  /// C-like body text (the "Figure 6 view").
  std::string pretty() const;
};

/// Generates the conversion routine from \p Source to \p Target. Aborts
/// with a diagnostic for unsupported combinations (documented in
/// DESIGN.md): multi-pass targets whose edge insertion needs coordinates
/// assembled by an earlier compressed level, or dedup targets fed by
/// sources without the required iteration order.
Conversion generateConversion(const formats::Format &Source,
                              const formats::Format &Target,
                              const Options &Opts = Options());

/// True when generateConversion supports the pair; otherwise false with a
/// human-readable reason in \p Why. Lets callers (and the all-pairs test
/// suite) distinguish documented limitations from bugs.
bool conversionSupported(const formats::Format &Source,
                         const formats::Format &Target,
                         std::string *Why = nullptr);

/// Dims-aware variant: additionally rejects (with a size-grounds
/// diagnostic) pairs whose dense ranking structures would exceed
/// rankDenseMaxBytes() at these dimension sizes and no sorted-ranking
/// fallback applies.
bool conversionSupported(const formats::Format &Source,
                         const formats::Format &Target,
                         const std::vector<int64_t> &Dims,
                         std::string *Why = nullptr);

} // namespace codegen
} // namespace convgen

#endif // CONVGEN_CODEGEN_GENERATOR_H
