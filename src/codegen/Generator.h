//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conversion code generator: combines a source format's iteration
/// level functions with a target format's coordinate remapping, attribute
/// queries, and assembly level functions to emit a complete conversion
/// routine (paper §3, §6.2). The emitted function has the three logical
/// phases of Figure 6 — analysis (fused attribute-query sweeps), per-level
/// initialization/edge insertion, and a single fused coordinate-insertion
/// pass over the source — plus finalizers and output yields.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CODEGEN_GENERATOR_H
#define CONVGEN_CODEGEN_GENERATOR_H

#include "codegen/Knobs.h"
#include "formats/Format.h"
#include "ir/IR.h"
#include "query/Cin.h"

#include <cstdint>
#include <string>
#include <vector>

namespace convgen {
namespace codegen {

/// Generation options; the defaults reproduce the paper's technique, the
/// toggles drive the ablation studies.
struct Options {
  /// Apply the Table 1 attribute-query optimizations (§5.2).
  bool OptimizeQueries = true;
  /// Reuse a scalar for counters whose index variables are bound by the
  /// source's ordered outer loops (§4.2); otherwise counter arrays.
  bool CounterReuse = true;
  /// Use unsequenced edge insertion (scatter + prefix sum) even where the
  /// sequenced variant applies (§6.1); exercised by tests/ablations.
  bool ForceUnseqEdges = false;
  /// Materialize remapped coordinates in a separate pre-pass instead of
  /// fusing remapping into assembly (§3's discussion of complex orderings).
  bool MaterializeRemap = false;
  /// The input tensor's dimension sizes, when known at plan time. Drives
  /// the size-based assembly strategy selection: levels whose dense rank
  /// array / query buffers would exceed rankDenseMaxBytes() switch to the
  /// O(nnz)-memory sorted-ranking strategy (or the pair is rejected with a
  /// size-grounds diagnostic when that fallback does not apply). Leave
  /// empty for the extent-independent default plan; use optionsForDims()
  /// to populate it only when the dims actually change the plan, so small
  /// tensors keep sharing one cached plan per pair.
  std::vector<int64_t> DimsHint;

  //===--- Planner-forced strategy assignments -------------------------===//
  // The conversion path planner (src/planner/) expresses its candidate
  // strategy assignments through these fields. Precedence per decision:
  // a non-Auto environment knob always wins (explicit pinning overrides
  // the planner — existing knob tests keep passing), then the forced
  // field, then the auto heuristic. All forced fields participate in plan
  // keys and JIT compile flags, so a planner decision can never alias a
  // differently-generated cached object.

  /// Force the sorted-ranking list-construction variant (plain sorted or
  /// hashed pre-dedup) when CONVGEN_RANK_STRATEGY is auto/unset.
  RankStrategy ForceRank = RankStrategy::Auto;
  /// Force the sort lowering (merge or packed radix) when
  /// CONVGEN_SORT_STRATEGY is auto/unset. Radix still requires packable
  /// extents, exactly like the env knob.
  SortStrategy ForceSort = SortStrategy::Auto;
  /// Disable the shared full-arity sort, like CONVGEN_NO_SHARED_SORT=1.
  bool ForceNoSharedSort = false;
  /// Put every eligible compressed level on the O(nnz) sorted-ranking
  /// strategy even under the dense-footprint budget (the planner's
  /// "sort-first" direct variant). planAssembly() reports Unsupported with
  /// a planner-specific diagnostic when a level fails the strategy's
  /// preconditions instead of silently keeping dense ranking.
  bool ForceSortedRanking = false;

  /// True when any planner-forced field deviates from its default. Forced
  /// plans are excluded from the warm-start manifest (its compact option
  /// encoding carries only the paper-ablation bits).
  bool anyForced() const {
    return ForceRank != RankStrategy::Auto ||
           ForceSort != SortStrategy::Auto || ForceNoSharedSort ||
           ForceSortedRanking;
  }
};

/// Per-level assembly strategy decisions plus the support verdict for a
/// conversion pair, exactly as the generator will apply them. Exposed so
/// tests can pin which strategy the planner picks at/below/above the size
/// threshold and so runtimes can detect when a tensor's dims require a
/// dims-specific plan.
struct AssemblyPlan {
  std::vector<bool> Dedup;  ///< Compressed level needs dedup insertion.
  std::vector<bool> Ranked; ///< Dedup is the ranked (dense rank-array)
                            ///< variant; see levels::LevelFormat::create.
  /// Level uses the sorted-ranking strategy: O(nnz) tuple sort + binary
  /// search positions instead of dense rank arrays / query buffers, chosen
  /// when the dense footprint would exceed rankDenseMaxBytes().
  std::vector<bool> Sorted;
  /// Sorted level builds its list through the hashed-presence variant
  /// (open-addressing dedup before the sort, so the sort touches only
  /// distinct tuples). Selected by CONVGEN_RANK_STRATEGY=hashed, or — as
  /// a width heuristic — automatically when the level's grouping tuple is
  /// narrower than the tensor order, where projection creates duplicates
  /// (certain once nnz exceeds the grouping space, though hyper-sparse
  /// data may still dedup nothing). Always a subset of Sorted; results
  /// are bit-identical to the plain sorted variant.
  std::vector<bool> Hashed;
  /// Nonzero: all sorted levels group by nested prefixes of one coordinate
  /// tuple, and this (1-based) level — the deepest, full-arity one —
  /// anchors a single shared collect+sort+unique that every other sorted
  /// level derives its list from by prefix compaction. 0 when levels sort
  /// independently (fewer than two sorted levels, non-nested grouping
  /// tuples, or CONVGEN_NO_SHARED_SORT=1).
  int SharedSortAnchor = 0;
  /// Sorted levels lower their tuple sorts through the packed-key radix
  /// sort: every destination extent is known, the full-order coordinate
  /// tuple packs into one uint64_t (sum of per-dim ceil(log2(extent))
  /// widths <= 64), and sortStrategyKnob() allows it (auto = radix
  /// whenever the keys fit). The sorted output is the identical pure
  /// function of the input either way, so results never depend on the bit.
  bool PackedSort = false;
  /// PackedSort only: the per-destination-dim bit widths (dimension
  /// order); empty otherwise.
  std::vector<int64_t> PackWidths;
  /// Leading source levels whose lexicographic order the sequenced dedup
  /// workspace trusts but the source format cannot guarantee structurally;
  /// the converter validates them at run time. 0 when no check is needed.
  int LexCheckLevels = 0;
  std::string Unsupported; ///< Nonempty: human-readable reason.

  bool anySorted() const {
    for (bool S : Sorted)
      if (S)
        return true;
    return false;
  }
  bool anyHashed() const {
    for (bool H : Hashed)
      if (H)
        return true;
    return false;
  }
};

/// Computes the assembly plan for a pair, optionally specialized to the
/// input tensor's dimension sizes (\p Dims empty or of the wrong arity
/// means "unknown extents": every dense-footprint check passes and the
/// extent-independent default plan results).
AssemblyPlan planAssembly(const formats::Format &Source,
                          const formats::Format &Target,
                          const std::vector<int64_t> &Dims = {});

/// Options-aware variant: reads the dims hint *and* the planner-forced
/// strategy fields from \p Opts. The three-field overload is equivalent to
/// default options with DimsHint = Dims.
AssemblyPlan planAssembly(const formats::Format &Source,
                          const formats::Format &Target,
                          const Options &Opts);

/// Byte budget for dense per-level ranking structures (rank arrays,
/// presence bit sets, grouped query buffers): levels whose estimated
/// footprint exceeds it take the sorted-ranking fallback. Reads the
/// CONVGEN_RANK_DENSE_MAX_BYTES snapshot (knobs(); tests vary it through
/// ScopedEnv, which reloads the snapshot); defaults to 64 MiB.
int64_t rankDenseMaxBytes();

/// The CONVGEN_RANK_STRATEGY knob ("auto" | "sorted" | "hashed"; anything
/// else, including unset, reads as auto), from the knobs() snapshot. The
/// knob participates in plan keys and JIT compile flags so flipping it
/// (and reloading) can never hit a stale cached plan or shared object.
RankStrategy rankStrategyKnob();

/// The CONVGEN_SORT_STRATEGY knob ("auto" | "merge" | "radix"; anything
/// else, including unset, reads as auto), from the knobs() snapshot.
/// Participates in plan keys (via the re-derived PackedSort bit) and JIT
/// compile flags so flipping it (and reloading) can never hit a stale
/// cached plan or shared object.
SortStrategy sortStrategyKnob();

/// Returns \p Opts with DimsHint populated iff these dims change the
/// pair's assembly plan (a sorted level or a size-grounds rejection);
/// otherwise DimsHint is cleared so callers share the default cached plan.
/// The conversion runners use this to route huge-dimension tensors to a
/// dims-specialized plan automatically.
Options optionsForDims(const formats::Format &Source,
                       const formats::Format &Target, const Options &Opts,
                       const std::vector<int64_t> &Dims);

/// A generated conversion routine.
struct Conversion {
  formats::Format Source;
  formats::Format Target;
  Options Opts;
  /// The assembly plan this routine was generated from. Runtime guards
  /// compare against these recorded bits — not a re-derivation, which
  /// would drift from the compiled code whenever the environment's size
  /// budget changed between generation and execution.
  AssemblyPlan Asm;
  ir::Function Func;
  /// Optimized attribute queries, for inspection and golden tests.
  std::vector<std::pair<std::string, query::CinStmt>> Queries;
  /// Leading source levels whose lexicographic order the routine's
  /// sequenced dedup assembly trusts but the format cannot guarantee
  /// structurally (a coo tensor's crd arrays may legally be unsorted, e.g.
  /// csc -> coo output is column-major). The conversion runners validate
  /// these levels per input tensor and reject unsorted sources instead of
  /// assembling garbage; 0 means no check is needed.
  int LexCheckLevels = 0;

  /// Complete C99 translation unit (JIT input).
  std::string cSource() const;
  /// C-like body text (the "Figure 6 view").
  std::string pretty() const;
};

/// Generates the conversion routine from \p Source to \p Target. Aborts
/// with a diagnostic for unsupported combinations (documented in
/// DESIGN.md): multi-pass targets whose edge insertion needs coordinates
/// assembled by an earlier compressed level, or dedup targets fed by
/// sources without the required iteration order.
Conversion generateConversion(const formats::Format &Source,
                              const formats::Format &Target,
                              const Options &Opts = Options());

/// True when generateConversion supports the pair; otherwise false with a
/// human-readable reason in \p Why. Lets callers (and the all-pairs test
/// suite) distinguish documented limitations from bugs.
bool conversionSupported(const formats::Format &Source,
                         const formats::Format &Target,
                         std::string *Why = nullptr);

/// Dims-aware variant: additionally rejects (with a size-grounds
/// diagnostic) pairs whose dense ranking structures would exceed
/// rankDenseMaxBytes() at these dimension sizes and no sorted-ranking
/// fallback applies.
bool conversionSupported(const formats::Format &Source,
                         const formats::Format &Target,
                         const std::vector<int64_t> &Dims,
                         std::string *Why = nullptr);

/// Options-aware variant: honors the dims hint *and* the planner-forced
/// strategy fields (a forced strategy whose preconditions fail makes the
/// pair unsupported under those options, never a silent fallback).
bool conversionSupported(const formats::Format &Source,
                         const formats::Format &Target,
                         const Options &Opts, std::string *Why = nullptr);

} // namespace codegen
} // namespace convgen

#endif // CONVGEN_CODEGEN_GENERATOR_H
