//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One thread-safe snapshot of every CONVGEN_* strategy knob. The codegen
/// and JIT layers used to call getenv() per decision, which races against
/// setenv() from test fixtures when service threads plan concurrently
/// (getenv/setenv are not thread-safe as a pair). All strategy knobs are
/// now parsed once into an immutable StrategyKnobs snapshot that every
/// call site reads through knobs(); reloadKnobsFromEnv() swaps in a fresh
/// snapshot for tests that scope the environment (tests/ScopedEnv.h calls
/// it automatically).
///
/// Scope: only the *strategy* knobs that feed planning decisions live
/// here. Operational settings (cache directories, fault injection,
/// deadlines, preload mode) keep their per-use getenv reads — they are
/// read from single-threaded setup paths or are themselves snapshotted at
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_CODEGEN_KNOBS_H
#define CONVGEN_CODEGEN_KNOBS_H

#include <cstdint>

namespace convgen {
namespace codegen {

/// How sorted-ranking levels build their unique tuple lists. Auto applies
/// the width heuristic (hash-dedup before sorting whenever the level's
/// grouping tuple is narrower than the tensor order, i.e. duplicates are
/// guaranteed); Sorted forces the plain sort+unique; Hashed forces the
/// hash-dedup pre-pass everywhere.
enum class RankStrategy : uint8_t { Auto, Sorted, Hashed };

/// How sorted-ranking levels lower their tuple sorts. Auto packs the
/// coordinates into one 64-bit key and radix-sorts whenever the dims hint
/// proves they fit (ceil(log2(extent)) bits per dim, total <= 64); Merge
/// forces the comparison merge sort everywhere; Radix asks for the packed
/// sort but still falls back to merge when the keys do not fit or no hint
/// exists — packability is a property of the extents, not a preference.
enum class SortStrategy : uint8_t { Auto, Merge, Radix };

/// The strategy-knob snapshot. Field defaults are the unset-environment
/// values; parsing rules per field are in the accessors' docs below and in
/// README's knob table.
struct StrategyKnobs {
  /// CONVGEN_RANK_STRATEGY: "sorted" | "hashed"; anything else (including
  /// unset) is Auto.
  RankStrategy Rank = RankStrategy::Auto;
  /// CONVGEN_SORT_STRATEGY: "merge" | "radix"; anything else is Auto.
  SortStrategy Sort = SortStrategy::Auto;
  /// CONVGEN_NO_SHARED_SORT: any nonempty value other than "0" disables
  /// the shared full-arity sort.
  bool NoSharedSort = false;
  /// CONVGEN_RANK_DENSE_MAX_BYTES: byte budget for dense per-level ranking
  /// structures; non-positive or unparsable values keep the default.
  int64_t RankDenseMaxBytes = int64_t(64) << 20;
  /// CONVGEN_PLANNER: "off" or "0" disables the conversion path planner
  /// (pre-planner direct behavior); anything else leaves it on.
  bool PlannerOn = true;
  /// CONVGEN_PLANNER_MIN_NNZ: smallest input (stored nonzeros) the planner
  /// engages on. Below it the default direct path runs untouched, so tiny
  /// tensors (and the pre-planner test suite) never pay planning overhead.
  int64_t PlannerMinNnz = 32768;
  /// CONVGEN_PLANNER_TRUST_AFTER: measured-outcome observations per
  /// candidate before the planner trusts measurements over the analytic
  /// cost model.
  int64_t PlannerTrustAfter = 3;
  /// CONVGEN_PLANNER_MARGIN: relative improvement a measured alternative
  /// must show over the analytic winner's own measurement before the
  /// decision flips (hysteresis against noise).
  double PlannerMargin = 0.15;
};

/// The current snapshot. First use parses the environment once; after
/// that every call is a single atomic load. The reference stays valid for
/// the process lifetime even across reloadKnobsFromEnv() (superseded
/// snapshots are intentionally leaked so concurrent readers never dangle).
const StrategyKnobs &knobs();

/// Re-parses every strategy knob from the environment and publishes the
/// fresh snapshot. Test-only reset hook: production processes configure
/// the environment before first use and never call this. Callers already
/// holding a `const StrategyKnobs &` keep their old (still valid)
/// snapshot; new knobs() calls see the new one.
void reloadKnobsFromEnv();

} // namespace codegen
} // namespace convgen

#endif // CONVGEN_CODEGEN_KNOBS_H
