//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/Knobs.h"

#include <atomic>
#include <cstdlib>
#include <string>

using namespace convgen;
using namespace convgen::codegen;

namespace {

/// The published snapshot. Never deleted: readers hold plain references
/// with no lifetime token, so a superseded snapshot must outlive any
/// thread that loaded it. reloadKnobsFromEnv() is a test-only hook — the
/// leak is a handful of ~64-byte structs per test binary, by design.
std::atomic<const StrategyKnobs *> Current{nullptr};

int64_t parseInt(const char *Name, int64_t Default, bool RequirePositive) {
  const char *Env = std::getenv(Name);
  if (!Env)
    return Default;
  char *End = nullptr;
  long long V = std::strtoll(Env, &End, 10);
  if (End == Env || *End != '\0')
    return Default;
  if (RequirePositive && V <= 0)
    return Default;
  return static_cast<int64_t>(V);
}

bool envTruthy(const char *Name) {
  const char *Env = std::getenv(Name);
  return Env && *Env && std::string(Env) != "0";
}

const StrategyKnobs *parseFromEnv() {
  auto *K = new StrategyKnobs();
  if (const char *Env = std::getenv("CONVGEN_RANK_STRATEGY")) {
    std::string V = Env;
    if (V == "sorted")
      K->Rank = RankStrategy::Sorted;
    else if (V == "hashed")
      K->Rank = RankStrategy::Hashed;
  }
  if (const char *Env = std::getenv("CONVGEN_SORT_STRATEGY")) {
    std::string V = Env;
    if (V == "merge")
      K->Sort = SortStrategy::Merge;
    else if (V == "radix")
      K->Sort = SortStrategy::Radix;
  }
  K->NoSharedSort = envTruthy("CONVGEN_NO_SHARED_SORT");
  K->RankDenseMaxBytes = parseInt("CONVGEN_RANK_DENSE_MAX_BYTES",
                                  K->RankDenseMaxBytes, true);
  if (const char *Env = std::getenv("CONVGEN_PLANNER")) {
    std::string V = Env;
    K->PlannerOn = !(V == "off" || V == "0");
  }
  K->PlannerMinNnz =
      parseInt("CONVGEN_PLANNER_MIN_NNZ", K->PlannerMinNnz, false);
  K->PlannerTrustAfter =
      parseInt("CONVGEN_PLANNER_TRUST_AFTER", K->PlannerTrustAfter, true);
  if (const char *Env = std::getenv("CONVGEN_PLANNER_MARGIN")) {
    char *End = nullptr;
    double V = std::strtod(Env, &End);
    if (End != Env && *End == '\0' && V >= 0 && V < 1)
      K->PlannerMargin = V;
  }
  return K;
}

} // namespace

const StrategyKnobs &codegen::knobs() {
  const StrategyKnobs *K = Current.load(std::memory_order_acquire);
  if (K)
    return *K;
  // First use: parse and publish. A racing first use may parse too; one
  // snapshot wins the CAS, the loser's copy is freed (both parsed the same
  // environment, so either is correct).
  const StrategyKnobs *Fresh = parseFromEnv();
  const StrategyKnobs *Expected = nullptr;
  if (Current.compare_exchange_strong(Expected, Fresh,
                                      std::memory_order_acq_rel))
    return *Fresh;
  delete Fresh;
  return *Expected;
}

void codegen::reloadKnobsFromEnv() {
  // The superseded snapshot is leaked, never freed: a concurrent reader
  // that loaded it before the swap may still be dereferencing it.
  Current.store(parseFromEnv(), std::memory_order_release);
}
