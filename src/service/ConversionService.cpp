//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ConversionService.h"

#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "jit/Jit.h"
#include "planner/Planner.h"
#include "support/Assert.h"
#include "support/DegradationLog.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <thread>
#include <utility>

using namespace convgen;
using namespace convgen::convert;
using support::Deadline;
using support::Degradation;
using support::DegradationLog;

static int64_t envInt(const char *Name, int64_t Default) {
  if (const char *Env = std::getenv(Name)) {
    char *End = nullptr;
    long long V = std::strtoll(Env, &End, 10);
    if (End != Env && *End == '\0')
      return V;
  }
  return Default;
}

ServiceLimits ServiceLimits::fromEnv() {
  int Hw = static_cast<int>(std::thread::hardware_concurrency());
  if (Hw < 1)
    Hw = 1;
  ServiceLimits L;
  // 2x the hardware threads: conversion is memory-bound enough that a
  // little oversubscription keeps cores busy across the marshal/compile
  // gaps without drowning the allocator.
  L.MaxInflight =
      static_cast<int>(envInt("CONVGEN_MAX_INFLIGHT", 2LL * Hw));
  if (L.MaxInflight < 1)
    L.MaxInflight = 1;
  L.QueueDepth = static_cast<int>(
      envInt("CONVGEN_QUEUE_DEPTH", 2LL * L.MaxInflight));
  if (L.QueueDepth < 0)
    L.QueueDepth = 0;
  L.DefaultDeadlineMs = envInt("CONVGEN_DEFAULT_DEADLINE_MS", 0);
  if (L.DefaultDeadlineMs < 0)
    L.DefaultDeadlineMs = 0;
  return L;
}

ConversionService::ConversionService(ServiceLimits L) : Limits(L) {
  if (Limits.MaxInflight < 1)
    Limits.MaxInflight = 1;
  if (Limits.QueueDepth < 0)
    Limits.QueueDepth = 0;
  // Warm-start hook: under CONVGEN_PRELOAD=eager|background the shared
  // PlanCache revalidates and dlopens the manifest's entries now, so the
  // first requests hit warm. One-shot per process — a second service
  // instance does not re-preload.
  PlanCache::instance().maybePreloadFromEnv();
}

ConversionService::~ConversionService() {
  // Outstanding submit() workers hold `this`; leaving before they finish
  // would be a use-after-free. Futures already handed out stay valid
  // (shared state is owned by the future/promise pair, not the service).
  std::unique_lock<std::mutex> Lock(AsyncMu);
  AsyncDrained.wait(Lock, [this] { return AsyncOutstanding == 0; });
}

ConversionService &ConversionService::instance() {
  // Leaked like PlanCache::instance(): request threads may outlive static
  // destruction in exotic shutdown orders.
  static ConversionService *S = new ConversionService();
  return *S;
}

Status ConversionService::admit(const Deadline &D) {
  std::unique_lock<std::mutex> Lock(Mu);
  if (Inflight < Limits.MaxInflight) {
    ++Inflight;
    return Status();
  }
  if (Queued >= Limits.QueueDepth) {
    Counts.Shed.fetch_add(1, std::memory_order_relaxed);
    DegradationLog::instance().record(
        Degradation::LoadShed,
        strfmt("shed at capacity (%d in flight, %d queued)", Inflight,
               Queued));
    return Status::error(
        ErrorCode::ResourceExhausted,
        strfmt("service: at capacity (%d in flight, queue of %d full); "
               "retry later",
               Limits.MaxInflight, Limits.QueueDepth));
  }
  ++Queued;
  while (Inflight >= Limits.MaxInflight) {
    if (D.infinite()) {
      SlotFreed.wait(Lock);
      continue;
    }
    if (SlotFreed.wait_until(Lock, D.timePoint()) ==
            std::cv_status::timeout &&
        Inflight >= Limits.MaxInflight) {
      --Queued;
      Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
      DegradationLog::instance().record(
          Degradation::DeadlineExceeded,
          "request deadline expired in the admission queue");
      return Status::error(ErrorCode::DeadlineExceeded,
                           "service: deadline expired while queued for "
                           "admission");
    }
  }
  --Queued;
  ++Inflight;
  return Status();
}

void ConversionService::release() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    --Inflight;
  }
  SlotFreed.notify_one();
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Executes a planner-chosen candidate path through JIT handles: every
/// hop's handle acquired up front (compiles are a once-per-process cost),
/// the hop chain timed, and the measured outcome recorded under the
/// candidate's key. \p AnyDegraded reports whether any hop served through
/// a degraded (interpreter) handle.
StatusOr<tensor::SparseTensor>
runPlannedNative(const planner::Decision &Route,
                 const ConversionRequest &Request, const Deadline &D,
                 bool *AnyDegraded) {
  const planner::Candidate &Chosen = Route.Chosen;
  // Acceptance contract: a source tensor the default direct plan rejects
  // (unsorted where its dedup assembly requires order) stays rejected no
  // matter which path the planner chose, so planner-on and planner-off
  // accept exactly the same inputs.
  if (Chosen.Label != "direct") {
    for (const planner::Candidate &C : Route.Considered)
      if (C.Label == "direct" && !C.Hops.empty()) {
        StatusOr<std::shared_ptr<const codegen::Conversion>> Direct =
            PlanCache::instance().tryPlan(C.Hops[0].Src, C.Hops[0].Dst,
                                          C.Hops[0].Opts);
        if (!Direct.ok())
          return Direct.status();
        Status Order = checkSourceOrder(**Direct, *Request.Input);
        if (!Order.ok())
          return Order;
        break;
      }
  }
  std::vector<std::shared_ptr<jit::JitConversion>> Handles;
  for (const planner::Hop &H : Chosen.Hops) {
    StatusOr<std::shared_ptr<jit::JitConversion>> HRes =
        PlanCache::instance().tryJit(H.Src, H.Dst, H.Opts, "", D);
    if (!HRes.ok())
      return HRes.status();
    Handles.push_back(HRes.take());
  }
  if (D.expired())
    return Status::error(ErrorCode::DeadlineExceeded,
                         "service: request deadline expired after "
                         "planned-path JIT acquisition");
  auto Start = std::chrono::steady_clock::now();
  tensor::SparseTensor Staged;
  const tensor::SparseTensor *Cur = Request.Input;
  for (size_t I = 0; I < Handles.size(); ++I) {
    if (I && D.expired())
      return Status::error(
          ErrorCode::DeadlineExceeded,
          "service: request deadline expired between planned hops");
    StatusOr<tensor::SparseTensor> Out = Handles[I]->tryRun(*Cur);
    if (!Out.ok())
      return Out;
    if (Handles[I]->degraded())
      *AnyDegraded = true;
    Staged = Out.take();
    Cur = &Staged;
  }
  PlanCache::instance().recordOutcome(Chosen.OutcomeKey, secondsSince(Start));
  return std::move(Staged);
}

} // namespace

StatusOr<tensor::SparseTensor>
ConversionService::convert(const ConversionRequest &Request) {
  Counts.Submitted.fetch_add(1, std::memory_order_relaxed);
  if (!Request.Input) {
    Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
    return Status::error(ErrorCode::InvalidArgument,
                         "service: request carries no input tensor");
  }
  int64_t Ms = Request.DeadlineMs < 0 ? Limits.DefaultDeadlineMs
                                      : Request.DeadlineMs;
  Deadline D = Ms > 0 ? Deadline::afterMillis(Ms) : Deadline::never();

  Status Admitted = admit(D);
  if (!Admitted.ok())
    return Admitted; // Shed / queue-deadline counters recorded in admit().
  struct SlotReleaser {
    ConversionService *S;
    ~SlotReleaser() { S->release(); }
  } Releaser{this};

  auto deadlineExpired = [&](const char *Where) {
    Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    DegradationLog::instance().record(
        Degradation::DeadlineExceeded,
        strfmt("%s -> %s: %s", Request.Source.Name.c_str(),
               Request.Target.Name.c_str(), Where));
    return Status::error(
        ErrorCode::DeadlineExceeded,
        strfmt("service: request deadline expired %s", Where));
  };
  if (D.expired())
    return deadlineExpired("entering execution");

  if (Request.ForceInterpreter) {
    // Oracle traffic: the Converter routes dims-specialized plans itself
    // and checks the deadline at its own phase boundaries.
    StatusOr<Converter> C =
        Converter::tryCreate(Request.Source, Request.Target, Request.Opts);
    if (!C.ok()) {
      Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
      return C.status();
    }
    StatusOr<tensor::SparseTensor> Out = C->tryRun(*Request.Input, D);
    if (!Out.ok()) {
      if (Out.status().code() == ErrorCode::DeadlineExceeded)
        Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
      else
        Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
      return Out;
    }
    Counts.Completed.fetch_add(1, std::memory_order_relaxed);
    return Out;
  }

  // Native path. The path planner picks the cheapest equivalent strategy
  // assignment or two-hop chain for this input; its default "direct"
  // choice is exactly the classic dims-routed plan, so a disengaged
  // planner and an engaged-but-default one key the shared cache
  // identically. Planner-executed conversions are timed and their
  // outcomes recorded so repeated shapes auto-tune.
  planner::Decision Route =
      planner::decide(Request.Source, Request.Target, Request.Opts,
                      planner::InputStats::fromTensor(*Request.Input));
  if (Route.Engaged) {
    Counts.PlannerEngaged.fetch_add(1, std::memory_order_relaxed);
    if (Route.MeasuredWin)
      Counts.PlannerMeasured.fetch_add(1, std::memory_order_relaxed);
    bool AnyDegraded = false;
    StatusOr<tensor::SparseTensor> Out =
        runPlannedNative(Route, Request, D, &AnyDegraded);
    bool Fallback = false;
    if (!Out.ok() && Out.status().code() != ErrorCode::DeadlineExceeded &&
        Route.Chosen.Label != "direct") {
      // A variant path must never make a convertible input fail: retry
      // through the default direct plan before reporting anything.
      DegradationLog::instance().record(
          Degradation::PlannerFallback,
          strfmt("%s -> %s: planned path '%s' failed (%s); using the "
                 "direct conversion",
                 Request.Source.Name.c_str(), Request.Target.Name.c_str(),
                 Route.Chosen.Label.c_str(),
                 Out.status().message().c_str()));
      Fallback = true;
    }
    if (!Fallback) {
      if (!Out.ok()) {
        if (Out.status().code() == ErrorCode::DeadlineExceeded)
          Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
        else
          Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
        return Out;
      }
      if (Route.Chosen.Kind == planner::Candidate::Path::TwoHop)
        Counts.PlannerTwoHop.fetch_add(1, std::memory_order_relaxed);
      else if (Route.Chosen.Label != "direct")
        Counts.PlannerForcedStrategy.fetch_add(1, std::memory_order_relaxed);
      if (AnyDegraded)
        Counts.DegradedRuns.fetch_add(1, std::memory_order_relaxed);
      Counts.Completed.fetch_add(1, std::memory_order_relaxed);
      return Out;
    }
  }
  // Route to the dims-specialized plan up front (a JIT handle compiled
  // with dense ranking rejects huge-dims tensors; see Jit.h), so the
  // shared cache is keyed the same way the Converter would key it.
  codegen::Options Opts = codegen::optionsForDims(
      Request.Source, Request.Target, Request.Opts, Request.Input->Dims);
  StatusOr<std::shared_ptr<jit::JitConversion>> Handle =
      PlanCache::instance().tryJit(Request.Source, Request.Target, Opts, "",
                                   D);
  if (!Handle.ok()) {
    if (Handle.status().code() == ErrorCode::DeadlineExceeded)
      Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    else
      Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
    return Handle.status();
  }
  if (D.expired())
    return deadlineExpired("after plan/JIT acquisition");
  StatusOr<tensor::SparseTensor> Out = (*Handle)->tryRun(*Request.Input);
  if (!Out.ok()) {
    Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
    return Out;
  }
  if ((*Handle)->degraded())
    Counts.DegradedRuns.fetch_add(1, std::memory_order_relaxed);
  Counts.Completed.fetch_add(1, std::memory_order_relaxed);
  return Out;
}

std::vector<StatusOr<tensor::SparseTensor>>
ConversionService::submitBatch(const std::vector<ConversionRequest> &Requests,
                               BatchStats *Stats) {
  Counts.Batches.fetch_add(1, std::memory_order_relaxed);
  Counts.BatchRequests.fetch_add(Requests.size(),
                                 std::memory_order_relaxed);
  BatchStats Local;
  BatchStats &B = Stats ? *Stats : Local;
  B = BatchStats();
  B.Requests = Requests.size();

  // Batches bypass the path planner deliberately: grouping exists to
  // amortize one handle acquisition across same-plan members, and
  // per-member planner decisions would fragment the groups (and the
  // outcome records) it amortizes over. Callers wanting planned execution
  // submit individually.
  //
  // Group member indices by plan key, first-appearance order. The key is
  // the dims-routed one (optionsForDims), exactly as convert() would key
  // the cache — two tensors whose dims land on the same assembly strategy
  // share one group and one handle. ForceInterpreter and null-input
  // requests cannot share a native handle; each is its own singleton
  // group, executed through convert().
  std::vector<std::pair<std::string, std::vector<size_t>>> Groups;
  std::map<std::string, size_t> GroupIndex;
  for (size_t I = 0; I < Requests.size(); ++I) {
    const ConversionRequest &R = Requests[I];
    if (R.ForceInterpreter || !R.Input) {
      Groups.push_back({"", {I}});
      continue;
    }
    codegen::Options Opts = codegen::optionsForDims(R.Source, R.Target,
                                                    R.Opts, R.Input->Dims);
    std::string Key = planKey(R.Source, R.Target, Opts);
    auto [It, New] = GroupIndex.emplace(Key, Groups.size());
    if (New)
      Groups.push_back({Key, {}});
    Groups[It->second].second.push_back(I);
  }
  B.Groups = Groups.size();
  Counts.BatchGroups.fetch_add(Groups.size(), std::memory_order_relaxed);

  // Deadlines resolve once, at batch entry: a member's budget covers its
  // whole stay in the batch, including the members ahead of it in FIFO
  // order (that wait is exactly what the deadline is for).
  std::vector<Deadline> Deadlines(Requests.size());
  for (size_t I = 0; I < Requests.size(); ++I) {
    int64_t Ms = Requests[I].DeadlineMs < 0 ? Limits.DefaultDeadlineMs
                                            : Requests[I].DeadlineMs;
    Deadlines[I] = Ms > 0 ? Deadline::afterMillis(Ms) : Deadline::never();
  }

  std::vector<std::optional<StatusOr<tensor::SparseTensor>>> Results(
      Requests.size());
  auto NoteFailure = [&B](const Status &S) {
    if (S.code() == ErrorCode::ResourceExhausted)
      B.Shed++;
    else if (S.code() == ErrorCode::DeadlineExceeded)
      B.DeadlineExpired++;
    else
      B.RequestErrors++;
  };

  for (const auto &[Key, Members] : Groups) {
    if (Key.empty()) {
      // Singleton: convert() does all the accounting; mirror the outcome
      // into the batch breakout.
      size_t Idx = Members.front();
      StatusOr<tensor::SparseTensor> Out = convert(Requests[Idx]);
      if (Out.ok())
        B.Completed++;
      else
        NoteFailure(Out.status());
      Results[Idx] = std::move(Out);
      continue;
    }

    // One handle acquisition serves the group, bounded by the most
    // patient member (the handle outlives any single member; an impatient
    // first member must not starve the rest of the group).
    bool AnyInfinite = false;
    Deadline::Clock::time_point Latest{};
    for (size_t Idx : Members) {
      if (Deadlines[Idx].infinite())
        AnyInfinite = true;
      else if (Deadlines[Idx].timePoint() > Latest)
        Latest = Deadlines[Idx].timePoint();
    }
    Deadline GroupD =
        AnyInfinite ? Deadline::never() : Deadline::at(Latest);

    std::shared_ptr<jit::JitConversion> Handle;
    for (size_t Idx : Members) {
      const ConversionRequest &R = Requests[Idx];
      Counts.Submitted.fetch_add(1, std::memory_order_relaxed);
      const Deadline &D = Deadlines[Idx];
      Status Admitted = admit(D);
      if (!Admitted.ok()) {
        // Shed / queue-deadline service counters recorded in admit(); the
        // member fails alone, the batch continues.
        NoteFailure(Admitted);
        Results[Idx] = Admitted;
        continue;
      }
      struct SlotReleaser {
        ConversionService *S;
        ~SlotReleaser() { S->release(); }
      } Releaser{this};

      auto deadlineExpired = [&](const char *Where) {
        Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
        B.DeadlineExpired++;
        DegradationLog::instance().record(
            Degradation::DeadlineExceeded,
            strfmt("%s -> %s: %s (batch member)", R.Source.Name.c_str(),
                   R.Target.Name.c_str(), Where));
        return Status::error(
            ErrorCode::DeadlineExceeded,
            strfmt("service: request deadline expired %s", Where));
      };
      if (D.expired()) {
        Results[Idx] = deadlineExpired("entering execution");
        continue;
      }
      if (!Handle) {
        codegen::Options Opts = codegen::optionsForDims(
            R.Source, R.Target, R.Opts, R.Input->Dims);
        StatusOr<std::shared_ptr<jit::JitConversion>> H =
            PlanCache::instance().tryJit(R.Source, R.Target, Opts, "",
                                         GroupD);
        if (!H.ok()) {
          if (H.status().code() == ErrorCode::DeadlineExceeded)
            Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
          else
            Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
          NoteFailure(H.status());
          Results[Idx] = H.status();
          continue; // The next member retries the acquisition.
        }
        Handle = *H;
        B.HandleAcquisitions++;
      }
      if (D.expired()) {
        Results[Idx] = deadlineExpired("after plan/JIT acquisition");
        continue;
      }
      StatusOr<tensor::SparseTensor> Out = Handle->tryRun(*R.Input);
      if (!Out.ok()) {
        Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
        NoteFailure(Out.status());
        Results[Idx] = std::move(Out);
        continue;
      }
      if (Handle->degraded()) {
        Counts.DegradedRuns.fetch_add(1, std::memory_order_relaxed);
        B.DegradedRuns++;
      }
      Counts.Completed.fetch_add(1, std::memory_order_relaxed);
      B.Completed++;
      Results[Idx] = std::move(Out);
    }
  }

  std::vector<StatusOr<tensor::SparseTensor>> Out;
  Out.reserve(Requests.size());
  for (auto &R : Results) {
    CONVGEN_ASSERT(R.has_value(), "batch member left without an outcome");
    Out.push_back(std::move(*R));
  }
  return Out;
}

std::future<StatusOr<tensor::SparseTensor>>
ConversionService::submit(ConversionRequest Request) {
  Counts.AsyncSubmitted.fetch_add(1, std::memory_order_relaxed);
  // The packaged_task owns the promise; the caller's future stays valid
  // even if the service dies right after the worker finishes. The worker
  // thread holds `this` only until it decrements AsyncOutstanding, which
  // the destructor waits on.
  auto Task = std::make_shared<
      std::packaged_task<StatusOr<tensor::SparseTensor>()>>(
      [this, Request = std::move(Request)] { return convert(Request); });
  std::future<StatusOr<tensor::SparseTensor>> Fut = Task->get_future();
  {
    std::lock_guard<std::mutex> Lock(AsyncMu);
    ++AsyncOutstanding;
  }
  std::thread([this, Task] {
    (*Task)();
    {
      std::lock_guard<std::mutex> Lock(AsyncMu);
      --AsyncOutstanding;
    }
    AsyncDrained.notify_all();
  }).detach();
  return Fut;
}

ServiceStats ConversionService::stats() const {
  ServiceStats Out;
  Out.Submitted = Counts.Submitted.load(std::memory_order_relaxed);
  Out.Completed = Counts.Completed.load(std::memory_order_relaxed);
  Out.Shed = Counts.Shed.load(std::memory_order_relaxed);
  Out.DeadlineExpired =
      Counts.DeadlineExpired.load(std::memory_order_relaxed);
  Out.DegradedRuns = Counts.DegradedRuns.load(std::memory_order_relaxed);
  Out.RequestErrors =
      Counts.RequestErrors.load(std::memory_order_relaxed);
  Out.Batches = Counts.Batches.load(std::memory_order_relaxed);
  Out.BatchRequests =
      Counts.BatchRequests.load(std::memory_order_relaxed);
  Out.BatchGroups = Counts.BatchGroups.load(std::memory_order_relaxed);
  Out.AsyncSubmitted =
      Counts.AsyncSubmitted.load(std::memory_order_relaxed);
  Out.PlannerEngaged =
      Counts.PlannerEngaged.load(std::memory_order_relaxed);
  Out.PlannerForcedStrategy =
      Counts.PlannerForcedStrategy.load(std::memory_order_relaxed);
  Out.PlannerTwoHop = Counts.PlannerTwoHop.load(std::memory_order_relaxed);
  Out.PlannerMeasured =
      Counts.PlannerMeasured.load(std::memory_order_relaxed);
  return Out;
}

int ConversionService::inflight() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Inflight;
}
