//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ConversionService.h"

#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "jit/Jit.h"
#include "support/DegradationLog.h"
#include "support/StringUtils.h"

#include <cstdlib>
#include <thread>

using namespace convgen;
using namespace convgen::convert;
using support::Deadline;
using support::Degradation;
using support::DegradationLog;

static int64_t envInt(const char *Name, int64_t Default) {
  if (const char *Env = std::getenv(Name)) {
    char *End = nullptr;
    long long V = std::strtoll(Env, &End, 10);
    if (End != Env && *End == '\0')
      return V;
  }
  return Default;
}

ServiceLimits ServiceLimits::fromEnv() {
  int Hw = static_cast<int>(std::thread::hardware_concurrency());
  if (Hw < 1)
    Hw = 1;
  ServiceLimits L;
  // 2x the hardware threads: conversion is memory-bound enough that a
  // little oversubscription keeps cores busy across the marshal/compile
  // gaps without drowning the allocator.
  L.MaxInflight =
      static_cast<int>(envInt("CONVGEN_MAX_INFLIGHT", 2LL * Hw));
  if (L.MaxInflight < 1)
    L.MaxInflight = 1;
  L.QueueDepth = static_cast<int>(
      envInt("CONVGEN_QUEUE_DEPTH", 2LL * L.MaxInflight));
  if (L.QueueDepth < 0)
    L.QueueDepth = 0;
  L.DefaultDeadlineMs = envInt("CONVGEN_DEFAULT_DEADLINE_MS", 0);
  if (L.DefaultDeadlineMs < 0)
    L.DefaultDeadlineMs = 0;
  return L;
}

ConversionService::ConversionService(ServiceLimits L) : Limits(L) {
  if (Limits.MaxInflight < 1)
    Limits.MaxInflight = 1;
  if (Limits.QueueDepth < 0)
    Limits.QueueDepth = 0;
}

ConversionService &ConversionService::instance() {
  // Leaked like PlanCache::instance(): request threads may outlive static
  // destruction in exotic shutdown orders.
  static ConversionService *S = new ConversionService();
  return *S;
}

Status ConversionService::admit(const Deadline &D) {
  std::unique_lock<std::mutex> Lock(Mu);
  if (Inflight < Limits.MaxInflight) {
    ++Inflight;
    return Status();
  }
  if (Queued >= Limits.QueueDepth) {
    Counts.Shed.fetch_add(1, std::memory_order_relaxed);
    DegradationLog::instance().record(
        Degradation::LoadShed,
        strfmt("shed at capacity (%d in flight, %d queued)", Inflight,
               Queued));
    return Status::error(
        ErrorCode::ResourceExhausted,
        strfmt("service: at capacity (%d in flight, queue of %d full); "
               "retry later",
               Limits.MaxInflight, Limits.QueueDepth));
  }
  ++Queued;
  while (Inflight >= Limits.MaxInflight) {
    if (D.infinite()) {
      SlotFreed.wait(Lock);
      continue;
    }
    if (SlotFreed.wait_until(Lock, D.timePoint()) ==
            std::cv_status::timeout &&
        Inflight >= Limits.MaxInflight) {
      --Queued;
      Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
      DegradationLog::instance().record(
          Degradation::DeadlineExceeded,
          "request deadline expired in the admission queue");
      return Status::error(ErrorCode::DeadlineExceeded,
                           "service: deadline expired while queued for "
                           "admission");
    }
  }
  --Queued;
  ++Inflight;
  return Status();
}

void ConversionService::release() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    --Inflight;
  }
  SlotFreed.notify_one();
}

StatusOr<tensor::SparseTensor>
ConversionService::convert(const ConversionRequest &Request) {
  Counts.Submitted.fetch_add(1, std::memory_order_relaxed);
  if (!Request.Input) {
    Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
    return Status::error(ErrorCode::InvalidArgument,
                         "service: request carries no input tensor");
  }
  int64_t Ms = Request.DeadlineMs < 0 ? Limits.DefaultDeadlineMs
                                      : Request.DeadlineMs;
  Deadline D = Ms > 0 ? Deadline::afterMillis(Ms) : Deadline::never();

  Status Admitted = admit(D);
  if (!Admitted.ok())
    return Admitted; // Shed / queue-deadline counters recorded in admit().
  struct SlotReleaser {
    ConversionService *S;
    ~SlotReleaser() { S->release(); }
  } Releaser{this};

  auto deadlineExpired = [&](const char *Where) {
    Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    DegradationLog::instance().record(
        Degradation::DeadlineExceeded,
        strfmt("%s -> %s: %s", Request.Source.Name.c_str(),
               Request.Target.Name.c_str(), Where));
    return Status::error(
        ErrorCode::DeadlineExceeded,
        strfmt("service: request deadline expired %s", Where));
  };
  if (D.expired())
    return deadlineExpired("entering execution");

  if (Request.ForceInterpreter) {
    // Oracle traffic: the Converter routes dims-specialized plans itself
    // and checks the deadline at its own phase boundaries.
    StatusOr<Converter> C =
        Converter::tryCreate(Request.Source, Request.Target, Request.Opts);
    if (!C.ok()) {
      Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
      return C.status();
    }
    StatusOr<tensor::SparseTensor> Out = C->tryRun(*Request.Input, D);
    if (!Out.ok()) {
      if (Out.status().code() == ErrorCode::DeadlineExceeded)
        Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
      else
        Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
      return Out;
    }
    Counts.Completed.fetch_add(1, std::memory_order_relaxed);
    return Out;
  }

  // Native path. Route to the dims-specialized plan up front (a JIT handle
  // compiled with dense ranking rejects huge-dims tensors; see Jit.h), so
  // the shared cache is keyed the same way the Converter would key it.
  codegen::Options Opts = codegen::optionsForDims(
      Request.Source, Request.Target, Request.Opts, Request.Input->Dims);
  StatusOr<std::shared_ptr<jit::JitConversion>> Handle =
      PlanCache::instance().tryJit(Request.Source, Request.Target, Opts, "",
                                   D);
  if (!Handle.ok()) {
    if (Handle.status().code() == ErrorCode::DeadlineExceeded)
      Counts.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    else
      Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
    return Handle.status();
  }
  if (D.expired())
    return deadlineExpired("after plan/JIT acquisition");
  StatusOr<tensor::SparseTensor> Out = (*Handle)->tryRun(*Request.Input);
  if (!Out.ok()) {
    Counts.RequestErrors.fetch_add(1, std::memory_order_relaxed);
    return Out;
  }
  if ((*Handle)->degraded())
    Counts.DegradedRuns.fetch_add(1, std::memory_order_relaxed);
  Counts.Completed.fetch_add(1, std::memory_order_relaxed);
  return Out;
}

ServiceStats ConversionService::stats() const {
  ServiceStats Out;
  Out.Submitted = Counts.Submitted.load(std::memory_order_relaxed);
  Out.Completed = Counts.Completed.load(std::memory_order_relaxed);
  Out.Shed = Counts.Shed.load(std::memory_order_relaxed);
  Out.DeadlineExpired =
      Counts.DeadlineExpired.load(std::memory_order_relaxed);
  Out.DegradedRuns = Counts.DegradedRuns.load(std::memory_order_relaxed);
  Out.RequestErrors =
      Counts.RequestErrors.load(std::memory_order_relaxed);
  return Out;
}

int ConversionService::inflight() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Inflight;
}
