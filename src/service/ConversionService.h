//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conversion runtime's thread-safe front door: a multi-tenant serving
/// layer over PlanCache/Converter/Jit that any number of request threads
/// may call concurrently. Each convert() call is a stateless per-request
/// transaction — format pair + input tensor in, converted tensor (or a
/// Status) out — with three serving disciplines the lower layers do not
/// impose on their own:
///
///  * Bounded admission. At most MaxInflight requests execute at once;
///    up to QueueDepth more wait (deadline-bounded) for a slot. Beyond
///    that, requests are shed immediately with ResourceExhausted — under
///    overload the service fails fast instead of piling threads onto the
///    cache locks and the allocator.
///  * Request deadlines. A per-request (or service-default) deadline
///    bounds every wait on the request's path: the admission queue, a
///    coalesced wait on another request's in-flight compile, and the
///    watchdog wait on a compiler child. Expired requests return
///    DeadlineExceeded; compute that already started is never preempted.
///  * Degradation accounting. Every shed, deadline expiry, coalesce, and
///    degraded (interpreter-served) run lands in the process-wide
///    DegradationLog and the service's own stats — the export surface the
///    throughput bench and a future metrics endpoint read.
///
/// Beyond per-request convert(), the service offers submitBatch() — plan-
/// key-grouped execution where one JIT-handle acquisition serves a queue
/// of same-plan tensors — and an async submit() returning a future, both
/// composing with the same admission/shedding/deadline discipline.
/// Construction also triggers the cache warm-start hook
/// (PlanCache::maybePreloadFromEnv), so a restarted server's first
/// requests can hit preloaded handles instead of cold compiles.
///
/// Environment knobs (read once at construction; see ServiceLimits):
///   CONVGEN_MAX_INFLIGHT        concurrent request cap (default 2x the
///                               hardware thread count)
///   CONVGEN_QUEUE_DEPTH         waiters admitted beyond the cap before
///                               shedding (default 2x MaxInflight)
///   CONVGEN_DEFAULT_DEADLINE_MS deadline applied to requests that do not
///                               carry their own (default 0 = none)
///   CONVGEN_PRELOAD             off|eager|background warm-start at boot
///                               (default off; see PlanCache::preload)
///   CONVGEN_MANIFEST            warm-start manifest path override
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SERVICE_CONVERSIONSERVICE_H
#define CONVGEN_SERVICE_CONVERSIONSERVICE_H

#include "codegen/Generator.h"
#include "support/Deadline.h"
#include "support/Status.h"
#include "tensor/SparseTensor.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

namespace convgen {
namespace convert {

/// Admission-control configuration, fixed for the service's lifetime
/// (capacity is structural, unlike the per-request CONVGEN_* knobs that
/// are re-read per use).
struct ServiceLimits {
  /// Requests executing concurrently before new arrivals queue.
  int MaxInflight = 0;
  /// Arrivals waiting for a slot before new ones are shed. 0 sheds the
  /// moment the service is saturated.
  int QueueDepth = 0;
  /// Deadline stamped on requests that carry none; 0 leaves them
  /// unbounded.
  int64_t DefaultDeadlineMs = 0;

  /// Resolves the CONVGEN_MAX_INFLIGHT / CONVGEN_QUEUE_DEPTH /
  /// CONVGEN_DEFAULT_DEADLINE_MS knobs (defaults above).
  static ServiceLimits fromEnv();
};

/// Monotone counters; readable from any thread while requests run. Every
/// request — individual, batch member, or async — counts in Submitted and
/// lands in exactly one of Completed / Shed / DeadlineExpired /
/// RequestErrors, so the conservation identity holds mid-flight too (each
/// field is exact; the set is not sampled in one instant).
struct ServiceStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  /// Rejected at admission with ResourceExhausted (queue full).
  uint64_t Shed = 0;
  /// Returned DeadlineExceeded anywhere on the request path.
  uint64_t DeadlineExpired = 0;
  /// Completed requests served by a degraded (interpreter) handle.
  uint64_t DegradedRuns = 0;
  /// Request-shaped failures (wrong format, unsupported pair, unsorted
  /// input) — the caller's bug, not the service's.
  uint64_t RequestErrors = 0;
  /// submitBatch() calls.
  uint64_t Batches = 0;
  /// Requests that arrived inside a batch (also counted in Submitted).
  uint64_t BatchRequests = 0;
  /// Distinct plan-key groups across all batches.
  uint64_t BatchGroups = 0;
  /// submit() futures handed out (their requests also count in Submitted
  /// when the worker runs them).
  uint64_t AsyncSubmitted = 0;
  /// convert() requests where the path planner engaged (planner on, input
  /// at or above the nnz floor, direct pair supported, no caller-forced
  /// strategies).
  uint64_t PlannerEngaged = 0;
  /// Engaged requests served by a direct conversion under a
  /// planner-forced strategy assignment (not the default plan).
  uint64_t PlannerForcedStrategy = 0;
  /// Engaged requests served by a two-hop chain through COO.
  uint64_t PlannerTwoHop = 0;
  /// Engaged requests whose choice came from measured outcomes overriding
  /// the analytic model (the auto-tuning flip).
  uint64_t PlannerMeasured = 0;
};

/// Per-call breakout a submitBatch() caller can ask for: how much cache
/// traversal the grouping actually saved, and where each member ended up.
struct BatchStats {
  uint64_t Requests = 0;
  /// Distinct plan-key groups (ForceInterpreter and invalid requests run
  /// ungrouped and count one group each).
  uint64_t Groups = 0;
  /// JIT-handle acquisitions performed — at most one per group; fewer when
  /// every member of a group was shed or expired before acquiring.
  uint64_t HandleAcquisitions = 0;
  uint64_t Completed = 0;
  uint64_t Shed = 0;
  uint64_t DeadlineExpired = 0;
  uint64_t RequestErrors = 0;
  uint64_t DegradedRuns = 0;
};

/// One conversion request. The input tensor is borrowed and must stay
/// alive and unmodified until convert() returns; the result owns fresh
/// storage (the zero-copy JIT adoption path, see jit/Jit.h).
struct ConversionRequest {
  formats::Format Source;
  formats::Format Target;
  const tensor::SparseTensor *Input = nullptr;
  codegen::Options Opts;
  /// Per-request deadline in milliseconds: > 0 bounds this request, 0
  /// explicitly unbounded, < 0 (default) inherits the service default.
  int64_t DeadlineMs = -1;
  /// Serve through the reference interpreter even when the JIT path is
  /// healthy (oracle traffic, debugging).
  bool ForceInterpreter = false;
};

class ConversionService {
public:
  explicit ConversionService(ServiceLimits Limits = ServiceLimits::fromEnv());

  /// The process-wide instance, env-configured. All methods thread-safe;
  /// tests build their own instances with explicit limits instead.
  static ConversionService &instance();

  ConversionService(const ConversionService &) = delete;
  ConversionService &operator=(const ConversionService &) = delete;

  /// Executes one request: admission (queue, shed), plan/JIT acquisition
  /// through the shared single-flight PlanCache, dims-aware strategy
  /// routing, then the conversion itself. Never aborts on request or
  /// environment trouble; the Status taxonomy is:
  ///   ResourceExhausted  shed at admission — retry later or elsewhere
  ///   DeadlineExceeded   the request's deadline expired while waiting
  ///   InvalidArgument / Unsupported   the request itself is wrong
  /// Environment failures do not surface: the handle degrades and the
  /// request completes through the interpreter, bit-exact.
  StatusOr<tensor::SparseTensor> convert(const ConversionRequest &Request);

  /// Executes a batch of requests, grouped by plan key so one JIT-handle
  /// acquisition serves every member of a group (single-flight already
  /// dedups *compiles*; grouping dedups the per-request cache traversal
  /// and the coalesced-flight waits). Results come back positionally —
  /// Results[i] is Requests[i]'s outcome, same Status taxonomy as
  /// convert(). Semantics:
  ///
  ///  * Groups execute in first-appearance order; within a group, members
  ///    run FIFO on the calling thread, each under its own admission slot
  ///    and its own deadline — a batch never bypasses shedding, and a shed
  ///    or expired member fails alone while the batch continues.
  ///  * The group's one handle acquisition is bounded by the *most
  ///    patient* member's deadline (the handle outlives any one member);
  ///    each member then still honors its own deadline before running.
  ///  * ForceInterpreter and malformed (null-input) requests are not
  ///    grouped; they execute individually in position order.
  ///
  /// \p Stats (optional) receives the per-call breakout; the service-wide
  /// counters are updated either way.
  std::vector<StatusOr<tensor::SparseTensor>>
  submitBatch(const std::vector<ConversionRequest> &Requests,
              BatchStats *Stats = nullptr);

  /// Asynchronous convert(): returns immediately with a future that
  /// resolves to the request's outcome. The request runs on a service
  /// worker thread through the same admission/shedding/deadline path as
  /// convert() — a saturated service sheds async requests identically.
  /// The borrowed Request.Input must stay alive and unmodified until the
  /// future is ready (not merely until submit() returns). The destructor
  /// drains outstanding async requests before the service dies.
  std::future<StatusOr<tensor::SparseTensor>> submit(ConversionRequest Request);

  ~ConversionService();

  ServiceStats stats() const;

  /// Requests currently executing (not queued); test synchronization.
  int inflight() const;

  const ServiceLimits &limits() const { return Limits; }

private:
  /// Blocks until a slot frees (bounded by \p Deadline) or sheds.
  Status admit(const support::Deadline &Deadline);
  void release();

  ServiceLimits Limits;

  mutable std::mutex Mu;
  std::condition_variable SlotFreed;
  int Inflight = 0;
  int Queued = 0;

  /// Async-worker bookkeeping: the destructor blocks until every submit()
  /// worker has finished (futures handed to callers stay valid — they own
  /// the shared state).
  std::mutex AsyncMu;
  std::condition_variable AsyncDrained;
  int AsyncOutstanding = 0;

  struct Counters {
    std::atomic<uint64_t> Submitted{0};
    std::atomic<uint64_t> Completed{0};
    std::atomic<uint64_t> Shed{0};
    std::atomic<uint64_t> DeadlineExpired{0};
    std::atomic<uint64_t> DegradedRuns{0};
    std::atomic<uint64_t> RequestErrors{0};
    std::atomic<uint64_t> Batches{0};
    std::atomic<uint64_t> BatchRequests{0};
    std::atomic<uint64_t> BatchGroups{0};
    std::atomic<uint64_t> AsyncSubmitted{0};
    std::atomic<uint64_t> PlannerEngaged{0};
    std::atomic<uint64_t> PlannerForcedStrategy{0};
    std::atomic<uint64_t> PlannerTwoHop{0};
    std::atomic<uint64_t> PlannerMeasured{0};
  };
  mutable Counters Counts;
};

} // namespace convert
} // namespace convgen

#endif // CONVGEN_SERVICE_CONVERSIONSERVICE_H
