//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conversion runtime's thread-safe front door: a multi-tenant serving
/// layer over PlanCache/Converter/Jit that any number of request threads
/// may call concurrently. Each convert() call is a stateless per-request
/// transaction — format pair + input tensor in, converted tensor (or a
/// Status) out — with three serving disciplines the lower layers do not
/// impose on their own:
///
///  * Bounded admission. At most MaxInflight requests execute at once;
///    up to QueueDepth more wait (deadline-bounded) for a slot. Beyond
///    that, requests are shed immediately with ResourceExhausted — under
///    overload the service fails fast instead of piling threads onto the
///    cache locks and the allocator.
///  * Request deadlines. A per-request (or service-default) deadline
///    bounds every wait on the request's path: the admission queue, a
///    coalesced wait on another request's in-flight compile, and the
///    watchdog wait on a compiler child. Expired requests return
///    DeadlineExceeded; compute that already started is never preempted.
///  * Degradation accounting. Every shed, deadline expiry, coalesce, and
///    degraded (interpreter-served) run lands in the process-wide
///    DegradationLog and the service's own stats — the export surface the
///    throughput bench and a future metrics endpoint read.
///
/// Environment knobs (read once at construction; see ServiceLimits):
///   CONVGEN_MAX_INFLIGHT        concurrent request cap (default 2x the
///                               hardware thread count)
///   CONVGEN_QUEUE_DEPTH         waiters admitted beyond the cap before
///                               shedding (default 2x MaxInflight)
///   CONVGEN_DEFAULT_DEADLINE_MS deadline applied to requests that do not
///                               carry their own (default 0 = none)
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_SERVICE_CONVERSIONSERVICE_H
#define CONVGEN_SERVICE_CONVERSIONSERVICE_H

#include "codegen/Generator.h"
#include "support/Deadline.h"
#include "support/Status.h"
#include "tensor/SparseTensor.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace convgen {
namespace convert {

/// Admission-control configuration, fixed for the service's lifetime
/// (capacity is structural, unlike the per-request CONVGEN_* knobs that
/// are re-read per use).
struct ServiceLimits {
  /// Requests executing concurrently before new arrivals queue.
  int MaxInflight = 0;
  /// Arrivals waiting for a slot before new ones are shed. 0 sheds the
  /// moment the service is saturated.
  int QueueDepth = 0;
  /// Deadline stamped on requests that carry none; 0 leaves them
  /// unbounded.
  int64_t DefaultDeadlineMs = 0;

  /// Resolves the CONVGEN_MAX_INFLIGHT / CONVGEN_QUEUE_DEPTH /
  /// CONVGEN_DEFAULT_DEADLINE_MS knobs (defaults above).
  static ServiceLimits fromEnv();
};

/// Monotone counters; readable from any thread while requests run.
struct ServiceStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  /// Rejected at admission with ResourceExhausted (queue full).
  uint64_t Shed = 0;
  /// Returned DeadlineExceeded anywhere on the request path.
  uint64_t DeadlineExpired = 0;
  /// Completed requests served by a degraded (interpreter) handle.
  uint64_t DegradedRuns = 0;
  /// Request-shaped failures (wrong format, unsupported pair, unsorted
  /// input) — the caller's bug, not the service's.
  uint64_t RequestErrors = 0;
};

/// One conversion request. The input tensor is borrowed and must stay
/// alive and unmodified until convert() returns; the result owns fresh
/// storage (the zero-copy JIT adoption path, see jit/Jit.h).
struct ConversionRequest {
  formats::Format Source;
  formats::Format Target;
  const tensor::SparseTensor *Input = nullptr;
  codegen::Options Opts;
  /// Per-request deadline in milliseconds: > 0 bounds this request, 0
  /// explicitly unbounded, < 0 (default) inherits the service default.
  int64_t DeadlineMs = -1;
  /// Serve through the reference interpreter even when the JIT path is
  /// healthy (oracle traffic, debugging).
  bool ForceInterpreter = false;
};

class ConversionService {
public:
  explicit ConversionService(ServiceLimits Limits = ServiceLimits::fromEnv());

  /// The process-wide instance, env-configured. All methods thread-safe;
  /// tests build their own instances with explicit limits instead.
  static ConversionService &instance();

  ConversionService(const ConversionService &) = delete;
  ConversionService &operator=(const ConversionService &) = delete;

  /// Executes one request: admission (queue, shed), plan/JIT acquisition
  /// through the shared single-flight PlanCache, dims-aware strategy
  /// routing, then the conversion itself. Never aborts on request or
  /// environment trouble; the Status taxonomy is:
  ///   ResourceExhausted  shed at admission — retry later or elsewhere
  ///   DeadlineExceeded   the request's deadline expired while waiting
  ///   InvalidArgument / Unsupported   the request itself is wrong
  /// Environment failures do not surface: the handle degrades and the
  /// request completes through the interpreter, bit-exact.
  StatusOr<tensor::SparseTensor> convert(const ConversionRequest &Request);

  ServiceStats stats() const;

  /// Requests currently executing (not queued); test synchronization.
  int inflight() const;

  const ServiceLimits &limits() const { return Limits; }

private:
  /// Blocks until a slot frees (bounded by \p Deadline) or sheds.
  Status admit(const support::Deadline &Deadline);
  void release();

  ServiceLimits Limits;

  mutable std::mutex Mu;
  std::condition_variable SlotFreed;
  int Inflight = 0;
  int Queued = 0;

  struct Counters {
    std::atomic<uint64_t> Submitted{0};
    std::atomic<uint64_t> Completed{0};
    std::atomic<uint64_t> Shed{0};
    std::atomic<uint64_t> DeadlineExpired{0};
    std::atomic<uint64_t> DegradedRuns{0};
    std::atomic<uint64_t> RequestErrors{0};
  };
  mutable Counters Counts;
};

} // namespace convert
} // namespace convgen

#endif // CONVGEN_SERVICE_CONVERSIONSERVICE_H
