//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "remap/Bounds.h"

#include "support/Assert.h"

#include <map>

using namespace convgen;
using namespace convgen::remap;

ir::Expr DimBounds::extent() const {
  CONVGEN_ASSERT(Known, "extent of unknown bounds");
  return ir::add(ir::sub(Hi, Lo), ir::intImm(1));
}

namespace {

/// An inclusive symbolic interval; invalid (null) exprs mean "unknown".
struct Interval {
  ir::Expr Lo, Hi;

  bool known() const { return Lo != nullptr && Hi != nullptr; }
  static Interval unknown() { return {nullptr, nullptr}; }
  static Interval point(int64_t C) {
    return {ir::intImm(C), ir::intImm(C)};
  }

  /// The interval's single constant value, if it is a constant point.
  bool constPoint(int64_t *C) const {
    int64_t L = 0, H = 0;
    if (!known() || !ir::isIntConst(Lo, &L) || !ir::isIntConst(Hi, &H) ||
        L != H)
      return false;
    *C = L;
    return true;
  }

  /// True if the lower bound is a known nonnegative constant.
  bool nonNegative() const {
    int64_t L = 0;
    return known() && ir::isIntConst(Lo, &L) && L >= 0;
  }
};

/// Smallest (2^k - 1) >= C, for bounding bitwise or/xor of nonnegatives.
int64_t allOnesCover(int64_t C) {
  int64_t Cover = 0;
  while (Cover < C)
    Cover = Cover * 2 + 1;
  return Cover;
}

Interval combine(BinOp Op, const Interval &A, const Interval &B) {
  if (!A.known() || !B.known())
    return Interval::unknown();
  int64_t CA = 0, CB = 0;
  bool AConst = A.constPoint(&CA);
  bool BConst = B.constPoint(&CB);
  switch (Op) {
  case BinOp::Add:
    return {ir::add(A.Lo, B.Lo), ir::add(A.Hi, B.Hi)};
  case BinOp::Sub:
    return {ir::sub(A.Lo, B.Hi), ir::sub(A.Hi, B.Lo)};
  case BinOp::Mul:
    if (BConst)
      return CB >= 0 ? Interval{ir::mul(A.Lo, B.Lo), ir::mul(A.Hi, B.Hi)}
                     : Interval{ir::mul(A.Hi, B.Lo), ir::mul(A.Lo, B.Hi)};
    if (AConst)
      return combine(Op, B, A);
    return Interval::unknown();
  case BinOp::Div:
    // C's truncating division only coincides with the floor the bound
    // needs when the dividend range is nonnegative.
    if (BConst && CB > 0 && A.nonNegative())
      return {ir::div(A.Lo, B.Lo), ir::div(A.Hi, B.Lo)};
    return Interval::unknown();
  case BinOp::Rem:
    if (BConst && CB > 0 && A.nonNegative())
      return {ir::intImm(0), ir::intImm(CB - 1)};
    return Interval::unknown();
  case BinOp::Shl:
    if (BConst && CB >= 0 && A.nonNegative())
      return {ir::binop(ir::BinOp::Shl, A.Lo, B.Lo),
              ir::binop(ir::BinOp::Shl, A.Hi, B.Lo)};
    return Interval::unknown();
  case BinOp::Shr:
    if (BConst && CB >= 0 && A.nonNegative())
      return {ir::binop(ir::BinOp::Shr, A.Lo, B.Lo),
              ir::binop(ir::BinOp::Shr, A.Hi, B.Lo)};
    return Interval::unknown();
  case BinOp::BitAnd:
    // x & mask for nonnegative x is within [0, mask].
    if (BConst && CB >= 0 && A.nonNegative())
      return {ir::intImm(0), ir::intImm(CB)};
    if (AConst && CA >= 0 && B.nonNegative())
      return {ir::intImm(0), ir::intImm(CA)};
    return Interval::unknown();
  case BinOp::BitOr:
  case BinOp::BitXor: {
    // For nonnegative operands with constant upper bounds, or/xor cannot
    // set bits above the highest bit of either bound.
    int64_t HA = 0, HB = 0;
    if (A.nonNegative() && B.nonNegative() && ir::isIntConst(A.Hi, &HA) &&
        ir::isIntConst(B.Hi, &HB))
      return {ir::intImm(0),
              ir::intImm(allOnesCover(HA > HB ? HA : HB))};
    return Interval::unknown();
  }
  }
  convgen_unreachable("unknown remap binary op");
}

Interval analyzeExpr(const Expr &E,
                     const std::map<std::string, Interval> &IVarBounds) {
  switch (E->Kind) {
  case ExprKind::Const:
    return Interval::point(E->Value);
  case ExprKind::IVar: {
    auto It = IVarBounds.find(E->Name);
    CONVGEN_ASSERT(It != IVarBounds.end(), "unbound source variable");
    return It->second;
  }
  case ExprKind::LetVar:
    convgen_unreachable("bounds analysis requires lets to be inlined");
  case ExprKind::Counter:
    return Interval::unknown();
  case ExprKind::Binary:
    return combine(E->Op, analyzeExpr(E->A, IVarBounds),
                   analyzeExpr(E->B, IVarBounds));
  }
  convgen_unreachable("unknown remap expression kind");
}

} // namespace

std::vector<NumericDimBounds>
remap::analyzeBoundsNumeric(const RemapStmt &Stmt,
                            const std::vector<int64_t> &SrcDimSizes) {
  std::vector<ir::Expr> Sizes;
  Sizes.reserve(SrcDimSizes.size());
  for (int64_t S : SrcDimSizes)
    Sizes.push_back(ir::intImm(S));
  std::vector<DimBounds> Symbolic = analyzeBounds(Stmt, Sizes);

  // With constant inputs every known symbolic bound folds to an immediate.
  std::vector<NumericDimBounds> Out;
  Out.reserve(Symbolic.size());
  for (const DimBounds &B : Symbolic) {
    NumericDimBounds N;
    N.IsCounter = B.IsCounter;
    int64_t Lo = 0, Hi = 0;
    if (B.Known && ir::isIntConst(B.Lo, &Lo) && ir::isIntConst(B.Hi, &Hi)) {
      N.Known = true;
      N.Lo = Lo;
      N.Hi = Hi;
    }
    Out.push_back(N);
  }
  return Out;
}

std::vector<DimBounds>
remap::analyzeBounds(const RemapStmt &Stmt,
                     const std::vector<ir::Expr> &SrcDimSizes) {
  CONVGEN_ASSERT(SrcDimSizes.size() == Stmt.SrcVars.size(),
                 "one dimension size per source variable required");
  std::map<std::string, Interval> IVarBounds;
  for (size_t I = 0; I < Stmt.SrcVars.size(); ++I)
    IVarBounds[Stmt.SrcVars[I]] =
        Interval{ir::intImm(0), ir::sub(SrcDimSizes[I], ir::intImm(1))};

  std::vector<DimBounds> Out;
  Out.reserve(Stmt.DstDims.size());
  for (size_t D = 0; D < Stmt.DstDims.size(); ++D) {
    DimBounds B;
    if (dimIsPlainCounter(Stmt, D)) {
      B.IsCounter = true;
      Out.push_back(B);
      continue;
    }
    Interval I = analyzeExpr(inlineLets(Stmt.DstDims[D]), IVarBounds);
    if (I.known()) {
      B.Known = true;
      B.Lo = I.Lo;
      B.Hi = I.Hi;
    }
    Out.push_back(B);
  }
  return Out;
}
