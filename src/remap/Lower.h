//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers remap dimension expressions to conversion IR (paper §4.2).
/// Arithmetic and bitwise expressions inline directly; let bindings become
/// local variable declarations; counters are resolved through caller-
/// provided bindings (a scalar `count` when the counter's indices are
/// iterated in order, a counter array element otherwise).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_REMAP_LOWER_H
#define CONVGEN_REMAP_LOWER_H

#include "ir/IR.h"
#include "remap/Remap.h"

#include <map>
#include <string>
#include <vector>

namespace convgen {
namespace remap {

/// Bindings used while lowering: source index variables map to the IR
/// expressions that hold their coordinates at the current loop level, and
/// counters (keyed by counterKey) map to the IR expression holding the
/// current counter value.
struct LowerEnv {
  std::map<std::string, ir::Expr> IVars;
  std::map<std::string, ir::Expr> Counters;
  /// Prefix that keeps let-local declarations unique per lowering site.
  std::string NamePrefix;
};

/// Lowers \p Dim to an IR expression. Let bindings append declarations to
/// \p LetDecls (in order); the returned expression refers to those locals.
ir::Expr lowerDimExpr(const DimExpr &Dim, const LowerEnv &Env,
                      std::vector<ir::Stmt> *LetDecls);

/// Lowers a let-free expression (as produced by inlineLets).
ir::Expr lowerExpr(const Expr &E, const LowerEnv &Env);

} // namespace remap
} // namespace convgen

#endif // CONVGEN_REMAP_LOWER_H
