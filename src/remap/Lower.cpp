//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "remap/Lower.h"

#include "support/Assert.h"

using namespace convgen;
using namespace convgen::remap;

namespace {

ir::BinOp toIrOp(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return ir::BinOp::Add;
  case BinOp::Sub:
    return ir::BinOp::Sub;
  case BinOp::Mul:
    return ir::BinOp::Mul;
  case BinOp::Div:
    return ir::BinOp::Div;
  case BinOp::Rem:
    return ir::BinOp::Rem;
  case BinOp::BitAnd:
    return ir::BinOp::BitAnd;
  case BinOp::BitOr:
    return ir::BinOp::BitOr;
  case BinOp::BitXor:
    return ir::BinOp::BitXor;
  case BinOp::Shl:
    return ir::BinOp::Shl;
  case BinOp::Shr:
    return ir::BinOp::Shr;
  }
  convgen_unreachable("unknown remap binary op");
}

ir::Expr lowerWithLocals(const Expr &E, const LowerEnv &Env,
                         const std::map<std::string, std::string> &Locals) {
  switch (E->Kind) {
  case ExprKind::Const:
    return ir::intImm(E->Value);
  case ExprKind::IVar: {
    auto It = Env.IVars.find(E->Name);
    if (It == Env.IVars.end())
      fatalError(("remap lowering: no binding for index variable '" +
                  E->Name + "'")
                     .c_str());
    return It->second;
  }
  case ExprKind::LetVar: {
    auto It = Locals.find(E->Name);
    CONVGEN_ASSERT(It != Locals.end(), "let variable lowered before binding");
    return ir::var(It->second);
  }
  case ExprKind::Counter: {
    auto It = Env.Counters.find(counterKey(E->CounterIndices));
    if (It == Env.Counters.end())
      fatalError(("remap lowering: no binding for counter '" +
                  counterKey(E->CounterIndices) + "'")
                     .c_str());
    return It->second;
  }
  case ExprKind::Binary:
    return ir::binop(toIrOp(E->Op), lowerWithLocals(E->A, Env, Locals),
                     lowerWithLocals(E->B, Env, Locals));
  }
  convgen_unreachable("unknown remap expression kind");
}

} // namespace

ir::Expr remap::lowerExpr(const Expr &E, const LowerEnv &Env) {
  return lowerWithLocals(E, Env, {});
}

ir::Expr remap::lowerDimExpr(const DimExpr &Dim, const LowerEnv &Env,
                             std::vector<ir::Stmt> *LetDecls) {
  CONVGEN_ASSERT(LetDecls != nullptr || Dim.Lets.empty(),
                 "dimension with lets requires a declaration sink");
  std::map<std::string, std::string> Locals;
  for (const LetBinding &L : Dim.Lets) {
    std::string Unique = Env.NamePrefix + L.Name;
    LetDecls->push_back(
        ir::decl(Unique, lowerWithLocals(L.Value, Env, Locals)));
    Locals[L.Name] = Unique;
  }
  return lowerWithLocals(Dim.Value, Env, Locals);
}
