//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coordinate remapping notation (paper §4, Figure 8). A remap statement
///
///   (i,j) -> (j-i, i, j)
///
/// describes how a canonical tensor's components map into a higher-order
/// tensor whose lexicographic coordinate order matches how a target format
/// groups and orders nonzeros in memory. Destination dimension expressions
/// are arithmetic/bitwise expressions over the source index variables, may
/// introduce let-bound locals (`r=i/N in (r&1)|...`), and may use counters
/// (`#i`) that number the nonzeros sharing the listed coordinates in
/// iteration order.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_REMAP_REMAP_H
#define CONVGEN_REMAP_REMAP_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace convgen {
namespace remap {

enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
};

enum class ExprKind : uint8_t {
  Const,
  IVar,    ///< A source index variable (i, j, ...).
  LetVar,  ///< A let-bound local within the same dimension expression.
  Counter, ///< #i1 i2 ... : running count per distinct (i1, i2, ...).
  Binary,
};

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

struct ExprNode {
  ExprKind Kind;
  int64_t Value = 0;               ///< Const.
  std::string Name;                ///< IVar / LetVar.
  std::vector<std::string> CounterIndices; ///< Counter (may be empty: `#`).
  BinOp Op = BinOp::Add;
  Expr A, B;
};

Expr constant(int64_t Value);
Expr ivar(const std::string &Name);
Expr letVar(const std::string &Name);
Expr counter(std::vector<std::string> Indices);
Expr binary(BinOp Op, Expr A, Expr B);

/// One let binding: `Name = Value in ...`.
struct LetBinding {
  std::string Name;
  Expr Value;
};

/// A destination dimension expression with its (possibly empty) chain of
/// let bindings, scoped to this dimension only.
struct DimExpr {
  std::vector<LetBinding> Lets;
  Expr Value;
};

/// A full remap statement: `(i,j) -> (j-i, i, j)`.
struct RemapStmt {
  std::vector<std::string> SrcVars;
  std::vector<DimExpr> DstDims;

  size_t srcOrder() const { return SrcVars.size(); }
  size_t dstOrder() const { return DstDims.size(); }
};

/// Builds the identity remapping over \p Vars (used by canonical formats
/// such as COO and CSR; CSC uses the transposition (i,j) -> (j,i)).
RemapStmt identityRemap(const std::vector<std::string> &Vars);

/// Returns a stable key identifying a counter by its index list, e.g. "#i".
std::string counterKey(const std::vector<std::string> &Indices);

/// Collects the distinct counters used anywhere in \p Stmt, in first-use
/// order. Each entry is the counter's index-variable list.
std::vector<std::vector<std::string>> collectCounters(const RemapStmt &Stmt);

/// True if \p DimIdx's expression is exactly one source variable; that
/// variable's name is stored in \p VarName.
bool dimIsPlainVar(const RemapStmt &Stmt, size_t DimIdx,
                   std::string *VarName = nullptr);

/// True if \p DimIdx's expression is exactly one counter; the counter's
/// index list is stored in \p Indices.
bool dimIsPlainCounter(const RemapStmt &Stmt, size_t DimIdx,
                       std::vector<std::string> *Indices = nullptr);

/// Substitutes a dimension expression's let bindings into its value,
/// producing a self-contained expression over source variables, counters,
/// and constants. Bounds analysis and the query language operate on the
/// inlined form; code generation may instead materialize lets as locals.
Expr inlineLets(const DimExpr &Dim);

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string printExpr(const Expr &E);
std::string printDimExpr(const DimExpr &D);
std::string printRemap(const RemapStmt &Stmt);

//===----------------------------------------------------------------------===//
// Evaluation (used by tests and by the oracle converter)
//===----------------------------------------------------------------------===//

/// Evaluates remap statements over concrete coordinates, maintaining counter
/// state across calls: nonzeros must be fed in iteration order, and each
/// counter increments per distinct set of values of its index variables
/// (paper Figure 9).
class Evaluator {
public:
  explicit Evaluator(const RemapStmt &Stmt) : Stmt(Stmt) {}

  /// Maps canonical coordinates \p SrcCoords (parallel to Stmt.SrcVars) to
  /// destination coordinates, advancing counter state.
  std::vector<int64_t> map(const std::vector<int64_t> &SrcCoords);

  void resetCounters() { Counters.clear(); }

private:
  const RemapStmt &Stmt;
  std::map<std::string, int64_t> Counters;
};

} // namespace remap
} // namespace convgen

#endif // CONVGEN_REMAP_REMAP_H
