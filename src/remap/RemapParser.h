//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for coordinate remapping notation, implementing
/// the grammar of paper Figure 8 with the precedence ladder
/// `| < ^ < & < shifts < additive < multiplicative`.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_REMAP_REMAPPARSER_H
#define CONVGEN_REMAP_REMAPPARSER_H

#include "remap/Remap.h"

#include <string>

namespace convgen {
namespace remap {

/// Outcome of a parse; Error is a human-readable diagnostic when !Ok.
struct ParseResult {
  bool Ok = false;
  RemapStmt Stmt;
  std::string Error;
};

/// Parses a full remap statement, e.g. "(i,j) -> (j-i,i,j)".
ParseResult parseRemap(const std::string &Text);

/// Parses a remap statement that is known to be valid (format definitions
/// in this library); aborts with a diagnostic otherwise.
RemapStmt parseRemapOrDie(const std::string &Text);

} // namespace remap
} // namespace convgen

#endif // CONVGEN_REMAP_REMAPPARSER_H
