//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic interval analysis over remapped dimensions. Given the source
/// tensor's dimension sizes (as IR expressions such as `dim0`), computes
/// inclusive coordinate bounds for every destination dimension of a remap
/// statement. DIA's offset dimension k = j-i, for instance, gets bounds
/// [1-dim0, dim1-1], which sizes the analysis-phase bit set and the
/// squeezed level's perm array exactly as Figure 6a's `2N-1` does.
///
/// Counter dimensions (#i) have data-dependent extents; they are flagged so
/// that the owning level format can obtain its size from an attribute query
/// (e.g. ELL's `select [] -> max(i1) as max_crd`).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_REMAP_BOUNDS_H
#define CONVGEN_REMAP_BOUNDS_H

#include "ir/IR.h"
#include "remap/Remap.h"

#include <vector>

namespace convgen {
namespace remap {

/// Inclusive bounds of one destination dimension.
struct DimBounds {
  /// Static bounds are available (Lo/Hi valid).
  bool Known = false;
  /// The dimension is a plain counter; extent comes from a max query.
  bool IsCounter = false;
  ir::Expr Lo, Hi;

  /// Extent as an IR expression (Hi - Lo + 1); requires Known.
  ir::Expr extent() const;
};

/// Computes bounds for every destination dimension of \p Stmt given the
/// source dimension sizes \p SrcDimSizes (parallel to Stmt.SrcVars).
/// Dimensions whose expressions resist the analysis (e.g. bit-interleaving
/// of unbounded operands) come back with Known=false; the code generator
/// rejects such formats with a diagnostic rather than guessing.
std::vector<DimBounds> analyzeBounds(const RemapStmt &Stmt,
                                     const std::vector<ir::Expr> &SrcDimSizes);

/// Numeric counterpart of \ref analyzeBounds for concrete dimension sizes;
/// used by the runtime validator and the oracle builders.
struct NumericDimBounds {
  bool Known = false;
  bool IsCounter = false;
  int64_t Lo = 0;
  int64_t Hi = -1;

  int64_t extent() const { return Hi - Lo + 1; }
};

std::vector<NumericDimBounds>
analyzeBoundsNumeric(const RemapStmt &Stmt,
                     const std::vector<int64_t> &SrcDimSizes);

} // namespace remap
} // namespace convgen

#endif // CONVGEN_REMAP_BOUNDS_H
