//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "remap/Remap.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace convgen;
using namespace convgen::remap;

static Expr makeExpr(ExprKind Kind) {
  auto Node = std::make_shared<ExprNode>();
  Node->Kind = Kind;
  return Node;
}

Expr remap::constant(int64_t Value) {
  Expr E = makeExpr(ExprKind::Const);
  const_cast<ExprNode &>(*E).Value = Value;
  return E;
}

Expr remap::ivar(const std::string &Name) {
  Expr E = makeExpr(ExprKind::IVar);
  const_cast<ExprNode &>(*E).Name = Name;
  return E;
}

Expr remap::letVar(const std::string &Name) {
  Expr E = makeExpr(ExprKind::LetVar);
  const_cast<ExprNode &>(*E).Name = Name;
  return E;
}

Expr remap::counter(std::vector<std::string> Indices) {
  Expr E = makeExpr(ExprKind::Counter);
  const_cast<ExprNode &>(*E).CounterIndices = std::move(Indices);
  return E;
}

Expr remap::binary(BinOp Op, Expr A, Expr B) {
  CONVGEN_ASSERT(A && B, "binary remap expression requires two operands");
  Expr E = makeExpr(ExprKind::Binary);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.Op = Op;
  N.A = std::move(A);
  N.B = std::move(B);
  return E;
}

RemapStmt remap::identityRemap(const std::vector<std::string> &Vars) {
  RemapStmt Stmt;
  Stmt.SrcVars = Vars;
  for (const std::string &V : Vars)
    Stmt.DstDims.push_back(DimExpr{{}, ivar(V)});
  return Stmt;
}

std::string remap::counterKey(const std::vector<std::string> &Indices) {
  return "#" + join(Indices, " ");
}

static void collectCountersIn(const Expr &E,
                              std::vector<std::vector<std::string>> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::Counter) {
    if (std::find(Out.begin(), Out.end(), E->CounterIndices) == Out.end())
      Out.push_back(E->CounterIndices);
    return;
  }
  collectCountersIn(E->A, Out);
  collectCountersIn(E->B, Out);
}

std::vector<std::vector<std::string>>
remap::collectCounters(const RemapStmt &Stmt) {
  std::vector<std::vector<std::string>> Out;
  for (const DimExpr &D : Stmt.DstDims) {
    for (const LetBinding &L : D.Lets)
      collectCountersIn(L.Value, Out);
    collectCountersIn(D.Value, Out);
  }
  return Out;
}

bool remap::dimIsPlainVar(const RemapStmt &Stmt, size_t DimIdx,
                          std::string *VarName) {
  CONVGEN_ASSERT(DimIdx < Stmt.DstDims.size(), "dimension out of range");
  const DimExpr &D = Stmt.DstDims[DimIdx];
  if (!D.Lets.empty() || D.Value->Kind != ExprKind::IVar)
    return false;
  if (VarName)
    *VarName = D.Value->Name;
  return true;
}

bool remap::dimIsPlainCounter(const RemapStmt &Stmt, size_t DimIdx,
                              std::vector<std::string> *Indices) {
  CONVGEN_ASSERT(DimIdx < Stmt.DstDims.size(), "dimension out of range");
  Expr E = inlineLets(Stmt.DstDims[DimIdx]);
  if (E->Kind != ExprKind::Counter)
    return false;
  if (Indices)
    *Indices = E->CounterIndices;
  return true;
}

static Expr substitute(const Expr &E,
                       const std::map<std::string, Expr> &Bindings) {
  switch (E->Kind) {
  case ExprKind::Const:
  case ExprKind::IVar:
  case ExprKind::Counter:
    return E;
  case ExprKind::LetVar: {
    auto It = Bindings.find(E->Name);
    CONVGEN_ASSERT(It != Bindings.end(), "unbound let variable");
    return It->second;
  }
  case ExprKind::Binary:
    return binary(E->Op, substitute(E->A, Bindings),
                  substitute(E->B, Bindings));
  }
  convgen_unreachable("unknown remap expression kind");
}

Expr remap::inlineLets(const DimExpr &Dim) {
  std::map<std::string, Expr> Bindings;
  for (const LetBinding &L : Dim.Lets)
    Bindings[L.Name] = substitute(L.Value, Bindings);
  return substitute(Dim.Value, Bindings);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

/// Precedence levels follow Figure 8 (lowest binds loosest).
int precedence(BinOp Op) {
  switch (Op) {
  case BinOp::BitOr:
    return 1;
  case BinOp::BitXor:
    return 2;
  case BinOp::BitAnd:
    return 3;
  case BinOp::Shl:
  case BinOp::Shr:
    return 4;
  case BinOp::Add:
  case BinOp::Sub:
    return 5;
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Rem:
    return 6;
  }
  convgen_unreachable("unknown remap binary op");
}

const char *spelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Rem:
    return "%";
  case BinOp::BitAnd:
    return "&";
  case BinOp::BitOr:
    return "|";
  case BinOp::BitXor:
    return "^";
  case BinOp::Shl:
    return "<<";
  case BinOp::Shr:
    return ">>";
  }
  convgen_unreachable("unknown remap binary op");
}

std::string printWithPrec(const Expr &E, int ParentPrec) {
  switch (E->Kind) {
  case ExprKind::Const:
    return std::to_string(E->Value);
  case ExprKind::IVar:
  case ExprKind::LetVar:
    return E->Name;
  case ExprKind::Counter:
    return counterKey(E->CounterIndices);
  case ExprKind::Binary: {
    int Prec = precedence(E->Op);
    std::string Text = printWithPrec(E->A, Prec) + spelling(E->Op) +
                       printWithPrec(E->B, Prec + 1);
    if (Prec < ParentPrec)
      Text = "(" + Text + ")";
    return Text;
  }
  }
  convgen_unreachable("unknown remap expression kind");
}

} // namespace

std::string remap::printExpr(const Expr &E) { return printWithPrec(E, 0); }

std::string remap::printDimExpr(const DimExpr &D) {
  std::string Out;
  for (const LetBinding &L : D.Lets)
    Out += L.Name + "=" + printExpr(L.Value) + " in ";
  return Out + printExpr(D.Value);
}

std::string remap::printRemap(const RemapStmt &Stmt) {
  std::vector<std::string> Dims;
  Dims.reserve(Stmt.DstDims.size());
  for (const DimExpr &D : Stmt.DstDims)
    Dims.push_back(printDimExpr(D));
  return "(" + join(Stmt.SrcVars, ",") + ") -> (" + join(Dims, ",") + ")";
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

namespace {

int64_t applyOp(BinOp Op, int64_t A, int64_t B) {
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::Div:
    CONVGEN_ASSERT(B != 0, "remap evaluation: division by zero");
    return A / B;
  case BinOp::Rem:
    CONVGEN_ASSERT(B != 0, "remap evaluation: remainder by zero");
    return A % B;
  case BinOp::BitAnd:
    return A & B;
  case BinOp::BitOr:
    return A | B;
  case BinOp::BitXor:
    return A ^ B;
  case BinOp::Shl:
    return A << B;
  case BinOp::Shr:
    return A >> B;
  }
  convgen_unreachable("unknown remap binary op");
}

/// Evaluates one expression. \p Env holds source ivars and let locals;
/// \p CounterRead returns the value a counter takes for this nonzero.
int64_t evalExpr(const Expr &E, const std::map<std::string, int64_t> &Env,
                 const std::map<std::string, int64_t> &CounterVals) {
  switch (E->Kind) {
  case ExprKind::Const:
    return E->Value;
  case ExprKind::IVar:
  case ExprKind::LetVar: {
    auto It = Env.find(E->Name);
    if (It == Env.end())
      fatalError(("remap evaluation: unbound variable '" + E->Name + "'")
                     .c_str());
    return It->second;
  }
  case ExprKind::Counter: {
    auto It = CounterVals.find(counterKey(E->CounterIndices));
    CONVGEN_ASSERT(It != CounterVals.end(), "counter value not precomputed");
    return It->second;
  }
  case ExprKind::Binary:
    return applyOp(E->Op, evalExpr(E->A, Env, CounterVals),
                   evalExpr(E->B, Env, CounterVals));
  }
  convgen_unreachable("unknown remap expression kind");
}

} // namespace

std::vector<int64_t> Evaluator::map(const std::vector<int64_t> &SrcCoords) {
  CONVGEN_ASSERT(SrcCoords.size() == Stmt.SrcVars.size(),
                 "coordinate arity mismatch");
  std::map<std::string, int64_t> Env;
  for (size_t I = 0; I < SrcCoords.size(); ++I)
    Env[Stmt.SrcVars[I]] = SrcCoords[I];

  // Counters advance once per nonzero: compute this nonzero's value for
  // every distinct counter, then increment the stored state.
  std::map<std::string, int64_t> CounterVals;
  for (const std::vector<std::string> &Indices : collectCounters(Stmt)) {
    std::string StateKey = counterKey(Indices);
    for (const std::string &Var : Indices) {
      auto It = Env.find(Var);
      if (It == Env.end())
        fatalError(("remap evaluation: counter over unknown variable '" +
                    Var + "'")
                       .c_str());
      StateKey += "," + std::to_string(It->second);
    }
    CounterVals[counterKey(Indices)] = Counters[StateKey]++;
  }

  std::vector<int64_t> Out;
  Out.reserve(Stmt.DstDims.size());
  for (const DimExpr &D : Stmt.DstDims) {
    std::map<std::string, int64_t> Scope = Env;
    for (const LetBinding &L : D.Lets)
      Scope[L.Name] = evalExpr(L.Value, Scope, CounterVals);
    Out.push_back(evalExpr(D.Value, Scope, CounterVals));
  }
  return Out;
}
