//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "remap/RemapParser.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <cctype>
#include <set>

using namespace convgen;
using namespace convgen::remap;

namespace {

enum class TokKind : uint8_t {
  Ident,
  Number,
  KwIn,
  LParen,
  RParen,
  Comma,
  Arrow,
  Assign,
  Hash,
  Pipe,
  Caret,
  Amp,
  Shl,
  Shr,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  End,
  Invalid,
};

struct Token {
  TokKind Kind = TokKind::Invalid;
  std::string Text;
  int64_t Number = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  Token next() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos >= Text.size())
      return {TokKind::End, "", 0};
    char C = Text[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Begin = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      std::string Word = Text.substr(Begin, Pos - Begin);
      if (Word == "in")
        return {TokKind::KwIn, Word, 0};
      return {TokKind::Ident, Word, 0};
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Begin = Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      Token T{TokKind::Number, Text.substr(Begin, Pos - Begin), 0};
      T.Number = std::stoll(T.Text);
      return T;
    }
    ++Pos;
    switch (C) {
    case '(':
      return {TokKind::LParen, "(", 0};
    case ')':
      return {TokKind::RParen, ")", 0};
    case ',':
      return {TokKind::Comma, ",", 0};
    case '=':
      return {TokKind::Assign, "=", 0};
    case '#':
      return {TokKind::Hash, "#", 0};
    case '|':
      return {TokKind::Pipe, "|", 0};
    case '^':
      return {TokKind::Caret, "^", 0};
    case '&':
      return {TokKind::Amp, "&", 0};
    case '+':
      return {TokKind::Plus, "+", 0};
    case '*':
      return {TokKind::Star, "*", 0};
    case '/':
      return {TokKind::Slash, "/", 0};
    case '%':
      return {TokKind::Percent, "%", 0};
    case '-':
      if (Pos < Text.size() && Text[Pos] == '>') {
        ++Pos;
        return {TokKind::Arrow, "->", 0};
      }
      return {TokKind::Minus, "-", 0};
    case '<':
      if (Pos < Text.size() && Text[Pos] == '<') {
        ++Pos;
        return {TokKind::Shl, "<<", 0};
      }
      return {TokKind::Invalid, "<", 0};
    case '>':
      if (Pos < Text.size() && Text[Pos] == '>') {
        ++Pos;
        return {TokKind::Shr, ">>", 0};
      }
      return {TokKind::Invalid, ">", 0};
    default:
      return {TokKind::Invalid, std::string(1, C), 0};
    }
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

/// The recursive-descent parser. Errors are recorded and parsing unwinds by
/// returning null expressions; the first error message wins.
class Parser {
public:
  explicit Parser(const std::string &Text) : Lex(Text) {
    Cur = Lex.next();
    Ahead = Lex.next();
  }

  ParseResult run() {
    ParseResult Result;
    parseSrcIndices(Result.Stmt);
    expect(TokKind::Arrow, "'->'");
    parseDstIndices(Result.Stmt);
    if (ErrorMsg.empty() && Cur.Kind != TokKind::End)
      fail("unexpected trailing input '" + Cur.Text + "'");
    Result.Ok = ErrorMsg.empty();
    Result.Error = ErrorMsg;
    return Result;
  }

private:
  void advance() {
    Cur = Ahead;
    Ahead = Lex.next();
  }

  void fail(const std::string &Msg) {
    if (ErrorMsg.empty())
      ErrorMsg = Msg;
  }

  bool expect(TokKind Kind, const char *What) {
    if (Cur.Kind != Kind) {
      fail(std::string("expected ") + What + " but found '" +
           (Cur.Kind == TokKind::End ? "<end>" : Cur.Text) + "'");
      return false;
    }
    advance();
    return true;
  }

  void parseSrcIndices(RemapStmt &Stmt) {
    if (!expect(TokKind::LParen, "'('"))
      return;
    while (true) {
      if (Cur.Kind != TokKind::Ident) {
        fail("expected source index variable");
        return;
      }
      if (SrcVars.count(Cur.Text)) {
        fail("duplicate source index variable '" + Cur.Text + "'");
        return;
      }
      SrcVars.insert(Cur.Text);
      Stmt.SrcVars.push_back(Cur.Text);
      advance();
      if (Cur.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
    expect(TokKind::RParen, "')'");
  }

  void parseDstIndices(RemapStmt &Stmt) {
    if (!expect(TokKind::LParen, "'('"))
      return;
    while (ErrorMsg.empty()) {
      Stmt.DstDims.push_back(parseIVarLet());
      if (Cur.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
    expect(TokKind::RParen, "')'");
  }

  DimExpr parseIVarLet() {
    DimExpr Dim;
    LetVars.clear();
    // `name = expr in ...` chains; lookahead distinguishes a binding from an
    // expression that merely begins with an identifier.
    while (Cur.Kind == TokKind::Ident && Ahead.Kind == TokKind::Assign) {
      std::string Name = Cur.Text;
      if (SrcVars.count(Name)) {
        fail("let variable '" + Name + "' shadows a source index variable");
        return Dim;
      }
      advance(); // name
      advance(); // '='
      Expr Value = parseExpr();
      if (!ErrorMsg.empty())
        return Dim;
      if (!expect(TokKind::KwIn, "'in'"))
        return Dim;
      Dim.Lets.push_back(LetBinding{Name, Value});
      LetVars.insert(Name);
    }
    Dim.Value = parseExpr();
    return Dim;
  }

  Expr parseExpr() { return parseBinary(1); }

  /// Precedence-climbing over the ladder of Figure 8.
  Expr parseBinary(int MinPrec) {
    Expr Lhs = MinPrec >= 7 ? parseFactor() : parseBinary(MinPrec + 1);
    if (!Lhs)
      return nullptr;
    while (ErrorMsg.empty()) {
      BinOp Op;
      int Prec;
      switch (Cur.Kind) {
      case TokKind::Pipe:
        Op = BinOp::BitOr;
        Prec = 1;
        break;
      case TokKind::Caret:
        Op = BinOp::BitXor;
        Prec = 2;
        break;
      case TokKind::Amp:
        Op = BinOp::BitAnd;
        Prec = 3;
        break;
      case TokKind::Shl:
        Op = BinOp::Shl;
        Prec = 4;
        break;
      case TokKind::Shr:
        Op = BinOp::Shr;
        Prec = 4;
        break;
      case TokKind::Plus:
        Op = BinOp::Add;
        Prec = 5;
        break;
      case TokKind::Minus:
        Op = BinOp::Sub;
        Prec = 5;
        break;
      case TokKind::Star:
        Op = BinOp::Mul;
        Prec = 6;
        break;
      case TokKind::Slash:
        Op = BinOp::Div;
        Prec = 6;
        break;
      case TokKind::Percent:
        Op = BinOp::Rem;
        Prec = 6;
        break;
      default:
        return Lhs;
      }
      if (Prec != MinPrec)
        return Lhs;
      advance();
      Expr Rhs = parseBinary(MinPrec + 1);
      if (!Rhs)
        return nullptr;
      Lhs = binary(Op, Lhs, Rhs);
    }
    return Lhs;
  }

  Expr parseFactor() {
    switch (Cur.Kind) {
    case TokKind::LParen: {
      advance();
      Expr E = parseExpr();
      expect(TokKind::RParen, "')'");
      return E;
    }
    case TokKind::Number: {
      Expr E = constant(Cur.Number);
      advance();
      return E;
    }
    case TokKind::Hash: {
      advance();
      std::vector<std::string> Indices;
      while (Cur.Kind == TokKind::Ident && SrcVars.count(Cur.Text)) {
        Indices.push_back(Cur.Text);
        advance();
      }
      return counter(std::move(Indices));
    }
    case TokKind::Ident: {
      std::string Name = Cur.Text;
      advance();
      if (SrcVars.count(Name))
        return ivar(Name);
      if (LetVars.count(Name))
        return letVar(Name);
      fail("unknown variable '" + Name + "'");
      return nullptr;
    }
    default:
      fail("expected expression but found '" +
           (Cur.Kind == TokKind::End ? "<end>" : Cur.Text) + "'");
      return nullptr;
    }
  }

  Lexer Lex;
  Token Cur, Ahead;
  std::set<std::string> SrcVars;
  std::set<std::string> LetVars;
  std::string ErrorMsg;
};

} // namespace

ParseResult remap::parseRemap(const std::string &Text) {
  Parser P(Text);
  return P.run();
}

RemapStmt remap::parseRemapOrDie(const std::string &Text) {
  ParseResult R = parseRemap(Text);
  if (!R.Ok)
    fatalError(
        ("invalid remap statement '" + Text + "': " + R.Error).c_str());
  return R.Stmt;
}
