//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a generated conversion routine as a self-contained C99 translation
/// unit. The JIT compiles this source with the system compiler and loads it
/// with dlopen, which is the same execution model taco uses for generated
/// kernels. The ABI is a single `cvg_tensor_t` struct per tensor (dims,
/// per-level pos/crd/perm arrays with lengths, per-level size parameters,
/// and the values array).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_IR_CEMITTER_H
#define CONVGEN_IR_CEMITTER_H

#include "ir/IR.h"

#include <string>

namespace convgen {
namespace ir {

/// Maximum tensor order the C ABI supports. Level indices are 1-based, so
/// arrays have kMaxLevels + 1 entries.
constexpr int kMaxLevels = 7;

/// The C declaration of the tensor ABI struct (also consumed by the JIT
/// runner, which lays out a bit-compatible struct in C++).
std::string cTensorStructDecl();

/// Emits a complete C99 translation unit defining
/// `void <F.Name>(const cvg_tensor_t *A, cvg_tensor_t *B)`.
std::string emitC(const Function &F);

} // namespace ir
} // namespace convgen

#endif // CONVGEN_IR_CEMITTER_H
