//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>

using namespace convgen;
using namespace convgen::ir;

const char *ir::scalarKindName(ScalarKind Kind) {
  switch (Kind) {
  case ScalarKind::Int:
    return "int";
  case ScalarKind::Float:
    return "float";
  case ScalarKind::Bool:
    return "bool";
  }
  convgen_unreachable("unknown scalar kind");
}

//===----------------------------------------------------------------------===//
// Expression factories
//===----------------------------------------------------------------------===//

static Expr makeExpr(ExprKind Kind) {
  auto Node = std::make_shared<ExprNode>();
  Node->Kind = Kind;
  return Node;
}

Expr ir::intImm(int64_t Value) {
  Expr E = makeExpr(ExprKind::IntImm);
  const_cast<ExprNode &>(*E).IntVal = Value;
  return E;
}

Expr ir::floatImm(double Value) {
  Expr E = makeExpr(ExprKind::FloatImm);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.FloatVal = Value;
  N.Type = ScalarKind::Float;
  return E;
}

Expr ir::boolImm(bool Value) {
  Expr E = makeExpr(ExprKind::BoolImm);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.IntVal = Value ? 1 : 0;
  N.Type = ScalarKind::Bool;
  return E;
}

Expr ir::var(const std::string &Name, ScalarKind Kind) {
  CONVGEN_ASSERT(!Name.empty(), "variable must have a name");
  Expr E = makeExpr(ExprKind::Var);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.Name = Name;
  N.Type = Kind;
  return E;
}

Expr ir::load(const std::string &Buffer, Expr Index, ScalarKind Elem) {
  CONVGEN_ASSERT(Index != nullptr, "load requires an index");
  Expr E = makeExpr(ExprKind::Load);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.Name = Buffer;
  N.A = std::move(Index);
  N.Type = Elem;
  return E;
}

bool ir::isIntConst(const Expr &E, int64_t *Value) {
  if (!E || (E->Kind != ExprKind::IntImm && E->Kind != ExprKind::BoolImm))
    return false;
  if (Value)
    *Value = E->IntVal;
  return true;
}

/// Applies the integer semantics of \p Op; used for constant folding and by
/// the interpreter so both agree exactly.
static int64_t applyIntBinOp(BinOp Op, int64_t A, int64_t B) {
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::Div:
    CONVGEN_ASSERT(B != 0, "integer division by zero");
    return A / B;
  case BinOp::Rem:
    CONVGEN_ASSERT(B != 0, "integer remainder by zero");
    return A % B;
  case BinOp::Min:
    return A < B ? A : B;
  case BinOp::Max:
    return A > B ? A : B;
  case BinOp::BitAnd:
    return A & B;
  case BinOp::BitOr:
    return A | B;
  case BinOp::BitXor:
    return A ^ B;
  case BinOp::Shl:
    return A << B;
  case BinOp::Shr:
    return A >> B;
  case BinOp::Eq:
    return A == B;
  case BinOp::Ne:
    return A != B;
  case BinOp::Lt:
    return A < B;
  case BinOp::Le:
    return A <= B;
  case BinOp::Gt:
    return A > B;
  case BinOp::Ge:
    return A >= B;
  case BinOp::LAnd:
    return (A != 0) && (B != 0);
  case BinOp::LOr:
    return (A != 0) || (B != 0);
  }
  convgen_unreachable("unknown binary op");
}

static bool isComparison(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
  case BinOp::LAnd:
  case BinOp::LOr:
    return true;
  default:
    return false;
  }
}

Expr ir::binop(BinOp Op, Expr A, Expr B) {
  CONVGEN_ASSERT(A && B, "binop requires two operands");
  int64_t CA = 0, CB = 0;
  bool AConst = isIntConst(A, &CA);
  bool BConst = isIntConst(B, &CB);
  bool IntLike = A->Type != ScalarKind::Float && B->Type != ScalarKind::Float;

  // Constant folding over integers.
  if (AConst && BConst && IntLike &&
      !((Op == BinOp::Div || Op == BinOp::Rem) && CB == 0)) {
    int64_t Folded = applyIntBinOp(Op, CA, CB);
    return isComparison(Op) ? boolImm(Folded != 0) : intImm(Folded);
  }
  // Identities that keep generated loop bounds and indexing readable.
  if (IntLike) {
    if (Op == BinOp::Add && AConst && CA == 0)
      return B;
    if ((Op == BinOp::Add || Op == BinOp::Sub) && BConst && CB == 0)
      return A;
    if (Op == BinOp::Mul && AConst && CA == 1)
      return B;
    if ((Op == BinOp::Mul || Op == BinOp::Div) && BConst && CB == 1)
      return A;
    if (Op == BinOp::Mul && ((AConst && CA == 0) || (BConst && CB == 0)))
      return intImm(0);
    // Normalize +/- of negative constants so code prints as x - 3, never
    // x + -3 or x - -3.
    if (Op == BinOp::Add && BConst && CB < 0)
      return binop(BinOp::Sub, A, intImm(-CB));
    if (Op == BinOp::Sub && BConst && CB < 0)
      return binop(BinOp::Add, A, intImm(-CB));
    // Fold constant chains: (x + c1) + c2 and (x - c1) + c2 collapse, so
    // bounds like (dim0 - 1) + 1 print as dim0.
    if ((Op == BinOp::Add || Op == BinOp::Sub) && BConst &&
        A->Kind == ExprKind::Binary &&
        (A->BOp == BinOp::Add || A->BOp == BinOp::Sub)) {
      int64_t Inner = 0;
      if (isIntConst(A->B, &Inner)) {
        int64_t Outer = Op == BinOp::Add ? CB : -CB;
        int64_t Net = (A->BOp == BinOp::Add ? Inner : -Inner) + Outer;
        if (Net == 0)
          return A->A;
        return Net > 0 ? binop(BinOp::Add, A->A, intImm(Net))
                       : binop(BinOp::Sub, A->A, intImm(-Net));
      }
    }
  }

  Expr E = makeExpr(ExprKind::Binary);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.BOp = Op;
  if (isComparison(Op))
    N.Type = ScalarKind::Bool;
  else if (A->Type == ScalarKind::Float || B->Type == ScalarKind::Float)
    N.Type = ScalarKind::Float;
  else
    N.Type = ScalarKind::Int;
  N.A = std::move(A);
  N.B = std::move(B);
  return E;
}

Expr ir::add(Expr A, Expr B) { return binop(BinOp::Add, A, B); }
Expr ir::sub(Expr A, Expr B) { return binop(BinOp::Sub, A, B); }
Expr ir::mul(Expr A, Expr B) { return binop(BinOp::Mul, A, B); }
Expr ir::div(Expr A, Expr B) { return binop(BinOp::Div, A, B); }
Expr ir::rem(Expr A, Expr B) { return binop(BinOp::Rem, A, B); }
Expr ir::min(Expr A, Expr B) { return binop(BinOp::Min, A, B); }
Expr ir::max(Expr A, Expr B) { return binop(BinOp::Max, A, B); }
Expr ir::eq(Expr A, Expr B) { return binop(BinOp::Eq, A, B); }
Expr ir::ne(Expr A, Expr B) { return binop(BinOp::Ne, A, B); }
Expr ir::lt(Expr A, Expr B) { return binop(BinOp::Lt, A, B); }
Expr ir::le(Expr A, Expr B) { return binop(BinOp::Le, A, B); }
Expr ir::gt(Expr A, Expr B) { return binop(BinOp::Gt, A, B); }
Expr ir::ge(Expr A, Expr B) { return binop(BinOp::Ge, A, B); }
Expr ir::logicalAnd(Expr A, Expr B) { return binop(BinOp::LAnd, A, B); }
Expr ir::logicalOr(Expr A, Expr B) { return binop(BinOp::LOr, A, B); }

Expr ir::neg(Expr A) {
  int64_t C = 0;
  if (isIntConst(A, &C))
    return intImm(-C);
  Expr E = makeExpr(ExprKind::Unary);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.UOp = UnOp::Neg;
  N.Type = A->Type;
  N.A = std::move(A);
  return E;
}

Expr ir::logicalNot(Expr A) {
  int64_t C = 0;
  if (isIntConst(A, &C))
    return boolImm(C == 0);
  Expr E = makeExpr(ExprKind::Unary);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.UOp = UnOp::LNot;
  N.Type = ScalarKind::Bool;
  N.A = std::move(A);
  return E;
}

Expr ir::numParts() {
  Expr E = makeExpr(ExprKind::NumParts);
  const_cast<ExprNode &>(*E).Type = ScalarKind::Int;
  return E;
}

Expr ir::lowerBound(const std::string &Buffer, Expr Count,
                    std::vector<Expr> Keys) {
  CONVGEN_ASSERT(Count != nullptr, "lowerBound requires a tuple count");
  CONVGEN_ASSERT(!Keys.empty(), "lowerBound requires at least one key");
  Expr E = makeExpr(ExprKind::LowerBound);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.Name = Buffer;
  N.A = std::move(Count);
  N.Args = std::move(Keys);
  N.Type = ScalarKind::Int;
  return E;
}

Expr ir::lowerBoundPacked(const std::string &Buffer, Expr Count,
                          std::vector<Expr> Keys,
                          std::vector<int64_t> PackWidths) {
  if (PackWidths.size() != Keys.size())
    fatalError("lowerBoundPacked requires one bit width per key component");
  int64_t TotalBits = 0;
  for (int64_t W : PackWidths) {
    if (W < 0 || W > 32)
      fatalError("lowerBoundPacked widths are int32 coordinate widths");
    TotalBits += W;
  }
  if (TotalBits > 64)
    fatalError("lowerBoundPacked requires the tuple to fit 64 bits");
  Expr E = lowerBound(Buffer, std::move(Count), std::move(Keys));
  const_cast<ExprNode &>(*E).PackWidths = std::move(PackWidths);
  return E;
}

Expr ir::select(Expr Cond, Expr IfTrue, Expr IfFalse) {
  int64_t C = 0;
  if (isIntConst(Cond, &C))
    return C != 0 ? IfTrue : IfFalse;
  Expr E = makeExpr(ExprKind::Select);
  ExprNode &N = const_cast<ExprNode &>(*E);
  N.Type = IfTrue->Type;
  N.A = std::move(Cond);
  N.B = std::move(IfTrue);
  N.C = std::move(IfFalse);
  return E;
}

//===----------------------------------------------------------------------===//
// Statement factories
//===----------------------------------------------------------------------===//

static Stmt makeStmt(StmtKind Kind) {
  auto Node = std::make_shared<StmtNode>();
  Node->Kind = Kind;
  return Node;
}

Stmt ir::block(std::vector<Stmt> Stmts) {
  Stmt S = makeStmt(StmtKind::Block);
  const_cast<StmtNode &>(*S).Stmts = std::move(Stmts);
  return S;
}

Stmt ir::decl(const std::string &Name, Expr Init, ScalarKind Kind) {
  CONVGEN_ASSERT(Init != nullptr, "decl requires an initializer");
  Stmt S = makeStmt(StmtKind::Decl);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Name;
  N.Type = Kind;
  N.A = std::move(Init);
  return S;
}

Stmt ir::assign(const std::string &Name, Expr Value) {
  Stmt S = makeStmt(StmtKind::Assign);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Name;
  N.A = std::move(Value);
  return S;
}

Stmt ir::store(const std::string &Buffer, Expr Index, Expr Value,
               ReduceOp Reduce) {
  Stmt S = makeStmt(StmtKind::Store);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Buffer;
  N.A = std::move(Index);
  N.B = std::move(Value);
  N.Reduce = Reduce;
  return S;
}

Stmt ir::forRange(const std::string &Var, Expr Lo, Expr Hi, Stmt Body) {
  Stmt S = makeStmt(StmtKind::For);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Var;
  N.A = std::move(Lo);
  N.B = std::move(Hi);
  N.Body = std::move(Body);
  return S;
}

Stmt ir::whileLoop(Expr Cond, Stmt Body) {
  Stmt S = makeStmt(StmtKind::While);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.A = std::move(Cond);
  N.Body = std::move(Body);
  return S;
}

Stmt ir::ifThen(Expr Cond, Stmt Then, Stmt Else) {
  Stmt S = makeStmt(StmtKind::If);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.A = std::move(Cond);
  N.Body = std::move(Then);
  N.Else = std::move(Else);
  return S;
}

Stmt ir::alloc(const std::string &Buffer, ScalarKind Elem, Expr Size,
               bool ZeroInit) {
  Stmt S = makeStmt(StmtKind::Alloc);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Buffer;
  N.Type = Elem;
  N.A = std::move(Size);
  N.ZeroInit = ZeroInit;
  return S;
}

Stmt ir::freeBuffer(const std::string &Buffer) {
  Stmt S = makeStmt(StmtKind::Free);
  const_cast<StmtNode &>(*S).Name = Buffer;
  return S;
}

Stmt ir::markLoopParallel(const Stmt &Loop, std::vector<std::string> Privates,
                          std::vector<ParReduction> Reductions) {
  CONVGEN_ASSERT(Loop && Loop->Kind == StmtKind::For,
                 "only For loops can be parallel");
  auto Node = std::make_shared<StmtNode>(*Loop);
  Node->Parallel = true;
  Node->Privates = std::move(Privates);
  Node->Reductions = std::move(Reductions);
  return Node;
}

Stmt ir::comment(const std::string &Text) {
  Stmt S = makeStmt(StmtKind::Comment);
  const_cast<StmtNode &>(*S).Name = Text;
  return S;
}

Stmt ir::yieldBuffer(const std::string &Slot, const std::string &Buffer,
                     Expr Length) {
  Stmt S = makeStmt(StmtKind::YieldBuffer);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Slot = Slot;
  N.Name = Buffer;
  N.A = std::move(Length);
  return S;
}

Stmt ir::yieldScalar(const std::string &Slot, Expr Value) {
  Stmt S = makeStmt(StmtKind::YieldScalar);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Slot = Slot;
  N.A = std::move(Value);
  return S;
}

Stmt ir::scan(const std::string &Buffer, Expr Length, ScanKind Kind,
              ReduceOp Op) {
  CONVGEN_ASSERT(Length != nullptr, "scan requires a length");
  CONVGEN_ASSERT(Op == ReduceOp::Add || Op == ReduceOp::Max,
                 "scan combines with Add or Max only");
  CONVGEN_ASSERT(Op == ReduceOp::Add || Kind == ScanKind::Inclusive,
                 "max scans are inclusive (identity 0 over non-negatives)");
  Stmt S = makeStmt(StmtKind::Scan);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Buffer;
  N.A = std::move(Length);
  N.Scan = Kind;
  N.Reduce = Op;
  return S;
}

Stmt ir::sortTuples(const std::string &Buffer, Expr Count, int64_t Arity) {
  CONVGEN_ASSERT(Count != nullptr, "sortTuples requires a tuple count");
  CONVGEN_ASSERT(Arity >= 1, "sortTuples requires a positive arity");
  Stmt S = makeStmt(StmtKind::SortTuples);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Buffer;
  N.A = std::move(Count);
  N.Arity = Arity;
  return S;
}

Stmt ir::sortTuplesPacked(const std::string &Buffer, Expr Count,
                          int64_t Arity, std::vector<int64_t> PackWidths) {
  // Hard errors even in release builds: a bad width vector would silently
  // mis-sort (keys aliasing or truncating coordinates).
  if (static_cast<int64_t>(PackWidths.size()) != Arity)
    fatalError("sortTuplesPacked requires one bit width per component");
  int64_t TotalBits = 0;
  for (int64_t W : PackWidths) {
    if (W < 0 || W > 32)
      fatalError("sortTuplesPacked widths are int32 coordinate widths");
    TotalBits += W;
  }
  if (TotalBits > 64)
    fatalError("sortTuplesPacked requires the tuple to fit 64 bits");
  Stmt S = sortTuples(Buffer, std::move(Count), Arity);
  const_cast<StmtNode &>(*S).PackWidths = std::move(PackWidths);
  return S;
}

Stmt ir::sortUniqueTuplesPacked(const std::string &Buffer, Expr Count,
                                int64_t Arity,
                                std::vector<int64_t> PackWidths,
                                const std::string &CountVar,
                                const std::string &RankBuffer) {
  if (CountVar.empty())
    fatalError("sortUniqueTuplesPacked requires a result name");
  Stmt S =
      sortTuplesPacked(Buffer, std::move(Count), Arity, std::move(PackWidths));
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Slot = CountVar;
  N.Buffer2 = RankBuffer;
  return S;
}

Stmt ir::uniqueTuples(const std::string &Buffer, Expr Count, int64_t Arity,
                      const std::string &CountVar) {
  CONVGEN_ASSERT(Count != nullptr, "uniqueTuples requires a tuple count");
  CONVGEN_ASSERT(Arity >= 1, "uniqueTuples requires a positive arity");
  CONVGEN_ASSERT(!CountVar.empty(), "uniqueTuples requires a result name");
  Stmt S = makeStmt(StmtKind::UniqueTuples);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Buffer;
  N.Slot = CountVar;
  N.A = std::move(Count);
  N.Arity = Arity;
  return S;
}

Stmt ir::uniquePrefix(const std::string &Src, Expr Count, int64_t SrcArity,
                      const std::string &Dst, int64_t DstArity,
                      const std::string &CountVar) {
  CONVGEN_ASSERT(Count != nullptr, "uniquePrefix requires a tuple count");
  CONVGEN_ASSERT(SrcArity >= 1 && DstArity >= 1 && DstArity <= SrcArity,
                 "uniquePrefix requires 1 <= DstArity <= SrcArity");
  CONVGEN_ASSERT(!CountVar.empty(), "uniquePrefix requires a result name");
  Stmt S = makeStmt(StmtKind::UniquePrefix);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Src;
  N.Buffer2 = Dst;
  N.Slot = CountVar;
  N.A = std::move(Count);
  N.Arity = SrcArity;
  N.Arity2 = DstArity;
  return S;
}

Stmt ir::hashDistinct(const std::string &Src, Expr Count, int64_t Arity,
                      const std::string &Dst, const std::string &CountVar) {
  CONVGEN_ASSERT(Count != nullptr, "hashDistinct requires a tuple count");
  CONVGEN_ASSERT(Arity >= 1, "hashDistinct requires a positive arity");
  CONVGEN_ASSERT(!CountVar.empty(), "hashDistinct requires a result name");
  Stmt S = makeStmt(StmtKind::HashDistinct);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Src;
  N.Buffer2 = Dst;
  N.Slot = CountVar;
  N.A = std::move(Count);
  N.Arity = Arity;
  return S;
}

Stmt ir::phaseMark(int64_t Phase, const std::string &Label) {
  Stmt S = makeStmt(StmtKind::PhaseMark);
  StmtNode &N = const_cast<StmtNode &>(*S);
  N.Name = Label;
  N.Phase = Phase;
  return S;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static const char *binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Rem:
    return "%";
  case BinOp::BitAnd:
    return "&";
  case BinOp::BitOr:
    return "|";
  case BinOp::BitXor:
    return "^";
  case BinOp::Shl:
    return "<<";
  case BinOp::Shr:
    return ">>";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::LAnd:
    return "&&";
  case BinOp::LOr:
    return "||";
  case BinOp::Min:
  case BinOp::Max:
    return nullptr; // Printed as function calls.
  }
  convgen_unreachable("unknown binary op");
}

std::string ir::printExpr(const Expr &E) {
  CONVGEN_ASSERT(E != nullptr, "cannot print a null expression");
  switch (E->Kind) {
  case ExprKind::IntImm:
    return std::to_string(E->IntVal);
  case ExprKind::FloatImm:
    return strfmt("%g", E->FloatVal);
  case ExprKind::BoolImm:
    return E->IntVal ? "1" : "0";
  case ExprKind::Var:
    return E->Name;
  case ExprKind::Load:
    return E->Name + "[" + printExpr(E->A) + "]";
  case ExprKind::Binary: {
    if (E->BOp == BinOp::Min || E->BOp == BinOp::Max) {
      const char *Fn = E->BOp == BinOp::Min ? "cvg_min" : "cvg_max";
      return std::string(Fn) + "(" + printExpr(E->A) + ", " + printExpr(E->B) +
             ")";
    }
    std::string A = printExpr(E->A);
    std::string B = printExpr(E->B);
    auto needsParens = [](const Expr &Sub) {
      return Sub->Kind == ExprKind::Binary || Sub->Kind == ExprKind::Select ||
             Sub->Kind == ExprKind::Unary;
    };
    if (needsParens(E->A))
      A = "(" + A + ")";
    if (needsParens(E->B))
      B = "(" + B + ")";
    return A + " " + binOpSpelling(E->BOp) + " " + B;
  }
  case ExprKind::Unary: {
    std::string A = printExpr(E->A);
    if (E->A->Kind == ExprKind::Binary || E->A->Kind == ExprKind::Select)
      A = "(" + A + ")";
    return (E->UOp == UnOp::Neg ? "-" : "!") + A;
  }
  case ExprKind::Select:
    return "(" + printExpr(E->A) + " ? " + printExpr(E->B) + " : " +
           printExpr(E->C) + ")";
  case ExprKind::NumParts:
    // The emitted C prelude defines cvg_nparts() as the OpenMP max thread
    // count (1 without OpenMP); the interpreter evaluates it to 1.
    return "cvg_nparts()";
  case ExprKind::LowerBound: {
    // The C prelude defines cvg_lower_bound (and the packed-key variant);
    // the key tuple is passed as a C99 compound literal so the call stays
    // a plain expression. The same spelling doubles as the readable view.
    std::vector<std::string> Keys;
    Keys.reserve(E->Args.size());
    for (const Expr &K : E->Args)
      Keys.push_back(printExpr(K));
    if (!E->PackWidths.empty()) {
      std::vector<std::string> Widths;
      Widths.reserve(E->PackWidths.size());
      for (int64_t W : E->PackWidths)
        Widths.push_back(std::to_string(W));
      return "cvg_lower_bound_packed(" + E->Name + ", " + printExpr(E->A) +
             ", " + std::to_string(E->Args.size()) + ", (const int64_t[]){" +
             join(Widths, ",") + "}, (const int64_t[]){" + join(Keys, ", ") +
             "})";
    }
    return "cvg_lower_bound(" + E->Name + ", " + printExpr(E->A) + ", " +
           std::to_string(E->Args.size()) + ", (const int64_t[]){" +
           join(Keys, ", ") + "})";
  }
  }
  convgen_unreachable("unknown expression kind");
}

static const char *cElemType(ScalarKind Kind) {
  switch (Kind) {
  case ScalarKind::Int:
    return "int32_t";
  case ScalarKind::Float:
    return "double";
  case ScalarKind::Bool:
    return "uint8_t";
  }
  convgen_unreachable("unknown scalar kind");
}

/// Emits the C lowering of a Scan: a two-pass blocked prefix sum that
/// parallelizes under OpenMP and reduces to the canonical serial loop when
/// there is a single partition (no OpenMP, short buffers). Deterministic
/// for any partition count — int32 addition is associative mod 2^32 — so
/// the result is bit-identical to the interpreter's serial scan. All
/// locals live in their own braces, so nested scans cannot collide.
static void printScanC(const Stmt &S, const std::string &Pad,
                       std::string &Out) {
  bool Incl = S->Scan == ScanKind::Inclusive;
  bool IsMax = S->Reduce == ReduceOp::Max;
  const std::string &X = S->Name;
  std::string Body =
      IsMax ? "cvg_acc = cvg_max(cvg_acc, " + X + "[cvg_k]); " + X +
                  "[cvg_k] = cvg_acc;"
      : Incl ? "cvg_acc += " + X + "[cvg_k]; " + X + "[cvg_k] = cvg_acc;"
             : "int32_t cvg_v = " + X + "[cvg_k]; " + X +
                   "[cvg_k] = cvg_acc; cvg_acc += cvg_v;";
  std::string Accumulate =
      IsMax ? "cvg_acc = cvg_max(cvg_acc, " + X + "[cvg_k]);"
            : "cvg_acc += " + X + "[cvg_k];";
  std::string Carry =
      IsMax ? "cvg_sums[cvg_b] = cvg_carry; "
              "cvg_carry = cvg_max(cvg_carry, cvg_t);"
            : "cvg_sums[cvg_b] = cvg_carry; cvg_carry += cvg_t;";
  Out += Pad + "{ // " + (Incl ? "inclusive" : "exclusive") +
         (IsMax ? " max scan of " : " scan of ") + X + "[0:" +
         printExpr(S->A) + "]\n";
  std::string In = Pad + "  ";
  Out += In + "int64_t cvg_n = " + printExpr(S->A) + ";\n";
  Out += In + "int64_t cvg_p = cvg_nparts();\n";
  Out += In + "if (cvg_p > cvg_n) cvg_p = cvg_n;\n";
  Out += In + "if (cvg_p > 1) {\n";
  Out += In + "  int32_t* cvg_sums = (int32_t*)malloc(cvg_p * "
              "sizeof(int32_t));\n";
  Out += In + "  #pragma omp parallel for\n";
  Out += In + "  for (int64_t cvg_b = 0; cvg_b < cvg_p; cvg_b++) {\n";
  Out += In + "    int32_t cvg_acc = 0;\n";
  Out += In + "    for (int64_t cvg_k = cvg_n * cvg_b / cvg_p; "
              "cvg_k < cvg_n * (cvg_b + 1) / cvg_p; cvg_k++)\n";
  Out += In + "      " + Accumulate + "\n";
  Out += In + "    cvg_sums[cvg_b] = cvg_acc;\n";
  Out += In + "  }\n";
  Out += In + "  int32_t cvg_carry = 0;\n";
  Out += In + "  for (int64_t cvg_b = 0; cvg_b < cvg_p; cvg_b++) {\n";
  Out += In + "    int32_t cvg_t = cvg_sums[cvg_b]; " + Carry + "\n";
  Out += In + "  }\n";
  Out += In + "  #pragma omp parallel for\n";
  Out += In + "  for (int64_t cvg_b = 0; cvg_b < cvg_p; cvg_b++) {\n";
  Out += In + "    int32_t cvg_acc = cvg_sums[cvg_b];\n";
  Out += In + "    for (int64_t cvg_k = cvg_n * cvg_b / cvg_p; "
              "cvg_k < cvg_n * (cvg_b + 1) / cvg_p; cvg_k++) {\n";
  Out += In + "      " + Body + "\n";
  Out += In + "    }\n";
  Out += In + "  }\n";
  Out += In + "  free(cvg_sums);\n";
  Out += In + "} else {\n";
  Out += In + "  int32_t cvg_acc = 0;\n";
  Out += In + "  for (int64_t cvg_k = 0; cvg_k < cvg_n; cvg_k++) {\n";
  Out += In + "    " + Body + "\n";
  Out += In + "  }\n";
  Out += In + "}\n";
  Out += Pad + "}\n";
}

static void printStmtInto(const Stmt &S, int Indent, std::string &Out,
                          bool CMode) {
  CONVGEN_ASSERT(S != nullptr, "cannot print a null statement");
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  switch (S->Kind) {
  case StmtKind::Block:
    for (const Stmt &Sub : S->Stmts)
      printStmtInto(Sub, Indent, Out, CMode);
    return;
  case StmtKind::Decl: {
    const char *Ty =
        S->Type == ScalarKind::Float ? "double" : "int64_t";
    Out += Pad + Ty + " " + S->Name + " = " + printExpr(S->A) + ";\n";
    return;
  }
  case StmtKind::Assign:
    Out += Pad + S->Name + " = " + printExpr(S->A) + ";\n";
    return;
  case StmtKind::Store: {
    std::string Lhs = S->Name + "[" + printExpr(S->A) + "]";
    switch (S->Reduce) {
    case ReduceOp::None:
      Out += Pad + Lhs + " = " + printExpr(S->B) + ";\n";
      return;
    case ReduceOp::Add:
      Out += Pad + Lhs + " += " + printExpr(S->B) + ";\n";
      return;
    case ReduceOp::Or:
      Out += Pad + Lhs + " |= " + printExpr(S->B) + ";\n";
      return;
    case ReduceOp::Max:
      Out += Pad + Lhs + " = cvg_max(" + Lhs + ", " + printExpr(S->B) + ");\n";
      return;
    case ReduceOp::Min:
      Out += Pad + Lhs + " = cvg_min(" + Lhs + ", " + printExpr(S->B) + ");\n";
      return;
    }
    convgen_unreachable("unknown reduce op");
  }
  case StmtKind::For:
    // Parallel loops carry an OpenMP annotation. Compilers ignore the
    // pragma without -fopenmp, so the emitted C stays valid serial code;
    // reduction clauses give each thread a private histogram copy that the
    // runtime merges exactly (integer ops only).
    if (S->Parallel) {
      Out += Pad + "#pragma omp parallel for";
      if (!S->Privates.empty())
        Out += " private(" + join(S->Privates, ", ") + ")";
      for (const ParReduction &R : S->Reductions) {
        const char *Op = R.Op == ReduceOp::Add   ? "+"
                         : R.Op == ReduceOp::Or  ? "|"
                         : R.Op == ReduceOp::Max ? "max"
                                                 : "min";
        Out += std::string(" reduction(") + Op + ":" + R.Buffer + "[0:" +
               printExpr(R.Length) + "])";
      }
      Out += "\n";
    }
    Out += Pad + "for (int64_t " + S->Name + " = " + printExpr(S->A) + "; " +
           S->Name + " < " + printExpr(S->B) + "; " + S->Name + "++) {\n";
    printStmtInto(S->Body, Indent + 1, Out, CMode);
    Out += Pad + "}\n";
    return;
  case StmtKind::While:
    Out += Pad + "while (" + printExpr(S->A) + ") {\n";
    printStmtInto(S->Body, Indent + 1, Out, CMode);
    Out += Pad + "}\n";
    return;
  case StmtKind::If:
    Out += Pad + "if (" + printExpr(S->A) + ") {\n";
    printStmtInto(S->Body, Indent + 1, Out, CMode);
    if (S->Else) {
      Out += Pad + "} else {\n";
      printStmtInto(S->Else, Indent + 1, Out, CMode);
    }
    Out += Pad + "}\n";
    return;
  case StmtKind::Alloc: {
    const char *Ty = cElemType(S->Type);
    std::string Fn = S->ZeroInit ? "calloc" : "malloc";
    std::string Size = printExpr(S->A);
    if (S->ZeroInit)
      Out += Pad + Ty + "* " + S->Name + " = (" + Ty + "*)calloc(" + Size +
             ", sizeof(" + Ty + "));\n";
    else
      Out += Pad + Ty + "* " + S->Name + " = (" + Ty + "*)malloc((" + Size +
             ") * sizeof(" + Ty + "));\n";
    return;
  }
  case StmtKind::Free:
    Out += Pad + "free(" + S->Name + ");\n";
    return;
  case StmtKind::Comment:
    Out += Pad + "// " + S->Name + "\n";
    return;
  case StmtKind::YieldBuffer: {
    SlotRef Ref = parseSlotName(S->Slot);
    std::string Len = printExpr(S->A);
    switch (Ref.Role) {
    case SlotRef::RoleKind::Pos:
    case SlotRef::RoleKind::Crd:
    case SlotRef::RoleKind::Perm: {
      const char *Field = Ref.Role == SlotRef::RoleKind::Pos   ? "pos"
                          : Ref.Role == SlotRef::RoleKind::Crd ? "crd"
                                                               : "perm";
      Out += Pad + strfmt("B->%s[%d] = %s;\n", Field, Ref.Level,
                          S->Name.c_str());
      Out += Pad + strfmt("B->%s_len[%d] = ", Field, Ref.Level) + Len + ";\n";
      return;
    }
    case SlotRef::RoleKind::Vals:
      Out += Pad + "B->vals = " + S->Name + ";\n";
      Out += Pad + "B->vals_len = " + Len + ";\n";
      return;
    default:
      Out += Pad + "/* yield " + S->Slot + " = " + S->Name + " (length " +
             Len + ") */\n";
      return;
    }
  }
  case StmtKind::YieldScalar: {
    SlotRef Ref = parseSlotName(S->Slot);
    if (Ref.Role == SlotRef::RoleKind::Param) {
      Out += Pad + strfmt("B->params[%d] = ", Ref.Level) + printExpr(S->A) +
             ";\n";
      return;
    }
    Out += Pad + "/* yield " + S->Slot + " = " + printExpr(S->A) + " */\n";
    return;
  }
  case StmtKind::Scan:
    if (CMode) {
      printScanC(S, Pad, Out);
    } else {
      // Figure 6 view: a compact pseudo-op keeps the routine readable.
      const char *Op = S->Reduce == ReduceOp::Max
                           ? "inclusive_max_scan("
                           : (S->Scan == ScanKind::Inclusive
                                  ? "inclusive_scan("
                                  : "exclusive_scan(");
      Out += Pad + Op + S->Name + ", " + printExpr(S->A) + ");\n";
    }
    return;
  case StmtKind::SortTuples:
    if (!S->PackWidths.empty()) {
      // Packed lowering: the per-component widths travel as a compound
      // literal (like cvg_lower_bound keys); the readable view shows them
      // as a bits= annotation.
      std::string Widths;
      for (int64_t W : S->PackWidths) {
        if (!Widths.empty())
          Widths += ",";
        Widths += std::to_string(W);
      }
      // A non-empty Slot is the fused form: dedup the sorted packed keys
      // and declare the unique count (the dedup argument toggles the
      // compaction; the return value is n when it is off). A non-empty
      // Buffer2 additionally scatters per-slot ranks into that buffer.
      if (CMode) {
        std::string Decl =
            S->Slot.empty() ? "" : strfmt("int64_t %s = ", S->Slot.c_str());
        Out += Pad + strfmt("%scvg_radix_sort_packed(%s, %s, %lld, "
                            "(const int64_t[]){%s}, %d, %s);\n",
                            Decl.c_str(), S->Name.c_str(),
                            printExpr(S->A).c_str(),
                            static_cast<long long>(S->Arity), Widths.c_str(),
                            S->Slot.empty() ? 0 : 1,
                            S->Buffer2.empty() ? "NULL" : S->Buffer2.c_str());
      } else if (S->Slot.empty()) {
        Out += Pad + strfmt("sort_tuples_packed(%s, %s, %lld, bits=[%s]);\n",
                            S->Name.c_str(), printExpr(S->A).c_str(),
                            static_cast<long long>(S->Arity), Widths.c_str());
      } else {
        std::string Rank =
            S->Buffer2.empty() ? "" : strfmt(", rank=%s", S->Buffer2.c_str());
        Out += Pad + strfmt("int64_t %s = sort_unique_tuples_packed(%s, %s, "
                            "%lld, bits=[%s]%s);\n",
                            S->Slot.c_str(), S->Name.c_str(),
                            printExpr(S->A).c_str(),
                            static_cast<long long>(S->Arity), Widths.c_str(),
                            Rank.c_str());
      }
      return;
    }
    if (CMode) {
      Out += Pad + strfmt("cvg_sort_tuples(%s, %s, %lld);\n", S->Name.c_str(),
                          printExpr(S->A).c_str(),
                          static_cast<long long>(S->Arity));
    } else {
      // Figure 6 view: a compact pseudo-op keeps the routine readable.
      Out += Pad + strfmt("sort_tuples(%s, %s, %lld);\n", S->Name.c_str(),
                          printExpr(S->A).c_str(),
                          static_cast<long long>(S->Arity));
    }
    return;
  case StmtKind::UniqueTuples:
    if (CMode) {
      Out += Pad + strfmt("int64_t %s = cvg_unique_tuples(%s, %s, %lld);\n",
                          S->Slot.c_str(), S->Name.c_str(),
                          printExpr(S->A).c_str(),
                          static_cast<long long>(S->Arity));
    } else {
      Out += Pad + strfmt("int64_t %s = unique_tuples(%s, %s, %lld);\n",
                          S->Slot.c_str(), S->Name.c_str(),
                          printExpr(S->A).c_str(),
                          static_cast<long long>(S->Arity));
    }
    return;
  case StmtKind::UniquePrefix:
    Out += Pad + strfmt("int64_t %s = %s(%s, %s, %lld, %s, %lld);\n",
                        S->Slot.c_str(),
                        CMode ? "cvg_unique_prefix" : "unique_prefix",
                        S->Name.c_str(), printExpr(S->A).c_str(),
                        static_cast<long long>(S->Arity),
                        S->Buffer2.c_str(),
                        static_cast<long long>(S->Arity2));
    return;
  case StmtKind::HashDistinct:
    Out += Pad + strfmt("int64_t %s = %s(%s, %s, %lld, %s);\n",
                        S->Slot.c_str(),
                        CMode ? "cvg_hash_distinct" : "hash_distinct",
                        S->Name.c_str(), printExpr(S->A).c_str(),
                        static_cast<long long>(S->Arity),
                        S->Buffer2.c_str());
    return;
  case StmtKind::PhaseMark:
    if (!CMode) {
      Out += Pad + "// [phase] " + S->Name + "\n";
      return;
    }
    // Accumulate wall-clock seconds since the previous mark into the
    // per-routine phase array (exported as <fn>_phase_seconds). Index -1
    // only (re)starts the clock.
    if (S->Phase < 0) {
      Out += Pad + "cvg_phase_t0 = cvg_now();\n";
    } else {
      Out += Pad + strfmt("{ double cvg_t = cvg_now(); "
                          "cvg_phase_secs[%lld] += cvg_t - cvg_phase_t0; "
                          "cvg_phase_t0 = cvg_t; } // %s",
                          static_cast<long long>(S->Phase),
                          S->Name.c_str()) +
             "\n";
    }
    return;
  }
  convgen_unreachable("unknown statement kind");
}

SlotRef ir::parseSlotName(const std::string &Name) {
  SlotRef Ref;
  if (Name.size() >= 4 && Name.compare(0, 3, "dim") == 0) {
    Ref.Role = SlotRef::RoleKind::Dim;
    Ref.Level = std::atoi(Name.c_str() + 3);
    return Ref;
  }
  if (Name.size() < 2 || (Name[0] != 'A' && Name[0] != 'B'))
    return Ref;
  Ref.Tensor = Name[0];
  if (Name.compare(1, std::string::npos, "_vals") == 0) {
    Ref.Role = SlotRef::RoleKind::Vals;
    return Ref;
  }
  size_t Underscore = Name.find('_');
  if (Underscore == std::string::npos || Underscore == 1)
    return Ref;
  for (size_t I = 1; I < Underscore; ++I)
    if (!std::isdigit(static_cast<unsigned char>(Name[I])))
      return Ref;
  Ref.Level = std::atoi(Name.substr(1, Underscore - 1).c_str());
  std::string Suffix = Name.substr(Underscore + 1);
  if (Suffix == "pos")
    Ref.Role = SlotRef::RoleKind::Pos;
  else if (Suffix == "crd")
    Ref.Role = SlotRef::RoleKind::Crd;
  else if (Suffix == "perm")
    Ref.Role = SlotRef::RoleKind::Perm;
  else if (Suffix == "param")
    Ref.Role = SlotRef::RoleKind::Param;
  return Ref;
}

std::string ir::printStmt(const Stmt &S, int Indent) {
  std::string Out;
  printStmtInto(S, Indent, Out, /*CMode=*/false);
  return Out;
}

std::string ir::printStmtAsC(const Stmt &S, int Indent) {
  std::string Out;
  printStmtInto(S, Indent, Out, /*CMode=*/true);
  return Out;
}

std::string ir::printFunction(const Function &F) {
  std::string Out = "// " + F.Name + "(";
  std::vector<std::string> Names;
  Names.reserve(F.Params.size());
  for (const Param &P : F.Params)
    Names.push_back(P.Name);
  Out += join(Names, ", ") + ")\n";
  printStmtInto(F.Body, 0, Out, /*CMode=*/false);
  return Out;
}
