//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The imperative intermediate representation that conversion routines are
/// generated into. The IR is deliberately small: scalar expressions over
/// int64/double/bool, loads from named buffers, and structured statements
/// (loops, conditionals, allocation, stores with optional reduction). One IR
/// serves three backends: a C-like pretty printer (for Figure 6-style
/// inspection and golden tests), a reference interpreter (used by the test
/// suite), and a C99 emitter compiled at runtime by the JIT (used by the
/// benchmarks, mirroring how taco executes generated kernels).
///
/// Buffer elements are int32 (pos/crd/perm arrays, matching the paper's C
/// code and the baselines), double (values), or bool (bit sets from id()
/// attribute queries). All scalar arithmetic is int64 so positions into
/// padded formats such as ELL cannot overflow.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_IR_IR_H
#define CONVGEN_IR_IR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace convgen {
namespace ir {

/// The scalar value kinds the IR computes with.
enum class ScalarKind : uint8_t { Int, Float, Bool };

/// Returns a human-readable name ("int", "float", "bool").
const char *scalarKindName(ScalarKind Kind);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntImm,
  FloatImm,
  BoolImm,
  Var,
  Load,       ///< BufferName[A]
  Binary,     ///< A op B
  Unary,      ///< op A
  Select,     ///< A ? B : C
  NumParts,   ///< Partition count for blocked parallel passes (see numParts).
  LowerBound, ///< Rank of a key tuple in a sorted tuple buffer (lowerBound).
};

enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div, ///< C semantics: truncates toward zero.
  Rem, ///< C semantics: sign follows the dividend.
  Min,
  Max,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LAnd,
  LOr,
};

enum class UnOp : uint8_t { Neg, LNot };

struct ExprNode;
/// Expressions are immutable and freely shared.
using Expr = std::shared_ptr<const ExprNode>;

struct ExprNode {
  ExprKind Kind;
  ScalarKind Type = ScalarKind::Int;
  int64_t IntVal = 0;
  double FloatVal = 0;
  std::string Name; ///< Variable name, or buffer name for Load/LowerBound.
  Expr A, B, C;
  /// LowerBound only: the key tuple's component expressions (the arity of
  /// the searched tuples is Args.size()).
  std::vector<Expr> Args;
  /// LowerBound only; when non-empty, the searched tuples pack into a
  /// single uint64_t key (component d occupies PackWidths[d] bits,
  /// component 0 most significant) and the C lowering compares packed
  /// keys instead of looping cvg_tuple_cmp — same lexicographic result,
  /// set via lowerBoundPacked. Empty means the generic tuple compare.
  std::vector<int64_t> PackWidths;
  BinOp BOp = BinOp::Add;
  UnOp UOp = UnOp::Neg;
};

// Factory functions. Binary factories constant-fold integer immediates and
// apply simple identities (x+0, x*1, x*0) so generated code stays readable.
Expr intImm(int64_t Value);
Expr floatImm(double Value);
Expr boolImm(bool Value);
Expr var(const std::string &Name, ScalarKind Kind = ScalarKind::Int);
Expr load(const std::string &Buffer, Expr Index,
          ScalarKind Elem = ScalarKind::Int);
Expr binop(BinOp Op, Expr A, Expr B);
Expr add(Expr A, Expr B);
Expr sub(Expr A, Expr B);
Expr mul(Expr A, Expr B);
Expr div(Expr A, Expr B);
Expr rem(Expr A, Expr B);
Expr min(Expr A, Expr B);
Expr max(Expr A, Expr B);
Expr eq(Expr A, Expr B);
Expr ne(Expr A, Expr B);
Expr lt(Expr A, Expr B);
Expr le(Expr A, Expr B);
Expr gt(Expr A, Expr B);
Expr ge(Expr A, Expr B);
Expr logicalAnd(Expr A, Expr B);
Expr logicalOr(Expr A, Expr B);
Expr neg(Expr A);
Expr logicalNot(Expr A);
Expr select(Expr Cond, Expr IfTrue, Expr IfFalse);

/// The number of partitions blocked parallel passes split their iteration
/// space into. Generated code must be deterministic for *any* value >= 1:
/// the C emitter lowers it to the OpenMP max thread count (1 without
/// OpenMP), the interpreter always evaluates it to 1, and the test suite
/// checks both produce bit-identical results. Evaluate it once into a
/// variable when several passes must agree on the partitioning.
Expr numParts();

/// Returns true (and sets \p Value) if \p E is an integer immediate.
bool isIntConst(const Expr &E, int64_t *Value = nullptr);

/// Rank of the key tuple \p Keys among the sorted tuples of \p Buffer: the
/// index of the first tuple lexicographically >= the key, with tuples
/// stored contiguously (tuple t occupies Buffer[t*R .. t*R+R-1] for arity
/// R = Keys.size()) and \p Count giving the tuple count. On a sorted,
/// deduplicated buffer that contains the key this is exactly the key's
/// rank among the stored tuples — how sorted-ranking assembly computes
/// positions in O(nnz) memory where a dense rank array would need the
/// product of the grouping dimensions' extents. The expression is pure:
/// the interpreter runs a binary search, the C emitter lowers to the
/// prelude helper cvg_lower_bound.
Expr lowerBound(const std::string &Buffer, Expr Count, std::vector<Expr> Keys);

/// lowerBound with the packed-key compare: \p PackWidths gives the bit
/// width of each tuple component (one per key, each in [0, 32], total at
/// most 64 — the same planner-proven fit as sortTuplesPacked), so the C
/// lowering packs the key tuple and each probed tuple into single
/// uint64_t values and compares those. Unsigned packed order equals
/// lexicographic tuple order whenever every stored coordinate fits its
/// width, so the result is identical to lowerBound — the interpreter
/// evaluates both with the same tuple-wise binary search.
Expr lowerBoundPacked(const std::string &Buffer, Expr Count,
                      std::vector<Expr> Keys,
                      std::vector<int64_t> PackWidths);

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  Decl,   ///< type Name = A;
  Assign, ///< Name = A;
  Store,  ///< Buffer[A] = B;  (or reduction, see ReduceOp)
  For,    ///< for (Name = A; Name < B; Name++) Body
  While,  ///< while (A) Body
  If,     ///< if (A) Body else Else
  Alloc,  ///< Buffer = malloc/calloc(A elements)
  Free,
  Comment,
  YieldBuffer, ///< Publish Buffer (length A) to output slot Slot.
  YieldScalar, ///< Publish scalar A to output slot Slot.
  Scan,      ///< In-place prefix sum/max over Buffer[0:A] (see scan()).
  PhaseMark, ///< Phase-boundary timing probe (see phaseMark()).
  SortTuples,   ///< Lexicographic in-place tuple sort (see sortTuples()).
  UniqueTuples, ///< Adjacent-duplicate compaction (see uniqueTuples()).
  UniquePrefix, ///< Prefix compaction of a sorted list (see uniquePrefix()).
  HashDistinct, ///< Hash-table tuple dedup (see hashDistinct()).
};

/// Reduction applied by a Store: Buffer[I] op= V.
enum class ReduceOp : uint8_t { None, Add, Or, Max, Min };

/// Whether a Scan writes sums including the current element (inclusive) or
/// only the elements before it (exclusive).
enum class ScanKind : uint8_t { Inclusive, Exclusive };

/// A buffer a parallel For reduces into: each thread accumulates into a
/// private zero/identity-initialized copy of Buffer[0:Length] which the
/// runtime merges when the loop ends (the per-thread-histogram strategy for
/// attribute-query counting sweeps). Only exact integer reductions are ever
/// emitted, so the merged result is bit-identical to serial execution.
struct ParReduction {
  std::string Buffer;
  ReduceOp Op = ReduceOp::Add;
  Expr Length; ///< Element count of the reduced section.
  ScalarKind Elem = ScalarKind::Int;
};

struct StmtNode;
using Stmt = std::shared_ptr<const StmtNode>;

struct StmtNode {
  StmtKind Kind;
  std::vector<Stmt> Stmts; ///< Block members.
  std::string Name;        ///< Variable or buffer name; comment text.
  std::string Slot;        ///< Yield output slot; count-variable name for
                           ///< UniqueTuples/UniquePrefix/HashDistinct.
  ScalarKind Type = ScalarKind::Int;
  Expr A, B;
  Stmt Body, Else;
  ReduceOp Reduce = ReduceOp::None; ///< Store reduction; Scan combiner.
  ScanKind Scan = ScanKind::Inclusive; ///< Scan only.
  int64_t Phase = 0;                   ///< PhaseMark only: phase index.
  int64_t Arity = 1; ///< Tuple ops only: ints per (source) tuple.
  /// SortTuples only: when non-empty, one bit width per tuple component
  /// (size() == Arity) selecting the packed-key radix lowering — each tuple
  /// packs into a single uint64_t key (component d occupies PackWidths[d]
  /// bits, component 0 most significant, so key order == lexicographic
  /// tuple order). The factory asserts the widths sum to <= 64. Empty
  /// selects the comparison merge sort.
  std::vector<int64_t> PackWidths;
  /// UniquePrefix/HashDistinct only: the destination buffer.
  std::string Buffer2;
  /// UniquePrefix only: ints per destination tuple (the prefix length).
  int64_t Arity2 = 0;
  bool ZeroInit = false;
  /// For only: iterations are independent (or reduction-combined) and may
  /// run concurrently. Lowered by the C emitter to `#pragma omp parallel
  /// for`; the interpreter ignores the flag and stays the bit-exact serial
  /// reference. Annotated loops must be deterministic under any iteration
  /// partition: disjoint effects apart from Reductions, with Privates
  /// re-initialized before use in every iteration.
  bool Parallel = false;
  /// For only: scalars declared outside the loop that each thread must
  /// privatize (reused scalar counters, reset at the top of the body).
  std::vector<std::string> Privates;
  /// For only: buffers combined across iterations via exact reductions.
  std::vector<ParReduction> Reductions;
};

Stmt block(std::vector<Stmt> Stmts);
Stmt decl(const std::string &Name, Expr Init,
          ScalarKind Kind = ScalarKind::Int);
Stmt assign(const std::string &Name, Expr Value);
Stmt store(const std::string &Buffer, Expr Index, Expr Value,
           ReduceOp Reduce = ReduceOp::None);
Stmt forRange(const std::string &Var, Expr Lo, Expr Hi, Stmt Body);
Stmt whileLoop(Expr Cond, Stmt Body);
Stmt ifThen(Expr Cond, Stmt Then, Stmt Else = nullptr);
Stmt alloc(const std::string &Buffer, ScalarKind Elem, Expr Size,
           bool ZeroInit);
Stmt freeBuffer(const std::string &Buffer);
Stmt comment(const std::string &Text);
Stmt yieldBuffer(const std::string &Slot, const std::string &Buffer,
                 Expr Length);
Stmt yieldScalar(const std::string &Slot, Expr Value);

/// In-place integer prefix combine of Buffer[0:Length]: after execution,
/// element k holds the combination of elements 0..k (inclusive) or 0..k-1
/// (exclusive) of the original contents, in int32 arithmetic. \p Op picks
/// the combiner: Add (the default prefix sum) or Max (prefix maximum; only
/// the inclusive kind, with identity 0, so buffers must be non-negative —
/// how sorted-ranking assembly closes the gaps of empty parents in its pos
/// arrays without a serial forward fill). The interpreter runs the obvious
/// serial loop (the bit-exact oracle); the C emitter lowers to a two-pass
/// blocked scan that parallelizes under OpenMP and degenerates to the
/// serial loop at one partition. Both agree bit-for-bit for any partition
/// count because int32 addition (mod 2^32) and max are associative. This
/// is how generated routines express the pos-array accumulation of
/// unsequenced edge insertion (§6.1) without baking in a serial loop.
Stmt scan(const std::string &Buffer, Expr Length,
          ScanKind Kind = ScanKind::Inclusive, ReduceOp Op = ReduceOp::Add);

/// Sorts the \p Count tuples of \p Buffer in place into lexicographic
/// order. Tuples are \p Arity consecutive int32 elements each (row-major,
/// tuple t at Buffer[t*Arity]). The interpreter is the serial oracle; the C
/// emitter lowers to cvg_sort_tuples, a bottom-up merge sort whose per-width
/// merge passes parallelize under OpenMP. The output is the fully sorted
/// sequence — a pure function of the input multiset — so any thread count
/// (and the interpreter) produce bit-identical buffers. This is the
/// O(nnz)-memory replacement for dense rank arrays in sorted-ranking
/// assembly (huge-dimension hyper-sparse tensors).
Stmt sortTuples(const std::string &Buffer, Expr Count, int64_t Arity);

/// sortTuples with the packed-key radix lowering: \p PackWidths gives the
/// bit width of each tuple component (one per component, summing to at most
/// 64), and every stored coordinate must satisfy 0 <= c < 2^width. The C
/// emitter lowers to cvg_radix_sort_packed — pack each tuple into one
/// uint64_t key (component 0 most significant), LSD radix sort with 8-bit
/// digits (per-partition histograms + a serial digit-offset scan), unpack.
/// The sorted sequence is the same pure function of the input multiset as
/// the merge lowering (packed-key order == lexicographic tuple order), so
/// the serial interpreter stays the bit-exact oracle by construction and
/// any thread count produces identical buffers. Callers fall back to
/// sortTuples when extents are unknown or the widths do not fit.
/// sortTuplesPacked fused with the adjacent-duplicate compaction of
/// uniqueTuples: sorts, drops duplicate tuples, and declares \p CountVar
/// (int64) with the unique count — exactly the result of sortTuplesPacked
/// followed by uniqueTuples, but the C lowering deduplicates the packed
/// uint64 keys BEFORE unpacking (one compare per adjacent pair instead of
/// a tuple-compare compaction pass over the unpacked buffer). Equal
/// packed keys and equal tuples are the same predicate under the width
/// contract, so the fusion is semantics-preserving by construction.
///
/// A non-empty \p RankBuffer names a pre-allocated int32 buffer of
/// \p Count slots that the sort additionally fills with each slot's rank:
/// RankBuffer[i] = index of the (pre-sort) tuple at slot i in the deduped
/// sorted list — exactly what lowerBound over the result returns for that
/// tuple, precomputed for every slot. The C lowering carries the slot
/// index as a payload through the radix scatters (no searches); consumers
/// can then resolve a stored nonzero's position with one load.
Stmt sortUniqueTuplesPacked(const std::string &Buffer, Expr Count,
                            int64_t Arity, std::vector<int64_t> PackWidths,
                            const std::string &CountVar,
                            const std::string &RankBuffer = "");

Stmt sortTuplesPacked(const std::string &Buffer, Expr Count, int64_t Arity,
                      std::vector<int64_t> PackWidths);

/// Compacts adjacent duplicate tuples of the (sorted) \p Buffer in place
/// and declares the int64 variable \p CountVar holding the number of
/// distinct tuples kept. Serial in both backends (a single O(n) pass).
Stmt uniqueTuples(const std::string &Buffer, Expr Count, int64_t Arity,
                  const std::string &CountVar);

/// Compacts the distinct length-\p DstArity prefixes of the \p Count sorted
/// tuples in \p Src (arity \p SrcArity >= DstArity) into \p Dst, in order,
/// and declares the int64 variable \p CountVar holding how many were kept.
/// Because Src is sorted, the distinct prefixes come out sorted too — this
/// is how shared-sort assembly derives every ancestor level's unique list
/// from the one full-arity sorted buffer instead of re-sorting per level.
/// The interpreter runs the serial compaction (the bit-exact oracle); the C
/// emitter lowers to cvg_unique_prefix, a blocked two-pass compaction
/// (count first-of-prefix flags per partition, offset, copy) that
/// parallelizes under OpenMP. The output is a pure function of the input,
/// so any partition count produces bit-identical buffers.
Stmt uniquePrefix(const std::string &Src, Expr Count, int64_t SrcArity,
                  const std::string &Dst, int64_t DstArity,
                  const std::string &CountVar);

/// Gathers the distinct tuples of \p Src (first-seen order, \p Count tuples
/// of \p Arity ints) into \p Dst via an open-addressing hash table sized
/// O(Count), and declares the int64 variable \p CountVar with the distinct
/// count. Dst must have capacity for Count tuples. The output order is the
/// first-seen order in both backends (serial insertion), so interpreter and
/// C agree exactly; callers that need a canonical order sort Dst afterwards
/// — the hashed-presence ranking variant runs hashDistinct + sortTuples,
/// paying O(distinct log distinct) comparison work instead of
/// O(nnz log nnz) when duplicates dominate.
Stmt hashDistinct(const std::string &Src, Expr Count, int64_t Arity,
                  const std::string &Dst, const std::string &CountVar);

/// Phase-boundary probe for the per-phase timing breakdown: the C emitter
/// accumulates wall-clock seconds since the previous mark into slot
/// \p Phase of a per-routine array exported as `<fn>_phase_seconds`; the
/// interpreter and the pretty printer treat it as a comment. Index -1
/// starts the clock without recording (function prologue).
Stmt phaseMark(int64_t Phase, const std::string &Label);

/// Returns a copy of the For statement \p Loop annotated as parallel (see
/// StmtNode::Parallel). Callers are responsible for legality: iterations
/// must be independent apart from \p Reductions and \p Privates.
Stmt markLoopParallel(const Stmt &Loop, std::vector<std::string> Privates = {},
                      std::vector<ParReduction> Reductions = {});

/// Convenience accumulator for building statement sequences.
class BlockBuilder {
public:
  void add(Stmt S) {
    if (S)
      Stmts.push_back(std::move(S));
  }
  void addAll(const std::vector<Stmt> &More) {
    for (const Stmt &S : More)
      add(S);
  }
  bool empty() const { return Stmts.empty(); }
  /// Consumes the accumulated statements as a single block.
  Stmt build() { return block(std::move(Stmts)); }

private:
  std::vector<Stmt> Stmts;
};

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

/// A function parameter: either a scalar (dimension, size parameter) or a
/// buffer (pos/crd/perm/vals array). The conversion code generator uses the
/// naming convention "A<k>_pos", "A<k>_crd", "A<k>_perm", "A_vals",
/// "dim<d>", and "A<k>_param" for inputs; outputs are published through
/// YieldBuffer / YieldScalar slots named "B<k>_pos", "B<k>_crd",
/// "B<k>_perm", "B_vals", and "B<k>_param".
struct Param {
  std::string Name;
  ScalarKind Elem = ScalarKind::Int;
  bool IsBuffer = false;
};

struct Function {
  std::string Name;
  std::vector<Param> Params;
  Stmt Body;
};

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

/// A decomposed conventional parameter or yield-slot name. The conversion
/// code generator names inputs/outputs "A1_pos", "B_vals", "dim0",
/// "B2_param", etc.; this helper recovers the structure so the C emitter and
/// the runtime can marshal tensors without hard-coding each name.
struct SlotRef {
  enum class RoleKind { Dim, Param, Pos, Crd, Perm, Vals, Unknown };
  RoleKind Role = RoleKind::Unknown;
  char Tensor = '\0'; ///< 'A' (input) or 'B' (output); '\0' for dims.
  int Level = 0;      ///< Level index for pos/crd/perm/param; dim index.
};

/// Parses a conventional name; Role is Unknown if it does not conform.
SlotRef parseSlotName(const std::string &Name);

/// Renders \p E as C-like text.
std::string printExpr(const Expr &E);

/// Renders \p S as C-like text with \p Indent leading spaces per level.
std::string printStmt(const Stmt &S, int Indent = 0);

/// Renders \p S as compilable C99 (the JIT backend's lowering): identical
/// to printStmt except Scan lowers to its two-pass blocked parallel
/// implementation and PhaseMark to timing probes, instead of the compact
/// pseudo-ops of the readable view. Requires the helpers the C emitter's
/// prelude defines (cvg_nparts, cvg_now, cvg_phase_secs).
std::string printStmtAsC(const Stmt &S, int Indent = 0);

/// Renders the whole function (signature comment plus body) as C-like text.
/// This is the "Figure 6 view" of a generated conversion routine.
std::string printFunction(const Function &F);

} // namespace ir
} // namespace convgen

#endif // CONVGEN_IR_IR_H
