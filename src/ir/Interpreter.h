//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the conversion IR. It executes generated
/// routines directly, with hard bounds checking on every buffer access, and
/// is the oracle-facing backend used throughout the test suite. Benchmarks
/// use the JIT backend instead, which compiles the same IR to native code.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_IR_INTERPRETER_H
#define CONVGEN_IR_INTERPRETER_H

#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace convgen {
namespace ir {

/// A typed runtime buffer. Int buffers hold int32 elements (widened to
/// int64 on load), Float buffers hold doubles, Bool buffers hold bytes.
struct RuntimeBuffer {
  ScalarKind Elem = ScalarKind::Int;
  std::vector<int32_t> Ints;
  std::vector<double> Floats;
  std::vector<uint8_t> Bools;

  int64_t size() const;
};

/// What an executed conversion produced: output buffers and scalars keyed by
/// their yield slot names ("B1_pos", "B_vals", "B1_param", ...).
struct RunResult {
  std::map<std::string, RuntimeBuffer> Buffers;
  std::map<std::string, int64_t> Scalars;
};

/// Executes IR functions over bound inputs.
///
/// Typical use:
/// \code
///   Interpreter Interp;
///   Interp.bindScalar("dim0", M);
///   Interp.bindIntBuffer("A1_pos", Pos);
///   ...
///   RunResult R = Interp.run(F);
/// \endcode
class Interpreter {
public:
  void bindScalar(const std::string &Name, int64_t Value);
  void bindIntBuffer(const std::string &Name, std::vector<int32_t> Data);
  void bindFloatBuffer(const std::string &Name, std::vector<double> Data);

  /// Runs \p F against the bound inputs. Aborts with a diagnostic on any
  /// out-of-bounds access, use of an undefined variable, or type mismatch;
  /// the interpreter never silently mis-executes.
  RunResult run(const Function &F);

private:
  std::map<std::string, int64_t> BoundScalars;
  std::map<std::string, RuntimeBuffer> BoundBuffers;
};

} // namespace ir
} // namespace convgen

#endif // CONVGEN_IR_INTERPRETER_H
