//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/CEmitter.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::ir;

std::string ir::cTensorStructDecl() {
  return strfmt(R"(typedef struct {
  int64_t dims[%d];
  int64_t params[%d];
  int32_t *pos[%d];
  int64_t pos_len[%d];
  int32_t *crd[%d];
  int64_t crd_len[%d];
  int32_t *perm[%d];
  int64_t perm_len[%d];
  double *vals;
  int64_t vals_len;
} cvg_tensor_t;
)",
                kMaxLevels + 1, kMaxLevels + 1, kMaxLevels + 1, kMaxLevels + 1,
                kMaxLevels + 1, kMaxLevels + 1, kMaxLevels + 1,
                kMaxLevels + 1);
}

/// Whether the function body uses any sorted-ranking construct, so the
/// prelude helpers (and their OpenMP pragma) are emitted only into
/// routines that need them — keeping every other routine's emitted C (and
/// its exact parallel-loop census, which tests pin) unchanged.
static bool exprUsesSortedRanking(const Expr &E) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::LowerBound)
    return true;
  for (const Expr &Arg : E->Args)
    if (exprUsesSortedRanking(Arg))
      return true;
  return exprUsesSortedRanking(E->A) || exprUsesSortedRanking(E->B) ||
         exprUsesSortedRanking(E->C);
}

static bool stmtUsesSortedRanking(const Stmt &S) {
  if (!S)
    return false;
  if (S->Kind == StmtKind::SortTuples || S->Kind == StmtKind::UniqueTuples ||
      S->Kind == StmtKind::UniquePrefix || S->Kind == StmtKind::HashDistinct)
    return true;
  if (exprUsesSortedRanking(S->A) || exprUsesSortedRanking(S->B))
    return true;
  for (const Stmt &Sub : S->Stmts)
    if (stmtUsesSortedRanking(Sub))
      return true;
  return stmtUsesSortedRanking(S->Body) || stmtUsesSortedRanking(S->Else);
}

/// Whether the body contains a packed SortTuples, so cvg_radix_sort_packed
/// is emitted only into routines that call it — merge-sorting routines'
/// emitted C stays byte-identical to what the goldens pin.
static bool stmtUsesPackedSort(const Stmt &S) {
  if (!S)
    return false;
  if (S->Kind == StmtKind::SortTuples && !S->PackWidths.empty())
    return true;
  for (const Stmt &Sub : S->Stmts)
    if (stmtUsesPackedSort(Sub))
      return true;
  return stmtUsesPackedSort(S->Body) || stmtUsesPackedSort(S->Else);
}

/// Whether the body contains an unpacked SortTuples — only those call the
/// merge-sort helpers, so packed-only routines skip them.
static bool stmtUsesUnpackedSort(const Stmt &S) {
  if (!S)
    return false;
  if (S->Kind == StmtKind::SortTuples && S->PackWidths.empty())
    return true;
  for (const Stmt &Sub : S->Stmts)
    if (stmtUsesUnpackedSort(Sub))
      return true;
  return stmtUsesUnpackedSort(S->Body) || stmtUsesUnpackedSort(S->Else);
}

/// Whether the body contains a packed LowerBound, so cvg_lower_bound_packed
/// is emitted only into routines that call it.
static bool exprUsesPackedSearch(const Expr &E) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::LowerBound && !E->PackWidths.empty())
    return true;
  for (const Expr &Arg : E->Args)
    if (exprUsesPackedSearch(Arg))
      return true;
  return exprUsesPackedSearch(E->A) || exprUsesPackedSearch(E->B) ||
         exprUsesPackedSearch(E->C);
}

static bool stmtUsesPackedSearch(const Stmt &S) {
  if (!S)
    return false;
  if (exprUsesPackedSearch(S->A) || exprUsesPackedSearch(S->B))
    return true;
  for (const Stmt &Sub : S->Stmts)
    if (stmtUsesPackedSearch(Sub))
      return true;
  return stmtUsesPackedSearch(S->Body) || stmtUsesPackedSearch(S->Else);
}

/// Emits the prologue line that binds one function parameter to a local
/// variable named exactly as the IR references it.
static std::string bindParam(const Param &P) {
  SlotRef Ref = parseSlotName(P.Name);
  switch (Ref.Role) {
  case SlotRef::RoleKind::Dim:
    return strfmt("  int64_t %s = A->dims[%d];\n", P.Name.c_str(), Ref.Level);
  case SlotRef::RoleKind::Param:
    return strfmt("  int64_t %s = A->params[%d];\n", P.Name.c_str(),
                  Ref.Level);
  case SlotRef::RoleKind::Pos:
    return strfmt("  const int32_t *restrict %s = A->pos[%d];\n",
                  P.Name.c_str(), Ref.Level);
  case SlotRef::RoleKind::Crd:
    return strfmt("  const int32_t *restrict %s = A->crd[%d];\n",
                  P.Name.c_str(), Ref.Level);
  case SlotRef::RoleKind::Perm:
    return strfmt("  const int32_t *restrict %s = A->perm[%d];\n",
                  P.Name.c_str(), Ref.Level);
  case SlotRef::RoleKind::Vals:
    return strfmt("  const double *restrict %s = A->vals;\n", P.Name.c_str());
  case SlotRef::RoleKind::Unknown:
    break;
  }
  fatalError(("C emitter: parameter '" + P.Name +
              "' does not follow the tensor naming convention")
                 .c_str());
}

std::string ir::emitC(const Function &F) {
  std::string Out;
  Out += "// Generated by convgen. Do not edit.\n";
  // clock_gettime needs POSIX visibility under strict -std=c11.
  Out += "#define _POSIX_C_SOURCE 199309L\n";
  Out += "#include <stdint.h>\n#include <stdlib.h>\n#include <string.h>\n"
         "#include <time.h>\n\n";
  Out += "#define cvg_min(a, b)                                              "
         "\\\n  ({ __typeof__(a) cvg_a = (a); __typeof__(b) cvg_b = (b);     "
         "\\\n     cvg_a < cvg_b ? cvg_a : cvg_b; })\n";
  Out += "#define cvg_max(a, b)                                              "
         "\\\n  ({ __typeof__(a) cvg_a = (a); __typeof__(b) cvg_b = (b);     "
         "\\\n     cvg_a > cvg_b ? cvg_a : cvg_b; })\n\n";
  // Partition count for blocked parallel passes (scans, cursor insertion).
  // Serial builds see one partition, so the same source stays valid C and
  // bit-identical: generated code is deterministic for any value >= 1.
  Out += "#ifdef _OPENMP\n"
         "#include <omp.h>\n"
         "#define cvg_nparts() ((int64_t)omp_get_max_threads())\n"
         "#else\n"
         "#define cvg_nparts() ((int64_t)1)\n"
         "#endif\n\n";
  // Sorted-ranking helpers: a lexicographic tuple comparator, a bottom-up
  // merge sort whose per-width merge passes parallelize under OpenMP (the
  // result is the fully sorted sequence, so any thread count — and the
  // interpreter's serial oracle — produce bit-identical buffers), a serial
  // adjacent-duplicate compaction, and a binary search returning the rank
  // of a key tuple. Tuples are `arity` consecutive int32 elements.
  bool UsesSorted = stmtUsesSortedRanking(F.Body);
  if (UsesSorted)
    Out += R"(static int cvg_tuple_cmp(const int32_t *a, const int32_t *b,
                         int64_t arity) {
  for (int64_t i = 0; i < arity; i++) {
    if (a[i] != b[i])
      return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}
)";
  // The comparison merge sort: only unpacked SortTuples call it, so a
  // routine whose every sort is packed carries no dead merge machinery.
  if (stmtUsesUnpackedSort(F.Body))
    Out += R"(static void cvg_merge_tuples(int32_t *dst, const int32_t *src, int64_t lo,
                             int64_t mid, int64_t hi, int64_t arity) {
  int64_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (cvg_tuple_cmp(src + i * arity, src + j * arity, arity) <= 0)
      memcpy(dst + (k++) * arity, src + (i++) * arity,
             (size_t)arity * sizeof(int32_t));
    else
      memcpy(dst + (k++) * arity, src + (j++) * arity,
             (size_t)arity * sizeof(int32_t));
  }
  if (i < mid)
    memcpy(dst + k * arity, src + i * arity,
           (size_t)((mid - i) * arity) * sizeof(int32_t));
  if (j < hi)
    memcpy(dst + (k + (mid - i)) * arity, src + j * arity,
           (size_t)((hi - j) * arity) * sizeof(int32_t));
}
static void cvg_sort_tuples(int32_t *buf, int64_t n, int64_t arity) {
  if (n <= 1)
    return;
  int32_t *tmp = (int32_t *)malloc((size_t)(n * arity) * sizeof(int32_t));
  int32_t *src = buf, *dst = tmp;
  for (int64_t width = 1; width < n; width *= 2) {
    #pragma omp parallel for
    for (int64_t lo = 0; lo < n; lo += 2 * width) {
      int64_t mid = cvg_min(lo + width, n);
      int64_t hi = cvg_min(lo + 2 * width, n);
      cvg_merge_tuples(dst, src, lo, mid, hi, arity);
    }
    int32_t *swap = src;
    src = dst;
    dst = swap;
  }
  if (src != buf)
    memcpy(buf, src, (size_t)(n * arity) * sizeof(int32_t));
  free(tmp);
}
)";
  if (UsesSorted)
    Out += R"(static int64_t cvg_unique_tuples(int32_t *buf, int64_t n, int64_t arity) {
  int64_t u = 0;
  for (int64_t i = 0; i < n; i++) {
    if (u > 0 &&
        cvg_tuple_cmp(buf + i * arity, buf + (u - 1) * arity, arity) == 0)
      continue;
    if (u != i)
      memcpy(buf + u * arity, buf + i * arity,
             (size_t)arity * sizeof(int32_t));
    u++;
  }
  return u;
}
static int64_t cvg_lower_bound(const int32_t *buf, int64_t n, int64_t arity,
                               const int64_t *key) {
  int64_t lo = 0, hi = n;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    const int32_t *t = buf + mid * arity;
    int cmp = 0;
    for (int64_t i = 0; i < arity && cmp == 0; i++)
      cmp = (int64_t)t[i] < key[i] ? -1 : ((int64_t)t[i] > key[i] ? 1 : 0);
    if (cmp < 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}
/* Compacts the distinct leading dst_arity components of the n sorted
 * src tuples (arity src_arity) into dst, preserving order. Blocked
 * two-pass compaction: each partition counts its first-of-prefix tuples
 * (the i-1 comparison reads across partition boundaries, src is const),
 * a serial pass turns counts into write offsets, and a second parallel
 * pass copies. The output never depends on the partition count, so any
 * thread count (and the interpreter's serial oracle) agree exactly. */
static int64_t cvg_unique_prefix(const int32_t *src, int64_t n,
                                 int64_t src_arity, int32_t *dst,
                                 int64_t dst_arity) {
  int64_t p = cvg_nparts();
  if (p > n)
    p = n;
  if (p <= 1) {
    int64_t u = 0;
    for (int64_t i = 0; i < n; i++) {
      if (i > 0 && cvg_tuple_cmp(src + i * src_arity,
                                 src + (i - 1) * src_arity, dst_arity) == 0)
        continue;
      memcpy(dst + (u++) * dst_arity, src + i * src_arity,
             (size_t)dst_arity * sizeof(int32_t));
    }
    return u;
  }
  int64_t *offs = (int64_t *)malloc((size_t)(p + 1) * sizeof(int64_t));
  #pragma omp parallel for
  for (int64_t b = 0; b < p; b++) {
    int64_t firsts = 0;
    for (int64_t i = n * b / p; i < n * (b + 1) / p; i++)
      if (i == 0 || cvg_tuple_cmp(src + i * src_arity,
                                  src + (i - 1) * src_arity, dst_arity) != 0)
        firsts++;
    offs[b + 1] = firsts;
  }
  offs[0] = 0;
  for (int64_t b = 0; b < p; b++)
    offs[b + 1] += offs[b];
  #pragma omp parallel for
  for (int64_t b = 0; b < p; b++) {
    int64_t u = offs[b];
    for (int64_t i = n * b / p; i < n * (b + 1) / p; i++)
      if (i == 0 || cvg_tuple_cmp(src + i * src_arity,
                                  src + (i - 1) * src_arity, dst_arity) != 0)
        memcpy(dst + (u++) * dst_arity, src + i * src_arity,
               (size_t)dst_arity * sizeof(int32_t));
  }
  int64_t total = offs[p];
  free(offs);
  return total;
}
/* Gathers the distinct tuples of src into dst (first-seen order) through
 * an open-addressing table of 2n power-of-two slots holding dst indices.
 * O(n) memory, serial insertion: the win over sorting is algorithmic
 * (distinct log distinct instead of n log n comparison work), not
 * thread-level. */
static int64_t cvg_hash_distinct(const int32_t *src, int64_t n,
                                 int64_t arity, int32_t *dst) {
  if (n == 0)
    return 0;
  int64_t cap = 1;
  while (cap < 2 * n)
    cap <<= 1;
  int64_t *table = (int64_t *)malloc((size_t)cap * sizeof(int64_t));
  for (int64_t i = 0; i < cap; i++)
    table[i] = -1;
  int64_t u = 0;
  for (int64_t i = 0; i < n; i++) {
    const int32_t *t = src + i * arity;
    uint64_t h = 1469598103934665603ull;
    for (int64_t k = 0; k < arity; k++) {
      h ^= (uint32_t)t[k];
      h *= 1099511628211ull;
    }
    for (int64_t slot = (int64_t)(h & (uint64_t)(cap - 1));;
         slot = (slot + 1) & (cap - 1)) {
      int64_t o = table[slot];
      if (o < 0) {
        table[slot] = u;
        memcpy(dst + (u++) * arity, t, (size_t)arity * sizeof(int32_t));
        break;
      }
      if (cvg_tuple_cmp(dst + o * arity, t, arity) == 0)
        break;
    }
  }
  free(table);
  return u;
}

)";
  // Packed-key LSD radix sort: each arity-component tuple packs into one
  // uint64_t key (component 0 most significant, widths chosen by the
  // planner so the total fits 64 bits and every coordinate fits its
  // component), so unsigned key order equals lexicographic tuple order and
  // the tuples reconstruct exactly from the sorted keys. Digit counts are
  // a pure function of the key multiset, not of the arrangement, so one
  // upfront sweep prices every 11-bit-digit pass (6 passes cover 64 bits;
  // 2048 scatter buckets still fit the cache): passes whose digit is
  // constant
  // are skipped outright, and the single-partition scatter reuses the
  // counts as its stable bases with no per-pass counting sweep (the
  // dominant layout on one CPU). Multi-partition passes rebuild
  // per-partition histograms over a fixed blocking of [0, n) — those DO
  // depend on the arrangement — and turn them into scatter bases with one
  // serial (digit, partition) offset scan. Either way every pass is a
  // stable scatter, and a stable LSD sort's output is uniquely determined
  // by the input multiset, so any partition count (and the interpreter's
  // serial oracle) produce bit-identical buffers by construction. The
  // rank_out payload rides the same stable scatters, so each slot's
  // position after the final pass — and therefore its dedup rank — is the
  // unique stable-sort position: rank_out is deterministic too, equal to
  // a binary search of the slot's tuple in the deduped list.
  if (stmtUsesPackedSort(F.Body))
    Out += R"(static int64_t cvg_radix_sort_packed(int32_t *restrict buf, int64_t n,
                                     int64_t arity,
                                     const int64_t *restrict widths,
                                     int dedup,
                                     int32_t *restrict rank_out) {
  if (n <= 0)
    return 0;
  if (n == 1) {
    if (rank_out)
      rank_out[0] = 0;
    return 1;
  }
  int64_t total_bits = 0;
  for (int64_t d = 0; d < arity; d++)
    total_bits += widths[d];
  uint64_t *keys = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
  uint64_t *aux = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
  /* rank_out: the sort carries each tuple's source slot as a payload so
     that, once sorted and deduped, it can scatter rank_out[slot] = the
     tuple's index in the unique list — the same value a post-sort binary
     search for that tuple would return, precomputed for every slot. */
  int32_t *idx = NULL, *iaux = NULL;
  if (rank_out) {
    idx = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    iaux = (int32_t *)malloc((size_t)n * sizeof(int32_t));
  }
  #pragma omp parallel for
  for (int64_t i = 0; i < n; i++) {
    uint64_t k = 0;
    for (int64_t d = 0; d < arity; d++)
      k = (k << widths[d]) | (uint64_t)(uint32_t)buf[i * arity + d];
    keys[i] = k;
    if (idx)
      idx[i] = (int32_t)i;
  }
  int64_t p = cvg_nparts();
  if (p > n)
    p = n;
  if (p < 1)
    p = 1;
  enum { CVG_RADIX_BITS = 11, CVG_RADIX_SIZE = 1 << CVG_RADIX_BITS };
  int64_t passes =
      (total_bits + CVG_RADIX_BITS - 1) / CVG_RADIX_BITS;
  int64_t *ptot = (int64_t *)malloc(
      (size_t)(p * passes * CVG_RADIX_SIZE) * sizeof(int64_t));
  #pragma omp parallel for
  for (int64_t b = 0; b < p; b++) {
    int64_t *h = ptot + b * passes * CVG_RADIX_SIZE;
    memset(h, 0, (size_t)(passes * CVG_RADIX_SIZE) * sizeof(int64_t));
    for (int64_t i = n * b / p; i < n * (b + 1) / p; i++)
      for (int64_t pass = 0; pass < passes; pass++)
        h[pass * CVG_RADIX_SIZE +
          ((keys[i] >> (CVG_RADIX_BITS * pass)) & (CVG_RADIX_SIZE - 1))]++;
  }
  int64_t *totals = (int64_t *)calloc((size_t)(passes * CVG_RADIX_SIZE),
                                      sizeof(int64_t));
  for (int64_t b = 0; b < p; b++)
    for (int64_t j = 0; j < passes * CVG_RADIX_SIZE; j++)
      totals[j] += ptot[b * passes * CVG_RADIX_SIZE + j];
  free(ptot);
  int64_t *hist =
      (int64_t *)malloc((size_t)(p * CVG_RADIX_SIZE) * sizeof(int64_t));
  for (int64_t pass = 0; pass < passes; pass++) {
    int64_t shift = CVG_RADIX_BITS * pass;
    const int64_t *tot = totals + pass * CVG_RADIX_SIZE;
    int64_t constant = 0;
    for (int64_t digit = 0; digit < CVG_RADIX_SIZE; digit++)
      if (tot[digit] == n)
        constant = 1;
    if (constant)
      continue;
    if (p == 1) {
      int64_t base = 0;
      for (int64_t digit = 0; digit < CVG_RADIX_SIZE; digit++) {
        hist[digit] = base;
        base += tot[digit];
      }
      for (int64_t i = 0; i < n; i++) {
        int64_t dst = hist[(keys[i] >> shift) & (CVG_RADIX_SIZE - 1)]++;
        aux[dst] = keys[i];
        if (idx)
          iaux[dst] = idx[i];
      }
    } else {
      #pragma omp parallel for
      for (int64_t b = 0; b < p; b++) {
        int64_t *h = hist + b * CVG_RADIX_SIZE;
        memset(h, 0, CVG_RADIX_SIZE * sizeof(int64_t));
        for (int64_t i = n * b / p; i < n * (b + 1) / p; i++)
          h[(keys[i] >> shift) & (CVG_RADIX_SIZE - 1)]++;
      }
      int64_t base = 0;
      for (int64_t digit = 0; digit < CVG_RADIX_SIZE; digit++)
        for (int64_t b = 0; b < p; b++) {
          int64_t c = hist[b * CVG_RADIX_SIZE + digit];
          hist[b * CVG_RADIX_SIZE + digit] = base;
          base += c;
        }
      #pragma omp parallel for
      for (int64_t b = 0; b < p; b++) {
        int64_t *h = hist + b * CVG_RADIX_SIZE;
        for (int64_t i = n * b / p; i < n * (b + 1) / p; i++) {
          int64_t dst = h[(keys[i] >> shift) & (CVG_RADIX_SIZE - 1)]++;
          aux[dst] = keys[i];
          if (idx)
            iaux[dst] = idx[i];
        }
      }
    }
    uint64_t *swap = keys;
    keys = aux;
    aux = swap;
    if (idx) {
      int32_t *iswap = idx;
      idx = iaux;
      iaux = iswap;
    }
  }
  free(hist);
  free(totals);
  free(aux);
  /* Fused dedup: equal packed keys are equal tuples, so compacting the
     sorted keys before unpacking replaces the tuple-compare compaction
     pass a separate cvg_unique_tuples would run over 3x the bytes. With a
     payload the same sweep scatters each slot's rank. */
  if (rank_out) {
    int64_t u = 0;
    for (int64_t i = 0; i < n; i++) {
      if (u == 0 || keys[i] != keys[u - 1]) {
        keys[u] = keys[i];
        u++;
      }
      rank_out[idx[i]] = (int32_t)(u - 1);
    }
    n = u;
    free(idx);
    free(iaux);
  } else if (dedup) {
    int64_t u = 1;
    for (int64_t i = 1; i < n; i++)
      if (keys[i] != keys[u - 1])
        keys[u++] = keys[i];
    n = u;
  }
  #pragma omp parallel for
  for (int64_t i = 0; i < n; i++) {
    uint64_t k = keys[i];
    for (int64_t d = arity - 1; d >= 0; d--) {
      buf[i * arity + d] =
          (int32_t)(k & ((widths[d] >= 64 ? 0 : (1ull << widths[d])) - 1));
      k >>= widths[d];
    }
  }
  free(keys);
  return n;
}

)";
  // Packed-key binary search: when the planner proved the searched tuples
  // pack into 64 bits, each probe step packs the probed tuple and compares
  // one uint64_t against the pre-packed key — the branch-free equivalent of
  // the cvg_tuple_cmp loop, and the insertion phase's per-nonzero get_pos
  // cost drops accordingly. Unsigned packed order equals lexicographic
  // order whenever every stored coordinate fits its width (the same
  // contract as cvg_radix_sort_packed), so the result index is identical
  // to cvg_lower_bound's.
  if (stmtUsesPackedSearch(F.Body))
    Out += R"(static int64_t cvg_lower_bound_packed(const int32_t *restrict buf,
                                       int64_t n, int64_t arity,
                                       const int64_t *restrict widths,
                                       const int64_t *restrict key) {
  uint64_t kk = 0;
  for (int64_t d = 0; d < arity; d++)
    kk = (kk << widths[d]) | (uint64_t)(uint32_t)(int32_t)key[d];
  int64_t lo = 0, hi = n;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    const int32_t *t = buf + mid * arity;
    uint64_t mk = 0;
    for (int64_t d = 0; d < arity; d++)
      mk = (mk << widths[d]) | (uint64_t)(uint32_t)t[d];
    if (mk < kk)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

)";
  // Per-phase wall-clock accumulators; <fn>_phase_seconds exposes them to
  // the benchmark harness (slots: analysis, edge insertion, insertion,
  // finalize). Thread-local so concurrent runs of a PlanCache-shared
  // routine never race: each caller thread accumulates (and reads back)
  // its own clock.
  Out += "static double cvg_now(void) {\n"
         "  struct timespec cvg_ts;\n"
         "  clock_gettime(CLOCK_MONOTONIC, &cvg_ts);\n"
         "  return (double)cvg_ts.tv_sec + 1e-9 * (double)cvg_ts.tv_nsec;\n"
         "}\n"
         "static _Thread_local double cvg_phase_secs[8];\n"
         "static _Thread_local double cvg_phase_t0;\n\n";
  Out += cTensorStructDecl();
  Out += "\ndouble *" + F.Name + "_phase_seconds(void) {\n"
         "  return cvg_phase_secs;\n}\n";
  Out += "\nvoid " + F.Name +
         "(const cvg_tensor_t *restrict A, cvg_tensor_t *restrict B) {\n";
  for (const Param &P : F.Params)
    Out += bindParam(P);
  Out += "\n";
  Out += printStmtAsC(F.Body, 1);
  Out += "}\n";
  return Out;
}
