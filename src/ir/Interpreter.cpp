//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

using namespace convgen;
using namespace convgen::ir;

int64_t RuntimeBuffer::size() const {
  switch (Elem) {
  case ScalarKind::Int:
    return static_cast<int64_t>(Ints.size());
  case ScalarKind::Float:
    return static_cast<int64_t>(Floats.size());
  case ScalarKind::Bool:
    return static_cast<int64_t>(Bools.size());
  }
  convgen_unreachable("unknown buffer kind");
}

namespace {

/// A scalar runtime value.
struct Value {
  ScalarKind Kind = ScalarKind::Int;
  int64_t I = 0;
  double F = 0;

  static Value makeInt(int64_t V) { return {ScalarKind::Int, V, 0}; }
  static Value makeBool(bool V) { return {ScalarKind::Bool, V ? 1 : 0, 0}; }
  static Value makeFloat(double V) { return {ScalarKind::Float, 0, V}; }

  bool isFloat() const { return Kind == ScalarKind::Float; }
  double asFloat() const { return isFloat() ? F : static_cast<double>(I); }
  int64_t asInt() const {
    return isFloat() ? static_cast<int64_t>(F) : I;
  }
  bool asBool() const { return isFloat() ? F != 0 : I != 0; }
};

/// The mutable execution state of one run: scalar environment, live buffers,
/// and the collected yields.
class ExecState {
public:
  ExecState(std::map<std::string, int64_t> Scalars,
            std::map<std::string, RuntimeBuffer> Buffers)
      : Buffers(std::move(Buffers)) {
    for (const auto &[Name, V] : Scalars)
      Env[Name] = Value::makeInt(V);
  }

  [[noreturn]] void fail(const std::string &Msg) {
    fatalError(("interpreter: " + Msg).c_str());
  }

  Value eval(const Expr &E);
  void exec(const Stmt &S);

  RunResult takeResult() { return std::move(Result); }

private:
  RuntimeBuffer &buffer(const std::string &Name) {
    auto It = Buffers.find(Name);
    if (It == Buffers.end())
      fail("use of unknown buffer '" + Name + "'");
    return It->second;
  }

  Value loadElem(const std::string &Name, int64_t Index) {
    RuntimeBuffer &Buf = buffer(Name);
    if (Index < 0 || Index >= Buf.size())
      fail(strfmt("load out of bounds: %s[%lld], size %lld", Name.c_str(),
                  static_cast<long long>(Index),
                  static_cast<long long>(Buf.size())));
    switch (Buf.Elem) {
    case ScalarKind::Int:
      return Value::makeInt(Buf.Ints[static_cast<size_t>(Index)]);
    case ScalarKind::Float:
      return Value::makeFloat(Buf.Floats[static_cast<size_t>(Index)]);
    case ScalarKind::Bool:
      return Value::makeBool(Buf.Bools[static_cast<size_t>(Index)] != 0);
    }
    convgen_unreachable("unknown buffer kind");
  }

  void storeElem(const std::string &Name, int64_t Index, Value V,
                 ReduceOp Reduce);

  std::unordered_map<std::string, Value> Env;
  std::map<std::string, RuntimeBuffer> Buffers;
  RunResult Result;
};

Value ExecState::eval(const Expr &E) {
  CONVGEN_ASSERT(E != nullptr, "evaluating null expression");
  switch (E->Kind) {
  case ExprKind::IntImm:
    return Value::makeInt(E->IntVal);
  case ExprKind::FloatImm:
    return Value::makeFloat(E->FloatVal);
  case ExprKind::BoolImm:
    return Value::makeBool(E->IntVal != 0);
  case ExprKind::Var: {
    auto It = Env.find(E->Name);
    if (It == Env.end())
      fail("use of undefined variable '" + E->Name + "'");
    return It->second;
  }
  case ExprKind::Load:
    return loadElem(E->Name, eval(E->A).asInt());
  case ExprKind::NumParts:
    // The reference semantics partition nothing: one block, serial order.
    // Generated code must produce identical results for any value >= 1,
    // which the thread-invariance tests check against the JIT.
    return Value::makeInt(1);
  case ExprKind::LowerBound: {
    RuntimeBuffer &Buf = buffer(E->Name);
    if (Buf.Elem != ScalarKind::Int)
      fail("lower_bound over a non-integer buffer '" + E->Name + "'");
    int64_t N = eval(E->A).asInt();
    int64_t R = static_cast<int64_t>(E->Args.size());
    if (N < 0 || N * R > Buf.size())
      fail(strfmt("lower_bound range %lld tuples of arity %lld out of "
                  "bounds for buffer %s (size %lld)",
                  static_cast<long long>(N), static_cast<long long>(R),
                  E->Name.c_str(), static_cast<long long>(Buf.size())));
    std::vector<int64_t> Key;
    Key.reserve(E->Args.size());
    for (const Expr &K : E->Args)
      Key.push_back(eval(K).asInt());
    int64_t Lo = 0, Hi = N;
    while (Lo < Hi) {
      int64_t Mid = Lo + (Hi - Lo) / 2;
      int Cmp = 0;
      for (int64_t I = 0; I < R && Cmp == 0; ++I) {
        int64_t T = Buf.Ints[static_cast<size_t>(Mid * R + I)];
        Cmp = T < Key[static_cast<size_t>(I)]
                  ? -1
                  : (T > Key[static_cast<size_t>(I)] ? 1 : 0);
      }
      if (Cmp < 0)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Value::makeInt(Lo);
  }
  case ExprKind::Unary: {
    Value A = eval(E->A);
    if (E->UOp == UnOp::LNot)
      return Value::makeBool(!A.asBool());
    if (A.isFloat())
      return Value::makeFloat(-A.asFloat());
    return Value::makeInt(-A.asInt());
  }
  case ExprKind::Select:
    return eval(E->A).asBool() ? eval(E->B) : eval(E->C);
  case ExprKind::Binary: {
    Value A = eval(E->A);
    Value B = eval(E->B);
    if (A.isFloat() || B.isFloat()) {
      double X = A.asFloat(), Y = B.asFloat();
      switch (E->BOp) {
      case BinOp::Add:
        return Value::makeFloat(X + Y);
      case BinOp::Sub:
        return Value::makeFloat(X - Y);
      case BinOp::Mul:
        return Value::makeFloat(X * Y);
      case BinOp::Div:
        return Value::makeFloat(X / Y);
      case BinOp::Min:
        return Value::makeFloat(X < Y ? X : Y);
      case BinOp::Max:
        return Value::makeFloat(X > Y ? X : Y);
      case BinOp::Eq:
        return Value::makeBool(X == Y);
      case BinOp::Ne:
        return Value::makeBool(X != Y);
      case BinOp::Lt:
        return Value::makeBool(X < Y);
      case BinOp::Le:
        return Value::makeBool(X <= Y);
      case BinOp::Gt:
        return Value::makeBool(X > Y);
      case BinOp::Ge:
        return Value::makeBool(X >= Y);
      default:
        fail("invalid float binary operation");
      }
    }
    int64_t X = A.asInt(), Y = B.asInt();
    switch (E->BOp) {
    case BinOp::Add:
      return Value::makeInt(X + Y);
    case BinOp::Sub:
      return Value::makeInt(X - Y);
    case BinOp::Mul:
      return Value::makeInt(X * Y);
    case BinOp::Div:
      if (Y == 0)
        fail("integer division by zero");
      return Value::makeInt(X / Y);
    case BinOp::Rem:
      if (Y == 0)
        fail("integer remainder by zero");
      return Value::makeInt(X % Y);
    case BinOp::Min:
      return Value::makeInt(X < Y ? X : Y);
    case BinOp::Max:
      return Value::makeInt(X > Y ? X : Y);
    case BinOp::BitAnd:
      return Value::makeInt(X & Y);
    case BinOp::BitOr:
      return Value::makeInt(X | Y);
    case BinOp::BitXor:
      return Value::makeInt(X ^ Y);
    case BinOp::Shl:
      return Value::makeInt(X << Y);
    case BinOp::Shr:
      return Value::makeInt(X >> Y);
    case BinOp::Eq:
      return Value::makeBool(X == Y);
    case BinOp::Ne:
      return Value::makeBool(X != Y);
    case BinOp::Lt:
      return Value::makeBool(X < Y);
    case BinOp::Le:
      return Value::makeBool(X <= Y);
    case BinOp::Gt:
      return Value::makeBool(X > Y);
    case BinOp::Ge:
      return Value::makeBool(X >= Y);
    case BinOp::LAnd:
      return Value::makeBool(X != 0 && Y != 0);
    case BinOp::LOr:
      return Value::makeBool(X != 0 || Y != 0);
    }
    convgen_unreachable("unknown binary op");
  }
  }
  convgen_unreachable("unknown expression kind");
}

void ExecState::storeElem(const std::string &Name, int64_t Index, Value V,
                          ReduceOp Reduce) {
  RuntimeBuffer &Buf = buffer(Name);
  if (Index < 0 || Index >= Buf.size())
    fail(strfmt("store out of bounds: %s[%lld], size %lld", Name.c_str(),
                static_cast<long long>(Index),
                static_cast<long long>(Buf.size())));
  size_t I = static_cast<size_t>(Index);
  switch (Buf.Elem) {
  case ScalarKind::Int: {
    int64_t New = V.asInt();
    int64_t Old = Buf.Ints[I];
    switch (Reduce) {
    case ReduceOp::None:
      break;
    case ReduceOp::Add:
      New = Old + New;
      break;
    case ReduceOp::Or:
      New = Old | New;
      break;
    case ReduceOp::Max:
      New = Old > New ? Old : New;
      break;
    case ReduceOp::Min:
      New = Old < New ? Old : New;
      break;
    }
    Buf.Ints[I] = static_cast<int32_t>(New);
    return;
  }
  case ScalarKind::Float: {
    double New = V.asFloat();
    double Old = Buf.Floats[I];
    switch (Reduce) {
    case ReduceOp::None:
      break;
    case ReduceOp::Add:
      New = Old + New;
      break;
    case ReduceOp::Max:
      New = Old > New ? Old : New;
      break;
    case ReduceOp::Min:
      New = Old < New ? Old : New;
      break;
    case ReduceOp::Or:
      fail("bitwise-or reduction on a float buffer");
    }
    Buf.Floats[I] = New;
    return;
  }
  case ScalarKind::Bool: {
    bool New = V.asBool();
    if (Reduce == ReduceOp::Or)
      New = New || (Buf.Bools[I] != 0);
    else if (Reduce != ReduceOp::None)
      fail("unsupported reduction on a bool buffer");
    Buf.Bools[I] = New ? 1 : 0;
    return;
  }
  }
  convgen_unreachable("unknown buffer kind");
}

void ExecState::exec(const Stmt &S) {
  CONVGEN_ASSERT(S != nullptr, "executing null statement");
  switch (S->Kind) {
  case StmtKind::Block:
    for (const Stmt &Sub : S->Stmts)
      exec(Sub);
    return;
  case StmtKind::Decl:
  case StmtKind::Assign:
    Env[S->Name] = eval(S->A);
    return;
  case StmtKind::Store:
    storeElem(S->Name, eval(S->A).asInt(), eval(S->B), S->Reduce);
    return;
  case StmtKind::For: {
    // Parallel annotations are deliberately ignored: the interpreter runs
    // every loop serially and stays the bit-exact reference the JIT's
    // OpenMP lowering is validated against.
    int64_t Lo = eval(S->A).asInt();
    int64_t Hi = eval(S->B).asInt();
    // The loop variable shadows any outer binding for the loop's duration.
    auto Saved = Env.find(S->Name) != Env.end()
                     ? std::optional<Value>(Env[S->Name])
                     : std::nullopt;
    for (int64_t I = Lo; I < Hi; ++I) {
      Env[S->Name] = Value::makeInt(I);
      exec(S->Body);
    }
    if (Saved)
      Env[S->Name] = *Saved;
    else
      Env.erase(S->Name);
    return;
  }
  case StmtKind::While:
    while (eval(S->A).asBool())
      exec(S->Body);
    return;
  case StmtKind::If:
    if (eval(S->A).asBool())
      exec(S->Body);
    else if (S->Else)
      exec(S->Else);
    return;
  case StmtKind::Alloc: {
    int64_t Size = eval(S->A).asInt();
    if (Size < 0)
      fail("allocation with negative size for '" + S->Name + "'");
    RuntimeBuffer Buf;
    Buf.Elem = S->Type;
    // malloc'd int buffers are filled with a poison pattern so tests catch
    // reads of uninitialized storage that calloc would have hidden.
    switch (S->Type) {
    case ScalarKind::Int:
      Buf.Ints.assign(static_cast<size_t>(Size),
                      S->ZeroInit ? 0 : INT32_MIN / 2);
      break;
    case ScalarKind::Float:
      Buf.Floats.assign(static_cast<size_t>(Size), 0.0);
      break;
    case ScalarKind::Bool:
      Buf.Bools.assign(static_cast<size_t>(Size), 0);
      break;
    }
    Buffers[S->Name] = std::move(Buf);
    return;
  }
  case StmtKind::Free:
    // Keep freed buffers alive if they were yielded; a yield transfers
    // ownership to the result, so Free on a yielded buffer is an error in
    // generated code and is diagnosed here.
    if (Buffers.erase(S->Name) == 0)
      fail("free of unknown buffer '" + S->Name + "'");
    return;
  case StmtKind::Comment:
  case StmtKind::PhaseMark:
    return;
  case StmtKind::Scan: {
    // The serial oracle for the C emitter's blocked parallel scan: a plain
    // in-place prefix sum in int32 arithmetic.
    RuntimeBuffer &Buf = buffer(S->Name);
    if (Buf.Elem != ScalarKind::Int)
      fail("scan over a non-integer buffer '" + S->Name + "'");
    int64_t Len = eval(S->A).asInt();
    if (Len < 0 || Len > Buf.size())
      fail(strfmt("scan length %lld out of range for buffer %s (size %lld)",
                  static_cast<long long>(Len), S->Name.c_str(),
                  static_cast<long long>(Buf.size())));
    int32_t Acc = 0;
    for (int64_t K = 0; K < Len; ++K) {
      int32_t V = Buf.Ints[static_cast<size_t>(K)];
      if (S->Reduce == ReduceOp::Max) {
        Acc = Acc > V ? Acc : V;
        Buf.Ints[static_cast<size_t>(K)] = Acc;
      } else if (S->Scan == ScanKind::Inclusive) {
        Acc = static_cast<int32_t>(Acc + V);
        Buf.Ints[static_cast<size_t>(K)] = Acc;
      } else {
        Buf.Ints[static_cast<size_t>(K)] = Acc;
        Acc = static_cast<int32_t>(Acc + V);
      }
    }
    return;
  }
  case StmtKind::SortTuples: {
    // The serial oracle for the C emitter's parallel merge sort: the fully
    // sorted sequence is a pure function of the input multiset, so both
    // agree bit-for-bit for any thread count.
    RuntimeBuffer &Buf = buffer(S->Name);
    if (Buf.Elem != ScalarKind::Int)
      fail("sort_tuples over a non-integer buffer '" + S->Name + "'");
    int64_t N = eval(S->A).asInt();
    int64_t R = S->Arity;
    if (N < 0 || N * R > Buf.size())
      fail(strfmt("sort_tuples range %lld tuples of arity %lld out of "
                  "bounds for buffer %s (size %lld)",
                  static_cast<long long>(N), static_cast<long long>(R),
                  S->Name.c_str(), static_cast<long long>(Buf.size())));
    std::vector<int64_t> Order(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Order[static_cast<size_t>(I)] = I;
    const std::vector<int32_t> &Ints = Buf.Ints;
    std::sort(Order.begin(), Order.end(), [&](int64_t A, int64_t B) {
      return std::lexicographical_compare(
          Ints.begin() + A * R, Ints.begin() + (A + 1) * R,
          Ints.begin() + B * R, Ints.begin() + (B + 1) * R);
    });
    std::vector<int32_t> Sorted(static_cast<size_t>(N * R));
    for (int64_t I = 0; I < N; ++I)
      std::copy(Ints.begin() + Order[static_cast<size_t>(I)] * R,
                Ints.begin() + (Order[static_cast<size_t>(I)] + 1) * R,
                Sorted.begin() + I * R);
    std::copy(Sorted.begin(), Sorted.end(), Buf.Ints.begin());
    if (!S->Slot.empty() && !S->Buffer2.empty()) {
      // Rank scatter: slot i's rank in the deduped list is the number of
      // distinct tuples at or before its sorted position, minus one.
      // Equal tuples share a rank, so the tie order inside Order is
      // irrelevant — same pure function of the multiset as the C payload.
      RuntimeBuffer &Rank = buffer(S->Buffer2);
      if (Rank.Elem != ScalarKind::Int || Rank.size() < N)
        fail("sort_unique_tuples_packed rank buffer '" + S->Buffer2 +
             "' missing or too small");
      int64_t U = 0;
      for (int64_t I = 0; I < N; ++I) {
        if (I == 0 || !std::equal(Buf.Ints.begin() + I * R,
                                  Buf.Ints.begin() + (I + 1) * R,
                                  Buf.Ints.begin() + (I - 1) * R))
          ++U;
        Rank.Ints[static_cast<size_t>(Order[static_cast<size_t>(I)])] =
            static_cast<int32_t>(U - 1);
      }
    }
    if (!S->Slot.empty()) {
      // Fused form (sortUniqueTuplesPacked): compact adjacent duplicates
      // and bind the unique count — byte-identical to running the
      // UniqueTuples compaction below on the sorted buffer.
      int64_t U = 0;
      for (int64_t I = 0; I < N; ++I) {
        if (U > 0 && std::equal(Buf.Ints.begin() + I * R,
                                Buf.Ints.begin() + (I + 1) * R,
                                Buf.Ints.begin() + (U - 1) * R))
          continue;
        if (U != I)
          std::copy(Buf.Ints.begin() + I * R, Buf.Ints.begin() + (I + 1) * R,
                    Buf.Ints.begin() + U * R);
        ++U;
      }
      Env[S->Slot] = Value::makeInt(U);
    }
    return;
  }
  case StmtKind::UniqueTuples: {
    RuntimeBuffer &Buf = buffer(S->Name);
    if (Buf.Elem != ScalarKind::Int)
      fail("unique_tuples over a non-integer buffer '" + S->Name + "'");
    int64_t N = eval(S->A).asInt();
    int64_t R = S->Arity;
    if (N < 0 || N * R > Buf.size())
      fail(strfmt("unique_tuples range %lld tuples of arity %lld out of "
                  "bounds for buffer %s (size %lld)",
                  static_cast<long long>(N), static_cast<long long>(R),
                  S->Name.c_str(), static_cast<long long>(Buf.size())));
    int64_t U = 0;
    for (int64_t I = 0; I < N; ++I) {
      if (U > 0 &&
          std::equal(Buf.Ints.begin() + I * R, Buf.Ints.begin() + (I + 1) * R,
                     Buf.Ints.begin() + (U - 1) * R))
        continue;
      if (U != I)
        std::copy(Buf.Ints.begin() + I * R, Buf.Ints.begin() + (I + 1) * R,
                  Buf.Ints.begin() + U * R);
      ++U;
    }
    Env[S->Slot] = Value::makeInt(U);
    return;
  }
  case StmtKind::UniquePrefix: {
    // Serial oracle for cvg_unique_prefix: compact the distinct leading
    // DstArity components of the sorted Src tuples into Dst, in order.
    RuntimeBuffer &Src = buffer(S->Name);
    if (Src.Elem != ScalarKind::Int)
      fail("unique_prefix over a non-integer buffer '" + S->Name + "'");
    int64_t N = eval(S->A).asInt();
    int64_t R = S->Arity, Rp = S->Arity2;
    if (N < 0 || N * R > Src.size())
      fail(strfmt("unique_prefix range %lld tuples of arity %lld out of "
                  "bounds for buffer %s (size %lld)",
                  static_cast<long long>(N), static_cast<long long>(R),
                  S->Name.c_str(), static_cast<long long>(Src.size())));
    std::vector<int32_t> Kept;
    for (int64_t I = 0; I < N; ++I) {
      if (I > 0 &&
          std::equal(Src.Ints.begin() + I * R, Src.Ints.begin() + I * R + Rp,
                     Src.Ints.begin() + (I - 1) * R))
        continue;
      Kept.insert(Kept.end(), Src.Ints.begin() + I * R,
                  Src.Ints.begin() + I * R + Rp);
    }
    RuntimeBuffer &Dst = buffer(S->Buffer2);
    if (Dst.Elem != ScalarKind::Int)
      fail("unique_prefix into a non-integer buffer '" + S->Buffer2 + "'");
    if (static_cast<int64_t>(Kept.size()) > Dst.size())
      fail(strfmt("unique_prefix writes %zu ints past buffer %s (size %lld)",
                  Kept.size(), S->Buffer2.c_str(),
                  static_cast<long long>(Dst.size())));
    std::copy(Kept.begin(), Kept.end(), Dst.Ints.begin());
    Env[S->Slot] =
        Value::makeInt(static_cast<int64_t>(Kept.size()) / Rp);
    return;
  }
  case StmtKind::HashDistinct: {
    // First-seen-order dedup; matches the C helper's serial insertion
    // exactly (callers sort afterwards, so only the multiset must agree —
    // but agreeing on the order too keeps intermediate dumps comparable).
    RuntimeBuffer &Src = buffer(S->Name);
    if (Src.Elem != ScalarKind::Int)
      fail("hash_distinct over a non-integer buffer '" + S->Name + "'");
    int64_t N = eval(S->A).asInt();
    int64_t R = S->Arity;
    if (N < 0 || N * R > Src.size())
      fail(strfmt("hash_distinct range %lld tuples of arity %lld out of "
                  "bounds for buffer %s (size %lld)",
                  static_cast<long long>(N), static_cast<long long>(R),
                  S->Name.c_str(), static_cast<long long>(Src.size())));
    RuntimeBuffer &Dst = buffer(S->Buffer2);
    if (Dst.Elem != ScalarKind::Int)
      fail("hash_distinct into a non-integer buffer '" + S->Buffer2 + "'");
    auto TupleHash = [R](const int32_t *T) {
      uint64_t H = 1469598103934665603ull;
      for (int64_t I = 0; I < R; ++I) {
        H ^= static_cast<uint32_t>(T[I]);
        H *= 1099511628211ull;
      }
      return H;
    };
    std::unordered_map<uint64_t, std::vector<int64_t>> Table;
    int64_t U = 0;
    for (int64_t I = 0; I < N; ++I) {
      const int32_t *T = &Src.Ints[static_cast<size_t>(I * R)];
      std::vector<int64_t> &Slots = Table[TupleHash(T)];
      bool Seen = false;
      for (int64_t Prev : Slots)
        Seen = Seen || std::equal(T, T + R, &Dst.Ints[static_cast<size_t>(
                                                Prev * R)]);
      if (Seen)
        continue;
      if ((U + 1) * R > Dst.size())
        fail(strfmt("hash_distinct writes tuple %lld past buffer %s "
                    "(size %lld)",
                    static_cast<long long>(U), S->Buffer2.c_str(),
                    static_cast<long long>(Dst.size())));
      std::copy(T, T + R, Dst.Ints.begin() + U * R);
      Slots.push_back(U);
      ++U;
    }
    Env[S->Slot] = Value::makeInt(U);
    return;
  }
  case StmtKind::YieldBuffer: {
    RuntimeBuffer &Buf = buffer(S->Name);
    int64_t Len = eval(S->A).asInt();
    if (Len < 0 || Len > Buf.size())
      fail(strfmt("yield length %lld out of range for buffer %s (size %lld)",
                  static_cast<long long>(Len), S->Name.c_str(),
                  static_cast<long long>(Buf.size())));
    RuntimeBuffer Out;
    Out.Elem = Buf.Elem;
    switch (Buf.Elem) {
    case ScalarKind::Int:
      Out.Ints.assign(Buf.Ints.begin(), Buf.Ints.begin() + Len);
      break;
    case ScalarKind::Float:
      Out.Floats.assign(Buf.Floats.begin(), Buf.Floats.begin() + Len);
      break;
    case ScalarKind::Bool:
      Out.Bools.assign(Buf.Bools.begin(), Buf.Bools.begin() + Len);
      break;
    }
    Result.Buffers[S->Slot] = std::move(Out);
    return;
  }
  case StmtKind::YieldScalar:
    Result.Scalars[S->Slot] = eval(S->A).asInt();
    return;
  }
  convgen_unreachable("unknown statement kind");
}

} // namespace

void Interpreter::bindScalar(const std::string &Name, int64_t Value) {
  BoundScalars[Name] = Value;
}

void Interpreter::bindIntBuffer(const std::string &Name,
                                std::vector<int32_t> Data) {
  RuntimeBuffer Buf;
  Buf.Elem = ScalarKind::Int;
  Buf.Ints = std::move(Data);
  BoundBuffers[Name] = std::move(Buf);
}

void Interpreter::bindFloatBuffer(const std::string &Name,
                                  std::vector<double> Data) {
  RuntimeBuffer Buf;
  Buf.Elem = ScalarKind::Float;
  Buf.Floats = std::move(Data);
  BoundBuffers[Name] = std::move(Buf);
}

RunResult Interpreter::run(const Function &F) {
  ExecState State(BoundScalars, BoundBuffers);
  State.exec(F.Body);
  return State.takeResult();
}
