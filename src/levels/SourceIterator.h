//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits loop nests that iterate a tensor stored in any source format,
/// recovering canonical coordinates via the format's inverse mapping. This
/// is the iteration machinery of Kjolstad/Chou (summarized in paper §2)
/// that both the attribute-query compiler (§5.2) and the conversion
/// generator's remapping/assembly passes (§4.2, §6.2) build on: each level
/// kind contributes either a loop (dense, compressed, squeezed, sliced,
/// skyline) or a direct position/coordinate derivation (singleton, offset).
///
/// Sources whose values array contains padding (DIA/ELL/BCSR/SKY) get a
/// `vals[p] != 0` guard around the innermost body so only logical nonzeros
/// are visited.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_LEVELS_SOURCEITERATOR_H
#define CONVGEN_LEVELS_SOURCEITERATOR_H

#include "formats/Format.h"
#include "ir/IR.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace convgen {
namespace levels {

/// What the body of an emitted loop nest can see.
struct IterEnv {
  /// Stored-dimension coordinates c0..cL-1 for the levels iterated so far.
  std::vector<ir::Expr> DstCoords;
  /// Canonical ivar name -> coordinate expression, for every ivar
  /// recoverable from the iterated levels.
  std::map<std::string, ir::Expr> Canonical;
  /// Position at the innermost iterated level (indexes vals at full depth).
  ir::Expr LastPos;
  /// Positions p1..pL at each iterated level.
  std::vector<ir::Expr> Positions;
};

class SourceIterator {
public:
  /// \p Tensor is the parameter-name prefix ("A" for conversion inputs).
  SourceIterator(const formats::Format &Fmt, std::string Tensor = "A");

  /// Emits the full nest over all stored nonzeros. \p Body produces the
  /// innermost statements; \p LevelPrologue (optional) injects statements
  /// at the top of the given 1-based level's loop body — the counter-reuse
  /// optimization resets scalar counters there (§4.2).
  ir::Stmt
  build(const std::function<ir::Stmt(const IterEnv &)> &Body,
        const std::map<int, std::function<ir::Stmt(const IterEnv &)>>
            &LevelPrologue = {}) const;

  /// Emits a nest over only the first \p Levels levels (no value guard);
  /// used by optimized queries that read per-slice statistics (e.g. CSR's
  /// pos array) without touching nonzeros.
  ir::Stmt buildPrefix(int Levels,
                       const std::function<ir::Stmt(const IterEnv &)> &Body)
      const;

  /// Number of children of (1-based, compressed) level \p L under the
  /// current position: pos[p+1] - pos[p]. \p Env must come from
  /// buildPrefix(L-1). This is the dynamically computed B' of the
  /// simplify-width-count transformation (Table 1).
  ir::Expr rowNnz(int L, const IterEnv &Env) const;

  /// Canonical ivars recoverable from the first \p Levels levels.
  std::vector<std::string> ivarsAvailableAtPrefix(int Levels) const;

  /// Canonical ivars bound, in order, by the leading dense loops of the
  /// nest; counters indexed by a subset of these can reuse one scalar.
  std::vector<std::string> orderedLoopIVars() const;

  /// Canonical ivars whose values are lexicographically ordered across the
  /// whole iteration (leading levels storing plain variables, with sorted
  /// coordinate arrays). Dedup workspaces require the target's parent dims
  /// to depend only on these.
  std::vector<std::string> lexOrderedIVars() const;

  /// Total number of stored positions (the size of A_vals), as an
  /// expression over the source's parameters.
  ir::Expr storedSizeExpr() const;

  /// Function parameters the emitted code reads (dims, pos/crd/perm/vals,
  /// per-level size parameters).
  std::vector<ir::Param> params() const;

  const formats::Format &format() const { return Fmt; }

  /// The trailing levels starting at 1-based level \p L are all one-to-one
  /// (singleton/offset); with a compressed level at L-1 this enables the
  /// whole-suffix variant of simplify-width-count.
  bool suffixIsOneToOne(int L) const;

  // Naming and bounds helpers (public: the nest emitter and the query
  // compiler build expressions with them).
  std::string posName(int K) const;
  std::string crdName(int K) const;
  std::string permName(int K) const;
  std::string paramName(int K) const;
  std::string coordVarName(int K) const;
  const std::string &tensorName() const { return Tensor; }
  /// Extent/lower-bound of stored dimension (1-based level); null extent
  /// means data-dependent (counter dim, sized by the A<k>_param input).
  ir::Expr dimExtentAt(int K) const {
    return DimExtent[static_cast<size_t>(K - 1)];
  }
  ir::Expr dimLoAt(int K) const { return DimLo[static_cast<size_t>(K - 1)]; }

private:
  formats::Format Fmt;
  std::string Tensor;
  /// Symbolic bounds per stored dimension (over dim0/dim1).
  std::vector<ir::Expr> DimExtent; ///< Null for counter dims (use param).
  std::vector<ir::Expr> DimLo;
};

} // namespace levels
} // namespace convgen

#endif // CONVGEN_LEVELS_SOURCEITERATOR_H
