//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinate-hierarchy level formats and the paper's assembly
/// abstraction (§6.1, Figures 7, 11, 12). Each level format implements a
/// fixed static interface of *level functions* — get_size, edge insertion
/// (sequenced and unsequenced), init_coords, get_pos / yield_pos,
/// insert_coord, and finalizers — as IR *emitters*: the conversion code
/// generator calls them to splice specialized code into the routine it is
/// building, which is exactly how the paper's compiler inlines level
/// function implementations (§6.2).
///
/// Each level format also declares the attribute queries its assembly
/// requires (a compressed level needs per-parent nonzero counts, a squeezed
/// level the set of nonzero coordinates, a sliced level the maximum
/// coordinate, a skyline level the minimum).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_LEVELS_LEVELS_H
#define CONVGEN_LEVELS_LEVELS_H

#include "formats/Format.h"
#include "ir/IR.h"
#include "query/Query.h"
#include "remap/Bounds.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace convgen {
namespace levels {

/// Where a compiled attribute query's result lives and how to decode it.
/// Raw stored values of max/min queries are shifted so that zero means
/// "empty" (§5.2); actual = Sign * raw + Shift recovers the aggregate.
struct QueryResultRef {
  std::string Buffer;
  ir::ScalarKind Elem = ir::ScalarKind::Int;
  std::vector<int> GroupDims;
  std::vector<ir::Expr> GroupLo;     ///< Per group dim: coordinate lower bound.
  std::vector<ir::Expr> GroupExtent; ///< Per group dim: extent (for strides).
  int Sign = 1;
  ir::Expr Shift; ///< Null when raw values need no decoding (count/id).
};

/// Raw element load at the given group coordinates (row-major layout).
ir::Expr readQueryRaw(const QueryResultRef &Ref,
                      const std::vector<ir::Expr> &GroupCoords);

/// Decoded aggregate value (applies Sign/Shift).
ir::Expr readQueryValue(const QueryResultRef &Ref,
                        const std::vector<ir::Expr> &GroupCoords);

/// How the coordinate-insertion pass drives cursor-based compressed levels
/// (chosen by the generator; see Generator.cpp for the legality analysis).
enum class InsertStrategy : uint8_t {
  /// Shared per-parent pos cursor consumed in iteration order; the
  /// insertion pass must stay serial. The default, and the only legal
  /// choice for dedup levels.
  Serial,
  /// The destination position of every nonzero equals its stored source
  /// position, so no cursor exists at all: insertion is a pure function of
  /// the source position and parallelizes like a pure-level target. Legal
  /// when the cursor level's parent coordinates are exactly a prefix of
  /// the source's lexicographic iteration order and every stored slot is
  /// inserted (unpadded source): the serial cursor then provably assigns
  /// position p to the p-th visited nonzero.
  Monotone,
  /// Per-partition cursor array seeded from the pos array: a counting
  /// pre-pass tallies each partition's nonzeros per parent, a scan over
  /// partitions turns the tallies into starting cursors, and the blocked
  /// insertion pass consumes cursor[partition][parent]. Deterministic for
  /// any partition count, so bit-identical to the serial oracle.
  Blocked,
};

/// Shared emission context for one conversion. Owned by the generator;
/// level formats use it for naming, dimension bounds, query results, and
/// parent-position enumeration during edge insertion.
struct AsmCtx {
  const formats::Format *Fmt = nullptr;
  /// Symbolic bounds per destination dimension (over dim0/dim1 vars).
  std::vector<remap::DimBounds> Bounds;

  /// Cursor strategy of the coordinate-insertion pass (see InsertStrategy).
  InsertStrategy Insert = InsertStrategy::Serial;
  /// Blocked only: loop variable holding the current partition index.
  std::string BlockVar;
  /// Blocked only: partition count, evaluated once so every blocked pass
  /// splits the iteration space identically.
  ir::Expr PartCount;
  /// Parent size expression per 1-based level (filled by the generator
  /// during initialization; cursor emitters index with it).
  std::map<int, ir::Expr> ParentSize;

  /// Query result lookup: (1-based level, label) -> ref.
  std::function<QueryResultRef(int, const std::string &)> Result;

  /// Enumerates the positions of level K's parent in order, invoking Body
  /// with (parent position, destination coords of dims 0..K-2). The
  /// generator implements this with loops over the enclosing levels; it is
  /// the "for position pk-1 in parent level" of Figure 12.
  std::function<ir::Stmt(
      int, const std::function<ir::Stmt(ir::Expr,
                                        const std::vector<ir::Expr> &)> &)>
      ParentLoop;

  /// Total number of stored source positions (the size of A_vals) — the
  /// nnz-proportional bound sorted-ranking levels size their tuple
  /// workspaces by.
  ir::Expr StoredSize;

  /// Sorted-ranking support: emits one full pass over the source whose
  /// body receives the destination coordinates of dims 0..UpToDim (all
  /// plain canonical variables; planAssembly guarantees this before
  /// selecting the sorted strategy) plus the nonzero's stored position,
  /// and is annotated parallel when the nest's root is a loop (bodies must
  /// write disjoint per-nonzero slots). The generator implements this over
  /// the source iterator, with no counters involved.
  std::function<ir::Stmt(
      int, const std::function<ir::Stmt(const std::vector<ir::Expr> &,
                                        ir::Expr)> &)>
      SourceSweep;

  /// Parent position of level K for the given destination coordinates, as
  /// a pure expression (no statements): folds pureChildPos over levels
  /// 1..K-1. Only valid when every ancestor is pure-positioned (dense, or
  /// compressed with ranked/sorted insertion) — which planAssembly
  /// enforces for sorted levels.
  std::function<ir::Expr(int, const std::vector<ir::Expr> &)> ParentPos;

  /// Shared full-arity sort (set by the generator when the plan's sorted
  /// levels group by nested prefixes of one coordinate tuple): the 1-based
  /// anchor level whose sorted unique tuple list every other sorted level
  /// derives its own list from by prefix compaction, instead of running a
  /// redundant collect+sort over the same nonzeros. 0 when each sorted
  /// level builds independently.
  int SharedSortAnchor = 0;
  /// Arity of the anchor's tuples (anchor grouping dims 0..Arity-1).
  int64_t SharedSortArity = 0;

  /// Packed-key radix sort (set by the generator when the plan records
  /// PackedSort): bit width per destination dimension, in dimension order.
  /// Non-empty only when every extent is known and the full-order tuple
  /// packs into 64 bits, so any grouping prefix fits too; sorted levels
  /// then lower their sorts through ir::sortTuplesPacked. Empty keeps the
  /// comparison merge sort.
  std::vector<int64_t> PackWidths;

  /// 1-based levels whose parent position, inside the sorted pos build,
  /// equals the rank of the tuple's dims 0..Dim-1 prefix among the
  /// distinct prefixes of the level's own sorted unique list — true when
  /// the parent is itself a sorted level grouping exactly those dims (the
  /// CSF chain case). emitSortedInit then derives every block end's parent
  /// position from prefix-change flags plus one additive scan instead of
  /// per-block-end binary searches. Index 0 unused.
  std::vector<bool> PrefixRankParent;

  /// Rank-scatter insertion (packed plans, full-order sorted list only):
  /// name of an nnz-sized int32 buffer mapping every stored source
  /// position to its tuple's rank in level RankLevel's sorted unique
  /// list, filled by the fused packed sort carrying the source slot as a
  /// payload. Coordinate insertion then resolves the deepest position
  /// with one load per nonzero instead of a binary search over the list.
  /// Empty when unavailable (unpacked, hashed, or partial-arity list).
  std::string RankBuffer;
  int RankLevel = 0;

  /// Use unsequenced edge insertion (calloc + scatter + prefix sum) even
  /// where sequenced insertion is available; exercised by tests/ablations.
  bool ForceUnseqEdges = false;

  // Naming helpers (1-based levels, matching the "B1_pos" ABI convention).
  std::string posName(int K) const { return "B" + std::to_string(K) + "_pos"; }
  std::string crdName(int K) const { return "B" + std::to_string(K) + "_crd"; }
  std::string permName(int K) const {
    return "B" + std::to_string(K) + "_perm";
  }
  std::string paramVar(int K) const { return "B" + std::to_string(K) + "_K"; }
  /// Blocked insertion's per-partition cursor array for level K.
  std::string cursorName(int K) const {
    return "B" + std::to_string(K) + "_cur";
  }
  /// Sorted ranking's per-level sorted unique tuple list and its count
  /// variable (shared between CompressedLevel and the generator's shared-
  /// sort emission, like the pos/crd ABI names above).
  std::string srtName(int K) const { return "B" + std::to_string(K) + "_srt"; }
  std::string uniqueVar(int K) const { return "uB" + std::to_string(K); }

  ir::Expr dimLo(int D) const;
  ir::Expr dimHi(int D) const;
  ir::Expr dimExtent(int D) const;
};

/// Per-nonzero state during coordinate insertion (Figure 12, right).
struct PosEnv {
  ir::Expr ParentPos;
  /// Destination coordinates c0..cn-1 of the nonzero being inserted.
  std::vector<ir::Expr> DstCoords;
  /// The nonzero's stored position in the source (indexes A_vals); the
  /// destination position under the Monotone insertion strategy.
  ir::Expr SrcPos;
};

/// Abstract level format: assembly-side code emitters.
class LevelFormat {
public:
  /// \p K is the 1-based level number; \p Dedup requests get_pos semantics
  /// over yield_pos storage for levels where several nonzeros share a
  /// coordinate (BCSR's block-column level); \p Order is the format's
  /// stored order (for root-level count queries).
  ///
  /// \p Ranked selects the order-independent variant of dedup insertion: a
  /// position is the rank of the nonzero's coordinate tuple among the
  /// *present* tuples (precomputed per parent from a presence query during
  /// edge insertion), instead of its first-visit number in a version-stamp
  /// workspace. Positions become a pure function of the coordinates, which
  /// (a) drops every requirement on the source's iteration order, (b) makes
  /// insertion parallel-safe, and (c) lets deeper levels enumerate this
  /// level's positions before any insertion ran — the key to edge insertion
  /// below compressed ancestors (CSF targets). The price is an
  /// O(prod extents of dims 0..Dim) rank array, so the generator prefers
  /// the workspace variant where the source's iteration order permits it
  /// and no descendant needs the enumeration.
  ///
  /// \p Sorted selects the O(nnz)-memory ranking strategy for unique
  /// compressed levels whose dense rank array / query buffers would exceed
  /// the planner's size threshold (huge-dimension hyper-sparse tensors):
  /// edge insertion collects the grouping tuples of every stored nonzero
  /// into an append buffer, sorts and uniques them, and a position is the
  /// tuple's index in that sorted unique list (a binary search at
  /// insertion time). Like Ranked, positions are a pure function of the
  /// coordinates — order-independent and parallel-safe — but no structure
  /// is sized by a dimension extent product. Coordinates are written
  /// during edge insertion (insert_coord is a no-op) and the level issues
  /// no attribute queries. When the context carries a shared-sort anchor,
  /// non-anchor sorted levels derive their unique list from the anchor's
  /// full-arity buffer by prefix compaction instead of collecting and
  /// sorting again.
  ///
  /// \p Hashed (sorted levels only) selects the hashed-presence variant of
  /// list construction: the collected tuples are deduplicated through an
  /// open-addressing hash table before the sort, so the sort touches only
  /// distinct tuples — O(distinct log distinct) instead of O(nnz log nnz)
  /// comparison work when duplicates dominate. Positions, pos, and crd are
  /// built from the identical sorted unique list, so results are
  /// bit-identical to the plain sorted variant.
  static std::unique_ptr<LevelFormat> create(const formats::LevelSpec &Spec,
                                             int K, bool Dedup, bool Ranked,
                                             bool Sorted, bool Hashed,
                                             int Order);

  virtual ~LevelFormat();

  int level() const { return K; }
  const formats::LevelSpec &spec() const { return Spec; }

  /// Attribute queries this level's assembly requires (possibly none).
  /// Labels are unique per level.
  virtual std::vector<query::Query> queries() const { return {}; }

  virtual bool needsEdgeInsertion() const { return false; }

  /// get_size: number of positions in this level given the parent's.
  virtual ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const = 0;

  /// Edge insertion + init_coords: everything that must run before
  /// coordinate insertion (allocations, perm/K computation, pos arrays).
  virtual void emitInit(AsmCtx &Ctx, ir::Expr ParentSize,
                        ir::BlockBuilder &Out) const {
    (void)Ctx;
    (void)ParentSize;
    (void)Out;
  }

  /// Shared-sort hook, called by the generator on the anchor level before
  /// any per-level emitInit: builds the full-arity sorted unique tuple
  /// list (collect sweep, optional hash dedup, sort, unique) that every
  /// sorted level's emitInit then reads. Only the sorted compressed level
  /// implements it.
  virtual void emitSharedListBuild(AsmCtx &Ctx, ir::BlockBuilder &Out) const {
    (void)Ctx;
    (void)Out;
  }

  /// init_get_pos / init_yield_pos: auxiliary structures used only during
  /// coordinate insertion (squeezed's rperm, dedup workspaces).
  virtual void emitInitPos(AsmCtx &Ctx, ir::Expr ParentSize,
                           ir::BlockBuilder &Out) const {
    (void)Ctx;
    (void)ParentSize;
    (void)Out;
  }

  /// True when emitPos/emitInsertCoord touch no shared mutable state under
  /// the context's insertion strategy: the position is a pure function of
  /// (parent position, coordinates, source position) and the only writes
  /// go to this level's own arrays at that position. For a valid format
  /// those positions are distinct per stored nonzero, so the
  /// coordinate-insertion pass over a chain of such levels may be
  /// partitioned across threads without races or reordering.
  ///
  /// Cursor-based compressed levels are parallel-safe under the Monotone
  /// strategy (the cursor disappears: position == source position, legal
  /// when the level's parent coordinates are a lexicographic prefix of the
  /// source's iteration order) and under the Blocked strategy (each
  /// partition consumes its own pre-counted cursor row). With the Serial
  /// strategy they advance a shared cursor and must stay serial, as must
  /// dedup levels (version-stamped workspace) always. Defaults to false so
  /// a future level kind is serial until someone proves its insertion
  /// order-independent and opts in.
  virtual bool insertIsParallelSafe(const AsmCtx &Ctx) const {
    (void)Ctx;
    return false;
  }

  /// True when insertion advances a plain per-parent cursor and nothing
  /// else (compressed levels without a dedup workspace). Only such levels
  /// support the Monotone and Blocked strategies; the generator checks
  /// their preconditions before selecting either.
  virtual bool insertUsesCursor() const { return false; }

  /// True when emitPos never reads Env.ParentPos (sorted ranking: the
  /// position is the tuple's global rank over dims 0..Dim). The generator
  /// then need not materialize the parent chain's positions for this
  /// level's sake.
  virtual bool posIgnoresParent() const { return false; }

  /// True when emitPos touches no mutable state (no cursor advance, no
  /// workspace stamp): a position nothing consumes may be skipped
  /// entirely. Together with posIgnoresParent and insert_coord being a
  /// no-op, this lets the coordinate-insertion pass over an all-sorted
  /// chain compute only the deepest level's rank — one binary search per
  /// nonzero instead of one per level.
  virtual bool posIsPure() const { return false; }

  /// True when emitInsertCoord emits nothing (sorted ranking writes crd
  /// from the unique list during edge insertion), so the position is not
  /// needed for a coordinate store either.
  virtual bool insertCoordIsNoOp() const { return false; }

  /// The child position for the given (parent position, destination
  /// coordinates) as a pure expression with no emitted statements, or null
  /// when this level's positions are not expressible that way. Dense
  /// levels (coordinate arithmetic) and compressed levels under ranked or
  /// sorted insertion (rank lookups / binary searches) provide it; the
  /// sorted-ranking pos construction composes ancestor positions through
  /// this hook, twice per loop body, which statement-emitting emitPos
  /// variants could not support without name collisions.
  virtual ir::Expr pureChildPos(AsmCtx &Ctx, ir::Expr ParentPos,
                                const std::vector<ir::Expr> &Coords) const {
    (void)Ctx;
    (void)ParentPos;
    (void)Coords;
    return nullptr;
  }

  /// get_pos / yield_pos: emits statements computing this nonzero's
  /// position at this level and returns the position expression.
  virtual ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                           ir::BlockBuilder &Out) const = 0;

  /// insert_coord: stores the coordinate (no-op for implicit levels).
  virtual void emitInsertCoord(AsmCtx &Ctx, const PosEnv &Env, ir::Expr Pk,
                               ir::BlockBuilder &Out) const {
    (void)Ctx;
    (void)Env;
    (void)Pk;
    (void)Out;
  }

  /// finalize_get_pos / finalize_yield_pos: pos-shift loops, frees.
  virtual void emitFinalize(AsmCtx &Ctx, ir::Expr ParentSize,
                            ir::BlockBuilder &Out) const {
    (void)Ctx;
    (void)ParentSize;
    (void)Out;
  }

  /// Publishes this level's output arrays/parameters (YieldBuffer/Scalar).
  virtual void emitYield(AsmCtx &Ctx, ir::Expr ParentSize,
                         ir::BlockBuilder &Out) const {
    (void)Ctx;
    (void)ParentSize;
    (void)Out;
  }

  LevelFormat(const formats::LevelSpec &Spec, int K) : Spec(Spec), K(K) {}

protected:
  formats::LevelSpec Spec;
  int K;
};

} // namespace levels
} // namespace convgen

#endif // CONVGEN_LEVELS_LEVELS_H
