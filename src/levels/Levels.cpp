//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "levels/Levels.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::levels;
using formats::LevelKind;
using formats::LevelSpec;

ir::Expr levels::readQueryRaw(const QueryResultRef &Ref,
                              const std::vector<ir::Expr> &GroupCoords) {
  CONVGEN_ASSERT(GroupCoords.size() == Ref.GroupDims.size(),
                 "group coordinate arity mismatch");
  // Row-major linearization of (coord - lo) over the group extents.
  ir::Expr Index = ir::intImm(0);
  for (size_t G = 0; G < GroupCoords.size(); ++G) {
    ir::Expr Rel = ir::sub(GroupCoords[G], Ref.GroupLo[G]);
    Index = ir::add(ir::mul(Index, Ref.GroupExtent[G]), Rel);
  }
  return ir::load(Ref.Buffer, Index, Ref.Elem);
}

ir::Expr levels::readQueryValue(const QueryResultRef &Ref,
                                const std::vector<ir::Expr> &GroupCoords) {
  ir::Expr Raw = readQueryRaw(Ref, GroupCoords);
  if (!Ref.Shift)
    return Raw;
  ir::Expr Signed = Ref.Sign < 0 ? ir::neg(Raw) : Raw;
  return ir::add(Signed, Ref.Shift);
}

ir::Expr AsmCtx::dimLo(int D) const {
  const remap::DimBounds &B = Bounds.at(static_cast<size_t>(D));
  if (!B.Known)
    fatalError("assembly requires static bounds for a remapped dimension");
  return B.Lo;
}

ir::Expr AsmCtx::dimHi(int D) const {
  const remap::DimBounds &B = Bounds.at(static_cast<size_t>(D));
  if (!B.Known)
    fatalError("assembly requires static bounds for a remapped dimension");
  return B.Hi;
}

ir::Expr AsmCtx::dimExtent(int D) const {
  return Bounds.at(static_cast<size_t>(D)).extent();
}

LevelFormat::~LevelFormat() = default;

namespace {

//===----------------------------------------------------------------------===//
// dense
//===----------------------------------------------------------------------===//

class DenseLevel : public LevelFormat {
public:
  using LevelFormat::LevelFormat;

  /// Position is a pure function of (parent, coords); see LevelFormat.
  bool insertIsParallelSafe(const AsmCtx &) const override { return true; }

  ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const override {
    return ir::mul(ParentSize, Ctx.dimExtent(Spec.Dim));
  }

  ir::Expr pureChildPos(AsmCtx &Ctx, ir::Expr ParentPos,
                        const std::vector<ir::Expr> &Coords) const override {
    ir::Expr Rel = ir::sub(Coords[static_cast<size_t>(Spec.Dim)],
                           Ctx.dimLo(Spec.Dim));
    return ir::add(ir::mul(ParentPos, Ctx.dimExtent(Spec.Dim)), Rel);
  }

  ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                   ir::BlockBuilder &Out) const override {
    (void)Out;
    return pureChildPos(Ctx, Env.ParentPos, Env.DstCoords);
  }
};

//===----------------------------------------------------------------------===//
// compressed
//===----------------------------------------------------------------------===//

class CompressedLevel : public LevelFormat {
public:
  CompressedLevel(const LevelSpec &Spec, int K, bool Dedup, bool Ranked,
                  bool Sorted, bool Hashed, int Order)
      : LevelFormat(Spec, K), Dedup(Dedup), Ranked(Ranked), Sorted(Sorted),
        Hashed(Hashed), Order(Order) {
    CONVGEN_ASSERT(!Ranked || Dedup, "ranked insertion is a dedup variant");
    CONVGEN_ASSERT(!(Ranked && Sorted), "ranked and sorted are exclusive");
    CONVGEN_ASSERT(!Sorted || Spec.Unique,
                   "sorted ranking requires a unique compressed level");
    CONVGEN_ASSERT(!Hashed || Sorted,
                   "hashed presence is a sorted-ranking variant");
  }

  /// Cursor-based insertion is parallel-safe exactly when the generator
  /// replaced the shared cursor: Monotone (no cursor at all) or Blocked
  /// (partition-private cursor rows). Ranked dedup and sorted-ranking
  /// positions are a pure function of the coordinates and parallelize
  /// under every strategy; workspace dedup mutates shared state and never
  /// does.
  bool insertIsParallelSafe(const AsmCtx &Ctx) const override {
    if (Ranked || Sorted)
      return true;
    return !Dedup && (Ctx.Insert == InsertStrategy::Monotone ||
                      Ctx.Insert == InsertStrategy::Blocked);
  }

  bool insertUsesCursor() const override { return !Dedup && !Sorted; }

  bool posIgnoresParent() const override { return Sorted; }
  bool posIsPure() const override { return Sorted || Ranked; }
  bool insertCoordIsNoOp() const override { return Sorted; }

  std::vector<query::Query> queries() const override {
    // Sorted ranking derives everything (pos, crd, positions) from its
    // own sorted tuple list; a dense-grouped query buffer is exactly what
    // it exists to avoid.
    if (Sorted)
      return {};
    query::Query Q;
    for (int D = 0; D < Spec.Dim; ++D)
      Q.GroupDims.push_back(D);
    query::Agg A;
    A.Kind = query::AggKind::Count;
    A.Label = "nir";
    if (Spec.Unique) {
      A.Dims = {Spec.Dim};
    } else {
      // Non-unique root level (COO): every nonzero is stored, so count over
      // all remaining dimensions (distinct full tuples = all nonzeros).
      CONVGEN_ASSERT(Spec.Dim == 0, "non-unique levels are root-only");
      for (int D = Spec.Dim; D < Order; ++D)
        A.Dims.push_back(D);
    }
    Q.Aggs = {A};
    if (!Ranked)
      return {Q};
    // Ranked insertion additionally needs per-tuple presence (including
    // this level's own dimension) to precompute local ranks.
    query::Query P;
    for (int D = 0; D <= Spec.Dim; ++D)
      P.GroupDims.push_back(D);
    P.Aggs = {query::Agg{query::AggKind::Id, {}, "present"}};
    return {Q, P};
  }

  bool needsEdgeInsertion() const override { return true; }

  ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const override {
    return ir::load(Ctx.posName(K), ParentSize);
  }

  void emitInit(AsmCtx &Ctx, ir::Expr ParentSize,
                ir::BlockBuilder &Out) const override {
    if (Sorted) {
      emitSortedInit(Ctx, ParentSize, Out);
      return;
    }
    std::string Pos = Ctx.posName(K);
    QueryResultRef Count = Ctx.Result(K, "nir");
    if (!Ctx.ForceUnseqEdges) {
      // Sequenced edge insertion: parent positions are enumerated in order.
      Out.add(ir::alloc(Pos, ir::ScalarKind::Int,
                        ir::add(ParentSize, ir::intImm(1)), false));
      Out.add(ir::store(Pos, ir::intImm(0), ir::intImm(0)));
      Out.add(Ctx.ParentLoop(
          K, [&](ir::Expr P, const std::vector<ir::Expr> &Coords) {
            return ir::store(
                Pos, ir::add(P, ir::intImm(1)),
                ir::add(ir::load(Pos, P), readQueryRaw(Count, Coords)));
          }));
    } else {
      // Unsequenced: scatter per-parent counts, then prefix-sum through
      // ir::Scan — serial in the oracle, a blocked parallel scan in C.
      Out.add(ir::alloc(Pos, ir::ScalarKind::Int,
                        ir::add(ParentSize, ir::intImm(1)), true));
      Out.add(Ctx.ParentLoop(
          K, [&](ir::Expr P, const std::vector<ir::Expr> &Coords) {
            return ir::store(Pos, ir::add(P, ir::intImm(1)),
                             readQueryRaw(Count, Coords));
          }));
      Out.add(ir::scan(Pos, ir::add(ParentSize, ir::intImm(1)),
                       ir::ScanKind::Inclusive));
    }
    Out.add(ir::alloc(Ctx.crdName(K), ir::ScalarKind::Int,
                      ir::load(Pos, ParentSize), false));
    if (Ranked)
      emitRankBuild(Ctx, Out);
  }

  void emitInitPos(AsmCtx &Ctx, ir::Expr ParentSize,
                   ir::BlockBuilder &Out) const override {
    (void)ParentSize;
    if (!Dedup || Ranked || Sorted)
      return;
    // Version-stamped workspace: get_pos semantics over yield_pos storage.
    Out.add(ir::alloc(wsStamp(), ir::ScalarKind::Int, Ctx.dimExtent(Spec.Dim),
                      true));
    Out.add(ir::alloc(wsPos(), ir::ScalarKind::Int, Ctx.dimExtent(Spec.Dim),
                      false));
  }

  /// Row-major linearization of relative coordinates over dims 0..Dim (the
  /// presence query's buffer layout, reused for the rank array).
  ir::Expr rankIndex(AsmCtx &Ctx,
                     const std::vector<ir::Expr> &RelCoords) const {
    ir::Expr Index = ir::intImm(0);
    for (int D = 0; D <= Spec.Dim; ++D)
      Index = ir::add(ir::mul(Index, Ctx.dimExtent(D)),
                      RelCoords[static_cast<size_t>(D)]);
    return Index;
  }

  /// Precomputes rnk[t] = rank of coordinate tuple t among the present
  /// children of t's parent tuple, scanning each parent's child range in
  /// coordinate order. Parent tuples are independent, so the outermost
  /// parent loop parallelizes.
  void emitRankBuild(AsmCtx &Ctx, ir::BlockBuilder &Out) const {
    levels::QueryResultRef Present = Ctx.Result(K, "present");
    ir::Expr Size = ir::intImm(1);
    for (int D = 0; D <= Spec.Dim; ++D)
      Size = ir::mul(Size, Ctx.dimExtent(D));
    Out.add(ir::comment(
        strfmt("level %d ranked insertion: local ranks of present tuples",
               K)));
    Out.add(ir::alloc(rankName(), ir::ScalarKind::Int, Size, false));

    std::vector<ir::Expr> Rel, Abs;
    for (int D = 0; D <= Spec.Dim; ++D) {
      Rel.push_back(ir::var(rankLoopVar(D)));
      Abs.push_back(ir::add(ir::var(rankLoopVar(D)), Ctx.dimLo(D)));
    }
    std::string R = "r" + std::to_string(K) + "v";
    std::string IdxVar = "r" + std::to_string(K) + "i";
    ir::BlockBuilder Hit;
    Hit.add(ir::store(rankName(), ir::var(IdxVar), ir::var(R)));
    Hit.add(ir::assign(R, ir::add(ir::var(R), ir::intImm(1))));
    ir::BlockBuilder Scan;
    Scan.add(ir::decl(IdxVar, rankIndex(Ctx, Rel)));
    // The presence load goes through the query layer's own decoding so
    // the rank array's layout (rankIndex) never couples to the query
    // result buffer's.
    Scan.add(ir::ifThen(readQueryRaw(Present, Abs), Hit.build()));
    ir::BlockBuilder PerParent;
    PerParent.add(ir::decl(R, ir::intImm(0)));
    PerParent.add(ir::forRange(rankLoopVar(Spec.Dim), ir::intImm(0),
                               Ctx.dimExtent(Spec.Dim), Scan.build()));
    ir::Stmt Nest = PerParent.build();
    for (int D = Spec.Dim - 1; D >= 0; --D)
      Nest = ir::forRange(rankLoopVar(D), ir::intImm(0), Ctx.dimExtent(D),
                          Nest);
    if (Spec.Dim >= 1)
      Nest = ir::markLoopParallel(Nest);
    Out.add(Nest);
  }

  /// Builds this level's sorted unique tuple list from the source in
  /// O(nnz) memory: collect the grouping tuple (dims 0..Dim) of every
  /// stored nonzero into an append buffer (one slot per stored position,
  /// so the pass parallelizes with disjoint writes), then either
  /// sort + unique (plain sorted ranking), or — under the hashed-presence
  /// variant — dedup through an open-addressing hash table first and sort
  /// only the distinct tuples, which wins when duplicates dominate the
  /// collected multiset. Both orders of operations produce the identical
  /// sorted unique list, so downstream pos/crd/position code never knows
  /// the difference.
  void emitListBuild(AsmCtx &Ctx, ir::BlockBuilder &Out) const {
    int64_t R = Spec.Dim + 1;
    ir::Expr RImm = ir::intImm(R);
    std::string Srt = Ctx.srtName(K);
    std::string U = Ctx.uniqueVar(K);
    // Packed radix lowering when the planner derived component widths for
    // every grouping dim (any prefix of a 64-bit-packable full tuple fits).
    auto sortCall = [&](const std::string &Buf, ir::Expr Count) {
      if (static_cast<int64_t>(Ctx.PackWidths.size()) >= R)
        return ir::sortTuplesPacked(
            Buf, std::move(Count), R,
            std::vector<int64_t>(Ctx.PackWidths.begin(),
                                 Ctx.PackWidths.begin() + R));
      return ir::sortTuples(Buf, std::move(Count), R);
    };
    std::string Collect =
        Hashed ? "B" + std::to_string(K) + "_tup" : Srt;
    Out.add(ir::comment(
        strfmt("level %d sorted ranking: collect%s and sort the grouping "
               "tuples (O(nnz) workspace)",
               K, Hashed ? ", hash-dedup," : "")));
    Out.add(ir::alloc(Collect, ir::ScalarKind::Int,
                      ir::mul(Ctx.StoredSize, RImm), false));
    Out.add(Ctx.SourceSweep(
        Spec.Dim,
        [&](const std::vector<ir::Expr> &Coords, ir::Expr SrcPos) -> ir::Stmt {
          std::string Base = "t" + std::to_string(K);
          ir::BlockBuilder B;
          B.add(ir::decl(Base, ir::mul(SrcPos, RImm)));
          for (int D = 0; D <= Spec.Dim; ++D)
            B.add(ir::store(Collect, ir::add(ir::var(Base), ir::intImm(D)),
                            Coords[static_cast<size_t>(D)]));
          return B.build();
        }));
    // Sub-phase clocks (slots 4/5 of <fn>_phase_seconds): sort-vs-assembly
    // time stays visible in the bench trajectory without re-instrumenting.
    Out.add(ir::phaseMark(4, "tuple collect"));
    if (Hashed) {
      Out.add(ir::alloc(Srt, ir::ScalarKind::Int,
                        ir::mul(Ctx.StoredSize, RImm), false));
      Out.add(ir::hashDistinct(Collect, Ctx.StoredSize, R, Srt, U));
      Out.add(ir::freeBuffer(Collect));
      Out.add(sortCall(Srt, ir::var(U)));
    } else if (static_cast<int64_t>(Ctx.PackWidths.size()) >= R) {
      // Fused form: dedup runs on the sorted packed keys before they are
      // unpacked, skipping a tuple-compare pass over 3x the bytes. When
      // this list covers the full coordinate order, the sort also carries
      // each stored nonzero's slot as a payload and scatters its rank —
      // the destination position insertion would otherwise binary-search
      // for, one search per nonzero (the dominant insertion cost).
      std::string Rank;
      if (R == static_cast<int64_t>(Ctx.Bounds.size())) {
        Rank = "B" + std::to_string(K) + "_rank";
        Out.add(ir::alloc(Rank, ir::ScalarKind::Int, Ctx.StoredSize, false));
        Ctx.RankBuffer = Rank;
        Ctx.RankLevel = K;
      }
      Out.add(ir::sortUniqueTuplesPacked(
          Srt, Ctx.StoredSize, R,
          std::vector<int64_t>(Ctx.PackWidths.begin(),
                               Ctx.PackWidths.begin() + R),
          U, Rank));
    } else {
      Out.add(sortCall(Srt, Ctx.StoredSize));
      Out.add(ir::uniqueTuples(Srt, Ctx.StoredSize, R, U));
    }
    Out.add(ir::phaseMark(5, "list sort"));
  }

  void emitSharedListBuild(AsmCtx &Ctx,
                           ir::BlockBuilder &Out) const override {
    CONVGEN_ASSERT(Sorted, "shared list build applies to sorted levels");
    emitListBuild(Ctx, Out);
  }

  /// Sorted-ranking edge insertion (O(nnz) workspace, no dense-grouped
  /// structure anywhere):
  ///
  ///   1. obtain this level's sorted unique tuple list — built here
  ///      (emitListBuild), or, when the generator detected that all sorted
  ///      levels group by nested prefixes of one tuple, derived from the
  ///      shared full-arity list: the anchor level's list IS the shared
  ///      buffer, every other level prefix-compacts it (ir::uniquePrefix)
  ///      instead of re-collecting and re-sorting the same nonzeros;
  ///   2. a tuple's index u in the unique list is its destination
  ///      position, because parent positions follow lexicographic
  ///      coordinate order for dense/ranked/sorted ancestors and the list
  ///      is sorted in exactly that order;
  ///   3. build the pos array from block ends: the last tuple of each
  ///      parent's block stores u+1 into pos[parent+1] (one writer per
  ///      cell — the loop parallelizes), then an inclusive max scan closes
  ///      the gaps of empty parents (blocked and parallel in the C
  ///      lowering — no serial forward fill);
  ///   4. write the crd array straight from the unique list.
  ///
  /// get_pos at insertion time is then a pure binary search (ir::lowerBound)
  /// into the list, so insertion stays order-independent and parallel-safe.
  void emitSortedInit(AsmCtx &Ctx, ir::Expr ParentSize,
                      ir::BlockBuilder &Out) const {
    int64_t R = Spec.Dim + 1;
    ir::Expr RImm = ir::intImm(R);
    std::string Srt = Ctx.srtName(K);
    std::string U = Ctx.uniqueVar(K);
    std::string Pos = Ctx.posName(K);
    if (Ctx.SharedSortAnchor == K) {
      Out.add(ir::comment(strfmt(
          "level %d sorted ranking: positions from the shared full-arity "
          "list",
          K)));
    } else if (Ctx.SharedSortAnchor > 0) {
      Out.add(ir::comment(strfmt(
          "level %d sorted ranking: unique prefix list derived from the "
          "shared sort",
          K)));
      Out.add(ir::alloc(
          Srt, ir::ScalarKind::Int,
          ir::mul(ir::var(Ctx.uniqueVar(Ctx.SharedSortAnchor)), RImm),
          false));
      Out.add(ir::uniquePrefix(Ctx.srtName(Ctx.SharedSortAnchor),
                               ir::var(Ctx.uniqueVar(Ctx.SharedSortAnchor)),
                               Ctx.SharedSortArity, Srt, R, U));
      Out.add(ir::phaseMark(5, "list sort"));
    } else {
      emitListBuild(Ctx, Out);
    }

    auto tupleCoords = [&](ir::Expr Index) {
      std::vector<ir::Expr> C;
      for (int D = 0; D <= Spec.Dim; ++D)
        C.push_back(ir::load(
            Srt, ir::add(ir::mul(Index, RImm), ir::intImm(D))));
      return C;
    };
    Out.add(ir::alloc(Pos, ir::ScalarKind::Int,
                      ir::add(ParentSize, ir::intImm(1)), true));
    // Whether the parent position of every block end is derivable from the
    // list itself: the parent is a sorted level grouping exactly dims
    // 0..Dim-1, so its positions are the ranks of the distinct prefixes of
    // this (sorted) list — computable by prefix-change flags plus one
    // additive scan, with zero searches in construction. Set by the
    // generator; false falls back to the pure ParentPos fold (dense
    // arithmetic / ranked loads — no searches there either).
    bool PrefixRank = Spec.Dim > 0 &&
                      static_cast<size_t>(K) < Ctx.PrefixRankParent.size() &&
                      Ctx.PrefixRankParent[static_cast<size_t>(K)];
    std::string Flg = "B" + std::to_string(K) + "_pfx";
    if (PrefixRank) {
      // flg[u] = 1 iff tuple u starts a new parent block (u == 0 or its
      // dims 0..Dim-1 prefix differs from tuple u-1's). After an inclusive
      // additive scan, flg[u] - 1 is tuple u's parent position: the rank
      // of its prefix among the distinct prefixes seen so far, which is
      // exactly the sorted parent's position for that prefix. Disjoint
      // per-u writes, so the fill parallelizes; the scan is the blocked
      // deterministic lowering.
      std::string UV = "g" + std::to_string(K);
      Out.add(ir::alloc(Flg, ir::ScalarKind::Int, ir::var(U), false));
      ir::Expr PrevDiffers;
      for (int D = 0; D < Spec.Dim; ++D) {
        auto At = [&](ir::Expr Index) {
          return ir::load(Srt,
                          ir::add(ir::mul(Index, RImm), ir::intImm(D)));
        };
        ir::Expr Ne = ir::ne(At(ir::var(UV)),
                             At(ir::sub(ir::var(UV), ir::intImm(1))));
        PrevDiffers = PrevDiffers ? ir::logicalOr(PrevDiffers, Ne) : Ne;
      }
      Out.add(ir::markLoopParallel(ir::forRange(
          UV, ir::intImm(0), ir::var(U),
          ir::ifThen(ir::eq(ir::var(UV), ir::intImm(0)),
                     ir::store(Flg, ir::var(UV), ir::intImm(1)),
                     ir::store(Flg, ir::var(UV),
                               ir::select(PrevDiffers, ir::intImm(1),
                                          ir::intImm(0)))))));
      Out.add(ir::scan(Flg, ir::var(U), ir::ScanKind::Inclusive,
                       ir::ReduceOp::Add));
    }
    {
      std::string UV = "u" + std::to_string(K);
      std::string PV = "up" + std::to_string(K);
      // One writer per pos cell: exactly the last tuple of each parent's
      // block stores, so the loop needs no reduction to parallelize. Two
      // adjacent sorted tuples share a parent iff their parent-coordinate
      // prefixes (dims 0..Dim-1) are equal — ancestor positions are pure
      // functions of those coordinates — so the block-end test is a few
      // loads, and the parent position is computed only for the one tuple
      // per block that actually stores: the scanned prefix-change rank
      // when available (search-free), otherwise the pure ParentPos fold.
      ir::BlockBuilder MarkEndB;
      MarkEndB.add(ir::decl(
          PV, PrefixRank
                  ? ir::sub(ir::load(Flg, ir::var(UV)), ir::intImm(1))
                  : Ctx.ParentPos(K, tupleCoords(ir::var(UV)))));
      MarkEndB.add(ir::store(Pos, ir::add(ir::var(PV), ir::intImm(1)),
                             ir::add(ir::var(UV), ir::intImm(1))));
      ir::Stmt MarkEnd = MarkEndB.build();
      ir::Expr NextDiffers; // Null for a root level: one all-tuples block.
      for (int D = 0; D < Spec.Dim; ++D) {
        auto At = [&](ir::Expr Index) {
          return ir::load(Srt,
                          ir::add(ir::mul(Index, RImm), ir::intImm(D)));
        };
        ir::Expr Ne = ir::ne(At(ir::var(UV)),
                             At(ir::add(ir::var(UV), ir::intImm(1))));
        NextDiffers = NextDiffers ? ir::logicalOr(NextDiffers, Ne) : Ne;
      }
      ir::BlockBuilder Body;
      Body.add(ir::ifThen(
          ir::eq(ir::var(UV), ir::sub(ir::var(U), ir::intImm(1))), MarkEnd,
          NextDiffers ? ir::ifThen(NextDiffers, MarkEnd) : nullptr));
      Out.add(ir::markLoopParallel(
          ir::forRange(UV, ir::intImm(0), ir::var(U), Body.build())));
    }
    if (PrefixRank)
      Out.add(ir::freeBuffer(Flg));
    // Parents with no tuples inherit the previous block's end, pos[0]
    // stays 0: an inclusive prefix max over non-negative end markers,
    // lowered to the blocked parallel scan.
    Out.add(ir::scan(Pos, ir::add(ParentSize, ir::intImm(1)),
                     ir::ScanKind::Inclusive, ir::ReduceOp::Max));
    Out.add(ir::phaseMark(6, "pos build"));
    Out.add(ir::alloc(Ctx.crdName(K), ir::ScalarKind::Int,
                      ir::load(Pos, ParentSize), false));
    {
      std::string UV = "c" + std::to_string(K);
      Out.add(ir::markLoopParallel(ir::forRange(
          UV, ir::intImm(0), ir::var(U),
          ir::store(Ctx.crdName(K), ir::var(UV),
                    ir::load(Srt, ir::add(ir::mul(ir::var(UV), RImm),
                                          ir::intImm(Spec.Dim)))))));
    }
    Out.add(ir::phaseMark(7, "crd write"));
  }

  ir::Expr pureChildPos(AsmCtx &Ctx, ir::Expr ParentPos,
                        const std::vector<ir::Expr> &Coords) const override {
    if (Sorted) {
      // The sorted unique list is global over dims 0..Dim: the rank IS the
      // position, independent of the parent position.
      (void)ParentPos;
      std::vector<ir::Expr> Keys;
      for (int D = 0; D <= Spec.Dim; ++D)
        Keys.push_back(Coords[static_cast<size_t>(D)]);
      // The planner's packed-fit proof covers every prefix of the packed
      // tuple, so a packed plan searches with single-uint64 key compares
      // instead of the tuple-compare loop (same index by construction).
      size_t R = static_cast<size_t>(Spec.Dim) + 1;
      if (Ctx.PackWidths.size() >= R)
        return ir::lowerBoundPacked(
            Ctx.srtName(K), ir::var(Ctx.uniqueVar(K)), Keys,
            {Ctx.PackWidths.begin(), Ctx.PackWidths.begin() + R});
      return ir::lowerBound(Ctx.srtName(K), ir::var(Ctx.uniqueVar(K)), Keys);
    }
    if (Ranked) {
      std::vector<ir::Expr> Rel;
      for (int D = 0; D <= Spec.Dim; ++D)
        Rel.push_back(ir::sub(Coords[static_cast<size_t>(D)], Ctx.dimLo(D)));
      return ir::add(ir::load(Ctx.posName(K), ParentPos),
                     ir::load(rankName(), rankIndex(Ctx, Rel)));
    }
    return nullptr;
  }

  ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                   ir::BlockBuilder &Out) const override {
    std::string Pos = Ctx.posName(K);
    std::string PVar = "pB" + std::to_string(K);
    if (Sorted) {
      // The list build precomputed this nonzero's rank per source slot
      // (see AsmCtx::RankBuffer): one load replaces the binary search.
      if (Ctx.RankLevel == K && !Ctx.RankBuffer.empty()) {
        Out.add(ir::decl(PVar, ir::load(Ctx.RankBuffer, Env.SrcPos)));
        return ir::var(PVar);
      }
      Out.add(ir::decl(PVar, pureChildPos(Ctx, Env.ParentPos, Env.DstCoords)));
      return ir::var(PVar);
    }
    if (Ranked) {
      // Pure: position = pos[parent] + rank of the coordinate tuple. The
      // pos array is final from edge insertion (no cursor, no shift-back),
      // so insertion is order-independent and parallel-safe.
      std::vector<ir::Expr> Rel;
      for (int D = 0; D <= Spec.Dim; ++D)
        Rel.push_back(ir::sub(Env.DstCoords[static_cast<size_t>(D)],
                              Ctx.dimLo(D)));
      std::string IdxVar = PVar + "r";
      Out.add(ir::decl(IdxVar, rankIndex(Ctx, Rel)));
      Out.add(ir::decl(PVar,
                       ir::add(ir::load(Pos, Env.ParentPos),
                               ir::load(rankName(), ir::var(IdxVar)))));
      return ir::var(PVar);
    }
    if (!Dedup) {
      switch (Ctx.Insert) {
      case InsertStrategy::Monotone:
        // Parent positions are non-decreasing along the source iteration
        // and every stored slot is inserted, so the serial cursor would
        // assign exactly the source position; emit that directly. No
        // cursor state, no finalize shift, and the pass parallelizes.
        return Env.SrcPos;
      case InsertStrategy::Blocked: {
        // pB = cur[partition][parent]++ on this partition's private cursor
        // row (seeded from pos by the generator's counting/offset passes).
        std::string IVar = PVar + "i";
        ir::Expr Idx =
            ir::add(ir::mul(ir::var(Ctx.BlockVar), Ctx.ParentSize.at(K)),
                    Env.ParentPos);
        Out.add(ir::decl(IVar, Idx));
        Out.add(ir::decl(PVar, ir::load(Ctx.cursorName(K), ir::var(IVar))));
        Out.add(ir::store(Ctx.cursorName(K), ir::var(IVar),
                          ir::add(ir::var(PVar), ir::intImm(1))));
        return ir::var(PVar);
      }
      case InsertStrategy::Serial:
        // yield_pos: pB = pos[parent]++ (cursor trick, shifted in
        // finalize).
        Out.add(ir::decl(PVar, ir::load(Pos, Env.ParentPos)));
        Out.add(ir::store(Pos, Env.ParentPos,
                          ir::add(ir::var(PVar), ir::intImm(1))));
        return ir::var(PVar);
      }
    }
    ir::Expr CIdx = ir::sub(Env.DstCoords[static_cast<size_t>(Spec.Dim)],
                            Ctx.dimLo(Spec.Dim));
    ir::Expr Stamp = ir::add(Env.ParentPos, ir::intImm(1));
    ir::BlockBuilder Fresh;
    Fresh.add(ir::assign(PVar, ir::load(Pos, Env.ParentPos)));
    Fresh.add(ir::store(Pos, Env.ParentPos,
                        ir::add(ir::var(PVar), ir::intImm(1))));
    Fresh.add(ir::store(wsStamp(), CIdx, Stamp));
    Fresh.add(ir::store(wsPos(), CIdx, ir::var(PVar)));
    Out.add(ir::decl(PVar, ir::intImm(0)));
    Out.add(ir::ifThen(ir::ne(ir::load(wsStamp(), CIdx), Stamp),
                       Fresh.build(),
                       ir::assign(PVar, ir::load(wsPos(), CIdx))));
    return ir::var(PVar);
  }

  void emitInsertCoord(AsmCtx &Ctx, const PosEnv &Env, ir::Expr Pk,
                       ir::BlockBuilder &Out) const override {
    // Sorted ranking wrote the crd array from the unique list during edge
    // insertion; repeating the store here would be redundant (and racy
    // only in the benign identical-value sense — skip it entirely).
    if (Sorted)
      return;
    Out.add(ir::store(Ctx.crdName(K), Pk,
                      Env.DstCoords[static_cast<size_t>(Spec.Dim)]));
  }

  void emitFinalize(AsmCtx &Ctx, ir::Expr ParentSize,
                    ir::BlockBuilder &Out) const override {
    if (Sorted) {
      // pos was never consumed (no cursor) and crd is final: only the
      // sorted tuple list remains to release. Each level owns its own list
      // under shared sort too (the anchor's IS the shared buffer).
      (void)ParentSize;
      Out.add(ir::freeBuffer(Ctx.srtName(K)));
      if (Ctx.RankLevel == K && !Ctx.RankBuffer.empty())
        Out.add(ir::freeBuffer(Ctx.RankBuffer));
      return;
    }
    if (Ranked) {
      // Ranked insertion reads pos without consuming it: nothing to shift.
      Out.add(ir::freeBuffer(rankName()));
      return;
    }
    // Monotone/Blocked insertion never consumed the pos array (no cursor,
    // or partition-private cursor rows), so it is already final and the
    // serial shift-back pass disappears with the parallel strategies.
    if (Dedup || Ctx.Insert == InsertStrategy::Serial) {
      // Shift the consumed cursors back: pos[p] = pos[p-1], pos[0] = 0.
      std::string Pos = Ctx.posName(K);
      std::string S = scanVar();
      ir::Expr Idx = ir::sub(ParentSize, ir::var(S));
      Out.add(ir::forRange(
          S, ir::intImm(0), ParentSize,
          ir::store(Pos, Idx, ir::load(Pos, ir::sub(Idx, ir::intImm(1))))));
      Out.add(ir::store(Pos, ir::intImm(0), ir::intImm(0)));
    }
    if (Dedup) {
      Out.add(ir::freeBuffer(wsStamp()));
      Out.add(ir::freeBuffer(wsPos()));
    }
  }

  void emitYield(AsmCtx &Ctx, ir::Expr ParentSize,
                 ir::BlockBuilder &Out) const override {
    Out.add(ir::yieldBuffer(Ctx.posName(K), Ctx.posName(K),
                            ir::add(ParentSize, ir::intImm(1))));
    Out.add(ir::yieldBuffer(Ctx.crdName(K), Ctx.crdName(K),
                            ir::load(Ctx.posName(K), ParentSize)));
  }

private:
  std::string scanVar() const { return "s" + std::to_string(K); }
  std::string wsStamp() const { return "ws" + std::to_string(K) + "_stamp"; }
  std::string wsPos() const { return "ws" + std::to_string(K) + "_pos"; }
  std::string rankName() const { return "B" + std::to_string(K) + "_rnk"; }
  std::string rankLoopVar(int D) const {
    return "r" + std::to_string(K) + "d" + std::to_string(D);
  }

  bool Dedup;
  bool Ranked;
  bool Sorted;
  bool Hashed;
  int Order;
};

//===----------------------------------------------------------------------===//
// singleton
//===----------------------------------------------------------------------===//

class SingletonLevel : public LevelFormat {
public:
  using LevelFormat::LevelFormat;

  /// Position is a pure function of (parent, coords); see LevelFormat.
  bool insertIsParallelSafe(const AsmCtx &) const override { return true; }

  ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const override {
    (void)Ctx;
    return ParentSize;
  }

  void emitInit(AsmCtx &Ctx, ir::Expr ParentSize,
                ir::BlockBuilder &Out) const override {
    // Padded singleton levels (ELL) zero-initialize so padding slots hold
    // valid coordinates (Figure 7's calloc).
    Out.add(ir::alloc(Ctx.crdName(K), ir::ScalarKind::Int, ParentSize,
                      Spec.Padded));
  }

  ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                   ir::BlockBuilder &Out) const override {
    (void)Ctx;
    (void)Out;
    return Env.ParentPos;
  }

  void emitInsertCoord(AsmCtx &Ctx, const PosEnv &Env, ir::Expr Pk,
                       ir::BlockBuilder &Out) const override {
    Out.add(ir::store(Ctx.crdName(K), Pk,
                      Env.DstCoords[static_cast<size_t>(Spec.Dim)]));
  }

  void emitYield(AsmCtx &Ctx, ir::Expr ParentSize,
                 ir::BlockBuilder &Out) const override {
    Out.add(ir::yieldBuffer(Ctx.crdName(K), Ctx.crdName(K), ParentSize));
  }
};

//===----------------------------------------------------------------------===//
// squeezed
//===----------------------------------------------------------------------===//

class SqueezedLevel : public LevelFormat {
public:
  using LevelFormat::LevelFormat;

  /// Position is a pure function of (parent, coords); see LevelFormat.
  bool insertIsParallelSafe(const AsmCtx &) const override { return true; }

  std::vector<query::Query> queries() const override {
    query::Query Q;
    Q.GroupDims = {Spec.Dim};
    Q.Aggs = {query::Agg{query::AggKind::Id, {}, "nz"}};
    return {Q};
  }

  ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const override {
    return ir::mul(ParentSize, ir::var(Ctx.paramVar(K)));
  }

  void emitInit(AsmCtx &Ctx, ir::Expr ParentSize,
                ir::BlockBuilder &Out) const override {
    (void)ParentSize;
    // Build perm: the ascending list of coordinates whose slice is nonzero
    // (Figure 11, squeezed init_coords).
    QueryResultRef Nz = Ctx.Result(K, "nz");
    std::string KVar = Ctx.paramVar(K);
    std::string O = "o" + std::to_string(K);
    ir::Expr Extent = Ctx.dimExtent(Spec.Dim);
    ir::Expr Lo = Ctx.dimLo(Spec.Dim);
    Out.add(ir::alloc(Ctx.permName(K), ir::ScalarKind::Int, Extent, false));
    Out.add(ir::decl(KVar, ir::intImm(0)));
    ir::BlockBuilder Body;
    Body.add(ir::store(Ctx.permName(K), ir::var(KVar),
                       ir::add(ir::var(O), Lo)));
    Body.add(ir::assign(KVar, ir::add(ir::var(KVar), ir::intImm(1))));
    Out.add(ir::forRange(
        O, ir::intImm(0), Extent,
        ir::ifThen(ir::load(Nz.Buffer, ir::var(O), Nz.Elem), Body.build())));
  }

  void emitInitPos(AsmCtx &Ctx, ir::Expr ParentSize,
                   ir::BlockBuilder &Out) const override {
    (void)ParentSize;
    // rperm inverts perm for O(1) get_pos (Figure 6a lines 16-19).
    std::string S = "s" + std::to_string(K);
    Out.add(ir::alloc(rperm(Ctx), ir::ScalarKind::Int,
                      Ctx.dimExtent(Spec.Dim), false));
    Out.add(ir::forRange(
        S, ir::intImm(0), ir::var(Ctx.paramVar(K)),
        ir::store(rperm(Ctx),
                  ir::sub(ir::load(Ctx.permName(K), ir::var(S)),
                          Ctx.dimLo(Spec.Dim)),
                  ir::var(S))));
  }

  ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                   ir::BlockBuilder &Out) const override {
    (void)Out;
    ir::Expr Rel = ir::sub(Env.DstCoords[static_cast<size_t>(Spec.Dim)],
                           Ctx.dimLo(Spec.Dim));
    return ir::add(ir::mul(Env.ParentPos, ir::var(Ctx.paramVar(K))),
                   ir::load(rperm(Ctx), Rel));
  }

  void emitFinalize(AsmCtx &Ctx, ir::Expr ParentSize,
                    ir::BlockBuilder &Out) const override {
    (void)ParentSize;
    Out.add(ir::freeBuffer(rperm(Ctx)));
  }

  void emitYield(AsmCtx &Ctx, ir::Expr ParentSize,
                 ir::BlockBuilder &Out) const override {
    (void)ParentSize;
    Out.add(ir::yieldBuffer(Ctx.permName(K), Ctx.permName(K),
                            ir::var(Ctx.paramVar(K))));
    Out.add(ir::yieldScalar("B" + std::to_string(K) + "_param",
                            ir::var(Ctx.paramVar(K))));
  }

private:
  std::string rperm(const AsmCtx &) const {
    return "B" + std::to_string(K) + "_rperm";
  }
};

//===----------------------------------------------------------------------===//
// sliced
//===----------------------------------------------------------------------===//

class SlicedLevel : public LevelFormat {
public:
  using LevelFormat::LevelFormat;

  /// Position is a pure function of (parent, coords); see LevelFormat.
  bool insertIsParallelSafe(const AsmCtx &) const override { return true; }

  std::vector<query::Query> queries() const override {
    query::Query Q;
    Q.Aggs = {query::Agg{query::AggKind::Max, {Spec.Dim}, "max_crd"}};
    return {Q};
  }

  ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const override {
    return ir::mul(ParentSize, ir::var(Ctx.paramVar(K)));
  }

  void emitInit(AsmCtx &Ctx, ir::Expr ParentSize,
                ir::BlockBuilder &Out) const override {
    (void)ParentSize;
    // K = max_crd + 1 (Figure 7's sliced init_coords). The decoded query
    // value is -1 on an all-empty tensor, giving K = 0.
    QueryResultRef MaxCrd = Ctx.Result(K, "max_crd");
    Out.add(ir::decl(Ctx.paramVar(K),
                     ir::add(readQueryValue(MaxCrd, {}), ir::intImm(1))));
  }

  ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                   ir::BlockBuilder &Out) const override {
    (void)Out;
    return ir::add(ir::mul(Env.ParentPos, ir::var(Ctx.paramVar(K))),
                   Env.DstCoords[static_cast<size_t>(Spec.Dim)]);
  }

  void emitYield(AsmCtx &Ctx, ir::Expr ParentSize,
                 ir::BlockBuilder &Out) const override {
    (void)ParentSize;
    Out.add(ir::yieldScalar("B" + std::to_string(K) + "_param",
                            ir::var(Ctx.paramVar(K))));
  }
};

//===----------------------------------------------------------------------===//
// skyline
//===----------------------------------------------------------------------===//

class SkylineLevel : public LevelFormat {
public:
  using LevelFormat::LevelFormat;

  /// Position is a pure function of (parent, coords); see LevelFormat.
  bool insertIsParallelSafe(const AsmCtx &) const override { return true; }

  std::vector<query::Query> queries() const override {
    query::Query Q;
    for (int D = 0; D < Spec.Dim; ++D)
      Q.GroupDims.push_back(D);
    Q.Aggs = {query::Agg{query::AggKind::Min, {Spec.Dim}, "w"}};
    return {Q};
  }

  bool needsEdgeInsertion() const override { return true; }

  ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const override {
    return ir::load(Ctx.posName(K), ParentSize);
  }

  void emitInit(AsmCtx &Ctx, ir::Expr ParentSize,
                ir::BlockBuilder &Out) const override {
    // pos[p+1] = pos[p] + max(i - w + 1, 0): stores all components between
    // the first nonzero (w) and the diagonal (Figure 11, banded). Rows
    // without nonzeros decode w past the diagonal, so the count is 0.
    std::string Pos = Ctx.posName(K);
    QueryResultRef W = Ctx.Result(K, "w");
    auto rowCount = [&](const std::vector<ir::Expr> &Coords) {
      ir::Expr I = Coords.back();
      return ir::max(
          ir::add(ir::sub(I, readQueryValue(W, Coords)), ir::intImm(1)),
          ir::intImm(0));
    };
    if (!Ctx.ForceUnseqEdges) {
      Out.add(ir::alloc(Pos, ir::ScalarKind::Int,
                        ir::add(ParentSize, ir::intImm(1)), false));
      Out.add(ir::store(Pos, ir::intImm(0), ir::intImm(0)));
      Out.add(Ctx.ParentLoop(
          K, [&](ir::Expr P, const std::vector<ir::Expr> &Coords) {
            return ir::store(Pos, ir::add(P, ir::intImm(1)),
                             ir::add(ir::load(Pos, P), rowCount(Coords)));
          }));
    } else {
      Out.add(ir::alloc(Pos, ir::ScalarKind::Int,
                        ir::add(ParentSize, ir::intImm(1)), true));
      Out.add(Ctx.ParentLoop(
          K, [&](ir::Expr P, const std::vector<ir::Expr> &Coords) {
            return ir::store(Pos, ir::add(P, ir::intImm(1)),
                             rowCount(Coords));
          }));
      Out.add(ir::scan(Pos, ir::add(ParentSize, ir::intImm(1)),
                       ir::ScanKind::Inclusive));
    }
  }

  ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                   ir::BlockBuilder &Out) const override {
    (void)Out;
    // get_pos = pos[p+1] + j - i - 1 (avoids re-reading w; Figure 11).
    ir::Expr J = Env.DstCoords[static_cast<size_t>(Spec.Dim)];
    ir::Expr I = Env.DstCoords[static_cast<size_t>(Spec.Dim) - 1];
    return ir::sub(
        ir::add(ir::load(Ctx.posName(K),
                         ir::add(Env.ParentPos, ir::intImm(1))),
                ir::sub(J, I)),
        ir::intImm(1));
  }

  void emitYield(AsmCtx &Ctx, ir::Expr ParentSize,
                 ir::BlockBuilder &Out) const override {
    Out.add(ir::yieldBuffer(Ctx.posName(K), Ctx.posName(K),
                            ir::add(ParentSize, ir::intImm(1))));
  }
};

//===----------------------------------------------------------------------===//
// offset
//===----------------------------------------------------------------------===//

class OffsetLevel : public LevelFormat {
public:
  using LevelFormat::LevelFormat;

  /// Position is a pure function of (parent, coords); see LevelFormat.
  bool insertIsParallelSafe(const AsmCtx &) const override { return true; }

  ir::Expr getSize(AsmCtx &Ctx, ir::Expr ParentSize) const override {
    (void)Ctx;
    return ParentSize;
  }

  ir::Expr emitPos(AsmCtx &Ctx, const PosEnv &Env,
                   ir::BlockBuilder &Out) const override {
    (void)Ctx;
    (void)Out;
    return Env.ParentPos;
  }
};

} // namespace

std::unique_ptr<LevelFormat> LevelFormat::create(const LevelSpec &Spec, int K,
                                                 bool Dedup, bool Ranked,
                                                 bool Sorted, bool Hashed,
                                                 int Order) {
  CONVGEN_ASSERT(!Sorted || Spec.Kind == LevelKind::Compressed,
                 "sorted ranking applies to compressed levels only");
  switch (Spec.Kind) {
  case LevelKind::Dense:
    return std::make_unique<DenseLevel>(Spec, K);
  case LevelKind::Compressed:
    return std::make_unique<CompressedLevel>(Spec, K, Dedup, Ranked, Sorted,
                                             Hashed, Order);
  case LevelKind::Singleton:
    return std::make_unique<SingletonLevel>(Spec, K);
  case LevelKind::Squeezed:
    return std::make_unique<SqueezedLevel>(Spec, K);
  case LevelKind::Sliced:
    return std::make_unique<SlicedLevel>(Spec, K);
  case LevelKind::Skyline:
    return std::make_unique<SkylineLevel>(Spec, K);
  case LevelKind::Offset:
    return std::make_unique<OffsetLevel>(Spec, K);
  }
  convgen_unreachable("unknown level kind");
}
