//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "levels/SourceIterator.h"

#include "remap/Bounds.h"
#include "remap/Lower.h"
#include "support/Assert.h"

#include <set>

using namespace convgen;
using namespace convgen::levels;
using formats::LevelKind;
using formats::LevelSpec;

SourceIterator::SourceIterator(const formats::Format &Fmt, std::string Tensor)
    : Fmt(Fmt), Tensor(std::move(Tensor)) {
  std::vector<ir::Expr> SrcDims;
  for (int D = 0; D < Fmt.SrcOrder; ++D)
    SrcDims.push_back(ir::var("dim" + std::to_string(D)));
  for (const remap::DimBounds &B : remap::analyzeBounds(Fmt.Remap, SrcDims)) {
    DimExtent.push_back(B.Known ? B.extent() : nullptr);
    DimLo.push_back(B.Known ? B.Lo : nullptr);
  }
}

std::string SourceIterator::posName(int K) const {
  return Tensor + std::to_string(K) + "_pos";
}
std::string SourceIterator::crdName(int K) const {
  return Tensor + std::to_string(K) + "_crd";
}
std::string SourceIterator::permName(int K) const {
  return Tensor + std::to_string(K) + "_perm";
}
std::string SourceIterator::paramName(int K) const {
  return Tensor + std::to_string(K) + "_param";
}

std::string SourceIterator::coordVarName(int K) const {
  // Plain-variable dimensions reuse the canonical ivar name so emitted code
  // reads like the paper's examples (i, j); others get c<dim>.
  std::string IVar;
  if (remap::dimIsPlainVar(Fmt.Remap, static_cast<size_t>(K - 1), &IVar))
    return IVar;
  return "c" + std::to_string(K - 1);
}

std::vector<std::string>
SourceIterator::ivarsAvailableAtPrefix(int Levels) const {
  // An ivar is available if its inverse expression only references stored
  // dimensions d0..dLevels-1.
  std::set<std::string> Available(Fmt.Inverse.SrcVars.begin(),
                                  Fmt.Inverse.SrcVars.begin() + Levels);
  std::vector<std::string> Out;
  for (size_t T = 0; T < Fmt.Inverse.DstDims.size(); ++T) {
    remap::Expr E = remap::inlineLets(Fmt.Inverse.DstDims[T]);
    std::function<bool(const remap::Expr &)> AllIn =
        [&](const remap::Expr &Node) -> bool {
      switch (Node->Kind) {
      case remap::ExprKind::Const:
        return true;
      case remap::ExprKind::IVar:
        return Available.count(Node->Name) != 0;
      case remap::ExprKind::Binary:
        return AllIn(Node->A) && AllIn(Node->B);
      default:
        return false;
      }
    };
    if (AllIn(E))
      Out.push_back(Fmt.Remap.SrcVars[T]);
  }
  return Out;
}

std::vector<std::string> SourceIterator::orderedLoopIVars() const {
  std::vector<std::string> Out;
  for (size_t K = 0; K < Fmt.Levels.size(); ++K) {
    if (Fmt.Levels[K].Kind != LevelKind::Dense)
      break;
    std::string IVar;
    if (!remap::dimIsPlainVar(Fmt.Remap, K, &IVar))
      break;
    Out.push_back(IVar);
  }
  return Out;
}

std::vector<std::string> SourceIterator::lexOrderedIVars() const {
  std::vector<std::string> Out;
  for (size_t K = 0; K < Fmt.Levels.size(); ++K) {
    LevelKind Kind = Fmt.Levels[K].Kind;
    if (Kind != LevelKind::Dense && Kind != LevelKind::Compressed &&
        Kind != LevelKind::Singleton && Kind != LevelKind::Skyline)
      break;
    std::string IVar;
    if (!remap::dimIsPlainVar(Fmt.Remap, K, &IVar))
      break;
    Out.push_back(IVar);
  }
  return Out;
}

ir::Expr SourceIterator::storedSizeExpr() const {
  ir::Expr Size = ir::intImm(1);
  for (size_t K = 0; K < Fmt.Levels.size(); ++K) {
    int L = static_cast<int>(K) + 1;
    switch (Fmt.Levels[K].Kind) {
    case LevelKind::Dense: {
      ir::Expr Extent = dimExtentAt(L);
      if (!Extent)
        fatalError("source size: dense level with unknown extent");
      Size = ir::mul(Size, Extent);
      break;
    }
    case LevelKind::Compressed:
    case LevelKind::Skyline:
      Size = ir::load(posName(L), Size);
      break;
    case LevelKind::Squeezed:
    case LevelKind::Sliced:
      Size = ir::mul(Size, ir::var(paramName(L)));
      break;
    case LevelKind::Singleton:
    case LevelKind::Offset:
      break;
    }
  }
  return Size;
}

bool SourceIterator::suffixIsOneToOne(int L) const {
  for (size_t K = static_cast<size_t>(L - 1); K < Fmt.Levels.size(); ++K) {
    LevelKind Kind = Fmt.Levels[K].Kind;
    if (Kind != LevelKind::Singleton && Kind != LevelKind::Offset)
      return false;
  }
  return true;
}

ir::Expr SourceIterator::rowNnz(int L, const IterEnv &Env) const {
  CONVGEN_ASSERT(
      Fmt.Levels[static_cast<size_t>(L - 1)].Kind == LevelKind::Compressed,
      "rowNnz requires a compressed level");
  ir::Expr P = Env.LastPos;
  return ir::sub(ir::load(posName(L), ir::add(P, ir::intImm(1))),
                 ir::load(posName(L), P));
}

namespace {

/// Recursively emits the nest from level K (1-based) downward.
struct NestBuilder {
  const SourceIterator &Iter;
  const formats::Format &Fmt;
  const std::function<ir::Stmt(const IterEnv &)> &Body;
  const std::map<int, std::function<ir::Stmt(const IterEnv &)>> &Prologues;
  int MaxLevels;
  bool GuardZeros;

  ir::Stmt emitLevel(int K, IterEnv Env);
  ir::Stmt finish(IterEnv Env);
};

ir::Stmt NestBuilder::finish(IterEnv Env) {
  // Recover canonical coordinates from the stored dimensions.
  remap::LowerEnv LEnv;
  for (size_t D = 0; D < Env.DstCoords.size(); ++D)
    LEnv.IVars[Fmt.Inverse.SrcVars[D]] = Env.DstCoords[D];
  for (size_t T = 0; T < Fmt.Inverse.DstDims.size(); ++T) {
    const remap::DimExpr &Dim = Fmt.Inverse.DstDims[T];
    bool Usable = true;
    remap::Expr Inlined = remap::inlineLets(Dim);
    std::function<void(const remap::Expr &)> Check =
        [&](const remap::Expr &Node) {
          if (Node->Kind == remap::ExprKind::IVar &&
              !LEnv.IVars.count(Node->Name))
            Usable = false;
          if (Node->Kind == remap::ExprKind::Counter)
            Usable = false;
          if (Node->A)
            Check(Node->A);
          if (Node->B)
            Check(Node->B);
        };
    Check(Inlined);
    if (Usable)
      Env.Canonical[Fmt.Remap.SrcVars[T]] = remap::lowerExpr(Inlined, LEnv);
  }

  ir::Stmt Inner = Body(Env);
  if (GuardZeros && MaxLevels == static_cast<int>(Fmt.Levels.size()))
    Inner = ir::ifThen(
        ir::ne(ir::load("A_vals", Env.LastPos, ir::ScalarKind::Float),
               ir::floatImm(0)),
        Inner);
  return Inner;
}

ir::Stmt NestBuilder::emitLevel(int K, IterEnv Env) {
  if (K > MaxLevels)
    return finish(Env);

  const LevelSpec &Spec = Fmt.Levels[static_cast<size_t>(K - 1)];
  ir::Expr Parent = Env.LastPos;
  std::string CName = Iter.coordVarName(K);
  auto withPrologue = [&](IterEnv &NewEnv, ir::Stmt Rest) {
    auto It = Prologues.find(K);
    if (It == Prologues.end())
      return Rest;
    ir::BlockBuilder B;
    B.add(It->second(NewEnv));
    B.add(Rest);
    return B.build();
  };

  switch (Spec.Kind) {
  case LevelKind::Dense: {
    ir::Expr Extent = Iter.dimExtentAt(K);
    ir::Expr Lo = Iter.dimLoAt(K);
    if (!Extent)
      fatalError("source iteration: dense level with unknown extent");
    std::string LoopVar = CName;
    ir::Expr Coord = ir::var(LoopVar);
    int64_t LoC = 0;
    bool ZeroLo = ir::isIntConst(Lo, &LoC) && LoC == 0;
    IterEnv NewEnv = Env;
    NewEnv.DstCoords.push_back(ZeroLo ? Coord : ir::add(Coord, Lo));
    NewEnv.LastPos = ir::add(ir::mul(Parent, Extent), Coord);
    NewEnv.Positions.push_back(NewEnv.LastPos);
    return ir::forRange(LoopVar, ir::intImm(0), Extent,
                        withPrologue(NewEnv, emitLevel(K + 1, NewEnv)));
  }
  case LevelKind::Compressed: {
    std::string PVar = "p" + Iter.tensorName() + std::to_string(K);
    IterEnv NewEnv = Env;
    NewEnv.LastPos = ir::var(PVar);
    NewEnv.Positions.push_back(NewEnv.LastPos);
    ir::BlockBuilder LoopBody;
    LoopBody.add(ir::decl(CName, ir::load(Iter.crdName(K), ir::var(PVar))));
    NewEnv.DstCoords.push_back(ir::var(CName));
    LoopBody.add(withPrologue(NewEnv, emitLevel(K + 1, NewEnv)));
    return ir::forRange(
        PVar, ir::load(Iter.posName(K), Parent),
        ir::load(Iter.posName(K), ir::add(Parent, ir::intImm(1))),
        LoopBody.build());
  }
  case LevelKind::Singleton: {
    IterEnv NewEnv = Env;
    NewEnv.LastPos = Parent;
    NewEnv.Positions.push_back(Parent);
    ir::BlockBuilder Seq;
    Seq.add(ir::decl(CName, ir::load(Iter.crdName(K), Parent)));
    NewEnv.DstCoords.push_back(ir::var(CName));
    Seq.add(withPrologue(NewEnv, emitLevel(K + 1, NewEnv)));
    return Seq.build();
  }
  case LevelKind::Squeezed: {
    std::string SVar = "s" + Iter.tensorName() + std::to_string(K);
    ir::Expr KParam = ir::var(Iter.paramName(K));
    IterEnv NewEnv = Env;
    NewEnv.LastPos = ir::add(ir::mul(Parent, KParam), ir::var(SVar));
    NewEnv.Positions.push_back(NewEnv.LastPos);
    ir::BlockBuilder LoopBody;
    LoopBody.add(ir::decl(CName, ir::load(Iter.permName(K), ir::var(SVar))));
    NewEnv.DstCoords.push_back(ir::var(CName));
    LoopBody.add(withPrologue(NewEnv, emitLevel(K + 1, NewEnv)));
    return ir::forRange(SVar, ir::intImm(0), KParam, LoopBody.build());
  }
  case LevelKind::Sliced: {
    std::string SVar = CName;
    ir::Expr KParam = ir::var(Iter.paramName(K));
    IterEnv NewEnv = Env;
    NewEnv.DstCoords.push_back(ir::var(SVar));
    NewEnv.LastPos = ir::add(ir::mul(Parent, KParam), ir::var(SVar));
    NewEnv.Positions.push_back(NewEnv.LastPos);
    return ir::forRange(SVar, ir::intImm(0), KParam,
                        withPrologue(NewEnv, emitLevel(K + 1, NewEnv)));
  }
  case LevelKind::Skyline: {
    std::string PVar = "p" + Iter.tensorName() + std::to_string(K);
    IterEnv NewEnv = Env;
    NewEnv.LastPos = ir::var(PVar);
    NewEnv.Positions.push_back(NewEnv.LastPos);
    ir::BlockBuilder LoopBody;
    // j = p - pos[parent+1] + i + 1 (inverse of the level's get_pos).
    ir::Expr ParentCoord = Env.DstCoords.back();
    LoopBody.add(ir::decl(
        CName,
        ir::add(ir::sub(ir::var(PVar),
                        ir::load(Iter.posName(K),
                                 ir::add(Parent, ir::intImm(1)))),
                ir::add(ParentCoord, ir::intImm(1)))));
    NewEnv.DstCoords.push_back(ir::var(CName));
    LoopBody.add(withPrologue(NewEnv, emitLevel(K + 1, NewEnv)));
    return ir::forRange(
        PVar, ir::load(Iter.posName(K), Parent),
        ir::load(Iter.posName(K), ir::add(Parent, ir::intImm(1))),
        LoopBody.build());
  }
  case LevelKind::Offset: {
    const auto &Addends = Spec.AddendDims;
    IterEnv NewEnv = Env;
    NewEnv.DstCoords.push_back(
        ir::add(Env.DstCoords[static_cast<size_t>(Addends[0])],
                Env.DstCoords[static_cast<size_t>(Addends[1])]));
    NewEnv.LastPos = Parent;
    NewEnv.Positions.push_back(Parent);
    return withPrologue(NewEnv, emitLevel(K + 1, NewEnv));
  }
  }
  convgen_unreachable("unknown level kind");
}

} // namespace

ir::Stmt SourceIterator::build(
    const std::function<ir::Stmt(const IterEnv &)> &Body,
    const std::map<int, std::function<ir::Stmt(const IterEnv &)>>
        &LevelPrologue) const {
  NestBuilder NB{*this, Fmt, Body, LevelPrologue,
                 static_cast<int>(Fmt.Levels.size()), Fmt.PaddedVals};
  IterEnv Root;
  Root.LastPos = ir::intImm(0);
  return NB.emitLevel(1, Root);
}

ir::Stmt SourceIterator::buildPrefix(
    int Levels, const std::function<ir::Stmt(const IterEnv &)> &Body) const {
  CONVGEN_ASSERT(Levels <= static_cast<int>(Fmt.Levels.size()),
                 "prefix longer than the format");
  NestBuilder NB{*this, Fmt, Body, {}, Levels, false};
  IterEnv Root;
  Root.LastPos = ir::intImm(0);
  return NB.emitLevel(1, Root);
}

std::vector<ir::Param> SourceIterator::params() const {
  std::vector<ir::Param> Out;
  for (int D = 0; D < Fmt.SrcOrder; ++D)
    Out.push_back({"dim" + std::to_string(D), ir::ScalarKind::Int, false});
  for (size_t K = 0; K < Fmt.Levels.size(); ++K) {
    int L = static_cast<int>(K) + 1;
    switch (Fmt.Levels[K].Kind) {
    case LevelKind::Compressed:
      Out.push_back({posName(L), ir::ScalarKind::Int, true});
      Out.push_back({crdName(L), ir::ScalarKind::Int, true});
      break;
    case LevelKind::Singleton:
      Out.push_back({crdName(L), ir::ScalarKind::Int, true});
      break;
    case LevelKind::Squeezed:
      Out.push_back({permName(L), ir::ScalarKind::Int, true});
      Out.push_back({paramName(L), ir::ScalarKind::Int, false});
      break;
    case LevelKind::Sliced:
      Out.push_back({paramName(L), ir::ScalarKind::Int, false});
      break;
    case LevelKind::Skyline:
      Out.push_back({posName(L), ir::ScalarKind::Int, true});
      break;
    case LevelKind::Dense:
    case LevelKind::Offset:
      break;
    }
  }
  Out.push_back({Tensor + "_vals", ir::ScalarKind::Float, true});
  return Out;
}
