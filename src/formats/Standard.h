//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard format specifications shipped with the library — the matrix
/// classics plus the order-general COO and CSF families — and a registry
/// through which user-defined formats participate in conversion generation
/// on equal footing (the paper's extensibility claim: one specification per
/// format, not per format pair).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_FORMATS_STANDARD_H
#define CONVGEN_FORMATS_STANDARD_H

#include "formats/Format.h"

#include <optional>
#include <string>
#include <vector>

namespace convgen {
namespace formats {

/// COO of any order, sorted lexicographically: compressed(non-unique) root
/// level + one singleton level per remaining mode. Order 2 keeps the name
/// "coo"; higher orders are named "coo3", "coo4", ... Supports efficient
/// appends; stores redundant root coordinates.
Format makeCOO(int Order = 2);

/// CSR: dense rows + compressed columns.
Format makeCSR();

/// CSC: column-major CSR; remapping (i,j) -> (j,i).
Format makeCSC();

/// DIA: nonzeros grouped by diagonal; remapping (i,j) -> (j-i,i,j) with
/// squeezed offsets, dense rows, and an implicit offset column level.
/// Values are padded to K*M.
Format makeDIA();

/// ELL: up to one nonzero per row per slice; remapping (i,j) -> (#i,i,j)
/// with a sliced level, dense rows, and a padded singleton column level.
Format makeELL();

/// BCSR with BlockRows x BlockCols dense blocks; remapping
/// (i,j) -> (i/R, j/C, i%R, j%C).
Format makeBCSR(int BlockRows, int BlockCols);

/// Lower-triangular skyline (profile) storage: for every row, all
/// components from the first nonzero through the diagonal are stored.
Format makeSKY();

/// CSF (compressed sparse fiber) of the given order: every level
/// compressed and unique, the paper's canonical higher-order format.
/// Order 3 keeps the name "csf"; other orders are "csf2", "csf4", ...
Format makeCSF(int Order = 3);

/// CSF with a permuted mode order: mode ModeOrder[k] is stored at level k,
/// expressed through the remap language (e.g. {1,0,2} gives
/// (i,j,k) -> (j,i,k)). Named "csf_<digits>", e.g. "csf_102". The identity
/// permutation collapses to makeCSF.
Format makeCSFPermuted(const std::vector<int> &ModeOrder);

/// All order-2 formats above with default parameters (BCSR uses 4x4), in a
/// stable order; useful for all-pairs conversion tests.
std::vector<Format> allStandardFormats();

/// The order-3 registry counterpart: coo3, csf, and the mode-permuted
/// csf_102 / csf_021, in a stable order.
std::vector<Format> standardOrder3Formats();

/// Looks up a standard format by name: the matrix classics ("coo", "csr",
/// "csc", "dia", "ell", "bcsr", "sky"), the order-general spellings
/// ("coo3", "coo4", ..., "csf", "csf4", ...), and permuted CSF
/// ("csf_102"). Returns std::nullopt on unknown names — never aborts.
std::optional<Format> standardFormat(const std::string &Name);

/// Convenience wrapper for callers holding a known-good name; aborts with
/// a diagnostic naming the unknown format.
Format standardFormatOrDie(const std::string &Name);

} // namespace formats
} // namespace convgen

#endif // CONVGEN_FORMATS_STANDARD_H
