//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard matrix format specifications shipped with the library, and
/// a registry through which user-defined formats participate in conversion
/// generation on equal footing (the paper's extensibility claim: one
/// specification per format, not per format pair).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_FORMATS_STANDARD_H
#define CONVGEN_FORMATS_STANDARD_H

#include "formats/Format.h"

#include <vector>

namespace convgen {
namespace formats {

/// COO, sorted row-major: compressed(non-unique) row level + singleton
/// column level. Supports efficient appends; stores redundant row coords.
Format makeCOO();

/// CSR: dense rows + compressed columns.
Format makeCSR();

/// CSC: column-major CSR; remapping (i,j) -> (j,i).
Format makeCSC();

/// DIA: nonzeros grouped by diagonal; remapping (i,j) -> (j-i,i,j) with
/// squeezed offsets, dense rows, and an implicit offset column level.
/// Values are padded to K*M.
Format makeDIA();

/// ELL: up to one nonzero per row per slice; remapping (i,j) -> (#i,i,j)
/// with a sliced level, dense rows, and a padded singleton column level.
Format makeELL();

/// BCSR with BlockRows x BlockCols dense blocks; remapping
/// (i,j) -> (i/R, j/C, i%R, j%C).
Format makeBCSR(int BlockRows, int BlockCols);

/// Lower-triangular skyline (profile) storage: for every row, all
/// components from the first nonzero through the diagonal are stored.
Format makeSKY();

/// All formats above with default parameters (BCSR uses 4x4), in a stable
/// order; useful for all-pairs conversion tests.
std::vector<Format> allStandardFormats();

/// Looks up a standard format by name ("coo", "csr", "csc", "dia", "ell",
/// "bcsr", "sky"); aborts on unknown names.
Format standardFormat(const std::string &Name);

} // namespace formats
} // namespace convgen

#endif // CONVGEN_FORMATS_STANDARD_H
