//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Standard.h"

#include "remap/RemapParser.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

#include <cctype>

using namespace convgen;
using namespace convgen::formats;

namespace {

/// Canonical index-variable names for order-N remapping strings; matches
/// the paper's (i, j, k) spelling for the common orders.
const char *const kIVarNames[] = {"i", "j", "k", "l", "m", "n"};

std::string ivarList(int Order) {
  std::vector<std::string> Vars(kIVarNames, kIVarNames + Order);
  return "(" + join(Vars, ",") + ")";
}

std::string dvarList(int Order) {
  std::vector<std::string> Vars;
  for (int D = 0; D < Order; ++D)
    Vars.push_back("d" + std::to_string(D));
  return "(" + join(Vars, ",") + ")";
}

/// Identity remapping pair over the first \p Order canonical variables.
void setIdentityRemap(Format &F, int Order) {
  F.SrcOrder = Order;
  F.Remap =
      remap::parseRemapOrDie(ivarList(Order) + " -> " + ivarList(Order));
  F.Inverse =
      remap::parseRemapOrDie(dvarList(Order) + " -> " + dvarList(Order));
}

} // namespace

Format formats::makeCOO(int Order) {
  CONVGEN_ASSERT(Order >= 2 && Order <= static_cast<int>(sizeof(kIVarNames) /
                                                         sizeof(*kIVarNames)),
                 "COO order out of range");
  Format F;
  F.Name = Order == 2 ? "coo" : strfmt("coo%d", Order);
  setIdentityRemap(F, Order);
  F.Levels = {
      LevelSpec{LevelKind::Compressed, 0, /*Unique=*/false, false, {-1, -1}}};
  for (int D = 1; D < Order; ++D)
    F.Levels.push_back(LevelSpec{LevelKind::Singleton, D, true, false,
                                 {-1, -1}});
  validateFormat(F);
  return F;
}

Format formats::makeCSF(int Order) {
  CONVGEN_ASSERT(Order >= 2 && Order <= static_cast<int>(sizeof(kIVarNames) /
                                                         sizeof(*kIVarNames)),
                 "CSF order out of range");
  Format F;
  F.Name = Order == 3 ? "csf" : strfmt("csf%d", Order);
  setIdentityRemap(F, Order);
  for (int D = 0; D < Order; ++D)
    F.Levels.push_back(LevelSpec{LevelKind::Compressed, D, true, false,
                                 {-1, -1}});
  validateFormat(F);
  return F;
}

Format formats::makeCSFPermuted(const std::vector<int> &ModeOrder) {
  int Order = static_cast<int>(ModeOrder.size());
  CONVGEN_ASSERT(Order >= 2 && Order <= static_cast<int>(sizeof(kIVarNames) /
                                                         sizeof(*kIVarNames)),
                 "CSF order out of range");
  bool Identity = true;
  std::vector<bool> Seen(static_cast<size_t>(Order), false);
  for (int P = 0; P < Order; ++P) {
    int M = ModeOrder[static_cast<size_t>(P)];
    CONVGEN_ASSERT(M >= 0 && M < Order && !Seen[static_cast<size_t>(M)],
                   "CSF mode order must be a permutation of 0..N-1");
    Seen[static_cast<size_t>(M)] = true;
    Identity = Identity && M == P;
  }
  if (Identity)
    return makeCSF(Order);

  Format F;
  F.SrcOrder = Order;
  F.Name = "csf_";
  // Remap: level p stores canonical mode ModeOrder[p]; the inverse reads
  // canonical mode m back from the level storing it.
  std::vector<std::string> Stored, InverseDims;
  InverseDims.resize(static_cast<size_t>(Order));
  for (int P = 0; P < Order; ++P) {
    int M = ModeOrder[static_cast<size_t>(P)];
    F.Name += std::to_string(M);
    Stored.push_back(kIVarNames[M]);
    InverseDims[static_cast<size_t>(M)] = "d" + std::to_string(P);
  }
  F.Remap = remap::parseRemapOrDie(ivarList(Order) + " -> (" +
                                   join(Stored, ",") + ")");
  F.Inverse = remap::parseRemapOrDie(dvarList(Order) + " -> (" +
                                     join(InverseDims, ",") + ")");
  for (int D = 0; D < Order; ++D)
    F.Levels.push_back(LevelSpec{LevelKind::Compressed, D, true, false,
                                 {-1, -1}});
  validateFormat(F);
  return F;
}

Format formats::makeCSR() {
  Format F;
  F.Name = "csr";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d0,d1)");
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Compressed, 1, true, false, {-1, -1}},
  };
  validateFormat(F);
  return F;
}

Format formats::makeCSC() {
  Format F;
  F.Name = "csc";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (j,i)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d1,d0)");
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Compressed, 1, true, false, {-1, -1}},
  };
  validateFormat(F);
  return F;
}

Format formats::makeDIA() {
  Format F;
  F.Name = "dia";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (j-i,i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1,d2) -> (d1,d2)");
  F.Levels = {
      LevelSpec{LevelKind::Squeezed, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 1, true, false, {-1, -1}},
      LevelSpec{LevelKind::Offset, 2, true, false, {0, 1}},
  };
  F.PaddedVals = true;
  validateFormat(F);
  return F;
}

Format formats::makeELL() {
  Format F;
  F.Name = "ell";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (k=#i in k,i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1,d2) -> (d1,d2)");
  F.Levels = {
      LevelSpec{LevelKind::Sliced, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 1, true, false, {-1, -1}},
      LevelSpec{LevelKind::Singleton, 2, true, /*Padded=*/true, {-1, -1}},
  };
  F.PaddedVals = true;
  validateFormat(F);
  return F;
}

Format formats::makeBCSR(int BlockRows, int BlockCols) {
  CONVGEN_ASSERT(BlockRows > 0 && BlockCols > 0,
                 "BCSR block dimensions must be positive");
  Format F;
  F.Name = strfmt("bcsr%dx%d", BlockRows, BlockCols);
  F.Remap = remap::parseRemapOrDie(
      strfmt("(i,j) -> (i/%d,j/%d,i%%%d,j%%%d)", BlockRows, BlockCols,
             BlockRows, BlockCols));
  F.Inverse = remap::parseRemapOrDie(
      strfmt("(d0,d1,d2,d3) -> (d0*%d+d2,d1*%d+d3)", BlockRows, BlockCols));
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Compressed, 1, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 2, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 3, true, false, {-1, -1}},
  };
  F.PaddedVals = true;
  F.StaticParams = {BlockRows, BlockCols};
  validateFormat(F);
  return F;
}

Format formats::makeSKY() {
  Format F;
  F.Name = "sky";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d0,d1)");
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Skyline, 1, true, false, {-1, -1}},
  };
  F.PaddedVals = true;
  validateFormat(F);
  return F;
}

std::vector<Format> formats::allStandardFormats() {
  // Placed after makeSKY; see header for the stable ordering contract.
  return {makeCOO(), makeCSR(),      makeCSC(), makeDIA(),
          makeELL(), makeBCSR(4, 4), makeSKY()};
}

std::vector<Format> formats::standardOrder3Formats() {
  return {makeCOO(3), makeCSF(3), makeCSFPermuted({1, 0, 2}),
          makeCSFPermuted({0, 2, 1})};
}

namespace {

/// Parses a small positive integer suffix ("3" in "coo3"); -1 on failure.
int parseOrderSuffix(const std::string &Suffix) {
  if (Suffix.empty() || Suffix.size() > 1 || !std::isdigit(Suffix[0]))
    return -1;
  return Suffix[0] - '0';
}

} // namespace

std::optional<Format> formats::standardFormat(const std::string &Name) {
  if (Name == "coo")
    return makeCOO();
  if (Name == "csr")
    return makeCSR();
  if (Name == "csc")
    return makeCSC();
  if (Name == "dia")
    return makeDIA();
  if (Name == "ell")
    return makeELL();
  if (Name == "bcsr")
    return makeBCSR(4, 4);
  if (Name == "sky")
    return makeSKY();
  if (Name == "csf")
    return makeCSF(3);
  constexpr int MaxOrder = sizeof(kIVarNames) / sizeof(*kIVarNames);
  if (Name.rfind("coo", 0) == 0) {
    int Order = parseOrderSuffix(Name.substr(3));
    if (Order >= 2 && Order <= MaxOrder)
      return makeCOO(Order);
    return std::nullopt;
  }
  if (Name.rfind("csf_", 0) == 0) {
    // Mode-permuted CSF: one digit per level, e.g. "csf_102".
    std::vector<int> ModeOrder;
    std::vector<bool> Seen(static_cast<size_t>(MaxOrder), false);
    for (char C : Name.substr(4)) {
      if (!std::isdigit(C))
        return std::nullopt;
      int M = C - '0';
      if (M >= static_cast<int>(Name.size()) - 4 || M >= MaxOrder ||
          Seen[static_cast<size_t>(M)])
        return std::nullopt;
      Seen[static_cast<size_t>(M)] = true;
      ModeOrder.push_back(M);
    }
    if (ModeOrder.size() < 2 ||
        ModeOrder.size() > static_cast<size_t>(MaxOrder))
      return std::nullopt;
    return makeCSFPermuted(ModeOrder);
  }
  if (Name.rfind("csf", 0) == 0) {
    int Order = parseOrderSuffix(Name.substr(3));
    if (Order >= 2 && Order <= MaxOrder)
      return makeCSF(Order);
    return std::nullopt;
  }
  return std::nullopt;
}

Format formats::standardFormatOrDie(const std::string &Name) {
  if (std::optional<Format> F = standardFormat(Name))
    return *F;
  fatalError(("unknown standard format '" + Name + "'").c_str());
}
