//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Standard.h"

#include "remap/RemapParser.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::formats;

Format formats::makeCOO() {
  Format F;
  F.Name = "coo";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d0,d1)");
  F.Levels = {
      LevelSpec{LevelKind::Compressed, 0, /*Unique=*/false, false, {-1, -1}},
      LevelSpec{LevelKind::Singleton, 1, true, false, {-1, -1}},
  };
  validateFormat(F);
  return F;
}

Format formats::makeCSR() {
  Format F;
  F.Name = "csr";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d0,d1)");
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Compressed, 1, true, false, {-1, -1}},
  };
  validateFormat(F);
  return F;
}

Format formats::makeCSC() {
  Format F;
  F.Name = "csc";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (j,i)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d1,d0)");
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Compressed, 1, true, false, {-1, -1}},
  };
  validateFormat(F);
  return F;
}

Format formats::makeDIA() {
  Format F;
  F.Name = "dia";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (j-i,i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1,d2) -> (d1,d2)");
  F.Levels = {
      LevelSpec{LevelKind::Squeezed, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 1, true, false, {-1, -1}},
      LevelSpec{LevelKind::Offset, 2, true, false, {0, 1}},
  };
  F.PaddedVals = true;
  validateFormat(F);
  return F;
}

Format formats::makeELL() {
  Format F;
  F.Name = "ell";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (k=#i in k,i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1,d2) -> (d1,d2)");
  F.Levels = {
      LevelSpec{LevelKind::Sliced, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 1, true, false, {-1, -1}},
      LevelSpec{LevelKind::Singleton, 2, true, /*Padded=*/true, {-1, -1}},
  };
  F.PaddedVals = true;
  validateFormat(F);
  return F;
}

Format formats::makeBCSR(int BlockRows, int BlockCols) {
  CONVGEN_ASSERT(BlockRows > 0 && BlockCols > 0,
                 "BCSR block dimensions must be positive");
  Format F;
  F.Name = strfmt("bcsr%dx%d", BlockRows, BlockCols);
  F.Remap = remap::parseRemapOrDie(
      strfmt("(i,j) -> (i/%d,j/%d,i%%%d,j%%%d)", BlockRows, BlockCols,
             BlockRows, BlockCols));
  F.Inverse = remap::parseRemapOrDie(
      strfmt("(d0,d1,d2,d3) -> (d0*%d+d2,d1*%d+d3)", BlockRows, BlockCols));
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Compressed, 1, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 2, true, false, {-1, -1}},
      LevelSpec{LevelKind::Dense, 3, true, false, {-1, -1}},
  };
  F.PaddedVals = true;
  F.StaticParams = {BlockRows, BlockCols};
  validateFormat(F);
  return F;
}

Format formats::makeSKY() {
  Format F;
  F.Name = "sky";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (i,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d0,d1)");
  F.Levels = {
      LevelSpec{LevelKind::Dense, 0, true, false, {-1, -1}},
      LevelSpec{LevelKind::Skyline, 1, true, false, {-1, -1}},
  };
  F.PaddedVals = true;
  validateFormat(F);
  return F;
}

std::vector<Format> formats::allStandardFormats() {
  // Placed after makeSKY; see header for the stable ordering contract.
  return {makeCOO(), makeCSR(),      makeCSC(), makeDIA(),
          makeELL(), makeBCSR(4, 4), makeSKY()};
}

Format formats::standardFormat(const std::string &Name) {
  if (Name == "coo")
    return makeCOO();
  if (Name == "csr")
    return makeCSR();
  if (Name == "csc")
    return makeCSC();
  if (Name == "dia")
    return makeDIA();
  if (Name == "ell")
    return makeELL();
  if (Name == "bcsr")
    return makeBCSR(4, 4);
  if (Name == "sky")
    return makeSKY();
  fatalError(("unknown standard format '" + Name + "'").c_str());
}
