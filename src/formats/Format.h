//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tensor format descriptions. Following the paper (§2, §3), a sparse
/// tensor format is specified by
///
///   * a coordinate remapping that maps canonical coordinates to the
///     (possibly higher-order) stored dimensions, capturing how the format
///     groups and orders nonzeros (e.g. DIA: `(i,j) -> (j-i,i,j)`), and
///   * one level format per stored dimension, describing the data
///     structure that encodes that dimension (dense, compressed, singleton,
///     squeezed, sliced, skyline, or offset).
///
/// The inverse mapping (stored dimensions back to canonical coordinates) is
/// part of the specification so that generated code can iterate a tensor in
/// any source format and recover canonical coordinates to feed the target
/// format's remapping.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_FORMATS_FORMAT_H
#define CONVGEN_FORMATS_FORMAT_H

#include "remap/Remap.h"
#include "support/Status.h"

#include <array>
#include <string>
#include <vector>

namespace convgen {
namespace formats {

/// The level formats the library implements. Dense/Compressed/Singleton are
/// the classic trio from Chou et al. [2018]; Squeezed stores DIA's set of
/// nonzero diagonal offsets in a perm array; Sliced stores ELL's K implicit
/// slices; Skyline stores the banded column structure of the skyline
/// format; Offset stores a dimension whose coordinate is the sum of two
/// ancestor coordinates (DIA's column dimension, j = k + i).
enum class LevelKind : uint8_t {
  Dense,
  Compressed,
  Singleton,
  Squeezed,
  Sliced,
  Skyline,
  Offset,
};

const char *levelKindName(LevelKind Kind);

struct LevelSpec {
  LevelKind Kind;
  int Dim = 0; ///< The destination (remapped) dimension this level stores.
  /// Compressed only: false permits duplicate coordinates under one parent
  /// (COO's row level stores every nonzero's row).
  bool Unique = true;
  /// Singleton only: coordinate array is zero-initialized because padding
  /// slots must hold valid coordinates (ELL).
  bool Padded = false;
  /// Offset only: the two destination dimensions whose coordinates sum to
  /// this level's coordinate.
  std::array<int, 2> AddendDims = {-1, -1};
};

/// A complete tensor format specification.
struct Format {
  std::string Name;
  /// Canonical order: the number of coordinate modes of the tensors this
  /// format stores (2 for matrices, 3 for the coo3/csf families, any N the
  /// remapping names source variables for).
  int SrcOrder = 2;
  /// Canonical coordinates -> stored dimensions (identity for COO/CSR).
  remap::RemapStmt Remap;
  /// Stored dimensions -> canonical coordinates. Expressed as a remap
  /// statement over variables d0..d{n-1} so the parser can be reused; its
  /// DstDims are the canonical coordinate expressions in order.
  remap::RemapStmt Inverse;
  /// One level per stored dimension, outermost first.
  std::vector<LevelSpec> Levels;
  /// The values array contains explicit zero padding (DIA/ELL/BCSR/SKY).
  /// Iterating such a format as a conversion source filters zeros out.
  bool PaddedVals = false;
  /// Format-specific constants baked into the remapping (BCSR's block
  /// dimensions), kept here so runtime builders need not re-derive them.
  std::vector<int64_t> StaticParams;

  int order() const { return static_cast<int>(Levels.size()); }

  /// True if level \p K (0-based) requires per-level runtime size metadata
  /// (Squeezed's and Sliced's K parameter).
  bool levelHasSizeParam(int K) const {
    return Levels[static_cast<size_t>(K)].Kind == LevelKind::Squeezed ||
           Levels[static_cast<size_t>(K)].Kind == LevelKind::Sliced;
  }

  /// Renders a one-line summary, e.g.
  /// "dia: (i,j) -> (j-i,i,j); squeezed,dense,offset; padded".
  std::string summary() const;
};

/// Checks internal consistency (arities, level dims, addends); returns
/// ErrorCode::InvalidArgument with a diagnostic on malformed
/// specifications. The checked form for user-supplied custom formats.
Status checkFormat(const Format &F);

/// checkFormat, aborting on failure. Called by the registry, whose formats
/// are known-good by construction.
void validateFormat(const Format &F);

} // namespace formats
} // namespace convgen

#endif // CONVGEN_FORMATS_FORMAT_H
