//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Format.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace convgen;
using namespace convgen::formats;

const char *formats::levelKindName(LevelKind Kind) {
  switch (Kind) {
  case LevelKind::Dense:
    return "dense";
  case LevelKind::Compressed:
    return "compressed";
  case LevelKind::Singleton:
    return "singleton";
  case LevelKind::Squeezed:
    return "squeezed";
  case LevelKind::Sliced:
    return "sliced";
  case LevelKind::Skyline:
    return "skyline";
  case LevelKind::Offset:
    return "offset";
  }
  convgen_unreachable("unknown level kind");
}

std::string Format::summary() const {
  std::vector<std::string> Kinds;
  Kinds.reserve(Levels.size());
  for (const LevelSpec &L : Levels) {
    std::string Kind = levelKindName(L.Kind);
    if (L.Kind == LevelKind::Compressed && !L.Unique)
      Kind += "(non-unique)";
    Kinds.push_back(Kind);
  }
  std::string Out =
      Name + ": " + remap::printRemap(Remap) + "; " + join(Kinds, ",");
  if (PaddedVals)
    Out += "; padded";
  return Out;
}

Status formats::checkFormat(const Format &F) {
  auto failFmt = [&](const std::string &Msg) {
    return Status::error(ErrorCode::InvalidArgument,
                         "format '" + F.Name + "': " + Msg);
  };
  if (F.Levels.empty())
    return failFmt("must have at least one level");
  if (static_cast<int>(F.Remap.srcOrder()) != F.SrcOrder)
    return failFmt("remap source arity does not match the canonical order");
  if (F.Remap.dstOrder() != F.Levels.size())
    return failFmt("one level per remapped dimension is required");
  if (static_cast<int>(F.Inverse.srcOrder()) != F.order())
    return failFmt("inverse must be over the stored dimensions d0..dn-1");
  if (static_cast<int>(F.Inverse.dstOrder()) != F.SrcOrder)
    return failFmt("inverse must produce one canonical coordinate per "
                   "source variable");
  for (size_t K = 0; K < F.Levels.size(); ++K) {
    const LevelSpec &L = F.Levels[K];
    if (L.Dim != static_cast<int>(K))
      return failFmt(strfmt("level %zu must store dimension %zu", K, K));
    if (L.Kind == LevelKind::Offset) {
      if (L.AddendDims[0] < 0 || L.AddendDims[1] < 0 ||
          L.AddendDims[0] >= static_cast<int>(K) ||
          L.AddendDims[1] >= static_cast<int>(K))
        return failFmt(
            "offset level addends must name two earlier dimensions");
    }
    if (L.Kind == LevelKind::Compressed && !L.Unique && K != 0)
      return failFmt("non-unique compressed levels are only supported at "
                     "the root (COO-style formats)");
    if (L.Kind == LevelKind::Skyline && K == 0)
      return failFmt("skyline levels derive their coordinates from the "
                     "parent level's and cannot be the root");
  }
  return Status();
}

void formats::validateFormat(const Format &F) {
  Status S = checkFormat(F);
  if (!S.ok())
    fatalError(S.message().c_str());
}
