//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic sparse matrix generators. The benchmark corpus
/// (Corpus.h) uses these to approximate the structural statistics of the 21
/// SuiteSparse matrices in paper Table 2 (dimensions, nnz, nonzero
/// diagonals, max nnz/row), since the originals cannot ship with the
/// repository. All generators produce duplicate-free triplets with nonzero
/// values and are reproducible from their seed.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_GENERATORS_H
#define CONVGEN_TENSOR_GENERATORS_H

#include "tensor/Triplets.h"

#include <cstdint>
#include <vector>

namespace convgen {
namespace tensor {

/// A matrix whose nonzeros lie exactly on \p Offsets (j - i values), each
/// diagonal filled with probability \p Fill. Fill = 1 gives stencil
/// matrices like jnlbrng1/ecology1 (5-point) or Lin (7-point).
Triplets genDiagonals(int64_t Rows, int64_t Cols,
                      const std::vector<int64_t> &Offsets, double Fill,
                      uint64_t Seed);

/// Banded random matrix: each row receives ~AvgPerRow entries (capped at
/// MaxPerRow) uniformly within [i - HalfBand, i + HalfBand]. Models the FEM
/// matrices (cant, consph, pdb1HYS, ...): many nonzero diagonals inside a
/// band, moderate row counts.
Triplets genBandedRandom(int64_t Rows, int64_t Cols, double AvgPerRow,
                         int64_t MaxPerRow, int64_t HalfBand, uint64_t Seed);

/// Uniform random matrix: each row receives ~AvgPerRow entries (capped at
/// MaxPerRow) at uniform column positions (scircuit-like scatter).
Triplets genRandomUniform(int64_t Rows, int64_t Cols, double AvgPerRow,
                          int64_t MaxPerRow, uint64_t Seed);

/// Power-law rows: row counts follow a Zipf-like distribution capped at
/// MaxPerRow and scaled to ~TotalNnz entries (webbase-like).
Triplets genPowerLawRows(int64_t Rows, int64_t Cols, int64_t TotalNnz,
                         int64_t MaxPerRow, uint64_t Seed);

/// Fully dense matrix (small sizes; edge-case testing).
Triplets genDense(int64_t Rows, int64_t Cols);

/// Lower-triangular banded random matrix (skyline-compatible).
Triplets genLowerBanded(int64_t Rows, double AvgPerRow, int64_t HalfBand,
                        uint64_t Seed);

/// Mirrors entries to make the pattern and values symmetric (square
/// matrices); keeps the diagonal as-is.
Triplets symmetrized(const Triplets &T);

//===----------------------------------------------------------------------===//
// Third-order generators (the FROSTT-style workloads of the higher-order
// conversion pairs; all duplicate-free, nonzero-valued, seed-reproducible).
//===----------------------------------------------------------------------===//

/// Uniform random third-order tensor: ~TotalNnz distinct coordinates drawn
/// uniformly from the I x J x K box.
Triplets genRandomTensor3(int64_t I, int64_t J, int64_t K, int64_t TotalNnz,
                          uint64_t Seed);

/// Slice-skewed third-order tensor: a few mode-0 slices carry most of the
/// nonzeros (Zipf weights over slices), modeling the skewed slice sizes of
/// real count tensors. Stresses per-slice fiber counts in CSF assembly.
Triplets genSliceSkewed3(int64_t I, int64_t J, int64_t K, int64_t TotalNnz,
                         uint64_t Seed);

/// Hyper-sparse third-order tensor: nnz well below every dimension size, so
/// most fibers (and most slices) are empty — the regime where CSF's
/// compressed root pays off over a dense one.
Triplets genHyperSparse3(int64_t I, int64_t J, int64_t K, int64_t TotalNnz,
                         uint64_t Seed);

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_GENERATORS_H
