//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/MatrixMarket.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <sstream>

using namespace convgen;
using namespace convgen::tensor;

bool tensor::readMatrixMarket(const std::string &Text, Triplets *Out,
                              std::string *Error) {
  std::istringstream In(Text);
  std::string Line;

  auto failRead = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };

  if (!std::getline(In, Line))
    return failRead("empty input");
  std::vector<std::string> Header = split(trim(Line), ' ');
  if (Header.size() < 5 || Header[0] != "%%MatrixMarket" ||
      Header[1] != "matrix" || Header[2] != "coordinate")
    return failRead("unsupported header: " + Line);
  const std::string &Field = Header[3];
  if (Field != "real" && Field != "integer" && Field != "pattern")
    return failRead("unsupported field type: " + Field);
  const std::string &Symmetry = Header[4];
  if (Symmetry != "general" && Symmetry != "symmetric")
    return failRead("unsupported symmetry: " + Symmetry);
  bool Pattern = Field == "pattern";
  bool Symmetric = Symmetry == "symmetric";

  // Skip comments, read the size line.
  while (std::getline(In, Line)) {
    Line = trim(Line);
    if (!Line.empty() && Line[0] != '%')
      break;
  }
  long long Rows = 0, Cols = 0, Nnz = 0;
  if (std::sscanf(Line.c_str(), "%lld %lld %lld", &Rows, &Cols, &Nnz) != 3)
    return failRead("malformed size line: " + Line);
  if (Rows < 0 || Cols < 0 || Nnz < 0)
    return failRead("negative dimensions or entry count: " + Line);
  if ((Rows == 0 || Cols == 0) && Nnz > 0)
    return failRead("entries declared for an empty matrix: " + Line);

  Triplets T;
  T.NumRows = Rows;
  T.NumCols = Cols;
  // Reserve by the header's claim, but never beyond what the remaining
  // text could possibly encode (>= 4 bytes per entry line): a hostile
  // header claiming 10^18 entries must not commit gigabytes up front —
  // the loop below fails fast on the missing entries either way.
  long long MaxEncodable = static_cast<long long>(Text.size() / 4) + 1;
  T.Entries.reserve(
      static_cast<size_t>(Nnz < MaxEncodable ? Nnz : MaxEncodable));
  for (long long N = 0; N < Nnz; ++N) {
    if (!std::getline(In, Line))
      return failRead(strfmt("expected %lld entries, found %lld", Nnz, N));
    long long R = 0, C = 0;
    double V = 1.0;
    int Matched = Pattern
                      ? std::sscanf(Line.c_str(), "%lld %lld", &R, &C)
                      : std::sscanf(Line.c_str(), "%lld %lld %lf", &R, &C, &V);
    if (Matched != (Pattern ? 2 : 3))
      return failRead("malformed entry: " + Line);
    if (R < 1 || R > Rows || C < 1 || C > Cols)
      return failRead("entry out of bounds: " + Line);
    T.Entries.push_back(Entry{R - 1, C - 1, V});
    if (Symmetric && R != C)
      T.Entries.push_back(Entry{C - 1, R - 1, V});
  }
  T.sortRowMajor();
  *Out = std::move(T);
  return true;
}

bool tensor::readMatrixMarketFile(const std::string &Path, Triplets *Out,
                                  std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t Got = 0;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  return readMatrixMarket(Text, Out, Error);
}

std::string tensor::writeMatrixMarket(const Triplets &T) {
  std::string Out = "%%MatrixMarket matrix coordinate real general\n";
  Out += strfmt("%lld %lld %lld\n", static_cast<long long>(T.NumRows),
                static_cast<long long>(T.NumCols),
                static_cast<long long>(T.nnz()));
  for (const Entry &E : T.Entries)
    Out += strfmt("%lld %lld %.17g\n", static_cast<long long>(E.Row + 1),
                  static_cast<long long>(E.Col + 1), E.Val);
  return Out;
}
