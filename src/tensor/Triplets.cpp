//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Triplets.h"

#include <algorithm>
#include <set>

using namespace convgen;
using namespace convgen::tensor;

void Triplets::sortRowMajor() {
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              return A.Row != B.Row ? A.Row < B.Row : A.Col < B.Col;
            });
}

void Triplets::sortColMajor() {
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              return A.Col != B.Col ? A.Col < B.Col : A.Row < B.Row;
            });
}

bool Triplets::hasDuplicates() const {
  Triplets Copy = *this;
  Copy.sortRowMajor();
  for (size_t I = 1; I < Copy.Entries.size(); ++I)
    if (Copy.Entries[I - 1].Row == Copy.Entries[I].Row &&
        Copy.Entries[I - 1].Col == Copy.Entries[I].Col)
      return true;
  return false;
}

Triplets Triplets::canonicalized() const {
  Triplets Out;
  Out.NumRows = NumRows;
  Out.NumCols = NumCols;
  Out.Entries.reserve(Entries.size());
  for (const Entry &E : Entries)
    if (E.Val != 0)
      Out.Entries.push_back(E);
  Out.sortRowMajor();
  return Out;
}

int64_t Triplets::maxRowCount() const {
  std::vector<int64_t> Counts(static_cast<size_t>(NumRows), 0);
  int64_t Max = 0;
  for (const Entry &E : Entries)
    Max = std::max(Max, ++Counts[static_cast<size_t>(E.Row)]);
  return Max;
}

int64_t Triplets::countDiagonals() const {
  std::set<int64_t> Offsets;
  for (const Entry &E : Entries)
    Offsets.insert(E.Col - E.Row);
  return static_cast<int64_t>(Offsets.size());
}

bool tensor::equal(const Triplets &A, const Triplets &B) {
  if (A.NumRows != B.NumRows || A.NumCols != B.NumCols)
    return false;
  Triplets CA = A.canonicalized();
  Triplets CB = B.canonicalized();
  return CA.Entries == CB.Entries;
}
