//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Triplets.h"

#include "support/Assert.h"

#include <algorithm>
#include <set>

using namespace convgen;
using namespace convgen::tensor;

Entry::Entry(const std::vector<int64_t> &Coords, double V) : Val(V) {
  CONVGEN_ASSERT(Coords.size() >= 2 &&
                     Coords.size() <= static_cast<size_t>(kMaxOrder),
                 "entry coordinate vector must have 2..kMaxOrder modes");
  Row = Coords[0];
  Col = Coords[1];
  for (size_t D = 2; D < Coords.size(); ++D)
    Higher[D - 2] = static_cast<int32_t>(Coords[D]);
}

void Entry::setCoord(int Mode, int64_t C) {
  if (Mode == 0)
    Row = C;
  else if (Mode == 1)
    Col = C;
  else
    Higher[static_cast<size_t>(Mode - 2)] = static_cast<int32_t>(C);
}

std::vector<int64_t> Triplets::dims() const {
  std::vector<int64_t> Out = {NumRows, NumCols};
  Out.insert(Out.end(), HigherDims.begin(), HigherDims.end());
  return Out;
}

void Triplets::setDims(const std::vector<int64_t> &Dims) {
  CONVGEN_ASSERT(Dims.size() >= 2 &&
                     Dims.size() <= static_cast<size_t>(kMaxOrder),
                 "tensors must have 2..kMaxOrder modes");
  NumRows = Dims[0];
  NumCols = Dims[1];
  HigherDims.assign(Dims.begin() + 2, Dims.end());
}

namespace {

/// Lexicographic comparison over all modes in the given mode order.
/// Comparing all kMaxOrder modes (not just the container's order) is
/// correct because unused Higher slots are zero-filled.
bool lexLess(const Entry &A, const Entry &B, const std::vector<int> &Order) {
  for (int Mode : Order) {
    int64_t CA = A.coord(Mode), CB = B.coord(Mode);
    if (CA != CB)
      return CA < CB;
  }
  return false;
}

std::vector<int> identityOrder() {
  std::vector<int> Out(static_cast<size_t>(kMaxOrder));
  for (int D = 0; D < kMaxOrder; ++D)
    Out[static_cast<size_t>(D)] = D;
  return Out;
}

} // namespace

void Triplets::sortRowMajor() { sortByModeOrder(identityOrder()); }

void Triplets::sortColMajor() {
  std::vector<int> Order = identityOrder();
  std::swap(Order[0], Order[1]);
  sortByModeOrder(Order);
}

void Triplets::sortByModeOrder(const std::vector<int> &Order) {
  // Complete a partial mode order (e.g. {1,0,2} for an order-3 tensor) with
  // the remaining modes in ascending order so ties break deterministically.
  std::vector<int> Full = Order;
  for (int D = 0; D < kMaxOrder; ++D)
    if (std::find(Full.begin(), Full.end(), D) == Full.end())
      Full.push_back(D);
  std::sort(Entries.begin(), Entries.end(),
            [&](const Entry &A, const Entry &B) { return lexLess(A, B, Full); });
}

bool Triplets::hasDuplicates() const {
  Triplets Copy = *this;
  Copy.sortRowMajor();
  for (size_t I = 1; I < Copy.Entries.size(); ++I) {
    const Entry &A = Copy.Entries[I - 1];
    const Entry &B = Copy.Entries[I];
    if (A.Row == B.Row && A.Col == B.Col && A.Higher == B.Higher)
      return true;
  }
  return false;
}

Triplets Triplets::canonicalized() const {
  Triplets Out;
  Out.NumRows = NumRows;
  Out.NumCols = NumCols;
  Out.HigherDims = HigherDims;
  Out.Entries.reserve(Entries.size());
  for (const Entry &E : Entries)
    if (E.Val != 0)
      Out.Entries.push_back(E);
  Out.sortRowMajor();
  return Out;
}

int64_t Triplets::maxRowCount() const {
  std::vector<int64_t> Counts(static_cast<size_t>(NumRows), 0);
  int64_t Max = 0;
  for (const Entry &E : Entries)
    Max = std::max(Max, ++Counts[static_cast<size_t>(E.Row)]);
  return Max;
}

int64_t Triplets::countDiagonals() const {
  std::set<int64_t> Offsets;
  for (const Entry &E : Entries)
    Offsets.insert(E.Col - E.Row);
  return static_cast<int64_t>(Offsets.size());
}

bool tensor::equal(const Triplets &A, const Triplets &B) {
  if (A.dims() != B.dims())
    return false;
  Triplets CA = A.canonicalized();
  Triplets CB = B.canonicalized();
  return CA.Entries == CB.Entries;
}
