//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus: one synthetic stand-in per matrix of paper
/// Table 2, parameterized by the published statistics (dimensions, nnz,
/// nonzero diagonals, max nnz/row) and the structural family the matrix
/// belongs to. `bench_table2` prints achieved vs. target statistics.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_CORPUS_H
#define CONVGEN_TENSOR_CORPUS_H

#include "tensor/Triplets.h"

#include <functional>
#include <string>
#include <vector>

namespace convgen {
namespace tensor {

struct CorpusEntry {
  std::string Name;
  /// Published Table 2 statistics (targets for the generator).
  int64_t Rows = 0;
  int64_t Cols = 0;
  int64_t Nnz = 0;
  int64_t Diagonals = 0;
  int64_t MaxNnzPerRow = 0;
  /// Table 2 highlights non-symmetric matrices; Table 3 reports csr_csc
  /// only for those and folds csc_* into csr_* for symmetric ones.
  bool Symmetric = true;
  /// Generates the matrix at \p Scale in (0, 1]: row count and nnz shrink
  /// proportionally, preserving per-row structure.
  std::function<Triplets(double Scale)> Generate;
};

/// All 21 Table 2 entries, in the paper's order.
const std::vector<CorpusEntry> &table2Corpus();

/// Finds an entry by name; aborts if absent.
const CorpusEntry &corpusEntry(const std::string &Name);

/// Small matrices exercising edge cases (empty, singleton, dense row/col,
/// rectangular, single diagonal, ...) shared by the conversion tests.
std::vector<std::pair<std::string, Triplets>> testMatrices();

/// Small third-order tensors for the higher-order conversion tests: empty,
/// single entry, a dense block, plus random / slice-skewed / hyper-sparse
/// synthetics (the order-3 analog of testMatrices()).
std::vector<std::pair<std::string, Triplets>> testTensors3();

/// Huge-dimension hyper-sparse third-order tensors (up to a 2^31-extent
/// mode, a few hundred nonzeros): the workload class where dense
/// rank-array assembly would allocate by the product of the grouping
/// extents and the sorted-ranking strategy must engage. Kept separate from
/// testTensors3() so only the tests that opt in pay the strategy switch.
std::vector<std::pair<std::string, Triplets>> testTensorsHuge3();

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_CORPUS_H
