//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Corpus.h"

#include "support/Assert.h"
#include "tensor/Generators.h"

#include <algorithm>
#include <cmath>

using namespace convgen;
using namespace convgen::tensor;

namespace {

int64_t scaled(int64_t V, double Scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                  static_cast<double>(V) * Scale)));
}

/// Stencil offsets for grid-structured problems: widths {1, G, ...}.
std::vector<int64_t> stencilOffsets(int64_t Grid, int Diags) {
  switch (Diags) {
  case 5:
    return {-Grid, -1, 0, 1, Grid};
  case 7:
    return {-Grid * Grid, -Grid, -1, 0, 1, Grid, Grid * Grid};
  case 13: {
    std::vector<int64_t> Out;
    for (int64_t K = -3; K <= 3; ++K)
      Out.push_back(K);
    for (int64_t K = 1; K <= 3; ++K) {
      Out.push_back(K * Grid);
      Out.push_back(-K * Grid);
    }
    return Out;
  }
  default: {
    // Generic: Diags offsets split between near-diagonal and grid strides.
    std::vector<int64_t> Out;
    int Near = Diags / 2 + 1;
    for (int64_t K = -(Near / 2); Out.size() < static_cast<size_t>(Near); ++K)
      Out.push_back(K);
    int64_t Stride = Grid;
    while (Out.size() < static_cast<size_t>(Diags)) {
      Out.push_back(Stride);
      if (Out.size() < static_cast<size_t>(Diags))
        Out.push_back(-Stride);
      Stride += Grid;
    }
    std::sort(Out.begin(), Out.end());
    return Out;
  }
  }
}

/// A stencil-family entry (jnlbrng1, ecology1, atmosmodd, ...): exact
/// diagonals, fully filled, nnz ~= Diags * Rows.
CorpusEntry stencil(const std::string &Name, int64_t Rows, int64_t Nnz,
                    int Diags, bool Symmetric) {
  CorpusEntry E;
  E.Name = Name;
  E.Rows = E.Cols = Rows;
  E.Nnz = Nnz;
  E.Diagonals = Diags;
  E.MaxNnzPerRow = Diags;
  E.Symmetric = Symmetric;
  E.Generate = [Rows, Diags](double Scale) {
    int64_t R = scaled(Rows, Scale);
    // 7-point stencils discretize 3-D grids (strides 1, g, g^2); the others
    // are 2-D (strides up to a few g). Pick g so all strides fit in R.
    double Root = Diags == 7 ? std::cbrt(static_cast<double>(R))
                             : std::sqrt(static_cast<double>(R));
    int64_t Grid = std::max<int64_t>(2, std::llround(Root));
    return genDiagonals(R, R, stencilOffsets(Grid, Diags), 1.0,
                        std::hash<std::string>{}("stencil"));
  };
  return E;
}

/// A banded FEM-family entry (pdb1HYS, cant, consph, pwtk, ...).
CorpusEntry banded(const std::string &Name, int64_t Rows, int64_t Nnz,
                   int64_t Diags, int64_t MaxRow, bool Symmetric) {
  CorpusEntry E;
  E.Name = Name;
  E.Rows = E.Cols = Rows;
  E.Nnz = Nnz;
  E.Diagonals = Diags;
  E.MaxNnzPerRow = MaxRow;
  E.Symmetric = Symmetric;
  double AvgPerRow = static_cast<double>(Nnz) / static_cast<double>(Rows);
  int64_t HalfBand = std::max<int64_t>(Diags / 2, MaxRow);
  E.Generate = [Rows, AvgPerRow, MaxRow, HalfBand, Name](double Scale) {
    return genBandedRandom(scaled(Rows, Scale), scaled(Rows, Scale),
                           AvgPerRow, MaxRow, HalfBand,
                           std::hash<std::string>{}(Name));
  };
  return E;
}

/// A scattered-random entry (scircuit, cop20k_A, mac_econ_fwd500).
CorpusEntry scattered(const std::string &Name, int64_t Rows, int64_t Nnz,
                      int64_t Diags, int64_t MaxRow, bool Symmetric) {
  CorpusEntry E;
  E.Name = Name;
  E.Rows = E.Cols = Rows;
  E.Nnz = Nnz;
  E.Diagonals = Diags;
  E.MaxNnzPerRow = MaxRow;
  E.Symmetric = Symmetric;
  double AvgPerRow = static_cast<double>(Nnz) / static_cast<double>(Rows);
  E.Generate = [Rows, AvgPerRow, MaxRow, Name](double Scale) {
    return genRandomUniform(scaled(Rows, Scale), scaled(Rows, Scale),
                            AvgPerRow, MaxRow,
                            std::hash<std::string>{}(Name));
  };
  return E;
}

/// The power-law web graph (webbase-1M).
CorpusEntry powerLaw(const std::string &Name, int64_t Rows, int64_t Nnz,
                     int64_t Diags, int64_t MaxRow) {
  CorpusEntry E;
  E.Name = Name;
  E.Rows = E.Cols = Rows;
  E.Nnz = Nnz;
  E.Diagonals = Diags;
  E.MaxNnzPerRow = MaxRow;
  E.Symmetric = false;
  E.Generate = [Rows, Nnz, MaxRow, Name](double Scale) {
    return genPowerLawRows(scaled(Rows, Scale), scaled(Rows, Scale),
                           scaled(Nnz, Scale), MaxRow,
                           std::hash<std::string>{}(Name));
  };
  return E;
}

std::vector<CorpusEntry> buildCorpus() {
  std::vector<CorpusEntry> C;
  C.push_back(banded("pdb1HYS", 36417, 4344765, 25867, 204, true));
  C.push_back(stencil("jnlbrng1", 40000, 199200, 5, true));
  C.push_back(stencil("obstclae", 40000, 197608, 5, true));
  C.push_back(stencil("chem_master1", 40401, 201201, 5, false));
  C.push_back(banded("rma10", 46835, 2374001, 17367, 145, false));
  C.push_back(stencil("dixmaanl", 60000, 299998, 7, true));
  C.push_back(banded("cant", 62451, 4007383, 99, 78, true));
  C.push_back(stencil("shyy161", 76480, 329762, 7, false));
  C.push_back(banded("consph", 83334, 6010480, 13497, 81, true));
  C.push_back(stencil("denormal", 89400, 1156224, 13, true));
  C.push_back(stencil("Baumann", 112211, 748331, 7, false));
  C.push_back(scattered("cop20k_A", 121192, 2624331, 221205, 81, true));
  C.push_back(banded("shipsec1", 140874, 3568176, 10001, 102, true));
  C.push_back(stencil("majorbasis", 160000, 1750416, 22, false));
  C.push_back(scattered("scircuit", 170998, 958936, 158979, 353, false));
  C.push_back(
      scattered("mac_econ_fwd500", 206500, 1273389, 511, 44, false));
  C.push_back(banded("pwtk", 217918, 11524432, 19929, 180, true));
  C.push_back(stencil("Lin", 256000, 1766400, 7, true));
  C.push_back(stencil("ecology1", 1000000, 4996000, 5, true));
  C.push_back(powerLaw("webbase-1M", 1000005, 3105536, 564259, 4700));
  C.push_back(stencil("atmosmodd", 1270432, 8814880, 7, false));
  return C;
}

} // namespace

const std::vector<CorpusEntry> &tensor::table2Corpus() {
  static const std::vector<CorpusEntry> Corpus = buildCorpus();
  return Corpus;
}

const CorpusEntry &tensor::corpusEntry(const std::string &Name) {
  for (const CorpusEntry &E : table2Corpus())
    if (E.Name == Name)
      return E;
  fatalError(("unknown corpus matrix '" + Name + "'").c_str());
}

std::vector<std::pair<std::string, Triplets>> tensor::testMatrices() {
  std::vector<std::pair<std::string, Triplets>> Out;

  // The running example of the paper (Figure 1): 4x6, 9 nonzeros.
  Triplets Fig1;
  Fig1.NumRows = 4;
  Fig1.NumCols = 6;
  Fig1.Entries = {{0, 0, 5}, {0, 1, 1}, {1, 1, 7}, {1, 2, 3}, {2, 0, 8},
                  {2, 2, 2}, {2, 3, 4}, {3, 1, 9}, {3, 4, 6}};
  Out.push_back({"figure1", Fig1});

  Triplets Empty;
  Empty.NumRows = 5;
  Empty.NumCols = 7;
  Out.push_back({"empty", Empty});

  Triplets Single;
  Single.NumRows = 3;
  Single.NumCols = 3;
  Single.Entries = {{1, 2, -4.5}};
  Out.push_back({"single", Single});

  Triplets OneByOne;
  OneByOne.NumRows = 1;
  OneByOne.NumCols = 1;
  OneByOne.Entries = {{0, 0, 2.0}};
  Out.push_back({"one_by_one", OneByOne});

  Out.push_back({"dense_small", genDense(6, 5)});

  // A single dense row and a single dense column stress ELL's K and the
  // column-major formats respectively.
  Triplets DenseRow;
  DenseRow.NumRows = 8;
  DenseRow.NumCols = 8;
  for (int64_t J = 0; J < 8; ++J)
    DenseRow.Entries.push_back({3, J, static_cast<double>(J + 1)});
  Out.push_back({"dense_row", DenseRow});

  Triplets DenseCol;
  DenseCol.NumRows = 8;
  DenseCol.NumCols = 8;
  for (int64_t I = 0; I < 8; ++I)
    DenseCol.Entries.push_back({I, 5, static_cast<double>(I + 1)});
  Out.push_back({"dense_col", DenseCol});

  Out.push_back({"tridiag_rect_wide",
                 genDiagonals(7, 12, {-1, 0, 1}, 1.0, 11)});
  Out.push_back({"tridiag_rect_tall",
                 genDiagonals(12, 7, {-1, 0, 1}, 1.0, 12)});
  Out.push_back({"banded_random", genBandedRandom(40, 40, 4.0, 12, 9, 13)});
  Out.push_back({"scatter_random", genRandomUniform(37, 53, 3.0, 10, 14)});
  Out.push_back({"stencil5", genDiagonals(64, 64, {-8, -1, 0, 1, 8}, 1.0, 15)});
  Out.push_back(
      {"ragged", genPowerLawRows(50, 50, 300, 25, 16)});
  Out.push_back({"lower_banded", genLowerBanded(30, 3.0, 6, 17)});

  // Anti-diagonal: every entry on a distinct diagonal (worst case for DIA).
  Triplets Anti;
  Anti.NumRows = 10;
  Anti.NumCols = 10;
  for (int64_t I = 0; I < 10; ++I)
    Anti.Entries.push_back({I, 9 - I, static_cast<double>(I + 1)});
  Out.push_back({"antidiagonal", Anti});

  return Out;
}

std::vector<std::pair<std::string, Triplets>> tensor::testTensors3() {
  std::vector<std::pair<std::string, Triplets>> Out;

  Triplets Empty;
  Empty.setDims({4, 5, 6});
  Out.push_back({"empty3", Empty});

  Triplets Single;
  Single.setDims({3, 4, 5});
  Single.Entries = {Entry{{1, 2, 3}, -4.5}};
  Out.push_back({"single3", Single});

  // A small hand-written example with shared slices and fibers: two slices
  // reuse fiber (i, j) prefixes, one slice holds a full mode-2 fiber.
  Triplets Hand;
  Hand.setDims({3, 3, 4});
  Hand.Entries = {Entry{{0, 0, 0}, 1}, Entry{{0, 0, 2}, 2},
                  Entry{{0, 2, 1}, 3}, Entry{{1, 1, 0}, 4},
                  Entry{{1, 1, 1}, 5}, Entry{{1, 1, 2}, 6},
                  Entry{{1, 1, 3}, 7}, Entry{{2, 0, 3}, 8},
                  Entry{{2, 2, 0}, 9}};
  Out.push_back({"hand3", Hand});

  // Fully dense block (every fiber present).
  Triplets Dense;
  Dense.setDims({3, 2, 4});
  for (int64_t I = 0; I < 3; ++I)
    for (int64_t J = 0; J < 2; ++J)
      for (int64_t K = 0; K < 4; ++K)
        Dense.Entries.push_back(
            Entry{{I, J, K}, static_cast<double>(1 + I * 8 + J * 4 + K)});
  Out.push_back({"dense3", Dense});

  Out.push_back({"random3", genRandomTensor3(12, 9, 14, 160, 31)});
  Out.push_back({"skewed3", genSliceSkewed3(16, 10, 8, 140, 32)});
  Out.push_back({"hyper3", genHyperSparse3(40, 30, 25, 60, 33)});

  return Out;
}

std::vector<std::pair<std::string, Triplets>> tensor::testTensorsHuge3() {
  std::vector<std::pair<std::string, Triplets>> Out;
  const int64_t Big = int64_t(1) << 31; // A full 2^31-extent mode.
  const int64_t Mid = int64_t(1) << 20;

  // The acceptance workload: a 2^31-extent outer mode, nonzeros uniform in
  // the box, every slice/fiber almost surely a singleton.
  Out.push_back({"huge_mode0",
                 genHyperSparse3(Big, Mid, Mid, 400, 71)});

  // Huge inner modes: the outer mode is tame, so only the deeper levels'
  // grouping products blow the budget (genRandomTensor3 directly, since
  // genHyperSparse3 caps nnz at half the outer extent).
  Out.push_back({"huge_mode12",
                 genRandomTensor3(64, Big, Big, 300, 72)});

  // Shared prefixes despite huge extents: a few mode-0 slices carry many
  // entries, so sorted-ranking's pos/crd construction sees real fan-out.
  Out.push_back({"huge_skewed",
                 genSliceSkewed3(32, Big, Mid, 350, 73)});

  // Duplicated boundary coordinates (0 and extent-1) exercise the binary
  // search at both ends of the sorted list.
  Triplets Edges;
  Edges.setDims({Big, Big, Big});
  Edges.Entries = {Entry{{0, 0, 0}, 1.0},
                   Entry{{0, 0, Big - 1}, 2.0},
                   Entry{{0, Big - 1, 0}, 3.0},
                   Entry{{Big - 1, 0, 5}, 4.0},
                   Entry{{Big - 1, Big - 1, Big - 1}, 5.0}};
  Out.push_back({"huge_corners", Edges});

  Triplets Empty;
  Empty.setDims({Big, Mid, Mid});
  Out.push_back({"huge_empty", Empty});

  return Out;
}
