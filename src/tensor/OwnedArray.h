//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A malloc-backed dynamic array with the subset of std::vector's API the
/// runtime uses. Unlike std::vector it can *adopt* a malloc'd buffer without
/// copying, which is what lets SparseTensor take ownership of the arrays a
/// JIT-compiled conversion routine allocates: the generated C mallocs
/// pos/crd/perm/vals, yields the pointers through the cvg_tensor_t ABI, and
/// jit::collectOutput moves them straight into LevelStorage — no per-element
/// copy at the JIT boundary.
///
/// Storage is always allocated with std::malloc/std::realloc and released
/// with std::free, so adopted and locally-grown buffers are interchangeable.
/// Elements are restricted to trivially copyable types (int32_t, double).
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_OWNEDARRAY_H
#define CONVGEN_TENSOR_OWNEDARRAY_H

#include "support/Assert.h"

#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <ostream>
#include <type_traits>
#include <vector>

namespace convgen {
namespace tensor {

template <typename T> class OwnedArray {
  static_assert(std::is_trivially_copyable<T>::value,
                "OwnedArray elements must be trivially copyable");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  OwnedArray() = default;
  OwnedArray(size_t Count, const T &Value = T()) { assign(Count, Value); }
  OwnedArray(std::initializer_list<T> Init) {
    assign(Init.begin(), Init.end());
  }
  OwnedArray(const OwnedArray &Other) {
    assign(Other.begin(), Other.end());
  }
  OwnedArray(OwnedArray &&Other) noexcept
      : Data_(Other.Data_), Size_(Other.Size_), Cap_(Other.Cap_) {
    Other.Data_ = nullptr;
    Other.Size_ = Other.Cap_ = 0;
  }
  /// Copies from a std::vector (interpreter results and tests; a vector's
  /// new[]-owned storage cannot be adopted).
  OwnedArray(const std::vector<T> &V) { assign(V.begin(), V.end()); }

  ~OwnedArray() { std::free(Data_); }

  OwnedArray &operator=(const OwnedArray &Other) {
    if (this != &Other)
      assign(Other.begin(), Other.end());
    return *this;
  }
  OwnedArray &operator=(OwnedArray &&Other) noexcept {
    if (this != &Other) {
      std::free(Data_);
      Data_ = Other.Data_;
      Size_ = Other.Size_;
      Cap_ = Other.Cap_;
      Other.Data_ = nullptr;
      Other.Size_ = Other.Cap_ = 0;
    }
    return *this;
  }
  OwnedArray &operator=(std::initializer_list<T> Init) {
    assign(Init.begin(), Init.end());
    return *this;
  }
  OwnedArray &operator=(const std::vector<T> &V) {
    assign(V.begin(), V.end());
    return *this;
  }

  /// Takes ownership of a malloc'd buffer of \p Count elements (freed with
  /// std::free). The copy-free path at the JIT boundary. A null \p Ptr
  /// yields an empty array.
  void adoptMalloc(T *Ptr, size_t Count) {
    std::free(Data_);
    Data_ = Ptr;
    Size_ = Ptr ? Count : 0;
    Cap_ = Size_;
  }

  /// Releases ownership of the buffer to the caller (who must std::free it).
  T *releaseMalloc() {
    T *Out = Data_;
    Data_ = nullptr;
    Size_ = Cap_ = 0;
    return Out;
  }

  T *data() { return Data_; }
  const T *data() const { return Data_; }
  size_t size() const { return Size_; }
  bool empty() const { return Size_ == 0; }

  T &operator[](size_t I) { return Data_[I]; }
  const T &operator[](size_t I) const { return Data_[I]; }
  T &front() { return Data_[0]; }
  const T &front() const { return Data_[0]; }
  T &back() { return Data_[Size_ - 1]; }
  const T &back() const { return Data_[Size_ - 1]; }

  iterator begin() { return Data_; }
  iterator end() { return Data_ + Size_; }
  const_iterator begin() const { return Data_; }
  const_iterator end() const { return Data_ + Size_; }

  void clear() { Size_ = 0; }

  void reserve(size_t Count) {
    if (Count > Cap_)
      grow(Count);
  }

  void resize(size_t Count, const T &Value = T()) {
    reserve(Count);
    for (size_t I = Size_; I < Count; ++I)
      Data_[I] = Value;
    Size_ = Count;
  }

  void push_back(const T &Value) {
    if (Size_ == Cap_)
      grow(Cap_ ? Cap_ * 2 : 8);
    Data_[Size_++] = Value;
  }

  template <typename It> void assign(It First, It Last) {
    Size_ = 0;
    reserve(static_cast<size_t>(std::distance(First, Last)));
    for (; First != Last; ++First)
      Data_[Size_++] = *First;
  }
  void assign(size_t Count, const T &Value) {
    Size_ = 0;
    resize(Count, Value);
  }

  /// Implicit copy out, so std::vector-taking APIs (the interpreter's
  /// buffer binding) keep working unchanged.
  operator std::vector<T>() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const OwnedArray &A, const OwnedArray &B) {
    if (A.Size_ != B.Size_)
      return false;
    for (size_t I = 0; I < A.Size_; ++I)
      if (!(A.Data_[I] == B.Data_[I]))
        return false;
    return true;
  }
  friend bool operator!=(const OwnedArray &A, const OwnedArray &B) {
    return !(A == B);
  }

  /// gtest failure messages.
  friend std::ostream &operator<<(std::ostream &OS, const OwnedArray &A) {
    OS << "[";
    for (size_t I = 0; I < A.Size_; ++I)
      OS << (I ? ", " : "") << A.Data_[I];
    return OS << "]";
  }

private:
  void grow(size_t Count) {
    T *Grown = static_cast<T *>(std::realloc(Data_, Count * sizeof(T)));
    if (!Grown)
      fatalError("OwnedArray: allocation failed");
    Data_ = Grown;
    Cap_ = Count;
  }

  T *Data_ = nullptr;
  size_t Size_ = 0;
  size_t Cap_ = 0;
};

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_OWNEDARRAY_H
