//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime representation of a sparse tensor: per-level pos/crd/perm
/// arrays (int32, as in the paper's generated C), per-level size parameters
/// (DIA's and ELL's K), and the values array. A SparseTensor always carries
/// the Format that interprets its storage.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_SPARSETENSOR_H
#define CONVGEN_TENSOR_SPARSETENSOR_H

#include "formats/Format.h"
#include "tensor/OwnedArray.h"

#include <cstdint>
#include <string>
#include <vector>

namespace convgen {
namespace tensor {

/// Storage for one coordinate-hierarchy level. Which arrays are populated
/// depends on the level kind: compressed/skyline use Pos (+Crd for
/// compressed), singleton uses Crd, squeezed uses Perm and SizeParam,
/// sliced uses SizeParam only, dense and offset use nothing.
///
/// Arrays are OwnedArray so a tensor can adopt the malloc'd buffers a
/// JIT-compiled conversion yields without copying them (see jit/Jit.h for
/// the ownership contract at that boundary).
struct LevelStorage {
  OwnedArray<int32_t> Pos;
  OwnedArray<int32_t> Crd;
  OwnedArray<int32_t> Perm;
  int64_t SizeParam = -1;
};

struct SparseTensor {
  formats::Format Format;
  /// Canonical dimension sizes (rows, cols for matrices).
  std::vector<int64_t> Dims;
  /// One storage record per level, outermost first.
  std::vector<LevelStorage> Levels;
  OwnedArray<double> Vals;

  int64_t numRows() const { return Dims.at(0); }
  int64_t numCols() const { return Dims.at(1); }

  /// Number of stored value slots (equals nnz for unpadded formats).
  int64_t storedSize() const { return static_cast<int64_t>(Vals.size()); }

  /// Checks structural invariants for every level (pos monotonicity and
  /// sizing, coordinate ranges, parameter presence) and aborts with a
  /// diagnostic naming the violated invariant. Tests run every generated
  /// conversion's output through this.
  void validate() const;

  /// True if the stored coordinate tuples of the first \p Levels levels are
  /// lexicographically non-decreasing in storage order. Dense levels are
  /// sorted by construction; compressed and singleton crd arrays are
  /// data-dependent — csc -> coo legally yields column-major coo, which is
  /// a valid tensor but NOT lex-ordered. Conversion plans whose dedup
  /// assembly trusts the source's iteration order (Conversion's
  /// LexCheckLevels) run this check per input and reject unsorted sources
  /// instead of assembling garbage. On failure \p Why (optional) names the
  /// offending position.
  bool lexOrderedUpTo(int Levels, std::string *Why = nullptr) const;

  /// Human-readable dump of the storage arrays (small tensors only);
  /// mirrors the layout drawings of paper Figure 2.
  std::string dump() const;
};

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_SPARSETENSOR_H
