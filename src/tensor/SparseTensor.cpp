//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/SparseTensor.h"

#include "remap/Bounds.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace convgen;
using namespace convgen::tensor;
using formats::LevelKind;
using formats::LevelSpec;

void SparseTensor::validate() const {
  auto failTensor = [&](const std::string &Msg) {
    fatalError(
        ("invalid " + Format.Name + " tensor: " + Msg).c_str());
  };
  if (static_cast<int>(Dims.size()) != Format.SrcOrder)
    failTensor("canonical dimension count mismatch");
  if (Levels.size() != Format.Levels.size())
    failTensor("level storage count mismatch");

  std::vector<remap::NumericDimBounds> Bounds =
      remap::analyzeBoundsNumeric(Format.Remap, Dims);

  int64_t Size = 1; // Number of positions at the current level.
  for (size_t K = 0; K < Format.Levels.size(); ++K) {
    const LevelSpec &Spec = Format.Levels[K];
    const LevelStorage &Data = Levels[K];
    const remap::NumericDimBounds &DimB = Bounds[static_cast<size_t>(
        Spec.Dim)];
    switch (Spec.Kind) {
    case LevelKind::Dense: {
      if (!DimB.Known)
        failTensor(strfmt("dense level %zu has unknown extent", K));
      Size *= DimB.extent();
      break;
    }
    case LevelKind::Compressed: {
      if (Data.Pos.size() != static_cast<size_t>(Size) + 1)
        failTensor(strfmt("level %zu pos has %zu entries, expected %lld", K,
                          Data.Pos.size(), static_cast<long long>(Size + 1)));
      if (Data.Pos.front() != 0)
        failTensor(strfmt("level %zu pos[0] != 0", K));
      for (size_t P = 1; P < Data.Pos.size(); ++P)
        if (Data.Pos[P] < Data.Pos[P - 1])
          failTensor(strfmt("level %zu pos not monotonic at %zu", K, P));
      int64_t Stored = Data.Pos.back();
      if (Data.Crd.size() != static_cast<size_t>(Stored))
        failTensor(strfmt("level %zu crd size mismatch", K));
      if (DimB.Known)
        for (int32_t C : Data.Crd)
          if (C < DimB.Lo || C > DimB.Hi)
            failTensor(strfmt("level %zu coordinate %d out of range", K, C));
      Size = Stored;
      break;
    }
    case LevelKind::Singleton: {
      if (Data.Crd.size() != static_cast<size_t>(Size))
        failTensor(strfmt("level %zu singleton crd size mismatch", K));
      if (DimB.Known)
        for (int32_t C : Data.Crd)
          if (C < DimB.Lo || C > DimB.Hi)
            failTensor(strfmt("level %zu coordinate %d out of range", K, C));
      break;
    }
    case LevelKind::Squeezed: {
      if (Data.SizeParam < 0)
        failTensor(strfmt("level %zu missing size parameter", K));
      if (Data.Perm.size() != static_cast<size_t>(Data.SizeParam))
        failTensor(strfmt("level %zu perm size != K", K));
      if (!std::is_sorted(Data.Perm.begin(), Data.Perm.end()))
        failTensor(strfmt("level %zu perm not ascending", K));
      if (DimB.Known)
        for (int32_t C : Data.Perm)
          if (C < DimB.Lo || C > DimB.Hi)
            failTensor(strfmt("level %zu offset %d out of range", K, C));
      Size *= Data.SizeParam;
      break;
    }
    case LevelKind::Sliced: {
      if (Data.SizeParam < 0)
        failTensor(strfmt("level %zu missing size parameter", K));
      Size *= Data.SizeParam;
      break;
    }
    case LevelKind::Skyline: {
      if (Data.Pos.size() != static_cast<size_t>(Size) + 1)
        failTensor(strfmt("level %zu pos size mismatch", K));
      if (Data.Pos.front() != 0)
        failTensor(strfmt("level %zu pos[0] != 0", K));
      for (size_t P = 1; P < Data.Pos.size(); ++P)
        if (Data.Pos[P] < Data.Pos[P - 1])
          failTensor(strfmt("level %zu pos not monotonic at %zu", K, P));
      Size = Data.Pos.back();
      break;
    }
    case LevelKind::Offset:
      break; // One child per parent; nothing stored.
    }
  }
  if (Vals.size() != static_cast<size_t>(Size))
    failTensor(strfmt("vals has %zu entries, expected %lld", Vals.size(),
                      static_cast<long long>(Size)));
}

namespace {

std::string dumpArray(const char *Name, const std::vector<int32_t> &Data) {
  std::string Out = strfmt("  %s[%zu] =", Name, Data.size());
  size_t Limit = std::min<size_t>(Data.size(), 64);
  for (size_t I = 0; I < Limit; ++I)
    Out += strfmt(" %d", Data[I]);
  if (Limit < Data.size())
    Out += " ...";
  return Out + "\n";
}

} // namespace

std::string SparseTensor::dump() const {
  std::string Out = Format.summary() + "\n";
  Out += strfmt("  dims = %lld x %lld, stored = %lld\n",
                static_cast<long long>(Dims.at(0)),
                static_cast<long long>(Dims.size() > 1 ? Dims.at(1) : 1),
                static_cast<long long>(storedSize()));
  for (size_t K = 0; K < Levels.size(); ++K) {
    const LevelStorage &L = Levels[K];
    Out += strfmt("  level %zu (%s):", K,
                  formats::levelKindName(Format.Levels[K].Kind));
    if (L.SizeParam >= 0)
      Out += strfmt(" K=%lld", static_cast<long long>(L.SizeParam));
    Out += "\n";
    if (!L.Pos.empty())
      Out += dumpArray("pos", L.Pos);
    if (!L.Crd.empty())
      Out += dumpArray("crd", L.Crd);
    if (!L.Perm.empty())
      Out += dumpArray("perm", L.Perm);
  }
  std::string ValsText = strfmt("  vals[%zu] =", Vals.size());
  size_t Limit = std::min<size_t>(Vals.size(), 32);
  for (size_t I = 0; I < Limit; ++I)
    ValsText += strfmt(" %g", Vals[I]);
  if (Limit < Vals.size())
    ValsText += " ...";
  return Out + ValsText + "\n";
}
