//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/SparseTensor.h"

#include "remap/Bounds.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <functional>

using namespace convgen;
using namespace convgen::tensor;
using formats::LevelKind;
using formats::LevelSpec;

void SparseTensor::validate() const {
  auto failTensor = [&](const std::string &Msg) {
    fatalError(
        ("invalid " + Format.Name + " tensor: " + Msg).c_str());
  };
  if (static_cast<int>(Dims.size()) != Format.SrcOrder)
    failTensor("canonical dimension count mismatch");
  if (Levels.size() != Format.Levels.size())
    failTensor("level storage count mismatch");

  std::vector<remap::NumericDimBounds> Bounds =
      remap::analyzeBoundsNumeric(Format.Remap, Dims);

  int64_t Size = 1; // Number of positions at the current level.
  for (size_t K = 0; K < Format.Levels.size(); ++K) {
    const LevelSpec &Spec = Format.Levels[K];
    const LevelStorage &Data = Levels[K];
    const remap::NumericDimBounds &DimB = Bounds[static_cast<size_t>(
        Spec.Dim)];
    switch (Spec.Kind) {
    case LevelKind::Dense: {
      if (!DimB.Known)
        failTensor(strfmt("dense level %zu has unknown extent", K));
      Size *= DimB.extent();
      break;
    }
    case LevelKind::Compressed: {
      if (Data.Pos.size() != static_cast<size_t>(Size) + 1)
        failTensor(strfmt("level %zu pos has %zu entries, expected %lld", K,
                          Data.Pos.size(), static_cast<long long>(Size + 1)));
      if (Data.Pos.front() != 0)
        failTensor(strfmt("level %zu pos[0] != 0", K));
      for (size_t P = 1; P < Data.Pos.size(); ++P)
        if (Data.Pos[P] < Data.Pos[P - 1])
          failTensor(strfmt("level %zu pos not monotonic at %zu", K, P));
      int64_t Stored = Data.Pos.back();
      if (Data.Crd.size() != static_cast<size_t>(Stored))
        failTensor(strfmt("level %zu crd size mismatch", K));
      if (DimB.Known)
        for (int32_t C : Data.Crd)
          if (C < DimB.Lo || C > DimB.Hi)
            failTensor(strfmt("level %zu coordinate %d out of range", K, C));
      Size = Stored;
      break;
    }
    case LevelKind::Singleton: {
      if (Data.Crd.size() != static_cast<size_t>(Size))
        failTensor(strfmt("level %zu singleton crd size mismatch", K));
      if (DimB.Known)
        for (int32_t C : Data.Crd)
          if (C < DimB.Lo || C > DimB.Hi)
            failTensor(strfmt("level %zu coordinate %d out of range", K, C));
      break;
    }
    case LevelKind::Squeezed: {
      if (Data.SizeParam < 0)
        failTensor(strfmt("level %zu missing size parameter", K));
      if (Data.Perm.size() != static_cast<size_t>(Data.SizeParam))
        failTensor(strfmt("level %zu perm size != K", K));
      if (!std::is_sorted(Data.Perm.begin(), Data.Perm.end()))
        failTensor(strfmt("level %zu perm not ascending", K));
      if (DimB.Known)
        for (int32_t C : Data.Perm)
          if (C < DimB.Lo || C > DimB.Hi)
            failTensor(strfmt("level %zu offset %d out of range", K, C));
      Size *= Data.SizeParam;
      break;
    }
    case LevelKind::Sliced: {
      if (Data.SizeParam < 0)
        failTensor(strfmt("level %zu missing size parameter", K));
      Size *= Data.SizeParam;
      break;
    }
    case LevelKind::Skyline: {
      if (Data.Pos.size() != static_cast<size_t>(Size) + 1)
        failTensor(strfmt("level %zu pos size mismatch", K));
      if (Data.Pos.front() != 0)
        failTensor(strfmt("level %zu pos[0] != 0", K));
      for (size_t P = 1; P < Data.Pos.size(); ++P)
        if (Data.Pos[P] < Data.Pos[P - 1])
          failTensor(strfmt("level %zu pos not monotonic at %zu", K, P));
      Size = Data.Pos.back();
      break;
    }
    case LevelKind::Offset:
      break; // One child per parent; nothing stored.
    }
  }
  if (Vals.size() != static_cast<size_t>(Size))
    failTensor(strfmt("vals has %zu entries, expected %lld", Vals.size(),
                      static_cast<long long>(Size)));
}

bool SparseTensor::lexOrderedUpTo(int CheckLevels, std::string *Why) const {
  CONVGEN_ASSERT(CheckLevels <= static_cast<int>(Format.Levels.size()),
                 "lex check deeper than the format");
  // Fast path for the dominant requirement (coo-style sources, one
  // level): the root's order is a flat scan, with none of the generic
  // walker's per-tuple overhead on the hot conversion path.
  if (CheckLevels == 1) {
    switch (Format.Levels[0].Kind) {
    case formats::LevelKind::Dense:
    case formats::LevelKind::Squeezed:
    case formats::LevelKind::Sliced:
      return true; // Sorted by construction.
    case formats::LevelKind::Compressed: {
      const OwnedArray<int32_t> &Crd = Levels[0].Crd;
      for (size_t P = 1; P < Crd.size(); ++P)
        if (Crd[P] < Crd[P - 1]) {
          if (Why)
            *Why = strfmt("level 0 crd regresses at position %zu", P);
          return false;
        }
      return true;
    }
    default:
      break; // Fall through to the generic walker.
    }
  }
  std::vector<remap::NumericDimBounds> Bounds =
      remap::analyzeBoundsNumeric(Format.Remap, Dims);

  // Depth-first walk over the first CheckLevels levels in storage order,
  // comparing each coordinate tuple against its predecessor.
  std::vector<int64_t> Prev, Cur(static_cast<size_t>(CheckLevels));
  bool Ordered = true;
  std::function<void(int, int64_t)> Walk = [&](int K, int64_t Parent) {
    if (!Ordered)
      return;
    if (K == CheckLevels) {
      if (!Prev.empty() &&
          std::lexicographical_compare(Cur.begin(), Cur.end(), Prev.begin(),
                                       Prev.end())) {
        if (Why)
          *Why = strfmt("stored tuple at level %d regresses "
                        "lexicographically (first %d levels)",
                        K, CheckLevels);
        Ordered = false;
        return;
      }
      Prev = Cur;
      return;
    }
    const formats::LevelSpec &Spec = Format.Levels[static_cast<size_t>(K)];
    const LevelStorage &Data = Levels[static_cast<size_t>(K)];
    const remap::NumericDimBounds &DimB =
        Bounds[static_cast<size_t>(Spec.Dim)];
    switch (Spec.Kind) {
    case formats::LevelKind::Dense: {
      for (int64_t C = 0; C < DimB.extent() && Ordered; ++C) {
        Cur[static_cast<size_t>(K)] = DimB.Lo + C;
        Walk(K + 1, Parent * DimB.extent() + C);
      }
      return;
    }
    case formats::LevelKind::Compressed: {
      for (int64_t P = Data.Pos[static_cast<size_t>(Parent)];
           P < Data.Pos[static_cast<size_t>(Parent) + 1] && Ordered; ++P) {
        Cur[static_cast<size_t>(K)] = Data.Crd[static_cast<size_t>(P)];
        Walk(K + 1, P);
      }
      return;
    }
    case formats::LevelKind::Singleton: {
      Cur[static_cast<size_t>(K)] = Data.Crd[static_cast<size_t>(Parent)];
      Walk(K + 1, Parent);
      return;
    }
    case formats::LevelKind::Squeezed: {
      for (int64_t S = 0; S < Data.SizeParam && Ordered; ++S) {
        Cur[static_cast<size_t>(K)] = Data.Perm[static_cast<size_t>(S)];
        Walk(K + 1, Parent * Data.SizeParam + S);
      }
      return;
    }
    case formats::LevelKind::Sliced: {
      for (int64_t S = 0; S < Data.SizeParam && Ordered; ++S) {
        Cur[static_cast<size_t>(K)] = S;
        Walk(K + 1, Parent * Data.SizeParam + S);
      }
      return;
    }
    case formats::LevelKind::Skyline: {
      // j = p - pos[parent+1] + i + 1: ascending within each parent.
      CONVGEN_ASSERT(K >= 1, "skyline levels cannot be the root");
      int64_t ParentCoord = Cur[static_cast<size_t>(K - 1)];
      for (int64_t P = Data.Pos[static_cast<size_t>(Parent)];
           P < Data.Pos[static_cast<size_t>(Parent) + 1] && Ordered; ++P) {
        Cur[static_cast<size_t>(K)] =
            P - Data.Pos[static_cast<size_t>(Parent) + 1] + ParentCoord + 1;
        Walk(K + 1, P);
      }
      return;
    }
    case formats::LevelKind::Offset: {
      const auto &Addends = Spec.AddendDims;
      Cur[static_cast<size_t>(K)] =
          Cur[static_cast<size_t>(Addends[0])] +
          Cur[static_cast<size_t>(Addends[1])];
      Walk(K + 1, Parent);
      return;
    }
    }
    convgen_unreachable("unknown level kind");
  };
  Walk(0, 0);
  return Ordered;
}

namespace {

std::string dumpArray(const char *Name, const std::vector<int32_t> &Data) {
  std::string Out = strfmt("  %s[%zu] =", Name, Data.size());
  size_t Limit = std::min<size_t>(Data.size(), 64);
  for (size_t I = 0; I < Limit; ++I)
    Out += strfmt(" %d", Data[I]);
  if (Limit < Data.size())
    Out += " ...";
  return Out + "\n";
}

} // namespace

std::string SparseTensor::dump() const {
  std::string Out = Format.summary() + "\n";
  std::string DimText;
  for (size_t D = 0; D < Dims.size(); ++D)
    DimText += (D ? " x " : "") + std::to_string(Dims[D]);
  Out += strfmt("  dims = %s, stored = %lld\n", DimText.c_str(),
                static_cast<long long>(storedSize()));
  for (size_t K = 0; K < Levels.size(); ++K) {
    const LevelStorage &L = Levels[K];
    Out += strfmt("  level %zu (%s):", K,
                  formats::levelKindName(Format.Levels[K].Kind));
    if (L.SizeParam >= 0)
      Out += strfmt(" K=%lld", static_cast<long long>(L.SizeParam));
    Out += "\n";
    if (!L.Pos.empty())
      Out += dumpArray("pos", L.Pos);
    if (!L.Crd.empty())
      Out += dumpArray("crd", L.Crd);
    if (!L.Perm.empty())
      Out += dumpArray("perm", L.Perm);
  }
  std::string ValsText = strfmt("  vals[%zu] =", Vals.size());
  size_t Limit = std::min<size_t>(Vals.size(), 32);
  for (size_t I = 0; I < Limit; ++I)
    ValsText += strfmt(" %g", Vals[I]);
  if (Limit < Vals.size())
    ValsText += " ...";
  return Out + ValsText + "\n";
}
