//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written builders between the canonical triplet form and every
/// standard format. These are deliberately simple, independent
/// implementations: the test suite validates generated conversion routines
/// against `buildFromTriplets(target, toTriplets(source))`.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_ORACLE_H
#define CONVGEN_TENSOR_ORACLE_H

#include "tensor/SparseTensor.h"
#include "tensor/Triplets.h"

namespace convgen {
namespace tensor {

/// Builds a tensor in \p Format from triplets. Requirements checked with a
/// diagnostic: no duplicate coordinates; lower-triangular input for "sky";
/// coordinates within bounds. Counter-based formats (ELL) number nonzeros
/// in row-major order, matching the evaluation's iteration order.
SparseTensor buildFromTriplets(const formats::Format &Format,
                               const Triplets &T);

/// Reads back every stored component. Padded formats drop explicit zeros
/// (padding is indistinguishable from a stored zero).
Triplets toTriplets(const SparseTensor &T);

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_ORACLE_H
