//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical triplet (coordinate-list) representation of a sparse matrix.
/// This is the neutral form used by the oracle converters, the synthetic
/// matrix generators, Matrix Market I/O, and the tensor-equality checks in
/// the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_TRIPLETS_H
#define CONVGEN_TENSOR_TRIPLETS_H

#include <cstdint>
#include <vector>

namespace convgen {
namespace tensor {

struct Entry {
  int64_t Row = 0;
  int64_t Col = 0;
  double Val = 0;

  friend bool operator==(const Entry &A, const Entry &B) {
    return A.Row == B.Row && A.Col == B.Col && A.Val == B.Val;
  }
};

struct Triplets {
  int64_t NumRows = 0;
  int64_t NumCols = 0;
  std::vector<Entry> Entries;

  int64_t nnz() const { return static_cast<int64_t>(Entries.size()); }

  void sortRowMajor();
  void sortColMajor();

  /// True if two entries share coordinates (requires row-major sorting
  /// internally; the input need not be sorted).
  bool hasDuplicates() const;

  /// Row-major sorted copy with explicit zeros dropped. Conversions through
  /// padded formats (DIA/ELL/...) cannot represent stored zeros, so
  /// equality is defined over this canonical form.
  Triplets canonicalized() const;

  /// Maximum number of entries in any row.
  int64_t maxRowCount() const;

  /// Number of distinct nonzero diagonals (j - i offsets).
  int64_t countDiagonals() const;
};

/// Exact equality of canonical forms (coordinates and bit-exact values;
/// conversions move values without arithmetic).
bool equal(const Triplets &A, const Triplets &B);

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_TRIPLETS_H
