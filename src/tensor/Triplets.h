//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical coordinate-list representation of a sparse tensor of any order.
/// This is the neutral form used by the oracle converters, the synthetic
/// generators, Matrix Market / FROSTT I/O, and the tensor-equality checks in
/// the test suite.
///
/// The coordinate model is an N-vector per entry: modes 0 and 1 keep the
/// dedicated Row/Col fields (so the pervasive matrix code stays untouched
/// and allocation-free), modes 2..N-1 live in a fixed inline array, and
/// coord()/setCoord() give uniform access to all of them. The order is a
/// property of the Triplets container (via HigherDims), not of individual
/// entries; matrix code that never touches HigherDims keeps order 2.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_TRIPLETS_H
#define CONVGEN_TENSOR_TRIPLETS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace convgen {
namespace tensor {

/// Maximum canonical tensor order the coordinate model stores. The JIT ABI
/// independently caps *stored* levels at ir::kMaxLevels; canonical orders
/// beyond this are of no practical interest and a fixed bound keeps Entry
/// flat (no per-entry heap allocation for the multi-million-entry corpus).
constexpr int kMaxOrder = 6;

struct Entry {
  int64_t Row = 0; ///< Mode-0 coordinate.
  int64_t Col = 0; ///< Mode-1 coordinate.
  /// Modes 2..N-1 (int32, matching the stored crd arrays); zero-filled for
  /// matrices so comparisons need not know the container's order.
  std::array<int32_t, kMaxOrder - 2> Higher = {};
  double Val = 0;

  Entry() = default;
  Entry(int64_t R, int64_t C, double V) : Row(R), Col(C), Val(V) {}
  /// Order-N construction from a full coordinate vector.
  Entry(const std::vector<int64_t> &Coords, double V);

  int64_t coord(int Mode) const {
    return Mode == 0 ? Row
           : Mode == 1
               ? Col
               : static_cast<int64_t>(Higher[static_cast<size_t>(Mode - 2)]);
  }
  void setCoord(int Mode, int64_t C);

  friend bool operator==(const Entry &A, const Entry &B) {
    return A.Row == B.Row && A.Col == B.Col && A.Higher == B.Higher &&
           A.Val == B.Val;
  }
};

struct Triplets {
  int64_t NumRows = 0;
  int64_t NumCols = 0;
  /// Dimension sizes of modes 2..N-1; empty for matrices.
  std::vector<int64_t> HigherDims;
  std::vector<Entry> Entries;

  int order() const { return 2 + static_cast<int>(HigherDims.size()); }
  int64_t dim(int Mode) const {
    return Mode == 0   ? NumRows
           : Mode == 1 ? NumCols
                       : HigherDims.at(static_cast<size_t>(Mode - 2));
  }
  /// All dimension sizes, mode 0 first.
  std::vector<int64_t> dims() const;
  /// Sets NumRows/NumCols/HigherDims from a full dimension vector.
  void setDims(const std::vector<int64_t> &Dims);

  int64_t nnz() const { return static_cast<int64_t>(Entries.size()); }

  /// Lexicographic sort over all modes, mode 0 outermost (the row-major
  /// order for matrices).
  void sortRowMajor();
  void sortColMajor();
  /// Lexicographic sort with mode \p Order[0] outermost; Order must be a
  /// permutation of 0..order()-1.
  void sortByModeOrder(const std::vector<int> &Order);

  /// True if two entries share all coordinates (the input need not be
  /// sorted).
  bool hasDuplicates() const;

  /// Lexicographically sorted copy with explicit zeros dropped. Conversions
  /// through padded formats (DIA/ELL/...) cannot represent stored zeros, so
  /// equality is defined over this canonical form.
  Triplets canonicalized() const;

  /// Maximum number of entries in any row (mode-0 slice).
  int64_t maxRowCount() const;

  /// Number of distinct nonzero diagonals (j - i offsets; matrices only).
  int64_t countDiagonals() const;
};

/// Exact equality of canonical forms (all dimensions, coordinates, and
/// bit-exact values; conversions move values without arithmetic).
bool equal(const Triplets &A, const Triplets &B);

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_TRIPLETS_H
