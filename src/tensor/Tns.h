//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FROSTT-style `.tns` coordinate I/O for tensors of any order: one line
/// per nonzero, N 1-based coordinates followed by the value, `#` comments.
/// FROSTT files carry no dimension header, so dimensions default to the
/// per-mode coordinate maxima; an optional leading `# dims: d0 d1 ...`
/// comment (which writeTns emits) pins them exactly for round trips.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_TNS_H
#define CONVGEN_TENSOR_TNS_H

#include "tensor/Triplets.h"

#include <string>

namespace convgen {
namespace tensor {

/// Parses `.tns` text. Returns false (with a diagnostic in \p Error) on
/// malformed input, inconsistent arity across lines, or orders outside
/// [2, kMaxOrder].
bool readTns(const std::string &Text, Triplets *Out, std::string *Error);

/// Reads a .tns file from disk; false with diagnostic on failure.
bool readTnsFile(const std::string &Path, Triplets *Out, std::string *Error);

/// Renders as `.tns` text (1-based indices, `# dims:` header).
std::string writeTns(const Triplets &T);

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_TNS_H
