//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Generators.h"

#include "support/Assert.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <random>
#include <set>

using namespace convgen;
using namespace convgen::tensor;

namespace {

/// Nonzero value derived from coordinates; deterministic and never zero.
double valueAt(int64_t Row, int64_t Col) {
  return 1.0 + static_cast<double>((Row * 31 + Col * 17) % 97) / 97.0;
}

/// Draws \p Count distinct columns from [Lo, Hi) into sorted order.
std::vector<int64_t> drawColumns(std::mt19937_64 &Rng, int64_t Lo, int64_t Hi,
                                 int64_t Count) {
  int64_t Span = Hi - Lo;
  Count = std::min(Count, Span);
  std::set<int64_t> Cols;
  std::uniform_int_distribution<int64_t> Dist(Lo, Hi - 1);
  while (static_cast<int64_t>(Cols.size()) < Count)
    Cols.insert(Dist(Rng));
  return {Cols.begin(), Cols.end()};
}

} // namespace

Triplets tensor::genDiagonals(int64_t Rows, int64_t Cols,
                              const std::vector<int64_t> &Offsets,
                              double Fill, uint64_t Seed) {
  Triplets T;
  T.NumRows = Rows;
  T.NumCols = Cols;
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  std::vector<int64_t> Sorted = Offsets;
  std::sort(Sorted.begin(), Sorted.end());
  for (int64_t I = 0; I < Rows; ++I)
    for (int64_t Offset : Sorted) {
      int64_t J = I + Offset;
      if (J < 0 || J >= Cols)
        continue;
      if (Fill < 1.0 && Coin(Rng) >= Fill)
        continue;
      T.Entries.push_back(Entry{I, J, valueAt(I, J)});
    }
  return T;
}

Triplets tensor::genBandedRandom(int64_t Rows, int64_t Cols, double AvgPerRow,
                                 int64_t MaxPerRow, int64_t HalfBand,
                                 uint64_t Seed) {
  CONVGEN_ASSERT(AvgPerRow <= static_cast<double>(MaxPerRow),
                 "average row count above the cap");
  Triplets T;
  T.NumRows = Rows;
  T.NumCols = Cols;
  std::mt19937_64 Rng(Seed);
  std::poisson_distribution<int64_t> RowCount(AvgPerRow);
  for (int64_t I = 0; I < Rows; ++I) {
    int64_t Lo = std::max<int64_t>(0, I - HalfBand);
    int64_t Hi = std::min(Cols, I + HalfBand + 1);
    int64_t Count = std::clamp<int64_t>(RowCount(Rng), 1, MaxPerRow);
    for (int64_t J : drawColumns(Rng, Lo, Hi, Count))
      T.Entries.push_back(Entry{I, J, valueAt(I, J)});
  }
  return T;
}

Triplets tensor::genRandomUniform(int64_t Rows, int64_t Cols,
                                  double AvgPerRow, int64_t MaxPerRow,
                                  uint64_t Seed) {
  Triplets T;
  T.NumRows = Rows;
  T.NumCols = Cols;
  std::mt19937_64 Rng(Seed);
  std::poisson_distribution<int64_t> RowCount(AvgPerRow);
  for (int64_t I = 0; I < Rows; ++I) {
    int64_t Count = std::clamp<int64_t>(RowCount(Rng), 0, MaxPerRow);
    for (int64_t J : drawColumns(Rng, 0, Cols, Count))
      T.Entries.push_back(Entry{I, J, valueAt(I, J)});
  }
  return T;
}

Triplets tensor::genPowerLawRows(int64_t Rows, int64_t Cols, int64_t TotalNnz,
                                 int64_t MaxPerRow, uint64_t Seed) {
  Triplets T;
  T.NumRows = Rows;
  T.NumCols = Cols;
  std::mt19937_64 Rng(Seed);
  // Zipf-like weights over a shuffled row order, scaled to TotalNnz.
  std::vector<double> Weights(static_cast<size_t>(Rows));
  double Sum = 0;
  for (int64_t I = 0; I < Rows; ++I) {
    Weights[static_cast<size_t>(I)] = 1.0 / std::pow(I + 1.0, 0.85);
    Sum += Weights[static_cast<size_t>(I)];
  }
  std::vector<int64_t> Order(static_cast<size_t>(Rows));
  for (int64_t I = 0; I < Rows; ++I)
    Order[static_cast<size_t>(I)] = I;
  std::shuffle(Order.begin(), Order.end(), Rng);
  for (int64_t Rank = 0; Rank < Rows; ++Rank) {
    int64_t I = Order[static_cast<size_t>(Rank)];
    int64_t Count = std::clamp<int64_t>(
        std::llround(Weights[static_cast<size_t>(Rank)] / Sum *
                     static_cast<double>(TotalNnz)),
        0, MaxPerRow);
    for (int64_t J : drawColumns(Rng, 0, Cols, Count))
      T.Entries.push_back(Entry{I, J, valueAt(I, J)});
  }
  T.sortRowMajor();
  return T;
}

Triplets tensor::genDense(int64_t Rows, int64_t Cols) {
  Triplets T;
  T.NumRows = Rows;
  T.NumCols = Cols;
  for (int64_t I = 0; I < Rows; ++I)
    for (int64_t J = 0; J < Cols; ++J)
      T.Entries.push_back(Entry{I, J, valueAt(I, J)});
  return T;
}

Triplets tensor::genLowerBanded(int64_t Rows, double AvgPerRow,
                                int64_t HalfBand, uint64_t Seed) {
  Triplets T;
  T.NumRows = Rows;
  T.NumCols = Rows;
  std::mt19937_64 Rng(Seed);
  std::poisson_distribution<int64_t> RowCount(AvgPerRow);
  for (int64_t I = 0; I < Rows; ++I) {
    int64_t Lo = std::max<int64_t>(0, I - HalfBand);
    int64_t Count = std::max<int64_t>(1, RowCount(Rng));
    std::vector<int64_t> Cols = drawColumns(Rng, Lo, I + 1, Count);
    // Keep the diagonal present so the profile reaches every row.
    if (Cols.empty() || Cols.back() != I)
      Cols.push_back(I);
    for (int64_t J : Cols)
      T.Entries.push_back(Entry{I, J, valueAt(I, J)});
  }
  return T;
}

namespace {

/// Deterministic nonzero value over a third-order coordinate.
double valueAt3(int64_t I, int64_t J, int64_t K) {
  return 1.0 + static_cast<double>((I * 31 + J * 17 + K * 7) % 89) / 89.0;
}

/// Shared core of the third-order generators: draws distinct coordinates
/// until Target entries exist, mode-0 slice index supplied by \p Slice.
Triplets fill3(int64_t I, int64_t J, int64_t K, int64_t Target, uint64_t Seed,
               const std::function<int64_t(std::mt19937_64 &)> &Slice) {
  Triplets T;
  T.setDims({I, J, K});
  // Saturating capacity: huge-dimension boxes (2^31 x 2^20 x 2^20)
  // overflow a plain I * J * K, which is UB and used to zero the target.
  int64_t Cap = I;
  Cap = (Cap != 0 && J > INT64_MAX / Cap) ? INT64_MAX : Cap * J;
  Cap = (Cap != 0 && K > INT64_MAX / Cap) ? INT64_MAX : Cap * K;
  Target = std::min(Target, Cap);
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int64_t> DJ(0, J - 1), DK(0, K - 1);
  std::set<std::array<int64_t, 3>> Seen;
  while (static_cast<int64_t>(Seen.size()) < Target) {
    std::array<int64_t, 3> C = {Slice(Rng), DJ(Rng), DK(Rng)};
    if (Seen.insert(C).second)
      T.Entries.push_back(
          Entry{{C[0], C[1], C[2]}, valueAt3(C[0], C[1], C[2])});
  }
  T.sortRowMajor();
  return T;
}

} // namespace

Triplets tensor::genRandomTensor3(int64_t I, int64_t J, int64_t K,
                                  int64_t TotalNnz, uint64_t Seed) {
  std::uniform_int_distribution<int64_t> DI(0, I - 1);
  return fill3(I, J, K, TotalNnz, Seed,
               [DI](std::mt19937_64 &Rng) mutable { return DI(Rng); });
}

Triplets tensor::genSliceSkewed3(int64_t I, int64_t J, int64_t K,
                                 int64_t TotalNnz, uint64_t Seed) {
  // Zipf weights over a shuffled slice order: a handful of heavy slices,
  // a long tail of near-empty ones.
  std::mt19937_64 Setup(Seed ^ 0x5ca1ab1e);
  std::vector<int64_t> Order(static_cast<size_t>(I));
  for (int64_t S = 0; S < I; ++S)
    Order[static_cast<size_t>(S)] = S;
  std::shuffle(Order.begin(), Order.end(), Setup);
  std::vector<double> Weights(static_cast<size_t>(I));
  for (int64_t S = 0; S < I; ++S)
    Weights[static_cast<size_t>(S)] = 1.0 / (1.0 + static_cast<double>(S));
  std::discrete_distribution<int64_t> Pick(Weights.begin(), Weights.end());
  return fill3(I, J, K, TotalNnz, Seed,
               [Pick, Order](std::mt19937_64 &Rng) mutable {
                 return Order[static_cast<size_t>(Pick(Rng))];
               });
}

Triplets tensor::genHyperSparse3(int64_t I, int64_t J, int64_t K,
                                 int64_t TotalNnz, uint64_t Seed) {
  // Uniform draws with nnz << I guarantee most slices/fibers stay empty;
  // the cap documents the intent rather than enforcing a distribution.
  return genRandomTensor3(I, J, K, std::min(TotalNnz, I / 2), Seed);
}

Triplets tensor::symmetrized(const Triplets &T) {
  CONVGEN_ASSERT(T.NumRows == T.NumCols, "symmetrization needs a square matrix");
  std::set<std::pair<int64_t, int64_t>> Seen;
  Triplets Out;
  Out.NumRows = T.NumRows;
  Out.NumCols = T.NumCols;
  for (const Entry &E : T.Entries) {
    if (Seen.insert({E.Row, E.Col}).second)
      Out.Entries.push_back(E);
    if (E.Row != E.Col && Seen.insert({E.Col, E.Row}).second)
      Out.Entries.push_back(Entry{E.Col, E.Row, E.Val});
  }
  Out.sortRowMajor();
  return Out;
}
