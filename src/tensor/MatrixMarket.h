//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Matrix Market (.mtx) coordinate-format I/O, so the benchmark corpus can
/// be swapped for the real SuiteSparse matrices when they are available.
/// Supports `matrix coordinate (real|integer|pattern) (general|symmetric)`.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TENSOR_MATRIXMARKET_H
#define CONVGEN_TENSOR_MATRIXMARKET_H

#include "tensor/Triplets.h"

#include <string>

namespace convgen {
namespace tensor {

/// Parses Matrix Market text. Returns false (with a diagnostic in
/// \p Error) on malformed input; symmetric inputs are expanded.
bool readMatrixMarket(const std::string &Text, Triplets *Out,
                      std::string *Error);

/// Reads a .mtx file from disk; false with diagnostic on failure.
bool readMatrixMarketFile(const std::string &Path, Triplets *Out,
                          std::string *Error);

/// Renders as `matrix coordinate real general` text (1-based indices).
std::string writeMatrixMarket(const Triplets &T);

} // namespace tensor
} // namespace convgen

#endif // CONVGEN_TENSOR_MATRIXMARKET_H
