//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Tns.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace convgen;
using namespace convgen::tensor;

namespace {

/// Splits on any whitespace run: FROSTT files mix tabs and spaces.
std::vector<std::string> splitWhitespace(const std::string &Line) {
  std::vector<std::string> Out;
  for (size_t At = 0; At < Line.size();) {
    while (At < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[At])))
      ++At;
    size_t End = At;
    while (End < Line.size() &&
           !std::isspace(static_cast<unsigned char>(Line[End])))
      ++End;
    if (End > At)
      Out.push_back(Line.substr(At, End - At));
    At = End;
  }
  return Out;
}

} // namespace

bool tensor::readTns(const std::string &Text, Triplets *Out,
                     std::string *Error) {
  std::istringstream In(Text);
  std::string Line;

  auto failRead = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };

  std::vector<int64_t> Dims;    // From "# dims:" if present.
  std::vector<int64_t> MaxSeen; // Fallback: per-mode coordinate maxima.
  std::vector<Entry> Entries;
  int Order = 0;

  while (std::getline(In, Line)) {
    Line = trim(Line);
    if (Line.empty())
      continue;
    if (Line[0] == '#' || Line[0] == '%') {
      std::string Comment = trim(Line.substr(1));
      if (Comment.rfind("dims:", 0) == 0) {
        for (const std::string &Tok :
             splitWhitespace(Comment.substr(5))) {
          char *End = nullptr;
          errno = 0;
          int64_t D = std::strtoll(Tok.c_str(), &End, 10);
          if (*End != '\0' || errno == ERANGE || D < 1)
            return failRead("malformed dims header: " + Line);
          Dims.push_back(D);
        }
      }
      continue;
    }
    std::vector<std::string> Toks = splitWhitespace(Line);
    if (Toks.size() < 3)
      return failRead("malformed entry (need >= 2 coordinates + value): " +
                      Line);
    int LineOrder = static_cast<int>(Toks.size()) - 1;
    if (Order == 0) {
      if (LineOrder > kMaxOrder)
        return failRead(strfmt("order %d exceeds the supported maximum %d",
                               LineOrder, kMaxOrder));
      Order = LineOrder;
      MaxSeen.assign(static_cast<size_t>(Order), 0);
    } else if (LineOrder != Order) {
      return failRead("inconsistent coordinate arity: " + Line);
    }
    std::vector<int64_t> Coords(static_cast<size_t>(Order));
    for (int D = 0; D < Order; ++D) {
      char *End = nullptr;
      errno = 0;
      int64_t C = std::strtoll(Toks[static_cast<size_t>(D)].c_str(), &End, 10);
      if (*End != '\0' || errno == ERANGE || C < 1)
        return failRead("malformed coordinate: " + Line);
      Coords[static_cast<size_t>(D)] = C - 1;
      MaxSeen[static_cast<size_t>(D)] =
          std::max(MaxSeen[static_cast<size_t>(D)], C);
    }
    char *End = nullptr;
    errno = 0;
    double V = std::strtod(Toks.back().c_str(), &End);
    if (*End != '\0' || (errno == ERANGE && (V == HUGE_VAL || V == -HUGE_VAL)))
      return failRead("malformed value: " + Line);
    Entries.push_back(Entry{Coords, V});
  }

  if (Order == 0) {
    // No entries: legal when a dims header fully defines the (empty)
    // tensor — the exact text writeTns produces for zero nonzeros.
    if (Dims.size() >= 2 && Dims.size() <= static_cast<size_t>(kMaxOrder)) {
      Triplets T;
      T.setDims(Dims);
      *Out = std::move(T);
      return true;
    }
    return failRead("no entries and no dims header");
  }
  if (!Dims.empty()) {
    if (static_cast<int>(Dims.size()) != Order)
      return failRead("dims header arity does not match the entries");
    for (int D = 0; D < Order; ++D)
      if (MaxSeen[static_cast<size_t>(D)] > Dims[static_cast<size_t>(D)])
        return failRead(strfmt("coordinate exceeds declared dimension %d", D));
  }

  Triplets T;
  T.setDims(Dims.empty() ? MaxSeen : Dims);
  T.Entries = std::move(Entries);
  T.sortRowMajor();
  *Out = std::move(T);
  return true;
}

bool tensor::readTnsFile(const std::string &Path, Triplets *Out,
                         std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t Got = 0;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  return readTns(Text, Out, Error);
}

std::string tensor::writeTns(const Triplets &T) {
  std::string Out = "# dims:";
  for (int64_t D : T.dims())
    Out += strfmt(" %lld", static_cast<long long>(D));
  Out += "\n";
  for (const Entry &E : T.Entries) {
    for (int D = 0; D < T.order(); ++D)
      Out += strfmt("%lld ", static_cast<long long>(E.coord(D) + 1));
    Out += strfmt("%.17g\n", E.Val);
  }
  return Out;
}
