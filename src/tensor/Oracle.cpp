//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Oracle.h"

#include "support/Assert.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace convgen;
using namespace convgen::tensor;

namespace {

SparseTensor makeBase(const formats::Format &Format, const Triplets &T) {
  SparseTensor Out;
  Out.Format = Format;
  Out.Dims = T.dims();
  Out.Levels.resize(Format.Levels.size());
  return Out;
}

/// COO family of any order: compressed(non-unique) root + singleton chain,
/// every stored dimension a plain canonical mode (possibly permuted — the
/// builder and reader honor the remap's mode order).
bool isCooLike(const formats::Format &F) {
  if (F.Levels.empty() || F.Levels[0].Kind != formats::LevelKind::Compressed ||
      F.Levels[0].Unique)
    return false;
  for (size_t K = 1; K < F.Levels.size(); ++K)
    if (F.Levels[K].Kind != formats::LevelKind::Singleton)
      return false;
  for (size_t D = 0; D < F.Remap.DstDims.size(); ++D)
    if (!remap::dimIsPlainVar(F.Remap, D))
      return false;
  return true;
}

/// CSF family of any order: every level compressed and unique, every stored
/// dimension a plain canonical mode (possibly permuted).
bool isCsfLike(const formats::Format &F) {
  for (const formats::LevelSpec &L : F.Levels)
    if (L.Kind != formats::LevelKind::Compressed || !L.Unique)
      return false;
  for (size_t D = 0; D < F.Remap.DstDims.size(); ++D)
    if (!remap::dimIsPlainVar(F.Remap, D))
      return false;
  return !F.Levels.empty() && F.Levels[0].Unique;
}

/// Canonical mode stored at each level, recovered from the remapping
/// ("(i,j,k) -> (j,i,k)" gives {1,0,2}).
std::vector<int> storedModeOrder(const formats::Format &F) {
  std::vector<int> Out;
  for (size_t D = 0; D < F.Remap.DstDims.size(); ++D) {
    std::string Var;
    bool Plain = remap::dimIsPlainVar(F.Remap, D, &Var);
    CONVGEN_ASSERT(Plain, "stored mode order requires plain-variable dims");
    auto It =
        std::find(F.Remap.SrcVars.begin(), F.Remap.SrcVars.end(), Var);
    Out.push_back(static_cast<int>(It - F.Remap.SrcVars.begin()));
  }
  return Out;
}

SparseTensor buildCOO(const formats::Format &Format, Triplets T) {
  std::vector<int> Modes = storedModeOrder(Format);
  T.sortByModeOrder(Modes);
  SparseTensor Out = makeBase(Format, T);
  int Order = Format.order();
  Out.Levels[0].Pos = {0, static_cast<int32_t>(T.nnz())};
  for (int K = 0; K < Order; ++K)
    Out.Levels[static_cast<size_t>(K)].Crd.reserve(T.Entries.size());
  Out.Vals.reserve(T.Entries.size());
  for (const Entry &E : T.Entries) {
    for (int K = 0; K < Order; ++K)
      Out.Levels[static_cast<size_t>(K)].Crd.push_back(
          static_cast<int32_t>(E.coord(Modes[static_cast<size_t>(K)])));
    Out.Vals.push_back(E.Val);
  }
  return Out;
}

SparseTensor buildCSF(const formats::Format &Format, Triplets T) {
  std::vector<int> Modes = storedModeOrder(Format);
  int Order = Format.order();
  T.sortByModeOrder(Modes);
  SparseTensor Out = makeBase(Format, T);

  // One node per distinct stored-coordinate prefix; ChildCounts[k][n] is
  // the fan-out of level-k node n into level k+1 (pos arrays by prefix sum).
  std::vector<std::vector<int32_t>> ChildCounts(
      static_cast<size_t>(Order));
  std::vector<int64_t> Prev(static_cast<size_t>(Order), -1);
  bool First = true;
  for (const Entry &E : T.Entries) {
    int Differs = First ? 0 : Order;
    for (int K = 0; K < Order && !First; ++K)
      if (E.coord(Modes[static_cast<size_t>(K)]) !=
          Prev[static_cast<size_t>(K)]) {
        Differs = K;
        break;
      }
    First = false;
    for (int K = Differs; K < Order; ++K) {
      int64_t C = E.coord(Modes[static_cast<size_t>(K)]);
      Out.Levels[static_cast<size_t>(K)].Crd.push_back(
          static_cast<int32_t>(C));
      ChildCounts[static_cast<size_t>(K)].push_back(0);
      if (K > 0)
        ++ChildCounts[static_cast<size_t>(K - 1)].back();
      Prev[static_cast<size_t>(K)] = C;
    }
    Out.Vals.push_back(E.Val);
  }
  // pos[k] accumulates the fan-out of level k-1 (the root has one parent).
  for (int K = 0; K < Order; ++K) {
    LevelStorage &L = Out.Levels[static_cast<size_t>(K)];
    if (K == 0) {
      L.Pos = {0, static_cast<int32_t>(L.Crd.size())};
      continue;
    }
    const std::vector<int32_t> &Counts =
        ChildCounts[static_cast<size_t>(K - 1)];
    L.Pos.reserve(Counts.size() + 1);
    L.Pos.push_back(0);
    for (int32_t C : Counts)
      L.Pos.push_back(L.Pos.back() + C);
  }
  return Out;
}

SparseTensor buildCSRLike(const formats::Format &Format, Triplets T,
                          bool ByColumn) {
  if (ByColumn)
    T.sortColMajor();
  else
    T.sortRowMajor();
  int64_t Outer = ByColumn ? T.NumCols : T.NumRows;
  SparseTensor Out = makeBase(Format, T);
  Out.Levels[1].Pos.assign(static_cast<size_t>(Outer) + 1, 0);
  for (const Entry &E : T.Entries)
    ++Out.Levels[1].Pos[static_cast<size_t>((ByColumn ? E.Col : E.Row) + 1)];
  for (size_t I = 1; I < Out.Levels[1].Pos.size(); ++I)
    Out.Levels[1].Pos[I] += Out.Levels[1].Pos[I - 1];
  Out.Levels[1].Crd.reserve(T.Entries.size());
  Out.Vals.reserve(T.Entries.size());
  for (const Entry &E : T.Entries) {
    Out.Levels[1].Crd.push_back(
        static_cast<int32_t>(ByColumn ? E.Row : E.Col));
    Out.Vals.push_back(E.Val);
  }
  return Out;
}

SparseTensor buildDIA(const formats::Format &Format, Triplets T) {
  T.sortRowMajor();
  std::set<int64_t> Offsets;
  for (const Entry &E : T.Entries)
    Offsets.insert(E.Col - E.Row);
  SparseTensor Out = makeBase(Format, T);
  int64_t K = static_cast<int64_t>(Offsets.size());
  Out.Levels[0].SizeParam = K;
  std::map<int64_t, int64_t> OffsetSlot;
  for (int64_t Offset : Offsets) {
    OffsetSlot[Offset] = static_cast<int64_t>(Out.Levels[0].Perm.size());
    Out.Levels[0].Perm.push_back(static_cast<int32_t>(Offset));
  }
  Out.Vals.assign(static_cast<size_t>(K * T.NumRows), 0.0);
  for (const Entry &E : T.Entries) {
    int64_t Slot = OffsetSlot[E.Col - E.Row];
    Out.Vals[static_cast<size_t>(Slot * T.NumRows + E.Row)] = E.Val;
  }
  return Out;
}

SparseTensor buildELL(const formats::Format &Format, Triplets T) {
  T.sortRowMajor();
  SparseTensor Out = makeBase(Format, T);
  int64_t K = T.maxRowCount();
  Out.Levels[0].SizeParam = K;
  Out.Levels[2].Crd.assign(static_cast<size_t>(K * T.NumRows), 0);
  Out.Vals.assign(static_cast<size_t>(K * T.NumRows), 0.0);
  std::vector<int64_t> RowFill(static_cast<size_t>(T.NumRows), 0);
  for (const Entry &E : T.Entries) {
    int64_t Slice = RowFill[static_cast<size_t>(E.Row)]++;
    size_t P = static_cast<size_t>(Slice * T.NumRows + E.Row);
    Out.Levels[2].Crd[P] = static_cast<int32_t>(E.Col);
    Out.Vals[P] = E.Val;
  }
  return Out;
}

SparseTensor buildBCSR(const formats::Format &Format, Triplets T) {
  CONVGEN_ASSERT(Format.StaticParams.size() == 2,
                 "BCSR format must carry its block dimensions");
  int64_t R = Format.StaticParams[0];
  int64_t C = Format.StaticParams[1];
  int64_t BlockRows = (T.NumRows + R - 1) / R;
  SparseTensor Out = makeBase(Format, T);

  // Distinct nonzero blocks per block row, in (block row, block col) order.
  std::set<std::pair<int64_t, int64_t>> Blocks;
  for (const Entry &E : T.Entries)
    Blocks.insert({E.Row / R, E.Col / C});

  Out.Levels[1].Pos.assign(static_cast<size_t>(BlockRows) + 1, 0);
  std::map<std::pair<int64_t, int64_t>, int64_t> BlockSlot;
  for (const auto &B : Blocks) {
    BlockSlot[B] = static_cast<int64_t>(Out.Levels[1].Crd.size());
    Out.Levels[1].Crd.push_back(static_cast<int32_t>(B.second));
    ++Out.Levels[1].Pos[static_cast<size_t>(B.first) + 1];
  }
  for (size_t I = 1; I < Out.Levels[1].Pos.size(); ++I)
    Out.Levels[1].Pos[I] += Out.Levels[1].Pos[I - 1];

  Out.Vals.assign(Blocks.size() * static_cast<size_t>(R * C), 0.0);
  for (const Entry &E : T.Entries) {
    int64_t Slot = BlockSlot[{E.Row / R, E.Col / C}];
    int64_t P = (Slot * R + E.Row % R) * C + E.Col % C;
    Out.Vals[static_cast<size_t>(P)] = E.Val;
  }
  return Out;
}

SparseTensor buildSKY(const formats::Format &Format, Triplets T) {
  T.sortRowMajor();
  SparseTensor Out = makeBase(Format, T);
  // First nonzero column per row; rows without nonzeros store nothing.
  std::vector<int64_t> FirstCol(static_cast<size_t>(T.NumRows), -1);
  for (const Entry &E : T.Entries) {
    if (E.Col > E.Row)
      fatalError("skyline oracle requires a lower-triangular matrix");
    int64_t &W = FirstCol[static_cast<size_t>(E.Row)];
    if (W < 0 || E.Col < W)
      W = E.Col;
  }
  Out.Levels[1].Pos.assign(static_cast<size_t>(T.NumRows) + 1, 0);
  for (int64_t I = 0; I < T.NumRows; ++I) {
    int64_t Count =
        FirstCol[static_cast<size_t>(I)] < 0
            ? 0
            : I - FirstCol[static_cast<size_t>(I)] + 1;
    Out.Levels[1].Pos[static_cast<size_t>(I) + 1] =
        Out.Levels[1].Pos[static_cast<size_t>(I)] +
        static_cast<int32_t>(Count);
  }
  Out.Vals.assign(static_cast<size_t>(Out.Levels[1].Pos.back()), 0.0);
  for (const Entry &E : T.Entries) {
    int64_t P = Out.Levels[1].Pos[static_cast<size_t>(E.Row) + 1] + E.Col -
                E.Row - 1;
    Out.Vals[static_cast<size_t>(P)] = E.Val;
  }
  return Out;
}

} // namespace

SparseTensor tensor::buildFromTriplets(const formats::Format &Format,
                                       const Triplets &T) {
  if (T.hasDuplicates())
    fatalError("oracle: input triplets contain duplicate coordinates");
  for (const Entry &E : T.Entries)
    for (int D = 0; D < T.order(); ++D)
      if (E.coord(D) < 0 || E.coord(D) >= T.dim(D))
        fatalError("oracle: triplet coordinates out of bounds");

  SparseTensor Out = [&] {
    if (isCooLike(Format))
      return buildCOO(Format, T);
    if (isCsfLike(Format))
      return buildCSF(Format, T);
    if (Format.Name == "csr")
      return buildCSRLike(Format, T, /*ByColumn=*/false);
    if (Format.Name == "csc")
      return buildCSRLike(Format, T, /*ByColumn=*/true);
    if (Format.Name == "dia")
      return buildDIA(Format, T);
    if (Format.Name == "ell")
      return buildELL(Format, T);
    if (Format.Name.rfind("bcsr", 0) == 0)
      return buildBCSR(Format, T);
    if (Format.Name == "sky")
      return buildSKY(Format, T);
    fatalError(("oracle: no builder for format '" + Format.Name + "'")
                   .c_str());
  }();
  Out.validate();
  return Out;
}

Triplets tensor::toTriplets(const SparseTensor &T) {
  Triplets Out;
  Out.setDims(T.Dims);
  const formats::Format &F = T.Format;
  auto keep = [&](int64_t Row, int64_t Col, double Val) {
    if (!F.PaddedVals || Val != 0)
      Out.Entries.push_back(Entry{Row, Col, Val});
  };

  if (isCooLike(F)) {
    std::vector<int> Modes = storedModeOrder(F);
    int Order = F.order();
    for (size_t P = 0; P < T.Vals.size(); ++P) {
      std::vector<int64_t> Coords(static_cast<size_t>(Order));
      for (int K = 0; K < Order; ++K)
        Coords[static_cast<size_t>(Modes[static_cast<size_t>(K)])] =
            T.Levels[static_cast<size_t>(K)].Crd[P];
      Out.Entries.push_back(Entry{Coords, T.Vals[P]});
    }
    return Out;
  }
  if (isCsfLike(F)) {
    std::vector<int> Modes = storedModeOrder(F);
    int Order = F.order();
    // Depth-first walk over the pos/crd hierarchy; the leaf position
    // indexes the values array.
    std::vector<int64_t> Stored(static_cast<size_t>(Order));
    std::function<void(int, int64_t)> Walk = [&](int K, int64_t Parent) {
      const LevelStorage &L = T.Levels[static_cast<size_t>(K)];
      for (int64_t P = L.Pos[static_cast<size_t>(Parent)];
           P < L.Pos[static_cast<size_t>(Parent) + 1]; ++P) {
        Stored[static_cast<size_t>(K)] = L.Crd[static_cast<size_t>(P)];
        if (K + 1 < Order) {
          Walk(K + 1, P);
          continue;
        }
        std::vector<int64_t> Coords(static_cast<size_t>(Order));
        for (int D = 0; D < Order; ++D)
          Coords[static_cast<size_t>(Modes[static_cast<size_t>(D)])] =
              Stored[static_cast<size_t>(D)];
        Out.Entries.push_back(Entry{Coords, T.Vals[static_cast<size_t>(P)]});
      }
    };
    Walk(0, 0);
    return Out;
  }
  if (F.Name == "csr" || F.Name == "csc") {
    bool ByColumn = F.Name == "csc";
    int64_t Outer = ByColumn ? Out.NumCols : Out.NumRows;
    for (int64_t I = 0; I < Outer; ++I)
      for (int32_t P = T.Levels[1].Pos[static_cast<size_t>(I)];
           P < T.Levels[1].Pos[static_cast<size_t>(I) + 1]; ++P) {
        int64_t J = T.Levels[1].Crd[static_cast<size_t>(P)];
        keep(ByColumn ? J : I, ByColumn ? I : J, T.Vals[static_cast<size_t>(P)]);
      }
    return Out;
  }
  if (F.Name == "dia") {
    int64_t K = T.Levels[0].SizeParam;
    int64_t M = Out.NumRows;
    for (int64_t S = 0; S < K; ++S) {
      int64_t Offset = T.Levels[0].Perm[static_cast<size_t>(S)];
      for (int64_t I = 0; I < M; ++I) {
        int64_t J = I + Offset;
        if (J < 0 || J >= Out.NumCols)
          continue;
        keep(I, J, T.Vals[static_cast<size_t>(S * M + I)]);
      }
    }
    return Out;
  }
  if (F.Name == "ell") {
    int64_t K = T.Levels[0].SizeParam;
    int64_t M = Out.NumRows;
    for (int64_t S = 0; S < K; ++S)
      for (int64_t I = 0; I < M; ++I) {
        size_t P = static_cast<size_t>(S * M + I);
        keep(I, T.Levels[2].Crd[P], T.Vals[P]);
      }
    return Out;
  }
  if (F.Name.rfind("bcsr", 0) == 0) {
    int64_t R = F.StaticParams.at(0);
    int64_t C = F.StaticParams.at(1);
    int64_t BlockRows = (Out.NumRows + R - 1) / R;
    for (int64_t IB = 0; IB < BlockRows; ++IB)
      for (int32_t P = T.Levels[1].Pos[static_cast<size_t>(IB)];
           P < T.Levels[1].Pos[static_cast<size_t>(IB) + 1]; ++P) {
        int64_t JB = T.Levels[1].Crd[static_cast<size_t>(P)];
        for (int64_t IL = 0; IL < R; ++IL)
          for (int64_t JL = 0; JL < C; ++JL) {
            int64_t Row = IB * R + IL;
            int64_t Col = JB * C + JL;
            if (Row >= Out.NumRows || Col >= Out.NumCols)
              continue;
            keep(Row, Col, T.Vals[static_cast<size_t>((P * R + IL) * C + JL)]);
          }
      }
    return Out;
  }
  if (F.Name == "sky") {
    for (int64_t I = 0; I < Out.NumRows; ++I) {
      int64_t Begin = T.Levels[1].Pos[static_cast<size_t>(I)];
      int64_t End = T.Levels[1].Pos[static_cast<size_t>(I) + 1];
      for (int64_t P = Begin; P < End; ++P) {
        int64_t J = P - End + I + 1; // inverse of pos[i+1] + j - i - 1
        keep(I, J, T.Vals[static_cast<size_t>(P)]);
      }
    }
    return Out;
  }
  fatalError(("oracle: no reader for format '" + F.Name + "'").c_str());
}
