//===----------------------------------------------------------------------===//
// End-to-end tests for generated conversion routines: every supported
// (source, target) format pair, on every test matrix, validated against the
// independent oracle builders. This is the main correctness property of the
// system: convert(build(src, T)) == build(dst, T).
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "formats/Standard.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

using namespace convgen;

namespace {

std::vector<std::string> formatNames() {
  return {"coo", "csr", "csc", "dia", "ell", "bcsr", "sky"};
}

bool needsLowerTriangular(const std::string &Name) { return Name == "sky"; }

bool matrixIsLowerTriangular(const tensor::Triplets &T) {
  for (const tensor::Entry &E : T.Entries)
    if (E.Col > E.Row)
      return false;
  return true;
}

tensor::Triplets matrixByName(const std::string &Name) {
  for (auto &[N, T] : tensor::testMatrices())
    if (N == Name)
      return T;
  ADD_FAILURE() << "unknown matrix " << Name;
  return {};
}

} // namespace

//===----------------------------------------------------------------------===//
// Support matrix
//===----------------------------------------------------------------------===//

TEST(ConversionSupport, ExpectedPairs) {
  // Every standard pair is supported. BCSR targets need deduplicating
  // assembly; sources that cannot provide the row-major iteration order
  // the sequenced workspace wants (csc/dia/ell/bcsr) fall back to ranked
  // dedup insertion, which assumes nothing about the source's order.
  for (const std::string &Src : formatNames())
    for (const std::string &Dst : formatNames()) {
      std::string Why;
      bool Supported =
          codegen::conversionSupported(formats::standardFormatOrDie(Src),
                                       formats::standardFormatOrDie(Dst),
                                       &Why);
      EXPECT_TRUE(Supported) << Src << " -> " << Dst << ": " << Why;
    }
}

//===----------------------------------------------------------------------===//
// All-pairs correctness
//===----------------------------------------------------------------------===//

struct ConvCase {
  std::string Src, Dst, Matrix;
};

class ConversionCorrect : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConversionCorrect, MatchesOracle) {
  const ConvCase &C = GetParam();
  formats::Format Src = formats::standardFormatOrDie(C.Src);
  formats::Format Dst = formats::standardFormatOrDie(C.Dst);
  if (!codegen::conversionSupported(Src, Dst))
    GTEST_SKIP() << "documented unsupported pair";
  tensor::Triplets T = matrixByName(C.Matrix);
  if ((needsLowerTriangular(C.Src) || needsLowerTriangular(C.Dst)) &&
      !matrixIsLowerTriangular(T))
    GTEST_SKIP() << "skyline requires lower-triangular input";

  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  convert::Converter Conv(Src, Dst);
  tensor::SparseTensor Out = Conv.run(In);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T))
      << C.Src << " -> " << C.Dst << " on " << C.Matrix << "\n"
      << Conv.conversion().pretty();
}

namespace {

std::vector<ConvCase> allCases() {
  std::vector<ConvCase> Cases;
  for (const std::string &Src : formatNames())
    for (const std::string &Dst : formatNames())
      for (auto &[Name, T] : tensor::testMatrices())
        Cases.push_back({Src, Dst, Name});
  return Cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPairs, ConversionCorrect,
                         ::testing::ValuesIn(allCases()),
                         [](const auto &Info) {
                           return Info.param.Src + "_to_" + Info.param.Dst +
                                  "_" + Info.param.Matrix;
                         });

//===----------------------------------------------------------------------===//
// All-pairs correctness, order 3: coo3/csf/csf-permuted on every test
// tensor, against the oracle builders. CSF targets exercise edge insertion
// below compressed ancestors (ranked dedup); the permuted pairs exercise
// nontrivial 3-D coordinate remappings.
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> format3Names() {
  return {"coo3", "csf", "csf_102", "csf_021"};
}

tensor::Triplets tensor3ByName(const std::string &Name) {
  for (auto &[N, T] : tensor::testTensors3())
    if (N == Name)
      return T;
  ADD_FAILURE() << "unknown tensor " << Name;
  return {};
}

} // namespace

TEST(ConversionSupport, AllOrder3PairsSupported) {
  for (const std::string &Src : format3Names())
    for (const std::string &Dst : format3Names()) {
      std::string Why;
      EXPECT_TRUE(
          codegen::conversionSupported(formats::standardFormatOrDie(Src),
                                       formats::standardFormatOrDie(Dst),
                                       &Why))
          << Src << " -> " << Dst << ": " << Why;
    }
}

class Conversion3Correct : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conversion3Correct, MatchesOracle) {
  const ConvCase &C = GetParam();
  formats::Format Src = formats::standardFormatOrDie(C.Src);
  formats::Format Dst = formats::standardFormatOrDie(C.Dst);
  tensor::Triplets T = tensor3ByName(C.Matrix);
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  convert::Converter Conv(Src, Dst);
  tensor::SparseTensor Out = Conv.run(In);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T))
      << C.Src << " -> " << C.Dst << " on " << C.Matrix << "\n"
      << Conv.conversion().pretty();
}

namespace {

std::vector<ConvCase> allCases3() {
  std::vector<ConvCase> Cases;
  for (const std::string &Src : format3Names())
    for (const std::string &Dst : format3Names())
      for (auto &[Name, T] : tensor::testTensors3())
        Cases.push_back({Src, Dst, Name});
  return Cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPairs3, Conversion3Correct,
                         ::testing::ValuesIn(allCases3()),
                         [](const auto &Info) {
                           return Info.param.Src + "_to_" + Info.param.Dst +
                                  "_" + Info.param.Matrix;
                         });

TEST(Conversion3, CsfRoundTripSortsUnorderedCoo) {
  // coo3 -> csf -> coo3 is the canonical sort pipeline: CSF's ranked
  // assembly accepts coordinates in any order and its stored order is
  // lexicographic, so reading it back yields sorted coo3.
  tensor::Triplets T = tensor3ByName("random3");
  tensor::SparseTensor Coo =
      tensor::buildFromTriplets(formats::makeCOO(3), T);
  convert::Converter ToCsf(formats::makeCOO(3), formats::makeCSF(3));
  convert::Converter Back(formats::makeCSF(3), formats::makeCOO(3));
  tensor::SparseTensor Sorted = Back.run(ToCsf.run(Coo));
  Sorted.validate();
  // Bit-identical to the oracle's sorted coo3 build.
  tensor::SparseTensor Want =
      tensor::buildFromTriplets(formats::makeCOO(3), T);
  EXPECT_EQ(Sorted.Levels[0].Crd, Want.Levels[0].Crd);
  EXPECT_EQ(Sorted.Levels[1].Crd, Want.Levels[1].Crd);
  EXPECT_EQ(Sorted.Levels[2].Crd, Want.Levels[2].Crd);
  EXPECT_EQ(Sorted.Vals, Want.Vals);
}

//===----------------------------------------------------------------------===//
// Source-order validation at the conversion boundary: plans whose dedup
// assembly trusts the source's iteration order reject unsorted inputs.
//===----------------------------------------------------------------------===//

TEST(SourceOrder, ChainedCscCooBcsrErrorsOutOnColumnMajorCoo) {
  // csc -> coo legally yields *column-major* coo (a valid tensor whose
  // row crd array is unsorted). Feeding it into coo -> bcsr used to
  // assemble garbage silently, because bcsr's sequenced dedup assembly
  // assumes the grouping coordinates arrive as an ordered prefix (the
  // ROADMAP's open sortedness item). The boundary check now rejects it.
  tensor::Triplets T = matrixByName("banded_random");
  tensor::SparseTensor Csc =
      tensor::buildFromTriplets(formats::makeCSC(), T);
  convert::Converter ToCoo(formats::makeCSC(), formats::makeCOO());
  tensor::SparseTensor ColMajorCoo = ToCoo.run(Csc);
  ColMajorCoo.validate(); // a perfectly valid (unsorted) coo tensor
  EXPECT_FALSE(ColMajorCoo.lexOrderedUpTo(1));

  convert::Converter ToBcsr(formats::makeCOO(), formats::makeBCSR(4, 4));
  // Formerly a death test; the boundary check is now a recoverable error
  // (run() still aborts with the same message for unchecked callers).
  StatusOr<tensor::SparseTensor> Rejected = ToBcsr.tryRun(ColMajorCoo);
  ASSERT_FALSE(Rejected.ok());
  EXPECT_EQ(Rejected.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(Rejected.status().message().find("lexicographically sorted"),
            std::string::npos)
      << Rejected.status().message();

  // The same matrix through a sorted coo converts fine and matches the
  // oracle (the check rejects unsorted *inputs*, not the pair).
  tensor::SparseTensor SortedCoo =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  tensor::SparseTensor Out = ToBcsr.run(SortedCoo);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
}

TEST(SourceOrder, CsfTargetsAcceptUnsortedSourcesViaRankedAssembly) {
  // Ranked dedup assembly assumes nothing about source order, so CSF
  // targets carry no lex requirement at all: converting column-major coo3
  // (built by permuting a sorted tensor through csf_102) works and agrees
  // with the oracle.
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCOO(3), formats::makeCSF(3));
  EXPECT_EQ(Conv.LexCheckLevels, 0);
  codegen::Conversion ToBcsr = codegen::generateConversion(
      formats::makeCOO(), formats::makeBCSR(4, 4));
  EXPECT_EQ(ToBcsr.LexCheckLevels, 1);
}

//===----------------------------------------------------------------------===//
// Option variants exercise the ablation paths on the seven paper pairs.
//===----------------------------------------------------------------------===//

struct OptionCase {
  const char *Name;
  codegen::Options Opts;
};

class ConversionOptions : public ::testing::TestWithParam<OptionCase> {};

TEST_P(ConversionOptions, Table3PairsStillCorrect) {
  const codegen::Options &Opts = GetParam().Opts;
  const std::pair<const char *, const char *> Pairs[] = {
      {"coo", "csr"}, {"coo", "dia"}, {"csr", "csc"}, {"csr", "dia"},
      {"csr", "ell"}, {"csc", "dia"}, {"csc", "ell"}};
  tensor::Triplets T = matrixByName("banded_random");
  for (auto [S, D] : Pairs) {
    formats::Format Src = formats::standardFormatOrDie(S);
    formats::Format Dst = formats::standardFormatOrDie(D);
    tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
    convert::Converter Conv(Src, Dst, Opts);
    tensor::SparseTensor Out = Conv.run(In);
    Out.validate();
    EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T))
        << S << " -> " << D << " with options " << GetParam().Name;
  }
}

namespace {

codegen::Options makeOpts(bool OptQ, bool CntReuse, bool Unseq, bool Mat) {
  codegen::Options O;
  O.OptimizeQueries = OptQ;
  O.CounterReuse = CntReuse;
  O.ForceUnseqEdges = Unseq;
  O.MaterializeRemap = Mat;
  return O;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Ablations, ConversionOptions,
    ::testing::Values(
        OptionCase{"default", makeOpts(true, true, false, false)},
        OptionCase{"no_query_opt", makeOpts(false, true, false, false)},
        OptionCase{"no_counter_reuse", makeOpts(true, false, false, false)},
        OptionCase{"unseq_edges", makeOpts(true, true, true, false)},
        OptionCase{"materialized_remap", makeOpts(true, true, false, true)},
        OptionCase{"all_off", makeOpts(false, false, true, true)}),
    [](const auto &Info) { return std::string(Info.param.Name); });

//===----------------------------------------------------------------------===//
// Generated-code structure: the Figure 6 golden properties.
//===----------------------------------------------------------------------===//

TEST(GeneratedCode, CsrToEllUsesScalarCounterAndPosWidths) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeELL());
  std::string Code = Conv.pretty();
  // K comes from pos-array widths (Figure 6b lines 1-5), not a histogram.
  EXPECT_NE(Code.find("A2_pos[i + 1] - A2_pos[i]"), std::string::npos)
      << Code;
  // The counter is a reused scalar, not an array (§4.2).
  EXPECT_EQ(Code.find("cnt0 = (int32_t*)calloc"), std::string::npos) << Code;
  EXPECT_NE(Code.find("cnt0 = 0"), std::string::npos) << Code;
}

TEST(GeneratedCode, CscToEllUsesCounterArray) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSC(), formats::makeELL());
  std::string Code = Conv.pretty();
  EXPECT_NE(Code.find("cnt0 = (int32_t*)calloc"), std::string::npos) << Code;
}

TEST(GeneratedCode, CooToCsrHasHistogramPrefixSumAndShift) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCOO(), formats::makeCSR());
  std::string Code = Conv.pretty();
  // Histogram count per row (analysis), sequenced edge insertion
  // (pos[i+1] = pos[i] + count), and the finalize shift of Figure 6c.
  EXPECT_NE(Code.find("q2_nir"), std::string::npos) << Code;
  EXPECT_NE(Code.find("B2_pos[e1 + 1] = B2_pos[e1] + q2_nir[e1]"),
            std::string::npos)
      << Code;
  EXPECT_NE(Code.find("B2_pos[0] = 0"), std::string::npos) << Code;
}

TEST(GeneratedCode, CsrToDiaBuildsPermAndRperm) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeDIA());
  std::string Code = Conv.pretty();
  EXPECT_NE(Code.find("q1_nz"), std::string::npos) << Code;      // id bit set
  EXPECT_NE(Code.find("B1_perm"), std::string::npos) << Code;    // perm build
  EXPECT_NE(Code.find("B1_rperm"), std::string::npos) << Code;   // inverse
  EXPECT_NE(Code.find("j - i"), std::string::npos) << Code;      // remap
}

TEST(GeneratedCode, QueriesExposedForInspection) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeELL());
  ASSERT_EQ(Conv.Queries.size(), 1u);
  EXPECT_EQ(Conv.Queries[0].first, "q1_max_crd");
  // Optimized to a single prefix sweep over the pos array.
  EXPECT_EQ(query::printCin(Conv.Queries[0].second),
            "forall(src:1) q1_max_crd[] max= nnz(B, level 2)\n");
}
