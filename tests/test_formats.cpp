//===----------------------------------------------------------------------===//
// Tests for src/formats: standard format specifications and validation.
//===----------------------------------------------------------------------===//

#include "formats/Standard.h"
#include "remap/RemapParser.h"

#include <gtest/gtest.h>

using namespace convgen;
using namespace convgen::formats;

TEST(Formats, SummariesMatchPaperSpecs) {
  EXPECT_EQ(makeCSR().summary(), "csr: (i,j) -> (i,j); dense,compressed");
  EXPECT_EQ(makeCSC().summary(), "csc: (i,j) -> (j,i); dense,compressed");
  EXPECT_EQ(makeCOO().summary(),
            "coo: (i,j) -> (i,j); compressed(non-unique),singleton");
  EXPECT_EQ(makeDIA().summary(),
            "dia: (i,j) -> (j-i,i,j); squeezed,dense,offset; padded");
  EXPECT_EQ(makeELL().summary(),
            "ell: (i,j) -> (k=#i in k,i,j); sliced,dense,singleton; padded");
  EXPECT_EQ(makeSKY().summary(), "sky: (i,j) -> (i,j); dense,skyline; padded");
}

TEST(Formats, BcsrParameterized) {
  Format F = makeBCSR(2, 3);
  EXPECT_EQ(F.Name, "bcsr2x3");
  EXPECT_EQ(remap::printRemap(F.Remap), "(i,j) -> (i/2,j/3,i%2,j%3)");
  EXPECT_EQ(remap::printRemap(F.Inverse), "(d0,d1,d2,d3) -> (d0*2+d2,d1*3+d3)");
  ASSERT_EQ(F.StaticParams.size(), 2u);
  EXPECT_EQ(F.StaticParams[0], 2);
  EXPECT_EQ(F.StaticParams[1], 3);
}

TEST(Formats, LevelSizeParams) {
  EXPECT_TRUE(makeDIA().levelHasSizeParam(0));
  EXPECT_FALSE(makeDIA().levelHasSizeParam(1));
  EXPECT_TRUE(makeELL().levelHasSizeParam(0));
  EXPECT_FALSE(makeCSR().levelHasSizeParam(0));
}

TEST(Formats, RegistryLookup) {
  for (const char *Name : {"coo", "csr", "csc", "dia", "ell", "bcsr", "sky"})
    EXPECT_TRUE(standardFormat(Name).has_value()) << Name;
  EXPECT_EQ(standardFormat("bcsr")->Name, "bcsr4x4");
  EXPECT_EQ(allStandardFormats().size(), 7u);
}

TEST(Formats, RegistryLookupHigherOrder) {
  ASSERT_TRUE(standardFormat("coo3").has_value());
  EXPECT_EQ(standardFormat("coo3")->Name, "coo3");
  EXPECT_EQ(standardFormat("coo3")->SrcOrder, 3);
  std::optional<Format> Csf = standardFormat("csf");
  ASSERT_TRUE(Csf.has_value());
  EXPECT_EQ(Csf->order(), 3);
  for (const LevelSpec &L : Csf->Levels) {
    EXPECT_EQ(L.Kind, LevelKind::Compressed);
    EXPECT_TRUE(L.Unique);
  }
  ASSERT_TRUE(standardFormat("csf_102").has_value());
  EXPECT_EQ(standardFormat("csf_102")->Name, "csf_102");
  EXPECT_EQ(remap::printRemap(standardFormat("csf_102")->Remap),
            "(i,j,k) -> (j,i,k)");
  EXPECT_EQ(remap::printRemap(standardFormat("csf_102")->Inverse),
            "(d0,d1,d2) -> (d1,d0,d2)");
  EXPECT_EQ(standardOrder3Formats().size(), 4u);
}

TEST(Formats, RegistryRejectsUnknownNamesWithoutAborting) {
  EXPECT_FALSE(standardFormat("").has_value());
  EXPECT_FALSE(standardFormat("cootie").has_value());
  EXPECT_FALSE(standardFormat("coo9").has_value());
  EXPECT_FALSE(standardFormat("csf_11").has_value());  // not a permutation
  EXPECT_FALSE(standardFormat("csf_19").has_value());  // mode out of range
  EXPECT_FALSE(standardFormat("csrx").has_value());
}

TEST(Formats, CsfPermutedIdentityCollapses) {
  EXPECT_EQ(makeCSFPermuted({0, 1, 2}).Name, "csf");
  EXPECT_EQ(makeCSF(4).Name, "csf4");
  EXPECT_EQ(makeCOO(3).Name, "coo3");
}

TEST(Formats, DiaOffsetLevelNamesAddends) {
  Format F = makeDIA();
  EXPECT_EQ(F.Levels[2].Kind, LevelKind::Offset);
  EXPECT_EQ(F.Levels[2].AddendDims[0], 0);
  EXPECT_EQ(F.Levels[2].AddendDims[1], 1);
}

TEST(FormatsDeath, ValidationCatchesArityMismatch) {
  Format F = makeCSR();
  F.Levels.pop_back();
  EXPECT_DEATH(validateFormat(F), "one level per remapped dimension");
}

TEST(FormatsDeath, ValidationCatchesBadInverse) {
  Format F = makeCSR();
  F.Inverse = remap::parseRemapOrDie("(d0) -> (d0)");
  EXPECT_DEATH(validateFormat(F), "inverse");
}
