//===----------------------------------------------------------------------===//
// Cross-module integration and property tests: conversion chains through
// many formats must be lossless, the attribute query parser round-trips,
// conversions compose with SpMV, and Matrix Market round trips survive a
// conversion in the middle.
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "kernels/SpMV.h"
#include "query/Parser.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/MatrixMarket.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

#include <random>

using namespace convgen;

//===----------------------------------------------------------------------===//
// Conversion chains: COO -> F1 -> F2 -> ... -> COO preserves the matrix.
//===----------------------------------------------------------------------===//

namespace {

tensor::SparseTensor convertTo(const tensor::SparseTensor &In,
                               const std::string &Dst) {
  convert::Converter Conv(In.Format, formats::standardFormatOrDie(Dst));
  tensor::SparseTensor Out = Conv.run(In);
  Out.validate();
  return Out;
}

} // namespace

TEST(ConversionChains, RandomWalksAreLossless) {
  // Random walks through the supported-conversion graph; every step must
  // preserve the canonical triplets. (BCSR is excluded as an intermediate
  // hop since not every format can convert into it.)
  const std::vector<std::string> Hops = {"coo", "csr", "csc", "dia", "ell"};
  tensor::Triplets T = tensor::genBandedRandom(45, 45, 4.0, 12, 10, 2024);
  std::mt19937_64 Rng(7);
  for (int Walk = 0; Walk < 6; ++Walk) {
    tensor::SparseTensor Cur =
        tensor::buildFromTriplets(formats::makeCOO(), T);
    std::string Path = "coo";
    for (int Step = 0; Step < 5; ++Step) {
      std::string Next = Hops[Rng() % Hops.size()];
      Cur = convertTo(Cur, Next);
      Path += " -> " + Next;
      ASSERT_TRUE(tensor::equal(tensor::toTriplets(Cur), T)) << Path;
    }
  }
}

TEST(ConversionChains, EveryFormatRoundTripsThroughEveryOther) {
  tensor::Triplets T = tensor::genDiagonals(24, 30, {-3, -1, 0, 2}, 0.9, 3);
  for (const std::string &Mid : {"coo", "csr", "csc", "dia", "ell"}) {
    tensor::SparseTensor Csr =
        tensor::buildFromTriplets(formats::makeCSR(), T);
    tensor::SparseTensor Back = convertTo(convertTo(Csr, Mid), "csr");
    EXPECT_TRUE(tensor::equal(tensor::toTriplets(Back), T)) << Mid;
  }
}

TEST(ConversionChains, SpmvInvariantAcrossFormats) {
  // y = A x must be identical (up to fp association) no matter which
  // chain of conversions produced A's representation.
  tensor::Triplets T = tensor::genBandedRandom(60, 60, 5.0, 11, 9, 77);
  std::vector<double> X(60);
  for (size_t I = 0; I < X.size(); ++I)
    X[I] = 1.0 / static_cast<double>(I + 1);
  tensor::SparseTensor Coo = tensor::buildFromTriplets(formats::makeCOO(), T);
  std::vector<double> Ref = kernels::spmvReference(Coo, X);
  tensor::SparseTensor Dia = convertTo(convertTo(Coo, "csr"), "dia");
  tensor::SparseTensor Ell = convertTo(convertTo(Coo, "csc"), "ell");
  for (const tensor::SparseTensor *A : {&Dia, &Ell}) {
    std::vector<double> Y = kernels::spmv(*A, X);
    for (size_t I = 0; I < Y.size(); ++I)
      EXPECT_NEAR(Y[I], Ref[I], 1e-9);
  }
}

//===----------------------------------------------------------------------===//
// Attribute query parser
//===----------------------------------------------------------------------===//

TEST(QueryParser, PaperExamples) {
  // Figure 10's queries, with dimension names i,j for a matrix.
  query::QueryParseResult R =
      query::parseQuery("select [i] -> count(j) as nir", {"i", "j"});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(query::printQuery(R.Parsed), "select [d0] -> count(d1) as nir");

  R = query::parseQuery("select [i] -> min(j) as minir, max(j) as maxir",
                        {"i", "j"});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(query::printQuery(R.Parsed),
            "select [d0] -> min(d1) as minir, max(d1) as maxir");

  R = query::parseQuery("select [j] -> id() as ne", {"i", "j"});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(query::printQuery(R.Parsed), "select [d1] -> id() as ne");

  R = query::parseQuery("select [] -> count(i, j) as nnz_total", {"i", "j"});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Parsed.GroupDims.size(), 0u);
  EXPECT_EQ(R.Parsed.Aggs[0].Dims, (std::vector<int>{0, 1}));
}

TEST(QueryParser, DefaultDimNames) {
  query::Query Q = query::parseQueryOrDie("select [d0] -> id() as nz", 3);
  EXPECT_EQ(query::printQuery(Q), "select [d0] -> id() as nz");
}

TEST(QueryParser, Errors) {
  auto expectError = [](const char *Text, const char *Fragment) {
    query::QueryParseResult R = query::parseQuery(Text, {"i", "j"});
    EXPECT_FALSE(R.Ok) << Text;
    EXPECT_NE(R.Error.find(Fragment), std::string::npos)
        << Text << ": " << R.Error;
  };
  expectError("pick [i] -> id() as x", "expected 'select'");
  expectError("select [z] -> id() as x", "unknown dimension variable");
  expectError("select [i] -> frob(j) as x", "unknown aggregation");
  expectError("select [i] -> max(i, j) as x", "exactly one dimension");
  expectError("select [i] -> count() as x", "at least one dimension");
  expectError("select [i] -> id(i) as x", "no arguments");
  expectError("select [i] -> id() as x garbage", "trailing");
  expectError("select [i] -> id()", "expected 'as");
}

TEST(QueryParser, ParsedQueryDrivesLevelAssembly) {
  // A parsed query prints identically to the query the compressed level
  // declares — the textual language and the level formats agree.
  query::Query Parsed =
      query::parseQueryOrDie("select [d0] -> count(d1) as nir", 2);
  EXPECT_EQ(query::printQuery(Parsed), "select [d0] -> count(d1) as nir");
}

//===----------------------------------------------------------------------===//
// Matrix Market end to end
//===----------------------------------------------------------------------===//

TEST(Integration, MtxThroughConversionRoundTrip) {
  tensor::Triplets T = tensor::genRandomUniform(25, 19, 3.0, 9, 55);
  std::string Mtx = tensor::writeMatrixMarket(T);
  tensor::Triplets Read;
  std::string Error;
  ASSERT_TRUE(tensor::readMatrixMarket(Mtx, &Read, &Error)) << Error;
  tensor::SparseTensor Coo =
      tensor::buildFromTriplets(formats::makeCOO(), Read);
  tensor::SparseTensor Csc = convertTo(Coo, "csc");
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Csc), T));
  // Serialize the converted tensor and read it back once more.
  tensor::Triplets Again;
  ASSERT_TRUE(tensor::readMatrixMarket(
      tensor::writeMatrixMarket(tensor::toTriplets(Csc)), &Again, &Error));
  EXPECT_TRUE(tensor::equal(Again, T));
}

TEST(Integration, CorpusMatricesConvertAtTinyScale) {
  // Every corpus family (stencil, banded, scattered, power-law) flows
  // through the paper's seven conversions end to end.
  for (const char *Name : {"jnlbrng1", "cant", "scircuit", "webbase-1M"}) {
    tensor::Triplets T = tensor::corpusEntry(Name).Generate(0.004);
    tensor::SparseTensor Coo =
        tensor::buildFromTriplets(formats::makeCOO(), T);
    tensor::SparseTensor Csr = convertTo(Coo, "csr");
    tensor::SparseTensor Csc = convertTo(Csr, "csc");
    EXPECT_TRUE(tensor::equal(tensor::toTriplets(Csc), T)) << Name;
    tensor::SparseTensor Ell = convertTo(Csc, "ell");
    EXPECT_TRUE(tensor::equal(tensor::toTriplets(Ell), T)) << Name;
  }
}
