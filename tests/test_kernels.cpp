//===----------------------------------------------------------------------===//
// Tests for the SpMV kernels: every format's kernel must agree with the
// triplet reference on shared matrices, including rectangular ones.
//===----------------------------------------------------------------------===//

#include "formats/Standard.h"
#include "kernels/SpMV.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

using namespace convgen;

namespace {

std::vector<double> unitVector(int64_t N) {
  std::vector<double> X(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    X[static_cast<size_t>(I)] = 0.25 + static_cast<double>(I % 7);
  return X;
}

} // namespace

class SpmvAllFormats
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(SpmvAllFormats, MatchesReference) {
  const auto &[FormatName, MatrixName] = GetParam();
  tensor::Triplets T;
  for (auto &[Name, M] : tensor::testMatrices())
    if (Name == MatrixName)
      T = M;
  if (FormatName == "sky") {
    bool Lower = true;
    for (const tensor::Entry &E : T.Entries)
      Lower = Lower && E.Col <= E.Row;
    if (!Lower)
      GTEST_SKIP() << "skyline requires lower-triangular input";
  }
  formats::Format F = formats::standardFormatOrDie(FormatName);
  tensor::SparseTensor A = tensor::buildFromTriplets(F, T);
  std::vector<double> X = unitVector(T.NumCols);
  std::vector<double> Y = kernels::spmv(A, X);
  std::vector<double> Ref = kernels::spmvReference(A, X);
  ASSERT_EQ(Y.size(), Ref.size());
  for (size_t I = 0; I < Y.size(); ++I)
    EXPECT_NEAR(Y[I], Ref[I], 1e-9) << FormatName << " row " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, SpmvAllFormats,
    ::testing::Combine(::testing::Values("coo", "csr", "csc", "dia", "ell",
                                         "bcsr", "sky"),
                       ::testing::Values("figure1", "empty", "dense_small",
                                         "tridiag_rect_wide",
                                         "tridiag_rect_tall", "banded_random",
                                         "scatter_random", "lower_banded",
                                         "antidiagonal")),
    [](const auto &Info) {
      return std::get<0>(Info.param) + "_" + std::get<1>(Info.param);
    });

TEST(Spmv, RejectsWrongVectorLength) {
  tensor::Triplets T = tensor::genDiagonals(5, 8, {0}, 1.0, 1);
  tensor::SparseTensor A =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  std::vector<double> X(5, 1.0); // needs 8
  EXPECT_DEATH(kernels::spmv(A, X), "one entry per column");
}
