//===----------------------------------------------------------------------===//
// Tests for convert::PlanCache: plan memoization (a second Converter for
// the same pair must not re-run codegen), JIT handle sharing (at most one
// external-compiler invocation per triple and process), and the on-disk
// shared-object cache (a "new process", simulated by clearing the in-memory
// cache, skips the external compiler entirely).
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "support/Fault.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>

using namespace convgen;
using convert::PlanCache;
using convert::PlanCacheStats;

TEST(PlanCacheKeys, FingerprintDistinguishesFormats) {
  std::string Csr = convert::formatFingerprint(formats::makeCSR());
  std::string Csc = convert::formatFingerprint(formats::makeCSC());
  std::string Coo = convert::formatFingerprint(formats::makeCOO());
  EXPECT_NE(Csr, Csc);
  EXPECT_NE(Csr, Coo);
  // Fingerprints are deterministic.
  EXPECT_EQ(Csr, convert::formatFingerprint(formats::makeCSR()));
}

TEST(PlanCacheKeys, OptionsChangeTheKey) {
  codegen::Options Default;
  codegen::Options NoReuse;
  NoReuse.CounterReuse = false;
  EXPECT_NE(
      convert::planKey(formats::makeCSR(), formats::makeELL(), Default),
      convert::planKey(formats::makeCSR(), formats::makeELL(), NoReuse));
  EXPECT_EQ(
      convert::planKey(formats::makeCSR(), formats::makeELL(), Default),
      convert::planKey(formats::makeCSR(), formats::makeELL(), Default));
}

TEST(PlanCacheMemo, SecondConverterSharesThePlan) {
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  PlanCacheStats Before = Cache.stats();

  convert::Converter First(formats::makeCOO(), formats::makeCSR());
  convert::Converter Second(formats::makeCOO(), formats::makeCSR());

  PlanCacheStats After = Cache.stats();
  EXPECT_EQ(After.PlanMisses - Before.PlanMisses, 1u);
  EXPECT_GE(After.PlanHits - Before.PlanHits, 1u);
  // Both converters hold the *same* generated routine, not a copy:
  // codegen ran once.
  EXPECT_EQ(&First.conversion(), &Second.conversion());
}

TEST(PlanCacheMemo, DistinctOptionsGenerateSeparatePlans) {
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();

  codegen::Options NoReuse;
  NoReuse.CounterReuse = false;
  convert::Converter A(formats::makeCSR(), formats::makeELL());
  convert::Converter B(formats::makeCSR(), formats::makeELL(), NoReuse);
  EXPECT_NE(&A.conversion(), &B.conversion());
}

TEST(PlanCacheMemo, ConvertersStillConvertCorrectly) {
  PlanCache::instance().clearMemory();
  tensor::Triplets T = tensor::genBandedRandom(40, 40, 4.0, 9, 5, 21);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  convert::Converter Warmup(formats::makeCOO(), formats::makeCSR());
  convert::Converter Cached(formats::makeCOO(), formats::makeCSR());
  tensor::SparseTensor Out = Cached.run(In);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
}

using convgen::testing::ScopedEnv;

TEST(PlanCacheJit, HandleSharedWithinTheProcess) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  PlanCacheStats Before = Cache.stats();

  auto First = Cache.jit(formats::makeCOO(), formats::makeCSR());
  auto Second = Cache.jit(formats::makeCOO(), formats::makeCSR());

  PlanCacheStats After = Cache.stats();
  EXPECT_EQ(First.get(), Second.get());
  EXPECT_EQ(After.JitMisses - Before.JitMisses, 1u);
  EXPECT_GE(After.JitHits - Before.JitHits, 1u);
}

TEST(PlanCacheJit, DiskCacheSkipsTheExternalCompiler) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  if (support::faultsConfigured())
    GTEST_SKIP() << "asserts native-path artifacts; CONVGEN_FAULT is set";
  char Template[] = "/tmp/convgen-cachetest-XXXXXX";
  char *Dir = mkdtemp(Template);
  ASSERT_NE(Dir, nullptr);
  ScopedEnv CacheDir("CONVGEN_CACHE_DIR", Dir);
  ScopedEnv Enable("CONVGEN_DISABLE_DISK_CACHE", "0");

  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();

  // Cold: runs the external compiler and installs the shared object.
  auto Cold = Cache.jit(formats::makeCSR(), formats::makeELL());
  EXPECT_FALSE(Cold->loadedFromCache());
  EXPECT_GT(Cold->compileSeconds(), 0.0);

  // "New process": the in-memory cache is gone, the disk cache is not.
  Cache.clearMemory();
  PlanCacheStats Before = Cache.stats();
  auto Warm = Cache.jit(formats::makeCSR(), formats::makeELL());
  PlanCacheStats After = Cache.stats();
  EXPECT_TRUE(Warm->loadedFromCache());
  EXPECT_EQ(Warm->compileSeconds(), 0.0);
  EXPECT_EQ(After.DiskHits - Before.DiskHits, 1u);

  // The cached object still computes the right answer (bit-identical to
  // the interpreter).
  tensor::Triplets T = tensor::genBandedRandom(30, 30, 3.0, 7, 3, 5);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  convert::Converter Interp(formats::makeCSR(), formats::makeELL());
  tensor::SparseTensor FromInterp = Interp.run(In);
  tensor::SparseTensor FromJit = Warm->run(In);
  FromJit.validate();
  ASSERT_EQ(FromInterp.Levels.size(), FromJit.Levels.size());
  for (size_t K = 0; K < FromInterp.Levels.size(); ++K) {
    EXPECT_EQ(FromInterp.Levels[K].Crd, FromJit.Levels[K].Crd);
    EXPECT_EQ(FromInterp.Levels[K].SizeParam, FromJit.Levels[K].SizeParam);
  }
  EXPECT_EQ(FromInterp.Vals, FromJit.Vals);

  std::string Cleanup = "rm -rf " + std::string(Dir);
  (void)std::system(Cleanup.c_str());
}

TEST(PlanCacheJit, DisablingTheDiskCacheStaysInMemory) {
  ScopedEnv Disable("CONVGEN_DISABLE_DISK_CACHE", "1");
  EXPECT_EQ(PlanCache::diskCacheDir(), "");
}

TEST(PlanCacheKeys, RankStrategyKnobChangesKeyAndJitFlags) {
  // A CONVGEN_RANK_STRATEGY flip changes the generated code (hashed
  // presence vs plain sort), so both halves of every cache key must move
  // with it: the plan key's strategy bits (re-derived from the environment
  // per lookup) and the effective JIT flag string (part of the in-memory
  // JIT key and the on-disk object name). Otherwise a knob flip could
  // dlopen a stale shared object compiled under the other strategy.
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::Options Opts;
  Opts.DimsHint = {int64_t(1) << 31, int64_t(1) << 20, int64_t(1) << 20};
  std::string DefaultKey = convert::planKey(Coo3, Csf, Opts);
  std::string DefaultFlags = jit::jitEffectiveFlags("");
  {
    ScopedEnv Strategy("CONVGEN_RANK_STRATEGY", "hashed");
    EXPECT_NE(convert::planKey(Coo3, Csf, Opts), DefaultKey);
    std::string Flags = jit::jitEffectiveFlags("");
    EXPECT_NE(Flags, DefaultFlags);
    EXPECT_NE(Flags.find("-DCONVGEN_RANK_STRATEGY_HASHED=1"),
              std::string::npos)
        << Flags;
  }
  {
    ScopedEnv NoShare("CONVGEN_NO_SHARED_SORT", "1");
    EXPECT_NE(convert::planKey(Coo3, Csf, Opts), DefaultKey);
    EXPECT_NE(jit::jitEffectiveFlags("").find("-DCONVGEN_NO_SHARED_SORT=1"),
              std::string::npos);
  }
  // Back to default: keys and flags are restored, so the original cache
  // entries are found again (no permanent split).
  EXPECT_EQ(convert::planKey(Coo3, Csf, Opts), DefaultKey);
  EXPECT_EQ(jit::jitEffectiveFlags(""), DefaultFlags);
  // Without a dims hint no level is sorted and the knob is inert: small
  // tensors keep sharing one cached plan per pair.
  codegen::Options NoHint;
  std::string SmallKey = convert::planKey(Coo3, Csf, NoHint);
  ScopedEnv Strategy("CONVGEN_RANK_STRATEGY", "hashed");
  EXPECT_EQ(convert::planKey(Coo3, Csf, NoHint), SmallKey);
}

TEST(PlanCacheJit, KnobFlipCompilesAFreshObjectNotAStaleOne) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::Options Opts = codegen::optionsForDims(
      Coo3, Csf, {}, {int64_t(1) << 31, int64_t(1) << 20, int64_t(1) << 20});
  auto Default = Cache.jit(Coo3, Csf, Opts);
  EXPECT_EQ(Default->conversion().cSource().find("cvg_hash_distinct(B"),
            std::string::npos);
  ScopedEnv Strategy("CONVGEN_RANK_STRATEGY", "hashed");
  auto Hashed = Cache.jit(Coo3, Csf, Opts);
  EXPECT_NE(Hashed.get(), Default.get());
  EXPECT_NE(Hashed->conversion().cSource().find("cvg_hash_distinct(B"),
            std::string::npos);
}
