//===----------------------------------------------------------------------===//
// Unit tests for the conversion path planner (src/planner/): analytic
// cost-model monotonicity, engagement rules and knob overrides, the
// measured-outcome auto-tuning flip, chain legality (the
// information-preservation and order-requirement predicates), and a
// randomized bit-compare of every enumerated candidate against the
// forced-direct default.
//===----------------------------------------------------------------------===//

#include "planner/Planner.h"

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "support/StringUtils.h"
#include "tensor/Oracle.h"
#include "tensor/Triplets.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

using namespace convgen;
using convgen::testing::ScopedEnv;

namespace {

planner::InputStats statsFor(int64_t Nnz, std::vector<int64_t> Dims) {
  planner::InputStats S;
  S.Nnz = Nnz;
  S.Dims = std::move(Dims);
  return S;
}

/// A fixed-seed random tensor in \p Src with ~\p MaxNnz distinct entries.
tensor::SparseTensor randomTensor(const formats::Format &Src,
                                  const std::vector<int64_t> &Dims,
                                  int MaxNnz, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  tensor::Triplets T;
  T.setDims(Dims);
  std::set<std::vector<int64_t>> Seen;
  for (int E = 0; E < MaxNnz; ++E) {
    std::vector<int64_t> Coord;
    for (int64_t D : Dims)
      Coord.push_back(static_cast<int64_t>(Rng() % static_cast<uint64_t>(D)));
    if (!Seen.insert(Coord).second)
      continue;
    T.Entries.push_back(tensor::Entry(
        Coord, static_cast<double>(1 + Rng() % 97)));
  }
  return tensor::buildFromTriplets(Src, T);
}

void expectBitIdentical(const tensor::SparseTensor &Want,
                        const tensor::SparseTensor &Got,
                        const std::string &What) {
  ASSERT_EQ(Want.Levels.size(), Got.Levels.size()) << What;
  for (size_t K = 0; K < Want.Levels.size(); ++K) {
    EXPECT_EQ(Want.Levels[K].Pos, Got.Levels[K].Pos)
        << What << ": pos, level " << K;
    EXPECT_EQ(Want.Levels[K].Crd, Got.Levels[K].Crd)
        << What << ": crd, level " << K;
    EXPECT_EQ(Want.Levels[K].Perm, Got.Levels[K].Perm)
        << What << ": perm, level " << K;
    EXPECT_EQ(Want.Levels[K].SizeParam, Got.Levels[K].SizeParam)
        << What << ": param, level " << K;
  }
  EXPECT_EQ(Want.Vals, Got.Vals) << What << ": vals";
}

/// Executes one candidate path hop by hop through interpreter-backed
/// Converters with the planner disengaged, so exactly the candidate's
/// forced options run (the planner would otherwise re-decide).
StatusOr<tensor::SparseTensor> runCandidate(const planner::Candidate &C,
                                            const tensor::SparseTensor &In) {
  ScopedEnv Off("CONVGEN_PLANNER", "off");
  tensor::SparseTensor Staged;
  const tensor::SparseTensor *Cur = &In;
  for (const planner::Hop &H : C.Hops) {
    StatusOr<convert::Converter> Conv =
        convert::Converter::tryCreate(H.Src, H.Dst, H.Opts);
    if (!Conv.ok())
      return Conv.status();
    StatusOr<tensor::SparseTensor> Out = Conv->tryRun(*Cur);
    if (!Out.ok())
      return Out;
    Staged = Out.take();
    Cur = &Staged;
  }
  return std::move(Staged);
}

} // namespace

//===--------------------------------------------------------------------===//
// Analytic cost model
//===--------------------------------------------------------------------===//

TEST(PlannerCostModel, MonotoneInNnzForEveryPlanShape) {
  formats::Format Coo3 = formats::makeCOO(3);
  formats::Format Csf = formats::makeCSF(3);
  formats::Format Csr = formats::standardFormatOrDie("csr");
  formats::Format Csc = formats::standardFormatOrDie("csc");
  std::vector<int64_t> Dims3 = {3000, 3000, 64};
  std::vector<int64_t> Dims2 = {2000, 2000};

  // One plan per strategy family: dense-ranked default, forced
  // sorted-ranking (packed radix at these extents), forced merge sort,
  // shared sort off.
  std::vector<std::pair<std::string, codegen::AssemblyPlan>> Plans;
  Plans.push_back({"coo3->csf default",
                   codegen::planAssembly(Coo3, Csf, Dims3)});
  {
    codegen::Options O;
    O.DimsHint = Dims3;
    O.ForceSortedRanking = true;
    Plans.push_back({"coo3->csf forced-sorted",
                     codegen::planAssembly(Coo3, Csf, O)});
    O.ForceSort = codegen::SortStrategy::Merge;
    Plans.push_back({"coo3->csf forced-sorted merge",
                     codegen::planAssembly(Coo3, Csf, O)});
    O.ForceSort = codegen::SortStrategy::Auto;
    O.ForceNoSharedSort = true;
    Plans.push_back({"coo3->csf forced-sorted nosharedsort",
                     codegen::planAssembly(Coo3, Csf, O)});
  }
  Plans.push_back({"csr->csc default",
                   codegen::planAssembly(Csr, Csc, Dims2)});

  for (const auto &[Label, Plan] : Plans) {
    ASSERT_TRUE(Plan.Unsupported.empty()) << Label << ": " << Plan.Unsupported;
    double Prev = 0;
    for (int64_t Nnz = 1024; Nnz <= (int64_t(1) << 24); Nnz *= 2) {
      const std::vector<int64_t> &Dims =
          Plan.Dedup.size() == 3 ? Dims3 : Dims2;
      double Cost = planner::analyticPlanCost(Plan, statsFor(Nnz, Dims));
      EXPECT_GE(Cost, Prev) << Label << " regressed at nnz " << Nnz;
      EXPECT_TRUE(std::isfinite(Cost)) << Label << " at nnz " << Nnz;
      Prev = Cost;
    }
  }
}

TEST(PlannerCostModel, UnsupportedPlanCostsInfinity) {
  codegen::AssemblyPlan P;
  P.Unsupported = "nope";
  EXPECT_TRUE(std::isinf(planner::analyticPlanCost(P, statsFor(1000, {10}))));
}

//===--------------------------------------------------------------------===//
// Engagement rules and knob overrides
//===--------------------------------------------------------------------===//

TEST(PlannerEngagement, DisabledByKnob) {
  ScopedEnv MinNnz("CONVGEN_PLANNER_MIN_NNZ", "1");
  ScopedEnv Off("CONVGEN_PLANNER", "off");
  planner::Decision D = planner::decide(
      formats::standardFormatOrDie("csr"), formats::standardFormatOrDie("csc"),
      codegen::Options(), statsFor(100000, {100, 100}));
  EXPECT_FALSE(D.Engaged);
  EXPECT_NE(D.Why.find("disabled"), std::string::npos) << D.Why;
}

TEST(PlannerEngagement, NnzFloorIsAKnob) {
  // Pinned on so the test holds under the CI ablation leg's ambient
  // CONVGEN_PLANNER=off (likewise below wherever engagement is expected).
  ScopedEnv On("CONVGEN_PLANNER", "on");
  ScopedEnv MinNnz("CONVGEN_PLANNER_MIN_NNZ", "500");
  formats::Format Csr = formats::standardFormatOrDie("csr");
  formats::Format Csc = formats::standardFormatOrDie("csc");
  EXPECT_FALSE(
      planner::decide(Csr, Csc, codegen::Options(), statsFor(499, {100, 100}))
          .Engaged);
  EXPECT_TRUE(
      planner::decide(Csr, Csc, codegen::Options(), statsFor(500, {100, 100}))
          .Engaged);
}

TEST(PlannerEngagement, CallerForcedStrategiesDisengage) {
  ScopedEnv MinNnz("CONVGEN_PLANNER_MIN_NNZ", "1");
  codegen::Options Forced;
  Forced.ForceSortedRanking = true;
  planner::Decision D = planner::decide(
      formats::standardFormatOrDie("csr"), formats::standardFormatOrDie("csc"),
      Forced, statsFor(100000, {100, 100}));
  EXPECT_FALSE(D.Engaged);
}

TEST(PlannerEngagement, PinnedRankKnobSuppressesRankCandidates) {
  ScopedEnv On("CONVGEN_PLANNER", "on");
  ScopedEnv MinNnz("CONVGEN_PLANNER_MIN_NNZ", "1");
  formats::Format Coo3 = formats::makeCOO(3);
  formats::Format Csf = formats::makeCSF(3);
  // Huge extents push the default plan onto sorted ranking, where the
  // rank-strategy candidates would normally appear.
  planner::InputStats S = statsFor(100000, {int64_t(1) << 31, 1 << 20, 64});
  {
    planner::Decision D =
        planner::decide(Coo3, Csf, codegen::Options(), S);
    ASSERT_TRUE(D.Engaged) << D.Why;
    bool SawRankVariant = false;
    for (const planner::Candidate &C : D.Considered)
      if (C.Label == "rank=sorted" || C.Label == "rank=hashed")
        SawRankVariant = true;
    EXPECT_TRUE(SawRankVariant)
        << "expected rank-strategy candidates on a sorted-ranking plan";
  }
  {
    ScopedEnv Pin("CONVGEN_RANK_STRATEGY", "sorted");
    planner::Decision D =
        planner::decide(Coo3, Csf, codegen::Options(), S);
    ASSERT_TRUE(D.Engaged) << D.Why;
    for (const planner::Candidate &C : D.Considered)
      EXPECT_TRUE(C.Label != "rank=sorted" && C.Label != "rank=hashed")
          << "pinned CONVGEN_RANK_STRATEGY must suppress " << C.Label;
  }
}

TEST(PlannerEngagement, DefaultCandidateAlwaysEnumerated) {
  ScopedEnv On("CONVGEN_PLANNER", "on");
  ScopedEnv MinNnz("CONVGEN_PLANNER_MIN_NNZ", "1");
  planner::Decision D = planner::decide(
      formats::standardFormatOrDie("csr"), formats::standardFormatOrDie("csc"),
      codegen::Options(), statsFor(10000, {100, 100}));
  ASSERT_TRUE(D.Engaged) << D.Why;
  ASSERT_FALSE(D.Considered.empty());
  EXPECT_EQ(D.Considered[0].Label, "direct");
  EXPECT_FALSE(D.Considered[0].OutcomeKey.empty());
  // At benign extents the analytic model keeps the dense-ranked direct
  // plan; the pinning below is what the ablation leg relies on.
  EXPECT_EQ(D.Chosen.Label, "direct");
}

//===--------------------------------------------------------------------===//
// Measured-outcome auto-tuning
//===--------------------------------------------------------------------===//

namespace {

/// Fixture state shared by the flip tests: memory-only outcome store,
/// engagement floor at 1, store reset around each test.
struct OutcomeGuard {
  ScopedEnv On{"CONVGEN_PLANNER", "on"};
  ScopedEnv Outcomes{"CONVGEN_OUTCOMES", ""};
  ScopedEnv MinNnz{"CONVGEN_PLANNER_MIN_NNZ", "1"};
  OutcomeGuard() { convert::PlanCache::instance().resetOutcomes(); }
  ~OutcomeGuard() { convert::PlanCache::instance().resetOutcomes(); }
};

} // namespace

TEST(PlannerAutoTuning, MeasuredOutcomesFlipTheChoiceAfterK) {
  OutcomeGuard Guard;
  formats::Format Csr = formats::standardFormatOrDie("csr");
  formats::Format Csc = formats::standardFormatOrDie("csc");
  planner::InputStats S = statsFor(10000, {100, 100});

  planner::Decision Cold = planner::decide(Csr, Csc, codegen::Options(), S);
  ASSERT_TRUE(Cold.Engaged) << Cold.Why;
  ASSERT_GE(Cold.Considered.size(), 2u)
      << "need at least one variant to flip to";
  EXPECT_EQ(Cold.Chosen.Label, "direct");
  EXPECT_FALSE(Cold.MeasuredWin);

  // Find a non-default candidate to teach the planner about.
  const planner::Candidate *Variant = nullptr;
  for (const planner::Candidate &C : Cold.Considered)
    if (C.Label != "direct")
      Variant = &C;
  ASSERT_NE(Variant, nullptr);

  convert::PlanCache &Cache = convert::PlanCache::instance();
  int64_t K = codegen::knobs().PlannerTrustAfter;
  ASSERT_GE(K, 1);

  // K-1 observations: not yet trusted, no flip.
  for (int64_t I = 0; I < K - 1; ++I) {
    Cache.recordOutcome(Cold.Chosen.OutcomeKey, 1.0);
    Cache.recordOutcome(Variant->OutcomeKey, 0.01);
  }
  planner::Decision Warmup = planner::decide(Csr, Csc, codegen::Options(), S);
  EXPECT_EQ(Warmup.Chosen.Label, "direct")
      << "flipped before CONVGEN_PLANNER_TRUST_AFTER observations";

  // The K-th observation crosses the trust threshold; the variant's mean
  // beats the favourite's by far more than the margin.
  Cache.recordOutcome(Cold.Chosen.OutcomeKey, 1.0);
  Cache.recordOutcome(Variant->OutcomeKey, 0.01);
  planner::Decision Hot = planner::decide(Csr, Csc, codegen::Options(), S);
  ASSERT_TRUE(Hot.Engaged);
  EXPECT_EQ(Hot.Chosen.Label, Variant->Label);
  EXPECT_TRUE(Hot.MeasuredWin);
  EXPECT_TRUE(Hot.Chosen.Measured);
}

TEST(PlannerAutoTuning, InsideTheMarginTheAnalyticChoiceStands) {
  OutcomeGuard Guard;
  ScopedEnv Margin("CONVGEN_PLANNER_MARGIN", "0.15");
  formats::Format Csr = formats::standardFormatOrDie("csr");
  formats::Format Csc = formats::standardFormatOrDie("csc");
  planner::InputStats S = statsFor(10000, {100, 100});

  planner::Decision Cold = planner::decide(Csr, Csc, codegen::Options(), S);
  ASSERT_TRUE(Cold.Engaged);
  ASSERT_GE(Cold.Considered.size(), 2u);
  const planner::Candidate *Variant = nullptr;
  for (const planner::Candidate &C : Cold.Considered)
    if (C.Label != "direct")
      Variant = &C;
  ASSERT_NE(Variant, nullptr);

  convert::PlanCache &Cache = convert::PlanCache::instance();
  for (int64_t I = 0; I < codegen::knobs().PlannerTrustAfter; ++I) {
    Cache.recordOutcome(Cold.Chosen.OutcomeKey, 1.0);
    Cache.recordOutcome(Variant->OutcomeKey, 0.9); // Better, but < 15% better.
  }
  planner::Decision D = planner::decide(Csr, Csc, codegen::Options(), S);
  EXPECT_EQ(D.Chosen.Label, "direct");
  EXPECT_FALSE(D.MeasuredWin);
}

TEST(PlannerAutoTuning, OutcomeRecordsAccumulateAndReset) {
  OutcomeGuard Guard;
  convert::PlanCache &Cache = convert::PlanCache::instance();
  Cache.recordOutcome("test|key", 2.0);
  Cache.recordOutcome("test|key", 4.0);
  Cache.recordOutcome("test|key", -1.0); // Ignored: broken clock.
  convert::OutcomeRecord Rec;
  ASSERT_TRUE(Cache.outcomeFor("test|key", &Rec));
  EXPECT_EQ(Rec.Count, 2u);
  EXPECT_DOUBLE_EQ(Rec.TotalSeconds, 6.0);
  EXPECT_DOUBLE_EQ(Rec.MinSeconds, 2.0);
  EXPECT_DOUBLE_EQ(Rec.meanSeconds(), 3.0);
  Cache.resetOutcomes();
  EXPECT_FALSE(Cache.outcomeFor("test|key", &Rec));
}

//===--------------------------------------------------------------------===//
// Chain legality (the satellite bugfix: no lossy intermediates)
//===--------------------------------------------------------------------===//

TEST(PlannerChainLegality, OrderRequiringSecondHopIsIllegal) {
  formats::Format Csc = formats::standardFormatOrDie("csc");
  formats::Format Coo = formats::makeCOO();
  formats::Format Bcsr = formats::standardFormatOrDie("bcsr");
  std::string Why;
  // csc -> coo yields column-major coo; coo -> bcsr's sequenced dedup
  // trusts a lexicographically sorted coo source. Chaining them would
  // reject (or garble) inputs the direct conversion handles.
  EXPECT_FALSE(planner::chainLegal(Csc, Coo, Bcsr, {8, 8}, &Why));
  EXPECT_NE(Why.find("sorted"), std::string::npos) << Why;
}

TEST(PlannerChainLegality, DedupingIntermediateIsIllegal) {
  formats::Format Coo3 = formats::makeCOO(3);
  formats::Format Csf = formats::makeCSF(3);
  std::string Why;
  // Both endpoints store duplicate tuples; csf deduplicates. The chain
  // would silently merge duplicates the direct conversion preserves.
  EXPECT_FALSE(
      planner::chainLegal(Coo3, Csf, Coo3, {10, 10, 10}, &Why));
  EXPECT_NE(Why.find("duplicate"), std::string::npos) << Why;
}

TEST(PlannerChainLegality, EndpointIntermediateIsIllegal) {
  formats::Format Csr = formats::standardFormatOrDie("csr");
  formats::Format Coo = formats::makeCOO();
  EXPECT_FALSE(planner::chainLegal(Coo, Coo, Csr, {8, 8}));
  EXPECT_FALSE(planner::chainLegal(Csr, Coo, Coo, {8, 8}));
}

TEST(PlannerChainLegality, BenignChainIsLegal) {
  formats::Format Csc = formats::standardFormatOrDie("csc");
  formats::Format Csr = formats::standardFormatOrDie("csr");
  formats::Format Coo = formats::makeCOO();
  std::string Why;
  EXPECT_TRUE(planner::chainLegal(Csc, Coo, Csr, {8, 8}, &Why)) << Why;
}

TEST(PlannerChainLegality, DecideNeverProposesAnIllegalChain) {
  ScopedEnv On("CONVGEN_PLANNER", "on");
  ScopedEnv MinNnz("CONVGEN_PLANNER_MIN_NNZ", "1");
  formats::Format Csc = formats::standardFormatOrDie("csc");
  formats::Format Bcsr = formats::standardFormatOrDie("bcsr");
  planner::Decision D = planner::decide(Csc, Bcsr, codegen::Options(),
                                        statsFor(10000, {8, 8}));
  if (!D.Engaged)
    GTEST_SKIP() << "csc -> bcsr direct unsupported here: " << D.Why;
  for (const planner::Candidate &C : D.Considered)
    EXPECT_NE(C.Label, "via-coo")
        << "csc -> coo -> bcsr must be rejected by chainLegal";
}

//===--------------------------------------------------------------------===//
// Randomized bit-compare: every candidate vs the forced-direct default
//===--------------------------------------------------------------------===//

TEST(PlannerFuzz, EveryCandidateBitIdenticalToForcedDirect) {
  OutcomeGuard Guard;
  struct Pair {
    const char *Src;
    const char *Dst;
    std::vector<int64_t> Dims;
  };
  const Pair Pairs[] = {
      {"coo", "csr", {12, 12}},       {"csr", "csc", {12, 12}},
      {"csc", "coo", {12, 12}},       {"coo3", "csf", {6, 6, 6}},
      {"csf", "coo3", {6, 6, 6}},     {"csf_102", "csf", {6, 6, 6}},
      {"coo3", "csf_021", {6, 6, 6}},
  };
  for (const Pair &P : Pairs) {
    formats::Format Src = formats::standardFormatOrDie(P.Src);
    formats::Format Dst = formats::standardFormatOrDie(P.Dst);
    for (uint64_t Seed : {0x5eed01ull, 0x5eed02ull, 0x5eed03ull}) {
      SCOPED_TRACE(strfmt("%s -> %s, seed 0x%llx", P.Src, P.Dst,
                          static_cast<unsigned long long>(Seed)));
      tensor::SparseTensor In = randomTensor(Src, P.Dims, 150, Seed);

      // Reference: the forced-direct default (planner off).
      tensor::SparseTensor Want;
      {
        ScopedEnv Off("CONVGEN_PLANNER", "off");
        convert::Converter Conv(Src, Dst);
        StatusOr<tensor::SparseTensor> R = Conv.tryRun(In);
        ASSERT_TRUE(R.ok()) << R.status().message();
        Want = R.take();
      }
      Want.validate();

      // Every candidate the planner would consider, executed explicitly.
      planner::Decision D = planner::decide(
          Src, Dst, codegen::Options(), planner::InputStats::fromTensor(In));
      ASSERT_TRUE(D.Engaged) << D.Why;
      for (const planner::Candidate &C : D.Considered) {
        StatusOr<tensor::SparseTensor> Got = runCandidate(C, In);
        ASSERT_TRUE(Got.ok())
            << C.Label << " failed: " << Got.status().message();
        Got->validate();
        expectBitIdentical(Want, *Got, C.Label);
      }

      // End to end: the engaged Converter (whichever path it picks) must
      // match the planner-off reference bit for bit.
      convert::Converter Conv(Src, Dst);
      StatusOr<tensor::SparseTensor> OnR = Conv.tryRun(In);
      ASSERT_TRUE(OnR.ok()) << OnR.status().message();
      expectBitIdentical(Want, *OnR, "planner-on end-to-end");
    }
  }
}
