//===----------------------------------------------------------------------===//
// Tests for src/query: canonical lowering of each aggregation (§5.2), the
// four Table 1 transformations (preconditions and rewrites, matching the
// paper's worked examples), and compiled query results against brute force
// on real matrices.
//===----------------------------------------------------------------------===//

#include "formats/Standard.h"
#include "ir/Interpreter.h"
#include "levels/SourceIterator.h"
#include "query/Compile.h"
#include "query/Transforms.h"
#include "remap/Bounds.h"
#include "tensor/Corpus.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

using namespace convgen;
using namespace convgen::query;

namespace {

TargetShape shapeFor(const formats::Format &F) {
  TargetShape Shape;
  Shape.Remap = F.Remap;
  Shape.Bounds = remap::analyzeBounds(
      F.Remap, {ir::var("dim0"), ir::var("dim1")});
  return Shape;
}

Query countPerRow() {
  Query Q;
  Q.GroupDims = {0};
  Q.Aggs = {Agg{AggKind::Count, {1}, "nir"}};
  return Q;
}

Query maxCounter() {
  Query Q;
  Q.Aggs = {Agg{AggKind::Max, {0}, "max_crd"}};
  return Q;
}

} // namespace

//===----------------------------------------------------------------------===//
// Canonical forms
//===----------------------------------------------------------------------===//

TEST(QueryLower, IdCanonicalForm) {
  TargetShape Shape = shapeFor(formats::makeDIA());
  Query Q;
  Q.GroupDims = {0};
  Q.Aggs = {Agg{AggKind::Id, {}, "nz"}};
  CinStmt Stmt = lowerToCanonical(Q, Q.Aggs[0], Shape, "q1_nz");
  EXPECT_EQ(printCin(Stmt), "forall(src) q1_nz[j-i] |= map(B, 1)\n");
  EXPECT_EQ(Stmt.Result.Elem, ir::ScalarKind::Bool);
}

TEST(QueryLower, CountCanonicalFormHasDedupTemp) {
  TargetShape Shape = shapeFor(formats::makeCSR());
  CinStmt Stmt =
      lowerToCanonical(countPerRow(), countPerRow().Aggs[0], Shape, "q2_nir");
  // (forall src W[i,j] |= map(B,1)) where (forall W  Q[i] += W[i,j])
  EXPECT_EQ(printCin(Stmt), "forall(src) q2_nir_w[i,j] |= map(B, 1)\n"
                            "forall(q2_nir_w) q2_nir[*] += q2_nir_w[*]\n");
  ASSERT_EQ(Stmt.Temps.size(), 1u);
  EXPECT_EQ(Stmt.Temps[0].Dims, (std::vector<int>{0, 1}));
}

TEST(QueryLower, MaxShiftReservesZeroForEmpty) {
  TargetShape Shape = shapeFor(formats::makeELL());
  CinStmt Stmt =
      lowerToCanonical(maxCounter(), maxCounter().Aggs[0], Shape, "q1_max");
  // Payload is counter + 1 (s = 0 for counters); decode is raw - 1.
  EXPECT_EQ(printCin(Stmt), "forall(src) q1_max[] max= map(B, #i + 1)\n");
  int64_t Shift = 0;
  ASSERT_TRUE(ir::isIntConst(Stmt.Shift, &Shift));
  EXPECT_EQ(Shift, -1);
}

TEST(QueryLower, MinShiftUsesUpperBound) {
  TargetShape Shape = shapeFor(formats::makeSKY());
  Query Q;
  Q.GroupDims = {0};
  Q.Aggs = {Agg{AggKind::Min, {1}, "w"}};
  CinStmt Stmt = lowerToCanonical(Q, Q.Aggs[0], Shape, "q2_w");
  // Q' max= map(B, -j + t + 1); actual = -raw + t + 1 with t = dim1 - 1.
  EXPECT_EQ(Stmt.Sign, -1);
  EXPECT_EQ(ir::printExpr(Stmt.Shift), "dim1");
}

//===----------------------------------------------------------------------===//
// Transformations (Table 1), following the §5.2 walkthrough
//===----------------------------------------------------------------------===//

TEST(QueryTransforms, ReductionToAssignNeedsPlainCover) {
  TargetShape CsrShape = shapeFor(formats::makeCSR());
  levels::SourceIterator Coo(formats::makeCOO());
  CinStmt Stmt = lowerToCanonical(countPerRow(), countPerRow().Aggs[0],
                                  CsrShape, "q");
  EXPECT_TRUE(reductionToAssign(Stmt, Coo));
  EXPECT_EQ(Stmt.Stmts[0].Op, AssignOp::Assign);

  // BCSR's W[i/4,j/4] does not cover i,j plainly: must stay a reduction.
  TargetShape BcsrShape = shapeFor(formats::makeBCSR(4, 4));
  Query Q;
  Q.GroupDims = {0};
  Q.Aggs = {Agg{AggKind::Count, {1}, "nir"}};
  CinStmt Blocked = lowerToCanonical(Q, Q.Aggs[0], BcsrShape, "q");
  EXPECT_FALSE(reductionToAssign(Blocked, Coo));
  EXPECT_EQ(Blocked.Stmts[0].Op, AssignOp::Or);
}

TEST(QueryTransforms, InlineTemporaryAfterAssign) {
  TargetShape Shape = shapeFor(formats::makeCSR());
  levels::SourceIterator Coo(formats::makeCOO());
  CinStmt Stmt = lowerToCanonical(countPerRow(), countPerRow().Aggs[0],
                                  Shape, "q2_nir");
  ASSERT_TRUE(reductionToAssign(Stmt, Coo));
  ASSERT_TRUE(inlineTemporary(Stmt, Coo));
  // The paper's result: forall(src) Q[i] += map(B, 1).
  EXPECT_EQ(printCin(Stmt), "forall(src) q2_nir[i] += map(B, 1)\n");
  EXPECT_TRUE(Stmt.Temps.empty());
}

TEST(QueryTransforms, SimplifyWidthCountOnCsrSource) {
  TargetShape Shape = shapeFor(formats::makeCSR());
  levels::SourceIterator Csr(formats::makeCSR());
  CinStmt Stmt = lowerToCanonical(countPerRow(), countPerRow().Aggs[0],
                                  Shape, "q2_nir");
  optimize(Stmt, Csr, Shape);
  // Fully optimized: read pos-array widths with no nonzero sweep.
  EXPECT_EQ(printCin(Stmt), "forall(src:1) q2_nir[i] = nnz(B, level 2)\n");
}

TEST(QueryTransforms, SimplifyWidthCountBlockedForPaddedSources) {
  TargetShape Shape = shapeFor(formats::makeCSR());
  levels::SourceIterator Ell(formats::makeELL());
  CinStmt Stmt = lowerToCanonical(countPerRow(), countPerRow().Aggs[0],
                                  Shape, "q2_nir");
  EXPECT_FALSE(simplifyWidthCount(Stmt, Ell));
}

TEST(QueryTransforms, CounterToHistogramThenFullPipeline) {
  TargetShape Shape = shapeFor(formats::makeELL());
  levels::SourceIterator Coo(formats::makeCOO());
  CinStmt Stmt = lowerToCanonical(maxCounter(), maxCounter().Aggs[0], Shape,
                                  "q1_max_crd");
  ASSERT_TRUE(counterToHistogram(Stmt, Coo, Shape));
  // Histogram over the counter's index variable, then max over it.
  EXPECT_EQ(printCin(Stmt),
            "forall(src) q1_max_crd_w[i] += map(B, 1)\n"
            "forall(q1_max_crd_w) q1_max_crd[] max= q1_max_crd_w[*]\n");

  // From a CSR source the whole pipeline collapses to pos-array widths
  // (the Figure 6b lines 1-5 derivation).
  levels::SourceIterator Csr(formats::makeCSR());
  CinStmt Full = lowerToCanonical(maxCounter(), maxCounter().Aggs[0], Shape,
                                  "q1_max_crd");
  optimize(Full, Csr, Shape);
  EXPECT_EQ(printCin(Full),
            "forall(src:1) q1_max_crd[] max= nnz(B, level 2)\n");
}

TEST(QueryTransforms, WholeSuffixWidthForCooNnz) {
  // COO's root-level count over all dims reads pos[1] directly.
  TargetShape Shape = shapeFor(formats::makeCOO());
  levels::SourceIterator Coo(formats::makeCOO());
  Query Q;
  Q.Aggs = {Agg{AggKind::Count, {0, 1}, "nir"}};
  CinStmt Stmt = lowerToCanonical(Q, Q.Aggs[0], Shape, "q1_nir");
  optimize(Stmt, Coo, Shape);
  EXPECT_EQ(printCin(Stmt), "forall(src:0) q1_nir[] = nnz(B, level 1)\n");
}

//===----------------------------------------------------------------------===//
// Compiled query results vs brute force
//===----------------------------------------------------------------------===//

namespace {

/// Compiles the queries a target format's levels need against a source
/// format and executes them on a matrix, returning the raw result buffer.
std::vector<int32_t> runQuery(const formats::Format &Src,
                              const formats::Format &Dst, const Query &Q,
                              const tensor::Triplets &T,
                              const std::string &Name, bool Optimize) {
  levels::SourceIterator Iter(Src);
  TargetShape Shape = shapeFor(Dst);
  CompiledQueries Compiled =
      compileQueries({{1, Q}}, Shape, Iter, Optimize);
  ir::Interpreter Interp;
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  for (size_t D = 0; D < In.Dims.size(); ++D)
    Interp.bindScalar("dim" + std::to_string(D), In.Dims[D]);
  for (size_t K = 0; K < In.Levels.size(); ++K) {
    std::string Base = "A" + std::to_string(K + 1);
    const tensor::LevelStorage &L = In.Levels[K];
    if (!L.Pos.empty())
      Interp.bindIntBuffer(Base + "_pos", L.Pos);
    if (!L.Crd.empty())
      Interp.bindIntBuffer(Base + "_crd", L.Crd);
    if (!L.Perm.empty())
      Interp.bindIntBuffer(Base + "_perm", L.Perm);
    if (L.SizeParam >= 0)
      Interp.bindScalar(Base + "_param", L.SizeParam);
  }
  Interp.bindFloatBuffer("A_vals", In.Vals);
  // Query buffers are internal (freed before yields in conversions), so
  // re-yield them here for inspection.
  ir::BlockBuilder B;
  B.add(Compiled.Code);
  const levels::QueryResultRef &Ref = Compiled.Refs.at(Name);
  ir::Expr Size = ir::intImm(1);
  for (const ir::Expr &E : Ref.GroupExtent)
    Size = ir::mul(Size, E);
  B.add(ir::yieldBuffer("B1_crd", Name, Size));
  ir::Function F2{"analysis", Iter.params(), B.build()};
  ir::RunResult R = Interp.run(F2);
  const ir::RuntimeBuffer &Buf = R.Buffers.at("B1_crd");
  if (Buf.Elem == ir::ScalarKind::Bool) {
    std::vector<int32_t> Out;
    for (uint8_t V : Buf.Bools)
      Out.push_back(V);
    return Out;
  }
  return Buf.Ints;
}

} // namespace

class QueryBruteForce : public ::testing::TestWithParam<
                            std::tuple<std::string, bool>> {};

TEST_P(QueryBruteForce, CountPerRowMatches) {
  const auto &[SrcName, Optimize] = GetParam();
  tensor::Triplets T;
  for (auto &[Name, M] : tensor::testMatrices())
    if (Name == "banded_random")
      T = M;
  std::vector<int32_t> Got =
      runQuery(formats::standardFormatOrDie(SrcName), formats::makeCSR(),
               countPerRow(), T, "q1_nir", Optimize);
  std::vector<int32_t> Want(static_cast<size_t>(T.NumRows), 0);
  for (const tensor::Entry &E : T.Entries)
    ++Want[static_cast<size_t>(E.Row)];
  EXPECT_EQ(Got, Want) << SrcName << " optimize=" << Optimize;
}

INSTANTIATE_TEST_SUITE_P(
    Sources, QueryBruteForce,
    ::testing::Combine(::testing::Values("coo", "csr", "csc", "dia", "ell"),
                       ::testing::Bool()),
    [](const auto &Info) {
      return std::get<0>(Info.param) +
             (std::get<1>(Info.param) ? "_opt" : "_canonical");
    });

TEST(QueryBrute, DiaOffsetsBitset) {
  tensor::Triplets T;
  for (auto &[Name, M] : tensor::testMatrices())
    if (Name == "figure1")
      T = M;
  Query Q;
  Q.GroupDims = {0};
  Q.Aggs = {Agg{AggKind::Id, {}, "nz"}};
  std::vector<int32_t> Got = runQuery(formats::makeCSR(), formats::makeDIA(),
                                      Q, T, "q1_nz", true);
  // Figure 1 has nonzero diagonals at offsets {-2, 0, 1}; the bit set
  // spans [1-M, N-1] = [-3, 5].
  std::vector<int32_t> Want(9, 0);
  Want[-2 + 3] = 1;
  Want[0 + 3] = 1;
  Want[1 + 3] = 1;
  EXPECT_EQ(Got, Want);
}

TEST(QueryBrute, SkylineMinPerRow) {
  tensor::Triplets T;
  for (auto &[Name, M] : tensor::testMatrices())
    if (Name == "lower_banded")
      T = M;
  Query Q;
  Q.GroupDims = {0};
  Q.Aggs = {Agg{AggKind::Min, {1}, "w"}};
  std::vector<int32_t> Raw = runQuery(formats::makeCSR(), formats::makeSKY(),
                                      Q, T, "q1_w", true);
  // Decode: w = -raw + t + 1, t = N - 1.
  for (int64_t I = 0; I < T.NumRows; ++I) {
    int64_t Want = T.NumCols; // "empty" decodes past the last column
    for (const tensor::Entry &E : T.Entries)
      if (E.Row == I)
        Want = std::min<int64_t>(Want, E.Col);
    EXPECT_EQ(-Raw[static_cast<size_t>(I)] + T.NumCols, Want) << I;
  }
}
